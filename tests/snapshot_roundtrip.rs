//! Placement-snapshot round trips through the public fabric API.
//!
//! For every Rodinia-style kernel that maps onto the M-128 grid, three runs
//! of the same admitted tenant must agree bit-for-bit:
//!
//! 1. **Uninterrupted** — one `advance` to completion.
//! 2. **Resume-in-place** — sliced into quantum-sized sessions, frozen and
//!    resumed on the same band until done.
//! 3. **Serialize→deserialize→resume** — frozen once, checkpointed to the
//!    word stream, restored from that stream, then run to completion.
//!
//! Agreement covers the full [`AccelRunResult`] (iterations, cycles, final
//! registers, per-PE counters, activity, fault log) plus a digest of every
//! data region the kernels touch. Corrupted, truncated, and mismatched
//! snapshot streams must decline with typed errors — never a panic — and
//! leave the tenant able to finish correctly afterwards.

use mesa::accel::{AccelConfig, AccelProgram, Coord, FaultPlan, SpatialAccelerator};
use mesa::core::{
    analyze_memopts, build_accel_program, map_instructions, FabricError, FabricManager, Ldfg,
    MapperConfig, MesaError, OptFlags, TenantProgress,
};
use mesa::isa::{step, ArchState, OpClass, Outcome, Program};
use mesa::mem::{MemConfig, MemorySystem};
use mesa::trace::NullTracer;
use mesa::workloads::{all, Kernel, KernelSize, DATA_A, DATA_B, DATA_C, DATA_OUT};

/// Memory port the accelerator uses on a two-port memory system.
const ACCEL_PORT: usize = 1;
/// Iteration budget far above any Tiny kernel's trip count.
const BUDGET: u64 = 1_000_000;

/// One tenant's worth of inputs, rebuilt identically for each run.
struct Case {
    prog: AccelProgram,
    entry: ArchState,
    mem: MemorySystem,
}

/// Builds the kernel's hot loop into an accelerator configuration via the
/// public translate→map→configure pipeline, and advances the kernel's
/// architectural state functionally through its prologue to loop entry.
/// `None` when the loop is untranslatable or fails validation (the kernel
/// is skipped, exactly as the controller would decline it).
fn build_case(kernel: &Kernel, cfg: &AccelConfig) -> Option<Case> {
    let (start, end) = kernel.loop_region();
    let base_idx = ((start - kernel.program.base_pc) / 4) as usize;
    let len = ((end - start) / 4) as usize;
    let region = Program {
        base_pc: start,
        instrs: kernel.program.instrs[base_idx..base_idx + len].to_vec(),
        annotations: kernel.program.annotations.clone(),
    };
    let ldfg = Ldfg::build(&region).ok()?;
    let accel = SpatialAccelerator::new(*cfg);
    let supports = |c: Coord, class: OpClass| cfg.supports(c, class);
    let sdfg = map_instructions(
        &ldfg,
        cfg.grid(),
        &supports,
        accel.latency_model(),
        &MapperConfig::default(),
    );
    let plan = analyze_memopts(&ldfg);
    let opts = OptFlags { pipelining: true, memory_opts: true, ..OptFlags::none() };
    let prog =
        build_accel_program(&ldfg, &sdfg, Some(&plan), kernel.annotation, cfg, &opts, kernel.iterations);
    prog.validate(cfg.grid()).ok()?;

    let mut mem = MemorySystem::new(MemConfig::default(), 2);
    kernel.populate(mem.data_mut());
    let mut entry = kernel.entry.clone();
    for _ in 0..100_000 {
        if entry.pc == start {
            break;
        }
        let instr = kernel.program.fetch(entry.pc)?;
        let info = step(&mut entry, instr, mem.data_mut());
        if matches!(info.outcome, Outcome::Halt) {
            return None;
        }
    }
    (entry.pc == start).then_some(Case { prog, entry, mem })
}

/// FNV-1a digest over every data window the kernels write (including
/// backprop's private block above [`DATA_OUT`]'s window). Untouched
/// addresses read as zero, so identical engine behavior gives identical
/// digests regardless of footprint.
fn mem_digest(mem: &mut MemorySystem) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for base in [DATA_A, DATA_B, DATA_C, DATA_OUT, 0x140_0000] {
        for off in (0..0x8000u64).step_by(4) {
            h ^= u64::from(mem.data_mut().load_u32(base + off));
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

/// Admits a fresh copy of `case` as the sole tenant of a fresh manager.
fn admit(case: &Case, cfg: AccelConfig) -> (FabricManager, u32) {
    let mut manager = FabricManager::new(cfg);
    let (id, _) = manager
        .admit(case.prog.clone(), case.entry.clone(), FaultPlan::none(), BUDGET)
        .expect("single tenant on an empty grid must be admitted");
    assert!(!manager.is_queued(id), "sole tenant must get a band immediately");
    (manager, id)
}

/// `(Debug render of the result, memory digest)` once tenant `id` is done.
fn finish(manager: &FabricManager, id: u32, mem: &mut MemorySystem) -> (String, u64) {
    let r = manager.result(id).expect("completed tenant has a result");
    assert!(r.completed, "kernel loop must exit within the budget");
    assert!(r.iterations > 0);
    (format!("{r:?}"), mem_digest(mem))
}

/// What one kernel's round trip exercised.
#[derive(Debug, PartialEq, Eq)]
enum KernelOutcome {
    /// Loop untranslatable or unmappable — declined up front, as solo
    /// offload would decline it.
    Skipped,
    /// Completed inside one quantum, so there was no snapshot to test;
    /// uninterrupted and sliced runs still agreed.
    TooShortToFreeze,
    /// Full pause → checkpoint → corrupt → restore → resume cycle ran.
    Exercised,
}

fn roundtrip(kernel: &Kernel) -> KernelOutcome {
    let cfg = AccelConfig::m128();
    let Some(mut a) = build_case(kernel, &cfg) else { return KernelOutcome::Skipped };

    // Run 1: uninterrupted.
    let (mut ma, ida) = admit(&a, cfg);
    let pa = ma
        .advance(ida, &mut a.mem, ACCEL_PORT, u64::MAX, &mut NullTracer, 0)
        .unwrap_or_else(|e| panic!("{}: uninterrupted run failed: {e}", kernel.name));
    let TenantProgress::Completed(total) = pa else {
        panic!("{}: u64::MAX quantum must run to completion, got {pa:?}", kernel.name);
    };
    let (want, want_digest) = finish(&ma, ida, &mut a.mem);

    // A quantum that slices the episode into several sessions. `advance`
    // clamps zero to one cycle, and a slice that overshoots the end just
    // completes — both are fine; we only *require* a freeze in run 3.
    let quantum = (total / 3).max(1);

    // Run 2: resume-in-place across quantum slices.
    let mut b = build_case(kernel, &cfg).expect("case construction is deterministic");
    let (mut mb, idb) = admit(&b, cfg);
    let mut slices = 0u32;
    let froze = loop {
        match mb
            .advance(idb, &mut b.mem, ACCEL_PORT, quantum, &mut NullTracer, 0)
            .unwrap_or_else(|e| panic!("{}: slice {slices} failed: {e}", kernel.name))
        {
            TenantProgress::Paused(_) => slices += 1,
            TenantProgress::Completed(_) => break slices > 0,
            TenantProgress::Queued => unreachable!("sole tenant cannot be queued"),
        }
    };
    let (got, got_digest) = finish(&mb, idb, &mut b.mem);
    assert_eq!(want, got, "{}: resume-in-place diverged from uninterrupted", kernel.name);
    assert_eq!(want_digest, got_digest, "{}: memory diverged after slicing", kernel.name);

    // Run 3: freeze once, serialize, reject corruptions, deserialize, resume.
    let mut c = build_case(kernel, &cfg).expect("case construction is deterministic");
    let (mut mc, idc) = admit(&c, cfg);
    match mc
        .advance(idc, &mut c.mem, ACCEL_PORT, quantum, &mut NullTracer, 0)
        .unwrap_or_else(|e| panic!("{}: freezing slice failed: {e}", kernel.name))
    {
        TenantProgress::Paused(_) => {}
        TenantProgress::Completed(_) => {
            // One round overshot the pause point: nothing to snapshot, but
            // the results must still agree with the uninterrupted run.
            let (got, got_digest) = finish(&mc, idc, &mut c.mem);
            assert_eq!(want, got, "{}: overshot run diverged", kernel.name);
            assert_eq!(want_digest, got_digest, "{}: overshot memory diverged", kernel.name);
            assert!(!froze, "{}: run 2 froze but run 3 could not", kernel.name);
            return KernelOutcome::TooShortToFreeze;
        }
        TenantProgress::Queued => unreachable!("sole tenant cannot be queued"),
    }
    let words = mc.checkpoint(idc).unwrap_or_else(|e| panic!("{}: checkpoint: {e}", kernel.name));

    // Truncations at several depths decline with a typed error.
    for keep in [0, 1, words.len() / 2, words.len() - 1] {
        let err = mc
            .restore(idc, &words[..keep])
            .expect_err("truncated snapshot must be rejected");
        assert!(
            matches!(err, FabricError::Snapshot(_)),
            "{}: truncation to {keep} words gave {err:?}",
            kernel.name
        );
        // And surfaces through the controller's error type unchanged.
        let top = MesaError::from(err);
        assert!(matches!(top, MesaError::Fabric(FabricError::Snapshot(_))), "{top:?}");
    }
    // Single-bit corruption anywhere in the stream is caught by the
    // checksum (or a bounds check) before anything is installed.
    for (word, bit) in [(0, 0), (2, 17), (words.len() / 2, 63), (words.len() - 1, 1)] {
        let mut bad = words.clone();
        bad[word] ^= 1u64 << bit;
        let err = mc.restore(idc, &bad).expect_err("corrupt snapshot must be rejected");
        assert!(
            matches!(err, FabricError::Snapshot(_)),
            "{}: flip of word {word} bit {bit} gave {err:?}",
            kernel.name
        );
    }

    // The failed restores left the frozen state intact: deserialize the
    // good stream and run to completion.
    mc.restore(idc, &words).unwrap_or_else(|e| panic!("{}: clean restore: {e}", kernel.name));
    let pc = mc
        .advance(idc, &mut c.mem, ACCEL_PORT, u64::MAX, &mut NullTracer, 0)
        .unwrap_or_else(|e| panic!("{}: resume after restore failed: {e}", kernel.name));
    assert!(matches!(pc, TenantProgress::Completed(_)), "{}: {pc:?}", kernel.name);
    let (got, got_digest) = finish(&mc, idc, &mut c.mem);
    assert_eq!(want, got, "{}: serialize→deserialize→resume diverged", kernel.name);
    assert_eq!(want_digest, got_digest, "{}: memory diverged after restore", kernel.name);
    KernelOutcome::Exercised
}

#[test]
fn snapshot_roundtrip_matches_resume_in_place_for_every_kernel() {
    let kernels = all(KernelSize::Tiny);
    assert_eq!(kernels.len(), mesa::workloads::KERNEL_NAMES.len());
    let mut exercised = Vec::new();
    let mut skipped = Vec::new();
    for kernel in &kernels {
        match roundtrip(kernel) {
            KernelOutcome::Exercised => exercised.push(kernel.name),
            KernelOutcome::TooShortToFreeze => {}
            KernelOutcome::Skipped => skipped.push(kernel.name),
        }
    }
    // The suite must actually test freezing, not just skip everything.
    assert!(
        exercised.len() >= 8,
        "only {exercised:?} kernels froze and round-tripped (skipped: {skipped:?})"
    );
}

/// A snapshot is bound to its tenant: restoring one tenant's stream into a
/// different tenant (different program / band) declines with a typed
/// snapshot error, and the victim still completes correctly afterwards.
#[test]
fn snapshot_restore_rejects_foreign_tenants() {
    let cfg = AccelConfig::m128();
    let kernels = all(KernelSize::Tiny);
    // Two kernels that both map and both freeze under a small quantum.
    let mut frozen: Vec<(FabricManager, u32, Case, Vec<u64>, &str)> = Vec::new();
    for kernel in &kernels {
        let Some(mut case) = build_case(kernel, &cfg) else { continue };
        let (mut manager, id) = admit(&case, cfg);
        let Ok(TenantProgress::Paused(_)) =
            manager.advance(id, &mut case.mem, ACCEL_PORT, 50, &mut NullTracer, 0)
        else {
            continue;
        };
        let words = manager.checkpoint(id).expect("paused tenant checkpoints");
        frozen.push((manager, id, case, words, kernel.name));
        if frozen.len() == 2 {
            break;
        }
    }
    let [(mut ma, ida, mut ca, wa, na), (_, _, _, wb, nb)] =
        frozen.try_into().unwrap_or_else(|_| panic!("fewer than two kernels froze"));

    let err = ma.restore(ida, &wb).expect_err("foreign snapshot must be rejected");
    assert!(matches!(err, FabricError::Snapshot(_)), "{na} accepted {nb}'s snapshot: {err:?}");

    // The rejected restore is side-effect free: the original stream still
    // loads and the tenant completes.
    ma.restore(ida, &wa).expect("own snapshot restores after a rejected foreign one");
    let p = ma
        .advance(ida, &mut ca.mem, ACCEL_PORT, u64::MAX, &mut NullTracer, 0)
        .expect("resume after rejected foreign restore");
    assert!(matches!(p, TenantProgress::Completed(_)), "{p:?}");
    assert!(ma.result(ida).expect("result").completed);
}
