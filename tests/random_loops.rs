//! Randomized differential testing: generate random (but well-formed)
//! loops, run them functionally on the CPU semantics, and run the same
//! machine code through MESA's full translate→map→configure→execute
//! pipeline. Live-out registers and touched memory must match exactly.
//!
//! This is the strongest invariant in the repo: *dynamic binary
//! translation must never change architectural results*, no matter the
//! placement, predication, forwarding, or optimization decisions.

use mesa::accel::{AccelConfig, Coord, SpatialAccelerator};
use mesa::core::{analyze_memopts, build_accel_program, map_instructions, Ldfg, MapperConfig, OptFlags};
use mesa::cpu::{CoreConfig, Multicore, RunLimits, StopReason};
use mesa::isa::reg::abi::*;
use mesa::isa::{step, ArchState, Asm, OpClass, Outcome, Program, Reg, Xlen};
use mesa::mem::{MemConfig, MemorySystem};
use mesa_test::Rng;

const ARR_A: u64 = 0x10_0000;
const ARR_OUT: u64 = 0x20_0000;
const ITERS: u64 = 37;

/// Builds a random loop: a handful of integer ops over t0-t5, an optional
/// load/store pair, an optional guarded (forward-branch) update, and an
/// induction + bltu closing pair.
fn random_loop(seed: u64) -> Program {
    let mut rng = Rng::seed_from_u64(seed);
    let temps = [T0, T1, T2, T3, T4];
    let mut a = Asm::new(0x1000);
    a.label("loop");

    // Optional load feeding the temps.
    if rng.gen_bool(0.7) {
        a.lw(temps[rng.gen_range(0..temps.len())], A0, 0);
    }

    // 3-8 random ALU ops.
    for _ in 0..rng.gen_range(3..=8) {
        let rd = temps[rng.gen_range(0..temps.len())];
        let rs1 = temps[rng.gen_range(0..temps.len())];
        let rs2 = temps[rng.gen_range(0..temps.len())];
        match rng.gen_range(0..7) {
            0 => a.add(rd, rs1, rs2),
            1 => a.sub(rd, rs1, rs2),
            2 => a.xor(rd, rs1, rs2),
            3 => a.and(rd, rs1, rs2),
            4 => a.or(rd, rs1, rs2),
            5 => a.addi(rd, rs1, rng.gen_range(-64..64)),
            _ => a.slli(rd, rs1, rng.gen_range(0..8)),
        };
    }

    // Optional predicated region: skip one update when t0 >= t1.
    if rng.gen_bool(0.5) {
        a.bge(T0, T1, "skip");
        a.addi(T5, T5, 3);
        a.label("skip");
    }

    // Optional store of a temp.
    if rng.gen_bool(0.7) {
        a.sw(temps[rng.gen_range(0..temps.len())], A4, 0);
        a.addi(A4, A4, 4);
    }

    // Induction + close.
    a.addi(A0, A0, 4);
    a.bltu(A0, A1, "loop");
    a.finish().expect("random loop assembles")
}

fn entry_state(seed: u64) -> ArchState {
    let mut rng = Rng::seed_from_u64(seed ^ 0xDEAD);
    let mut st = ArchState::new(0x1000, Xlen::Rv32);
    for r in [T0, T1, T2, T3, T4, T5] {
        st.write(r, u64::from(rng.gen::<u32>() % 1000));
    }
    st.write(A0, ARR_A);
    st.write(A1, ARR_A + 4 * ITERS);
    st.write(A4, ARR_OUT);
    st
}

/// Writes the deterministic input array for `seed` (shared by the
/// golden, accelerator, and multicore runs).
fn populate_input(mem: &mut MemorySystem, seed: u64) {
    let mut rng = Rng::seed_from_u64(seed ^ 0xBEEF);
    for i in 0..ITERS {
        mem.data_mut().store_u32(ARR_A + 4 * i, rng.gen::<u32>() % 10_000);
    }
}

/// Functional golden run with the plain ISA semantics.
fn golden(program: &Program, seed: u64) -> (ArchState, MemorySystem) {
    let mut mem = MemorySystem::new(MemConfig::default(), 1);
    populate_input(&mut mem, seed);
    let mut st = entry_state(seed);
    for _ in 0..1_000_000 {
        let Some(instr) = program.fetch(st.pc) else { break };
        let info = step(&mut st, instr, mem.data_mut());
        if matches!(info.outcome, Outcome::Halt) {
            break;
        }
    }
    (st, mem)
}

/// Runs the same region through MESA's pipeline on the accelerator.
fn via_mesa(program: &Program, seed: u64, opts: &OptFlags) -> Option<(ArchState, MemorySystem)> {
    let ldfg = Ldfg::build(program).ok()?;
    let accel_cfg = AccelConfig::m128();
    let accel = SpatialAccelerator::new(accel_cfg);
    let supports = |c: Coord, class: OpClass| accel_cfg.supports(c, class);
    let sdfg = map_instructions(
        &ldfg,
        accel_cfg.grid(),
        &supports,
        accel.latency_model(),
        &MapperConfig::default(),
    );
    let plan = analyze_memopts(&ldfg);
    // Pipelining/tiling only engage on annotated loops; synthesize the
    // annotation when the variant under test asks for them.
    let annotation =
        (opts.pipelining || opts.tiling).then_some(mesa::isa::ParallelKind::Simd);
    let prog =
        build_accel_program(&ldfg, &sdfg, Some(&plan), annotation, &accel_cfg, opts, ITERS);

    let mut mem = MemorySystem::new(MemConfig::default(), 1);
    populate_input(&mut mem, seed);
    let mut st = entry_state(seed);
    let r = accel.execute(&prog, &st, &mut mem, 0, 10_000).expect("validated program runs");
    assert!(r.completed, "loop must terminate");
    for (reg, value) in r.final_regs {
        st.write(reg, value);
    }
    Some((st, mem))
}

fn compare(seed: u64, opts: &OptFlags) {
    let program = random_loop(seed);
    let (gold_st, mut gold_mem) = golden(&program, seed);
    let Some((mesa_st, mut mesa_mem)) = via_mesa(&program, seed, opts) else {
        return;
    };
    for r in 0..32u8 {
        let reg = Reg::x(r);
        assert_eq!(
            gold_st.read(reg),
            mesa_st.read(reg),
            "seed {seed}: x{r} mismatch\nprogram:\n{program}"
        );
    }
    for i in 0..ITERS {
        let addr = ARR_OUT + 4 * i;
        assert_eq!(
            gold_mem.data_mut().load_u32(addr),
            mesa_mem.data_mut().load_u32(addr),
            "seed {seed}: out[{i}] mismatch\nprogram:\n{program}"
        );
    }
}

#[test]
fn random_loops_match_golden_without_optimizations() {
    for seed in 0..40 {
        compare(seed, &OptFlags::none());
    }
}

#[test]
fn random_loops_match_golden_with_memory_optimizations() {
    let opts = OptFlags { memory_opts: true, ..OptFlags::none() };
    for seed in 0..40 {
        compare(seed, &opts);
    }
}

#[test]
fn random_loops_match_golden_with_pipelining() {
    let opts = OptFlags { pipelining: true, memory_opts: true, ..OptFlags::none() };
    for seed in 40..80 {
        compare(seed, &opts);
    }
}

/// Builds a random *data-parallel* loop: one load, then ALU ops whose
/// sources are all values defined earlier in the same iteration (rooted
/// at the loaded element), a store, and the induction + close + exit
/// stub. Because nothing is loop-carried except the induction and
/// follower registers, splitting the iteration space across cores must
/// not change any architectural result.
fn parallel_random_loop(seed: u64) -> Program {
    let mut rng = Rng::seed_from_u64(seed ^ 0xCAFE);
    let temps = [T1, T2, T3, T4];
    let mut a = Asm::new(0x1000);
    a.label("loop");
    a.lw(T0, A0, 0);
    let mut defined = vec![T0];
    for _ in 0..rng.gen_range(3..=8) {
        let rd = temps[rng.gen_range(0..temps.len())];
        let rs1 = defined[rng.gen_range(0..defined.len())];
        let rs2 = defined[rng.gen_range(0..defined.len())];
        match rng.gen_range(0..7) {
            0 => a.add(rd, rs1, rs2),
            1 => a.sub(rd, rs1, rs2),
            2 => a.xor(rd, rs1, rs2),
            3 => a.and(rd, rs1, rs2),
            4 => a.or(rd, rs1, rs2),
            5 => a.addi(rd, rs1, rng.gen_range(-64..64)),
            _ => a.slli(rd, rs1, rng.gen_range(0..8)),
        };
        if !defined.contains(&rd) {
            defined.push(rd);
        }
    }
    a.sw(defined[rng.gen_range(0..defined.len())], A4, 0);
    a.addi(A4, A4, 4);
    a.addi(A0, A0, 4);
    a.bltu(A0, A1, "loop");
    a.li(A7, 93);
    a.ecall();
    a.finish().expect("parallel random loop assembles")
}

/// Splits the iteration space across `n_cores` OoO cores over a shared
/// memory system and checks the combined result — every live-out
/// register of the core that ran the final chunk, and all output memory
/// — against the single-threaded golden semantics.
fn compare_multicore(seed: u64, n_cores: usize) {
    let program = parallel_random_loop(seed);
    let (gold_st, mut gold_mem) = golden(&program, seed);

    let mut mc = Multicore::new(CoreConfig::default(), MemConfig::default(), n_cores);
    populate_input(mc.mem_mut(), seed);
    let chunk = ITERS.div_ceil(n_cores as u64);
    let r = mc.run_parallel(
        &program,
        |id| {
            let lo = (chunk * id as u64).min(ITERS);
            let hi = (chunk * (id as u64 + 1)).min(ITERS);
            // The loop body runs before the bltu check (do-while), so an
            // empty chunk would over-execute; ITERS >= n_cores avoids it.
            assert!(lo < hi, "core {id} got an empty chunk");
            let mut st = entry_state(seed);
            st.write(A0, ARR_A + 4 * lo);
            st.write(A1, ARR_A + 4 * hi);
            st.write(A4, ARR_OUT + 4 * lo);
            st
        },
        RunLimits::none(),
    );

    for (id, core) in r.per_core.iter().enumerate() {
        assert!(
            matches!(core.stop, StopReason::Halted),
            "seed {seed}: core {id} stopped with {:?}\nprogram:\n{program}",
            core.stop
        );
    }
    // The last core runs the final iterations; since every temp is
    // recomputed per-iteration, all 32 of its registers must match the
    // golden single-core run (A1 included: its chunk limit is the full
    // bound).
    let last = r.final_states.last().expect("at least one core");
    for x in 0..32u8 {
        let reg = Reg::x(x);
        assert_eq!(
            gold_st.read(reg),
            last.read(reg),
            "seed {seed}: {n_cores}-core x{x} mismatch\nprogram:\n{program}"
        );
    }
    for i in 0..ITERS {
        let addr = ARR_OUT + 4 * i;
        assert_eq!(
            gold_mem.data_mut().load_u32(addr),
            mc.mem_mut().data_mut().load_u32(addr),
            "seed {seed}: {n_cores}-core out[{i}] mismatch\nprogram:\n{program}"
        );
    }
}

#[test]
fn random_parallel_loops_match_golden_across_2_and_4_cores() {
    for seed in 0..20 {
        compare_multicore(seed, 2);
        compare_multicore(seed, 4);
    }
}
