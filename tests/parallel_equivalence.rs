//! The parallel experiment harness must be invisible in the results: every
//! figure computed with a worker pool has to match the sequential run
//! exactly (same rows, same float bits), because the pool only reorders
//! *work*, never the order results are collected or folded in.
//!
//! One test function drives all the comparisons: the worker count is
//! process-global (`mesa_bench::set_jobs`), so splitting this into several
//! `#[test]`s would race on it.

use mesa::core::{
    run_tenants, run_tenants_fleet, FleetStats, OffloadReport, SystemConfig, TenantJob,
};
use mesa::isa::reg::abi::*;
use mesa::isa::{ArchState, Asm, Xlen};
use mesa::mem::{MemConfig, MemorySystem};
use mesa_bench as bench;
use mesa_workloads::KernelSize;

/// Renders one full run of every parallelized figure at the current worker
/// count. `Debug` formatting captures float bit-patterns to 17 significant
/// digits' worth of precision, so any cross-thread reassociation of sums
/// would show up here.
fn all_parallel_figures(size: KernelSize) -> String {
    let (fig11_rows, fig11_means) = bench::fig11(size);
    let fig12_rows = bench::fig12(size);
    let fig13 = bench::fig13(size);
    let (fig14_rows, fig14_means) = bench::fig14(size);
    let fig15_rows = bench::fig15(size);
    format!(
        "{fig11_rows:?}\n{fig11_means:?}\n{fig12_rows:?}\n{fig13:?}\n{fig14_rows:?}\n{fig14_means:?}\n{fig15_rows:?}"
    )
}

#[test]
fn figures_identical_for_any_worker_count() {
    bench::set_jobs(1);
    let sequential = all_parallel_figures(KernelSize::Tiny);
    let fleet_sequential = fleet_stats_json();

    for jobs in [2, 4] {
        bench::set_jobs(jobs);
        let parallel = all_parallel_figures(KernelSize::Tiny);
        assert_eq!(
            sequential, parallel,
            "figure results diverged between --jobs 1 and --jobs {jobs}"
        );
        // The fleet scheduler time-slices one engine on one thread, so the
        // fleetstats export must stay byte-identical at any worker count.
        assert_eq!(
            fleet_sequential,
            fleet_stats_json(),
            "fleetstats JSON diverged between --jobs 1 and --jobs {jobs}"
        );
    }

    // Leave the global override cleared for any other harness user.
    bench::set_jobs(0);
}

/// One full fleet run over the three synthetic tenants, exported as the
/// stable fleetstats JSON.
fn fleet_stats_json() -> String {
    let mut jobs = vec![tenant_job(0, 2000), tenant_job(1, 1500), tenant_job(2, 2600)];
    let run = run_tenants_fleet(
        &SystemConfig::m128(),
        &mut jobs,
        180,
        0,
        &mut mesa::trace::NullTracer,
    );
    run.stats.to_json()
}

/// One synthetic loop job for the shared fabric. Three shapes with
/// different trip counts and bodies, all serial (single tile), so every
/// tenant gets its full placement even when all run concurrently.
fn tenant_job(kind: usize, n: u64) -> TenantJob {
    const BASE: u64 = 0x10_0000;
    const OUT: u64 = 0x20_0000;
    let mut a = Asm::new(0x1000);
    a.label("loop");
    a.lw(T0, A0, 0);
    match kind % 3 {
        0 => {
            a.add(T1, T1, T0);
        }
        1 => {
            a.xor(T1, T1, T0);
            a.slli(T2, T0, 1);
            a.add(T1, T1, T2);
        }
        _ => {
            a.sub(T1, T0, T1);
            a.and(T2, T1, T0);
            a.sw(T2, A4, 0);
            a.addi(A4, A4, 4);
        }
    }
    a.addi(A0, A0, 4);
    a.bne(A0, A1, "loop");
    a.sw(T1, A2, 0);
    a.li(A7, 93);
    a.ecall();
    let program = a.finish().expect("tenant loop assembles");

    let mut state = ArchState::new(0x1000, Xlen::Rv32);
    state.write(A0, BASE);
    state.write(A1, BASE + 4 * n);
    state.write(A2, OUT);
    state.write(A4, OUT + 0x100);
    let mut mem = MemorySystem::new(MemConfig::default(), 2);
    for i in 0..n {
        mem.data_mut()
            .store_u32(BASE + 4 * i, ((i * 7 + kind as u64 * 13) % 1000) as u32 + 1);
    }
    TenantJob::new(program, state, mem)
}

/// A tenant report with the sharing-specific fields masked off, so solo
/// and concurrent runs can be compared field-for-field: the tenant id and
/// band assignment depend on admission order by construction, everything
/// else (timing included — aligned bands are translation invariant) must
/// not.
fn normalized(report: &OffloadReport) -> String {
    let mut r = report.clone();
    r.tenant = 0;
    r.fabric_region = None;
    // Queue wait is fleet-clock accounting: it depends on which other
    // tenants held bands at admission, never on the tenant's own timing.
    r.queue_wait_cycles = 0;
    format!("{r:?}")
}

/// Concurrent multi-tenancy is invisible: N tenants sharing the fabric
/// produce byte-identical per-tenant reports, architectural states, and
/// memory results to N sequential solo runs, under every admission order.
///
/// This test does not touch the process-global `mesa_bench::set_jobs`
/// worker count (`run_tenants` time-slices one engine on one thread), so
/// it can live alongside `figures_identical_for_any_worker_count` as its
/// own `#[test]` without racing it.
#[test]
fn concurrent_tenants_match_sequential_solo_runs_in_any_order() {
    const QUANTUM: u64 = 180;
    let system = SystemConfig::m128();
    let shapes: [(usize, u64); 3] = [(0, 2000), (1, 1500), (2, 2600)];

    // Sequential solo baseline: each job runs as the fabric's only tenant.
    let mut solo_reports = Vec::new();
    let mut solo_states = Vec::new();
    for &(kind, n) in &shapes {
        let mut jobs = vec![tenant_job(kind, n)];
        let mut reports = run_tenants(&system, &mut jobs, QUANTUM, 0);
        let report = reports.pop().unwrap().expect("solo tenant offloads");
        solo_reports.push(normalized(&report));
        solo_states.push(format!("{:?}", jobs[0].state));
    }

    // Concurrent runs under several admission orders.
    for order in [[0usize, 1, 2], [2, 1, 0], [1, 2, 0]] {
        let mut jobs: Vec<TenantJob> =
            order.iter().map(|&i| tenant_job(shapes[i].0, shapes[i].1)).collect();
        let reports = run_tenants(&system, &mut jobs, QUANTUM, 0);

        // All three really shared the grid: pairwise disjoint bands.
        let regions: Vec<_> = reports
            .iter()
            .map(|r| r.as_ref().expect("tenant offloads").fabric_region.expect("ran on a band"))
            .collect();
        for i in 0..regions.len() {
            for j in i + 1..regions.len() {
                assert!(
                    !regions[i].overlaps(&regions[j]),
                    "admission order {order:?}: bands {} and {} overlap",
                    regions[i],
                    regions[j]
                );
            }
        }

        for (slot, &i) in order.iter().enumerate() {
            let report = reports[slot].as_ref().unwrap();
            assert_eq!(
                normalized(report),
                solo_reports[i],
                "admission order {order:?}: tenant report for job {i} diverged from its solo run"
            );
            assert_eq!(
                format!("{:?}", jobs[slot].state),
                solo_states[i],
                "admission order {order:?}: architectural state for job {i} diverged"
            );
        }
    }
}

/// Fleet telemetry is a pure aggregate of per-tenant execution: the
/// shared-fabric `FleetStats` must equal the fold (merge) of each job's
/// solo fleet run on every order-insensitive dimension — total elapsed,
/// the slice-latency histogram, total band occupancy, per-tenant
/// (cycles, iterations, slices) — and the occupancy conservation
/// invariant must hold exactly under every admission order.
#[test]
fn fleet_stats_equal_fold_of_solo_runs_in_any_order() {
    const QUANTUM: u64 = 180;
    let system = SystemConfig::m128();
    let shapes: [(usize, u64); 3] = [(0, 2000), (1, 1500), (2, 2600)];

    // Fold of solo fleet runs: each job as the fabric's only tenant.
    let mut fold = FleetStats::default();
    for &(kind, n) in &shapes {
        let mut jobs = vec![tenant_job(kind, n)];
        let run =
            run_tenants_fleet(&system, &mut jobs, QUANTUM, 0, &mut mesa::trace::NullTracer);
        assert!(run.outcomes[0].is_ok(), "solo tenant offloads");
        fold.merge(&run.stats);
    }

    let shared = |order: [usize; 3]| {
        let mut jobs: Vec<TenantJob> =
            order.iter().map(|&i| tenant_job(shapes[i].0, shapes[i].1)).collect();
        run_tenants_fleet(&system, &mut jobs, QUANTUM, 0, &mut mesa::trace::NullTracer)
    };

    // Determinism: replaying the same admission order reproduces the
    // export byte for byte.
    assert_eq!(shared([0, 1, 2]).stats.to_json(), shared([0, 1, 2]).stats.to_json());

    let fold_tenants = |stats: &FleetStats| {
        let mut t: Vec<_> = stats
            .tenants
            .iter()
            .map(|t| (t.cycles, t.iterations, t.slices, t.migrations))
            .collect();
        t.sort_unstable();
        t
    };

    for order in [[0usize, 1, 2], [2, 1, 0], [1, 2, 0]] {
        let run = shared(order);
        let s = &run.stats;
        let busy: u64 = s.band_busy.iter().sum();
        let idle: u64 = s.band_idle.iter().sum();
        assert_eq!(
            busy + idle,
            s.elapsed_cycles * s.bands as u64,
            "admission order {order:?}: occupancy not conserved"
        );
        assert_eq!(s.elapsed_cycles, fold.elapsed_cycles, "order {order:?}: elapsed diverged");
        assert_eq!(
            s.admitted_full + s.admitted_shrunk + s.queued,
            3,
            "order {order:?}: every job must admit"
        );
        assert_eq!(s.slice_cycles, fold.slice_cycles, "order {order:?}: slice histogram");
        assert_eq!(s.migration_cycles, fold.migration_cycles, "order {order:?}");
        assert_eq!(busy, fold.band_busy.iter().sum::<u64>(), "order {order:?}: total busy");
        assert_eq!(fold_tenants(s), fold_tenants(&fold), "order {order:?}: per-tenant detail");
        mesa::trace::validate_json(&s.to_json()).expect("fleetstats JSON parses");
    }
}
