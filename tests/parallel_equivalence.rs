//! The parallel experiment harness must be invisible in the results: every
//! figure computed with a worker pool has to match the sequential run
//! exactly (same rows, same float bits), because the pool only reorders
//! *work*, never the order results are collected or folded in.
//!
//! One test function drives all the comparisons: the worker count is
//! process-global (`mesa_bench::set_jobs`), so splitting this into several
//! `#[test]`s would race on it.

use mesa_bench as bench;
use mesa_workloads::KernelSize;

/// Renders one full run of every parallelized figure at the current worker
/// count. `Debug` formatting captures float bit-patterns to 17 significant
/// digits' worth of precision, so any cross-thread reassociation of sums
/// would show up here.
fn all_parallel_figures(size: KernelSize) -> String {
    let (fig11_rows, fig11_means) = bench::fig11(size);
    let fig12_rows = bench::fig12(size);
    let fig13 = bench::fig13(size);
    let (fig14_rows, fig14_means) = bench::fig14(size);
    let fig15_rows = bench::fig15(size);
    format!(
        "{fig11_rows:?}\n{fig11_means:?}\n{fig12_rows:?}\n{fig13:?}\n{fig14_rows:?}\n{fig14_means:?}\n{fig15_rows:?}"
    )
}

#[test]
fn figures_identical_for_any_worker_count() {
    bench::set_jobs(1);
    let sequential = all_parallel_figures(KernelSize::Tiny);

    for jobs in [2, 4] {
        bench::set_jobs(jobs);
        let parallel = all_parallel_figures(KernelSize::Tiny);
        assert_eq!(
            sequential, parallel,
            "figure results diverged between --jobs 1 and --jobs {jobs}"
        );
    }

    // Leave the global override cleared for any other harness user.
    bench::set_jobs(0);
}
