//! Trace determinism and span-balance invariants.
//!
//! Traces are pure functions of the simulated execution: the tracer
//! timestamps events with *simulated* cycles (never wall clock) and the
//! metrics registry iterates in a fixed order, so the same kernel under
//! the same seed must export byte-identical artifacts. The property test
//! additionally checks that the ring tracer keeps span begin/end events
//! balanced under arbitrary interleavings.

use mesa::core::SystemConfig;
use mesa::trace::{RingTracer, Subsystem, Tracer};
use mesa::workloads::{by_name, KernelSize};
use mesa_bench::mesa_offload_traced;
use mesa_test::{forall, prop_assert, prop_assert_eq, Checker, Rng};

const REGRESSIONS: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/trace_determinism.proptest-regressions");

fn checker(name: &str) -> Checker {
    Checker::new(name).cases(48).regressions_file(REGRESSIONS)
}

fn traced_nn_run() -> RingTracer {
    let kernel = by_name("nn", KernelSize::Tiny).expect("nn");
    let mut tracer = RingTracer::new(1 << 16);
    let run = mesa_offload_traced(&kernel, &SystemConfig::m128(), 4, &mut tracer);
    assert!(run.report.is_some(), "nn must accelerate");
    tracer
}

fn traced_faulted_nn_run(seed: u64) -> (RingTracer, Option<u64>) {
    let kernel = by_name("nn", KernelSize::Tiny).expect("nn");
    let plan = mesa::accel::FaultPlan::from_seed(seed, 4, 8);
    let mut tracer = RingTracer::new(1 << 16);
    let run = mesa_bench::mesa_offload_faulted_traced(
        &kernel,
        &SystemConfig::m128(),
        4,
        &plan,
        &mut tracer,
    );
    (tracer, run.report.map(|r| r.faults.total()))
}

#[test]
fn same_run_exports_byte_identical_traces() {
    let a = traced_nn_run();
    let b = traced_nn_run();
    assert_eq!(a.to_json_lines(), b.to_json_lines());
    assert_eq!(a.to_chrome_trace(), b.to_chrome_trace());
    assert_eq!(a.timeline_summary(), b.timeline_summary());
    assert_eq!(a.dropped(), b.dropped());
}

/// Fault injection is part of the deterministic state: the same seed and
/// fault plan must reproduce the same injected-fault events, the same
/// recovery decisions, and byte-identical trace exports — the property the
/// soak binary's seed-replay workflow depends on.
#[test]
fn same_fault_plan_exports_byte_identical_traces() {
    forall!(Checker::new("trace::fault_determinism").cases(8).regressions_file(REGRESSIONS), |(seed in 0u64..1_000_000)| {
        let (a, faults_a) = traced_faulted_nn_run(seed);
        let (b, faults_b) = traced_faulted_nn_run(seed);
        prop_assert_eq!(faults_a, faults_b);
        prop_assert_eq!(a.to_json_lines(), b.to_json_lines());
        prop_assert_eq!(a.to_chrome_trace(), b.to_chrome_trace());
        prop_assert_eq!(a.timeline_summary(), b.timeline_summary());
    });
}

#[test]
fn cycle_timestamps_are_monotone_per_subsystem_span_stack() {
    let tracer = traced_nn_run();
    // Every End must carry a cycle >= its matching Begin; the RingTracer
    // keeps the open-span stack, so an empty stack at the end plus
    // validate_chrome_trace's begin/end count check covers matching.
    assert!(tracer.open_spans().is_empty());
    let summary = mesa::trace::validate_chrome_trace(&tracer.to_chrome_trace()).unwrap();
    assert_eq!(summary.begins, summary.ends);
    assert!(summary.begins > 0);
}

/// Profile reports are pure functions of the simulated execution too: the
/// same kernel at the same configuration must export byte-identical JSON
/// and text renderings, and the report must carry the profiler's headline
/// content — conserved top-down buckets, an exact heatmap fold, and the
/// controller's re-optimization rounds with their critical-path deltas.
#[test]
fn same_run_exports_byte_identical_profile_reports() {
    let profile = || {
        let kernel = by_name("nn", KernelSize::Tiny).expect("nn");
        let (run, profile) = mesa_bench::mesa_profile(&kernel, &SystemConfig::m128(), 4);
        assert!(run.report.is_some(), "nn must accelerate");
        profile
    };
    let a = profile();
    let b = profile();
    assert_eq!(a.to_json(), b.to_json());
    assert_eq!(a.render(), b.render());

    assert!(a.topdown.sums_to_total());
    assert!(a.spatial_matches_activity());
    assert!(a.spatial.as_ref().is_some_and(|s| s.total_fires() > 0));
    assert!(!a.rounds.is_empty(), "nn's iterative controller must record a round");
    assert!(a.rounds.iter().any(|r| r.critical_path_delta() != 0));
    mesa::trace::validate_json(&a.to_json()).expect("report JSON is well-formed");
}

/// Histogram merging is exact bucket-wise addition, so folding per-tenant
/// histograms in any grouping — `(a ⊎ b) ⊎ c` vs `a ⊎ (b ⊎ c)` — or
/// recording every sample into one histogram yields bit-identical
/// summaries and JSON. Fleet telemetry aggregation (soak folding episode
/// `FleetStats`) relies on this to be order- and grouping-insensitive.
#[test]
fn histogram_merge_is_associative_and_matches_whole() {
    use mesa::trace::Histogram;
    forall!(checker("trace::histogram_merge"), |(seed in 0u64..1_000_000, n in 1usize..64)| {
        let mut rng = Rng::seed_from_u64(seed);
        let mut parts = [Histogram::new(), Histogram::new(), Histogram::new()];
        let mut whole = Histogram::new();
        for _ in 0..n {
            // Bit-width-uniform samples cover every bucket, including 0.
            let bits = rng.gen_range(0..=64u64);
            let v = if bits == 0 { 0 } else { rng.gen::<u64>() >> (64 - bits) };
            parts[rng.gen_range(0..3usize)].record(v);
            whole.record(v);
        }
        let [a, b, c] = parts;
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut right_inner = b.clone();
        right_inner.merge(&c);
        let mut right = a.clone();
        right.merge(&right_inner);
        prop_assert_eq!(&left, &right);
        prop_assert_eq!(&left, &whole);
        prop_assert_eq!(left.to_json(), whole.to_json());
        prop_assert!(left.p50() <= left.p90());
        prop_assert!(left.p90() <= left.p99());
        prop_assert!(left.p99() <= left.max());
        prop_assert!(left.is_empty() || left.min() <= left.p50());
    });
}

/// Span names the host-profiler properties draw from.
const HOST_NAMES: [&str; 4] = ["detect", "translate", "map", "offload"];

/// Drives a [`mesa::trace::host::HostProfiler`] through a seed-derived
/// interleaving of begin/end/sim-cycle ops plus two adopted "worker"
/// profiles (as the parallel figures pool produces), then finishes it.
fn random_host_profile(seed: u64, ops: usize) -> mesa::trace::host::HostProfile {
    use mesa::trace::host::{ClockSpec, HostProfiler};
    let mut rng = Rng::seed_from_u64(seed);
    let mut prof = HostProfiler::from_spec(ClockSpec::Mock { step_ns: 17 });
    let mut depth = 0usize;
    for _ in 0..ops {
        match rng.gen_range(0..4u32) {
            0 if depth > 0 => {
                prof.end();
                depth -= 1;
            }
            1 => prof.attribute_sim_cycles(rng.gen_range(0..1_000u64)),
            _ => {
                prof.begin(HOST_NAMES[rng.gen_range(0..HOST_NAMES.len())]);
                depth += 1;
            }
        }
    }
    // Worker profiles merge under whatever span is open at adoption
    // time — a worker's span sum can exceed the parent's own wall time,
    // and conservation must survive that (max-of-busy-and-children).
    for step_ns in [3u64, 251] {
        let mut worker = HostProfiler::from_spec(ClockSpec::Mock { step_ns });
        worker.begin("episode");
        worker.begin("map");
        worker.attribute_sim_cycles(rng.gen_range(0..1_000u64));
        worker.end();
        prof.adopt(&worker.finish());
    }
    prof.set_gauge("episodes_per_sec", 42.0);
    // `finish` closes whatever is still open, innermost first.
    prof.finish()
}

/// The host span tree conserves wall time **exactly** at every level:
/// each span's total is its self time plus its children's totals, the
/// roots sum to the profile total, and the folded-stack export tiles
/// that same total to the nanosecond — the invariants `tracecheck
/// hostprofile` enforces on exported artifacts.
#[test]
fn host_span_tree_conserves_time_exactly() {
    forall!(checker("trace::host_conservation"), |(seed in 0u64..1_000_000, ops in 4usize..64)| {
        let profile = random_host_profile(seed, ops);
        let mut stack: Vec<&mesa::trace::host::HostSpan> = profile.roots.iter().collect();
        while let Some(span) = stack.pop() {
            let children: u64 = span.children.iter().map(mesa::trace::host::HostSpan::total_ns).sum();
            prop_assert_eq!(span.self_ns() + children, span.total_ns());
            prop_assert!(span.busy_ns <= span.total_ns());
            stack.extend(span.children.iter());
        }
        let roots: u64 = profile.roots.iter().map(mesa::trace::host::HostSpan::total_ns).sum();
        prop_assert_eq!(roots, profile.total_ns());
        let folded_sum: u64 = profile
            .to_folded()
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(|l| l.rsplit_once(' ').expect("path count").1.parse::<u64>().expect("count"))
            .sum();
        prop_assert_eq!(folded_sum, profile.total_ns());
    });
}

/// Host-profile exports under the mock clock are byte-deterministic:
/// rebuilding the same op sequence (including in-order worker adoption,
/// as `--jobs N` does) yields byte-identical `mesa.hostprofile/v1` JSON
/// and folded stacks, and the JSON is well-formed.
#[test]
fn host_profile_export_is_byte_deterministic_under_mock_clock() {
    forall!(checker("trace::host_export_determinism"), |(seed in 0u64..1_000_000, ops in 4usize..48)| {
        let a = random_host_profile(seed, ops);
        let b = random_host_profile(seed, ops);
        let json = a.to_json();
        prop_assert_eq!(&json, &b.to_json());
        prop_assert_eq!(a.to_folded(), b.to_folded());
        prop_assert!(json.contains("\"schema\":\"mesa.hostprofile/v1\""));
        prop_assert!(json.contains("\"clock\":\"mock\""));
        mesa::trace::validate_json(&json).expect("hostprofile JSON is well-formed");
    });
}

/// Arbitrary interleavings of span opens/closes (as a simulation layer
/// would produce them) leave the tracer balanced once every open span is
/// closed, and the exported Chrome trace stays well-formed.
#[test]
fn random_span_interleavings_stay_balanced() {
    const NAMES: [&str; 5] = ["detect", "translate", "map", "configure", "offload"];
    forall!(checker("trace::span_balance"), |(seed in 0u64..1_000_000, ops in 4usize..64)| {
        let mut rng = Rng::seed_from_u64(seed);
        let mut tracer = RingTracer::new(4096);
        let mut cycle = 0u64;
        let mut depth = 0usize;
        for _ in 0..ops {
            cycle += rng.gen_range(0..20u64);
            if depth > 0 && rng.gen_bool(0.4) {
                let (sub, name) = tracer.open_spans().last().cloned().unwrap();
                tracer.span_end(sub, &name, cycle);
                depth -= 1;
            } else {
                let subsystem = Subsystem::ALL[rng.gen_range(0..Subsystem::ALL.len())];
                let name = NAMES[rng.gen_range(0..NAMES.len())];
                tracer.span_begin(subsystem, name, cycle);
                depth += 1;
            }
        }
        // Close everything still open, innermost first.
        while let Some((sub, name)) = tracer.open_spans().last().cloned() {
            cycle += 1;
            tracer.span_end(sub, &name, cycle);
        }
        prop_assert!(tracer.open_spans().is_empty());
        let summary = mesa::trace::validate_chrome_trace(&tracer.to_chrome_trace())
            .expect("well-formed chrome trace");
        prop_assert_eq!(summary.begins, summary.ends);
    });
}
