//! End-to-end integration tests: every Rodinia kernel runs through the
//! full MESA pipeline (monitor → detect → translate → map → configure →
//! offload → write back) and must produce memory and register state
//! equivalent to a pure-CPU execution of the same binary.

use mesa::core::{run_offload, MesaError, RejectReason, SystemConfig};
use mesa::cpu::{CoreConfig, NullMonitor, OoOCore, RunLimits, StopReason};
use mesa::isa::MemoryIo;
use mesa::mem::{MemConfig, MemorySystem};
use mesa::workloads::{all, by_name, Kernel, KernelSize, DATA_OUT};

/// Runs the kernel on the CPU alone, to completion.
fn cpu_golden(kernel: &Kernel) -> (mesa::isa::ArchState, MemorySystem, u64) {
    let mut mem = MemorySystem::new(MemConfig::default(), 2);
    kernel.populate(mem.data_mut());
    let mut state = kernel.entry.clone();
    let mut cpu = OoOCore::new(CoreConfig::boom_baseline());
    let r = cpu.run(&kernel.program, &mut state, &mut mem, 0, RunLimits::none(), &mut NullMonitor);
    assert_eq!(r.stop, StopReason::Halted, "{}: golden run must halt", kernel.name);
    (state, mem, r.cycles)
}

/// Runs the kernel under MESA, then finishes the remaining instructions on
/// the CPU.
fn mesa_run(
    kernel: &Kernel,
    system: &SystemConfig,
) -> Result<(mesa::isa::ArchState, MemorySystem, mesa::core::OffloadReport), MesaError> {
    let mut mem = MemorySystem::new(MemConfig::default(), 2);
    kernel.populate(mem.data_mut());
    let mut state = kernel.entry.clone();
    let report = run_offload(&kernel.program, &mut state, &mut mem, system)?;
    // Resume on the CPU to execute the exit stub (and anything after).
    let mut cpu = OoOCore::new(CoreConfig::boom_baseline());
    let r = cpu.run(&kernel.program, &mut state, &mut mem, 0, RunLimits::none(), &mut NullMonitor);
    assert_eq!(r.stop, StopReason::Halted, "{}: post-offload run must halt", kernel.name);
    Ok((state, mem, report))
}

/// Kernels MESA accelerates on M-128 (everything except the inner-loop
/// b+tree).
fn accelerable() -> Vec<Kernel> {
    all(KernelSize::Small)
        .into_iter()
        .filter(|k| k.name != "btree")
        .collect()
}

#[test]
fn every_accelerable_kernel_offloads_on_m128() {
    for kernel in accelerable() {
        let report = mesa_run(&kernel, &SystemConfig::m128());
        let (_, _, report) = report.unwrap_or_else(|e| {
            panic!("{}: offload failed: {e}", kernel.name);
        });
        assert!(
            report.accel_iterations > 0,
            "{}: accelerator ran no iterations",
            kernel.name
        );
    }
}

#[test]
fn offloaded_memory_state_matches_cpu_golden() {
    for kernel in accelerable() {
        let (_, mut golden_mem, _) = cpu_golden(&kernel);
        let (_, mut mesa_mem, _) =
            mesa_run(&kernel, &SystemConfig::m128()).expect(kernel.name);
        // Compare the output region word by word.
        let words = kernel.iterations * 4; // generous cover of outputs
        for i in 0..words {
            let addr = DATA_OUT + 4 * i;
            assert_eq!(
                golden_mem.data_mut().load(addr, 4),
                mesa_mem.data_mut().load(addr, 4),
                "{}: output word {i} differs",
                kernel.name
            );
        }
        // lud and gaussian also update their input rows in place.
        if kernel.name == "lud" || kernel.name == "gaussian" {
            for i in 0..kernel.iterations {
                let addr = mesa::workloads::DATA_A + 4 * i;
                assert_eq!(
                    golden_mem.data_mut().load(addr, 4),
                    mesa_mem.data_mut().load(addr, 4),
                    "{}: in-place word {i} differs", kernel.name
                );
            }
        }
    }
}

#[test]
fn btree_is_rejected() {
    // The loop-stream detector locks onto btree's *inner* key-scan loop
    // (innermost backward branch), which fails C3's trip-count check; the
    // outer loop would fail C2 structurally (inner loop). Either way,
    // btree never accelerates — matching the paper's Fig. 14 footnote.
    let kernel = by_name("btree", KernelSize::Small).unwrap();
    let err = mesa_run(&kernel, &SystemConfig::m128()).unwrap_err();
    assert!(
        matches!(
            err,
            MesaError::Rejected(
                RejectReason::Structure(_) | RejectReason::TooFewIterations { .. }
            )
        ),
        "expected rejection, got {err:?}"
    );
}

#[test]
fn srad_fails_c1_on_m64_but_offloads_on_m128() {
    let kernel = by_name("srad", KernelSize::Small).unwrap();
    // M-64: 64 instruction slots < srad's ~90-instruction body.
    let err = mesa_run(&kernel, &SystemConfig::m64()).unwrap_err();
    assert!(
        matches!(err, MesaError::Rejected(RejectReason::TooLarge { .. })),
        "expected C1 rejection on M-64, got {err:?}"
    );
    // M-128 accommodates it.
    let (_, _, report) = mesa_run(&kernel, &SystemConfig::m128()).expect("m128 fits srad");
    assert!(report.accel_iterations > 0);
}

#[test]
fn annotated_kernels_tile_on_big_grids() {
    for name in ["nn", "streamcluster", "pathfinder", "bfs"] {
        let kernel = by_name(name, KernelSize::Small).unwrap();
        let (_, _, report) = mesa_run(&kernel, &SystemConfig::m512()).expect(name);
        assert!(report.tiles > 1, "{name}: expected tiling on M-512, got {}", report.tiles);
    }
}

#[test]
fn serial_recurrence_kernel_does_not_tile() {
    let kernel = by_name("nw", KernelSize::Small).unwrap();
    let (_, _, report) = mesa_run(&kernel, &SystemConfig::m512()).expect("nw offloads");
    assert_eq!(report.tiles, 1, "nw's carried recurrence forbids tiling");
}

#[test]
fn final_registers_match_cpu_golden() {
    for name in ["nn", "pathfinder", "nw", "lud"] {
        let kernel = by_name(name, KernelSize::Small).unwrap();
        let (golden_state, _, _) = cpu_golden(&kernel);
        let (mesa_state, _, _) = mesa_run(&kernel, &SystemConfig::m128()).expect(name);
        // Architectural integer registers must match exactly after the
        // exit stub (a7 etc. included).
        for r in 0..32u8 {
            let reg = mesa::isa::Reg::x(r);
            assert_eq!(
                golden_state.read(reg),
                mesa_state.read(reg),
                "{name}: x{r} differs after completion"
            );
        }
    }
}

#[test]
fn config_latency_in_table2_range() {
    for kernel in accelerable() {
        let (_, _, report) = mesa_run(&kernel, &SystemConfig::m128()).expect(kernel.name);
        let total = report.config.total();
        assert!(
            (100..=20_000).contains(&total),
            "{}: config latency {total} far outside the ns-µs JIT range",
            kernel.name
        );
    }
}

#[test]
fn memory_bound_bfs_shows_weak_gains() {
    // Fig. 11 discussion: BFS-class kernels are "not suitable for spatial
    // accelerators" — they must not show the large speedups compute
    // kernels do.
    let bfs = by_name("bfs", KernelSize::Small).unwrap();
    let (_, _, bfs_report) = mesa_run(&bfs, &SystemConfig::m128()).expect("bfs");
    let (_, _, bfs_cycles) = {
        let (s, m, c) = cpu_golden(&bfs);
        (s, m, c)
    };
    let bfs_speedup = bfs_cycles as f64 / bfs_report.total_cycles() as f64;

    let nn = by_name("nn", KernelSize::Small).unwrap();
    let (_, _, nn_report) = mesa_run(&nn, &SystemConfig::m128()).expect("nn");
    let (_, _, nn_cycles) = {
        let (s, m, c) = cpu_golden(&nn);
        (s, m, c)
    };
    let nn_speedup = nn_cycles as f64 / nn_report.total_cycles() as f64;

    assert!(
        nn_speedup > bfs_speedup,
        "compute-dense nn ({nn_speedup:.2}x) must beat memory-bound bfs ({bfs_speedup:.2}x)"
    );
}
