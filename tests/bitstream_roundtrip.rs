//! Bitstream integration: for every Rodinia kernel, the configuration the
//! controller builds must survive serialization to the wire format and
//! back, and the *decoded* configuration must execute identically to the
//! original — i.e. what goes over the config bus is the whole truth.

use mesa::accel::{decode_bitstream, encode_bitstream, AccelConfig, Coord, SpatialAccelerator};
use mesa::core::{
    analyze_memopts, build_accel_program, map_instructions, Ldfg, MapperConfig, OptFlags,
};
use mesa::isa::OpClass;
use mesa::mem::{MemConfig, MemorySystem};
use mesa_bench::region_ldfg;
use mesa::workloads::{all, KernelSize};

fn build_config(ldfg: &Ldfg, kernel: &mesa::workloads::Kernel) -> mesa::accel::AccelProgram {
    let accel_cfg = AccelConfig::m128();
    let sa = SpatialAccelerator::new(accel_cfg);
    let supports = |c: Coord, class: OpClass| accel_cfg.supports(c, class);
    let sdfg = map_instructions(
        ldfg,
        accel_cfg.grid(),
        &supports,
        sa.latency_model(),
        &MapperConfig::default(),
    );
    let plan = analyze_memopts(ldfg);
    build_accel_program(
        ldfg,
        &sdfg,
        Some(&plan),
        kernel.annotation,
        &accel_cfg,
        &OptFlags::default(),
        kernel.iterations,
    )
}

#[test]
fn every_kernel_config_roundtrips_through_the_bitstream() {
    for kernel in all(KernelSize::Tiny) {
        let Some(ldfg) = region_ldfg(&kernel) else { continue };
        let prog = build_config(&ldfg, &kernel);
        let words = encode_bitstream(&prog)
            .unwrap_or_else(|e| panic!("{}: bitstream encode failed: {e}", kernel.name));
        let decoded = decode_bitstream(&words).unwrap_or_else(|e| {
            panic!("{}: bitstream decode failed: {e}", kernel.name);
        });
        assert_eq!(decoded, prog, "{}: configuration altered by the wire", kernel.name);
    }
}

#[test]
fn decoded_bitstream_executes_identically() {
    for kernel in all(KernelSize::Tiny) {
        if kernel.name == "btree" {
            continue; // inner loop: region_ldfg yields the inner scan only
        }
        let Some(ldfg) = region_ldfg(&kernel) else { continue };
        let prog = build_config(&ldfg, &kernel);
        let via_wire =
            decode_bitstream(&encode_bitstream(&prog).expect("encodes")).expect("decodes");

        let accel = SpatialAccelerator::new(AccelConfig::m128());
        let run = |p: &mesa::accel::AccelProgram| {
            let mut mem = MemorySystem::new(MemConfig::default(), 1);
            kernel.populate(mem.data_mut());
            accel
                .execute(p, &kernel.entry, &mut mem, 0, 100_000)
                .unwrap_or_else(|e| panic!("{}: {e}", kernel.name))
        };
        let a = run(&prog);
        let b = run(&via_wire);
        assert_eq!(a.iterations, b.iterations, "{}", kernel.name);
        assert_eq!(a.cycles, b.cycles, "{}", kernel.name);
        assert_eq!(a.final_regs, b.final_regs, "{}", kernel.name);
    }
}

#[test]
fn bitstream_size_is_plausible_for_the_config_bus() {
    // The imap model charges 3 cycles per node to stream the bitstream; at
    // 64 bits per cycle that allows ~192 bits per node. Our format uses 8
    // words fixed + guards per node, i.e. a few hundred bits — same order
    // of magnitude, documented here as a consistency check.
    let kernel = mesa::workloads::by_name("srad", KernelSize::Tiny).unwrap();
    let ldfg = region_ldfg(&kernel).unwrap();
    let prog = build_config(&ldfg, &kernel);
    let bits = mesa::accel::bitstream::size_bits(&prog);
    let per_node = bits / prog.len();
    assert!(
        (256..=1024).contains(&per_node),
        "{per_node} bits/node outside the plausible config-bus range"
    );
}
