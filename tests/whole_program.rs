//! Whole-program integration: programs with *several* hot loops, loops
//! that repeat (exercising the configuration cache), and loops MESA must
//! reject and leave on the CPU — driven end-to-end through
//! `MesaController::run_program`.

use mesa::core::{MesaController, SystemConfig};
use mesa::cpu::{CoreConfig, OoOCore};
use mesa::isa::reg::abi::*;
use mesa::isa::{ArchState, Asm, Program, Xlen};
use mesa::mem::{MemConfig, MemorySystem};

const A: u64 = 0x10_0000;
const B: u64 = 0x20_0000;
const OUT: u64 = 0x30_0000;
const N: u64 = 1500;

/// Two back-to-back hot loops: sum += a[i], then b[i] = a[i] * 3.
fn two_loop_program() -> Program {
    let mut a = Asm::new(0x1000);
    // Loop 1: reduction.
    a.label("sum");
    a.lw(T0, A0, 0);
    a.add(S0, S0, T0);
    a.addi(A0, A0, 4);
    a.bltu(A0, A1, "sum");
    // Glue: reset the cursor.
    a.li(A0, A as i64);
    // Loop 2: scale.
    a.label("scale");
    a.lw(T0, A0, 0);
    a.slli(T1, T0, 1);
    a.add(T1, T1, T0);
    a.sw(T1, A4, 0);
    a.addi(A0, A0, 4);
    a.addi(A4, A4, 4);
    a.bltu(A0, A1, "scale");
    a.sw(S0, A5, 0);
    a.li(A7, 93);
    a.ecall();
    a.finish().unwrap()
}

fn fresh_system() -> (ArchState, MemorySystem) {
    let mut st = ArchState::new(0x1000, Xlen::Rv32);
    st.write(A0, A);
    st.write(A1, A + 4 * N);
    st.write(A4, OUT);
    st.write(A5, B);
    let mut mem = MemorySystem::new(MemConfig::default(), 2);
    for i in 0..N {
        mem.data_mut().store_u32(A + 4 * i, (i % 9 + 1) as u32);
    }
    (st, mem)
}

#[test]
fn both_hot_loops_offload_in_one_run() {
    let program = two_loop_program();
    let (mut st, mut mem) = fresh_system();
    let mut controller = MesaController::new(SystemConfig::m128());
    let mut cpu = OoOCore::new(CoreConfig::boom_baseline());

    let report = controller.run_program(&program, &mut st, &mut mem, &mut cpu, 10_000_000);
    assert!(report.halted, "program must reach its exit");
    assert_eq!(report.offloads.len(), 2, "both loops offload: {report:?}");
    assert!(report.rejections.is_empty());

    // Functional results are exact.
    let expected_sum: u32 = (0..N).map(|i| (i % 9 + 1) as u32).sum();
    assert_eq!(mem.data_mut().load_u32(B), expected_sum);
    for i in 0..N {
        let a_val = (i % 9 + 1) as u32;
        assert_eq!(mem.data_mut().load_u32(OUT + 4 * i), a_val * 3, "out[{i}]");
    }
}

#[test]
fn reencountered_loop_hits_the_config_cache() {
    // The same loop body at the same PCs, entered twice (outer trip via a
    // glue jump decremented counter).
    let mut a = Asm::new(0x1000);
    a.li(S1, 2); // outer trips
    a.label("outer_entry");
    a.li(A0, A as i64);
    a.label("loop");
    a.lw(T0, A0, 0);
    a.sw(T0, A4, 0);
    a.addi(A0, A0, 4);
    a.addi(A4, A4, 4);
    a.bltu(A0, A1, "loop");
    a.addi(S1, S1, -1);
    a.bne(S1, ZERO, "outer_entry");
    a.li(A7, 93);
    a.ecall();
    let program = a.finish().unwrap();

    let (mut st, mut mem) = fresh_system();
    let mut controller = MesaController::new(SystemConfig::m128());
    let mut cpu = OoOCore::new(CoreConfig::boom_baseline());
    let report = controller.run_program(&program, &mut st, &mut mem, &mut cpu, 10_000_000);

    assert!(report.halted);
    // The copy loop offloads at least twice; the second time from cache.
    // (The outer backward branch is itself detected but rejected as an
    // inner-loop-containing region or never gets hot — either is fine.)
    let copy_offloads: Vec<_> = report
        .offloads
        .iter()
        .filter(|o| o.region.0 == 0x1008)
        .collect();
    assert!(copy_offloads.len() >= 2, "copy loop twice: {report:?}");
    assert!(
        copy_offloads.iter().any(|o| o.from_cache),
        "second encounter must hit the config cache"
    );
}

#[test]
fn rejected_inner_loop_is_blacklisted_and_program_completes() {
    // First a tiny 8-trip loop (rejected: too few iterations), then an
    // accelerable one.
    let mut a = Asm::new(0x1000);
    a.li(T2, 8);
    a.label("tiny");
    a.addi(T3, T3, 1);
    a.addi(T4, T4, 2);
    a.addi(T5, T5, 3);
    a.bne(T3, T2, "tiny");
    a.label("big");
    a.lw(T0, A0, 0);
    a.sw(T0, A4, 0);
    a.addi(A0, A0, 4);
    a.addi(A4, A4, 4);
    a.bltu(A0, A1, "big");
    a.li(A7, 93);
    a.ecall();
    let program = a.finish().unwrap();

    let (mut st, mut mem) = fresh_system();
    let mut controller = MesaController::new(SystemConfig::m128());
    let mut cpu = OoOCore::new(CoreConfig::boom_baseline());
    let report = controller.run_program(&program, &mut st, &mut mem, &mut cpu, 10_000_000);

    assert!(report.halted, "{report:?}");
    assert!(
        report.offloads.iter().any(|o| o.region.0 == 0x1014),
        "the big loop offloads: {report:?}"
    );
    // The tiny loop either never got hot enough or was rejected; if it was
    // detected, its rejection is recorded and it must appear only once
    // (blacklisted afterwards).
    assert!(report.rejections.len() <= 1);

    for i in 0..N {
        assert_eq!(
            mem.data_mut().load_u32(OUT + 4 * i),
            (i % 9 + 1) as u32,
            "copy result {i}"
        );
    }
}
