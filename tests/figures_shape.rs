//! Shape assertions for the paper's evaluation claims: these tests pin the
//! *qualitative* results — who wins, roughly by how much, where knees and
//! crossovers fall — so regressions in the simulators or the controller
//! show up as figure-shape breaks, not just unit-test failures.
//!
//! Exact values live in `EXPERIMENTS.md`; sizes here are chosen to keep
//! debug-mode runtime reasonable.

use mesa_bench::{fig12, fig13, fig15, fig16, table2, BASELINE_CORES};
use mesa_bench::{cpu_multicore, mesa_offload};
use mesa_core::SystemConfig;
use mesa_workloads::{by_name, KernelSize};

#[test]
fn fig11_shape_compute_kernels_beat_multicore_on_m512() {
    // The paper's M-512 averages 1.81x over the 16-core baseline, carried
    // by the compute-dense kernels.
    for name in ["nn", "cfd", "streamcluster"] {
        let kernel = by_name(name, KernelSize::Small).unwrap();
        let base = cpu_multicore(&kernel, BASELINE_CORES);
        let run = mesa_offload(&kernel, &SystemConfig::m512(), BASELINE_CORES);
        let speedup = base.cycles as f64 / run.cycles as f64;
        assert!(speedup > 1.3, "{name}: M-512 speedup {speedup:.2} too low");
    }
}

#[test]
fn fig11_shape_m512_not_slower_than_m128() {
    for name in ["nn", "kmeans"] {
        let kernel = by_name(name, KernelSize::Small).unwrap();
        let m128 = mesa_offload(&kernel, &SystemConfig::m128(), BASELINE_CORES);
        let m512 = mesa_offload(&kernel, &SystemConfig::m512(), BASELINE_CORES);
        assert!(
            m512.cycles <= m128.cycles * 11 / 10,
            "{name}: M-512 ({}) should not trail M-128 ({})",
            m512.cycles,
            m128.cycles
        );
    }
}

#[test]
fn fig12_shape_scheduling_only_trails_opencgra_and_opts_flip_it() {
    let rows = fig12(KernelSize::Small);
    assert_eq!(rows.len(), 8);
    // "MESA falls slightly behind in most benchmarks" without opts.
    let trailing = rows.iter().filter(|r| r.mesa_noopt_ipc <= r.opencgra_ipc).count();
    assert!(trailing >= 6, "only {trailing}/8 kernels trail OpenCGRA without opts");
    // "MESA with optimizations enabled easily outperforms OpenCGRA" in the
    // majority of kernels (loop parallelization).
    let winning = rows.iter().filter(|r| r.mesa_opt_ipc > r.opencgra_ipc).count();
    assert!(winning >= 5, "only {winning}/8 kernels win with optimizations");
    // And optimizations never hurt.
    for r in &rows {
        assert!(
            r.mesa_opt_ipc >= r.mesa_noopt_ipc * 0.9,
            "{}: optimizations regressed IPC {:.2} -> {:.2}",
            r.name,
            r.mesa_noopt_ipc,
            r.mesa_opt_ipc
        );
    }
}

#[test]
fn fig13_shape_memory_and_compute_dominate() {
    let rep = fig13(KernelSize::Small);
    let [compute, memory, _interconnect, control] = rep.energy_fractions;
    // Paper: "almost 87% of total energy is spent on either memory or
    // computation ... with a small fraction on the control subsystem."
    assert!(
        compute + memory > 0.70,
        "memory+compute fraction {:.2} too small",
        compute + memory
    );
    assert!(control < 0.15, "control fraction {control:.2} too large");
}

#[test]
fn fig15_shape_scaling_knees_at_memory_ports() {
    let rows = fig15(KernelSize::Small);
    let at = |pes: usize| rows.iter().find(|r| r.pes == pes).expect("row");
    // Scaling is real through the middle of the range…
    assert!(at(64).speedup > 1.8, "64 PEs: {:.2}", at(64).speedup);
    assert!(at(128).speedup > 3.0, "128 PEs: {:.2}", at(128).speedup);
    assert!(at(256).speedup > at(128).speedup);
    // …but memory ports stop the default config beyond the knee, while
    // ideal memory keeps going (the figure's central claim).
    let knee_gain = at(512).speedup / at(256).speedup;
    assert!(knee_gain < 1.25, "512 PEs should be past the knee, gain {knee_gain:.2}");
    assert!(
        at(512).speedup_ideal_mem > at(512).speedup,
        "ideal memory must out-scale limited ports at 512 PEs"
    );
    // Nothing scales beyond the hardware ideal.
    for r in &rows {
        assert!(r.speedup <= r.ideal * 1.05, "{} PEs exceed ideal", r.pes);
    }
}

#[test]
fn fig16_shape_amortization_curve() {
    let (series, break_even) = fig16(KernelSize::Small);
    // Strictly decreasing energy per iteration.
    for w in series.windows(2) {
        assert!(w[1].1 < w[0].1, "series must decrease: {w:?}");
    }
    // Break-even lands in the paper's "50-100 iterations" ballpark.
    assert!(
        (30..=250).contains(&break_even),
        "break-even {break_even} outside the plausible band"
    );
}

#[test]
fn table2_shape_mesa_between_dynaspam_and_dora() {
    let rows = table2(KernelSize::Small);
    let mesa = rows.iter().find(|r| r.work == "MESA").unwrap();
    let nums: Vec<u64> = mesa
        .config_latency
        .split(|c: char| !c.is_ascii_digit())
        .filter(|s| !s.is_empty())
        .map(|s| s.parse().unwrap())
        .collect();
    let (lo, hi) = (*nums.iter().min().unwrap(), *nums.iter().max().unwrap());
    // Slower than DynaSpAM's ns-range JIT…
    assert!(lo > 64, "MESA min {lo} should exceed DynaSpAM's 64 cycles");
    // …but orders of magnitude below DORA's ms-range.
    assert!(hi < 100_000, "MESA max {hi} should stay far below ms-range");
}
