//! A small embedded assembler for constructing RISC-V programs in Rust.
//!
//! Workload kernels (the Rodinia loop bodies in `mesa-workloads`) are
//! written with this DSL rather than cross-compiled, since MESA only ever
//! observes the hot loop's machine code. Labels resolve to PC-relative
//! offsets at [`Asm::finish`] time, exactly as a one-pass assembler with
//! fixups would.

use crate::{codec, EncodeError, Instruction, Opcode, Reg};
use std::collections::HashMap;
use std::fmt;

/// An OpenMP-style parallelism annotation attached to a PC range.
///
/// MESA does not speculate at the thread level; loop-level optimizations
/// (tiling, pipelining — paper §4.3) are applied only to regions the
/// programmer pre-annotated with `omp parallel` / `omp simd`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParallelKind {
    /// `#pragma omp parallel for`: iterations fully independent.
    Parallel,
    /// `#pragma omp simd`: iterations independent and vectorizable.
    Simd,
}

/// A pragma recorded against a half-open PC range `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Annotation {
    /// First PC of the annotated loop.
    pub start_pc: u64,
    /// One past the last PC of the annotated loop.
    pub end_pc: u64,
    /// Which pragma was applied.
    pub kind: ParallelKind,
}

/// An assembled program: a base PC, the decoded instructions, and any
/// parallelism annotations.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// Address of the first instruction.
    pub base_pc: u64,
    /// Instructions in layout order, 4 bytes apart.
    pub instrs: Vec<Instruction>,
    /// OpenMP-style annotations, sorted by `start_pc`.
    pub annotations: Vec<Annotation>,
}

impl Program {
    /// The instruction at `pc`, if it falls inside the program.
    #[must_use]
    pub fn fetch(&self, pc: u64) -> Option<&Instruction> {
        if pc < self.base_pc || !(pc - self.base_pc).is_multiple_of(4) {
            return None;
        }
        self.instrs.get(((pc - self.base_pc) / 4) as usize)
    }

    /// One past the address of the last instruction.
    #[must_use]
    pub fn end_pc(&self) -> u64 {
        self.base_pc + 4 * self.instrs.len() as u64
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// `true` when the program contains no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Encodes the whole program to machine words.
    ///
    /// # Errors
    /// Returns the first [`EncodeError`] encountered.
    pub fn encode(&self) -> Result<Vec<u32>, EncodeError> {
        self.instrs.iter().map(codec::encode).collect()
    }

    /// Decodes a program from machine words laid out from `base_pc`.
    ///
    /// # Errors
    /// Returns the first [`codec::DecodeError`] encountered.
    pub fn decode(base_pc: u64, words: &[u32]) -> Result<Self, codec::DecodeError> {
        let instrs = words.iter().map(|&w| codec::decode(w)).collect::<Result<_, _>>()?;
        Ok(Program { base_pc, instrs, annotations: Vec::new() })
    }

    /// The annotation covering `pc`, if any.
    #[must_use]
    pub fn annotation_at(&self, pc: u64) -> Option<&Annotation> {
        self.annotations.iter().find(|a| a.start_pc <= pc && pc < a.end_pc)
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (idx, i) in self.instrs.iter().enumerate() {
            writeln!(f, "{:#010x}: {}", self.base_pc + 4 * idx as u64, i)?;
        }
        Ok(())
    }
}

/// Errors produced while assembling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A label was referenced but never defined.
    UndefinedLabel(String),
    /// A label was defined twice.
    DuplicateLabel(String),
    /// An instruction failed to encode after label resolution.
    Encode(EncodeError),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            AsmError::Encode(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for AsmError {}

impl From<EncodeError> for AsmError {
    fn from(e: EncodeError) -> Self {
        AsmError::Encode(e)
    }
}

/// The label-resolving assembler.
///
/// ```
/// use mesa_isa::{Asm, Opcode, reg::abi::*};
/// let mut a = Asm::new(0x1000);
/// a.label("loop");
/// a.lw(T0, A0, 0);
/// a.add(T1, T1, T0);
/// a.addi(A0, A0, 4);
/// a.bne(A0, A1, "loop");
/// let prog = a.finish()?;
/// assert_eq!(prog.len(), 4);
/// assert!(prog.instrs[3].is_backward_branch());
/// # Ok::<(), mesa_isa::AsmError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Asm {
    base_pc: u64,
    instrs: Vec<Instruction>,
    labels: HashMap<String, usize>,
    fixups: Vec<(usize, String)>,
    annotations: Vec<(usize, Option<usize>, ParallelKind)>,
    open_pragma: Option<usize>,
}

impl Asm {
    /// Starts assembling at `base_pc`.
    #[must_use]
    pub fn new(base_pc: u64) -> Self {
        Asm {
            base_pc,
            instrs: Vec::new(),
            labels: HashMap::new(),
            fixups: Vec::new(),
            annotations: Vec::new(),
            open_pragma: None,
        }
    }

    /// Current PC (address the next emitted instruction will get).
    #[must_use]
    pub fn pc(&self) -> u64 {
        self.base_pc + 4 * self.instrs.len() as u64
    }

    /// Defines `name` at the current PC. Later (or earlier) branches may
    /// reference it.
    pub fn label(&mut self, name: &str) -> &mut Self {
        // Duplicates are detected at finish() so that the builder methods
        // can stay infallible.
        self.labels
            .entry(name.to_string())
            .and_modify(|v| *v = usize::MAX) // poisoned: duplicate
            .or_insert(self.instrs.len());
        self
    }

    /// Opens an `omp parallel`/`omp simd` region covering instructions
    /// emitted until [`Asm::end_pragma`].
    pub fn pragma(&mut self, kind: ParallelKind) -> &mut Self {
        self.annotations.push((self.instrs.len(), None, kind));
        self.open_pragma = Some(self.annotations.len() - 1);
        self
    }

    /// Closes the most recently opened pragma region.
    pub fn end_pragma(&mut self) -> &mut Self {
        if let Some(idx) = self.open_pragma.take() {
            self.annotations[idx].1 = Some(self.instrs.len());
        }
        self
    }

    /// Emits an already-built instruction.
    pub fn raw(&mut self, i: Instruction) -> &mut Self {
        self.instrs.push(i);
        self
    }

    fn emit_label_ref(&mut self, i: Instruction, target: &str) -> &mut Self {
        self.fixups.push((self.instrs.len(), target.to_string()));
        self.instrs.push(i);
        self
    }

    /// Resolves labels and returns the finished [`Program`].
    ///
    /// # Errors
    /// Returns [`AsmError`] for undefined/duplicate labels or encoding
    /// failures.
    pub fn finish(mut self) -> Result<Program, AsmError> {
        for (name, &at) in &self.labels {
            if at == usize::MAX {
                return Err(AsmError::DuplicateLabel(name.clone()));
            }
        }
        for (at, label) in std::mem::take(&mut self.fixups) {
            let &target = self
                .labels
                .get(&label)
                .ok_or_else(|| AsmError::UndefinedLabel(label.clone()))?;
            let offset = (target as i64 - at as i64) * 4;
            self.instrs[at].imm = offset;
        }
        let program = Program {
            base_pc: self.base_pc,
            instrs: self.instrs,
            annotations: self
                .annotations
                .iter()
                .map(|&(s, e, kind)| Annotation {
                    start_pc: self.base_pc + 4 * s as u64,
                    end_pc: self.base_pc + 4 * e.unwrap_or(s) as u64,
                    kind,
                })
                .collect(),
        };
        // Validate that everything encodes (catches out-of-range label
        // offsets immediately rather than at simulation time).
        program.encode()?;
        Ok(program)
    }
}

macro_rules! asm_reg3 {
    ($($fn_name:ident => $op:ident;)*) => {
        $(
            #[doc = concat!("Emits `", stringify!($fn_name), " rd, rs1, rs2`.")]
            pub fn $fn_name(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
                self.raw(Instruction::reg3(Opcode::$op, rd, rs1, rs2))
            }
        )*
    };
}

macro_rules! asm_reg_imm {
    ($($fn_name:ident => $op:ident;)*) => {
        $(
            #[doc = concat!("Emits `", stringify!($fn_name), " rd, rs1, imm`.")]
            pub fn $fn_name(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
                self.raw(Instruction::reg_imm(Opcode::$op, rd, rs1, imm))
            }
        )*
    };
}

macro_rules! asm_load {
    ($($fn_name:ident => $op:ident;)*) => {
        $(
            #[doc = concat!("Emits `", stringify!($fn_name), " rd, offset(base)`.")]
            pub fn $fn_name(&mut self, rd: Reg, base: Reg, offset: i64) -> &mut Self {
                self.raw(Instruction::load(Opcode::$op, rd, base, offset))
            }
        )*
    };
}

macro_rules! asm_store {
    ($($fn_name:ident => $op:ident;)*) => {
        $(
            #[doc = concat!("Emits `", stringify!($fn_name), " src, offset(base)`.")]
            pub fn $fn_name(&mut self, src: Reg, base: Reg, offset: i64) -> &mut Self {
                self.raw(Instruction::store(Opcode::$op, src, base, offset))
            }
        )*
    };
}

macro_rules! asm_branch {
    ($($fn_name:ident => $op:ident;)*) => {
        $(
            #[doc = concat!("Emits `", stringify!($fn_name), " rs1, rs2, label`.")]
            pub fn $fn_name(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Self {
                self.emit_label_ref(
                    Instruction::branch(Opcode::$op, rs1, rs2, 0),
                    label,
                )
            }
        )*
    };
}

impl Asm {
    asm_reg3! {
        add => Add; sub => Sub; sll => Sll; slt => Slt; sltu => Sltu;
        xor => Xor; srl => Srl; sra => Sra; or => Or; and => And;
        mul => Mul; mulh => Mulh; mulhu => Mulhu; div => Div; divu => Divu;
        rem => Rem; remu => Remu;
        addw => Addw; subw => Subw;
        fadd_s => FaddS; fsub_s => FsubS; fmul_s => FmulS; fdiv_s => FdivS;
        fmin_s => FminS; fmax_s => FmaxS;
        feq_s => FeqS; flt_s => FltS; fle_s => FleS;
        fsgnj_s => FsgnjS; fsgnjn_s => FsgnjnS; fsgnjx_s => FsgnjxS;
    }

    asm_reg_imm! {
        addi => Addi; slti => Slti; sltiu => Sltiu; xori => Xori;
        ori => Ori; andi => Andi; slli => Slli; srli => Srli; srai => Srai;
        addiw => Addiw;
    }

    asm_load! {
        lb => Lb; lh => Lh; lw => Lw; lbu => Lbu; lhu => Lhu;
        lwu => Lwu; ld => Ld; flw => Flw;
    }

    asm_store! {
        sb => Sb; sh => Sh; sw => Sw; sd => Sd; fsw => Fsw;
    }

    asm_branch! {
        beq => Beq; bne => Bne; blt => Blt; bge => Bge;
        bltu => Bltu; bgeu => Bgeu;
    }

    /// Emits `fsqrt.s rd, rs1`.
    pub fn fsqrt_s(&mut self, rd: Reg, rs1: Reg) -> &mut Self {
        self.raw(Instruction {
            op: Opcode::FsqrtS,
            rd: Some(rd),
            rs1: Some(rs1),
            rs2: None,
            rs3: None,
            imm: 0,
        })
    }

    /// Emits `fcvt.s.w rd, rs1` (int → float).
    pub fn fcvt_s_w(&mut self, rd: Reg, rs1: Reg) -> &mut Self {
        self.raw(Instruction {
            op: Opcode::FcvtSW,
            rd: Some(rd),
            rs1: Some(rs1),
            rs2: None,
            rs3: None,
            imm: 0,
        })
    }

    /// Emits `fcvt.w.s rd, rs1` (float → int, toward zero in this model).
    pub fn fcvt_w_s(&mut self, rd: Reg, rs1: Reg) -> &mut Self {
        self.raw(Instruction {
            op: Opcode::FcvtWS,
            rd: Some(rd),
            rs1: Some(rs1),
            rs2: None,
            rs3: None,
            imm: 0,
        })
    }

    /// Emits `fmv.w.x rd, rs1`.
    pub fn fmv_w_x(&mut self, rd: Reg, rs1: Reg) -> &mut Self {
        self.raw(Instruction {
            op: Opcode::FmvWX,
            rd: Some(rd),
            rs1: Some(rs1),
            rs2: None,
            rs3: None,
            imm: 0,
        })
    }

    /// Emits `fmv.x.w rd, rs1`.
    pub fn fmv_x_w(&mut self, rd: Reg, rs1: Reg) -> &mut Self {
        self.raw(Instruction {
            op: Opcode::FmvXW,
            rd: Some(rd),
            rs1: Some(rs1),
            rs2: None,
            rs3: None,
            imm: 0,
        })
    }

    /// Emits `fmadd.s rd, rs1, rs2, rs3`.
    pub fn fmadd_s(&mut self, rd: Reg, rs1: Reg, rs2: Reg, rs3: Reg) -> &mut Self {
        self.raw(Instruction::reg4(Opcode::FmaddS, rd, rs1, rs2, rs3))
    }

    /// Emits `lui rd, imm` (`imm` is the full value, low 12 bits zero).
    pub fn lui(&mut self, rd: Reg, imm: i64) -> &mut Self {
        self.raw(Instruction::upper(Opcode::Lui, rd, imm))
    }

    /// Emits `jal rd, label`.
    pub fn jal(&mut self, rd: Reg, label: &str) -> &mut Self {
        self.emit_label_ref(Instruction::jal(rd, 0), label)
    }

    /// Emits `jalr rd, offset(rs1)`.
    pub fn jalr(&mut self, rd: Reg, rs1: Reg, offset: i64) -> &mut Self {
        self.raw(Instruction {
            op: Opcode::Jalr,
            rd: Some(rd),
            rs1: Some(rs1),
            rs2: None,
            rs3: None,
            imm: offset,
        })
    }

    /// Emits `ecall`.
    pub fn ecall(&mut self) -> &mut Self {
        self.raw(Instruction::system(Opcode::Ecall))
    }

    /// Emits `nop`.
    pub fn nop(&mut self) -> &mut Self {
        self.raw(Instruction::nop())
    }

    /// Emits `li rd, value` as one or two instructions (`lui` + `addi`).
    ///
    /// # Panics
    /// Panics if `value` does not fit in 32 bits.
    pub fn li(&mut self, rd: Reg, value: i64) -> &mut Self {
        assert!(
            (-(1i64 << 31)..(1i64 << 31)).contains(&value),
            "li value {value} does not fit in 32 bits"
        );
        if (-2048..2048).contains(&value) {
            return self.addi(rd, Reg::ZERO, value);
        }
        let hi = (value + 0x800) >> 12 << 12;
        let lo = value - hi;
        // Sign-extend hi to the canonical LUI range.
        let hi = ((hi as i32) as i64) & !0xFFF;
        self.lui(rd, hi);
        if lo != 0 {
            self.addi(rd, rd, lo);
        }
        self
    }

    /// Emits `mv rd, rs` (`addi rd, rs, 0`).
    pub fn mv(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.addi(rd, rs, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::abi::*;

    #[test]
    fn backward_label_resolves_negative() {
        let mut a = Asm::new(0x1000);
        a.label("top");
        a.addi(A0, A0, 1);
        a.addi(A1, A1, -1);
        a.bne(A1, ZERO, "top");
        let p = a.finish().unwrap();
        assert_eq!(p.instrs[2].imm, -8);
    }

    #[test]
    fn forward_label_resolves_positive() {
        let mut a = Asm::new(0);
        a.beq(A0, ZERO, "skip");
        a.addi(A1, A1, 1);
        a.label("skip");
        a.addi(A2, A2, 1);
        let p = a.finish().unwrap();
        assert_eq!(p.instrs[0].imm, 8);
    }

    #[test]
    fn undefined_label_errors() {
        let mut a = Asm::new(0);
        a.bne(A0, A1, "nowhere");
        assert_eq!(a.finish(), Err(AsmError::UndefinedLabel("nowhere".into())));
    }

    #[test]
    fn duplicate_label_errors() {
        let mut a = Asm::new(0);
        a.label("x");
        a.nop();
        a.label("x");
        assert_eq!(a.finish(), Err(AsmError::DuplicateLabel("x".into())));
    }

    #[test]
    fn li_small_and_large() {
        let mut a = Asm::new(0);
        a.li(A0, 42);
        a.li(A1, 0x12345678);
        a.li(A2, -1);
        let p = a.finish().unwrap();
        // 42 -> 1 instr; 0x12345678 -> lui+addi; -1 -> 1 instr
        assert_eq!(p.len(), 4);
        assert_eq!(p.instrs[0].imm, 42);
    }

    #[test]
    fn fetch_by_pc() {
        let mut a = Asm::new(0x2000);
        a.addi(A0, A0, 7);
        a.nop();
        let p = a.finish().unwrap();
        assert_eq!(p.fetch(0x2000).unwrap().imm, 7);
        assert!(p.fetch(0x2002).is_none()); // misaligned
        assert!(p.fetch(0x1000).is_none()); // below base
        assert!(p.fetch(0x2008).is_none()); // past end
        assert_eq!(p.end_pc(), 0x2008);
    }

    #[test]
    fn pragma_ranges_recorded() {
        let mut a = Asm::new(0x100);
        a.pragma(ParallelKind::Parallel);
        a.label("loop");
        a.addi(A0, A0, 4);
        a.bne(A0, A1, "loop");
        a.end_pragma();
        a.nop();
        let p = a.finish().unwrap();
        assert_eq!(p.annotations.len(), 1);
        let ann = p.annotations[0];
        assert_eq!(ann.start_pc, 0x100);
        assert_eq!(ann.end_pc, 0x108);
        assert_eq!(ann.kind, ParallelKind::Parallel);
        assert!(p.annotation_at(0x104).is_some());
        assert!(p.annotation_at(0x108).is_none());
    }

    #[test]
    fn program_roundtrips_through_machine_words() {
        let mut a = Asm::new(0x8000);
        a.label("l");
        a.lw(T0, A0, 0);
        a.fadd_s(FT0, FT0, FT1);
        a.addi(A0, A0, 4);
        a.blt(A0, A1, "l");
        let p = a.finish().unwrap();
        let words = p.encode().unwrap();
        let p2 = Program::decode(0x8000, &words).unwrap();
        assert_eq!(p.instrs, p2.instrs);
    }
}
