//! Functional (untimed) semantics for the supported RISC-V subset.
//!
//! Both the CPU timing model and the spatial accelerator need *correct
//! values* in addition to timing: MESA's store→load forwarding,
//! invalidation-on-disambiguation, and predicated forward branches (paper
//! §4.2, §5.2) are all value-dependent. This module is the single source of
//! truth for what each instruction computes, so the accelerator's result can
//! be checked against the CPU's instruction-by-instruction.

use crate::{Instruction, Opcode, Reg};

/// Register width of the modelled hart.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Xlen {
    /// RV32 (the paper's main evaluation target, RV32IMF).
    #[default]
    Rv32,
    /// RV64 (RV64I support, as in the paper's hardware).
    Rv64,
}

/// Memory seen by the functional semantics.
///
/// Implemented by `mesa-mem`'s sparse memory; the trait lives here so `isa`
/// stays dependency-free. Functions take `&mut self` because real
/// implementations update replacement state on reads.
pub trait MemoryIo {
    /// Reads `width` bytes (1, 2, 4, or 8) little-endian at `addr`,
    /// zero-extended into the return value.
    fn load(&mut self, addr: u64, width: u8) -> u64;
    /// Writes the low `width` bytes of `value` little-endian at `addr`.
    fn store(&mut self, addr: u64, width: u8, value: u64);
}

/// Architectural state of one hart.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchState {
    /// Program counter.
    pub pc: u64,
    /// Integer register file (`x0` is forced to zero on read).
    pub x: [u64; 32],
    /// FP register file as raw IEEE-754 single bits.
    pub f: [u32; 32],
    /// Register width.
    pub xlen: Xlen,
}

impl ArchState {
    /// Fresh state with all registers zero and `pc` at `entry`.
    #[must_use]
    pub fn new(entry: u64, xlen: Xlen) -> Self {
        ArchState { pc: entry, x: [0; 32], f: [0; 32], xlen }
    }

    /// Reads an architectural register (either file), as raw bits.
    #[must_use]
    pub fn read(&self, r: Reg) -> u64 {
        match r {
            Reg::X(0) => 0,
            Reg::X(n) => self.x[n as usize],
            Reg::F(n) => u64::from(self.f[n as usize]),
        }
    }

    /// Writes an architectural register (either file).
    ///
    /// Integer writes are canonicalized to the register width (RV32 values
    /// are stored sign-extended to 64 bits, matching hardware sign
    /// extension); writes to `x0` are discarded.
    pub fn write(&mut self, r: Reg, value: u64) {
        match r {
            Reg::X(0) => {}
            Reg::X(n) => {
                self.x[n as usize] = match self.xlen {
                    Xlen::Rv32 => (value as u32) as i32 as i64 as u64,
                    Xlen::Rv64 => value,
                }
            }
            Reg::F(n) => self.f[n as usize] = value as u32,
        }
    }

    /// Reads an FP register as an `f32`.
    #[must_use]
    pub fn read_f32(&self, n: u8) -> f32 {
        f32::from_bits(self.f[n as usize])
    }

    fn unsigned(&self, v: u64) -> u64 {
        match self.xlen {
            Xlen::Rv32 => u64::from(v as u32),
            Xlen::Rv64 => v,
        }
    }

    fn shamt_mask(&self) -> u32 {
        match self.xlen {
            Xlen::Rv32 => 31,
            Xlen::Rv64 => 63,
        }
    }
}

/// A memory access performed by one step, reported for the timing models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Effective byte address.
    pub addr: u64,
    /// Access width in bytes.
    pub width: u8,
    /// `true` for stores.
    pub is_store: bool,
}

/// Control-flow outcome of one step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Fall through to `pc + 4`.
    Next,
    /// Conditional branch; `taken` tells whether `target` was followed.
    Branch {
        /// Whether the branch condition held.
        taken: bool,
        /// Branch target (valid when `taken`).
        target: u64,
    },
    /// Unconditional jump to `target`.
    Jump {
        /// Jump target.
        target: u64,
    },
    /// `ecall` with `a7 == 93` (exit) or `ebreak`: the program is done.
    Halt,
    /// Any other `ecall`: an environment call the simulators treat as a
    /// slow, unaccelerable system operation.
    Syscall,
}

/// Everything the timing models need to know about one executed step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepInfo {
    /// Control-flow outcome; `state.pc` has already been advanced.
    pub outcome: Outcome,
    /// The memory access performed, if any.
    pub mem: Option<MemAccess>,
}

/// Executes one instruction, updating `state` (including `pc`).
///
/// The FP environment is simplified: round-to-nearest only, no exception
/// flags, and `fcvt.w.s` truncates toward zero — sufficient for the Rodinia
/// kernel semantics the evaluation uses.
pub fn step<M: MemoryIo>(state: &mut ArchState, instr: &Instruction, mem: &mut M) -> StepInfo {
    use Opcode::*;
    let pc = state.pc;
    let rd = instr.rd;
    let rs1v = instr.rs1.map_or(0, |r| state.read(r));
    let rs2v = instr.rs2.map_or(0, |r| state.read(r));
    let imm = instr.imm;
    let f1 = instr.rs1.map_or(0.0, |r| f32::from_bits(state.read(r) as u32));
    let f2 = instr.rs2.map_or(0.0, |r| f32::from_bits(state.read(r) as u32));
    let f3 = instr.rs3.map_or(0.0, |r| f32::from_bits(state.read(r) as u32));

    let mut outcome = Outcome::Next;
    let mut mem_access = None;

    let write_rd = |state: &mut ArchState, v: u64| {
        if let Some(r) = rd {
            state.write(r, v);
        }
    };
    let wf = |v: f32| u64::from(v.to_bits());

    match instr.op {
        Lui => write_rd(state, imm as u64),
        Auipc => write_rd(state, pc.wrapping_add(imm as u64)),
        Jal => {
            write_rd(state, pc.wrapping_add(4));
            outcome = Outcome::Jump { target: pc.wrapping_add(imm as u64) };
        }
        Jalr => {
            let target = rs1v.wrapping_add(imm as u64) & !1;
            write_rd(state, pc.wrapping_add(4));
            outcome = Outcome::Jump { target };
        }
        Beq | Bne | Blt | Bge | Bltu | Bgeu => {
            let (s1, s2) = (rs1v as i64, rs2v as i64);
            let (u1, u2) = (state.unsigned(rs1v), state.unsigned(rs2v));
            let taken = match instr.op {
                Beq => rs1v == rs2v,
                Bne => rs1v != rs2v,
                Blt => s1 < s2,
                Bge => s1 >= s2,
                Bltu => u1 < u2,
                Bgeu => u1 >= u2,
                _ => unreachable!(),
            };
            outcome = Outcome::Branch { taken, target: pc.wrapping_add(imm as u64) };
        }
        Lb | Lh | Lw | Lbu | Lhu | Lwu | Ld | Flw => {
            let addr = rs1v.wrapping_add(imm as u64);
            let width = instr.op.mem_width().expect("load width");
            let raw = mem.load(addr, width);
            let value = if instr.op.load_sign_extends() {
                let bits = u32::from(width) * 8;
                ((raw << (64 - bits)) as i64 >> (64 - bits)) as u64
            } else {
                raw
            };
            write_rd(state, value);
            mem_access = Some(MemAccess { addr, width, is_store: false });
        }
        Sb | Sh | Sw | Sd | Fsw => {
            let addr = rs1v.wrapping_add(imm as u64);
            let width = instr.op.mem_width().expect("store width");
            mem.store(addr, width, rs2v);
            mem_access = Some(MemAccess { addr, width, is_store: true });
        }
        Addi => write_rd(state, rs1v.wrapping_add(imm as u64)),
        Slti => write_rd(state, u64::from((rs1v as i64) < imm)),
        Sltiu => write_rd(state, u64::from(state.unsigned(rs1v) < state.unsigned(imm as u64))),
        Xori => write_rd(state, rs1v ^ imm as u64),
        Ori => write_rd(state, rs1v | imm as u64),
        Andi => write_rd(state, rs1v & imm as u64),
        Slli => write_rd(state, rs1v << (imm as u32 & state.shamt_mask())),
        Srli => {
            let sh = imm as u32 & state.shamt_mask();
            write_rd(state, state.unsigned(rs1v) >> sh);
        }
        Srai => {
            let sh = imm as u32 & state.shamt_mask();
            write_rd(state, ((rs1v as i64) >> sh) as u64);
        }
        Add => write_rd(state, rs1v.wrapping_add(rs2v)),
        Sub => write_rd(state, rs1v.wrapping_sub(rs2v)),
        Sll => write_rd(state, rs1v << (rs2v as u32 & state.shamt_mask())),
        Slt => write_rd(state, u64::from((rs1v as i64) < (rs2v as i64))),
        Sltu => write_rd(state, u64::from(state.unsigned(rs1v) < state.unsigned(rs2v))),
        Xor => write_rd(state, rs1v ^ rs2v),
        Srl => write_rd(state, state.unsigned(rs1v) >> (rs2v as u32 & state.shamt_mask())),
        Sra => write_rd(state, ((rs1v as i64) >> (rs2v as u32 & state.shamt_mask())) as u64),
        Or => write_rd(state, rs1v | rs2v),
        And => write_rd(state, rs1v & rs2v),
        Fence => {}
        Ecall => {
            outcome = if state.read(Reg::X(17)) == 93 {
                Outcome::Halt
            } else {
                Outcome::Syscall
            };
        }
        Ebreak => outcome = Outcome::Halt,
        Mul => write_rd(state, rs1v.wrapping_mul(rs2v)),
        Mulh => {
            let prod = i128::from(rs1v as i64) * i128::from(rs2v as i64);
            write_rd(state, (prod >> 64) as u64);
        }
        Mulhsu => {
            let prod = i128::from(rs1v as i64).wrapping_mul(i128::from(rs2v));
            write_rd(state, (prod >> 64) as u64);
        }
        Mulhu => {
            let prod = u128::from(rs1v) * u128::from(rs2v);
            write_rd(state, (prod >> 64) as u64);
        }
        Div => {
            let (a, b) = (rs1v as i64, rs2v as i64);
            let q = if b == 0 { -1 } else { a.wrapping_div(b) };
            write_rd(state, q as u64);
        }
        Divu => {
            let (a, b) = (state.unsigned(rs1v), state.unsigned(rs2v));
            write_rd(state, a.checked_div(b).unwrap_or(u64::MAX));
        }
        Rem => {
            let (a, b) = (rs1v as i64, rs2v as i64);
            let r = if b == 0 { a } else { a.wrapping_rem(b) };
            write_rd(state, r as u64);
        }
        Remu => {
            let (a, b) = (state.unsigned(rs1v), state.unsigned(rs2v));
            write_rd(state, if b == 0 { a } else { a % b });
        }
        FaddS => write_rd(state, wf(f1 + f2)),
        FsubS => write_rd(state, wf(f1 - f2)),
        FmulS => write_rd(state, wf(f1 * f2)),
        FdivS => write_rd(state, wf(f1 / f2)),
        FsqrtS => write_rd(state, wf(f1.sqrt())),
        FminS => write_rd(state, wf(f1.min(f2))),
        FmaxS => write_rd(state, wf(f1.max(f2))),
        FmaddS => write_rd(state, wf(f1.mul_add(f2, f3))),
        FmsubS => write_rd(state, wf(f1.mul_add(f2, -f3))),
        FnmaddS => write_rd(state, wf((-f1).mul_add(f2, -f3))),
        FnmsubS => write_rd(state, wf((-f1).mul_add(f2, f3))),
        FcvtWS => write_rd(state, (f1 as i32) as u64),
        FcvtWuS => write_rd(state, u64::from(f1 as u32)),
        FcvtSW => write_rd(state, wf(rs1v as i32 as f32)),
        FcvtSWu => write_rd(state, wf(rs1v as u32 as f32)),
        FmvXW => write_rd(state, (rs1v as u32) as i32 as i64 as u64),
        FmvWX => write_rd(state, u64::from(rs1v as u32)),
        FeqS => write_rd(state, u64::from(f1 == f2)),
        FltS => write_rd(state, u64::from(f1 < f2)),
        FleS => write_rd(state, u64::from(f1 <= f2)),
        FsgnjS => write_rd(state, u64::from((f2.to_bits() & 0x8000_0000) | (f1.to_bits() & 0x7FFF_FFFF))),
        FsgnjnS => write_rd(state, u64::from((!f2.to_bits() & 0x8000_0000) | (f1.to_bits() & 0x7FFF_FFFF))),
        FsgnjxS => write_rd(state, u64::from(((f1.to_bits() ^ f2.to_bits()) & 0x8000_0000) | (f1.to_bits() & 0x7FFF_FFFF))),
        FclassS => write_rd(state, u64::from(fclass(f1))),
        Addiw => write_rd(state, (rs1v.wrapping_add(imm as u64) as i32) as i64 as u64),
        Slliw => write_rd(state, ((rs1v as u32) << (imm as u32 & 31)) as i32 as i64 as u64),
        Srliw => write_rd(state, ((rs1v as u32) >> (imm as u32 & 31)) as i32 as i64 as u64),
        Sraiw => write_rd(state, ((rs1v as i32) >> (imm as u32 & 31)) as i64 as u64),
        Addw => write_rd(state, (rs1v.wrapping_add(rs2v) as i32) as i64 as u64),
        Subw => write_rd(state, (rs1v.wrapping_sub(rs2v) as i32) as i64 as u64),
        Sllw => write_rd(state, ((rs1v as u32) << (rs2v as u32 & 31)) as i32 as i64 as u64),
        Srlw => write_rd(state, ((rs1v as u32) >> (rs2v as u32 & 31)) as i32 as i64 as u64),
        Sraw => write_rd(state, ((rs1v as i32) >> (rs2v as u32 & 31)) as i64 as u64),
    }

    state.pc = match outcome {
        Outcome::Next | Outcome::Syscall => pc.wrapping_add(4),
        Outcome::Branch { taken: true, target } | Outcome::Jump { target } => target,
        Outcome::Branch { taken: false, .. } => pc.wrapping_add(4),
        Outcome::Halt => pc,
    };

    StepInfo { outcome, mem: mem_access }
}

/// `fclass.s` result bit per the RISC-V spec.
fn fclass(v: f32) -> u32 {
    use std::num::FpCategory::*;
    let sign = v.is_sign_negative();
    match (v.classify(), sign) {
        (Infinite, true) => 1 << 0,
        (Normal, true) => 1 << 1,
        (Subnormal, true) => 1 << 2,
        (Zero, true) => 1 << 3,
        (Zero, false) => 1 << 4,
        (Subnormal, false) => 1 << 5,
        (Normal, false) => 1 << 6,
        (Infinite, false) => 1 << 7,
        (Nan, _) => {
            if v.to_bits() & 0x0040_0000 != 0 {
                1 << 9 // quiet NaN
            } else {
                1 << 8 // signaling NaN
            }
        }
    }
}

/// A trivially simple flat memory for tests and functional-only runs.
#[derive(Debug, Clone, Default)]
pub struct FlatMemory {
    bytes: std::collections::HashMap<u64, u8>,
}

impl FlatMemory {
    /// Creates an empty memory (all bytes read as zero).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes a little-endian `u32` at `addr` (convenience for test setup).
    pub fn store_u32(&mut self, addr: u64, value: u32) {
        self.store(addr, 4, u64::from(value));
    }

    /// Writes an `f32`'s bits at `addr`.
    pub fn store_f32(&mut self, addr: u64, value: f32) {
        self.store_u32(addr, value.to_bits());
    }

    /// Reads an `f32` from `addr`.
    pub fn load_f32(&mut self, addr: u64) -> f32 {
        f32::from_bits(self.load(addr, 4) as u32)
    }
}

impl MemoryIo for FlatMemory {
    fn load(&mut self, addr: u64, width: u8) -> u64 {
        let mut v = 0u64;
        for i in 0..width {
            let b = self.bytes.get(&addr.wrapping_add(u64::from(i))).copied().unwrap_or(0);
            v |= u64::from(b) << (8 * i);
        }
        v
    }

    fn store(&mut self, addr: u64, width: u8, value: u64) {
        for i in 0..width {
            self.bytes
                .insert(addr.wrapping_add(u64::from(i)), (value >> (8 * i)) as u8);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::abi::*;

    fn run(instrs: &[Instruction]) -> (ArchState, FlatMemory) {
        let mut st = ArchState::new(0, Xlen::Rv32);
        let mut mem = FlatMemory::new();
        for i in instrs {
            step(&mut st, i, &mut mem);
        }
        (st, mem)
    }

    #[test]
    fn x0_is_hardwired_zero() {
        let (st, _) = run(&[Instruction::reg_imm(Opcode::Addi, ZERO, ZERO, 42)]);
        assert_eq!(st.read(ZERO), 0);
    }

    #[test]
    fn add_sub_wrap_at_32_bits_in_rv32() {
        let mut st = ArchState::new(0, Xlen::Rv32);
        let mut mem = FlatMemory::new();
        st.write(A0, 0x7FFF_FFFF);
        st.write(A1, 1);
        step(&mut st, &Instruction::reg3(Opcode::Add, A2, A0, A1), &mut mem);
        // 0x80000000 sign-extended.
        assert_eq!(st.read(A2), 0xFFFF_FFFF_8000_0000);
    }

    #[test]
    fn rv64_add_keeps_64_bits() {
        let mut st = ArchState::new(0, Xlen::Rv64);
        let mut mem = FlatMemory::new();
        st.write(A0, 0x7FFF_FFFF);
        st.write(A1, 1);
        step(&mut st, &Instruction::reg3(Opcode::Add, A2, A0, A1), &mut mem);
        assert_eq!(st.read(A2), 0x8000_0000);
    }

    #[test]
    fn load_store_roundtrip_with_sign_extension() {
        let mut st = ArchState::new(0, Xlen::Rv32);
        let mut mem = FlatMemory::new();
        st.write(A0, 0x100);
        st.write(A1, 0xFFu64);
        step(&mut st, &Instruction::store(Opcode::Sb, A1, A0, 0), &mut mem);
        step(&mut st, &Instruction::load(Opcode::Lb, A2, A0, 0), &mut mem);
        assert_eq!(st.read(A2) as i64, -1);
        step(&mut st, &Instruction::load(Opcode::Lbu, A3, A0, 0), &mut mem);
        assert_eq!(st.read(A3), 0xFF);
    }

    #[test]
    fn branch_outcomes() {
        let mut st = ArchState::new(0x100, Xlen::Rv32);
        let mut mem = FlatMemory::new();
        st.write(A0, 5);
        st.write(A1, 5);
        let info = step(&mut st, &Instruction::branch(Opcode::Beq, A0, A1, -0x20), &mut mem);
        assert_eq!(info.outcome, Outcome::Branch { taken: true, target: 0xE0 });
        assert_eq!(st.pc, 0xE0);
        let info = step(&mut st, &Instruction::branch(Opcode::Bne, A0, A1, -0x20), &mut mem);
        assert!(matches!(info.outcome, Outcome::Branch { taken: false, .. }));
        assert_eq!(st.pc, 0xE4);
    }

    #[test]
    fn signed_vs_unsigned_compares_in_rv32() {
        let mut st = ArchState::new(0, Xlen::Rv32);
        let mut mem = FlatMemory::new();
        st.write(A0, u64::MAX); // -1 in RV32 canonical form
        st.write(A1, 1);
        step(&mut st, &Instruction::reg3(Opcode::Slt, A2, A0, A1), &mut mem);
        assert_eq!(st.read(A2), 1, "-1 < 1 signed");
        step(&mut st, &Instruction::reg3(Opcode::Sltu, A3, A0, A1), &mut mem);
        assert_eq!(st.read(A3), 0, "0xFFFFFFFF > 1 unsigned");
    }

    #[test]
    fn division_by_zero_follows_spec() {
        let mut st = ArchState::new(0, Xlen::Rv32);
        let mut mem = FlatMemory::new();
        st.write(A0, 7);
        step(&mut st, &Instruction::reg3(Opcode::Div, A2, A0, ZERO), &mut mem);
        assert_eq!(st.read(A2) as i64, -1);
        step(&mut st, &Instruction::reg3(Opcode::Rem, A3, A0, ZERO), &mut mem);
        assert_eq!(st.read(A3), 7);
    }

    #[test]
    fn fp_arithmetic() {
        let mut st = ArchState::new(0, Xlen::Rv32);
        let mut mem = FlatMemory::new();
        st.write(FA0, u64::from(2.5f32.to_bits()));
        st.write(FA1, u64::from(4.0f32.to_bits()));
        step(&mut st, &Instruction::reg3(Opcode::FmulS, FA2, FA0, FA1), &mut mem);
        assert_eq!(st.read_f32(12), 10.0);
        step(&mut st, &Instruction::reg3(Opcode::FsubS, FA3, FA2, FA1), &mut mem);
        assert_eq!(st.read_f32(13), 6.0);
    }

    #[test]
    fn fsqrt_and_cvt() {
        let mut st = ArchState::new(0, Xlen::Rv32);
        let mut mem = FlatMemory::new();
        st.write(FA0, u64::from(9.0f32.to_bits()));
        let sqrt = Instruction {
            op: Opcode::FsqrtS,
            rd: Some(FA1),
            rs1: Some(FA0),
            rs2: None,
            rs3: None,
            imm: 0,
        };
        step(&mut st, &sqrt, &mut mem);
        assert_eq!(st.read_f32(11), 3.0);
        let cvt = Instruction {
            op: Opcode::FcvtWS,
            rd: Some(A0),
            rs1: Some(FA1),
            rs2: None,
            rs3: None,
            imm: 0,
        };
        step(&mut st, &cvt, &mut mem);
        assert_eq!(st.read(A0), 3);
    }

    #[test]
    fn ecall_exit_halts() {
        let mut st = ArchState::new(0, Xlen::Rv32);
        let mut mem = FlatMemory::new();
        st.write(A7, 93);
        let info = step(&mut st, &Instruction::system(Opcode::Ecall), &mut mem);
        assert_eq!(info.outcome, Outcome::Halt);
    }

    #[test]
    fn ecall_other_is_syscall() {
        let mut st = ArchState::new(0, Xlen::Rv32);
        let mut mem = FlatMemory::new();
        st.write(A7, 64);
        let info = step(&mut st, &Instruction::system(Opcode::Ecall), &mut mem);
        assert_eq!(info.outcome, Outcome::Syscall);
    }

    #[test]
    fn fma_computes_fused() {
        let mut st = ArchState::new(0, Xlen::Rv32);
        let mut mem = FlatMemory::new();
        st.write(FA0, u64::from(2.0f32.to_bits()));
        st.write(FA1, u64::from(3.0f32.to_bits()));
        st.write(FA2, u64::from(4.0f32.to_bits()));
        step(
            &mut st,
            &Instruction::reg4(Opcode::FmaddS, FA3, FA0, FA1, FA2),
            &mut mem,
        );
        assert_eq!(st.read_f32(13), 10.0);
    }

    #[test]
    fn rv64w_ops_truncate() {
        let mut st = ArchState::new(0, Xlen::Rv64);
        let mut mem = FlatMemory::new();
        st.write(A0, 0xFFFF_FFFF);
        st.write(A1, 1);
        step(&mut st, &Instruction::reg3(Opcode::Addw, A2, A0, A1), &mut mem);
        assert_eq!(st.read(A2), 0);
    }

    #[test]
    fn jal_links_and_jumps() {
        let mut st = ArchState::new(0x1000, Xlen::Rv32);
        let mut mem = FlatMemory::new();
        let info = step(&mut st, &Instruction::jal(RA, 0x40), &mut mem);
        assert_eq!(info.outcome, Outcome::Jump { target: 0x1040 });
        assert_eq!(st.read(RA), 0x1004);
        assert_eq!(st.pc, 0x1040);
    }
}
