//! The decoded instruction representation shared by the CPU model, the
//! accelerator, and MESA's DFG builder.

use crate::{OpClass, Opcode, Reg};
use std::fmt;

/// A decoded RISC-V instruction.
///
/// This is the *semantic* form: register operands are [`Reg`] values
/// (distinguishing the integer and FP files) and the immediate is already
/// sign-extended. [`crate::codec`] converts to and from the 32-bit machine
/// encoding.
///
/// ```
/// use mesa_isa::{Instruction, Opcode, Reg};
/// let add = Instruction::reg3(Opcode::Add, Reg::x(10), Reg::x(11), Reg::x(12));
/// assert_eq!(add.to_string(), "add a0, a1, a2");
/// assert_eq!(add.sources(), [Some(Reg::x(11)), Some(Reg::x(12))]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Instruction {
    /// The operation.
    pub op: Opcode,
    /// Destination register, if the instruction writes one.
    pub rd: Option<Reg>,
    /// First source register.
    pub rs1: Option<Reg>,
    /// Second source register.
    pub rs2: Option<Reg>,
    /// Third source register (fused multiply-add family only).
    pub rs3: Option<Reg>,
    /// Sign-extended immediate (shift amounts are stored here too).
    pub imm: i64,
}

impl Instruction {
    /// A three-register ALU operation (`op rd, rs1, rs2`).
    #[must_use]
    pub fn reg3(op: Opcode, rd: Reg, rs1: Reg, rs2: Reg) -> Self {
        Instruction { op, rd: Some(rd), rs1: Some(rs1), rs2: Some(rs2), rs3: None, imm: 0 }
    }

    /// A register-immediate operation (`op rd, rs1, imm`).
    #[must_use]
    pub fn reg_imm(op: Opcode, rd: Reg, rs1: Reg, imm: i64) -> Self {
        Instruction { op, rd: Some(rd), rs1: Some(rs1), rs2: None, rs3: None, imm }
    }

    /// A load (`op rd, imm(rs1)`).
    #[must_use]
    pub fn load(op: Opcode, rd: Reg, base: Reg, offset: i64) -> Self {
        debug_assert!(op.is_load(), "{op} is not a load");
        Instruction { op, rd: Some(rd), rs1: Some(base), rs2: None, rs3: None, imm: offset }
    }

    /// A store (`op rs2, imm(rs1)`).
    #[must_use]
    pub fn store(op: Opcode, src: Reg, base: Reg, offset: i64) -> Self {
        debug_assert!(op.is_store(), "{op} is not a store");
        Instruction { op, rd: None, rs1: Some(base), rs2: Some(src), rs3: None, imm: offset }
    }

    /// A conditional branch (`op rs1, rs2, offset`), offset relative to this
    /// instruction's PC.
    #[must_use]
    pub fn branch(op: Opcode, rs1: Reg, rs2: Reg, offset: i64) -> Self {
        debug_assert!(op.is_branch(), "{op} is not a branch");
        Instruction { op, rd: None, rs1: Some(rs1), rs2: Some(rs2), rs3: None, imm: offset }
    }

    /// An upper-immediate operation (`lui`/`auipc rd, imm`), where `imm` is
    /// the full 32-bit value with the low 12 bits zero.
    #[must_use]
    pub fn upper(op: Opcode, rd: Reg, imm: i64) -> Self {
        Instruction { op, rd: Some(rd), rs1: None, rs2: None, rs3: None, imm }
    }

    /// A `jal rd, offset` jump.
    #[must_use]
    pub fn jal(rd: Reg, offset: i64) -> Self {
        Instruction { op: Opcode::Jal, rd: Some(rd), rs1: None, rs2: None, rs3: None, imm: offset }
    }

    /// A fused multiply-add family operation (`op rd, rs1, rs2, rs3`).
    #[must_use]
    pub fn reg4(op: Opcode, rd: Reg, rs1: Reg, rs2: Reg, rs3: Reg) -> Self {
        debug_assert!(op.is_three_source(), "{op} does not take three sources");
        Instruction { op, rd: Some(rd), rs1: Some(rs1), rs2: Some(rs2), rs3: Some(rs3), imm: 0 }
    }

    /// A system instruction with no operands (`ecall`, `ebreak`, `fence`).
    #[must_use]
    pub fn system(op: Opcode) -> Self {
        Instruction { op, rd: None, rs1: None, rs2: None, rs3: None, imm: 0 }
    }

    /// The canonical `nop` (`addi x0, x0, 0`).
    #[must_use]
    pub fn nop() -> Self {
        Instruction::reg_imm(Opcode::Addi, Reg::ZERO, Reg::ZERO, 0)
    }

    /// The two primary source registers `(s1, s2)` as MESA's DFG sees them
    /// (paper §3.1: "each instruction has up to two predecessor
    /// instructions").
    ///
    /// Reads of `x0` are reported as `None` since `x0` is a constant, not a
    /// dependency.
    #[must_use]
    pub fn sources(&self) -> [Option<Reg>; 2] {
        let filter = |r: Option<Reg>| r.filter(|r| !r.is_zero());
        [filter(self.rs1), filter(self.rs2)]
    }

    /// All source registers including `rs3`, without the `x0` filtering.
    pub fn raw_sources(&self) -> impl Iterator<Item = Reg> + '_ {
        [self.rs1, self.rs2, self.rs3].into_iter().flatten()
    }

    /// The destination register, unless it is the discarding `x0`.
    #[must_use]
    pub fn dest(&self) -> Option<Reg> {
        self.rd.filter(|r| !r.is_zero())
    }

    /// Shorthand for `self.op.class()`.
    #[must_use]
    pub fn class(&self) -> OpClass {
        self.op.class()
    }

    /// `true` if this instruction is a backward control transfer (negative
    /// PC-relative offset) — the loop-closing pattern MESA's loop-stream
    /// detector looks for (paper §4.1, C1).
    #[must_use]
    pub fn is_backward_branch(&self) -> bool {
        (self.op.is_branch() || self.op == Opcode::Jal) && self.imm < 0
    }
}

impl Default for Instruction {
    fn default() -> Self {
        Instruction::nop()
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = self.op;
        match op.class() {
            OpClass::Load => write!(
                f,
                "{op} {}, {}({})",
                self.rd.expect("load has rd"),
                self.imm,
                self.rs1.expect("load has base"),
            ),
            OpClass::Store => write!(
                f,
                "{op} {}, {}({})",
                self.rs2.expect("store has data"),
                self.imm,
                self.rs1.expect("store has base"),
            ),
            OpClass::Branch => write!(
                f,
                "{op} {}, {}, {:+}",
                self.rs1.expect("branch has rs1"),
                self.rs2.expect("branch has rs2"),
                self.imm,
            ),
            OpClass::Jump => match (self.rd, self.rs1) {
                (Some(rd), Some(rs1)) => write!(f, "{op} {rd}, {}({rs1})", self.imm),
                (Some(rd), None) => write!(f, "{op} {rd}, {:+}", self.imm),
                _ => write!(f, "{op} {:+}", self.imm),
            },
            OpClass::System => write!(f, "{op}"),
            _ => {
                write!(f, "{op}")?;
                let mut sep = " ";
                if let Some(rd) = self.rd {
                    write!(f, "{sep}{rd}")?;
                    sep = ", ";
                }
                for rs in [self.rs1, self.rs2, self.rs3].into_iter().flatten() {
                    write!(f, "{sep}{rs}")?;
                    sep = ", ";
                }
                if self.rs2.is_none() && self.rs1.is_some() && uses_imm(op) {
                    write!(f, "{sep}{}", self.imm)?;
                } else if self.rs1.is_none() && self.rd.is_some() {
                    write!(f, "{sep}{:#x}", self.imm)?;
                }
                Ok(())
            }
        }
    }
}

/// `true` for register-immediate ALU forms whose display includes the
/// immediate.
fn uses_imm(op: Opcode) -> bool {
    use Opcode::*;
    matches!(
        op,
        Addi | Slti | Sltiu | Xori | Ori | Andi | Slli | Srli | Srai | Addiw
            | Slliw | Srliw | Sraiw
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::abi::*;

    #[test]
    fn sources_filter_x0() {
        let i = Instruction::reg3(Opcode::Add, A0, ZERO, A1);
        assert_eq!(i.sources(), [None, Some(A1)]);
    }

    #[test]
    fn dest_filters_x0() {
        let i = Instruction::reg_imm(Opcode::Addi, ZERO, A0, 1);
        assert_eq!(i.dest(), None);
        let j = Instruction::reg_imm(Opcode::Addi, A0, A0, 1);
        assert_eq!(j.dest(), Some(A0));
    }

    #[test]
    fn backward_branch_detection() {
        let b = Instruction::branch(Opcode::Bne, A0, A1, -16);
        assert!(b.is_backward_branch());
        let fwd = Instruction::branch(Opcode::Beq, A0, A1, 8);
        assert!(!fwd.is_backward_branch());
        let j = Instruction::jal(ZERO, -32);
        assert!(j.is_backward_branch());
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            Instruction::load(Opcode::Lw, T0, A0, 8).to_string(),
            "lw t0, 8(a0)"
        );
        assert_eq!(
            Instruction::store(Opcode::Sw, T0, A0, -4).to_string(),
            "sw t0, -4(a0)"
        );
        assert_eq!(
            Instruction::branch(Opcode::Blt, A0, A1, -12).to_string(),
            "blt a0, a1, -12"
        );
        assert_eq!(
            Instruction::reg_imm(Opcode::Addi, A0, A0, 4).to_string(),
            "addi a0, a0, 4"
        );
        assert_eq!(
            Instruction::reg3(Opcode::FaddS, FA0, FA1, FA2).to_string(),
            "fadd.s fa0, fa1, fa2"
        );
        assert_eq!(Instruction::system(Opcode::Ecall).to_string(), "ecall");
        assert_eq!(Instruction::nop().to_string(), "addi zero, zero, 0");
    }

    #[test]
    fn fma_has_three_sources() {
        let i = Instruction::reg4(Opcode::FmaddS, FA0, FA1, FA2, FA3);
        assert_eq!(i.raw_sources().count(), 3);
        // But the DFG view still reports only the first two.
        assert_eq!(i.sources(), [Some(FA1), Some(FA2)]);
    }
}
