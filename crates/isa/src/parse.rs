//! Text assembler: parses the same syntax [`crate::Instruction`]'s
//! `Display` produces (plus labels, comments, and pragma directives), so
//! kernels can live in `.s` files or be round-tripped through listings.
//!
//! ```text
//! # sum += a[i]
//! .pragma simd
//! loop:
//!     lw   t0, 0(a0)
//!     add  t1, t1, t0
//!     addi a0, a0, 4
//!     bne  a0, a1, loop
//! .end_pragma
//!     li   a7, 93
//!     ecall
//! ```

use crate::reg::{FP_ABI_NAMES, INT_ABI_NAMES};
use crate::{Asm, Instruction, Opcode, ParallelKind, Program, Reg};
use std::fmt;

/// A parse failure, with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError { line, message: message.into() }
}

/// Looks up a register by ABI name (`a0`, `ft3`, …) or raw name (`x7`,
/// `f12`).
fn parse_reg(tok: &str, line: usize) -> Result<Reg, ParseError> {
    if let Some(i) = INT_ABI_NAMES.iter().position(|&n| n == tok) {
        return Ok(Reg::x(i as u8));
    }
    if let Some(i) = FP_ABI_NAMES.iter().position(|&n| n == tok) {
        return Ok(Reg::f(i as u8));
    }
    if let Some(num) = tok.strip_prefix('x') {
        if let Ok(n) = num.parse::<u8>() {
            if n < 32 {
                return Ok(Reg::x(n));
            }
        }
    }
    if let Some(num) = tok.strip_prefix('f') {
        if let Ok(n) = num.parse::<u8>() {
            if n < 32 {
                return Ok(Reg::f(n));
            }
        }
    }
    Err(err(line, format!("unknown register `{tok}`")))
}

/// Parses a decimal or `0x` immediate, with optional sign.
fn parse_imm(tok: &str, line: usize) -> Result<i64, ParseError> {
    let (neg, body) = match tok.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, tok.strip_prefix('+').unwrap_or(tok)),
    };
    let value = if let Some(hex) = body.strip_prefix("0x") {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse::<i64>()
    }
    .map_err(|_| err(line, format!("bad immediate `{tok}`")))?;
    Ok(if neg { -value } else { value })
}

/// Splits `imm(base)` into its parts.
fn parse_mem_operand(tok: &str, line: usize) -> Result<(i64, Reg), ParseError> {
    let open = tok
        .find('(')
        .ok_or_else(|| err(line, format!("expected `imm(base)`, got `{tok}`")))?;
    let close = tok
        .rfind(')')
        .filter(|&c| c > open)
        .ok_or_else(|| err(line, format!("unclosed `(` in `{tok}`")))?;
    let imm = if open == 0 { 0 } else { parse_imm(&tok[..open], line)? };
    let base = parse_reg(&tok[open + 1..close], line)?;
    Ok((imm, base))
}

/// Looks up the opcode for a mnemonic.
fn opcode_by_mnemonic(m: &str) -> Option<Opcode> {
    use Opcode::*;
    const ALL: [Opcode; 87] = [
        Lui, Auipc, Jal, Jalr, Beq, Bne, Blt, Bge, Bltu, Bgeu, Lb, Lh, Lw, Lbu, Lhu, Sb, Sh,
        Sw, Addi, Slti, Sltiu, Xori, Ori, Andi, Slli, Srli, Srai, Add, Sub, Sll, Slt, Sltu,
        Xor, Srl, Sra, Or, And, Fence, Ecall, Ebreak, Mul, Mulh, Mulhsu, Mulhu, Div, Divu,
        Rem, Remu, Flw, Fsw, FaddS, FsubS, FmulS, FdivS, FsqrtS, FminS, FmaxS, FmaddS, FmsubS,
        FnmaddS, FnmsubS, FcvtWS, FcvtWuS, FcvtSW, FcvtSWu, FmvXW, FmvWX, FeqS, FltS, FleS,
        FsgnjS, FsgnjnS, FsgnjxS, FclassS, Lwu, Ld, Sd, Addiw, Slliw, Srliw, Sraiw, Addw,
        Subw, Sllw, Srlw, Sraw, Auipc,
    ];
    ALL.into_iter().find(|op| op.mnemonic() == m)
}

/// `true` when a branch/jump operand is a label rather than a number.
fn is_label(tok: &str) -> bool {
    !tok.starts_with(['-', '+']) && !tok.starts_with(|c: char| c.is_ascii_digit())
}

/// Parses an assembly listing into a [`Program`] based at `base_pc`.
///
/// Accepted syntax: one instruction per line in the `Display` format;
/// `name:` labels (own line or prefixing an instruction); `#` or `//`
/// comments; `.pragma parallel|simd` / `.end_pragma` directives; the
/// pseudo-instructions `nop`, `li`, and `mv`.
///
/// # Errors
/// Returns the first [`ParseError`] with its source line.
pub fn parse_program(base_pc: u64, text: &str) -> Result<Program, ParseError> {
    let mut a = Asm::new(base_pc);

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        // Strip comments.
        let mut line = raw;
        for marker in ["#", "//", ";"] {
            if let Some(at) = line.find(marker) {
                line = &line[..at];
            }
        }
        let mut line = line.trim();
        if line.is_empty() {
            continue;
        }

        // Directives.
        if let Some(rest) = line.strip_prefix('.') {
            let mut parts = rest.split_whitespace();
            match parts.next() {
                Some("pragma") => match parts.next() {
                    Some("parallel") => {
                        a.pragma(ParallelKind::Parallel);
                    }
                    Some("simd") => {
                        a.pragma(ParallelKind::Simd);
                    }
                    other => {
                        return Err(err(line_no, format!("unknown pragma {other:?}")))
                    }
                },
                Some("end_pragma") => {
                    a.end_pragma();
                }
                other => return Err(err(line_no, format!("unknown directive .{other:?}"))),
            }
            continue;
        }

        // Leading label(s).
        while let Some(colon) = line.find(':') {
            let (label, rest) = line.split_at(colon);
            let label = label.trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                return Err(err(line_no, format!("bad label `{label}`")));
            }
            a.label(label);
            line = rest[1..].trim();
        }
        if line.is_empty() {
            continue;
        }

        parse_instruction(&mut a, line, line_no)?;
    }

    a.finish().map_err(|e| err(0, e.to_string()))
}

/// Parses one instruction line into the builder.
fn parse_instruction(a: &mut Asm, line: &str, ln: usize) -> Result<(), ParseError> {
    let (mnemonic, rest) = match line.find(char::is_whitespace) {
        Some(at) => (&line[..at], line[at..].trim()),
        None => (line, ""),
    };
    let operands: Vec<&str> =
        rest.split(',').map(str::trim).filter(|s| !s.is_empty()).collect();
    let want = |n: usize| -> Result<(), ParseError> {
        if operands.len() == n {
            Ok(())
        } else {
            Err(err(ln, format!("`{mnemonic}` expects {n} operands, got {}", operands.len())))
        }
    };

    // Pseudo-instructions first.
    match mnemonic {
        "nop" => {
            want(0)?;
            a.nop();
            return Ok(());
        }
        "li" => {
            want(2)?;
            a.li(parse_reg(operands[0], ln)?, parse_imm(operands[1], ln)?);
            return Ok(());
        }
        "mv" => {
            want(2)?;
            a.mv(parse_reg(operands[0], ln)?, parse_reg(operands[1], ln)?);
            return Ok(());
        }
        _ => {}
    }

    let op = opcode_by_mnemonic(mnemonic)
        .ok_or_else(|| err(ln, format!("unknown mnemonic `{mnemonic}`")))?;

    use crate::OpClass;
    match op.class() {
        OpClass::Load => {
            want(2)?;
            let rd = parse_reg(operands[0], ln)?;
            let (imm, base) = parse_mem_operand(operands[1], ln)?;
            a.raw(Instruction::load(op, rd, base, imm));
        }
        OpClass::Store => {
            want(2)?;
            let src = parse_reg(operands[0], ln)?;
            let (imm, base) = parse_mem_operand(operands[1], ln)?;
            a.raw(Instruction::store(op, src, base, imm));
        }
        OpClass::Branch => {
            want(3)?;
            let rs1 = parse_reg(operands[0], ln)?;
            let rs2 = parse_reg(operands[1], ln)?;
            if is_label(operands[2]) {
                branch_to_label(a, op, rs1, rs2, operands[2]);
            } else {
                a.raw(Instruction::branch(op, rs1, rs2, parse_imm(operands[2], ln)?));
            }
        }
        OpClass::Jump if op == Opcode::Jal => {
            want(2)?;
            let rd = parse_reg(operands[0], ln)?;
            if is_label(operands[1]) {
                a.jal(rd, operands[1]);
            } else {
                a.raw(Instruction::jal(rd, parse_imm(operands[1], ln)?));
            }
        }
        OpClass::Jump => {
            // jalr rd, imm(rs1)
            want(2)?;
            let rd = parse_reg(operands[0], ln)?;
            let (imm, base) = parse_mem_operand(operands[1], ln)?;
            a.jalr(rd, base, imm);
        }
        OpClass::System => {
            want(0)?;
            a.raw(Instruction::system(op));
        }
        _ => match op {
            Opcode::Lui | Opcode::Auipc => {
                want(2)?;
                a.raw(Instruction::upper(op, parse_reg(operands[0], ln)?, parse_imm(operands[1], ln)?));
            }
            _ if op.is_three_source() => {
                want(4)?;
                a.raw(Instruction::reg4(
                    op,
                    parse_reg(operands[0], ln)?,
                    parse_reg(operands[1], ln)?,
                    parse_reg(operands[2], ln)?,
                    parse_reg(operands[3], ln)?,
                ));
            }
            Opcode::FsqrtS
            | Opcode::FcvtWS
            | Opcode::FcvtWuS
            | Opcode::FcvtSW
            | Opcode::FcvtSWu
            | Opcode::FmvXW
            | Opcode::FmvWX
            | Opcode::FclassS => {
                // Unary register forms: fsqrt.s, fcvt.*, fmv.*, fclass.s.
                want(2)?;
                a.raw(Instruction {
                    op,
                    rd: Some(parse_reg(operands[0], ln)?),
                    rs1: Some(parse_reg(operands[1], ln)?),
                    rs2: None,
                    rs3: None,
                    imm: 0,
                });
            }
            _ => {
                want(3)?;
                let rd = parse_reg(operands[0], ln)?;
                let rs1 = parse_reg(operands[1], ln)?;
                // Third operand: register (R-type) or immediate (I-type).
                if let Ok(rs2) = parse_reg(operands[2], ln) {
                    a.raw(Instruction::reg3(op, rd, rs1, rs2));
                } else {
                    a.raw(Instruction::reg_imm(op, rd, rs1, parse_imm(operands[2], ln)?));
                }
            }
        },
    }
    Ok(())
}

/// Emits a branch whose target is a label (resolved at `finish`).
fn branch_to_label(a: &mut Asm, op: Opcode, rs1: Reg, rs2: Reg, label: &str) {
    match op {
        Opcode::Beq => a.beq(rs1, rs2, label),
        Opcode::Bne => a.bne(rs1, rs2, label),
        Opcode::Blt => a.blt(rs1, rs2, label),
        Opcode::Bge => a.bge(rs1, rs2, label),
        Opcode::Bltu => a.bltu(rs1, rs2, label),
        Opcode::Bgeu => a.bgeu(rs1, rs2, label),
        _ => unreachable!("branch class covers exactly these opcodes"),
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::abi::*;

    #[test]
    fn parses_the_doc_example() {
        let text = r"
            # sum += a[i]
            .pragma simd
            loop:
                lw   t0, 0(a0)
                add  t1, t1, t0
                addi a0, a0, 4
                bne  a0, a1, loop
            .end_pragma
                li   a7, 93
                ecall
        ";
        let p = parse_program(0x1000, text).unwrap();
        assert_eq!(p.len(), 6);
        assert_eq!(p.instrs[0], Instruction::load(Opcode::Lw, T0, A0, 0));
        assert_eq!(p.instrs[3].imm, -12);
        assert_eq!(p.annotations.len(), 1);
        assert_eq!(p.annotations[0].kind, ParallelKind::Simd);
    }

    #[test]
    fn display_parse_roundtrip_for_programs() {
        let mut a = Asm::new(0x2000);
        a.label("top");
        a.flw(FT0, A0, -8);
        a.fsub_s(FT0, FT0, FA0);
        a.fmul_s(FT1, FT0, FT0);
        a.fsqrt_s(FT2, FT1);
        a.fsw(FT2, A4, 12);
        a.slli(T1, T0, 3);
        a.slt(T2, T0, T1);
        a.lui(S0, 0x12000);
        a.addi(A0, A0, 4);
        a.bltu(A0, A1, "top");
        a.ecall();
        let original = a.finish().unwrap();

        // Display emits numeric branch offsets; the parser accepts them.
        let listing = original
            .instrs
            .iter()
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join("\n");
        let reparsed = parse_program(0x2000, &listing).unwrap();
        assert_eq!(reparsed.instrs, original.instrs, "listing:\n{listing}");
    }

    #[test]
    fn raw_register_names_accepted() {
        let p = parse_program(0, "add x5, x6, x7\nfadd.s f0, f1, f2").unwrap();
        assert_eq!(p.instrs[0], Instruction::reg3(Opcode::Add, T0, T1, T2));
        assert_eq!(p.instrs[1], Instruction::reg3(Opcode::FaddS, FT0, FT1, FT2));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_program(0, "nop\nbogus t0, t1, t2\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));

        let e = parse_program(0, "add t0, t1").unwrap_err();
        assert!(e.message.contains("expects 3 operands"));

        let e = parse_program(0, "lw t0, 4[a0]").unwrap_err();
        assert!(e.message.contains("imm(base)"));

        let e = parse_program(0, "add q0, t1, t2").unwrap_err();
        assert!(e.message.contains("unknown register"));
    }

    #[test]
    fn undefined_label_reported() {
        let e = parse_program(0, "bne t0, t1, nowhere").unwrap_err();
        assert!(e.message.contains("nowhere"));
    }

    #[test]
    fn hex_and_negative_immediates() {
        let p = parse_program(0, "addi t0, t0, -0x10\nlui s0, 0x12000").unwrap();
        assert_eq!(p.instrs[0].imm, -16);
        assert_eq!(p.instrs[1].imm, 0x12000);
    }

    #[test]
    fn fma_and_jump_forms() {
        let p = parse_program(
            0,
            "fmadd.s fa0, fa1, fa2, fa3\njal ra, 8\njalr zero, 0(ra)",
        )
        .unwrap();
        assert_eq!(p.instrs[0].rs3, Some(FA3));
        assert_eq!(p.instrs[1].imm, 8);
        assert_eq!(p.instrs[2].op, Opcode::Jalr);
    }

    #[test]
    fn every_workload_style_mnemonic_roundtrips() {
        // One instruction of each class, via Display → parse.
        let samples = [
            Instruction::reg3(Opcode::Mul, T0, T1, T2),
            Instruction::reg3(Opcode::Divu, T0, T1, T2),
            Instruction::reg_imm(Opcode::Andi, A0, A1, 255),
            Instruction::load(Opcode::Lbu, T0, SP, 2),
            Instruction::store(Opcode::Sh, T0, SP, -2),
            Instruction::branch(Opcode::Bgeu, A0, A1, 16),
            Instruction::reg3(Opcode::FminS, FT0, FT1, FT2),
            Instruction::reg3(Opcode::FleS, A0, FA0, FA1),
        ];
        for instr in samples {
            let text = instr.to_string();
            let p = parse_program(0, &text).unwrap();
            assert_eq!(p.instrs[0], instr, "{text}");
        }
    }
}
