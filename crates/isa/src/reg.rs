//! Architectural register names for the integer (`x0`–`x31`) and
//! floating-point (`f0`–`f31`) register files.
//!
//! MESA's rename table (paper §3.2) maps *architectural registers* to the
//! last instruction that wrote them. Treating the two register files as one
//! 64-entry architectural space keeps that table a single flat array, which
//! mirrors the hardware structure the paper synthesizes.

use std::fmt;

/// An architectural register: either an integer register `x0`–`x31` or a
/// floating-point register `f0`–`f31`.
///
/// ```
/// use mesa_isa::Reg;
/// let a0 = Reg::x(10);
/// assert_eq!(a0.to_string(), "a0");
/// assert_eq!(Reg::f(0).to_string(), "ft0");
/// assert_eq!(a0.flat_index(), 10);
/// assert_eq!(Reg::f(3).flat_index(), 35);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Reg {
    /// Integer register `x{n}`, `n < 32`.
    X(u8),
    /// Floating-point register `f{n}`, `n < 32`.
    F(u8),
}

impl Reg {
    /// Number of architectural registers across both files.
    pub const COUNT: usize = 64;

    /// The hard-wired zero register `x0`.
    pub const ZERO: Reg = Reg::X(0);

    /// Creates an integer register.
    ///
    /// # Panics
    /// Panics if `n >= 32`.
    #[must_use]
    pub fn x(n: u8) -> Self {
        assert!(n < 32, "integer register index {n} out of range");
        Reg::X(n)
    }

    /// Creates a floating-point register.
    ///
    /// # Panics
    /// Panics if `n >= 32`.
    #[must_use]
    pub fn f(n: u8) -> Self {
        assert!(n < 32, "fp register index {n} out of range");
        Reg::F(n)
    }

    /// Raw 5-bit register number within its file.
    #[must_use]
    pub fn num(self) -> u8 {
        match self {
            Reg::X(n) | Reg::F(n) => n,
        }
    }

    /// Index into a flat 64-entry array covering both register files
    /// (`x` registers occupy 0–31, `f` registers 32–63).
    #[must_use]
    pub fn flat_index(self) -> usize {
        match self {
            Reg::X(n) => n as usize,
            Reg::F(n) => 32 + n as usize,
        }
    }

    /// Inverse of [`Reg::flat_index`].
    ///
    /// # Panics
    /// Panics if `idx >= 64`.
    #[must_use]
    pub fn from_flat_index(idx: usize) -> Self {
        assert!(idx < Self::COUNT, "flat register index {idx} out of range");
        if idx < 32 {
            Reg::X(idx as u8)
        } else {
            Reg::F((idx - 32) as u8)
        }
    }

    /// `true` for integer registers.
    #[must_use]
    pub fn is_int(self) -> bool {
        matches!(self, Reg::X(_))
    }

    /// `true` for floating-point registers.
    #[must_use]
    pub fn is_fp(self) -> bool {
        matches!(self, Reg::F(_))
    }

    /// `true` for the hard-wired zero register `x0`.
    ///
    /// Writes to `x0` are discarded and reads always return 0, so `x0` never
    /// participates in renaming or DFG edges.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self == Reg::X(0)
    }
}

/// ABI names for the integer registers, indexed by register number.
pub const INT_ABI_NAMES: [&str; 32] = [
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1",
    "a2", "a3", "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
    "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
];

/// ABI names for the floating-point registers, indexed by register number.
pub const FP_ABI_NAMES: [&str; 32] = [
    "ft0", "ft1", "ft2", "ft3", "ft4", "ft5", "ft6", "ft7", "fs0", "fs1",
    "fa0", "fa1", "fa2", "fa3", "fa4", "fa5", "fa6", "fa7", "fs2", "fs3",
    "fs4", "fs5", "fs6", "fs7", "fs8", "fs9", "fs10", "fs11", "ft8", "ft9",
    "ft10", "ft11",
];

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Reg::X(n) => f.write_str(INT_ABI_NAMES[n as usize]),
            Reg::F(n) => f.write_str(FP_ABI_NAMES[n as usize]),
        }
    }
}

macro_rules! abi_consts {
    ($($name:ident = $kind:ident($n:expr);)*) => {
        $(
            #[doc = concat!("ABI register `", stringify!($name), "`.")]
            pub const $name: Reg = Reg::$kind($n);
        )*
    };
}

/// ABI aliases (`A0`, `T0`, `S0`, `FA0`, …) for terse kernel construction.
pub mod abi {
    use super::Reg;
    abi_consts! {
        ZERO = X(0); RA = X(1); SP = X(2); GP = X(3); TP = X(4);
        T0 = X(5); T1 = X(6); T2 = X(7);
        S0 = X(8); S1 = X(9);
        A0 = X(10); A1 = X(11); A2 = X(12); A3 = X(13);
        A4 = X(14); A5 = X(15); A6 = X(16); A7 = X(17);
        S2 = X(18); S3 = X(19); S4 = X(20); S5 = X(21);
        S6 = X(22); S7 = X(23); S8 = X(24); S9 = X(25);
        S10 = X(26); S11 = X(27);
        T3 = X(28); T4 = X(29); T5 = X(30); T6 = X(31);
        FT0 = F(0); FT1 = F(1); FT2 = F(2); FT3 = F(3);
        FT4 = F(4); FT5 = F(5); FT6 = F(6); FT7 = F(7);
        FS0 = F(8); FS1 = F(9);
        FA0 = F(10); FA1 = F(11); FA2 = F(12); FA3 = F(13);
        FA4 = F(14); FA5 = F(15); FA6 = F(16); FA7 = F(17);
        FS2 = F(18); FS3 = F(19); FS4 = F(20); FS5 = F(21);
        FS6 = F(22); FS7 = F(23); FS8 = F(24); FS9 = F(25);
        FS10 = F(26); FS11 = F(27);
        FT8 = F(28); FT9 = F(29); FT10 = F(30); FT11 = F(31);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_index_roundtrip() {
        for idx in 0..Reg::COUNT {
            assert_eq!(Reg::from_flat_index(idx).flat_index(), idx);
        }
    }

    #[test]
    fn display_uses_abi_names() {
        assert_eq!(Reg::x(0).to_string(), "zero");
        assert_eq!(Reg::x(2).to_string(), "sp");
        assert_eq!(Reg::x(10).to_string(), "a0");
        assert_eq!(Reg::f(10).to_string(), "fa0");
        assert_eq!(Reg::f(31).to_string(), "ft11");
    }

    #[test]
    fn zero_detection() {
        assert!(Reg::x(0).is_zero());
        assert!(!Reg::f(0).is_zero());
        assert!(!Reg::x(1).is_zero());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn x_register_out_of_range_panics() {
        let _ = Reg::x(32);
    }

    #[test]
    fn file_predicates() {
        assert!(Reg::x(5).is_int());
        assert!(!Reg::x(5).is_fp());
        assert!(Reg::f(5).is_fp());
        assert!(!Reg::f(5).is_int());
    }

    #[test]
    fn abi_constants_match_names() {
        assert_eq!(abi::A0, Reg::X(10));
        assert_eq!(abi::FT11, Reg::F(31));
        assert_eq!(abi::SP.to_string(), "sp");
    }
}
