//! Operation codes for the supported RISC-V subset (RV32IMF and RV64I) and
//! their static classification.
//!
//! The classification drives three consumers:
//!
//! * the CPU timing model picks a functional unit and latency per op,
//! * MESA's region detector (paper §4.1, condition C2) rejects unsupported
//!   instruction classes,
//! * the accelerator's `F_op` masking matrices (paper §3.3) describe which
//!   PEs can execute which [`OpClass`].

use std::fmt;

/// Every machine operation in the supported RV32IMF + RV64I subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)] // the variants are the RISC-V mnemonics themselves
pub enum Opcode {
    // ----- RV32I -----
    Lui, Auipc, Jal, Jalr,
    Beq, Bne, Blt, Bge, Bltu, Bgeu,
    Lb, Lh, Lw, Lbu, Lhu,
    Sb, Sh, Sw,
    Addi, Slti, Sltiu, Xori, Ori, Andi, Slli, Srli, Srai,
    Add, Sub, Sll, Slt, Sltu, Xor, Srl, Sra, Or, And,
    Fence, Ecall, Ebreak,
    // ----- RV32M -----
    Mul, Mulh, Mulhsu, Mulhu, Div, Divu, Rem, Remu,
    // ----- RV32F -----
    Flw, Fsw,
    FaddS, FsubS, FmulS, FdivS, FsqrtS, FminS, FmaxS,
    FmaddS, FmsubS, FnmaddS, FnmsubS,
    FcvtWS, FcvtWuS, FcvtSW, FcvtSWu,
    FmvXW, FmvWX,
    FeqS, FltS, FleS,
    FsgnjS, FsgnjnS, FsgnjxS,
    FclassS,
    // ----- RV64I -----
    Lwu, Ld, Sd,
    Addiw, Slliw, Srliw, Sraiw,
    Addw, Subw, Sllw, Srlw, Sraw,
}

/// Coarse operation class, used for functional-unit selection on the CPU and
/// for the accelerator's per-operation PE masking matrices `F_op`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpClass {
    /// Integer ALU operations (add/sub/logic/shift/compare/LUI/AUIPC).
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide / remainder.
    IntDiv,
    /// Memory load (integer or FP destination).
    Load,
    /// Memory store.
    Store,
    /// Conditional branch.
    Branch,
    /// Unconditional jump (JAL / JALR).
    Jump,
    /// FP add/sub/min/max/sign-injection/compare/move/convert/classify.
    FpAlu,
    /// FP multiply (including fused multiply-add family).
    FpMul,
    /// FP divide / square root.
    FpDiv,
    /// System instructions (FENCE / ECALL / EBREAK) — never accelerable.
    System,
}

impl OpClass {
    /// All operation classes, in a stable order (handy for building the
    /// per-class `F_op` mask set).
    pub const ALL: [OpClass; 11] = [
        OpClass::IntAlu,
        OpClass::IntMul,
        OpClass::IntDiv,
        OpClass::Load,
        OpClass::Store,
        OpClass::Branch,
        OpClass::Jump,
        OpClass::FpAlu,
        OpClass::FpMul,
        OpClass::FpDiv,
        OpClass::System,
    ];

    /// `true` for classes that require floating-point hardware in a PE.
    #[must_use]
    pub fn needs_fp(self) -> bool {
        matches!(self, OpClass::FpAlu | OpClass::FpMul | OpClass::FpDiv)
    }

    /// `true` for memory-access classes.
    #[must_use]
    pub fn is_mem(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::IntAlu => "int-alu",
            OpClass::IntMul => "int-mul",
            OpClass::IntDiv => "int-div",
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::Branch => "branch",
            OpClass::Jump => "jump",
            OpClass::FpAlu => "fp-alu",
            OpClass::FpMul => "fp-mul",
            OpClass::FpDiv => "fp-div",
            OpClass::System => "system",
        };
        f.write_str(s)
    }
}

impl Opcode {
    /// The coarse class of this operation.
    #[must_use]
    pub fn class(self) -> OpClass {
        use Opcode::*;
        match self {
            Lui | Auipc | Addi | Slti | Sltiu | Xori | Ori | Andi | Slli
            | Srli | Srai | Add | Sub | Sll | Slt | Sltu | Xor | Srl | Sra
            | Or | And | Addiw | Slliw | Srliw | Sraiw | Addw | Subw | Sllw
            | Srlw | Sraw => OpClass::IntAlu,
            Mul | Mulh | Mulhsu | Mulhu => OpClass::IntMul,
            Div | Divu | Rem | Remu => OpClass::IntDiv,
            Lb | Lh | Lw | Lbu | Lhu | Lwu | Ld | Flw => OpClass::Load,
            Sb | Sh | Sw | Sd | Fsw => OpClass::Store,
            Beq | Bne | Blt | Bge | Bltu | Bgeu => OpClass::Branch,
            Jal | Jalr => OpClass::Jump,
            FaddS | FsubS | FminS | FmaxS | FcvtWS | FcvtWuS | FcvtSW
            | FcvtSWu | FmvXW | FmvWX | FeqS | FltS | FleS | FsgnjS
            | FsgnjnS | FsgnjxS | FclassS => OpClass::FpAlu,
            FmulS | FmaddS | FmsubS | FnmaddS | FnmsubS => OpClass::FpMul,
            FdivS | FsqrtS => OpClass::FpDiv,
            Fence | Ecall | Ebreak => OpClass::System,
        }
    }

    /// Static execution latency in cycles, from operands-ready to result
    /// produced.
    ///
    /// These match the constants used by the paper's worked example
    /// (Fig. 2: integer/FP add = 3, multiply = 5) for the FP pipeline, with
    /// conventional values for the rest. Memory operations report their
    /// *hit* latency; the cache model supplies the dynamic remainder.
    #[must_use]
    pub fn base_latency(self) -> u64 {
        match self.class() {
            OpClass::IntAlu => 1,
            OpClass::IntMul => 3,
            OpClass::IntDiv => 12,
            OpClass::Load => 2,
            OpClass::Store => 1,
            OpClass::Branch => 1,
            OpClass::Jump => 1,
            OpClass::FpAlu => 3,
            OpClass::FpMul => 5,
            OpClass::FpDiv => 15,
            OpClass::System => 1,
        }
    }

    /// `true` for loads (any width, integer or FP).
    #[must_use]
    pub fn is_load(self) -> bool {
        self.class() == OpClass::Load
    }

    /// `true` for stores.
    #[must_use]
    pub fn is_store(self) -> bool {
        self.class() == OpClass::Store
    }

    /// `true` for conditional branches.
    #[must_use]
    pub fn is_branch(self) -> bool {
        self.class() == OpClass::Branch
    }

    /// `true` for JAL/JALR.
    #[must_use]
    pub fn is_jump(self) -> bool {
        self.class() == OpClass::Jump
    }

    /// `true` for any control-transfer instruction.
    #[must_use]
    pub fn is_control(self) -> bool {
        self.is_branch() || self.is_jump()
    }

    /// `true` for system instructions that disqualify a loop from
    /// acceleration (paper §4.1, condition C2).
    #[must_use]
    pub fn is_system(self) -> bool {
        self.class() == OpClass::System
    }

    /// `true` for RV64-only operations (rejected by a 32-bit accelerator,
    /// one of the C2 examples in the paper).
    #[must_use]
    pub fn is_rv64_only(self) -> bool {
        use Opcode::*;
        matches!(
            self,
            Lwu | Ld | Sd | Addiw | Slliw | Srliw | Sraiw | Addw | Subw
                | Sllw | Srlw | Sraw
        )
    }

    /// `true` for the fused multiply-add family, which reads *three* source
    /// registers. MESA's DFG assumes at most two predecessors per node
    /// (paper §3.1), so these are executable on the CPU but not accelerable.
    #[must_use]
    pub fn is_three_source(self) -> bool {
        use Opcode::*;
        matches!(self, FmaddS | FmsubS | FnmaddS | FnmsubS)
    }

    /// Number of bytes moved by a memory operation, or `None` for non-memory
    /// ops.
    #[must_use]
    pub fn mem_width(self) -> Option<u8> {
        use Opcode::*;
        match self {
            Lb | Lbu | Sb => Some(1),
            Lh | Lhu | Sh => Some(2),
            Lw | Lwu | Sw | Flw | Fsw => Some(4),
            Ld | Sd => Some(8),
            _ => None,
        }
    }

    /// `true` if the loaded value is sign-extended (vs zero-extended).
    #[must_use]
    pub fn load_sign_extends(self) -> bool {
        use Opcode::*;
        matches!(self, Lb | Lh | Lw | Ld)
    }

    /// The assembler mnemonic for this opcode.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        use Opcode::*;
        match self {
            Lui => "lui", Auipc => "auipc", Jal => "jal", Jalr => "jalr",
            Beq => "beq", Bne => "bne", Blt => "blt", Bge => "bge",
            Bltu => "bltu", Bgeu => "bgeu",
            Lb => "lb", Lh => "lh", Lw => "lw", Lbu => "lbu", Lhu => "lhu",
            Sb => "sb", Sh => "sh", Sw => "sw",
            Addi => "addi", Slti => "slti", Sltiu => "sltiu", Xori => "xori",
            Ori => "ori", Andi => "andi", Slli => "slli", Srli => "srli",
            Srai => "srai",
            Add => "add", Sub => "sub", Sll => "sll", Slt => "slt",
            Sltu => "sltu", Xor => "xor", Srl => "srl", Sra => "sra",
            Or => "or", And => "and",
            Fence => "fence", Ecall => "ecall", Ebreak => "ebreak",
            Mul => "mul", Mulh => "mulh", Mulhsu => "mulhsu",
            Mulhu => "mulhu", Div => "div", Divu => "divu", Rem => "rem",
            Remu => "remu",
            Flw => "flw", Fsw => "fsw",
            FaddS => "fadd.s", FsubS => "fsub.s", FmulS => "fmul.s",
            FdivS => "fdiv.s", FsqrtS => "fsqrt.s", FminS => "fmin.s",
            FmaxS => "fmax.s",
            FmaddS => "fmadd.s", FmsubS => "fmsub.s",
            FnmaddS => "fnmadd.s", FnmsubS => "fnmsub.s",
            FcvtWS => "fcvt.w.s", FcvtWuS => "fcvt.wu.s",
            FcvtSW => "fcvt.s.w", FcvtSWu => "fcvt.s.wu",
            FmvXW => "fmv.x.w", FmvWX => "fmv.w.x",
            FeqS => "feq.s", FltS => "flt.s", FleS => "fle.s",
            FsgnjS => "fsgnj.s", FsgnjnS => "fsgnjn.s",
            FsgnjxS => "fsgnjx.s",
            FclassS => "fclass.s",
            Lwu => "lwu", Ld => "ld", Sd => "sd",
            Addiw => "addiw", Slliw => "slliw", Srliw => "srliw",
            Sraiw => "sraiw",
            Addw => "addw", Subw => "subw", Sllw => "sllw", Srlw => "srlw",
            Sraw => "sraw",
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_are_consistent() {
        assert_eq!(Opcode::Add.class(), OpClass::IntAlu);
        assert_eq!(Opcode::Mul.class(), OpClass::IntMul);
        assert_eq!(Opcode::Lw.class(), OpClass::Load);
        assert_eq!(Opcode::Fsw.class(), OpClass::Store);
        assert_eq!(Opcode::Beq.class(), OpClass::Branch);
        assert_eq!(Opcode::Jalr.class(), OpClass::Jump);
        assert_eq!(Opcode::FmulS.class(), OpClass::FpMul);
        assert_eq!(Opcode::FsqrtS.class(), OpClass::FpDiv);
        assert_eq!(Opcode::Ecall.class(), OpClass::System);
    }

    #[test]
    fn figure2_latency_constants() {
        // The paper's worked example (Fig. 2) assumes add/sub = 3 and
        // multiply = 5 for the FP pipeline.
        assert_eq!(Opcode::FaddS.base_latency(), 3);
        assert_eq!(Opcode::FsubS.base_latency(), 3);
        assert_eq!(Opcode::FmulS.base_latency(), 5);
    }

    #[test]
    fn memory_widths() {
        assert_eq!(Opcode::Lb.mem_width(), Some(1));
        assert_eq!(Opcode::Lhu.mem_width(), Some(2));
        assert_eq!(Opcode::Flw.mem_width(), Some(4));
        assert_eq!(Opcode::Sd.mem_width(), Some(8));
        assert_eq!(Opcode::Add.mem_width(), None);
    }

    #[test]
    fn sign_extension_classification() {
        assert!(Opcode::Lb.load_sign_extends());
        assert!(Opcode::Lw.load_sign_extends());
        assert!(!Opcode::Lbu.load_sign_extends());
        assert!(!Opcode::Lwu.load_sign_extends());
    }

    #[test]
    fn rv64_only_detection() {
        assert!(Opcode::Addw.is_rv64_only());
        assert!(Opcode::Ld.is_rv64_only());
        assert!(!Opcode::Add.is_rv64_only());
        assert!(!Opcode::Lw.is_rv64_only());
    }

    #[test]
    fn three_source_detection() {
        assert!(Opcode::FmaddS.is_three_source());
        assert!(!Opcode::FmulS.is_three_source());
    }

    #[test]
    fn fp_classes_need_fp_pes() {
        assert!(OpClass::FpMul.needs_fp());
        assert!(OpClass::FpDiv.needs_fp());
        assert!(!OpClass::IntAlu.needs_fp());
        assert!(!OpClass::Load.needs_fp());
    }

    #[test]
    fn mnemonics_are_lowercase_riscv() {
        assert_eq!(Opcode::FmaddS.mnemonic(), "fmadd.s");
        assert_eq!(Opcode::Sraiw.to_string(), "sraiw");
    }
}
