//! Binary encoder/decoder for the supported RISC-V subset.
//!
//! MESA is a *binary* translation mechanism: the trace cache holds raw
//! 32-bit machine words fetched from the I-cache, and the controller decodes
//! them itself when building the LDFG (paper §4.1, §5). This module
//! implements the actual RV32IMF / RV64I instruction formats (R/I/S/B/U/J
//! and R4) so that the pipeline from machine code to accelerator
//! configuration is exercised end-to-end.

use crate::{Instruction, Opcode, Reg};
use std::fmt;

/// Error produced when decoding an unknown or malformed machine word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The machine word that failed to decode.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unrecognized instruction encoding {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

/// Error produced when an [`Instruction`] cannot be expressed in the machine
/// format (immediate out of range or misaligned).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodeError {
    /// The instruction that failed to encode.
    pub instr: Instruction,
    /// Human-readable reason.
    pub reason: &'static str,
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot encode `{}`: {}", self.instr, self.reason)
    }
}

impl std::error::Error for EncodeError {}

// Major opcode fields (bits [6:0]).
const OPC_LUI: u32 = 0x37;
const OPC_AUIPC: u32 = 0x17;
const OPC_JAL: u32 = 0x6F;
const OPC_JALR: u32 = 0x67;
const OPC_BRANCH: u32 = 0x63;
const OPC_LOAD: u32 = 0x03;
const OPC_STORE: u32 = 0x23;
const OPC_OP_IMM: u32 = 0x13;
const OPC_OP: u32 = 0x33;
const OPC_OP_IMM_32: u32 = 0x1B;
const OPC_OP_32: u32 = 0x3B;
const OPC_MISC_MEM: u32 = 0x0F;
const OPC_SYSTEM: u32 = 0x73;
const OPC_LOAD_FP: u32 = 0x07;
const OPC_STORE_FP: u32 = 0x27;
const OPC_OP_FP: u32 = 0x53;
const OPC_FMADD: u32 = 0x43;
const OPC_FMSUB: u32 = 0x47;
const OPC_FNMSUB: u32 = 0x4B;
const OPC_FNMADD: u32 = 0x4F;

fn rd_bits(i: &Instruction) -> u32 {
    u32::from(i.rd.map_or(0, Reg::num)) << 7
}
fn rs1_bits(i: &Instruction) -> u32 {
    u32::from(i.rs1.map_or(0, Reg::num)) << 15
}
fn rs2_bits(i: &Instruction) -> u32 {
    u32::from(i.rs2.map_or(0, Reg::num)) << 20
}

fn check_range(i: &Instruction, imm: i64, bits: u32) -> Result<(), EncodeError> {
    let min = -(1i64 << (bits - 1));
    let max = (1i64 << (bits - 1)) - 1;
    if imm < min || imm > max {
        return Err(EncodeError { instr: *i, reason: "immediate out of range" });
    }
    Ok(())
}

fn enc_r(op: u32, f3: u32, f7: u32, i: &Instruction) -> u32 {
    op | rd_bits(i) | (f3 << 12) | rs1_bits(i) | rs2_bits(i) | (f7 << 25)
}

fn enc_i(op: u32, f3: u32, i: &Instruction) -> Result<u32, EncodeError> {
    check_range(i, i.imm, 12)?;
    let imm = (i.imm as u32) & 0xFFF;
    Ok(op | rd_bits(i) | (f3 << 12) | rs1_bits(i) | (imm << 20))
}

fn enc_shift(op: u32, f3: u32, f7: u32, i: &Instruction, shbits: u32) -> Result<u32, EncodeError> {
    let max = (1i64 << shbits) - 1;
    if i.imm < 0 || i.imm > max {
        return Err(EncodeError { instr: *i, reason: "shift amount out of range" });
    }
    let sh = (i.imm as u32) << 20;
    Ok(op | rd_bits(i) | (f3 << 12) | rs1_bits(i) | sh | (f7 << 25))
}

fn enc_s(op: u32, f3: u32, i: &Instruction) -> Result<u32, EncodeError> {
    check_range(i, i.imm, 12)?;
    let imm = i.imm as u32;
    let lo = (imm & 0x1F) << 7;
    let hi = ((imm >> 5) & 0x7F) << 25;
    Ok(op | lo | (f3 << 12) | rs1_bits(i) | rs2_bits(i) | hi)
}

fn enc_b(op: u32, f3: u32, i: &Instruction) -> Result<u32, EncodeError> {
    check_range(i, i.imm, 13)?;
    if i.imm % 2 != 0 {
        return Err(EncodeError { instr: *i, reason: "branch offset must be even" });
    }
    let imm = i.imm as u32;
    let b11 = (imm >> 11) & 1;
    let b4_1 = (imm >> 1) & 0xF;
    let b10_5 = (imm >> 5) & 0x3F;
    let b12 = (imm >> 12) & 1;
    Ok(op
        | (b11 << 7)
        | (b4_1 << 8)
        | (f3 << 12)
        | rs1_bits(i)
        | rs2_bits(i)
        | (b10_5 << 25)
        | (b12 << 31))
}

fn enc_u(op: u32, i: &Instruction) -> Result<u32, EncodeError> {
    if i.imm % (1 << 12) != 0 {
        return Err(EncodeError { instr: *i, reason: "upper immediate must have low 12 bits zero" });
    }
    check_range(i, i.imm >> 12, 21).map_err(|mut e| {
        e.reason = "upper immediate out of range";
        e
    })?;
    Ok(op | rd_bits(i) | ((i.imm as u32) & 0xFFFF_F000))
}

fn enc_j(op: u32, i: &Instruction) -> Result<u32, EncodeError> {
    check_range(i, i.imm, 21)?;
    if i.imm % 2 != 0 {
        return Err(EncodeError { instr: *i, reason: "jump offset must be even" });
    }
    let imm = i.imm as u32;
    let b19_12 = (imm >> 12) & 0xFF;
    let b11 = (imm >> 11) & 1;
    let b10_1 = (imm >> 1) & 0x3FF;
    let b20 = (imm >> 20) & 1;
    Ok(op | rd_bits(i) | (b19_12 << 12) | (b11 << 20) | (b10_1 << 21) | (b20 << 31))
}

fn enc_r4(op: u32, i: &Instruction) -> u32 {
    let rs3 = u32::from(i.rs3.map_or(0, Reg::num)) << 27;
    // funct2 = 00 (single precision), rm = 000 (RNE).
    op | rd_bits(i) | rs1_bits(i) | rs2_bits(i) | rs3
}

/// Encodes an instruction into its 32-bit machine word.
///
/// # Errors
///
/// Returns [`EncodeError`] when the immediate does not fit the instruction
/// format or is misaligned.
///
/// ```
/// use mesa_isa::{codec, Instruction, Opcode, Reg};
/// let add = Instruction::reg3(Opcode::Add, Reg::x(1), Reg::x(2), Reg::x(3));
/// let word = codec::encode(&add)?;
/// assert_eq!(codec::decode(word)?, add);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn encode(i: &Instruction) -> Result<u32, EncodeError> {
    use Opcode::*;
    let w = match i.op {
        Lui => enc_u(OPC_LUI, i)?,
        Auipc => enc_u(OPC_AUIPC, i)?,
        Jal => enc_j(OPC_JAL, i)?,
        Jalr => enc_i(OPC_JALR, 0, i)?,
        Beq => enc_b(OPC_BRANCH, 0, i)?,
        Bne => enc_b(OPC_BRANCH, 1, i)?,
        Blt => enc_b(OPC_BRANCH, 4, i)?,
        Bge => enc_b(OPC_BRANCH, 5, i)?,
        Bltu => enc_b(OPC_BRANCH, 6, i)?,
        Bgeu => enc_b(OPC_BRANCH, 7, i)?,
        Lb => enc_i(OPC_LOAD, 0, i)?,
        Lh => enc_i(OPC_LOAD, 1, i)?,
        Lw => enc_i(OPC_LOAD, 2, i)?,
        Ld => enc_i(OPC_LOAD, 3, i)?,
        Lbu => enc_i(OPC_LOAD, 4, i)?,
        Lhu => enc_i(OPC_LOAD, 5, i)?,
        Lwu => enc_i(OPC_LOAD, 6, i)?,
        Sb => enc_s(OPC_STORE, 0, i)?,
        Sh => enc_s(OPC_STORE, 1, i)?,
        Sw => enc_s(OPC_STORE, 2, i)?,
        Sd => enc_s(OPC_STORE, 3, i)?,
        Addi => enc_i(OPC_OP_IMM, 0, i)?,
        Slli => enc_shift(OPC_OP_IMM, 1, 0x00, i, 6)?,
        Slti => enc_i(OPC_OP_IMM, 2, i)?,
        Sltiu => enc_i(OPC_OP_IMM, 3, i)?,
        Xori => enc_i(OPC_OP_IMM, 4, i)?,
        Srli => enc_shift(OPC_OP_IMM, 5, 0x00, i, 6)?,
        Srai => enc_shift(OPC_OP_IMM, 5, 0x20, i, 6)?,
        Ori => enc_i(OPC_OP_IMM, 6, i)?,
        Andi => enc_i(OPC_OP_IMM, 7, i)?,
        Add => enc_r(OPC_OP, 0, 0x00, i),
        Sub => enc_r(OPC_OP, 0, 0x20, i),
        Sll => enc_r(OPC_OP, 1, 0x00, i),
        Slt => enc_r(OPC_OP, 2, 0x00, i),
        Sltu => enc_r(OPC_OP, 3, 0x00, i),
        Xor => enc_r(OPC_OP, 4, 0x00, i),
        Srl => enc_r(OPC_OP, 5, 0x00, i),
        Sra => enc_r(OPC_OP, 5, 0x20, i),
        Or => enc_r(OPC_OP, 6, 0x00, i),
        And => enc_r(OPC_OP, 7, 0x00, i),
        Mul => enc_r(OPC_OP, 0, 0x01, i),
        Mulh => enc_r(OPC_OP, 1, 0x01, i),
        Mulhsu => enc_r(OPC_OP, 2, 0x01, i),
        Mulhu => enc_r(OPC_OP, 3, 0x01, i),
        Div => enc_r(OPC_OP, 4, 0x01, i),
        Divu => enc_r(OPC_OP, 5, 0x01, i),
        Rem => enc_r(OPC_OP, 6, 0x01, i),
        Remu => enc_r(OPC_OP, 7, 0x01, i),
        Addiw => enc_i(OPC_OP_IMM_32, 0, i)?,
        Slliw => enc_shift(OPC_OP_IMM_32, 1, 0x00, i, 5)?,
        Srliw => enc_shift(OPC_OP_IMM_32, 5, 0x00, i, 5)?,
        Sraiw => enc_shift(OPC_OP_IMM_32, 5, 0x20, i, 5)?,
        Addw => enc_r(OPC_OP_32, 0, 0x00, i),
        Subw => enc_r(OPC_OP_32, 0, 0x20, i),
        Sllw => enc_r(OPC_OP_32, 1, 0x00, i),
        Srlw => enc_r(OPC_OP_32, 5, 0x00, i),
        Sraw => enc_r(OPC_OP_32, 5, 0x20, i),
        Fence => OPC_MISC_MEM,
        Ecall => OPC_SYSTEM,
        Ebreak => OPC_SYSTEM | (1 << 20),
        Flw => enc_i(OPC_LOAD_FP, 2, i)?,
        Fsw => enc_s(OPC_STORE_FP, 2, i)?,
        FaddS => enc_r(OPC_OP_FP, 0, 0x00, i),
        FsubS => enc_r(OPC_OP_FP, 0, 0x04, i),
        FmulS => enc_r(OPC_OP_FP, 0, 0x08, i),
        FdivS => enc_r(OPC_OP_FP, 0, 0x0C, i),
        FsqrtS => enc_r(OPC_OP_FP, 0, 0x2C, i),
        FsgnjS => enc_r(OPC_OP_FP, 0, 0x10, i),
        FsgnjnS => enc_r(OPC_OP_FP, 1, 0x10, i),
        FsgnjxS => enc_r(OPC_OP_FP, 2, 0x10, i),
        FminS => enc_r(OPC_OP_FP, 0, 0x14, i),
        FmaxS => enc_r(OPC_OP_FP, 1, 0x14, i),
        FcvtWS => enc_r(OPC_OP_FP, 0, 0x60, i),
        FcvtWuS => {
            let base = enc_r(OPC_OP_FP, 0, 0x60, i);
            base | (1 << 20)
        }
        FcvtSW => enc_r(OPC_OP_FP, 0, 0x68, i),
        FcvtSWu => {
            let base = enc_r(OPC_OP_FP, 0, 0x68, i);
            base | (1 << 20)
        }
        FmvXW => enc_r(OPC_OP_FP, 0, 0x70, i),
        FclassS => enc_r(OPC_OP_FP, 1, 0x70, i),
        FmvWX => enc_r(OPC_OP_FP, 0, 0x78, i),
        FeqS => enc_r(OPC_OP_FP, 2, 0x50, i),
        FltS => enc_r(OPC_OP_FP, 1, 0x50, i),
        FleS => enc_r(OPC_OP_FP, 0, 0x50, i),
        FmaddS => enc_r4(OPC_FMADD, i),
        FmsubS => enc_r4(OPC_FMSUB, i),
        FnmsubS => enc_r4(OPC_FNMSUB, i),
        FnmaddS => enc_r4(OPC_FNMADD, i),
    };
    Ok(w)
}

struct Fields {
    rd: u8,
    rs1: u8,
    rs2: u8,
    rs3: u8,
    funct3: u32,
    funct7: u32,
    imm_i: i64,
    imm_s: i64,
    imm_b: i64,
    imm_u: i64,
    imm_j: i64,
}

fn fields(w: u32) -> Fields {
    let sext = |v: u32, bits: u32| -> i64 {
        let shift = 64 - bits;
        (i64::from(v) << shift) >> shift
    };
    let imm_b_raw = (((w >> 8) & 0xF) << 1)
        | (((w >> 25) & 0x3F) << 5)
        | (((w >> 7) & 1) << 11)
        | (((w >> 31) & 1) << 12);
    let imm_j_raw = (((w >> 21) & 0x3FF) << 1)
        | (((w >> 20) & 1) << 11)
        | (((w >> 12) & 0xFF) << 12)
        | (((w >> 31) & 1) << 20);
    Fields {
        rd: ((w >> 7) & 0x1F) as u8,
        rs1: ((w >> 15) & 0x1F) as u8,
        rs2: ((w >> 20) & 0x1F) as u8,
        rs3: ((w >> 27) & 0x1F) as u8,
        funct3: (w >> 12) & 0x7,
        funct7: (w >> 25) & 0x7F,
        imm_i: sext(w >> 20, 12),
        imm_s: sext(((w >> 7) & 0x1F) | (((w >> 25) & 0x7F) << 5), 12),
        imm_b: sext(imm_b_raw, 13),
        imm_u: i64::from(w as i32 & !0xFFF),
        imm_j: sext(imm_j_raw, 21),
    }
}

/// Decodes a 32-bit machine word.
///
/// # Errors
///
/// Returns [`DecodeError`] for encodings outside the supported subset.
pub fn decode(w: u32) -> Result<Instruction, DecodeError> {
    use Opcode::*;
    let f = fields(w);
    let err = || DecodeError { word: w };
    let x = |n: u8| Reg::X(n);
    let fp = |n: u8| Reg::F(n);

    let instr = match w & 0x7F {
        OPC_LUI => Instruction::upper(Lui, x(f.rd), f.imm_u),
        OPC_AUIPC => Instruction::upper(Auipc, x(f.rd), f.imm_u),
        OPC_JAL => Instruction::jal(x(f.rd), f.imm_j),
        OPC_JALR => Instruction {
            op: Jalr,
            rd: Some(x(f.rd)),
            rs1: Some(x(f.rs1)),
            rs2: None,
            rs3: None,
            imm: f.imm_i,
        },
        OPC_BRANCH => {
            let op = match f.funct3 {
                0 => Beq,
                1 => Bne,
                4 => Blt,
                5 => Bge,
                6 => Bltu,
                7 => Bgeu,
                _ => return Err(err()),
            };
            Instruction::branch(op, x(f.rs1), x(f.rs2), f.imm_b)
        }
        OPC_LOAD => {
            let op = match f.funct3 {
                0 => Lb,
                1 => Lh,
                2 => Lw,
                3 => Ld,
                4 => Lbu,
                5 => Lhu,
                6 => Lwu,
                _ => return Err(err()),
            };
            Instruction::load(op, x(f.rd), x(f.rs1), f.imm_i)
        }
        OPC_STORE => {
            let op = match f.funct3 {
                0 => Sb,
                1 => Sh,
                2 => Sw,
                3 => Sd,
                _ => return Err(err()),
            };
            Instruction::store(op, x(f.rs2), x(f.rs1), f.imm_s)
        }
        OPC_OP_IMM => match f.funct3 {
            0 => Instruction::reg_imm(Addi, x(f.rd), x(f.rs1), f.imm_i),
            1 if f.funct7 & !1 == 0 => {
                Instruction::reg_imm(Slli, x(f.rd), x(f.rs1), i64::from((w >> 20) & 0x3F))
            }
            2 => Instruction::reg_imm(Slti, x(f.rd), x(f.rs1), f.imm_i),
            3 => Instruction::reg_imm(Sltiu, x(f.rd), x(f.rs1), f.imm_i),
            4 => Instruction::reg_imm(Xori, x(f.rd), x(f.rs1), f.imm_i),
            5 if f.funct7 & !1 == 0 => {
                Instruction::reg_imm(Srli, x(f.rd), x(f.rs1), i64::from((w >> 20) & 0x3F))
            }
            5 if f.funct7 & !1 == 0x20 => {
                Instruction::reg_imm(Srai, x(f.rd), x(f.rs1), i64::from((w >> 20) & 0x3F))
            }
            6 => Instruction::reg_imm(Ori, x(f.rd), x(f.rs1), f.imm_i),
            7 => Instruction::reg_imm(Andi, x(f.rd), x(f.rs1), f.imm_i),
            _ => return Err(err()),
        },
        OPC_OP => {
            let op = match (f.funct7, f.funct3) {
                (0x00, 0) => Add,
                (0x20, 0) => Sub,
                (0x00, 1) => Sll,
                (0x00, 2) => Slt,
                (0x00, 3) => Sltu,
                (0x00, 4) => Xor,
                (0x00, 5) => Srl,
                (0x20, 5) => Sra,
                (0x00, 6) => Or,
                (0x00, 7) => And,
                (0x01, 0) => Mul,
                (0x01, 1) => Mulh,
                (0x01, 2) => Mulhsu,
                (0x01, 3) => Mulhu,
                (0x01, 4) => Div,
                (0x01, 5) => Divu,
                (0x01, 6) => Rem,
                (0x01, 7) => Remu,
                _ => return Err(err()),
            };
            Instruction::reg3(op, x(f.rd), x(f.rs1), x(f.rs2))
        }
        OPC_OP_IMM_32 => match (f.funct7, f.funct3) {
            (_, 0) => Instruction::reg_imm(Addiw, x(f.rd), x(f.rs1), f.imm_i),
            (0x00, 1) => Instruction::reg_imm(Slliw, x(f.rd), x(f.rs1), i64::from(f.rs2)),
            (0x00, 5) => Instruction::reg_imm(Srliw, x(f.rd), x(f.rs1), i64::from(f.rs2)),
            (0x20, 5) => Instruction::reg_imm(Sraiw, x(f.rd), x(f.rs1), i64::from(f.rs2)),
            _ => return Err(err()),
        },
        OPC_OP_32 => {
            let op = match (f.funct7, f.funct3) {
                (0x00, 0) => Addw,
                (0x20, 0) => Subw,
                (0x00, 1) => Sllw,
                (0x00, 5) => Srlw,
                (0x20, 5) => Sraw,
                _ => return Err(err()),
            };
            Instruction::reg3(op, x(f.rd), x(f.rs1), x(f.rs2))
        }
        OPC_MISC_MEM => Instruction::system(Fence),
        OPC_SYSTEM => match w >> 20 {
            0 => Instruction::system(Ecall),
            1 => Instruction::system(Ebreak),
            _ => return Err(err()),
        },
        OPC_LOAD_FP if f.funct3 == 2 => Instruction::load(Flw, fp(f.rd), x(f.rs1), f.imm_i),
        OPC_STORE_FP if f.funct3 == 2 => Instruction::store(Fsw, fp(f.rs2), x(f.rs1), f.imm_s),
        OPC_OP_FP => match f.funct7 {
            0x00 => Instruction::reg3(FaddS, fp(f.rd), fp(f.rs1), fp(f.rs2)),
            0x04 => Instruction::reg3(FsubS, fp(f.rd), fp(f.rs1), fp(f.rs2)),
            0x08 => Instruction::reg3(FmulS, fp(f.rd), fp(f.rs1), fp(f.rs2)),
            0x0C => Instruction::reg3(FdivS, fp(f.rd), fp(f.rs1), fp(f.rs2)),
            0x2C => Instruction {
                op: FsqrtS,
                rd: Some(fp(f.rd)),
                rs1: Some(fp(f.rs1)),
                rs2: None,
                rs3: None,
                imm: 0,
            },
            0x10 => {
                let op = match f.funct3 {
                    0 => FsgnjS,
                    1 => FsgnjnS,
                    2 => FsgnjxS,
                    _ => return Err(err()),
                };
                Instruction::reg3(op, fp(f.rd), fp(f.rs1), fp(f.rs2))
            }
            0x14 => {
                let op = match f.funct3 {
                    0 => FminS,
                    1 => FmaxS,
                    _ => return Err(err()),
                };
                Instruction::reg3(op, fp(f.rd), fp(f.rs1), fp(f.rs2))
            }
            0x50 => {
                let op = match f.funct3 {
                    0 => FleS,
                    1 => FltS,
                    2 => FeqS,
                    _ => return Err(err()),
                };
                Instruction::reg3(op, x(f.rd), fp(f.rs1), fp(f.rs2))
            }
            0x60 => {
                let op = match f.rs2 {
                    0 => FcvtWS,
                    1 => FcvtWuS,
                    _ => return Err(err()),
                };
                Instruction {
                    op,
                    rd: Some(x(f.rd)),
                    rs1: Some(fp(f.rs1)),
                    rs2: None,
                    rs3: None,
                    imm: 0,
                }
            }
            0x68 => {
                let op = match f.rs2 {
                    0 => FcvtSW,
                    1 => FcvtSWu,
                    _ => return Err(err()),
                };
                Instruction {
                    op,
                    rd: Some(fp(f.rd)),
                    rs1: Some(x(f.rs1)),
                    rs2: None,
                    rs3: None,
                    imm: 0,
                }
            }
            0x70 => match f.funct3 {
                0 => Instruction {
                    op: FmvXW,
                    rd: Some(x(f.rd)),
                    rs1: Some(fp(f.rs1)),
                    rs2: None,
                    rs3: None,
                    imm: 0,
                },
                1 => Instruction {
                    op: FclassS,
                    rd: Some(x(f.rd)),
                    rs1: Some(fp(f.rs1)),
                    rs2: None,
                    rs3: None,
                    imm: 0,
                },
                _ => return Err(err()),
            },
            0x78 => Instruction {
                op: FmvWX,
                rd: Some(fp(f.rd)),
                rs1: Some(x(f.rs1)),
                rs2: None,
                rs3: None,
                imm: 0,
            },
            _ => return Err(err()),
        },
        OPC_FMADD => Instruction::reg4(FmaddS, fp(f.rd), fp(f.rs1), fp(f.rs2), fp(f.rs3)),
        OPC_FMSUB => Instruction::reg4(FmsubS, fp(f.rd), fp(f.rs1), fp(f.rs2), fp(f.rs3)),
        OPC_FNMSUB => Instruction::reg4(FnmsubS, fp(f.rd), fp(f.rs1), fp(f.rs2), fp(f.rs3)),
        OPC_FNMADD => Instruction::reg4(FnmaddS, fp(f.rd), fp(f.rs1), fp(f.rs2), fp(f.rs3)),
        _ => return Err(err()),
    };
    Ok(instr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::abi::*;

    #[test]
    fn known_golden_encodings() {
        // Cross-checked against the RISC-V spec examples.
        // addi x1, x0, 5  => 0x00500093
        let i = Instruction::reg_imm(Opcode::Addi, Reg::x(1), Reg::x(0), 5);
        assert_eq!(encode(&i).unwrap(), 0x0050_0093);
        // add x3, x1, x2 => 0x002081B3
        let i = Instruction::reg3(Opcode::Add, Reg::x(3), Reg::x(1), Reg::x(2));
        assert_eq!(encode(&i).unwrap(), 0x0020_81B3);
        // lw x5, 8(x10) => imm=8 rs1=10 f3=2 rd=5 op=0x03 => 0x00852283
        let i = Instruction::load(Opcode::Lw, Reg::x(5), Reg::x(10), 8);
        assert_eq!(encode(&i).unwrap(), 0x0085_2283);
        // ecall => 0x00000073
        assert_eq!(encode(&Instruction::system(Opcode::Ecall)).unwrap(), 0x73);
    }

    #[test]
    fn negative_branch_offset_roundtrip() {
        let b = Instruction::branch(Opcode::Bne, A0, A1, -16);
        let w = encode(&b).unwrap();
        assert_eq!(decode(w).unwrap(), b);
    }

    #[test]
    fn store_negative_offset_roundtrip() {
        let s = Instruction::store(Opcode::Sw, T0, SP, -2048);
        let w = encode(&s).unwrap();
        assert_eq!(decode(w).unwrap(), s);
    }

    #[test]
    fn jal_roundtrip_extremes() {
        for off in [-1048576i64, -2, 0, 2, 1048574] {
            let j = Instruction::jal(RA, off);
            let w = encode(&j).unwrap();
            assert_eq!(decode(w).unwrap(), j, "offset {off}");
        }
    }

    #[test]
    fn lui_roundtrip() {
        let i = Instruction::upper(Opcode::Lui, A0, 0x12345 << 12);
        let w = encode(&i).unwrap();
        assert_eq!(decode(w).unwrap(), i);
    }

    #[test]
    fn fp_ops_roundtrip_with_correct_register_files() {
        let i = Instruction::reg3(Opcode::FaddS, FA0, FA1, FA2);
        let d = decode(encode(&i).unwrap()).unwrap();
        assert_eq!(d, i);
        assert!(d.rd.unwrap().is_fp());

        let cmp = Instruction::reg3(Opcode::FltS, A0, FA0, FA1);
        let d = decode(encode(&cmp).unwrap()).unwrap();
        assert_eq!(d, cmp);
        assert!(d.rd.unwrap().is_int());
        assert!(d.rs1.unwrap().is_fp());

        let cvt = Instruction {
            op: Opcode::FcvtSW,
            rd: Some(FA0),
            rs1: Some(A0),
            rs2: None,
            rs3: None,
            imm: 0,
        };
        assert_eq!(decode(encode(&cvt).unwrap()).unwrap(), cvt);
    }

    #[test]
    fn fma_roundtrip() {
        let i = Instruction::reg4(Opcode::FmaddS, FA0, FA1, FA2, FA3);
        assert_eq!(decode(encode(&i).unwrap()).unwrap(), i);
    }

    #[test]
    fn immediate_out_of_range_rejected() {
        let i = Instruction::reg_imm(Opcode::Addi, A0, A0, 4096);
        assert!(encode(&i).is_err());
        let b = Instruction::branch(Opcode::Beq, A0, A1, 4096);
        assert!(encode(&b).is_err());
        let odd = Instruction::branch(Opcode::Beq, A0, A1, 3);
        assert!(encode(&odd).is_err());
    }

    #[test]
    fn unknown_word_rejected() {
        assert!(decode(0xFFFF_FFFF).is_err());
        assert!(decode(0x0000_0000).is_err());
    }

    #[test]
    fn flw_fsw_roundtrip() {
        let l = Instruction::load(Opcode::Flw, FT0, A0, 12);
        assert_eq!(decode(encode(&l).unwrap()).unwrap(), l);
        let s = Instruction::store(Opcode::Fsw, FT0, A0, 12);
        assert_eq!(decode(encode(&s).unwrap()).unwrap(), s);
    }
}
