//! RISC-V instruction model for the MESA reproduction.
//!
//! This crate supplies everything the rest of the workspace needs to talk
//! about machine code:
//!
//! * [`Reg`] / [`Opcode`] / [`Instruction`] — the decoded instruction model
//!   covering RV32IMF and RV64I (the ISA subsets the paper's hardware
//!   supports).
//! * [`codec`] — the real 32-bit RISC-V instruction formats, so MESA's
//!   trace cache can hold machine words and the controller decodes them
//!   itself, as in the paper.
//! * [`Asm`] / [`Program`] — a label-resolving embedded assembler used to
//!   write the Rodinia-style workload kernels.
//! * [`exec`] — functional semantics ([`ArchState`], [`step`]) shared by
//!   the CPU timing model and the spatial accelerator, so both compute
//!   identical values.
//!
//! # Example
//!
//! ```
//! use mesa_isa::{Asm, ArchState, FlatMemory, Outcome, Xlen, reg::abi::*};
//!
//! // sum += a[i] over 4 elements.
//! let mut a = Asm::new(0x1000);
//! a.li(A0, 0x100);      // &a[0]
//! a.li(A1, 0x110);      // &a[4]
//! a.label("loop");
//! a.lw(T0, A0, 0);
//! a.add(T1, T1, T0);
//! a.addi(A0, A0, 4);
//! a.bne(A0, A1, "loop");
//! let prog = a.finish()?;
//!
//! let mut mem = FlatMemory::new();
//! for i in 0..4 {
//!     mem.store_u32(0x100 + 4 * i, (i + 1) as u32);
//! }
//! let mut st = ArchState::new(prog.base_pc, Xlen::Rv32);
//! while let Some(instr) = prog.fetch(st.pc) {
//!     mesa_isa::step(&mut st, instr, &mut mem);
//! }
//! assert_eq!(st.read(T1), 10);
//! # Ok::<(), mesa_isa::AsmError>(())
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod codec;
pub mod exec;
pub mod instr;
pub mod opcode;
pub mod parse;
pub mod reg;

pub use asm::{Annotation, Asm, AsmError, ParallelKind, Program};
pub use codec::{decode, encode, DecodeError, EncodeError};
pub use exec::{step, ArchState, FlatMemory, MemAccess, MemoryIo, Outcome, StepInfo, Xlen};
pub use instr::Instruction;
pub use opcode::{OpClass, Opcode};
pub use parse::{parse_program, ParseError};
pub use reg::Reg;
