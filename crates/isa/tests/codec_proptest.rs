//! Property tests for the instruction codec: every instruction the
//! generators can produce must encode to a machine word that decodes back to
//! the identical instruction, and decoding is total (never panics) over
//! arbitrary 32-bit words.

use mesa_isa::{codec, Instruction, Opcode, Reg};
use proptest::prelude::*;

fn arb_xreg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::x)
}

fn arb_freg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::f)
}

fn arb_int_reg3() -> impl Strategy<Value = Instruction> {
    let ops = prop_oneof![
        Just(Opcode::Add),
        Just(Opcode::Sub),
        Just(Opcode::Sll),
        Just(Opcode::Slt),
        Just(Opcode::Sltu),
        Just(Opcode::Xor),
        Just(Opcode::Srl),
        Just(Opcode::Sra),
        Just(Opcode::Or),
        Just(Opcode::And),
        Just(Opcode::Mul),
        Just(Opcode::Mulh),
        Just(Opcode::Mulhsu),
        Just(Opcode::Mulhu),
        Just(Opcode::Div),
        Just(Opcode::Divu),
        Just(Opcode::Rem),
        Just(Opcode::Remu),
        Just(Opcode::Addw),
        Just(Opcode::Subw),
        Just(Opcode::Sllw),
        Just(Opcode::Srlw),
        Just(Opcode::Sraw),
    ];
    (ops, arb_xreg(), arb_xreg(), arb_xreg())
        .prop_map(|(op, rd, rs1, rs2)| Instruction::reg3(op, rd, rs1, rs2))
}

fn arb_reg_imm() -> impl Strategy<Value = Instruction> {
    let ops = prop_oneof![
        Just(Opcode::Addi),
        Just(Opcode::Slti),
        Just(Opcode::Sltiu),
        Just(Opcode::Xori),
        Just(Opcode::Ori),
        Just(Opcode::Andi),
        Just(Opcode::Addiw),
    ];
    (ops, arb_xreg(), arb_xreg(), -2048i64..2048)
        .prop_map(|(op, rd, rs1, imm)| Instruction::reg_imm(op, rd, rs1, imm))
}

fn arb_shift() -> impl Strategy<Value = Instruction> {
    let ops = prop_oneof![Just(Opcode::Slli), Just(Opcode::Srli), Just(Opcode::Srai)];
    (ops, arb_xreg(), arb_xreg(), 0i64..64)
        .prop_map(|(op, rd, rs1, sh)| Instruction::reg_imm(op, rd, rs1, sh))
}

fn arb_mem() -> impl Strategy<Value = Instruction> {
    let loads = prop_oneof![
        Just(Opcode::Lb),
        Just(Opcode::Lh),
        Just(Opcode::Lw),
        Just(Opcode::Lbu),
        Just(Opcode::Lhu),
        Just(Opcode::Lwu),
        Just(Opcode::Ld),
    ];
    let stores = prop_oneof![
        Just(Opcode::Sb),
        Just(Opcode::Sh),
        Just(Opcode::Sw),
        Just(Opcode::Sd),
    ];
    prop_oneof![
        (loads, arb_xreg(), arb_xreg(), -2048i64..2048)
            .prop_map(|(op, rd, base, off)| Instruction::load(op, rd, base, off)),
        (stores, arb_xreg(), arb_xreg(), -2048i64..2048)
            .prop_map(|(op, src, base, off)| Instruction::store(op, src, base, off)),
        (arb_freg(), arb_xreg(), -2048i64..2048)
            .prop_map(|(rd, base, off)| Instruction::load(Opcode::Flw, rd, base, off)),
        (arb_freg(), arb_xreg(), -2048i64..2048)
            .prop_map(|(src, base, off)| Instruction::store(Opcode::Fsw, src, base, off)),
    ]
}

fn arb_branch() -> impl Strategy<Value = Instruction> {
    let ops = prop_oneof![
        Just(Opcode::Beq),
        Just(Opcode::Bne),
        Just(Opcode::Blt),
        Just(Opcode::Bge),
        Just(Opcode::Bltu),
        Just(Opcode::Bgeu),
    ];
    (ops, arb_xreg(), arb_xreg(), -2048i64..2048)
        .prop_map(|(op, rs1, rs2, off)| Instruction::branch(op, rs1, rs2, off * 2))
}

fn arb_fp3() -> impl Strategy<Value = Instruction> {
    let ops = prop_oneof![
        Just(Opcode::FaddS),
        Just(Opcode::FsubS),
        Just(Opcode::FmulS),
        Just(Opcode::FdivS),
        Just(Opcode::FminS),
        Just(Opcode::FmaxS),
        Just(Opcode::FsgnjS),
        Just(Opcode::FsgnjnS),
        Just(Opcode::FsgnjxS),
    ];
    (ops, arb_freg(), arb_freg(), arb_freg())
        .prop_map(|(op, rd, rs1, rs2)| Instruction::reg3(op, rd, rs1, rs2))
}

fn arb_fp_cmp() -> impl Strategy<Value = Instruction> {
    let ops = prop_oneof![Just(Opcode::FeqS), Just(Opcode::FltS), Just(Opcode::FleS)];
    (ops, arb_xreg(), arb_freg(), arb_freg())
        .prop_map(|(op, rd, rs1, rs2)| Instruction::reg3(op, rd, rs1, rs2))
}

fn arb_fma() -> impl Strategy<Value = Instruction> {
    let ops = prop_oneof![
        Just(Opcode::FmaddS),
        Just(Opcode::FmsubS),
        Just(Opcode::FnmaddS),
        Just(Opcode::FnmsubS),
    ];
    (ops, arb_freg(), arb_freg(), arb_freg(), arb_freg())
        .prop_map(|(op, rd, a, b, c)| Instruction::reg4(op, rd, a, b, c))
}

fn arb_upper_jump() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        (arb_xreg(), -524288i64..524288)
            .prop_map(|(rd, v)| Instruction::upper(Opcode::Lui, rd, v << 12)),
        (arb_xreg(), -524288i64..524288)
            .prop_map(|(rd, v)| Instruction::upper(Opcode::Auipc, rd, v << 12)),
        (arb_xreg(), -524288i64..524287)
            .prop_map(|(rd, off)| Instruction::jal(rd, off * 2)),
        (arb_xreg(), arb_xreg(), -2048i64..2048).prop_map(|(rd, rs1, off)| Instruction {
            op: Opcode::Jalr,
            rd: Some(rd),
            rs1: Some(rs1),
            rs2: None,
            rs3: None,
            imm: off,
        }),
    ]
}

fn arb_instruction() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        arb_int_reg3(),
        arb_reg_imm(),
        arb_shift(),
        arb_mem(),
        arb_branch(),
        arb_fp3(),
        arb_fp_cmp(),
        arb_fma(),
        arb_upper_jump(),
    ]
}

proptest! {
    #[test]
    fn encode_decode_roundtrip(instr in arb_instruction()) {
        let word = codec::encode(&instr).expect("generated instruction must encode");
        let back = codec::decode(word).expect("encoded word must decode");
        prop_assert_eq!(back, instr);
    }

    #[test]
    fn decode_is_total(word in any::<u32>()) {
        // Must never panic; errors are fine.
        let _ = codec::decode(word);
    }

    #[test]
    fn decode_encode_roundtrip(word in any::<u32>()) {
        // Any word we accept must re-encode to an equivalent instruction
        // (not necessarily bit-identical: rounding-mode bits are dropped).
        if let Ok(instr) = codec::decode(word) {
            let word2 = codec::encode(&instr).expect("decoded instruction must re-encode");
            let instr2 = codec::decode(word2).expect("re-encoded word must decode");
            prop_assert_eq!(instr2, instr);
        }
    }

    #[test]
    fn display_never_panics(instr in arb_instruction()) {
        let _ = instr.to_string();
    }
}
