//! Property tests for the instruction codec: every instruction the
//! generators can produce must encode to a machine word that decodes back to
//! the identical instruction, and decoding is total (never panics) over
//! arbitrary 32-bit words.

use mesa_isa::{codec, Instruction, Opcode, Reg};
use mesa_test::prop::{any_u32, one_of, sample, Strategy, StrategyExt};
use mesa_test::{forall, prop_assert_eq, Checker};

/// Persisted counterexample seeds, replayed before novel cases.
const REGRESSIONS: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/codec_proptest.proptest-regressions");

fn checker(name: &str) -> Checker {
    Checker::new(name).cases(256).regressions_file(REGRESSIONS)
}

fn arb_xreg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::x)
}

fn arb_freg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::f)
}

fn arb_int_reg3() -> impl Strategy<Value = Instruction> {
    let ops = sample(&[
        Opcode::Add,
        Opcode::Sub,
        Opcode::Sll,
        Opcode::Slt,
        Opcode::Sltu,
        Opcode::Xor,
        Opcode::Srl,
        Opcode::Sra,
        Opcode::Or,
        Opcode::And,
        Opcode::Mul,
        Opcode::Mulh,
        Opcode::Mulhsu,
        Opcode::Mulhu,
        Opcode::Div,
        Opcode::Divu,
        Opcode::Rem,
        Opcode::Remu,
        Opcode::Addw,
        Opcode::Subw,
        Opcode::Sllw,
        Opcode::Srlw,
        Opcode::Sraw,
    ]);
    (ops, arb_xreg(), arb_xreg(), arb_xreg())
        .prop_map(|(op, rd, rs1, rs2)| Instruction::reg3(op, rd, rs1, rs2))
}

fn arb_reg_imm() -> impl Strategy<Value = Instruction> {
    let ops = sample(&[
        Opcode::Addi,
        Opcode::Slti,
        Opcode::Sltiu,
        Opcode::Xori,
        Opcode::Ori,
        Opcode::Andi,
        Opcode::Addiw,
    ]);
    (ops, arb_xreg(), arb_xreg(), -2048i64..2048)
        .prop_map(|(op, rd, rs1, imm)| Instruction::reg_imm(op, rd, rs1, imm))
}

fn arb_shift() -> impl Strategy<Value = Instruction> {
    let ops = sample(&[Opcode::Slli, Opcode::Srli, Opcode::Srai]);
    (ops, arb_xreg(), arb_xreg(), 0i64..64)
        .prop_map(|(op, rd, rs1, sh)| Instruction::reg_imm(op, rd, rs1, sh))
}

fn arb_mem() -> impl Strategy<Value = Instruction> {
    let loads = sample(&[
        Opcode::Lb,
        Opcode::Lh,
        Opcode::Lw,
        Opcode::Lbu,
        Opcode::Lhu,
        Opcode::Lwu,
        Opcode::Ld,
    ]);
    let stores = sample(&[Opcode::Sb, Opcode::Sh, Opcode::Sw, Opcode::Sd]);
    one_of(vec![
        (loads, arb_xreg(), arb_xreg(), -2048i64..2048)
            .prop_map(|(op, rd, base, off)| Instruction::load(op, rd, base, off))
            .boxed(),
        (stores, arb_xreg(), arb_xreg(), -2048i64..2048)
            .prop_map(|(op, src, base, off)| Instruction::store(op, src, base, off))
            .boxed(),
        (arb_freg(), arb_xreg(), -2048i64..2048)
            .prop_map(|(rd, base, off)| Instruction::load(Opcode::Flw, rd, base, off))
            .boxed(),
        (arb_freg(), arb_xreg(), -2048i64..2048)
            .prop_map(|(src, base, off)| Instruction::store(Opcode::Fsw, src, base, off))
            .boxed(),
    ])
}

fn arb_branch() -> impl Strategy<Value = Instruction> {
    let ops = sample(&[
        Opcode::Beq,
        Opcode::Bne,
        Opcode::Blt,
        Opcode::Bge,
        Opcode::Bltu,
        Opcode::Bgeu,
    ]);
    (ops, arb_xreg(), arb_xreg(), -2048i64..2048)
        .prop_map(|(op, rs1, rs2, off)| Instruction::branch(op, rs1, rs2, off * 2))
}

fn arb_fp3() -> impl Strategy<Value = Instruction> {
    let ops = sample(&[
        Opcode::FaddS,
        Opcode::FsubS,
        Opcode::FmulS,
        Opcode::FdivS,
        Opcode::FminS,
        Opcode::FmaxS,
        Opcode::FsgnjS,
        Opcode::FsgnjnS,
        Opcode::FsgnjxS,
    ]);
    (ops, arb_freg(), arb_freg(), arb_freg())
        .prop_map(|(op, rd, rs1, rs2)| Instruction::reg3(op, rd, rs1, rs2))
}

fn arb_fp_cmp() -> impl Strategy<Value = Instruction> {
    let ops = sample(&[Opcode::FeqS, Opcode::FltS, Opcode::FleS]);
    (ops, arb_xreg(), arb_freg(), arb_freg())
        .prop_map(|(op, rd, rs1, rs2)| Instruction::reg3(op, rd, rs1, rs2))
}

fn arb_fma() -> impl Strategy<Value = Instruction> {
    let ops = sample(&[
        Opcode::FmaddS,
        Opcode::FmsubS,
        Opcode::FnmaddS,
        Opcode::FnmsubS,
    ]);
    (ops, arb_freg(), arb_freg(), arb_freg(), arb_freg())
        .prop_map(|(op, rd, a, b, c)| Instruction::reg4(op, rd, a, b, c))
}

fn arb_upper_jump() -> impl Strategy<Value = Instruction> {
    one_of(vec![
        (arb_xreg(), -524288i64..524288)
            .prop_map(|(rd, v)| Instruction::upper(Opcode::Lui, rd, v << 12))
            .boxed(),
        (arb_xreg(), -524288i64..524288)
            .prop_map(|(rd, v)| Instruction::upper(Opcode::Auipc, rd, v << 12))
            .boxed(),
        (arb_xreg(), -524288i64..524287)
            .prop_map(|(rd, off)| Instruction::jal(rd, off * 2))
            .boxed(),
        (arb_xreg(), arb_xreg(), -2048i64..2048)
            .prop_map(|(rd, rs1, off)| Instruction {
                op: Opcode::Jalr,
                rd: Some(rd),
                rs1: Some(rs1),
                rs2: None,
                rs3: None,
                imm: off,
            })
            .boxed(),
    ])
}

fn arb_instruction() -> impl Strategy<Value = Instruction> {
    one_of(vec![
        arb_int_reg3().boxed(),
        arb_reg_imm().boxed(),
        arb_shift().boxed(),
        arb_mem().boxed(),
        arb_branch().boxed(),
        arb_fp3().boxed(),
        arb_fp_cmp().boxed(),
        arb_fma().boxed(),
        arb_upper_jump().boxed(),
    ])
}

#[test]
fn encode_decode_roundtrip() {
    forall!(checker("codec::encode_decode_roundtrip"), |(instr in arb_instruction())| {
        let word = codec::encode(&instr).expect("generated instruction must encode");
        let back = codec::decode(word).expect("encoded word must decode");
        prop_assert_eq!(back, instr);
    });
}

#[test]
fn decode_is_total() {
    forall!(checker("codec::decode_is_total"), |(word in any_u32())| {
        // Must never panic; errors are fine.
        let _ = codec::decode(word);
    });
}

#[test]
fn decode_encode_roundtrip() {
    forall!(checker("codec::decode_encode_roundtrip"), |(word in any_u32())| {
        // Any word we accept must re-encode to an equivalent instruction
        // (not necessarily bit-identical: rounding-mode bits are dropped).
        if let Ok(instr) = codec::decode(word) {
            let word2 = codec::encode(&instr).expect("decoded instruction must re-encode");
            let instr2 = codec::decode(word2).expect("re-encoded word must decode");
            prop_assert_eq!(instr2, instr);
        }
    });
}

#[test]
fn display_never_panics() {
    forall!(checker("codec::display_never_panics"), |(instr in arb_instruction())| {
        let _ = instr.to_string();
    });
}
