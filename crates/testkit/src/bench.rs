//! Microbenchmark timing: warmup, median-of-k batch samples, and JSON
//! line output. A deliberate, tiny replacement for `criterion` — enough
//! to track the simulator's own performance trajectory across PRs
//! without any external dependency.
//!
//! Timing goes through `mesa-trace`'s [`HostClock`] abstraction (the
//! workspace's single sanctioned wall-clock seam): [`bench_fn`] uses the
//! real clock, while [`bench_fn_with`] accepts any clock — the unit
//! tests drive a deterministic [`mesa_trace::MockClock`]. Benches whose
//! workload reports simulated cycles can use [`BenchSuite::run_cycles`]
//! to record sim-cycles/iteration and the derived simulation throughput
//! (`sim_mcycles_per_sec`) alongside ns/iter in `BENCH_components.json`.

use mesa_trace::host::{HostClock, RealClock};
use std::fmt::Write as _;

/// One benchmark measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Benchmark name (`group/function` by convention).
    pub name: String,
    /// Iterations per timed batch.
    pub iters: u64,
    /// Number of timed batches.
    pub samples: usize,
    /// Median per-iteration time over the batches, in nanoseconds.
    pub median_ns: f64,
    /// Fastest batch's per-iteration time, in nanoseconds.
    pub min_ns: f64,
    /// Slowest batch's per-iteration time, in nanoseconds.
    pub max_ns: f64,
    /// Mean per-iteration time over the batches, in nanoseconds.
    pub mean_ns: f64,
    /// Simulated cycles advanced per iteration, when the workload
    /// reports them (see [`BenchSuite::run_cycles`]).
    pub sim_cycles_per_iter: Option<f64>,
}

impl BenchResult {
    /// Simulation throughput in millions of simulated cycles per host
    /// second, derived from the median timing (`None` when the
    /// workload reported no cycles or the measurement was too fast to
    /// time).
    #[must_use]
    pub fn sim_mcycles_per_sec(&self) -> Option<f64> {
        let cycles = self.sim_cycles_per_iter?;
        if cycles > 0.0 && self.median_ns > 0.0 {
            // cycles/ns × 1e9 → cycles/s; ÷ 1e6 → Mcycles/s.
            Some(cycles * 1e3 / self.median_ns)
        } else {
            None
        }
    }

    /// Renders the result as one JSON object on a single line. The sim
    /// throughput fields only appear for cycle-reporting benches, so
    /// existing consumers that scan `median_ns` are unaffected.
    #[must_use]
    pub fn json_line(&self) -> String {
        let mut out = format!(
            "{{\"name\":\"{}\",\"iters\":{},\"samples\":{},\"median_ns\":{:.1},\"min_ns\":{:.1},\"max_ns\":{:.1},\"mean_ns\":{:.1}",
            self.name, self.iters, self.samples, self.median_ns, self.min_ns, self.max_ns, self.mean_ns
        );
        if let Some(cycles) = self.sim_cycles_per_iter {
            let _ = write!(out, ",\"sim_cycles_per_iter\":{cycles:.1}");
            if let Some(rate) = self.sim_mcycles_per_sec() {
                let _ = write!(out, ",\"sim_mcycles_per_sec\":{rate:.3}");
            }
        }
        out.push('}');
        out
    }
}

/// Number of timed batches per benchmark.
const SAMPLES: usize = 7;

fn bench_inner(
    name: &str,
    iters: u64,
    clock: &mut dyn HostClock,
    f: &mut dyn FnMut() -> u64,
    track_cycles: bool,
) -> BenchResult {
    assert!(iters > 0, "bench needs at least one iteration");
    let run_batch = |f: &mut dyn FnMut() -> u64, clock: &mut dyn HostClock| {
        let start = clock.now_ns();
        let mut cycles = 0u64;
        for _ in 0..iters {
            cycles = cycles.saturating_add(std::hint::black_box(f()));
        }
        let dt = clock.now_ns().saturating_sub(start);
        (dt as f64 / iters as f64, cycles)
    };

    run_batch(f, clock); // warmup: touch caches, JIT the page tables in

    let mut per_iter: Vec<f64> = Vec::with_capacity(SAMPLES);
    let mut batch_cycles = 0u64;
    for _ in 0..SAMPLES {
        let (ns, cycles) = run_batch(f, clock);
        per_iter.push(ns);
        batch_cycles = cycles;
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median_ns = per_iter[SAMPLES / 2];
    let mean_ns = per_iter.iter().sum::<f64>() / SAMPLES as f64;
    BenchResult {
        name: name.to_string(),
        iters,
        samples: SAMPLES,
        median_ns,
        min_ns: per_iter[0],
        max_ns: per_iter[SAMPLES - 1],
        mean_ns,
        sim_cycles_per_iter: track_cycles.then(|| batch_cycles as f64 / iters as f64),
    }
}

/// Times `f` over `iters` iterations per batch against the real wall
/// clock: one untimed warmup batch, then [`SAMPLES`] timed batches,
/// reporting the median (robust against scheduler noise), min, max,
/// and mean per-iteration time.
///
/// The closure's return value is passed through [`std::hint::black_box`]
/// so the work is not optimized away.
///
/// # Panics
/// Panics if `iters` is zero.
pub fn bench_fn<T>(name: &str, iters: u64, mut f: impl FnMut() -> T) -> BenchResult {
    bench_fn_with(name, iters, &mut RealClock::new(), &mut f)
}

/// [`bench_fn`] against an injected [`HostClock`] — the seam that lets
/// tests time against a deterministic mock.
///
/// # Panics
/// Panics if `iters` is zero.
pub fn bench_fn_with<T>(
    name: &str,
    iters: u64,
    clock: &mut dyn HostClock,
    f: &mut impl FnMut() -> T,
) -> BenchResult {
    let mut wrapped = || {
        std::hint::black_box(f());
        0u64
    };
    bench_inner(name, iters, clock, &mut wrapped, false)
}

/// Times a workload that reports its simulated cycles: `f` returns the
/// cycles one iteration advanced, and the result additionally carries
/// `sim_cycles_per_iter` + derived `sim_mcycles_per_sec`.
///
/// # Panics
/// Panics if `iters` is zero.
pub fn bench_fn_cycles(name: &str, iters: u64, mut f: impl FnMut() -> u64) -> BenchResult {
    bench_inner(name, iters, &mut RealClock::new(), &mut f, true)
}

/// Collects [`BenchResult`]s across a bench binary and serializes them
/// as a JSON array (one file per suite, e.g. `BENCH_components.json`).
#[derive(Debug, Default)]
pub struct BenchSuite {
    results: Vec<BenchResult>,
}

impl BenchSuite {
    /// Empty suite.
    #[must_use]
    pub fn new() -> Self {
        BenchSuite::default()
    }

    /// Runs one benchmark, prints its JSON line to stdout, and records
    /// the result.
    pub fn run<T>(&mut self, name: &str, iters: u64, f: impl FnMut() -> T) -> &BenchResult {
        let r = bench_fn(name, iters, f);
        println!("{}", r.json_line());
        self.results.push(r);
        self.results.last().expect("just pushed")
    }

    /// Like [`BenchSuite::run`], for workloads that report simulated
    /// cycles per iteration: records simulation throughput alongside
    /// the timing.
    pub fn run_cycles(&mut self, name: &str, iters: u64, f: impl FnMut() -> u64) -> &BenchResult {
        let r = bench_fn_cycles(name, iters, f);
        println!("{}", r.json_line());
        self.results.push(r);
        self.results.last().expect("just pushed")
    }

    /// The recorded results, in run order.
    #[must_use]
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Serializes the suite as a pretty-ish JSON array.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, r) in self.results.iter().enumerate() {
            let _ = write!(out, "  {}", r.json_line());
            if i + 1 < self.results.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push(']');
        out.push('\n');
        out
    }

    /// Writes the JSON array to `path`.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesa_trace::MockClock;

    #[test]
    fn bench_fn_measures_and_orders_stats() {
        let r = bench_fn("noop", 1000, || 1 + 1);
        assert_eq!(r.iters, 1000);
        assert_eq!(r.samples, SAMPLES);
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.max_ns);
        assert!(r.min_ns >= 0.0);
        assert_eq!(r.sim_cycles_per_iter, None);
    }

    #[test]
    fn json_line_is_wellformed() {
        let r = bench_fn("codec/decode", 100, || 42u64);
        let line = r.json_line();
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"name\":\"codec/decode\""));
        assert!(line.contains("\"median_ns\":"));
        assert!(!line.contains("sim_cycles_per_iter"));
        assert!(!line.contains('\n'));
    }

    #[test]
    fn mock_clock_timing_is_deterministic() {
        // Each batch reads the clock twice, so per-iteration time is
        // exactly step_ns / iters regardless of the actual work.
        let run = || {
            let mut clock = MockClock::new(1_000);
            bench_fn_with("mock", 10, &mut clock, &mut || 7u64)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!((a.median_ns - 100.0).abs() < f64::EPSILON);
        assert_eq!(a.min_ns, a.max_ns, "mock batches are identical");
        assert_eq!(a.json_line(), b.json_line());
    }

    #[test]
    fn cycle_reporting_benches_record_throughput() {
        let r = bench_fn_cycles("engine/fake", 8, || 1_000u64);
        assert_eq!(r.sim_cycles_per_iter, Some(1_000.0));
        let line = r.json_line();
        assert!(line.contains("\"sim_cycles_per_iter\":1000.0"));
        if r.median_ns > 0.0 {
            let rate = r.sim_mcycles_per_sec().expect("cycles and time present");
            assert!(rate.is_finite() && rate > 0.0);
            assert!(line.contains("\"sim_mcycles_per_sec\":"));
        }
    }

    #[test]
    fn suite_collects_and_serializes() {
        let mut suite = BenchSuite::new();
        suite.run("a", 10, || 1);
        suite.run_cycles("b", 10, || 2u64);
        let json = suite.to_json();
        assert!(json.starts_with("[\n") && json.trim_end().ends_with(']'));
        assert_eq!(json.matches("\"name\"").count(), 2);
        assert_eq!(json.matches("sim_cycles_per_iter").count(), 1);
        assert_eq!(suite.results().len(), 2);
    }

    #[test]
    fn timed_work_scales_with_iters() {
        // A busy loop long enough to rise above timer resolution.
        let spin = |n: u64| {
            move || {
                let mut acc = 0u64;
                for i in 0..n {
                    acc = acc.wrapping_add(std::hint::black_box(i));
                }
                acc
            }
        };
        let short = bench_fn("spin1k", 50, spin(1_000));
        let long = bench_fn("spin100k", 50, spin(100_000));
        assert!(
            long.median_ns > short.median_ns * 5.0,
            "100x the work should be at least 5x slower ({} vs {})",
            long.median_ns,
            short.median_ns
        );
    }
}
