//! Microbenchmark timing: warmup, median-of-k batch samples, and JSON
//! line output. A deliberate, tiny replacement for `criterion` — enough
//! to track the simulator's own performance trajectory across PRs
//! without any external dependency.

use std::fmt::Write as _;
use std::time::Instant;

/// One benchmark measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Benchmark name (`group/function` by convention).
    pub name: String,
    /// Iterations per timed batch.
    pub iters: u64,
    /// Number of timed batches.
    pub samples: usize,
    /// Median per-iteration time over the batches, in nanoseconds.
    pub median_ns: f64,
    /// Fastest batch's per-iteration time, in nanoseconds.
    pub min_ns: f64,
    /// Slowest batch's per-iteration time, in nanoseconds.
    pub max_ns: f64,
    /// Mean per-iteration time over the batches, in nanoseconds.
    pub mean_ns: f64,
}

impl BenchResult {
    /// Renders the result as one JSON object on a single line.
    #[must_use]
    pub fn json_line(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"iters\":{},\"samples\":{},\"median_ns\":{:.1},\"min_ns\":{:.1},\"max_ns\":{:.1},\"mean_ns\":{:.1}}}",
            self.name, self.iters, self.samples, self.median_ns, self.min_ns, self.max_ns, self.mean_ns
        )
    }
}

/// Number of timed batches per benchmark.
const SAMPLES: usize = 7;

/// Times `f` over `iters` iterations per batch: one untimed warmup
/// batch, then [`SAMPLES`] timed batches, reporting the median (robust
/// against scheduler noise), min, max, and mean per-iteration time.
///
/// The closure's return value is passed through [`std::hint::black_box`]
/// so the work is not optimized away.
///
/// # Panics
/// Panics if `iters` is zero.
pub fn bench_fn<T>(name: &str, iters: u64, mut f: impl FnMut() -> T) -> BenchResult {
    assert!(iters > 0, "bench_fn needs at least one iteration");
    let run_batch = |f: &mut dyn FnMut() -> T| {
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        start.elapsed().as_nanos() as f64 / iters as f64
    };

    run_batch(&mut f); // warmup: touch caches, JIT the page tables in

    let mut per_iter: Vec<f64> = (0..SAMPLES).map(|_| run_batch(&mut f)).collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median_ns = per_iter[SAMPLES / 2];
    let mean_ns = per_iter.iter().sum::<f64>() / SAMPLES as f64;
    BenchResult {
        name: name.to_string(),
        iters,
        samples: SAMPLES,
        median_ns,
        min_ns: per_iter[0],
        max_ns: per_iter[SAMPLES - 1],
        mean_ns,
    }
}

/// Collects [`BenchResult`]s across a bench binary and serializes them
/// as a JSON array (one file per suite, e.g. `BENCH_components.json`).
#[derive(Debug, Default)]
pub struct BenchSuite {
    results: Vec<BenchResult>,
}

impl BenchSuite {
    /// Empty suite.
    #[must_use]
    pub fn new() -> Self {
        BenchSuite::default()
    }

    /// Runs one benchmark, prints its JSON line to stdout, and records
    /// the result.
    pub fn run<T>(&mut self, name: &str, iters: u64, f: impl FnMut() -> T) -> &BenchResult {
        let r = bench_fn(name, iters, f);
        println!("{}", r.json_line());
        self.results.push(r);
        self.results.last().expect("just pushed")
    }

    /// The recorded results, in run order.
    #[must_use]
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Serializes the suite as a pretty-ish JSON array.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, r) in self.results.iter().enumerate() {
            let _ = write!(out, "  {}", r.json_line());
            if i + 1 < self.results.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push(']');
        out.push('\n');
        out
    }

    /// Writes the JSON array to `path`.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_fn_measures_and_orders_stats() {
        let r = bench_fn("noop", 1000, || 1 + 1);
        assert_eq!(r.iters, 1000);
        assert_eq!(r.samples, SAMPLES);
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.max_ns);
        assert!(r.min_ns >= 0.0);
    }

    #[test]
    fn json_line_is_wellformed() {
        let r = bench_fn("codec/decode", 100, || 42u64);
        let line = r.json_line();
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"name\":\"codec/decode\""));
        assert!(line.contains("\"median_ns\":"));
        assert!(!line.contains('\n'));
    }

    #[test]
    fn suite_collects_and_serializes() {
        let mut suite = BenchSuite::new();
        suite.run("a", 10, || 1);
        suite.run("b", 10, || 2);
        let json = suite.to_json();
        assert!(json.starts_with("[\n") && json.trim_end().ends_with(']'));
        assert_eq!(json.matches("\"name\"").count(), 2);
        assert_eq!(suite.results().len(), 2);
    }

    #[test]
    fn timed_work_scales_with_iters() {
        // A busy loop long enough to rise above timer resolution.
        let spin = |n: u64| {
            move || {
                let mut acc = 0u64;
                for i in 0..n {
                    acc = acc.wrapping_add(std::hint::black_box(i));
                }
                acc
            }
        };
        let short = bench_fn("spin1k", 50, spin(1_000));
        let long = bench_fn("spin100k", 50, spin(100_000));
        assert!(
            long.median_ns > short.median_ns * 5.0,
            "100x the work should be at least 5x slower ({} vs {})",
            long.median_ns,
            short.median_ns
        );
    }
}
