//! Deterministic pseudo-random number generation: xoshiro256** state
//! expanded from a 64-bit seed through SplitMix64.
//!
//! The API mirrors the subset of `rand::Rng` the workspace used —
//! [`Rng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`],
//! [`Rng::gen_bool`], [`Rng::fill`] — so callers port with a `use` swap.
//! Every sequence is a pure function of the seed: the same seed produces
//! the same stream on every platform, build, and run, which is what lets
//! a printed failure seed reproduce a counterexample exactly.

use std::ops::{Range, RangeInclusive};

/// Advances a SplitMix64 state and returns the next output. Used both to
/// expand seeds into xoshiro state and to derive per-case seeds in the
/// property harness.
#[must_use]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256** generator with SplitMix64 seeding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Builds a generator whose 256-bit state is expanded from `seed`
    /// with SplitMix64 (the seeding procedure the xoshiro authors
    /// recommend; it never yields the all-zero state).
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Rng { s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)] }
    }

    /// Next raw 64-bit output.
    #[allow(clippy::should_implement_trait)]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next raw 32-bit output (upper half of the 64-bit output).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Samples a value of any [`Standard`]-distributed type: integers
    /// uniform over their full range, `f32`/`f64` uniform in `[0, 1)`,
    /// `bool` fair.
    pub fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range` (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of [0,1]");
        self.gen::<f64>() < p
    }

    /// Fills `dest` with random bytes.
    pub fn fill(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types [`Rng::gen`] can sample from their "natural" distribution.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample(rng: &mut Rng) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn sample(rng: &mut Rng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample(rng: &mut Rng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample(rng: &mut Rng) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample(rng: &mut Rng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types that can be sampled uniformly from a sub-range.
pub trait SampleUniform: Copy {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`).
    fn sample_uniform(rng: &mut Rng, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_sign_loss)]
            fn sample_uniform(rng: &mut Rng, lo: Self, hi: Self, inclusive: bool) -> Self {
                let span = (hi as i128) - (lo as i128) + i128::from(inclusive);
                assert!(span > 0, "gen_range: empty range {lo}..{hi}");
                // All workspace types fit in 64 bits, so span <= 2^64 and
                // the modulo bias is at most span/2^64 — irrelevant for
                // test-case generation, and fully deterministic.
                let draw = if span > i128::from(u64::MAX) {
                    u128::from(rng.next_u64())
                } else {
                    u128::from(rng.next_u64()) % (span as u128)
                };
                ((lo as i128) + (draw as i128)) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range shapes accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from(self, rng: &mut Rng) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from(self, rng: &mut Rng) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from(self, rng: &mut Rng) -> T {
        T::sample_uniform(rng, *self.start(), *self.end(), true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn reference_vector_xoshiro256starstar() {
        // First outputs for state seeded with SplitMix64 from 0, per the
        // reference implementations by Blackman & Vigna.
        let mut sm = 0u64;
        let s = [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        let mut rng = Rng { s };
        let first = rng.next_u64();
        // Recompute independently: result = rotl(s[1] * 5, 7) * 9.
        let expect = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        assert_eq!(first, expect);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-64i64..64);
            assert!((-64..64).contains(&v));
            let u = rng.gen_range(3u32..=8);
            assert!((3..=8).contains(&u));
            let w = rng.gen_range(0usize..5);
            assert!(w < 5);
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = Rng::seed_from_u64(9);
        let mut seen = [false; 6];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 6 values should appear in 200 draws");
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..1000 {
            let f = rng.gen::<f32>();
            assert!((0.0..1.0).contains(&f));
            let d = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Rng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.7)).count();
        assert!((6500..7500).contains(&hits), "p=0.7 gave {hits}/10000");
    }

    #[test]
    fn fill_is_deterministic_and_covers_tail() {
        let mut a = Rng::seed_from_u64(5);
        let mut b = Rng::seed_from_u64(5);
        let mut ba = [0u8; 13];
        let mut bb = [0u8; 13];
        a.fill(&mut ba);
        b.fill(&mut bb);
        assert_eq!(ba, bb);
        assert!(ba.iter().any(|&x| x != 0));
    }
}
