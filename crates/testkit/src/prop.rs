//! A minimal property-testing harness: composable [`Strategy`] value
//! generators, an N-case runner with greedy counterexample shrinking,
//! deterministic per-case seeds, seed replay through the
//! `MESA_TEST_SEED` environment variable, and persisted regression seeds
//! parsed from proptest-style `*.proptest-regressions` files.
//!
//! The workflow on failure:
//!
//! 1. The runner prints the failing case seed and the shrunk
//!    counterexample.
//! 2. `MESA_TEST_SEED=<seed> cargo test <name>` replays exactly that
//!    case (generation is a pure function of the seed).
//! 3. Appending a `cc <hex> # note` line to the test's
//!    `.proptest-regressions` file makes every future run replay it
//!    before generating novel cases.

use crate::rng::{splitmix64, Rng, SampleUniform};
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A generator of test values with optional shrinking.
///
/// `generate` must be a pure function of the RNG stream so that a case
/// seed reproduces its value exactly. `shrink` proposes strictly
/// "smaller" candidate values; the runner greedily walks candidates that
/// keep the property failing.
pub trait Strategy {
    /// The generated value type.
    type Value: Clone + Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut Rng) -> Self::Value;

    /// Proposes smaller candidates for a failing `value` (may be empty).
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }
}

impl<T: Clone + Debug> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut Rng) -> T {
        (**self).generate(rng)
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        (**self).shrink(value)
    }
}

/// Integer shrink candidates between `lo` and failing `v`: the minimum,
/// then a geometric ladder of halving steps back toward `v`, ending with
/// the decrement shrinker `v - 1`. Greedy descent over this ladder
/// converges in O(log(v - lo)) property evaluations.
fn shrink_toward(lo: i128, v: i128) -> Vec<i128> {
    let mut out = Vec::new();
    if v == lo {
        return out;
    }
    out.push(lo);
    // v - span/2, v - span/4, ... — aggressive to gentle.
    let mut step = (v - lo) / 2;
    while step > 1 {
        let cand = v - step;
        if cand != lo && out.last() != Some(&cand) {
            out.push(cand);
        }
        step /= 2;
    }
    if v - 1 != lo && out.last() != Some(&(v - 1)) {
        out.push(v - 1);
    }
    out
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut Rng) -> $t {
                <$t>::sample_uniform(rng, self.start, self.end, false)
            }
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_sign_loss)]
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward(self.start as i128, *value as i128)
                    .into_iter()
                    .map(|v| v as $t)
                    .collect()
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut Rng) -> $t {
                <$t>::sample_uniform(rng, *self.start(), *self.end(), true)
            }
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_sign_loss)]
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward(*self.start() as i128, *value as i128)
                    .into_iter()
                    .map(|v| v as $t)
                    .collect()
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Full-range integer strategy (the analogue of proptest's `any::<T>()`),
/// shrinking toward zero.
#[derive(Debug, Clone, Copy)]
pub struct AnyInt<T>(std::marker::PhantomData<T>);

macro_rules! impl_any_int {
    ($($fn_name:ident => $t:ty),*) => {$(
        /// Uniform over the whole domain of the type, shrinking toward 0.
        #[must_use]
        pub fn $fn_name() -> AnyInt<$t> {
            AnyInt(std::marker::PhantomData)
        }
        impl Strategy for AnyInt<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn generate(&self, rng: &mut Rng) -> $t {
                rng.next_u64() as $t
            }
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_sign_loss)]
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward(0, *value as i128).into_iter().map(|v| v as $t).collect()
            }
        }
    )*};
}
impl_any_int!(any_u8 => u8, any_u16 => u16, any_u32 => u32, any_u64 => u64, any_usize => usize,
              any_i8 => i8, any_i16 => i16, any_i32 => i32, any_i64 => i64);

/// Fair coin strategy, shrinking toward `false`.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

/// Fair `bool`, shrinking toward `false`.
#[must_use]
pub fn any_bool() -> AnyBool {
    AnyBool
}

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut Rng) -> bool {
        rng.gen::<bool>()
    }
    fn shrink(&self, value: &bool) -> Vec<bool> {
        if *value { vec![false] } else { Vec::new() }
    }
}

/// Always yields a clone of one fixed value (proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

/// Strategy producing exactly `value` every time.
#[must_use]
pub fn just<T: Clone + Debug>(value: T) -> Just<T> {
    Just(value)
}

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut Rng) -> T {
        self.0.clone()
    }
}

/// Uniform choice from a static slice, shrinking toward the first
/// element.
#[derive(Debug, Clone, Copy)]
pub struct Sample<T: 'static>(&'static [T]);

/// Uniform choice from `options` (must be non-empty).
#[must_use]
pub fn sample<T: Clone + Debug + PartialEq>(options: &'static [T]) -> Sample<T> {
    assert!(!options.is_empty(), "sample() needs at least one option");
    Sample(options)
}

impl<T: Clone + Debug + PartialEq> Strategy for Sample<T> {
    type Value = T;
    fn generate(&self, rng: &mut Rng) -> T {
        self.0[rng.gen_range(0..self.0.len())].clone()
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        if *value == self.0[0] { Vec::new() } else { vec![self.0[0].clone()] }
    }
}

/// Uniform choice among heterogeneous boxed strategies producing one
/// value type (proptest's `prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

/// Picks one of `options` uniformly per case. Values do not shrink
/// across branches (the producing branch is not recorded).
#[must_use]
pub fn one_of<T: Clone + Debug>(options: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
    assert!(!options.is_empty(), "one_of() needs at least one option");
    Union { options }
}

impl<T: Clone + Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut Rng) -> T {
        self.options[rng.gen_range(0..self.options.len())].generate(rng)
    }
}

/// Maps a strategy's output through a function (proptest's `prop_map`).
/// Mapped values do not shrink (the mapping is not invertible).
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
    U: Clone + Debug,
{
    type Value = U;
    fn generate(&self, rng: &mut Rng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Combinator methods for every strategy.
pub trait StrategyExt: Strategy + Sized {
    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        U: Clone + Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy for use in [`one_of`].
    fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
    where
        Self: 'static,
    {
        Box::new(self)
    }
}

impl<S: Strategy> StrategyExt for S {}

/// Vectors of `elem`-generated values with length drawn from `len`.
pub struct VecStrategy<S> {
    elem: S,
    len: Range<usize>,
}

/// `Vec` strategy (proptest's `prop::collection::vec`): length uniform in
/// `len`, elements independent draws from `elem`. Shrinks by halving the
/// length toward the minimum, dropping the last element, and shrinking
/// individual elements.
#[must_use]
pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "vec() needs a non-empty length range");
    VecStrategy { elem, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
        let n = rng.gen_range(self.len.clone());
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let min = self.len.start;
        let mut out = Vec::new();
        if value.len() > min {
            let half = (value.len() / 2).max(min);
            if half < value.len() {
                out.push(value[..half].to_vec());
            }
            out.push(value[..value.len() - 1].to_vec());
        }
        for i in 0..value.len() {
            if let Some(smaller) = self.elem.shrink(&value[i]).into_iter().next() {
                let mut v2 = value.clone();
                v2[i] = smaller;
                out.push(v2);
            }
        }
        out
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($S:ident . $idx:tt),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut Rng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut v2 = value.clone();
                        v2.$idx = cand;
                        out.push(v2);
                    }
                )+
                out
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Persisted regression seeds, parsed from a proptest-style
/// `*.proptest-regressions` file: lines of `cc <hex> # comment`, where
/// `<hex>` is a hex digest. Each digest is folded (XOR over 64-bit limbs)
/// into the case seed that the harness replays.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Regressions {
    seeds: Vec<u64>,
}

impl Regressions {
    /// Parses a regression file. Missing files yield an empty set (the
    /// same behavior proptest has); malformed `cc` lines are skipped.
    #[must_use]
    pub fn load(path: &str) -> Self {
        let Ok(text) = std::fs::read_to_string(path) else {
            return Regressions::default();
        };
        Regressions::parse(&text)
    }

    /// Parses regression-file text.
    #[must_use]
    pub fn parse(text: &str) -> Self {
        let mut seeds = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            let Some(rest) = line.strip_prefix("cc ") else { continue };
            let digest = rest.split_whitespace().next().unwrap_or("");
            if let Some(seed) = fold_hex_digest(digest) {
                seeds.push(seed);
            }
        }
        Regressions { seeds }
    }

    /// The replay seeds, in file order.
    #[must_use]
    pub fn seeds(&self) -> &[u64] {
        &self.seeds
    }

    /// Number of persisted seeds.
    #[must_use]
    pub fn len(&self) -> usize {
        self.seeds.len()
    }

    /// Whether no seeds are persisted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.seeds.is_empty()
    }
}

/// XOR-folds a hex digest into a 64-bit seed. Returns `None` for
/// non-hex or empty input.
fn fold_hex_digest(digest: &str) -> Option<u64> {
    if digest.is_empty() || !digest.chars().all(|c| c.is_ascii_hexdigit()) {
        return None;
    }
    let mut acc = 0u64;
    let bytes = digest.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let end = (i + 16).min(bytes.len());
        let limb = u64::from_str_radix(&digest[i..end], 16).ok()?;
        acc ^= limb;
        i = end;
    }
    Some(acc)
}

/// What a [`Checker`] run did: exposed so tests can prove regression
/// seeds were actually replayed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Report {
    /// Persisted regression seeds replayed before random generation.
    pub regressions_replayed: usize,
    /// Freshly generated cases run (0 when `MESA_TEST_SEED` pinned the
    /// run to a single replayed case).
    pub cases_run: u32,
}

/// Property-test runner: configuration + execution.
#[derive(Debug, Clone)]
pub struct Checker {
    name: String,
    cases: u32,
    regressions: Regressions,
}

/// Environment variable that pins every [`Checker`] in the process to a
/// single replayed case seed (as printed by a failure message).
pub const SEED_ENV: &str = "MESA_TEST_SEED";

impl Checker {
    /// New runner for the property `name` (used in failure messages and
    /// to derive the base seed), defaulting to 256 cases.
    #[must_use]
    pub fn new(name: &str) -> Self {
        Checker { name: name.to_string(), cases: 256, regressions: Regressions::default() }
    }

    /// Sets the number of random cases.
    #[must_use]
    pub fn cases(mut self, cases: u32) -> Self {
        self.cases = cases;
        self
    }

    /// Loads persisted regression seeds to replay before random cases.
    #[must_use]
    pub fn regressions_file(mut self, path: &str) -> Self {
        self.regressions = Regressions::load(path);
        self
    }

    /// Uses an already-parsed regression set.
    #[must_use]
    pub fn regressions(mut self, regressions: Regressions) -> Self {
        self.regressions = regressions;
        self
    }

    /// Base seed for random case derivation: a stable FNV-1a hash of the
    /// property name, so distinct properties explore distinct streams
    /// but every run of the same property is identical.
    #[must_use]
    pub fn base_seed(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in self.name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Runs the property: regression seeds first, then either the single
    /// `MESA_TEST_SEED` replay or `cases` fresh cases. Panics with the
    /// shrunk counterexample and its replay seed on failure.
    ///
    /// # Panics
    /// Panics when the property fails for any generated value.
    pub fn check<S, F>(&self, strategy: &S, mut prop: F) -> Report
    where
        S: Strategy,
        F: FnMut(S::Value) -> Result<(), String>,
    {
        let mut report = Report::default();

        for &seed in self.regressions.seeds() {
            self.run_case(strategy, &mut prop, seed, "regression");
            report.regressions_replayed += 1;
        }

        if let Ok(pinned) = std::env::var(SEED_ENV) {
            let seed = parse_seed(&pinned)
                .unwrap_or_else(|| panic!("{SEED_ENV}={pinned} is not a valid u64 seed"));
            self.run_case(strategy, &mut prop, seed, "pinned");
            return report;
        }

        let mut base = self.base_seed();
        for _ in 0..self.cases {
            let seed = splitmix64(&mut base);
            self.run_case(strategy, &mut prop, seed, "random");
            report.cases_run += 1;
        }
        report
    }

    /// Generates, tests, and (on failure) shrinks one case.
    fn run_case<S, F>(&self, strategy: &S, prop: &mut F, seed: u64, kind: &str)
    where
        S: Strategy,
        F: FnMut(S::Value) -> Result<(), String>,
    {
        let mut rng = Rng::seed_from_u64(seed);
        let value = strategy.generate(&mut rng);
        let Err(first_msg) = run_guarded(prop, value.clone()) else {
            return;
        };
        let (shrunk, msg, steps) = shrink_failure(strategy, prop, value, first_msg);
        panic!(
            "property `{}` failed on {kind} case (seed {seed:#018x})\n\
             counterexample (after {steps} shrink steps): {shrunk:?}\n\
             error: {msg}\n\
             replay with: {SEED_ENV}={seed:#018x} cargo test",
            self.name
        );
    }
}

/// Parses decimal or `0x` hex seeds.
fn parse_seed(text: &str) -> Option<u64> {
    let text = text.trim();
    if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        text.parse().ok()
    }
}

/// Runs the property, converting panics into `Err` so shrinking can
/// continue past panicking candidates.
fn run_guarded<V, F>(prop: &mut F, value: V) -> Result<(), String>
where
    F: FnMut(V) -> Result<(), String>,
{
    match catch_unwind(AssertUnwindSafe(|| prop(value))) {
        Ok(r) => r,
        Err(payload) => Err(panic_message(&*payload)),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_string()
    }
}

/// Greedy shrink: repeatedly move to the first candidate that still
/// fails, until no candidate fails or the step budget runs out.
fn shrink_failure<S, F>(
    strategy: &S,
    prop: &mut F,
    mut value: S::Value,
    mut msg: String,
    // Returns (shrunk value, its failure message, shrink steps taken).
) -> (S::Value, String, u32)
where
    S: Strategy,
    F: FnMut(S::Value) -> Result<(), String>,
{
    const MAX_STEPS: u32 = 2048;
    let mut steps = 0;
    'outer: while steps < MAX_STEPS {
        for cand in strategy.shrink(&value) {
            if let Err(e) = run_guarded(prop, cand.clone()) {
                value = cand;
                msg = e;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (value, msg, steps)
}

/// Asserts a condition inside a property body, failing the case (and
/// triggering shrinking) instead of aborting the whole run.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!("assertion failed: `{:?}` != `{:?}`", l, r));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!("{}: `{:?}` != `{:?}`", format!($($fmt)+), l, r));
        }
    }};
}

/// Runs a property over named strategy draws:
///
/// ```
/// use mesa_test::{forall, prop_assert, Checker};
///
/// forall!(Checker::new("add_commutes").cases(64), |(a in 0u32..100, b in 0u32..100)| {
///     prop_assert!(a + b == b + a);
/// });
/// ```
///
/// Expands to a tuple strategy and a closure returning
/// `Result<(), String>`; use `prop_assert!`/`prop_assert_eq!` (or
/// early-`return Err(..)`) to fail a case. Returns the [`Report`].
#[macro_export]
macro_rules! forall {
    ($checker:expr, |($($name:ident in $strategy:expr),+ $(,)?)| $body:block) => {{
        let __strategy = ($($strategy,)+);
        $checker.check(&__strategy, |($($name,)+)| {
            $body
            #[allow(unreachable_code)]
            Ok(())
        })
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    

    #[test]
    fn passing_property_runs_all_cases() {
        let report = forall!(Checker::new("tautology").cases(32), |(x in 0u64..100)| {
            prop_assert!(x < 100);
        });
        assert_eq!(report.cases_run, 32);
        assert_eq!(report.regressions_replayed, 0);
    }

    #[test]
    fn failing_property_panics_with_seed_and_shrinks() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            forall!(Checker::new("find_big").cases(200), |(x in 0u64..1000)| {
                prop_assert!(x < 500, "x too big: {x}");
            });
        }));
        let msg = panic_message(&*result.unwrap_err());
        // The minimal counterexample for `x < 500` over 0..1000 is 500.
        assert!(msg.contains("counterexample"), "missing counterexample: {msg}");
        assert!(msg.contains("500"), "should shrink to 500: {msg}");
        assert!(msg.contains("MESA_TEST_SEED="), "missing replay seed: {msg}");
    }

    #[test]
    fn shrinking_minimizes_vectors() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            Checker::new("short_vecs").cases(100).check(
                &(vec(0u32..100, 1..20),),
                |(v,)| {
                    prop_assert!(v.len() < 5, "long vec");
                    Ok(())
                },
            );
        }));
        let msg = panic_message(&*result.unwrap_err());
        // Minimal failing length is 5, all elements shrunk to 0.
        assert!(
            msg.contains("[0, 0, 0, 0, 0]"),
            "vector should shrink to five zeros: {msg}"
        );
    }

    #[test]
    fn panicking_properties_are_caught_and_shrunk() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            forall!(Checker::new("panics").cases(100), |(x in 0i64..100)| {
                assert!(x < 7, "boom at {x}");
            });
        }));
        let msg = panic_message(&*result.unwrap_err());
        assert!(msg.contains("boom"), "panic payload should surface: {msg}");
        assert!(msg.contains("7"), "should shrink to 7: {msg}");
    }

    #[test]
    fn regression_file_parsing_folds_hex() {
        let text = "# comment\ncc 0000000000000001000000000000000200000000000000040000000000000008 # note\ncc ff\nnot a seed line\n";
        let regs = Regressions::parse(text);
        assert_eq!(regs.seeds(), &[0x1 ^ 0x2 ^ 0x4 ^ 0x8, 0xff]);
    }

    #[test]
    fn regression_seeds_replay_before_random_cases() {
        let regs = Regressions::parse("cc 00000000000000aa\ncc 00000000000000bb\n");
        let mut seen = Vec::new();
        let checker = Checker::new("replay").cases(3).regressions(regs);
        let report = checker.check(&(0u64..u64::MAX,), |(v,)| {
            seen.push(v);
            Ok(())
        });
        assert_eq!(report.regressions_replayed, 2);
        assert_eq!(report.cases_run, 3);
        assert_eq!(seen.len(), 5);
        // The two regression draws are pure functions of their seeds.
        let mut expect_a = Rng::seed_from_u64(0xaa);
        let mut expect_b = Rng::seed_from_u64(0xbb);
        assert_eq!(seen[0], (0u64..u64::MAX).generate(&mut expect_a));
        assert_eq!(seen[1], (0u64..u64::MAX).generate(&mut expect_b));
    }

    #[test]
    fn same_property_name_same_cases() {
        let mut a = Vec::new();
        forall!(Checker::new("stable").cases(16), |(x in 0u64..1_000_000)| {
            a.push(x);
        });
        let mut b = Vec::new();
        forall!(Checker::new("stable").cases(16), |(x in 0u64..1_000_000)| {
            b.push(x);
        });
        assert_eq!(a, b);
        assert!(a.windows(2).any(|w| w[0] != w[1]), "cases should vary");
    }

    #[test]
    fn strategy_combinators_generate_and_shrink() {
        let mut rng = Rng::seed_from_u64(1);
        let s = sample(&[10u8, 20, 30]);
        for _ in 0..50 {
            assert!([10, 20, 30].contains(&s.generate(&mut rng)));
        }
        assert_eq!(s.shrink(&30), vec![10]);
        assert!(s.shrink(&10).is_empty());

        let u = one_of(vec![just(1u8).boxed(), just(2u8).boxed()]);
        for _ in 0..50 {
            assert!([1, 2].contains(&u.generate(&mut rng)));
        }

        let m = (0u8..10).prop_map(|v| v * 2);
        for _ in 0..50 {
            let v = m.generate(&mut rng);
            assert!(v % 2 == 0 && v < 20);
        }

        let t = (0u32..10, 5i64..8);
        let shrunk = t.shrink(&(9, 7));
        assert!(shrunk.contains(&(0, 7)), "first component shrinks to lo");
        assert!(shrunk.contains(&(9, 5)), "second component shrinks to lo");
    }
}
