//! `mesa-test`: the workspace's self-contained verification kit.
//!
//! Three modules, zero external dependencies, so `cargo build --offline`
//! and `cargo test --offline` work with an empty registry:
//!
//! - [`rng`]: a deterministic xoshiro256** PRNG (SplitMix64 seeding)
//!   with a `rand`-like API (`gen`, `gen_range`, `gen_bool`, `fill`).
//! - [`prop`]: a property-testing harness — [`Strategy`] generators,
//!   N-case runs via [`Checker`] / [`forall!`], greedy shrinking,
//!   `MESA_TEST_SEED` replay, and proptest-regressions seed files.
//! - [`bench`]: a microbench timer (`bench_fn`) with warmup,
//!   median-of-k, and JSON line output, replacing `criterion`.
//!
//! Determinism contract: every generated value is a pure function of a
//! 64-bit seed. A failing property prints that seed; exporting it as
//! `MESA_TEST_SEED` replays the identical case on any machine.

pub mod bench;
pub mod prop;
pub mod rng;

pub use bench::{bench_fn, bench_fn_cycles, bench_fn_with, BenchResult, BenchSuite};
pub use prop::{Checker, Regressions, Report, Strategy, StrategyExt};
pub use rng::{splitmix64, Rng};
