//! Memory-access optimizations over the LDFG (paper §4.2): store→load
//! forwarding, vectorization of same-base loads, and next-iteration
//! prefetching of induction-addressed loads.
//!
//! All three are *detected* here as flags on node indices; the
//! configuration step turns them into accelerator settings and the engine
//! honors them.

use crate::Ldfg;
use mesa_accel::Operand;
use mesa_isa::OpClass;

/// Optimization flags resolved per node.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemOptPlan {
    /// `load_idx → store_idx` forwarding pairs (same base producer and
    /// offset; the store precedes the load in program order).
    pub forwards: Vec<(u32, u32)>,
    /// `member_load → head_load` vector groups (same base producer,
    /// offsets within one cache line).
    pub vector_groups: Vec<(u32, u32)>,
    /// Loads whose addresses depend only on induction/invariant inputs and
    /// can be prefetched an iteration ahead.
    pub prefetchable: Vec<u32>,
}

impl MemOptPlan {
    /// Total optimization opportunities found.
    #[must_use]
    pub fn len(&self) -> usize {
        self.forwards.len() + self.vector_groups.len() + self.prefetchable.len()
    }

    /// `true` when nothing was found.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Cache line size assumed when grouping vectorizable loads.
const LINE_BYTES: i64 = 64;

/// Analyzes the LDFG and produces the optimization plan.
#[must_use]
pub fn analyze(ldfg: &Ldfg) -> MemOptPlan {
    let mut plan = MemOptPlan::default();
    let induction = ldfg.induction_nodes();

    // Mark nodes whose value is a pure function of induction/invariant
    // inputs ("depend only on induction registers", §4.2).
    let mut induction_pure = vec![false; ldfg.len()];
    for (i, node) in ldfg.nodes.iter().enumerate() {
        if induction.contains(&(i as u32)) {
            induction_pure[i] = true;
            continue;
        }
        if node.instr.class() == OpClass::Load || node.instr.class() == OpClass::Store {
            continue; // memory outputs are data, never address-pure
        }
        let pure = node.src.iter().all(|s| match *s {
            Operand::None | Operand::InitReg(_) => true,
            Operand::Node { idx, .. } => {
                induction.contains(&idx) || induction_pure[idx as usize]
            }
        });
        // A guarded node's value depends on the branch, not only on
        // induction state.
        induction_pure[i] = pure && node.guards.is_empty();
    }

    // Walk loads in program order.
    for (i, node) in ldfg.nodes.iter().enumerate() {
        if node.instr.class() != OpClass::Load {
            continue;
        }
        let base = node.src[0];
        let offset = node.instr.imm;

        // (1) Store→load forwarding: an earlier store with the same base
        // producer and same offset ("same address register and offset").
        let fwd = ldfg.nodes[..i].iter().enumerate().rev().find(|(_, s)| {
            s.instr.class() == OpClass::Store
                && s.src[0] == base
                && s.instr.imm == offset
                && s.instr.op.mem_width() == node.instr.op.mem_width()
                && s.guards.is_empty()
                && node.guards.is_empty()
        });
        if let Some((si, _)) = fwd {
            plan.forwards.push((i as u32, si as u32));
            continue; // a forwarded load needs no port; skip other opts
        }

        // (2) Vectorization: an earlier load with the same base producer
        // and an offset within the same cache line becomes the group head.
        let head = ldfg.nodes[..i].iter().enumerate().find(|(j, h)| {
            h.instr.class() == OpClass::Load
                && h.src[0] == base
                && !matches!(base, Operand::None)
                && (h.instr.imm / LINE_BYTES) == (offset / LINE_BYTES)
                && h.instr.imm != offset
                && !plan.vector_groups.iter().any(|&(m, _)| m == *j as u32)
        });
        if let Some((hi, _)) = head {
            plan.vector_groups.push((i as u32, hi as u32));
            continue;
        }

        // (3) Prefetch: address depends only on induction registers (or is
        // invariant), so the next iteration's address is known a full
        // iteration early.
        let addr_pure = match base {
            Operand::None | Operand::InitReg(_) => true,
            Operand::Node { idx, .. } => {
                induction.contains(&idx) || induction_pure[idx as usize]
            }
        };
        if addr_pure {
            plan.prefetchable.push(i as u32);
        }
    }

    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesa_isa::Asm;
    use mesa_isa::reg::abi::*;

    fn build(f: impl FnOnce(&mut Asm)) -> Ldfg {
        let mut a = Asm::new(0x1000);
        f(&mut a);
        Ldfg::build(&a.finish().unwrap()).unwrap()
    }

    #[test]
    fn forwarding_detected_for_same_base_and_offset() {
        let ldfg = build(|a| {
            a.label("loop");
            a.sw(T1, A0, 8); // node 0
            a.lw(T2, A0, 8); // node 1: forwarded from node 0
            a.addi(T3, T3, 1);
            a.bne(T3, A1, "loop");
        });
        let plan = analyze(&ldfg);
        assert_eq!(plan.forwards, vec![(1, 0)]);
    }

    #[test]
    fn forwarding_requires_matching_offset() {
        let ldfg = build(|a| {
            a.label("loop");
            a.sw(T1, A0, 8);
            a.lw(T2, A0, 12); // different offset → no forward
            a.addi(T3, T3, 1);
            a.bne(T3, A1, "loop");
        });
        let plan = analyze(&ldfg);
        assert!(plan.forwards.is_empty());
    }

    #[test]
    fn forwarding_broken_by_base_redefinition() {
        let ldfg = build(|a| {
            a.label("loop");
            a.sw(T1, A0, 8);
            a.addi(A0, A0, 4); // base changes: rename gives a new producer
            a.lw(T2, A0, 8);
            a.bne(T2, A1, "loop");
        });
        let plan = analyze(&ldfg);
        assert!(plan.forwards.is_empty());
    }

    #[test]
    fn vector_group_same_line() {
        let ldfg = build(|a| {
            a.label("loop");
            a.lw(T0, A0, 0); // head
            a.lw(T1, A0, 4); // member
            a.lw(T2, A0, 8); // member
            a.add(T3, T0, T1);
            a.addi(S0, S0, 1);
            a.bne(S0, A1, "loop");
        });
        let plan = analyze(&ldfg);
        assert_eq!(plan.vector_groups, vec![(1, 0), (2, 0)]);
    }

    #[test]
    fn loads_crossing_lines_not_grouped() {
        let ldfg = build(|a| {
            a.label("loop");
            a.lw(T0, A0, 0);
            a.lw(T1, A0, 64); // next line
            a.add(T3, T0, T1);
            a.addi(S0, S0, 1);
            a.bne(S0, A1, "loop");
        });
        let plan = analyze(&ldfg);
        assert!(plan.vector_groups.is_empty());
    }

    #[test]
    fn induction_addressed_load_is_prefetchable() {
        let ldfg = build(|a| {
            a.label("loop");
            a.lw(T0, A0, 0); // a0 is induction → prefetchable
            a.add(T1, T1, T0);
            a.addi(A0, A0, 4);
            a.bne(A0, A1, "loop");
        });
        let plan = analyze(&ldfg);
        assert_eq!(plan.prefetchable, vec![0]);
    }

    #[test]
    fn data_dependent_address_not_prefetchable() {
        let ldfg = build(|a| {
            a.label("loop");
            a.lw(T0, A0, 0); // index load (induction base: prefetchable)
            a.slli(T1, T0, 2);
            a.add(T2, A2, T1);
            a.lw(T3, T2, 0); // gather: address depends on loaded data
            a.addi(A0, A0, 4);
            a.bne(A0, A1, "loop");
        });
        let plan = analyze(&ldfg);
        assert_eq!(plan.prefetchable, vec![0], "only the index stream prefetches");
    }

    #[test]
    fn derived_induction_address_is_prefetchable() {
        // addr = base + (i << 2): pure function of induction + invariants.
        let ldfg = build(|a| {
            a.label("loop");
            a.slli(T1, S0, 2); // t1 = i*4
            a.add(T2, A2, T1); // t2 = base + i*4
            a.lw(T3, T2, 0); // prefetchable through the chain
            a.addi(S0, S0, 1);
            a.bne(S0, A1, "loop");
        });
        let plan = analyze(&ldfg);
        assert_eq!(plan.prefetchable, vec![2]);
    }
}
