//! The MESA controller — the paper's primary contribution.
//!
//! MESA (Microarchitecture Extensions for Spatial Architecture Generation,
//! ISCA 2023) is a hardware block that watches a CPU for hot loops,
//! dynamically translates their machine code into a latency-weighted
//! dataflow graph, greedily places that graph onto a spatial accelerator,
//! offloads execution transparently, and keeps re-optimizing the placement
//! from latency counters measured on the accelerator itself.
//!
//! The crate is organized around the paper's three tasks (§3):
//!
//! * **T1 Encode** — [`Ldfg::build`]: register renaming to instruction
//!   addresses produces the Logical DFG.
//! * **T2 Optimize** — [`map_instructions`]: the data-driven greedy
//!   mapping algorithm (Algorithm 1) produces the Spatial DFG.
//! * **T3 Decode** — [`build_accel_program`]: the SDFG becomes a
//!   configuration bitstream for the backend.
//!
//! Around these sit the region detector ([`check_region`], conditions
//! C1–C3 of §4.1), the memory optimizations ([`memopt`], §4.2), the
//! hardware cycle model of the `imap` FSM ([`config_latency`], Fig. 8),
//! the iterative optimizer ([`reoptimize`], §1/F3), and the end-to-end
//! [`MesaController`].
//!
//! # Example
//!
//! ```
//! use mesa_core::{run_offload, SystemConfig};
//! use mesa_isa::{ArchState, Asm, Xlen, reg::abi::*};
//! use mesa_mem::{MemConfig, MemorySystem};
//!
//! // sum += a[i] over 4096 elements.
//! let mut a = Asm::new(0x1000);
//! a.label("loop");
//! a.lw(T0, A0, 0);
//! a.add(T1, T1, T0);
//! a.addi(A0, A0, 4);
//! a.bne(A0, A1, "loop");
//! let program = a.finish()?;
//!
//! let mut state = ArchState::new(0x1000, Xlen::Rv32);
//! state.write(A0, 0x10_0000);
//! state.write(A1, 0x10_0000 + 4 * 4096);
//! let mut mem = MemorySystem::new(MemConfig::default(), 2);
//! for i in 0..4096 {
//!     mem.data_mut().store_u32(0x10_0000 + 4 * i, 1);
//! }
//!
//! let report = run_offload(&program, &mut state, &mut mem, &SystemConfig::m128())?;
//! assert!(report.accel_iterations > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod configure;
pub mod controller;
pub mod detect;
pub mod fabric;
pub mod dfg;
pub mod imap;
pub mod mapper;
pub mod memopt;
pub mod optimizer;

pub use configure::{build_accel_program, choose_tiles, ConfigCache, OptFlags};
pub use controller::{
    run_offload, run_offload_faulted, run_offload_faulted_traced, run_offload_traced,
    MesaController, MesaError, OffloadReport, ProgramRunReport,
    SystemConfig,
};
pub use detect::{check_region, estimate_trip_count, DetectConfig, DetectedRegion, RejectReason};
pub use fabric::{
    run_tenants, run_tenants_fleet, run_tenants_traced, Admission, FabricError, FabricManager,
    FleetDriver, FleetRun, FleetStats, HostStats, TenantId, TenantJob, TenantProgress,
    TenantStats,
};
pub use dfg::{BuildError, Ldfg, LdfgNode};
pub use imap::{config_latency, reconfig_latency, trace_map_stages, ConfigLatency, ImapTiming};
pub use mapper::{map_instructions, MapperConfig, Sdfg, WindowMode};
pub use memopt::{analyze as analyze_memopts, MemOptPlan};
pub use optimizer::{apply_counters, reoptimize, ReoptOutcome, ReoptRound, MAX_MEASURED_WEIGHT};
