//! Multi-tenant virtualization of the spatial fabric.
//!
//! The paper's controller owns the whole PE grid for one loop at a time.
//! This module turns the grid into a shared resource: the
//! [`FabricManager`] carves it into disjoint row bands ([`Region`]s,
//! aligned to the FP-pattern period so every band sees identical PE
//! capabilities), admits concurrently prepared episodes as *tenants*, and
//! time-slices the engine between them at iteration-round boundaries.
//!
//! Admission reuses the spirit of the C1–C3 decline machinery (§4.1): a
//! region that does not fit is not rejected outright — it first *shrinks*
//! (fewer spatial tiles, the C2 analog) and failing that it *queues* until
//! a band frees up. Only a loop that cannot fit even a single tile on an
//! empty grid is declined with [`FabricError::NoCapacity`].
//!
//! Every tenant's execution state is a [`PlacementSnapshot`]: the manager
//! can [`checkpoint`](FabricManager::checkpoint) it to a word stream,
//! [`restore`](FabricManager::restore) it, and
//! [`migrate`](FabricManager::migrate) the frozen placement to a different
//! band — the half-ring NoC is translation invariant across aligned bands,
//! so a migrated tenant's timing is bit-identical to one that never moved.

use crate::controller::{
    apply_live_outs, MesaController, MesaError, OffloadReport, PreparedEpisode, SystemConfig,
};
use mesa_accel::{
    AccelConfig, AccelProgram, AccelRunResult, FaultPlan, PlacementSnapshot, ProgramError,
    Region, SessionError, SessionRequest, SessionStatus, SnapshotError, SpatialAccelerator,
    REGION_ROW_ALIGN,
};
use mesa_cpu::OoOCore;
use mesa_isa::ArchState;
use mesa_mem::MemorySystem;
use mesa_trace::{NullTracer, Subsystem, Tracer};
use std::collections::VecDeque;
use std::fmt;

/// Identifies one tenant of the shared fabric (dense, starting at 0).
pub type TenantId = u32;

/// How an admission request was resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The tenant got a band sized for its full tile count.
    Admitted(Region),
    /// The C2 analog: the full tiling did not fit next to the existing
    /// tenants, so the program was re-tiled down to the largest band
    /// available and admitted there.
    Shrunk {
        /// The band the shrunk program runs in.
        region: Region,
        /// Tiles the program asked for.
        tiles_before: usize,
        /// Tiles it runs with.
        tiles_after: usize,
    },
    /// No band is free right now; the tenant waits in FIFO order and is
    /// placed when a running tenant completes.
    Queued,
}

/// Progress of one scheduling slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantProgress {
    /// Frozen at a round boundary; the value is the session clock so far.
    Paused(u64),
    /// The loop exited (or exhausted its budget); total session cycles.
    Completed(u64),
    /// Still waiting in the admission queue.
    Queued,
}

/// Failure modes of the fabric manager.
#[derive(Debug, Clone, PartialEq)]
pub enum FabricError {
    /// The tenant id was never issued.
    UnknownTenant(TenantId),
    /// Even a single tile does not fit on an empty grid.
    NoCapacity {
        /// Rows the smallest viable region needs.
        rows_needed: usize,
        /// Rows the grid has.
        rows_total: usize,
    },
    /// The requested migration target overlaps another tenant's band.
    RegionBusy(Region),
    /// The requested region does not start on the alignment boundary.
    RegionMisaligned(Region),
    /// The tenant is still queued and has no execution state to act on.
    StillQueued(TenantId),
    /// The tenant is not frozen, so there is no snapshot to checkpoint,
    /// restore over, or migrate.
    NotPaused(TenantId),
    /// A snapshot failed to decode or did not match the tenant's binding.
    Snapshot(SnapshotError),
    /// The tenant's program failed validation against its region.
    Session(ProgramError),
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::UnknownTenant(id) => write!(f, "unknown tenant {id}"),
            FabricError::NoCapacity { rows_needed, rows_total } => {
                write!(f, "no capacity: {rows_needed} rows needed, grid has {rows_total}")
            }
            FabricError::RegionBusy(r) => write!(f, "region {r} overlaps another tenant"),
            FabricError::RegionMisaligned(r) => write!(
                f,
                "region {r} not aligned to {REGION_ROW_ALIGN}-row boundary"
            ),
            FabricError::StillQueued(id) => write!(f, "tenant {id} is still queued"),
            FabricError::NotPaused(id) => write!(f, "tenant {id} is not paused"),
            FabricError::Snapshot(e) => write!(f, "snapshot rejected: {e}"),
            FabricError::Session(e) => write!(f, "session rejected: {e}"),
        }
    }
}

impl std::error::Error for FabricError {}

impl From<SnapshotError> for FabricError {
    fn from(e: SnapshotError) -> Self {
        FabricError::Snapshot(e)
    }
}

impl From<SessionError> for FabricError {
    fn from(e: SessionError) -> Self {
        match e {
            SessionError::Program(p) => FabricError::Session(p),
            SessionError::Snapshot(s) => FabricError::Snapshot(s),
        }
    }
}

/// One admitted (or queued) loop on the shared fabric.
#[derive(Debug)]
struct Tenant {
    /// Band currently owned (`None` while queued or after completion).
    region: Option<Region>,
    /// Band the tenant last ran in, kept for reporting after completion.
    last_region: Option<Region>,
    program: AccelProgram,
    entry: ArchState,
    faults: FaultPlan,
    max_iterations: u64,
    /// Present exactly while the tenant is frozen mid-episode.
    snapshot: Option<PlacementSnapshot>,
    /// Present once the tenant's loop has finished.
    result: Option<AccelRunResult>,
    migrations: u32,
}

/// Carves one spatial accelerator's grid into per-tenant row bands and
/// time-slices the engine between them. See the module docs.
#[derive(Debug)]
pub struct FabricManager {
    accel: SpatialAccelerator,
    cfg: AccelConfig,
    tenants: Vec<Tenant>,
    /// Tenants waiting for a band, in admission order (head is placed
    /// first — later arrivals never jump the queue).
    queue: VecDeque<TenantId>,
}

impl FabricManager {
    /// A manager for one grid of the given configuration.
    #[must_use]
    pub fn new(cfg: AccelConfig) -> Self {
        FabricManager {
            accel: SpatialAccelerator::new(cfg),
            cfg,
            tenants: Vec::new(),
            queue: VecDeque::new(),
        }
    }

    /// Rows an instance of `prog` with `tiles` tiles occupies, rounded up
    /// to the band alignment.
    fn rows_for(prog: &AccelProgram, tiles: usize) -> usize {
        (tiles.max(1) * prog.rows_per_tile()).next_multiple_of(REGION_ROW_ALIGN)
    }

    /// Lowest aligned start row of a free band of `rows` rows, skipping
    /// `exclude`'s own band (for migration) and, optionally, a forbidden
    /// start row (to force migration to actually move).
    fn free_band(
        &self,
        rows: usize,
        exclude: Option<TenantId>,
        not_at: Option<usize>,
    ) -> Option<usize> {
        let total = self.cfg.grid().rows;
        let cols = self.cfg.grid().cols;
        let mut first = 0;
        while first + rows <= total {
            let cand = Region::new(first, rows, cols);
            let busy = self.tenants.iter().enumerate().any(|(i, t)| {
                exclude != Some(i as TenantId)
                    && t.region.is_some_and(|r| r.overlaps(&cand))
            });
            if !busy && not_at != Some(first) {
                return Some(first);
            }
            first += REGION_ROW_ALIGN;
        }
        None
    }

    /// Largest free aligned band, as `(first_row, rows)`; ties go to the
    /// lowest start row.
    fn largest_free_band(&self) -> (usize, usize) {
        let total = self.cfg.grid().rows;
        let mut row_busy = vec![false; total];
        for t in &self.tenants {
            if let Some(r) = t.region {
                for row in row_busy.iter_mut().take(r.end_row().min(total)).skip(r.first_row) {
                    *row = true;
                }
            }
        }
        let mut best = (0, 0);
        let mut first = 0;
        while first + REGION_ROW_ALIGN <= total {
            let mut rows = 0;
            while first + rows + REGION_ROW_ALIGN <= total
                && row_busy[first + rows..first + rows + REGION_ROW_ALIGN]
                    .iter()
                    .all(|&b| !b)
            {
                rows += REGION_ROW_ALIGN;
            }
            if rows > best.1 {
                best = (first, rows);
            }
            first += REGION_ROW_ALIGN;
        }
        best
    }

    /// Admits a prepared configuration as a new tenant.
    ///
    /// `entry` is the architectural state at loop entry; `max_iterations`
    /// bounds the tenant's cumulative iteration count. Returns the id and
    /// how the placement was resolved (full band, shrunk band, or queued).
    ///
    /// # Errors
    /// [`FabricError::NoCapacity`] when even one tile exceeds the grid.
    pub fn admit(
        &mut self,
        mut program: AccelProgram,
        entry: ArchState,
        faults: FaultPlan,
        max_iterations: u64,
    ) -> Result<(TenantId, Admission), FabricError> {
        let rows_total = self.cfg.grid().rows;
        let min_rows = Self::rows_for(&program, 1);
        if min_rows > rows_total {
            return Err(FabricError::NoCapacity { rows_needed: min_rows, rows_total });
        }
        let id = self.tenants.len() as TenantId;
        let cols = self.cfg.grid().cols;
        let want = Self::rows_for(&program, program.tiles);
        let admission = if let Some(first) = self.free_band(want, None, None) {
            Admission::Admitted(Region::new(first, want, cols))
        } else {
            // C2 analog: the full tiling does not fit beside the current
            // tenants — re-tile down to the largest free band.
            let (first, avail) = self.largest_free_band();
            let mut tiles_fit = (avail / program.rows_per_tile().max(1)).min(program.tiles);
            while tiles_fit > 1 && Self::rows_for(&program, tiles_fit) > avail {
                tiles_fit -= 1;
            }
            if program.tiles > 1 && tiles_fit >= 1 && Self::rows_for(&program, tiles_fit) <= avail
            {
                let tiles_before = program.tiles;
                program.tiles = tiles_fit;
                Admission::Shrunk {
                    region: Region::new(first, Self::rows_for(&program, tiles_fit), cols),
                    tiles_before,
                    tiles_after: tiles_fit,
                }
            } else {
                Admission::Queued
            }
        };
        let region = match admission {
            Admission::Admitted(r) | Admission::Shrunk { region: r, .. } => Some(r),
            Admission::Queued => None,
        };
        self.tenants.push(Tenant {
            region,
            last_region: region,
            program,
            entry,
            faults,
            max_iterations,
            snapshot: None,
            result: None,
            migrations: 0,
        });
        if region.is_none() {
            self.queue.push_back(id);
        }
        Ok((id, admission))
    }

    /// Places queued tenants (head of line first) into bands freed by a
    /// completion. Later arrivals never jump an unplaceable head, so
    /// admission order is a total order on placement.
    fn promote(&mut self) {
        while let Some(&id) = self.queue.front() {
            let Some(t) = self.tenants.get(id as usize) else {
                self.queue.pop_front();
                continue;
            };
            let want = Self::rows_for(&t.program, t.program.tiles);
            let Some(first) = self.free_band(want, None, None) else { break };
            let region = Region::new(first, want, self.cfg.grid().cols);
            if let Some(t) = self.tenants.get_mut(id as usize) {
                t.region = Some(region);
                t.last_region = Some(region);
            }
            self.queue.pop_front();
        }
    }

    /// Runs one scheduling slice of tenant `id`: at most `quantum` more
    /// session cycles, frozen at the next round boundary past that.
    /// `quantum == u64::MAX` runs the tenant to completion. Completing a
    /// tenant frees its band and promotes the queue.
    ///
    /// Idempotent on finished tenants, and a no-op on queued ones.
    ///
    /// # Errors
    /// [`FabricError::UnknownTenant`], or any engine/session failure.
    #[allow(clippy::too_many_arguments)]
    pub fn advance(
        &mut self,
        id: TenantId,
        mem: &mut MemorySystem,
        requester: usize,
        quantum: u64,
        tracer: &mut dyn Tracer,
        cycle_base: u64,
    ) -> Result<TenantProgress, FabricError> {
        let t = self
            .tenants
            .get_mut(id as usize)
            .ok_or(FabricError::UnknownTenant(id))?;
        if let Some(r) = &t.result {
            return Ok(TenantProgress::Completed(r.cycles));
        }
        let Some(region) = t.region else { return Ok(TenantProgress::Queued) };
        // A zero quantum could freeze at the current clock without running
        // a round; one cycle forces at least one round of progress.
        let quantum = quantum.max(1);
        let pause_at_cycle = if quantum == u64::MAX {
            None
        } else {
            let base = t.snapshot.as_ref().map_or(0, PlacementSnapshot::cycles);
            Some(base.saturating_add(quantum))
        };
        let req = SessionRequest {
            requester,
            max_iterations: t.max_iterations,
            faults: &t.faults,
            region,
            pause_at_cycle,
        };
        let status = self
            .accel
            .run_session(
                &t.program,
                &t.entry,
                mem,
                &req,
                t.snapshot.as_ref(),
                tracer,
                cycle_base,
            )
            .map_err(FabricError::from)?;
        let progress = match status {
            SessionStatus::Completed(r) => {
                let cycles = r.cycles;
                t.result = Some(r);
                t.snapshot = None;
                t.region = None;
                TenantProgress::Completed(cycles)
            }
            SessionStatus::Paused(s) => {
                let cycles = s.cycles();
                t.snapshot = Some(*s);
                TenantProgress::Paused(cycles)
            }
        };
        if matches!(progress, TenantProgress::Completed(_)) {
            self.promote();
        }
        Ok(progress)
    }

    /// Serializes tenant `id`'s frozen execution state to a word stream
    /// (see [`PlacementSnapshot::to_words`] for the format).
    ///
    /// # Errors
    /// [`FabricError::NotPaused`] unless the tenant is frozen.
    pub fn checkpoint(&self, id: TenantId) -> Result<Vec<u64>, FabricError> {
        let t = self.tenants.get(id as usize).ok_or(FabricError::UnknownTenant(id))?;
        t.snapshot
            .as_ref()
            .map(PlacementSnapshot::to_words)
            .ok_or(FabricError::NotPaused(id))
    }

    /// Decodes `words` and installs the snapshot as tenant `id`'s frozen
    /// state, after verifying it binds to the tenant's program, band
    /// height, and fault plan. A corrupted or truncated stream declines
    /// with a typed error and leaves the tenant untouched.
    ///
    /// # Errors
    /// [`FabricError::Snapshot`] on decode/binding failures;
    /// [`FabricError::StillQueued`] when the tenant has no band yet.
    pub fn restore(&mut self, id: TenantId, words: &[u64]) -> Result<(), FabricError> {
        let t = self
            .tenants
            .get_mut(id as usize)
            .ok_or(FabricError::UnknownTenant(id))?;
        let region = t.region.ok_or(FabricError::StillQueued(id))?;
        let snap = PlacementSnapshot::from_words(words)?;
        snap.check_compatible(&t.program, region, &t.faults)?;
        t.snapshot = Some(snap);
        t.result = None;
        Ok(())
    }

    /// Relocates the frozen tenant `id` to the band starting at
    /// `first_row` (same height). The next [`advance`](Self::advance)
    /// resumes there; aligned bands are translation-invariant, so the
    /// relocated run's timing is identical to one that never moved.
    ///
    /// # Errors
    /// [`FabricError::NotPaused`] unless frozen;
    /// [`FabricError::RegionMisaligned`] / [`FabricError::RegionBusy`] /
    /// [`FabricError::NoCapacity`] for bad targets.
    pub fn migrate(
        &mut self,
        id: TenantId,
        first_row: usize,
        tracer: &mut dyn Tracer,
    ) -> Result<Region, FabricError> {
        let idx = id as usize;
        let (old, cycles) = {
            let t = self.tenants.get(idx).ok_or(FabricError::UnknownTenant(id))?;
            let old = t.region.ok_or(FabricError::StillQueued(id))?;
            let snap = t.snapshot.as_ref().ok_or(FabricError::NotPaused(id))?;
            (old, snap.cycles())
        };
        let target = Region::new(first_row, old.rows, old.cols);
        if !target.is_aligned() {
            return Err(FabricError::RegionMisaligned(target));
        }
        if !target.fits(self.cfg.grid().rows, self.cfg.grid().cols) {
            return Err(FabricError::NoCapacity {
                rows_needed: target.end_row(),
                rows_total: self.cfg.grid().rows,
            });
        }
        let busy = self.tenants.iter().enumerate().any(|(i, t)| {
            i != idx && t.region.is_some_and(|r| r.overlaps(&target))
        });
        if busy {
            return Err(FabricError::RegionBusy(target));
        }
        if let Some(t) = self.tenants.get_mut(idx) {
            t.region = Some(target);
            t.last_region = Some(target);
            t.migrations += 1;
        }
        if tracer.enabled() {
            tracer.instant(
                Subsystem::Controller,
                "migrate",
                &format!("tenant {id}: {old} -> {target}"),
                cycles,
            );
        }
        Ok(target)
    }

    /// Lowest free aligned start row tenant `id` could migrate to, other
    /// than where it already is (`None` when the grid is too full).
    #[must_use]
    pub fn migration_target(&self, id: TenantId) -> Option<usize> {
        let t = self.tenants.get(id as usize)?;
        let region = t.region?;
        self.free_band(region.rows, Some(id), Some(region.first_row))
    }

    /// The band tenant `id` currently owns (`None` while queued or after
    /// completion).
    #[must_use]
    pub fn region(&self, id: TenantId) -> Option<Region> {
        self.tenants.get(id as usize).and_then(|t| t.region)
    }

    /// The band tenant `id` last ran in (survives completion).
    #[must_use]
    pub fn last_region(&self, id: TenantId) -> Option<Region> {
        self.tenants.get(id as usize).and_then(|t| t.last_region)
    }

    /// Times tenant `id` was migrated.
    #[must_use]
    pub fn migrations(&self, id: TenantId) -> u32 {
        self.tenants.get(id as usize).map_or(0, |t| t.migrations)
    }

    /// The tenant's (possibly shrunk) configuration.
    #[must_use]
    pub fn program(&self, id: TenantId) -> Option<&AccelProgram> {
        self.tenants.get(id as usize).map(|t| &t.program)
    }

    /// The finished tenant's result, if it has completed.
    #[must_use]
    pub fn result(&self, id: TenantId) -> Option<&AccelRunResult> {
        self.tenants.get(id as usize).and_then(|t| t.result.as_ref())
    }

    /// `true` while tenant `id` waits for a band.
    #[must_use]
    pub fn is_queued(&self, id: TenantId) -> bool {
        self.tenants.get(id as usize).is_some_and(|t| t.region.is_none() && t.result.is_none())
    }
}

/// One loop's worth of work for [`run_tenants`]: its program, the
/// architectural state to start monitoring from, and a private memory
/// system (tenants are address-space isolated; nothing is shared).
#[derive(Debug)]
pub struct TenantJob {
    /// The program containing the hot loop.
    pub program: mesa_isa::Program,
    /// Architectural entry state; left at the post-loop state on success.
    pub state: ArchState,
    /// The tenant's private memory system (needs two requester ports).
    pub mem: MemorySystem,
    /// Fault plan armed for this tenant's episode (default benign).
    pub faults: FaultPlan,
}

impl TenantJob {
    /// A job with no faults armed.
    #[must_use]
    pub fn new(program: mesa_isa::Program, state: ArchState, mem: MemorySystem) -> Self {
        TenantJob { program, state, mem, faults: FaultPlan::none() }
    }
}

/// Bookkeeping for one job while it runs on the shared fabric.
struct Slot {
    id: TenantId,
    ep: PreparedEpisode,
    /// Episode-relative clock for this tenant's trace spans.
    now: u64,
    /// Session cycles already accounted into `now`.
    counted: u64,
    slices: u64,
}

/// Runs `jobs` as concurrent tenants of one shared fabric.
///
/// Each job is first prepared solo (F1 monitoring and F2 configuration on
/// its own CPU and memory), then admitted to a [`FabricManager`] which
/// round-robins `quantum`-cycle slices over the admitted tenants in
/// admission order. When `migrate_every > 0`, every such-manieth slice of
/// a tenant checkpoints it and relocates it to the lowest other free band
/// — exercising migration invisibility on every run.
///
/// Tenant episodes skip F3 re-optimization (the measured-latency feedback
/// loop assumes grid ownership); reports have `reconfigurations == 0` and
/// carry the tenant id, final band, and migration count.
///
/// Returns one outcome per job, in job order: declines (no loop, C1–C3
/// rejection, truncated config, admission failure) are reported as typed
/// errors, exactly like solo offloads.
pub fn run_tenants(
    system: &SystemConfig,
    jobs: &mut [TenantJob],
    quantum: u64,
    migrate_every: u64,
) -> Vec<Result<OffloadReport, MesaError>> {
    run_tenants_traced(system, jobs, quantum, migrate_every, &mut NullTracer)
}

/// [`run_tenants`] with tracing: per-tenant spans ride each tenant's own
/// episode-relative clock, and migrations surface as `migrate` instants.
pub fn run_tenants_traced(
    system: &SystemConfig,
    jobs: &mut [TenantJob],
    quantum: u64,
    migrate_every: u64,
    tracer: &mut dyn Tracer,
) -> Vec<Result<OffloadReport, MesaError>> {
    const ACCEL: usize = 1;
    let mut manager = FabricManager::new(system.accel);
    let mut outcomes: Vec<Option<Result<OffloadReport, MesaError>>> =
        jobs.iter().map(|_| None).collect();
    let mut slots: Vec<Option<Slot>> = Vec::with_capacity(jobs.len());

    // ---- phase 1: prepare every job solo, admit the survivors ----
    for (i, job) in jobs.iter_mut().enumerate() {
        // A fresh controller per tenant: config/trace caches are keyed by
        // PC range, and unrelated tenants may reuse the same addresses.
        let mut ctl = MesaController::new(system.clone());
        if !job.faults.is_benign() {
            ctl.set_fault_plan(Some(job.faults.clone()));
        }
        let mut cpu = OoOCore::new(system.core);
        match ctl.prepare_episode(&job.program, &mut job.state, &mut job.mem, &mut cpu, tracer)
        {
            Ok(ep) => {
                match manager.admit(
                    ep.accel_prog.clone(),
                    job.state.clone(),
                    ep.fault_plan.clone(),
                    system.max_accel_iterations,
                ) {
                    Ok((id, _admission)) => {
                        let now = ep.now;
                        tracer.span_begin(Subsystem::Controller, "offload", now);
                        slots.push(Some(Slot { id, ep, now, counted: 0, slices: 0 }));
                    }
                    Err(e) => {
                        outcomes[i] = Some(Err(e.into()));
                        slots.push(None);
                    }
                }
            }
            Err(e) => {
                outcomes[i] = Some(Err(e));
                slots.push(None);
            }
        }
    }

    // ---- phase 2: round-robin quantum slices in admission order ----
    let mut remaining = slots.iter().filter(|s| s.is_some()).count();
    while remaining > 0 {
        let mut advanced_any = false;
        for i in 0..slots.len() {
            if outcomes[i].is_some() {
                continue;
            }
            let Some(slot) = slots[i].as_mut() else { continue };
            let progress =
                manager.advance(slot.id, &mut jobs[i].mem, ACCEL, quantum, tracer, slot.now);
            match progress {
                Ok(TenantProgress::Queued) => {}
                Ok(TenantProgress::Paused(total)) => {
                    advanced_any = true;
                    slot.now += total - slot.counted;
                    slot.counted = total;
                    slot.slices += 1;
                    if migrate_every > 0 && slot.slices % migrate_every == 0 {
                        if let Some(row) = manager.migration_target(slot.id) {
                            // A full grid is not an error — the tenant
                            // simply stays where it is this round.
                            let _ = manager.migrate(slot.id, row, tracer);
                        }
                    }
                }
                Ok(TenantProgress::Completed(total)) => {
                    advanced_any = true;
                    slot.now += total - slot.counted;
                    slot.counted = total;
                    let report = finish_tenant(&manager, slot, &mut jobs[i].state, tracer);
                    outcomes[i] = Some(report);
                    remaining -= 1;
                }
                Err(e) => {
                    tracer.span_end(Subsystem::Controller, "offload", slot.now);
                    outcomes[i] = Some(Err(e.into()));
                    remaining -= 1;
                }
            }
        }
        if !advanced_any && remaining > 0 {
            // Every live tenant is queued and nothing is running to free a
            // band — impossible unless admission raced a failure path.
            // Decline the stragglers rather than spinning forever.
            for i in 0..slots.len() {
                if outcomes[i].is_none() {
                    if let Some(slot) = &slots[i] {
                        outcomes[i] =
                            Some(Err(FabricError::StillQueued(slot.id).into()));
                        remaining -= 1;
                    }
                }
            }
        }
    }

    outcomes
        .into_iter()
        .map(|o| o.unwrap_or(Err(MesaError::NoLoopDetected)))
        .collect()
}

/// Assembles the per-tenant [`OffloadReport`] once its session completes.
fn finish_tenant(
    manager: &FabricManager,
    slot: &Slot,
    state: &mut ArchState,
    tracer: &mut dyn Tracer,
) -> Result<OffloadReport, MesaError> {
    let ep = &slot.ep;
    let (Some(prog), Some(r)) = (manager.program(slot.id), manager.result(slot.id)) else {
        return Err(FabricError::UnknownTenant(slot.id).into());
    };
    let induction = ep.ldfg.induction_nodes();
    apply_live_outs(state, prog, &r.final_regs, &induction, &ep.ldfg, r.iterations);
    state.pc = ep.end_pc;
    let mut fault_log = ep.fault_log;
    fault_log.merge(&r.faults);
    tracer.span_end(Subsystem::Controller, "offload", slot.now);
    Ok(OffloadReport {
        region: (ep.start_pc, ep.end_pc),
        warmup_cycles: ep.warmup_cycles,
        warmup_instrs: ep.warmup_instrs,
        config: ep.config,
        config_phase_cpu_cycles: ep.config_phase_cpu_cycles,
        cpu_iterations_during_config: ep.cpu_iterations_during_config,
        reconfig_cycles: 0,
        reconfigurations: 0,
        accel_cycles: r.cycles,
        accel_iterations: r.iterations,
        tiles: prog.tiles,
        pipelined: prog.pipelined,
        unmapped_nodes: ep.unmapped_nodes,
        expected_iterations: ep.expected_iterations,
        initial_estimate: ep.initial_estimate,
        from_cache: ep.from_cache,
        cpu_phase_traffic: ep.cpu_phase_traffic,
        cpu_pipeline: ep.cpu_pipeline,
        placement: prog.nodes.iter().map(|n| n.coord).collect(),
        reopt_rounds: Vec::new(),
        activity: r.activity,
        counters: r.counters.clone(),
        faults: fault_log,
        tenant: slot.id,
        fabric_region: manager.last_region(slot.id),
        migrations: manager.migrations(slot.id),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesa_isa::reg::abi::*;
    use mesa_isa::{Asm, ArchState, Program, Xlen};
    use mesa_mem::MemConfig;

    const BASE: u64 = 0x10_0000;
    const OUT: u64 = 0x20_0000;

    /// sum += a[i] over n elements (serial: one tile, no shrink noise).
    fn sum_job(n: u64) -> TenantJob {
        let mut a = Asm::new(0x1000);
        a.label("loop");
        a.lw(T0, A0, 0);
        a.add(T1, T1, T0);
        a.addi(A0, A0, 4);
        a.bne(A0, A1, "loop");
        a.sw(T1, A2, 0);
        a.li(A7, 93);
        a.ecall();
        let p: Program = a.finish().unwrap();
        let mut st = ArchState::new(0x1000, Xlen::Rv32);
        st.write(A0, BASE);
        st.write(A1, BASE + 4 * n);
        st.write(A2, OUT);
        let mut mem = MemorySystem::new(MemConfig::default(), 2);
        for i in 0..n {
            mem.data_mut().store_u32(BASE + 4 * i, (i % 100) as u32 + 1);
        }
        TenantJob::new(p, st, mem)
    }

    fn expected_sum(n: u64) -> u64 {
        (0..n).map(|i| u64::from((i % 100) as u32 + 1)).sum::<u64>() & 0xFFFF_FFFF
    }

    #[test]
    fn two_tenants_share_the_grid_on_disjoint_aligned_bands() {
        let system = SystemConfig::m128();
        let mut jobs = vec![sum_job(2000), sum_job(3000)];
        let reports = run_tenants(&system, &mut jobs, 200, 0);
        assert_eq!(reports.len(), 2);
        let a = reports[0].as_ref().unwrap();
        let b = reports[1].as_ref().unwrap();
        let (ra, rb) = (a.fabric_region.unwrap(), b.fabric_region.unwrap());
        assert!(ra.is_aligned() && rb.is_aligned());
        assert!(!ra.overlaps(&rb), "bands must be disjoint: {ra} vs {rb}");
        assert_eq!(a.tenant, 0);
        assert_eq!(b.tenant, 1);
        assert!(a.accel_iterations > 0 && b.accel_iterations > 0);
        // Both tenants' architectural results are correct.
        assert_eq!(jobs[0].state.read(T1) as u32 as u64, expected_sum(2000));
        assert_eq!(jobs[1].state.read(T1) as u32 as u64, expected_sum(3000));
        assert_eq!(jobs[0].state.pc, a.region.1);
    }

    #[test]
    fn migration_mid_episode_is_architecturally_invisible() {
        let system = SystemConfig::m128();
        let mut solo = vec![sum_job(2500)];
        let solo_reports = run_tenants(&system, &mut solo, 150, 0);
        let solo_report = solo_reports[0].as_ref().unwrap();

        let mut moved = vec![sum_job(2500)];
        let moved_reports = run_tenants(&system, &mut moved, 150, 2);
        let moved_report = moved_reports[0].as_ref().unwrap();

        assert!(moved_report.migrations > 0, "migrate_every=2 must actually migrate");
        assert_eq!(solo_report.accel_iterations, moved_report.accel_iterations);
        assert_eq!(solo_report.accel_cycles, moved_report.accel_cycles);
        assert_eq!(solo[0].state.read(T1), moved[0].state.read(T1));
        assert_eq!(solo[0].state.read(A0), moved[0].state.read(A0));
        assert_eq!(solo[0].state.pc, moved[0].state.pc);
        assert_eq!(solo[0].state.read(T1) as u32 as u64, expected_sum(2500));
    }

    #[test]
    fn checkpoint_roundtrips_and_corruption_is_declined() {
        let system = SystemConfig::m128();
        let mut job = sum_job(4000);
        let mut ctl = MesaController::new(system.clone());
        let mut cpu = OoOCore::new(system.core);
        let ep = ctl
            .prepare_episode(
                &job.program,
                &mut job.state,
                &mut job.mem,
                &mut cpu,
                &mut NullTracer,
            )
            .unwrap();
        let mut manager = FabricManager::new(system.accel);
        let (id, admission) = manager
            .admit(ep.accel_prog.clone(), job.state.clone(), FaultPlan::none(), u64::MAX)
            .unwrap();
        assert!(matches!(admission, Admission::Admitted(_)));

        // Not paused yet: nothing to checkpoint.
        assert_eq!(manager.checkpoint(id), Err(FabricError::NotPaused(id)));

        let p = manager
            .advance(id, &mut job.mem, 1, 100, &mut NullTracer, 0)
            .unwrap();
        assert!(matches!(p, TenantProgress::Paused(_)), "quantum must freeze: {p:?}");

        let words = manager.checkpoint(id).unwrap();
        // Roundtrip restores cleanly.
        manager.restore(id, &words).unwrap();
        // Truncation and corruption decline with typed errors.
        assert!(matches!(
            manager.restore(id, &words[..words.len() - 3]),
            Err(FabricError::Snapshot(_))
        ));
        let mut bad = words.clone();
        bad[2] ^= 1;
        assert!(matches!(manager.restore(id, &bad), Err(FabricError::Snapshot(_))));

        // Migrating the frozen tenant to a busy/misaligned target fails.
        let region = manager.region(id).unwrap();
        assert!(matches!(
            manager.migrate(id, region.first_row + 1, &mut NullTracer),
            Err(FabricError::RegionMisaligned(_))
        ));
        // And to a proper free band succeeds, then completes correctly.
        let target = manager.migration_target(id).unwrap();
        let new = manager.migrate(id, target, &mut NullTracer).unwrap();
        assert_ne!(new.first_row, region.first_row);
        let p = manager
            .advance(id, &mut job.mem, 1, u64::MAX, &mut NullTracer, 0)
            .unwrap();
        assert!(matches!(p, TenantProgress::Completed(_)));
        assert_eq!(manager.migrations(id), 1);
    }
}
