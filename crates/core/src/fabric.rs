//! Multi-tenant virtualization of the spatial fabric.
//!
//! The paper's controller owns the whole PE grid for one loop at a time.
//! This module turns the grid into a shared resource: the
//! [`FabricManager`] carves it into disjoint row bands ([`Region`]s,
//! aligned to the FP-pattern period so every band sees identical PE
//! capabilities), admits concurrently prepared episodes as *tenants*, and
//! time-slices the engine between them at iteration-round boundaries.
//!
//! Admission reuses the spirit of the C1–C3 decline machinery (§4.1): a
//! region that does not fit is not rejected outright — it first *shrinks*
//! (fewer spatial tiles, the C2 analog) and failing that it *queues* until
//! a band frees up. Only a loop that cannot fit even a single tile on an
//! empty grid is declined with [`FabricError::NoCapacity`].
//!
//! Every tenant's execution state is a [`PlacementSnapshot`]: the manager
//! can [`checkpoint`](FabricManager::checkpoint) it to a word stream,
//! [`restore`](FabricManager::restore) it, and
//! [`migrate`](FabricManager::migrate) the frozen placement to a different
//! band — the half-ring NoC is translation invariant across aligned bands,
//! so a migrated tenant's timing is bit-identical to one that never moved.

use crate::controller::{
    apply_live_outs, MesaController, MesaError, OffloadReport, PreparedEpisode, SystemConfig,
};
use mesa_accel::{
    AccelConfig, AccelProgram, AccelRunResult, FaultPlan, PlacementSnapshot, ProgramError,
    Region, SessionError, SessionRequest, SessionStatus, SnapshotError, SpatialAccelerator,
    REGION_ROW_ALIGN,
};
use mesa_cpu::OoOCore;
use mesa_isa::ArchState;
use mesa_mem::MemorySystem;
use mesa_trace::host::{self, HostClock};
use mesa_trace::{
    FlightRecorder, Histogram, MetricsRegistry, NullTracer, Subsystem, Tracer,
};
use std::collections::VecDeque;
use std::fmt;
use std::fmt::Write as _;

/// Identifies one tenant of the shared fabric (dense, starting at 0).
pub type TenantId = u32;

/// How an admission request was resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The tenant got a band sized for its full tile count.
    Admitted(Region),
    /// The C2 analog: the full tiling did not fit next to the existing
    /// tenants, so the program was re-tiled down to the largest band
    /// available and admitted there.
    Shrunk {
        /// The band the shrunk program runs in.
        region: Region,
        /// Tiles the program asked for.
        tiles_before: usize,
        /// Tiles it runs with.
        tiles_after: usize,
    },
    /// No band is free right now; the tenant waits in FIFO order and is
    /// placed when a running tenant completes.
    Queued,
}

/// Progress of one scheduling slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantProgress {
    /// Frozen at a round boundary; the value is the session clock so far.
    Paused(u64),
    /// The loop exited (or exhausted its budget); total session cycles.
    Completed(u64),
    /// Still waiting in the admission queue.
    Queued,
}

/// Failure modes of the fabric manager.
#[derive(Debug, Clone, PartialEq)]
pub enum FabricError {
    /// The tenant id was never issued.
    UnknownTenant(TenantId),
    /// Even a single tile does not fit on an empty grid.
    NoCapacity {
        /// Rows the smallest viable region needs.
        rows_needed: usize,
        /// Rows the grid has.
        rows_total: usize,
    },
    /// The requested migration target overlaps another tenant's band.
    RegionBusy(Region),
    /// The requested region does not start on the alignment boundary.
    RegionMisaligned(Region),
    /// The tenant is still queued and has no execution state to act on.
    StillQueued(TenantId),
    /// The tenant is not frozen, so there is no snapshot to checkpoint,
    /// restore over, or migrate.
    NotPaused(TenantId),
    /// A snapshot failed to decode or did not match the tenant's binding.
    Snapshot(SnapshotError),
    /// The tenant's program failed validation against its region.
    Session(ProgramError),
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::UnknownTenant(id) => write!(f, "unknown tenant {id}"),
            FabricError::NoCapacity { rows_needed, rows_total } => {
                write!(f, "no capacity: {rows_needed} rows needed, grid has {rows_total}")
            }
            FabricError::RegionBusy(r) => write!(f, "region {r} overlaps another tenant"),
            FabricError::RegionMisaligned(r) => write!(
                f,
                "region {r} not aligned to {REGION_ROW_ALIGN}-row boundary"
            ),
            FabricError::StillQueued(id) => write!(f, "tenant {id} is still queued"),
            FabricError::NotPaused(id) => write!(f, "tenant {id} is not paused"),
            FabricError::Snapshot(e) => write!(f, "snapshot rejected: {e}"),
            FabricError::Session(e) => write!(f, "session rejected: {e}"),
        }
    }
}

impl std::error::Error for FabricError {}

impl From<SnapshotError> for FabricError {
    fn from(e: SnapshotError) -> Self {
        FabricError::Snapshot(e)
    }
}

impl From<SessionError> for FabricError {
    fn from(e: SessionError) -> Self {
        match e {
            SessionError::Program(p) => FabricError::Session(p),
            SessionError::Snapshot(s) => FabricError::Snapshot(s),
        }
    }
}

/// Fleet-wide telemetry the manager keeps as a side effect of normal
/// operation: labeled admission counters, latency histograms, per-band
/// occupancy accounting, and the always-on flight recorder.
///
/// The *fleet clock* (`elapsed`) is the sum of every scheduled slice's
/// session cycles. For each slice of length `L` run by a tenant owning a
/// set of band slots, those slots accrue `L` busy cycles and every other
/// slot accrues `L` idle cycles — so `Σ busy + Σ idle == elapsed × bands`
/// holds *exactly* at all times (the conservation invariant `tracecheck
/// fleetstats` verifies).
#[derive(Debug)]
struct FleetTelemetry {
    metrics: MetricsRegistry,
    recorder: FlightRecorder,
    /// Fleet clock: total session cycles scheduled across all tenants.
    elapsed: u64,
    /// Busy cycles per aligned band slot (`grid.rows / REGION_ROW_ALIGN`).
    band_busy: Vec<u64>,
    /// Idle cycles per aligned band slot.
    band_idle: Vec<u64>,
}

impl FleetTelemetry {
    fn new(band_slots: usize) -> Self {
        FleetTelemetry {
            metrics: MetricsRegistry::new(),
            recorder: FlightRecorder::new(),
            elapsed: 0,
            band_busy: vec![0; band_slots],
            band_idle: vec![0; band_slots],
        }
    }

    /// Accounts one scheduled slice of `cycles` run in `region`: the
    /// region's band slots go busy, every other slot goes idle.
    fn account_slice(&mut self, region: Region, cycles: u64) {
        self.elapsed += cycles;
        let lo = region.first_row / REGION_ROW_ALIGN;
        let hi = (region.end_row() / REGION_ROW_ALIGN).min(self.band_busy.len());
        for (slot, busy) in self.band_busy.iter_mut().enumerate() {
            if slot >= lo && slot < hi {
                *busy += cycles;
            } else {
                self.band_idle[slot] += cycles;
            }
        }
    }
}

/// Per-tenant slice of a [`FleetStats`] export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantStats {
    /// Tenant id.
    pub tenant: TenantId,
    /// `"queued"`, `"running"`, or `"done"`.
    pub state: &'static str,
    /// Current (or last) band as `(first_row, rows)`, if ever placed.
    pub band: Option<(usize, usize)>,
    /// Session cycles executed so far.
    pub cycles: u64,
    /// Loop iterations completed so far.
    pub iterations: u64,
    /// Scheduling slices granted so far.
    pub slices: u64,
    /// Times the tenant was migrated.
    pub migrations: u32,
    /// Fleet cycles spent waiting in the admission queue.
    pub queue_wait_cycles: u64,
    /// Cycles attributed to checkpoint/restore during migrations.
    pub checkpoint_cycles: u64,
}

/// Host-side (wall-clock) throughput section of a [`FleetStats`]
/// export, present when the driver was given a clock via
/// [`FleetDriver::set_host_clock`]. `mesa-top`'s host columns and the
/// future `mesa-serve` throughput endpoint read these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HostStats {
    /// Wall nanoseconds spent inside [`FleetDriver::step`].
    pub elapsed_ns: u64,
    /// Scheduler rounds timed.
    pub steps: u64,
    /// Jobs that completed successfully so far.
    pub episodes: u64,
    /// Fleet clock (total scheduled session cycles) at export time.
    pub sim_cycles: u64,
}

impl HostStats {
    /// Completed episodes per host second (`None` before any time has
    /// been observed).
    #[must_use]
    pub fn episodes_per_sec(&self) -> Option<f64> {
        (self.elapsed_ns > 0).then(|| self.episodes as f64 * 1e9 / self.elapsed_ns as f64)
    }

    /// Simulation speed in millions of simulated cycles per host
    /// second.
    #[must_use]
    pub fn sim_mcycles_per_sec(&self) -> Option<f64> {
        (self.elapsed_ns > 0).then(|| self.sim_cycles as f64 * 1e3 / self.elapsed_ns as f64)
    }

    fn to_json(self) -> String {
        format!(
            "{{\"elapsed_ns\":{},\"steps\":{},\"episodes\":{},\"sim_cycles\":{},\"episodes_per_sec\":{},\"sim_mcycles_per_sec\":{}}}",
            self.elapsed_ns,
            self.steps,
            self.episodes,
            self.sim_cycles,
            host::fmt_gauge(self.episodes_per_sec().unwrap_or(f64::NAN)),
            host::fmt_gauge(self.sim_mcycles_per_sec().unwrap_or(f64::NAN)),
        )
    }
}

/// A stable, mergeable summary of one fleet run — the JSON schema
/// (`"schema":"mesa.fleetstats/v1"`) that `tracecheck fleetstats`
/// validates and that `mesa-serve` (ROADMAP item 2) will serve verbatim.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FleetStats {
    /// Fleet runs folded into this summary (1 for a single run).
    pub runs: u64,
    /// Fleet clock: total scheduled session cycles.
    pub elapsed_cycles: u64,
    /// Aligned band slots in the grid (`rows / REGION_ROW_ALIGN`).
    pub bands: usize,
    /// Busy cycles per band slot; `Σ band_busy + Σ band_idle ==
    /// elapsed_cycles × bands` exactly.
    pub band_busy: Vec<u64>,
    /// Idle cycles per band slot.
    pub band_idle: Vec<u64>,
    /// Admissions that got their full band.
    pub admitted_full: u64,
    /// Admissions re-tiled down to a smaller band (C2 analog).
    pub admitted_shrunk: u64,
    /// Admissions that had to queue for a band.
    pub queued: u64,
    /// Declined admissions (no capacity even on an empty grid).
    pub declined: u64,
    /// Completed migrations.
    pub migrations: u64,
    /// Fleet-cycle wait between admission and band placement.
    pub queue_wait: Histogram,
    /// Session cycles granted per scheduling slice.
    pub slice_cycles: Histogram,
    /// Checkpoint+restore wire cost per migration.
    pub migration_cycles: Histogram,
    /// Per-tenant detail, in tenant-id order.
    pub tenants: Vec<TenantStats>,
    /// Wall-clock throughput section (`None` unless the driver was
    /// given a host clock; absent sections keep exports byte-identical
    /// with pre-host-profiling runs).
    pub host: Option<HostStats>,
}

impl FleetStats {
    /// Folds `other` into `self` (used by `soak` to aggregate episodes).
    /// Aggregates and histograms add exactly; per-tenant details are
    /// concatenated. The occupancy conservation invariant is preserved:
    /// it holds for each operand, and every term adds.
    pub fn merge(&mut self, other: &FleetStats) {
        if self.bands < other.bands {
            self.band_busy.resize(other.bands, 0);
            self.band_idle.resize(other.bands, 0);
            // Slots the narrower operand never had exist from cycle 0 of
            // the wider operand onward; account the narrower operand's
            // elapsed time on them as idle to keep conservation exact.
            for slot in self.bands..other.bands {
                self.band_idle[slot] += self.elapsed_cycles;
            }
            self.bands = other.bands;
        }
        for (slot, busy) in other.band_busy.iter().enumerate() {
            self.band_busy[slot] += busy;
        }
        for (slot, idle) in other.band_idle.iter().enumerate() {
            self.band_idle[slot] += idle;
        }
        for slot in other.bands..self.bands {
            self.band_idle[slot] += other.elapsed_cycles;
        }
        self.runs += other.runs;
        self.elapsed_cycles += other.elapsed_cycles;
        self.admitted_full += other.admitted_full;
        self.admitted_shrunk += other.admitted_shrunk;
        self.queued += other.queued;
        self.declined += other.declined;
        self.migrations += other.migrations;
        self.queue_wait.merge(&other.queue_wait);
        self.slice_cycles.merge(&other.slice_cycles);
        self.migration_cycles.merge(&other.migration_cycles);
        self.tenants.extend(other.tenants.iter().cloned());
        self.host = match (self.host, other.host) {
            (Some(a), Some(b)) => Some(HostStats {
                elapsed_ns: a.elapsed_ns.saturating_add(b.elapsed_ns),
                steps: a.steps.saturating_add(b.steps),
                episodes: a.episodes.saturating_add(b.episodes),
                sim_cycles: a.sim_cycles.saturating_add(b.sim_cycles),
            }),
            (a, b) => a.or(b),
        };
    }

    /// Renders the stable JSON export. Field order is part of the schema;
    /// output is byte-deterministic for a deterministic run.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"schema\":\"mesa.fleetstats/v1\"");
        let _ = write!(
            out,
            ",\"runs\":{},\"elapsed_cycles\":{},\"bands\":{}",
            self.runs, self.elapsed_cycles, self.bands
        );
        let join = |vals: &[u64]| {
            vals.iter().map(u64::to_string).collect::<Vec<_>>().join(",")
        };
        let _ = write!(out, ",\"band_busy\":[{}]", join(&self.band_busy));
        let _ = write!(out, ",\"band_idle\":[{}]", join(&self.band_idle));
        let _ = write!(
            out,
            ",\"admissions\":{{\"full_band\":{},\"shrunk\":{},\"queued\":{},\"declined\":{}}}",
            self.admitted_full, self.admitted_shrunk, self.queued, self.declined
        );
        let _ = write!(out, ",\"migrations\":{}", self.migrations);
        let _ = write!(
            out,
            ",\"histograms\":{{\"queue_wait_cycles\":{},\"slice_cycles\":{},\"migration_cycles\":{}}}",
            self.queue_wait.to_json(),
            self.slice_cycles.to_json(),
            self.migration_cycles.to_json()
        );
        out.push_str(",\"tenants\":[");
        for (i, t) in self.tenants.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"tenant\":{},\"state\":\"{}\"", t.tenant, t.state);
            match t.band {
                Some((first_row, rows)) => {
                    let _ = write!(out, ",\"first_row\":{first_row},\"rows\":{rows}");
                }
                None => out.push_str(",\"first_row\":null,\"rows\":null"),
            }
            let _ = write!(
                out,
                ",\"cycles\":{},\"iterations\":{},\"slices\":{},\"migrations\":{},\"queue_wait_cycles\":{},\"checkpoint_cycles\":{}}}",
                t.cycles,
                t.iterations,
                t.slices,
                t.migrations,
                t.queue_wait_cycles,
                t.checkpoint_cycles
            );
        }
        out.push(']');
        if let Some(h) = self.host {
            let _ = write!(out, ",\"host\":{}", h.to_json());
        }
        out.push('}');
        out
    }
}

/// One admitted (or queued) loop on the shared fabric.
#[derive(Debug)]
struct Tenant {
    /// Band currently owned (`None` while queued or after completion).
    region: Option<Region>,
    /// Band the tenant last ran in, kept for reporting after completion.
    last_region: Option<Region>,
    program: AccelProgram,
    entry: ArchState,
    faults: FaultPlan,
    max_iterations: u64,
    /// Present exactly while the tenant is frozen mid-episode.
    snapshot: Option<PlacementSnapshot>,
    /// Present once the tenant's loop has finished.
    result: Option<AccelRunResult>,
    migrations: u32,
    /// Fleet clock at admission (for queue-wait attribution).
    admitted_at: u64,
    /// Fleet cycles spent queued before first placement.
    queue_wait: u64,
    /// Wire words shuttled by migrations (checkpoint + restore cost).
    checkpoint_cycles: u64,
    /// Scheduling slices granted.
    slices: u64,
    /// Session cycles already accounted into the fleet clock.
    last_cycles: u64,
}

/// Carves one spatial accelerator's grid into per-tenant row bands and
/// time-slices the engine between them. See the module docs.
#[derive(Debug)]
pub struct FabricManager {
    accel: SpatialAccelerator,
    cfg: AccelConfig,
    tenants: Vec<Tenant>,
    /// Tenants waiting for a band, in admission order (head is placed
    /// first — later arrivals never jump the queue).
    queue: VecDeque<TenantId>,
    telemetry: FleetTelemetry,
}

impl FabricManager {
    /// A manager for one grid of the given configuration.
    #[must_use]
    pub fn new(cfg: AccelConfig) -> Self {
        let band_slots = cfg.grid().rows / REGION_ROW_ALIGN;
        FabricManager {
            accel: SpatialAccelerator::new(cfg),
            cfg,
            tenants: Vec::new(),
            queue: VecDeque::new(),
            telemetry: FleetTelemetry::new(band_slots),
        }
    }

    /// Rows an instance of `prog` with `tiles` tiles occupies, rounded up
    /// to the band alignment.
    fn rows_for(prog: &AccelProgram, tiles: usize) -> usize {
        (tiles.max(1) * prog.rows_per_tile()).next_multiple_of(REGION_ROW_ALIGN)
    }

    /// Lowest aligned start row of a free band of `rows` rows, skipping
    /// `exclude`'s own band (for migration) and, optionally, a forbidden
    /// start row (to force migration to actually move).
    fn free_band(
        &self,
        rows: usize,
        exclude: Option<TenantId>,
        not_at: Option<usize>,
    ) -> Option<usize> {
        let total = self.cfg.grid().rows;
        let cols = self.cfg.grid().cols;
        let mut first = 0;
        while first + rows <= total {
            let cand = Region::new(first, rows, cols);
            let busy = self.tenants.iter().enumerate().any(|(i, t)| {
                exclude != Some(i as TenantId)
                    && t.region.is_some_and(|r| r.overlaps(&cand))
            });
            if !busy && not_at != Some(first) {
                return Some(first);
            }
            first += REGION_ROW_ALIGN;
        }
        None
    }

    /// Largest free aligned band, as `(first_row, rows)`; ties go to the
    /// lowest start row.
    fn largest_free_band(&self) -> (usize, usize) {
        let total = self.cfg.grid().rows;
        let mut row_busy = vec![false; total];
        for t in &self.tenants {
            if let Some(r) = t.region {
                for row in row_busy.iter_mut().take(r.end_row().min(total)).skip(r.first_row) {
                    *row = true;
                }
            }
        }
        let mut best = (0, 0);
        let mut first = 0;
        while first + REGION_ROW_ALIGN <= total {
            let mut rows = 0;
            while first + rows + REGION_ROW_ALIGN <= total
                && row_busy[first + rows..first + rows + REGION_ROW_ALIGN]
                    .iter()
                    .all(|&b| !b)
            {
                rows += REGION_ROW_ALIGN;
            }
            if rows > best.1 {
                best = (first, rows);
            }
            first += REGION_ROW_ALIGN;
        }
        best
    }

    /// Admits a prepared configuration as a new tenant.
    ///
    /// `entry` is the architectural state at loop entry; `max_iterations`
    /// bounds the tenant's cumulative iteration count. Returns the id and
    /// how the placement was resolved (full band, shrunk band, or queued).
    ///
    /// # Errors
    /// [`FabricError::NoCapacity`] when even one tile exceeds the grid.
    pub fn admit(
        &mut self,
        mut program: AccelProgram,
        entry: ArchState,
        faults: FaultPlan,
        max_iterations: u64,
    ) -> Result<(TenantId, Admission), FabricError> {
        let rows_total = self.cfg.grid().rows;
        let min_rows = Self::rows_for(&program, 1);
        let id = self.tenants.len() as TenantId;
        if min_rows > rows_total {
            self.telemetry.metrics.add_labeled(
                "fabric.admissions",
                &[("outcome", "declined")],
                1,
            );
            self.telemetry.recorder.record(
                id,
                self.telemetry.elapsed,
                "declined",
                format!("no capacity: {min_rows} rows needed, grid has {rows_total}"),
            );
            return Err(FabricError::NoCapacity { rows_needed: min_rows, rows_total });
        }
        let cols = self.cfg.grid().cols;
        let want = Self::rows_for(&program, program.tiles);
        let admission = if let Some(first) = self.free_band(want, None, None) {
            Admission::Admitted(Region::new(first, want, cols))
        } else {
            // C2 analog: the full tiling does not fit beside the current
            // tenants — re-tile down to the largest free band.
            let (first, avail) = self.largest_free_band();
            let mut tiles_fit = (avail / program.rows_per_tile().max(1)).min(program.tiles);
            while tiles_fit > 1 && Self::rows_for(&program, tiles_fit) > avail {
                tiles_fit -= 1;
            }
            if program.tiles > 1 && tiles_fit >= 1 && Self::rows_for(&program, tiles_fit) <= avail
            {
                let tiles_before = program.tiles;
                program.tiles = tiles_fit;
                Admission::Shrunk {
                    region: Region::new(first, Self::rows_for(&program, tiles_fit), cols),
                    tiles_before,
                    tiles_after: tiles_fit,
                }
            } else {
                Admission::Queued
            }
        };
        let region = match admission {
            Admission::Admitted(r) | Admission::Shrunk { region: r, .. } => Some(r),
            Admission::Queued => None,
        };
        let (outcome, detail) = match admission {
            Admission::Admitted(r) => ("full_band", format!("admitted to {r}")),
            Admission::Shrunk { region: r, tiles_before, tiles_after } => (
                "shrunk",
                format!("shrunk {tiles_before}->{tiles_after} tiles, admitted to {r}"),
            ),
            Admission::Queued => ("queued", "queued: no free band".to_string()),
        };
        self.telemetry.metrics.add_labeled("fabric.admissions", &[("outcome", outcome)], 1);
        self.telemetry.recorder.record(id, self.telemetry.elapsed, "admit", detail);
        if region.is_some() {
            // Placed immediately: zero queue wait, observed so the
            // queue-wait histogram counts every placement.
            self.telemetry.metrics.observe("fabric.queue_wait_cycles", 0);
        }
        self.tenants.push(Tenant {
            region,
            last_region: region,
            program,
            entry,
            faults,
            max_iterations,
            snapshot: None,
            result: None,
            migrations: 0,
            admitted_at: self.telemetry.elapsed,
            queue_wait: 0,
            checkpoint_cycles: 0,
            slices: 0,
            last_cycles: 0,
        });
        if region.is_none() {
            self.queue.push_back(id);
        }
        Ok((id, admission))
    }

    /// Places queued tenants (head of line first) into bands freed by a
    /// completion. Later arrivals never jump an unplaceable head, so
    /// admission order is a total order on placement.
    fn promote(&mut self) {
        while let Some(&id) = self.queue.front() {
            let Some(t) = self.tenants.get(id as usize) else {
                self.queue.pop_front();
                continue;
            };
            let want = Self::rows_for(&t.program, t.program.tiles);
            let Some(first) = self.free_band(want, None, None) else { break };
            let region = Region::new(first, want, self.cfg.grid().cols);
            if let Some(t) = self.tenants.get_mut(id as usize) {
                t.region = Some(region);
                t.last_region = Some(region);
                t.queue_wait = self.telemetry.elapsed.saturating_sub(t.admitted_at);
                self.telemetry.metrics.observe("fabric.queue_wait_cycles", t.queue_wait);
                self.telemetry.recorder.record(
                    id,
                    self.telemetry.elapsed,
                    "placed",
                    format!("placed in {region} after {} fleet cycles queued", t.queue_wait),
                );
            }
            self.queue.pop_front();
        }
    }

    /// Runs one scheduling slice of tenant `id`: at most `quantum` more
    /// session cycles, frozen at the next round boundary past that.
    /// `quantum == u64::MAX` runs the tenant to completion. Completing a
    /// tenant frees its band and promotes the queue.
    ///
    /// Idempotent on finished tenants, and a no-op on queued ones.
    ///
    /// # Errors
    /// [`FabricError::UnknownTenant`], or any engine/session failure.
    #[allow(clippy::too_many_arguments)]
    pub fn advance(
        &mut self,
        id: TenantId,
        mem: &mut MemorySystem,
        requester: usize,
        quantum: u64,
        tracer: &mut dyn Tracer,
        cycle_base: u64,
    ) -> Result<TenantProgress, FabricError> {
        let _host = host::span("fabric.advance");
        let t = self
            .tenants
            .get_mut(id as usize)
            .ok_or(FabricError::UnknownTenant(id))?;
        if let Some(r) = &t.result {
            return Ok(TenantProgress::Completed(r.cycles));
        }
        let Some(region) = t.region else { return Ok(TenantProgress::Queued) };
        // A zero quantum could freeze at the current clock without running
        // a round; one cycle forces at least one round of progress.
        let quantum = quantum.max(1);
        let pause_at_cycle = if quantum == u64::MAX {
            None
        } else {
            let base = t.snapshot.as_ref().map_or(0, PlacementSnapshot::cycles);
            Some(base.saturating_add(quantum))
        };
        let req = SessionRequest {
            requester,
            max_iterations: t.max_iterations,
            faults: &t.faults,
            region,
            pause_at_cycle,
        };
        let status = match self.accel.run_session(
            &t.program,
            &t.entry,
            mem,
            &req,
            t.snapshot.as_ref(),
            tracer,
            cycle_base,
        ) {
            Ok(status) => status,
            Err(e) => {
                let fe = FabricError::from(e);
                self.telemetry.recorder.record(
                    id,
                    self.telemetry.elapsed,
                    "error",
                    format!("session failed: {fe}"),
                );
                return Err(fe);
            }
        };
        let (progress, iterations) = match status {
            SessionStatus::Completed(r) => {
                let cycles = r.cycles;
                let iterations = r.iterations;
                t.result = Some(r);
                t.snapshot = None;
                t.region = None;
                (TenantProgress::Completed(cycles), iterations)
            }
            SessionStatus::Paused(s) => {
                let cycles = s.cycles();
                let iterations = s.iterations();
                t.snapshot = Some(*s);
                (TenantProgress::Paused(cycles), iterations)
            }
        };
        let (TenantProgress::Completed(total) | TenantProgress::Paused(total)) = progress
        else {
            return Ok(progress);
        };
        let slice = total.saturating_sub(t.last_cycles);
        t.last_cycles = total;
        t.slices += 1;
        self.telemetry.account_slice(region, slice);
        self.telemetry.metrics.observe("fabric.slice_cycles", slice);
        let mut lane = String::new();
        let _ = write!(lane, "{id}");
        self.telemetry.metrics.add_labeled("fabric.slices", &[("tenant", &lane)], 1);
        self.telemetry.metrics.add_labeled("fabric.tenant_cycles", &[("tenant", &lane)], slice);
        self.telemetry.metrics.add_labeled(
            "fabric.region_cycles",
            &[("first_row", &format!("{:02}", region.first_row))],
            slice,
        );
        if matches!(progress, TenantProgress::Completed(_)) {
            self.telemetry.metrics.add("fabric.completions", 1);
            self.telemetry.recorder.record(
                id,
                self.telemetry.elapsed,
                "complete",
                format!("completed after {total} session cycles, {iterations} iterations"),
            );
            self.promote();
        } else {
            self.telemetry.recorder.record(
                id,
                self.telemetry.elapsed,
                "slice",
                format!("slice of {slice} cycles in {region} (session clock {total})"),
            );
        }
        Ok(progress)
    }

    /// Serializes tenant `id`'s frozen execution state to a word stream
    /// (see [`PlacementSnapshot::to_words`] for the format).
    ///
    /// # Errors
    /// [`FabricError::NotPaused`] unless the tenant is frozen.
    pub fn checkpoint(&self, id: TenantId) -> Result<Vec<u64>, FabricError> {
        let t = self.tenants.get(id as usize).ok_or(FabricError::UnknownTenant(id))?;
        t.snapshot
            .as_ref()
            .map(PlacementSnapshot::to_words)
            .ok_or(FabricError::NotPaused(id))
    }

    /// Decodes `words` and installs the snapshot as tenant `id`'s frozen
    /// state, after verifying it binds to the tenant's program, band
    /// height, and fault plan. A corrupted or truncated stream declines
    /// with a typed error and leaves the tenant untouched.
    ///
    /// # Errors
    /// [`FabricError::Snapshot`] on decode/binding failures;
    /// [`FabricError::StillQueued`] when the tenant has no band yet.
    pub fn restore(&mut self, id: TenantId, words: &[u64]) -> Result<(), FabricError> {
        let t = self
            .tenants
            .get_mut(id as usize)
            .ok_or(FabricError::UnknownTenant(id))?;
        let region = t.region.ok_or(FabricError::StillQueued(id))?;
        let snap = PlacementSnapshot::from_words(words)?;
        snap.check_compatible(&t.program, region, &t.faults)?;
        // A restore may rewind the session clock; re-anchor the accounted
        // mark so re-executed cycles are accounted as the real work they
        // are rather than skewing the next slice's length.
        t.last_cycles = snap.cycles();
        t.snapshot = Some(snap);
        t.result = None;
        Ok(())
    }

    /// Relocates the frozen tenant `id` to the band starting at
    /// `first_row` (same height). The next [`advance`](Self::advance)
    /// resumes there; aligned bands are translation-invariant, so the
    /// relocated run's timing is identical to one that never moved.
    ///
    /// # Errors
    /// [`FabricError::NotPaused`] unless frozen;
    /// [`FabricError::RegionMisaligned`] / [`FabricError::RegionBusy`] /
    /// [`FabricError::NoCapacity`] for bad targets.
    pub fn migrate(
        &mut self,
        id: TenantId,
        first_row: usize,
        tracer: &mut dyn Tracer,
    ) -> Result<Region, FabricError> {
        let _host = host::span("fabric.migrate");
        let idx = id as usize;
        let (old, cycles, wire_words) = {
            let t = self.tenants.get(idx).ok_or(FabricError::UnknownTenant(id))?;
            let old = t.region.ok_or(FabricError::StillQueued(id))?;
            let snap = t.snapshot.as_ref().ok_or(FabricError::NotPaused(id))?;
            (old, snap.cycles(), snap.word_len() as u64)
        };
        let target = Region::new(first_row, old.rows, old.cols);
        if !target.is_aligned() {
            return Err(FabricError::RegionMisaligned(target));
        }
        if !target.fits(self.cfg.grid().rows, self.cfg.grid().cols) {
            return Err(FabricError::NoCapacity {
                rows_needed: target.end_row(),
                rows_total: self.cfg.grid().rows,
            });
        }
        let busy = self.tenants.iter().enumerate().any(|(i, t)| {
            i != idx && t.region.is_some_and(|r| r.overlaps(&target))
        });
        if busy {
            return Err(FabricError::RegionBusy(target));
        }
        // Migration cost model: the frozen placement is serialized out of
        // the old band and deserialized into the new one — one wire word
        // each way. Charged to telemetry only; the session clock is *not*
        // advanced, keeping migration architecturally (and timing-)
        // invisible to the tenant.
        let cost = 2 * wire_words;
        if let Some(t) = self.tenants.get_mut(idx) {
            t.region = Some(target);
            t.last_region = Some(target);
            t.migrations += 1;
            t.checkpoint_cycles += cost;
        }
        self.telemetry.metrics.add("fabric.migrations", 1);
        self.telemetry.metrics.observe("fabric.migration_cycles", cost);
        self.telemetry.recorder.record(
            id,
            self.telemetry.elapsed,
            "migrate",
            format!("{old} -> {target} ({cost} wire-word cycles)"),
        );
        if tracer.enabled() {
            tracer.instant(
                Subsystem::Controller,
                "migrate",
                &format!("tenant {id}: {old} -> {target}"),
                cycles,
            );
        }
        Ok(target)
    }

    /// Lowest free aligned start row tenant `id` could migrate to, other
    /// than where it already is (`None` when the grid is too full).
    #[must_use]
    pub fn migration_target(&self, id: TenantId) -> Option<usize> {
        let t = self.tenants.get(id as usize)?;
        let region = t.region?;
        self.free_band(region.rows, Some(id), Some(region.first_row))
    }

    /// The band tenant `id` currently owns (`None` while queued or after
    /// completion).
    #[must_use]
    pub fn region(&self, id: TenantId) -> Option<Region> {
        self.tenants.get(id as usize).and_then(|t| t.region)
    }

    /// The band tenant `id` last ran in (survives completion).
    #[must_use]
    pub fn last_region(&self, id: TenantId) -> Option<Region> {
        self.tenants.get(id as usize).and_then(|t| t.last_region)
    }

    /// Times tenant `id` was migrated.
    #[must_use]
    pub fn migrations(&self, id: TenantId) -> u32 {
        self.tenants.get(id as usize).map_or(0, |t| t.migrations)
    }

    /// The tenant's (possibly shrunk) configuration.
    #[must_use]
    pub fn program(&self, id: TenantId) -> Option<&AccelProgram> {
        self.tenants.get(id as usize).map(|t| &t.program)
    }

    /// The finished tenant's result, if it has completed.
    #[must_use]
    pub fn result(&self, id: TenantId) -> Option<&AccelRunResult> {
        self.tenants.get(id as usize).and_then(|t| t.result.as_ref())
    }

    /// `true` while tenant `id` waits for a band.
    #[must_use]
    pub fn is_queued(&self, id: TenantId) -> bool {
        self.tenants.get(id as usize).is_some_and(|t| t.region.is_none() && t.result.is_none())
    }

    /// Fleet cycles tenant `id` spent queued before first placement.
    #[must_use]
    pub fn queue_wait_cycles(&self, id: TenantId) -> u64 {
        self.tenants.get(id as usize).map_or(0, |t| t.queue_wait)
    }

    /// Checkpoint/restore wire cost accumulated by tenant `id`'s
    /// migrations, in cycles (wire words shuttled).
    #[must_use]
    pub fn checkpoint_cycles(&self, id: TenantId) -> u64 {
        self.tenants.get(id as usize).map_or(0, |t| t.checkpoint_cycles)
    }

    /// The metrics the manager accumulated as a side effect of admission,
    /// scheduling, and migration (labeled counters + latency histograms).
    #[must_use]
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.telemetry.metrics
    }

    /// The always-on flight recorder (recent per-tenant event rings).
    #[must_use]
    pub fn flight_recorder(&self) -> &FlightRecorder {
        &self.telemetry.recorder
    }

    /// Records an externally observed event into tenant `id`'s flight
    /// lane (the fleet scheduler uses this for decline/fault context the
    /// manager cannot see itself).
    pub fn record_flight(&mut self, id: TenantId, kind: &'static str, detail: String) {
        self.telemetry.recorder.record(id, self.telemetry.elapsed, kind, detail);
    }

    /// The stable fleet-stats export: aggregates, per-band occupancy, the
    /// latency histograms, and one [`TenantStats`] per tenant.
    #[must_use]
    pub fn fleet_stats(&self) -> FleetStats {
        let m = &self.telemetry.metrics;
        let histogram =
            |name: &str| m.histogram(name).cloned().unwrap_or_default();
        let tenants = self
            .tenants
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let (state, iterations, cycles) = if let Some(r) = &t.result {
                    ("done", r.iterations, r.cycles)
                } else if let Some(s) = &t.snapshot {
                    ("running", s.iterations(), s.cycles())
                } else if t.region.is_some() {
                    ("running", 0, 0)
                } else {
                    ("queued", 0, 0)
                };
                TenantStats {
                    tenant: i as TenantId,
                    state,
                    band: t.last_region.map(|r| (r.first_row, r.rows)),
                    cycles,
                    iterations,
                    slices: t.slices,
                    migrations: t.migrations,
                    queue_wait_cycles: t.queue_wait,
                    checkpoint_cycles: t.checkpoint_cycles,
                }
            })
            .collect();
        FleetStats {
            runs: 1,
            elapsed_cycles: self.telemetry.elapsed,
            bands: self.telemetry.band_busy.len(),
            band_busy: self.telemetry.band_busy.clone(),
            band_idle: self.telemetry.band_idle.clone(),
            admitted_full: m.labeled_counter("fabric.admissions", &[("outcome", "full_band")]),
            admitted_shrunk: m.labeled_counter("fabric.admissions", &[("outcome", "shrunk")]),
            queued: m.labeled_counter("fabric.admissions", &[("outcome", "queued")]),
            declined: m.labeled_counter("fabric.admissions", &[("outcome", "declined")]),
            migrations: m.counter("fabric.migrations"),
            queue_wait: histogram("fabric.queue_wait_cycles"),
            slice_cycles: histogram("fabric.slice_cycles"),
            migration_cycles: histogram("fabric.migration_cycles"),
            tenants,
            host: None,
        }
    }
}

/// One loop's worth of work for [`run_tenants`]: its program, the
/// architectural state to start monitoring from, and a private memory
/// system (tenants are address-space isolated; nothing is shared).
#[derive(Debug)]
pub struct TenantJob {
    /// The program containing the hot loop.
    pub program: mesa_isa::Program,
    /// Architectural entry state; left at the post-loop state on success.
    pub state: ArchState,
    /// The tenant's private memory system (needs two requester ports).
    pub mem: MemorySystem,
    /// Fault plan armed for this tenant's episode (default benign).
    pub faults: FaultPlan,
}

impl TenantJob {
    /// A job with no faults armed.
    #[must_use]
    pub fn new(program: mesa_isa::Program, state: ArchState, mem: MemorySystem) -> Self {
        TenantJob { program, state, mem, faults: FaultPlan::none() }
    }
}

/// Bookkeeping for one job while it runs on the shared fabric.
struct Slot {
    id: TenantId,
    ep: PreparedEpisode,
    /// Episode-relative clock for this tenant's trace spans.
    now: u64,
    /// Session cycles already accounted into `now`.
    counted: u64,
    slices: u64,
    /// Band the tenant's open `region_held@…` trace span covers.
    held: Option<Region>,
}

/// Everything a fleet run produced: the per-job outcomes, the aggregate
/// [`FleetStats`], the flight recorder's recent history, and — when a
/// decline or fault fired — the rendered JSON post-mortem.
#[derive(Debug)]
pub struct FleetRun {
    /// One outcome per job, in job order (declines are typed errors,
    /// exactly like solo offloads).
    pub outcomes: Vec<Result<OffloadReport, MesaError>>,
    /// Aggregate fleet telemetry (`"schema":"mesa.fleetstats/v1"`).
    pub stats: FleetStats,
    /// The bounded per-tenant event history at run end.
    pub flight: FlightRecorder,
    /// `Some(json)` when any job declined or any report carried faults —
    /// the flight recorder's dump (`"schema":"mesa.flight/v1"`).
    pub post_mortem: Option<String>,
}

/// Incremental driver of a fleet run: prepares and admits every job up
/// front, then advances the round-robin schedule one full pass per
/// [`step`](FleetDriver::step) — so an interactive caller (`mesa-top`)
/// can render the fabric between rounds while batch callers just loop.
pub struct FleetDriver<'a> {
    manager: FabricManager,
    jobs: &'a mut [TenantJob],
    slots: Vec<Option<Slot>>,
    outcomes: Vec<Option<Result<OffloadReport, MesaError>>>,
    /// Tenant id each job was admitted as (`None` for prepare declines);
    /// survives slot teardown so labels stay stable after completion.
    admitted: Vec<Option<TenantId>>,
    quantum: u64,
    migrate_every: u64,
    remaining: usize,
    /// Wall-clock accounting for [`step`](Self::step), when a clock was
    /// attached via [`set_host_clock`](Self::set_host_clock).
    host: Option<HostTiming>,
}

/// Clock + accumulators behind [`FleetDriver::set_host_clock`].
struct HostTiming {
    clock: Box<dyn HostClock>,
    elapsed_ns: u64,
    steps: u64,
}

impl<'a> FleetDriver<'a> {
    /// Requester port the fabric uses on each tenant's memory system.
    const ACCEL: usize = 1;

    /// Prepares every job solo (F1 monitoring + F2 configuration on its
    /// own CPU and memory) and admits the survivors to a fresh
    /// [`FabricManager`]. Prepare-stage declines settle immediately and
    /// are logged to the flight recorder under the job's index.
    pub fn new(
        system: &SystemConfig,
        jobs: &'a mut [TenantJob],
        quantum: u64,
        migrate_every: u64,
        tracer: &mut dyn Tracer,
    ) -> Self {
        let mut manager = FabricManager::new(system.accel);
        let mut outcomes: Vec<Option<Result<OffloadReport, MesaError>>> =
            jobs.iter().map(|_| None).collect();
        let mut slots: Vec<Option<Slot>> = Vec::with_capacity(jobs.len());
        let mut admitted: Vec<Option<TenantId>> = Vec::with_capacity(jobs.len());
        for (i, job) in jobs.iter_mut().enumerate() {
            // A fresh controller per tenant: config/trace caches are keyed
            // by PC range, and unrelated tenants may reuse the same
            // addresses.
            let mut ctl = MesaController::new(system.clone());
            if !job.faults.is_benign() {
                ctl.set_fault_plan(Some(job.faults.clone()));
            }
            let mut cpu = OoOCore::new(system.core);
            match ctl.prepare_episode(&job.program, &mut job.state, &mut job.mem, &mut cpu, tracer)
            {
                Ok(ep) => {
                    match manager.admit(
                        ep.accel_prog.clone(),
                        job.state.clone(),
                        ep.fault_plan.clone(),
                        system.max_accel_iterations,
                    ) {
                        Ok((id, _admission)) => {
                            let now = ep.now;
                            tracer.span_begin(Subsystem::Controller, "offload", now);
                            admitted.push(Some(id));
                            slots.push(Some(Slot {
                                id,
                                ep,
                                now,
                                counted: 0,
                                slices: 0,
                                held: None,
                            }));
                        }
                        Err(e) => {
                            outcomes[i] = Some(Err(e.into()));
                            admitted.push(None);
                            slots.push(None);
                        }
                    }
                }
                Err(e) => {
                    manager.record_flight(
                        i as TenantId,
                        "declined",
                        format!("job {i} declined at prepare: {e}"),
                    );
                    outcomes[i] = Some(Err(e));
                    admitted.push(None);
                    slots.push(None);
                }
            }
        }
        let remaining = slots.iter().filter(|s| s.is_some()).count();
        let mut driver = FleetDriver {
            manager,
            jobs,
            slots,
            outcomes,
            admitted,
            quantum,
            migrate_every,
            remaining,
            host: None,
        };
        driver.sync_region_spans(tracer);
        driver
    }

    /// Opens/closes `region_held@rNN` spans so each tenant's Chrome-trace
    /// timeline shows which band it occupied, balanced against that
    /// tenant's episode-relative clock. A no-op when tracing is off.
    fn sync_region_spans(&mut self, tracer: &mut dyn Tracer) {
        if !tracer.enabled() {
            return;
        }
        for slot in self.slots.iter_mut().flatten() {
            let current = self.manager.region(slot.id);
            if current == slot.held {
                continue;
            }
            if let Some(r) = slot.held {
                tracer.span_end(
                    Subsystem::Controller,
                    &format!("region_held@r{:02}", r.first_row),
                    slot.now,
                );
            }
            if let Some(r) = current {
                tracer.span_begin(
                    Subsystem::Controller,
                    &format!("region_held@r{:02}", r.first_row),
                    slot.now,
                );
            }
            slot.held = current;
        }
    }

    /// Attaches a wall clock: every subsequent [`step`](Self::step) is
    /// timed, and [`fleet_stats`](Self::fleet_stats) exports carry a
    /// [`HostStats`] section with the derived throughput gauges.
    pub fn set_host_clock(&mut self, clock: Box<dyn HostClock>) {
        self.host = Some(HostTiming { clock, elapsed_ns: 0, steps: 0 });
    }

    fn host_stats(&self, sim_cycles: u64) -> Option<HostStats> {
        self.host.as_ref().map(|h| HostStats {
            elapsed_ns: h.elapsed_ns,
            steps: h.steps,
            episodes: self
                .outcomes
                .iter()
                .filter(|o| matches!(o, Some(Ok(_))))
                .count() as u64,
            sim_cycles,
        })
    }

    /// Runs one full round-robin pass over the unsettled jobs. Returns
    /// `true` while at least one job is still live (keep stepping).
    pub fn step(&mut self, tracer: &mut dyn Tracer) -> bool {
        if self.remaining == 0 {
            return false;
        }
        let step_started = self.host.as_mut().map(|h| h.clock.now_ns());
        let mut advanced_any = false;
        for i in 0..self.slots.len() {
            if self.outcomes[i].is_some() {
                continue;
            }
            let Some(slot) = self.slots[i].as_mut() else { continue };
            let progress = self.manager.advance(
                slot.id,
                &mut self.jobs[i].mem,
                Self::ACCEL,
                self.quantum,
                tracer,
                slot.now,
            );
            match progress {
                Ok(TenantProgress::Queued) => {}
                Ok(TenantProgress::Paused(total)) => {
                    advanced_any = true;
                    slot.now += total - slot.counted;
                    slot.counted = total;
                    slot.slices += 1;
                    if self.migrate_every > 0 && slot.slices % self.migrate_every == 0 {
                        if let Some(row) = self.manager.migration_target(slot.id) {
                            // A full grid is not an error — the tenant
                            // simply stays where it is this round.
                            let _ = self.manager.migrate(slot.id, row, tracer);
                        }
                    }
                }
                Ok(TenantProgress::Completed(total)) => {
                    advanced_any = true;
                    slot.now += total - slot.counted;
                    slot.counted = total;
                    // Close the residency span before the offload span so
                    // the per-tenant timeline nests correctly.
                    self.sync_region_spans(tracer);
                    if let Some(slot) = self.slots[i].take() {
                        let report =
                            finish_tenant(&self.manager, &slot, &mut self.jobs[i].state, tracer);
                        self.outcomes[i] = Some(report);
                    }
                    self.remaining -= 1;
                }
                Err(e) => {
                    if tracer.enabled() {
                        if let Some(r) = slot.held.take() {
                            tracer.span_end(
                                Subsystem::Controller,
                                &format!("region_held@r{:02}", r.first_row),
                                slot.now,
                            );
                        }
                    }
                    tracer.span_end(Subsystem::Controller, "offload", slot.now);
                    self.outcomes[i] = Some(Err(e.into()));
                    self.remaining -= 1;
                }
            }
            // Promotion or migration may have re-banded *any* tenant.
            self.sync_region_spans(tracer);
        }
        if !advanced_any && self.remaining > 0 {
            // Every live tenant is queued and nothing is running to free a
            // band — impossible unless admission raced a failure path.
            // Decline the stragglers rather than spinning forever.
            for i in 0..self.slots.len() {
                if self.outcomes[i].is_none() {
                    if let Some(slot) = &self.slots[i] {
                        let id = slot.id;
                        self.manager.record_flight(
                            id,
                            "declined",
                            "still queued with no running tenant to free a band".to_string(),
                        );
                        self.outcomes[i] = Some(Err(FabricError::StillQueued(id).into()));
                        self.remaining -= 1;
                    }
                }
            }
        }
        if let (Some(h), Some(t0)) = (self.host.as_mut(), step_started) {
            h.elapsed_ns = h.elapsed_ns.saturating_add(h.clock.now_ns().saturating_sub(t0));
            h.steps = h.steps.saturating_add(1);
        }
        self.remaining > 0
    }

    /// Jobs not yet settled (completed or declined).
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// The job index admitted as tenant `id`, if any. Prepare-stage
    /// declines consume no tenant id, so job and tenant numbering drift
    /// apart; interactive callers use this to label tenants by job.
    #[must_use]
    pub fn job_of_tenant(&self, id: TenantId) -> Option<usize> {
        self.admitted.iter().position(|&t| t == Some(id))
    }

    /// The underlying manager, for live inspection (band map, metrics).
    #[must_use]
    pub fn manager(&self) -> &FabricManager {
        &self.manager
    }

    /// Point-in-time fleet stats (see [`FabricManager::fleet_stats`]),
    /// with the host throughput section attached when a clock is.
    #[must_use]
    pub fn fleet_stats(&self) -> FleetStats {
        let mut stats = self.manager.fleet_stats();
        stats.host = self.host_stats(stats.elapsed_cycles);
        stats
    }

    /// Consumes the driver and assembles the [`FleetRun`]: outcomes in
    /// job order, final stats, the flight history, and an auto-generated
    /// post-mortem if any job declined or any report carried faults.
    #[must_use]
    pub fn into_run(self) -> FleetRun {
        let outcomes: Vec<Result<OffloadReport, MesaError>> = self
            .outcomes
            .into_iter()
            .map(|o| o.unwrap_or(Err(MesaError::NoLoopDetected)))
            .collect();
        let mut stats = self.manager.fleet_stats();
        stats.host = self.host.as_ref().map(|h| HostStats {
            elapsed_ns: h.elapsed_ns,
            steps: h.steps,
            episodes: outcomes.iter().filter(|o| o.is_ok()).count() as u64,
            sim_cycles: stats.elapsed_cycles,
        });
        let flight = self.manager.flight_recorder().clone();
        let mut reason: Option<String> = None;
        for (i, outcome) in outcomes.iter().enumerate() {
            match outcome {
                Err(e) => {
                    reason = Some(format!("job {i} declined: {e}"));
                    break;
                }
                Ok(r) if r.faults.total() > 0 => {
                    // Keep scanning: a later hard decline outranks a
                    // survived fault as the headline reason.
                    if reason.is_none() {
                        reason = Some(format!(
                            "job {i} completed with {} injected faults",
                            r.faults.total()
                        ));
                    }
                }
                Ok(_) => {}
            }
        }
        let post_mortem = reason.map(|r| flight.post_mortem(&r));
        FleetRun { outcomes, stats, flight, post_mortem }
    }
}

/// Runs `jobs` as concurrent tenants of one shared fabric.
///
/// Each job is first prepared solo (F1 monitoring and F2 configuration on
/// its own CPU and memory), then admitted to a [`FabricManager`] which
/// round-robins `quantum`-cycle slices over the admitted tenants in
/// admission order. When `migrate_every > 0`, every such-manieth slice of
/// a tenant checkpoints it and relocates it to the lowest other free band
/// — exercising migration invisibility on every run.
///
/// Tenant episodes skip F3 re-optimization (the measured-latency feedback
/// loop assumes grid ownership); reports have `reconfigurations == 0` and
/// carry the tenant id, final band, and migration count.
///
/// Returns one outcome per job, in job order: declines (no loop, C1–C3
/// rejection, truncated config, admission failure) are reported as typed
/// errors, exactly like solo offloads.
pub fn run_tenants(
    system: &SystemConfig,
    jobs: &mut [TenantJob],
    quantum: u64,
    migrate_every: u64,
) -> Vec<Result<OffloadReport, MesaError>> {
    run_tenants_fleet(system, jobs, quantum, migrate_every, &mut NullTracer).outcomes
}

/// [`run_tenants`] with tracing: per-tenant spans ride each tenant's own
/// episode-relative clock, band residency shows as balanced
/// `region_held@rNN` spans, and migrations surface as `migrate` instants.
pub fn run_tenants_traced(
    system: &SystemConfig,
    jobs: &mut [TenantJob],
    quantum: u64,
    migrate_every: u64,
    tracer: &mut dyn Tracer,
) -> Vec<Result<OffloadReport, MesaError>> {
    run_tenants_fleet(system, jobs, quantum, migrate_every, tracer).outcomes
}

/// [`run_tenants`] returning the full [`FleetRun`]: outcomes plus fleet
/// stats, flight history, and any auto-generated post-mortem.
pub fn run_tenants_fleet(
    system: &SystemConfig,
    jobs: &mut [TenantJob],
    quantum: u64,
    migrate_every: u64,
    tracer: &mut dyn Tracer,
) -> FleetRun {
    let mut driver = FleetDriver::new(system, jobs, quantum, migrate_every, tracer);
    while driver.step(tracer) {}
    driver.into_run()
}

/// Assembles the per-tenant [`OffloadReport`] once its session completes.
fn finish_tenant(
    manager: &FabricManager,
    slot: &Slot,
    state: &mut ArchState,
    tracer: &mut dyn Tracer,
) -> Result<OffloadReport, MesaError> {
    let ep = &slot.ep;
    let (Some(prog), Some(r)) = (manager.program(slot.id), manager.result(slot.id)) else {
        return Err(FabricError::UnknownTenant(slot.id).into());
    };
    let induction = ep.ldfg.induction_nodes();
    apply_live_outs(state, prog, &r.final_regs, &induction, &ep.ldfg, r.iterations);
    state.pc = ep.end_pc;
    let mut fault_log = ep.fault_log;
    fault_log.merge(&r.faults);
    tracer.span_end(Subsystem::Controller, "offload", slot.now);
    Ok(OffloadReport {
        region: (ep.start_pc, ep.end_pc),
        warmup_cycles: ep.warmup_cycles,
        warmup_instrs: ep.warmup_instrs,
        config: ep.config,
        config_phase_cpu_cycles: ep.config_phase_cpu_cycles,
        cpu_iterations_during_config: ep.cpu_iterations_during_config,
        reconfig_cycles: 0,
        reconfigurations: 0,
        accel_cycles: r.cycles,
        accel_iterations: r.iterations,
        tiles: prog.tiles,
        pipelined: prog.pipelined,
        unmapped_nodes: ep.unmapped_nodes,
        expected_iterations: ep.expected_iterations,
        initial_estimate: ep.initial_estimate,
        from_cache: ep.from_cache,
        cpu_phase_traffic: ep.cpu_phase_traffic,
        cpu_pipeline: ep.cpu_pipeline,
        placement: prog.nodes.iter().map(|n| n.coord).collect(),
        reopt_rounds: Vec::new(),
        activity: r.activity,
        counters: r.counters.clone(),
        faults: fault_log,
        tenant: slot.id,
        fabric_region: manager.last_region(slot.id),
        migrations: manager.migrations(slot.id),
        queue_wait_cycles: manager.queue_wait_cycles(slot.id),
        checkpoint_cycles: manager.checkpoint_cycles(slot.id),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesa_isa::reg::abi::*;
    use mesa_isa::{Asm, ArchState, Program, Xlen};
    use mesa_mem::MemConfig;

    const BASE: u64 = 0x10_0000;
    const OUT: u64 = 0x20_0000;

    /// sum += a[i] over n elements (serial: one tile, no shrink noise).
    fn sum_job(n: u64) -> TenantJob {
        let mut a = Asm::new(0x1000);
        a.label("loop");
        a.lw(T0, A0, 0);
        a.add(T1, T1, T0);
        a.addi(A0, A0, 4);
        a.bne(A0, A1, "loop");
        a.sw(T1, A2, 0);
        a.li(A7, 93);
        a.ecall();
        let p: Program = a.finish().unwrap();
        let mut st = ArchState::new(0x1000, Xlen::Rv32);
        st.write(A0, BASE);
        st.write(A1, BASE + 4 * n);
        st.write(A2, OUT);
        let mut mem = MemorySystem::new(MemConfig::default(), 2);
        for i in 0..n {
            mem.data_mut().store_u32(BASE + 4 * i, (i % 100) as u32 + 1);
        }
        TenantJob::new(p, st, mem)
    }

    fn expected_sum(n: u64) -> u64 {
        (0..n).map(|i| u64::from((i % 100) as u32 + 1)).sum::<u64>() & 0xFFFF_FFFF
    }

    #[test]
    fn two_tenants_share_the_grid_on_disjoint_aligned_bands() {
        let system = SystemConfig::m128();
        let mut jobs = vec![sum_job(2000), sum_job(3000)];
        let reports = run_tenants(&system, &mut jobs, 200, 0);
        assert_eq!(reports.len(), 2);
        let a = reports[0].as_ref().unwrap();
        let b = reports[1].as_ref().unwrap();
        let (ra, rb) = (a.fabric_region.unwrap(), b.fabric_region.unwrap());
        assert!(ra.is_aligned() && rb.is_aligned());
        assert!(!ra.overlaps(&rb), "bands must be disjoint: {ra} vs {rb}");
        assert_eq!(a.tenant, 0);
        assert_eq!(b.tenant, 1);
        assert!(a.accel_iterations > 0 && b.accel_iterations > 0);
        // Both tenants' architectural results are correct.
        assert_eq!(jobs[0].state.read(T1) as u32 as u64, expected_sum(2000));
        assert_eq!(jobs[1].state.read(T1) as u32 as u64, expected_sum(3000));
        assert_eq!(jobs[0].state.pc, a.region.1);
    }

    #[test]
    fn migration_mid_episode_is_architecturally_invisible() {
        let system = SystemConfig::m128();
        let mut solo = vec![sum_job(2500)];
        let solo_reports = run_tenants(&system, &mut solo, 150, 0);
        let solo_report = solo_reports[0].as_ref().unwrap();

        let mut moved = vec![sum_job(2500)];
        let moved_reports = run_tenants(&system, &mut moved, 150, 2);
        let moved_report = moved_reports[0].as_ref().unwrap();

        assert!(moved_report.migrations > 0, "migrate_every=2 must actually migrate");
        assert_eq!(solo_report.accel_iterations, moved_report.accel_iterations);
        assert_eq!(solo_report.accel_cycles, moved_report.accel_cycles);
        assert_eq!(solo[0].state.read(T1), moved[0].state.read(T1));
        assert_eq!(solo[0].state.read(A0), moved[0].state.read(A0));
        assert_eq!(solo[0].state.pc, moved[0].state.pc);
        assert_eq!(solo[0].state.read(T1) as u32 as u64, expected_sum(2500));
    }

    #[test]
    fn fleet_stats_conserve_occupancy_and_validate() {
        let system = SystemConfig::m128();
        let mut jobs = vec![sum_job(2000), sum_job(3000)];
        let run = run_tenants_fleet(&system, &mut jobs, 200, 2, &mut NullTracer);
        assert!(run.outcomes.iter().all(Result::is_ok));
        let s = &run.stats;
        assert_eq!(s.runs, 1);
        assert_eq!(s.bands, system.accel.grid().rows / REGION_ROW_ALIGN);
        assert!(s.elapsed_cycles > 0);
        // Exact occupancy conservation: every slice marks each band slot
        // either busy or idle.
        let busy: u64 = s.band_busy.iter().sum();
        let idle: u64 = s.band_idle.iter().sum();
        assert_eq!(busy + idle, s.elapsed_cycles * s.bands as u64);
        assert_eq!(s.admitted_full, 2);
        assert_eq!(s.declined, 0);
        assert!(s.migrations > 0, "migrate_every=2 must migrate");
        assert_eq!(s.queue_wait.count(), 2, "one observation per placement");
        assert!(s.slice_cycles.count() >= 2);
        assert_eq!(s.migration_cycles.count(), s.migrations);
        assert_eq!(s.tenants.len(), 2);
        assert!(s.tenants.iter().all(|t| t.state == "done"));
        assert!(s.tenants.iter().all(|t| t.cycles > 0 && t.iterations > 0));
        // Per-tenant checkpoint cost shows up in the report too.
        let r0 = run.outcomes[0].as_ref().unwrap();
        assert_eq!(
            r0.checkpoint_cycles,
            s.tenants[0].checkpoint_cycles,
            "report and stats agree on migration cost"
        );
        assert!(r0.migrations == 0 || r0.checkpoint_cycles > 0);
        // The JSON export is well-formed and monotone in its quantiles.
        let json = s.to_json();
        assert!(json.starts_with("{\"schema\":\"mesa.fleetstats/v1\""));
        mesa_trace::validate_json(&json).expect("fleetstats JSON parses");
        // No faults, no declines: no post-mortem.
        assert!(run.post_mortem.is_none());
        assert!(!run.flight.is_empty(), "flight recorder is always on");
    }

    #[test]
    fn fleet_stats_merge_preserves_conservation() {
        let system = SystemConfig::m128();
        let mut a_jobs = vec![sum_job(1500)];
        let a = run_tenants_fleet(&system, &mut a_jobs, 150, 0, &mut NullTracer).stats;
        let mut b_jobs = vec![sum_job(2500), sum_job(1000)];
        let b = run_tenants_fleet(&system, &mut b_jobs, 150, 0, &mut NullTracer).stats;
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.runs, 2);
        assert_eq!(merged.elapsed_cycles, a.elapsed_cycles + b.elapsed_cycles);
        let busy: u64 = merged.band_busy.iter().sum();
        let idle: u64 = merged.band_idle.iter().sum();
        assert_eq!(busy + idle, merged.elapsed_cycles * merged.bands as u64);
        assert_eq!(merged.tenants.len(), 3);
        assert_eq!(merged.slice_cycles.count(), a.slice_cycles.count() + b.slice_cycles.count());
        mesa_trace::validate_json(&merged.to_json()).expect("merged fleetstats JSON parses");
    }

    #[test]
    fn region_held_spans_are_balanced_per_tenant() {
        let system = SystemConfig::m128();
        let mut jobs = vec![sum_job(2000), sum_job(1500)];
        let mut tracer = mesa_trace::RingTracer::new(8192);
        let _ = run_tenants_traced(&system, &mut jobs, 150, 2, &mut tracer);
        assert!(tracer.open_spans().is_empty(), "every region_held span must close");
        let chrome = tracer.to_chrome_trace();
        assert!(
            chrome.contains("region_held@r"),
            "band residency must appear in the trace"
        );
        mesa_trace::validate_chrome_trace(&chrome).expect("trace validates");
    }

    #[test]
    fn checkpoint_roundtrips_and_corruption_is_declined() {
        let system = SystemConfig::m128();
        let mut job = sum_job(4000);
        let mut ctl = MesaController::new(system.clone());
        let mut cpu = OoOCore::new(system.core);
        let ep = ctl
            .prepare_episode(
                &job.program,
                &mut job.state,
                &mut job.mem,
                &mut cpu,
                &mut NullTracer,
            )
            .unwrap();
        let mut manager = FabricManager::new(system.accel);
        let (id, admission) = manager
            .admit(ep.accel_prog.clone(), job.state.clone(), FaultPlan::none(), u64::MAX)
            .unwrap();
        assert!(matches!(admission, Admission::Admitted(_)));

        // Not paused yet: nothing to checkpoint.
        assert_eq!(manager.checkpoint(id), Err(FabricError::NotPaused(id)));

        let p = manager
            .advance(id, &mut job.mem, 1, 100, &mut NullTracer, 0)
            .unwrap();
        assert!(matches!(p, TenantProgress::Paused(_)), "quantum must freeze: {p:?}");

        let words = manager.checkpoint(id).unwrap();
        // Roundtrip restores cleanly.
        manager.restore(id, &words).unwrap();
        // Truncation and corruption decline with typed errors.
        assert!(matches!(
            manager.restore(id, &words[..words.len() - 3]),
            Err(FabricError::Snapshot(_))
        ));
        let mut bad = words.clone();
        bad[2] ^= 1;
        assert!(matches!(manager.restore(id, &bad), Err(FabricError::Snapshot(_))));

        // Migrating the frozen tenant to a busy/misaligned target fails.
        let region = manager.region(id).unwrap();
        assert!(matches!(
            manager.migrate(id, region.first_row + 1, &mut NullTracer),
            Err(FabricError::RegionMisaligned(_))
        ));
        // And to a proper free band succeeds, then completes correctly.
        let target = manager.migration_target(id).unwrap();
        let new = manager.migrate(id, target, &mut NullTracer).unwrap();
        assert_ne!(new.first_row, region.first_row);
        let p = manager
            .advance(id, &mut job.mem, 1, u64::MAX, &mut NullTracer, 0)
            .unwrap();
        assert!(matches!(p, TenantProgress::Completed(_)));
        assert_eq!(manager.migrations(id), 1);
    }
}
