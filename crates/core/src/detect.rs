//! Code region detection — conditions C1, C2, C3 of paper §4.1.
//!
//! C1 (valid loop): the loop-stream detector found a stable backward
//! branch and the region fits the accelerator (and hence the trace cache).
//! C2 (control check): every instruction is executable on the target —
//! no system instructions, no indirect or pc-relative operations, no inner
//! loops or region-exiting branches, no operation classes the backend
//! lacks. C3 (instruction mix): enough compute relative to loop size, and
//! an expected trip count high enough to amortize the configuration cost
//! (the paper's evaluation puts break-even around 50–100 iterations).

use crate::{BuildError, Ldfg};
use mesa_accel::AccelConfig;
use mesa_isa::{ArchState, Opcode, Program, Xlen};
use std::fmt;

/// Detection thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectConfig {
    /// Consecutive iterations before the LSD reports a loop.
    pub lsd_threshold: u64,
    /// Minimum expected trip count to consider offloading profitable (C3).
    pub min_expected_iterations: u64,
    /// Minimum fraction of compute (non-control) instructions (C3).
    pub min_compute_fraction: f64,
    /// Register width of the accelerator (RV64 ops are rejected on a
    /// 32-bit backend, one of the paper's C2 examples).
    pub accel_xlen: Xlen,
}

impl Default for DetectConfig {
    fn default() -> Self {
        DetectConfig {
            lsd_threshold: 3,
            min_expected_iterations: 50,
            min_compute_fraction: 0.25,
            accel_xlen: Xlen::Rv32,
        }
    }
}

/// Why a candidate loop was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum RejectReason {
    /// C1: the loop body exceeds the accelerator/trace-cache capacity.
    TooLarge {
        /// Instructions in the region.
        len: usize,
        /// Maximum supported.
        max: usize,
    },
    /// C2: an instruction the backend cannot execute.
    UnsupportedInstruction {
        /// Its address.
        pc: u64,
        /// Human-readable reason.
        reason: &'static str,
    },
    /// C2: structural problem found while building the LDFG.
    Structure(BuildError),
    /// C3: not enough compute relative to loop size.
    PoorMix {
        /// Observed compute fraction.
        compute_fraction: f64,
    },
    /// C3: the loop is not expected to run long enough to amortize
    /// configuration.
    TooFewIterations {
        /// Expected remaining trip count.
        expected: u64,
    },
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::TooLarge { len, max } => {
                write!(f, "C1: region of {len} instructions exceeds capacity {max}")
            }
            RejectReason::UnsupportedInstruction { pc, reason } => {
                write!(f, "C2: unsupported instruction at {pc:#x}: {reason}")
            }
            RejectReason::Structure(e) => write!(f, "C2: {e}"),
            RejectReason::PoorMix { compute_fraction } => {
                write!(f, "C3: compute fraction {compute_fraction:.2} too low")
            }
            RejectReason::TooFewIterations { expected } => {
                write!(f, "C3: expected {expected} iterations will not amortize configuration")
            }
        }
    }
}

/// A region that passed C1–C3.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectedRegion {
    /// The region's instructions rebased at its start PC.
    pub region: Program,
    /// Its LDFG.
    pub ldfg: Ldfg,
    /// Expected remaining trip count (from the branch condition and
    /// current register values, §4.1).
    pub expected_iterations: u64,
}

/// Checks C2 for one instruction.
fn instruction_supported(op: Opcode, accel_xlen: Xlen) -> Result<(), &'static str> {
    if op.is_system() {
        return Err("system instruction");
    }
    if op.is_jump() {
        return Err("jump (indirect or call) inside loop body");
    }
    if op == Opcode::Auipc {
        return Err("pc-relative address generation");
    }
    if op.is_three_source() {
        return Err("three-source operation exceeds the DFG's two-predecessor model");
    }
    if accel_xlen == Xlen::Rv32 && op.is_rv64_only() {
        return Err("64-bit operation on a 32-bit accelerator");
    }
    Ok(())
}

/// Estimates the remaining trip count from the loop-closing branch: when
/// the branch compares an induction register against a loop-invariant
/// bound, the count is computable from the current register values ("MESA
/// makes an estimate of the loop's expected iteration count based on the
/// branch condition and PC trace").
#[must_use]
pub fn estimate_trip_count(ldfg: &Ldfg, state: &ArchState) -> Option<u64> {
    let branch = &ldfg.nodes[ldfg.loop_branch as usize];
    let induction = ldfg.induction_nodes();

    // Identify which branch operand is the induction register and which is
    // the invariant bound.
    let mut ind_step: Option<(mesa_isa::Reg, i64)> = None;
    let mut bound: Option<mesa_isa::Reg> = None;
    for (slot, src) in branch.src.iter().enumerate() {
        match *src {
            mesa_accel::Operand::Node { idx, .. } if induction.contains(&idx) => {
                let n = &ldfg.nodes[idx as usize];
                let reg = branch.instr.sources()[slot]?;
                ind_step = Some((reg, n.instr.imm));
            }
            mesa_accel::Operand::InitReg(r) => bound = Some(r),
            _ => {}
        }
    }
    let ((ind_reg, step), bound_reg) = (ind_step?, bound?);
    if step == 0 {
        return None;
    }
    let cur = state.read(ind_reg) as i64;
    let limit = state.read(bound_reg) as i64;
    let remaining = match branch.instr.op {
        Opcode::Bne | Opcode::Blt | Opcode::Bltu if step > 0 => (limit - cur).max(0) / step,
        Opcode::Bne | Opcode::Bge | Opcode::Bgeu if step < 0 => (cur - limit).max(0) / -step,
        _ => return None,
    };
    Some(remaining as u64)
}

/// Runs the full C1–C3 check on a candidate loop region.
///
/// `program` is the full program image (trace-cache backing), `start_pc`
/// and `end_pc` delimit the loop (from the LSD), `state` is the CPU's
/// architectural state at a loop-entry boundary, and `observed_iterations`
/// is how many iterations the LSD has already counted.
///
/// # Errors
/// Returns the first failing condition.
pub fn check_region(
    program: &Program,
    start_pc: u64,
    end_pc: u64,
    state: &ArchState,
    observed_iterations: u64,
    accel: &AccelConfig,
    cfg: &DetectConfig,
) -> Result<DetectedRegion, RejectReason> {
    // C1: structural size bound. An inverted region (end before start —
    // only reachable from corrupted detector state) is rejected like an
    // oversized one rather than wrapping to a huge length.
    let span = end_pc.checked_sub(start_pc).unwrap_or(u64::MAX);
    let len = usize::try_from(span / 4).unwrap_or(usize::MAX);
    if len > accel.max_instrs() {
        return Err(RejectReason::TooLarge { len, max: accel.max_instrs() });
    }

    // Slice the region out of the program image.
    let mut instrs = Vec::with_capacity(len);
    for i in 0..len {
        let pc = start_pc + 4 * i as u64;
        match program.fetch(pc) {
            Some(instr) => instrs.push(*instr),
            None => {
                return Err(RejectReason::UnsupportedInstruction {
                    pc,
                    reason: "instruction outside program image",
                })
            }
        }
    }
    let region = Program { base_pc: start_pc, instrs, annotations: program.annotations.clone() };

    // C2: per-instruction support.
    for (i, instr) in region.instrs.iter().enumerate() {
        if let Err(reason) = instruction_supported(instr.op, cfg.accel_xlen) {
            return Err(RejectReason::UnsupportedInstruction {
                pc: start_pc + 4 * i as u64,
                reason,
            });
        }
    }

    // C2: structure (inner loops, escaping branches) via the LDFG builder.
    let ldfg = Ldfg::build(&region).map_err(RejectReason::Structure)?;

    // C3: instruction mix.
    let (compute, memory, control) = ldfg.instruction_mix();
    let total = (compute + memory + control).max(1);
    let compute_fraction = compute as f64 / total as f64;
    if compute_fraction < cfg.min_compute_fraction {
        return Err(RejectReason::PoorMix { compute_fraction });
    }

    // C3: expected iterations. Prefer the analytic estimate; fall back to
    // extrapolating from what the LSD observed.
    let expected = estimate_trip_count(&ldfg, state)
        .unwrap_or(observed_iterations.saturating_mul(4));
    if expected < cfg.min_expected_iterations {
        return Err(RejectReason::TooFewIterations { expected });
    }

    Ok(DetectedRegion { region, ldfg, expected_iterations: expected })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesa_isa::Asm;
    use mesa_isa::reg::abi::*;

    fn sum_program() -> Program {
        let mut a = Asm::new(0x1000);
        a.label("loop");
        a.lw(T0, A0, 0);
        a.add(T1, T1, T0);
        a.addi(A0, A0, 4);
        a.bne(A0, A1, "loop");
        a.finish().unwrap()
    }

    fn entry_state(n_iters: u64) -> ArchState {
        let mut st = ArchState::new(0x1000, Xlen::Rv32);
        st.write(A0, 0x10000);
        st.write(A1, 0x10000 + 4 * n_iters);
        st
    }

    #[test]
    fn accepts_good_loop() {
        let p = sum_program();
        let st = entry_state(1000);
        let d = check_region(
            &p,
            0x1000,
            0x1010,
            &st,
            4,
            &AccelConfig::m128(),
            &DetectConfig::default(),
        )
        .unwrap();
        assert_eq!(d.ldfg.len(), 4);
        assert_eq!(d.expected_iterations, 1000);
    }

    #[test]
    fn inverted_region_rejects_as_too_large_instead_of_wrapping() {
        // `end_pc < start_pc` is only reachable from corrupted detector
        // state; the span must saturate and reject as C1 rather than
        // wrapping the subtraction into a near-2^64 region length.
        let p = sum_program();
        let st = entry_state(8);
        let err = check_region(
            &p,
            0x1010,
            0x1000,
            &st,
            4,
            &AccelConfig::m128(),
            &DetectConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, RejectReason::TooLarge { .. }));
    }

    #[test]
    fn c1_rejects_oversized_region() {
        let mut a = Asm::new(0x1000);
        a.label("loop");
        for _ in 0..200 {
            a.addi(T0, T0, 1);
        }
        a.bne(T0, A1, "loop");
        let p = a.finish().unwrap();
        let st = ArchState::new(0x1000, Xlen::Rv32);
        let err = check_region(
            &p,
            0x1000,
            p.end_pc(),
            &st,
            4,
            &AccelConfig::m64(), // only 64 PEs
            &DetectConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, RejectReason::TooLarge { len: 201, max: 64 }));
    }

    #[test]
    fn c2_rejects_syscall() {
        let mut a = Asm::new(0x1000);
        a.label("loop");
        a.addi(T0, T0, 1);
        a.ecall();
        a.addi(T1, T1, 1);
        a.addi(T2, T2, 1);
        a.bne(T0, A1, "loop");
        let p = a.finish().unwrap();
        let st = ArchState::new(0x1000, Xlen::Rv32);
        let err = check_region(
            &p, 0x1000, p.end_pc(), &st, 4,
            &AccelConfig::m128(), &DetectConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            RejectReason::UnsupportedInstruction { pc: 0x1004, .. }
        ));
    }

    #[test]
    fn c2_rejects_rv64_ops_on_32bit_accel() {
        let mut a = Asm::new(0x1000);
        a.label("loop");
        a.addw(T0, T0, T1);
        a.addi(T2, T2, 1);
        a.addi(T3, T3, 1);
        a.bne(T0, A1, "loop");
        let p = a.finish().unwrap();
        let st = ArchState::new(0x1000, Xlen::Rv64);
        let err = check_region(
            &p, 0x1000, p.end_pc(), &st, 4,
            &AccelConfig::m128(), &DetectConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, RejectReason::UnsupportedInstruction { .. }));

        // But acceptable on a 64-bit backend (given enough iterations).
        let cfg64 = DetectConfig { accel_xlen: Xlen::Rv64, ..Default::default() };
        let mut st = ArchState::new(0x1000, Xlen::Rv64);
        st.write(A1, 10_000);
        let r = check_region(&p, 0x1000, p.end_pc(), &st, 100, &AccelConfig::m128(), &cfg64);
        assert!(r.is_ok(), "{r:?}");
    }

    #[test]
    fn c2_rejects_inner_loop() {
        let mut a = Asm::new(0x1000);
        a.label("outer");
        a.addi(T0, T0, 1);
        a.label("inner");
        a.addi(T1, T1, 1);
        a.bne(T1, A0, "inner");
        a.bne(T0, A1, "outer");
        let p = a.finish().unwrap();
        let st = ArchState::new(0x1000, Xlen::Rv32);
        let err = check_region(
            &p, 0x1000, p.end_pc(), &st, 4,
            &AccelConfig::m128(), &DetectConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, RejectReason::Structure(BuildError::InnerLoop { .. })));
    }

    #[test]
    fn c3_rejects_control_heavy_mix() {
        // A loop that is almost all forward branches (control).
        let mut a = Asm::new(0x1000);
        a.label("loop");
        a.beq(T0, T1, "l1");
        a.label("l1");
        a.beq(T0, T2, "l2");
        a.label("l2");
        a.beq(T0, T3, "l3");
        a.label("l3");
        a.addi(T0, T0, 1);
        a.bne(T0, A1, "loop");
        let p = a.finish().unwrap();
        let mut st = ArchState::new(0x1000, Xlen::Rv32);
        st.write(A1, 10_000);
        let cfg = DetectConfig { min_compute_fraction: 0.5, ..Default::default() };
        let err = check_region(&p, 0x1000, p.end_pc(), &st, 100, &AccelConfig::m128(), &cfg)
            .unwrap_err();
        assert!(matches!(err, RejectReason::PoorMix { .. }));
    }

    #[test]
    fn c3_rejects_short_trip_count() {
        let p = sum_program();
        let st = entry_state(10); // only 10 iterations remain
        let err = check_region(
            &p, 0x1000, 0x1010, &st, 4,
            &AccelConfig::m128(), &DetectConfig::default(),
        )
        .unwrap_err();
        assert_eq!(err, RejectReason::TooFewIterations { expected: 10 });
    }

    #[test]
    fn trip_count_estimation_bne_upcount() {
        let p = sum_program();
        let ldfg = Ldfg::build(&Program {
            base_pc: 0x1000,
            instrs: p.instrs.clone(),
            annotations: vec![],
        })
        .unwrap();
        let st = entry_state(250);
        assert_eq!(estimate_trip_count(&ldfg, &st), Some(250));
    }

    #[test]
    fn trip_count_estimation_downcount() {
        let mut a = Asm::new(0x1000);
        a.label("loop");
        a.add(T1, T1, T0);
        a.addi(T0, T0, -1);
        a.bne(T0, A1, "loop"); // counts down to a1
        let p = a.finish().unwrap();
        let ldfg = Ldfg::build(&p).unwrap();
        let mut st = ArchState::new(0x1000, Xlen::Rv32);
        st.write(T0, 100);
        st.write(A1, 0);
        assert_eq!(estimate_trip_count(&ldfg, &st), Some(100));
    }

    #[test]
    fn trip_count_unknown_for_data_dependent_exit() {
        // Exit depends on loaded data: not estimable.
        let mut a = Asm::new(0x1000);
        a.label("loop");
        a.lw(T0, A0, 0);
        a.addi(A0, A0, 4);
        a.bne(T0, ZERO, "loop");
        let p = a.finish().unwrap();
        let ldfg = Ldfg::build(&p).unwrap();
        let st = ArchState::new(0x1000, Xlen::Rv32);
        assert_eq!(estimate_trip_count(&ldfg, &st), None);
    }
}
