//! Configuration generation — task T3 of paper §3: turning the optimized
//! SDFG into the accelerator's configuration, plus the loop-level
//! optimizations (tiling by subgraph duplication and pipelining, §4.3) and
//! the configuration cache for re-encountered loops.

use crate::{Ldfg, MemOptPlan, Sdfg};
use mesa_accel::{AccelConfig, AccelProgram, NodeConfig, Operand};
use mesa_isa::{Opcode, ParallelKind};
use std::collections::HashMap;

/// Which optimizations the controller applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptFlags {
    /// Store→load forwarding, vectorization, prefetching (§4.2).
    pub memory_opts: bool,
    /// Spatial tiling of annotated parallel loops (§4.3, Fig. 6).
    pub tiling: bool,
    /// Loop pipelining of annotated parallel loops (§4.3).
    pub pipelining: bool,
    /// Iterative runtime re-optimization from performance counters.
    pub iterative: bool,
    /// Iterations to profile between optimization attempts.
    pub opt_interval: u64,
    /// Maximum reconfigurations per region.
    pub max_reconfigs: u32,
    /// Upper bound on tile instances.
    pub max_tiles: usize,
}

impl Default for OptFlags {
    fn default() -> Self {
        OptFlags {
            memory_opts: true,
            tiling: true,
            pipelining: true,
            iterative: true,
            opt_interval: 32,
            max_reconfigs: 3,
            max_tiles: 16,
        }
    }
}

impl OptFlags {
    /// Everything off — the "no optimizations" configuration used for the
    /// OpenCGRA scheduling-only comparison (Fig. 12).
    #[must_use]
    pub fn none() -> Self {
        OptFlags {
            memory_opts: false,
            tiling: false,
            pipelining: false,
            iterative: false,
            opt_interval: 32,
            max_reconfigs: 0,
            max_tiles: 1,
        }
    }
}

/// Determines whether the loop-closing branch tolerates tile striding, and
/// whether it needs rewriting.
///
/// Each tile's induction cursor advances `tiles × stride` per iteration
/// from a per-tile offset, so an equality exit (`bne cursor, bound`) would
/// step *over* the bound on every tile but the first and never terminate.
/// Inequality exits (`bltu`/`blt` with a positive stride) are naturally
/// robust; a `bne` over a monotonically increasing induction register is
/// semantically equivalent to `bltu` and is rewritten during subgraph
/// duplication. Anything else refuses tiling.
///
/// Returns `None` when the branch cannot tolerate striding, `Some(None)`
/// when it already can, and `Some(Some(op))` when the branch must be
/// rewritten to `op`.
#[must_use]
pub fn tiling_branch_rewrite(ldfg: &Ldfg) -> Option<Option<Opcode>> {
    let branch = &ldfg.nodes[ldfg.loop_branch as usize];
    let induction = ldfg.induction_nodes();
    let step = match branch.src[0] {
        Operand::Node { idx, .. } if induction.contains(&idx) => {
            ldfg.nodes[idx as usize].instr.imm
        }
        _ => return None,
    };
    if step <= 0 {
        return None;
    }
    match branch.instr.op {
        Opcode::Bltu | Opcode::Blt => Some(None),
        Opcode::Bne => Some(Some(Opcode::Bltu)),
        _ => None,
    }
}

/// Chooses the tile count for an annotated parallel region.
///
/// Tiling requires every loop-carried register to be an induction update
/// (otherwise iterations are not independent) and a stride-tolerant loop
/// branch; the count is bounded by grid capacity, remaining iterations,
/// and the configured cap.
#[must_use]
pub fn choose_tiles(
    ldfg: &Ldfg,
    sdfg: &Sdfg,
    annotation: Option<ParallelKind>,
    accel: &AccelConfig,
    flags: &OptFlags,
    expected_iterations: u64,
) -> usize {
    if !flags.tiling
        || annotation.is_none()
        || !ldfg.carried_regs_are_induction()
        || tiling_branch_rewrite(ldfg).is_none()
    {
        return 1;
    }
    let max_row = sdfg
        .placement
        .iter()
        .flatten()
        .map(|c| c.row)
        .max()
        .unwrap_or(0);
    let rows_per_tile = (max_row + 1).next_multiple_of(4);
    let fit = (accel.rows / rows_per_tile).max(1);
    // Don't tile beyond the point where each tile has a healthy slice of
    // iterations to amortize its pipeline fill.
    let useful = (expected_iterations / 16).max(1) as usize;
    fit.min(useful).min(flags.max_tiles).max(1)
}

/// Builds the accelerator configuration from the mapped region.
///
/// The LDFG supplies dependency structure (and therefore memory ordering),
/// the SDFG supplies placements, the [`MemOptPlan`] supplies memory
/// optimization flags, and the annotation (if any) enables the loop-level
/// optimizations.
#[must_use]
pub fn build_accel_program(
    ldfg: &Ldfg,
    sdfg: &Sdfg,
    plan: Option<&MemOptPlan>,
    annotation: Option<ParallelKind>,
    accel: &AccelConfig,
    flags: &OptFlags,
    expected_iterations: u64,
) -> AccelProgram {
    let tiles = choose_tiles(ldfg, sdfg, annotation, accel, flags, expected_iterations);
    let induction = ldfg.induction_nodes();
    let branch_rewrite = if tiles > 1 {
        tiling_branch_rewrite(ldfg).flatten()
    } else {
        None
    };

    let nodes = ldfg
        .nodes
        .iter()
        .enumerate()
        .map(|(i, n)| {
            let mut instr = n.instr;
            if i as u32 == ldfg.loop_branch {
                if let Some(op) = branch_rewrite {
                    instr.op = op;
                }
            }
            let mut node = NodeConfig::new(n.pc, instr, sdfg.placement[i], n.src);
            node.hidden = n.hidden;
            node.guards = n.guards.clone();
            node.scale_imm_by_tiles = tiles > 1 && induction.contains(&(i as u32));
            if let Some(plan) = plan.filter(|_| flags.memory_opts) {
                node.forwarded_from = plan
                    .forwards
                    .iter()
                    .find(|&&(l, _)| l == i as u32)
                    .map(|&(_, s)| s);
                node.vector_head = plan
                    .vector_groups
                    .iter()
                    .find(|&&(m, _)| m == i as u32)
                    .map(|&(_, h)| h);
                node.prefetched = plan.prefetchable.contains(&(i as u32));
            }
            node
        })
        .collect();

    AccelProgram {
        start_pc: ldfg.start_pc,
        end_pc: ldfg.end_pc,
        nodes,
        loop_branch: ldfg.loop_branch,
        live_out: ldfg.live_out.clone(),
        tiles,
        pipelined: flags.pipelining && annotation.is_some(),
    }
}

/// The configuration cache: finished configurations for loops that may be
/// re-encountered (paper §4.3), keyed by the loop's PC range.
#[derive(Debug, Clone, Default)]
pub struct ConfigCache {
    entries: HashMap<(u64, u64), AccelProgram>,
}

impl ConfigCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up a configuration for the loop at `[start_pc, end_pc)`.
    #[must_use]
    pub fn get(&self, start_pc: u64, end_pc: u64) -> Option<&AccelProgram> {
        self.entries.get(&(start_pc, end_pc))
    }

    /// Stores a configuration, replacing any previous one for the range.
    pub fn insert(&mut self, program: AccelProgram) {
        self.entries.insert((program.start_pc, program.end_pc), program);
    }

    /// Number of cached configurations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops everything (e.g. on context switch to another process).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{map_instructions, memopt, MapperConfig};
    use mesa_accel::{Coord, HalfRingModel};
    use mesa_isa::{Asm, OpClass};
    use mesa_isa::reg::abi::*;

    fn copy_kernel_ldfg() -> Ldfg {
        // Pure-induction copy loop: tileable.
        let mut a = Asm::new(0x1000);
        a.label("loop");
        a.lw(T0, A0, 0);
        a.sw(T0, A2, 0);
        a.addi(A0, A0, 4);
        a.addi(A2, A2, 4);
        a.bne(A0, A1, "loop");
        Ldfg::build(&a.finish().unwrap()).unwrap()
    }

    fn map(ldfg: &Ldfg, accel: &AccelConfig) -> Sdfg {
        let supports = |c: Coord, class: OpClass| accel.supports(c, class);
        map_instructions(
            ldfg,
            accel.grid(),
            &supports,
            &HalfRingModel::default(),
            &MapperConfig::default(),
        )
    }

    #[test]
    fn builds_valid_program() {
        let ldfg = copy_kernel_ldfg();
        let accel = AccelConfig::m128();
        let sdfg = map(&ldfg, &accel);
        let plan = memopt::analyze(&ldfg);
        let prog = build_accel_program(
            &ldfg,
            &sdfg,
            Some(&plan),
            None,
            &accel,
            &OptFlags::default(),
            1000,
        );
        prog.validate(accel.grid()).unwrap();
        assert_eq!(prog.tiles, 1, "no annotation → no tiling");
        assert!(!prog.pipelined);
    }

    #[test]
    fn annotation_enables_tiling_and_pipelining() {
        let ldfg = copy_kernel_ldfg();
        let accel = AccelConfig::m128();
        let sdfg = map(&ldfg, &accel);
        let prog = build_accel_program(
            &ldfg,
            &sdfg,
            None,
            Some(ParallelKind::Parallel),
            &accel,
            &OptFlags::default(),
            10_000,
        );
        prog.validate(accel.grid()).unwrap();
        assert!(prog.tiles > 1, "parallel annotation tiles the grid");
        assert!(prog.pipelined);
        // Induction nodes got their stride scaled.
        assert!(prog.nodes[2].scale_imm_by_tiles);
        assert!(prog.nodes[3].scale_imm_by_tiles);
        assert!(!prog.nodes[0].scale_imm_by_tiles);
    }

    #[test]
    fn reduction_loop_refuses_tiling() {
        // sum += a[i]: t1 is carried but not induction.
        let mut a = Asm::new(0x1000);
        a.label("loop");
        a.lw(T0, A0, 0);
        a.add(T1, T1, T0);
        a.addi(A0, A0, 4);
        a.bne(A0, A1, "loop");
        let ldfg = Ldfg::build(&a.finish().unwrap()).unwrap();
        let accel = AccelConfig::m128();
        let sdfg = map(&ldfg, &accel);
        let tiles = choose_tiles(
            &ldfg,
            &sdfg,
            Some(ParallelKind::Parallel),
            &accel,
            &OptFlags::default(),
            10_000,
        );
        assert_eq!(tiles, 1, "register reduction cannot tile");
    }

    #[test]
    fn short_loops_tile_less() {
        let ldfg = copy_kernel_ldfg();
        let accel = AccelConfig::m512();
        let sdfg = map(&ldfg, &accel);
        let flags = OptFlags::default();
        let long = choose_tiles(&ldfg, &sdfg, Some(ParallelKind::Simd), &accel, &flags, 100_000);
        let short = choose_tiles(&ldfg, &sdfg, Some(ParallelKind::Simd), &accel, &flags, 48);
        assert!(long > short);
        assert!(short >= 1);
    }

    #[test]
    fn opt_flags_none_disables_everything() {
        let ldfg = copy_kernel_ldfg();
        let accel = AccelConfig::m128();
        let sdfg = map(&ldfg, &accel);
        let plan = memopt::analyze(&ldfg);
        let prog = build_accel_program(
            &ldfg,
            &sdfg,
            Some(&plan),
            Some(ParallelKind::Parallel),
            &accel,
            &OptFlags::none(),
            10_000,
        );
        assert_eq!(prog.tiles, 1);
        assert!(!prog.pipelined);
        assert!(prog.nodes.iter().all(|n| !n.prefetched && n.forwarded_from.is_none()));
    }


    #[test]
    fn bne_loop_branch_rewritten_for_tiling() {
        // A `bne`-bounded induction loop would never terminate under tile
        // striding; MESA rewrites the exit to `bltu` when duplicating.
        let mut a = Asm::new(0x1000);
        a.label("loop");
        a.lw(T0, A0, 0);
        a.sw(T0, A2, 0);
        a.addi(A0, A0, 4);
        a.addi(A2, A2, 4);
        a.bne(A0, A1, "loop");
        let ldfg = Ldfg::build(&a.finish().unwrap()).unwrap();
        assert_eq!(tiling_branch_rewrite(&ldfg), Some(Some(mesa_isa::Opcode::Bltu)));

        let accel = AccelConfig::m128();
        let sdfg = map(&ldfg, &accel);
        let prog = build_accel_program(
            &ldfg, &sdfg, None, Some(ParallelKind::Parallel), &accel,
            &OptFlags::default(), 10_000,
        );
        assert!(prog.tiles > 1);
        let lb = &prog.nodes[prog.loop_branch as usize];
        assert_eq!(lb.instr.op, mesa_isa::Opcode::Bltu, "exit rewritten");
    }

    #[test]
    fn equality_bounded_negative_stride_refuses_tiling() {
        // Down-counting bne loop: rewriting to bltu would be wrong, so
        // tiling is refused entirely.
        let mut a = Asm::new(0x1000);
        a.label("loop");
        a.sw(T0, A0, 0);
        a.addi(A0, A0, -4);
        a.bne(A0, A1, "loop");
        let ldfg = Ldfg::build(&a.finish().unwrap()).unwrap();
        assert_eq!(tiling_branch_rewrite(&ldfg), None);
        let accel = AccelConfig::m128();
        let sdfg = map(&ldfg, &accel);
        let tiles = choose_tiles(
            &ldfg, &sdfg, Some(ParallelKind::Parallel), &accel,
            &OptFlags::default(), 10_000,
        );
        assert_eq!(tiles, 1);
    }

    #[test]
    fn config_cache_roundtrip() {
        let ldfg = copy_kernel_ldfg();
        let accel = AccelConfig::m128();
        let sdfg = map(&ldfg, &accel);
        let prog =
            build_accel_program(&ldfg, &sdfg, None, None, &accel, &OptFlags::default(), 1000);
        let mut cache = ConfigCache::new();
        assert!(cache.get(0x1000, 0x1014).is_none());
        cache.insert(prog.clone());
        assert_eq!(cache.get(0x1000, 0x1014), Some(&prog));
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
    }
}
