//! Cycle accounting for MESA's hardware pipeline: LDFG build, the `imap`
//! instruction-mapping state machine (paper Fig. 8), and configuration
//! writes.
//!
//! The paper's timing diagram gives the `imap` FSM one state per task of
//! Algorithm 1 — instruction fetch, candidate generation, masking/filter,
//! latency evaluation, reduction (argmin), and writeback — where every
//! state is a constant number of cycles except the reduction, whose depth
//! depends on the candidate matrix dimensions. The totals land in the
//! 10³–10⁴-cycle range reported in Table 2 ("JIT (ns-µs)").

use crate::MapperConfig;
use mesa_trace::{Subsystem, Tracer};

/// Per-stage cycle counts of the `imap` FSM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImapTiming {
    /// Read the next instruction from the LDFG.
    pub fetch: u64,
    /// Generate the candidate matrix `C_i`.
    pub gen_candidates: u64,
    /// Apply the `F_free ⊙ F_op` masks.
    pub filter: u64,
    /// Evaluate the latency matrix `l(C_i)` (parallel in hardware).
    pub latency_eval: u64,
    /// Write the chosen position to the SDFG.
    pub writeback: u64,
    /// Cycles per instruction to rename and insert into the LDFG.
    pub ldfg_per_instr: u64,
    /// Cycles to stream one node's operation + routing bits to the
    /// accelerator during configuration.
    pub config_write_per_node: u64,
    /// Fixed cost of a control transfer (architectural state shuttle +
    /// pipeline drain, §5.1).
    pub control_transfer: u64,
}

impl Default for ImapTiming {
    fn default() -> Self {
        ImapTiming {
            fetch: 1,
            gen_candidates: 1,
            filter: 1,
            latency_eval: 1,
            writeback: 1,
            ldfg_per_instr: 2,
            config_write_per_node: 3,
            control_transfer: 96,
        }
    }
}

impl ImapTiming {
    /// Reduction-tree depth for a `rows × cols` candidate matrix:
    /// `ceil(log2(rows*cols))` comparator levels.
    #[must_use]
    pub fn reduce_cycles(&self, window_rows: usize, window_cols: usize) -> u64 {
        let cells = (window_rows * window_cols).max(2);
        u64::from(usize::BITS - (cells - 1).leading_zeros())
    }

    /// Cycles the `imap` FSM spends per instruction.
    #[must_use]
    pub fn per_instr_cycles(&self, mapper: &MapperConfig) -> u64 {
        self.fetch
            + self.gen_candidates
            + self.filter
            + self.latency_eval
            + self.reduce_cycles(mapper.window_rows, mapper.window_cols)
            + self.writeback
    }
}

/// Cycle breakdown of one configuration episode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConfigLatency {
    /// Building (or refreshing) the LDFG from the trace cache.
    pub ldfg_cycles: u64,
    /// Running the `imap` FSM over every instruction.
    pub map_cycles: u64,
    /// Streaming the configuration bitstream to the accelerator.
    pub write_cycles: u64,
    /// Architectural state transfer + pipeline drain.
    pub transfer_cycles: u64,
}

impl ConfigLatency {
    /// Total configuration latency in cycles.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.ldfg_cycles + self.map_cycles + self.write_cycles + self.transfer_cycles
    }
}

/// Computes the configuration latency for a region of `n_instrs`
/// instructions, `n_tiles` duplicated instances, under the given mapper
/// window.
#[must_use]
pub fn config_latency(
    timing: &ImapTiming,
    mapper: &MapperConfig,
    n_instrs: usize,
    n_tiles: usize,
) -> ConfigLatency {
    let n = n_instrs as u64;
    ConfigLatency {
        ldfg_cycles: timing.ldfg_per_instr * n,
        map_cycles: timing.per_instr_cycles(mapper) * n,
        // Tiled instances are written per-copy (subgraph duplication).
        write_cycles: timing.config_write_per_node * n * n_tiles.max(1) as u64,
        transfer_cycles: timing.control_transfer,
    }
}

/// Emits the `map` span with one aggregated child span per `imap` FSM
/// stage (Fig. 8) onto the controller timeline, starting at `start`.
///
/// Hardware interleaves the stages per instruction; the trace aggregates
/// each stage's total dwell (`stage_cycles × n_instrs`) into one span so a
/// 512-instruction region costs 7 spans instead of ~3500 events. The
/// stage spans tile the map window exactly: the returned end cycle is
/// `start + per_instr_cycles(mapper) × n_instrs`.
pub fn trace_map_stages(
    timing: &ImapTiming,
    mapper: &MapperConfig,
    n_instrs: u64,
    start: u64,
    tracer: &mut dyn Tracer,
) -> u64 {
    let reduce = timing.reduce_cycles(mapper.window_rows, mapper.window_cols);
    let end = start + timing.per_instr_cycles(mapper) * n_instrs;
    if !tracer.enabled() {
        return end;
    }
    tracer.span_begin(Subsystem::Controller, "map", start);
    let mut t = start;
    for (name, per_instr) in [
        ("imap.fetch", timing.fetch),
        ("imap.gen_candidates", timing.gen_candidates),
        ("imap.filter", timing.filter),
        ("imap.latency_eval", timing.latency_eval),
        ("imap.reduce", reduce),
        ("imap.writeback", timing.writeback),
    ] {
        let dwell = per_instr * n_instrs;
        if dwell == 0 {
            continue;
        }
        tracer.span_begin(Subsystem::Controller, name, t);
        t += dwell;
        tracer.span_end(Subsystem::Controller, name, t);
    }
    debug_assert_eq!(t, end);
    tracer.span_end(Subsystem::Controller, "map", end);
    end
}

/// Cycles for a *re*configuration during iterative optimization: the LDFG
/// is already resident, so only mapping and writing are paid.
#[must_use]
pub fn reconfig_latency(
    timing: &ImapTiming,
    mapper: &MapperConfig,
    n_instrs: usize,
    n_tiles: usize,
) -> ConfigLatency {
    let full = config_latency(timing, mapper, n_instrs, n_tiles);
    ConfigLatency { ldfg_cycles: 0, transfer_cycles: 0, ..full }
}

/// One state of the `imap` state machine (paper Fig. 8). Each state
/// corresponds to specific lines of Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImapState {
    /// Idle / waiting for the next instruction (between instructions).
    Idle,
    /// Read the instruction and its sources from the LDFG (Alg. 1 l.2-3).
    Fetch,
    /// Generate the candidate matrix `C_i` (l.4).
    GenCandidates,
    /// Apply `F_free ⊙ F_op` (l.5).
    Filter,
    /// Evaluate the latency matrix (l.8-12, parallel in hardware).
    LatencyEval,
    /// Reduce to the arg-min position (l.13-16), one tree level per cycle.
    Reduce {
        /// Remaining comparator levels.
        levels_left: u64,
    },
    /// Commit the position to the SDFG and update `F_free` (l.19).
    Writeback,
}

/// A cycle-steppable model of the `imap` FSM, used to validate that the
/// closed-form [`ImapTiming::per_instr_cycles`] matches the state machine
/// the paper's timing diagram describes.
#[derive(Debug, Clone)]
pub struct ImapFsm {
    timing: ImapTiming,
    reduce_levels: u64,
    state: ImapState,
    /// Cycles spent in the current state.
    dwell: u64,
    /// Total cycles consumed since reset.
    pub cycles: u64,
    /// Instructions mapped since reset.
    pub mapped: u64,
}

impl ImapFsm {
    /// Builds the FSM for a given candidate window.
    #[must_use]
    pub fn new(timing: ImapTiming, mapper: &MapperConfig) -> Self {
        let reduce_levels = timing.reduce_cycles(mapper.window_rows, mapper.window_cols);
        ImapFsm { timing, reduce_levels, state: ImapState::Idle, dwell: 0, cycles: 0, mapped: 0 }
    }

    /// Current state.
    #[must_use]
    pub fn state(&self) -> ImapState {
        self.state
    }

    /// Begins mapping the next instruction.
    ///
    /// # Panics
    /// Panics if the FSM is mid-instruction (not `Idle`).
    pub fn start_instruction(&mut self) {
        assert_eq!(self.state, ImapState::Idle, "imap busy");
        self.state = ImapState::Fetch;
        self.dwell = 0;
    }

    /// Advances one cycle; returns `true` when an instruction finished
    /// this cycle.
    pub fn step(&mut self) -> bool {
        use ImapState::*;
        if self.state == Idle {
            return false;
        }
        self.cycles += 1;
        self.dwell += 1;
        let (dwell_needed, next) = match self.state {
            // Guarded above; kept as a no-progress arm rather than a panic
            // so a corrupted state machine degrades instead of aborting.
            Idle => return false,
            Fetch => (self.timing.fetch, GenCandidates),
            GenCandidates => (self.timing.gen_candidates, Filter),
            Filter => (self.timing.filter, LatencyEval),
            LatencyEval => (
                self.timing.latency_eval,
                Reduce { levels_left: self.reduce_levels },
            ),
            Reduce { levels_left } => {
                // One comparator level per cycle.
                if levels_left > 1 {
                    self.state = Reduce { levels_left: levels_left - 1 };
                } else {
                    self.state = Writeback;
                }
                self.dwell = 0;
                return false;
            }
            Writeback => (self.timing.writeback, Idle),
        };
        if self.dwell >= dwell_needed {
            self.state = next;
            self.dwell = 0;
            if self.state == Idle {
                self.mapped += 1;
                return true;
            }
        }
        false
    }

    /// Runs the FSM to completion over `n` instructions and returns the
    /// total cycles.
    pub fn map_instructions(&mut self, n: u64) -> u64 {
        let start = self.cycles;
        for _ in 0..n {
            self.start_instruction();
            while !self.step() {}
        }
        self.cycles - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fsm_matches_closed_form() {
        let t = ImapTiming::default();
        let m = MapperConfig::default();
        let mut fsm = ImapFsm::new(t, &m);
        let cycles = fsm.map_instructions(17);
        assert_eq!(cycles, 17 * t.per_instr_cycles(&m));
        assert_eq!(fsm.mapped, 17);
    }

    #[test]
    fn fsm_walks_the_figure8_states_in_order() {
        let t = ImapTiming::default();
        let m = MapperConfig { window_rows: 2, window_cols: 2, ..Default::default() };
        let mut fsm = ImapFsm::new(t, &m);
        fsm.start_instruction();
        let mut states = vec![fsm.state()];
        while !fsm.step() {
            states.push(fsm.state());
        }
        // Fetch → GenCandidates → Filter → LatencyEval → Reduce(2) → WB.
        assert_eq!(states[0], ImapState::Fetch);
        assert_eq!(states[1], ImapState::GenCandidates);
        assert_eq!(states[2], ImapState::Filter);
        assert_eq!(states[3], ImapState::LatencyEval);
        assert!(matches!(states[4], ImapState::Reduce { levels_left: 2 }));
        assert!(matches!(states[5], ImapState::Reduce { levels_left: 1 }));
        assert_eq!(states[6], ImapState::Writeback);
        assert_eq!(fsm.state(), ImapState::Idle);
    }

    #[test]
    #[should_panic(expected = "imap busy")]
    fn fsm_rejects_overlapping_instructions() {
        let mut fsm = ImapFsm::new(ImapTiming::default(), &MapperConfig::default());
        fsm.start_instruction();
        fsm.start_instruction();
    }

    #[test]
    fn reduction_depth_is_log2() {
        let t = ImapTiming::default();
        assert_eq!(t.reduce_cycles(4, 8), 5); // 32 cells → 5 levels
        assert_eq!(t.reduce_cycles(2, 2), 2);
        assert_eq!(t.reduce_cycles(1, 2), 1);
        assert_eq!(t.reduce_cycles(8, 8), 6);
    }

    #[test]
    fn per_instr_matches_stage_sum() {
        let t = ImapTiming::default();
        let m = MapperConfig::default(); // 4x8 window
        assert_eq!(t.per_instr_cycles(&m), 1 + 1 + 1 + 1 + 5 + 1);
    }

    #[test]
    fn table2_range_for_typical_regions() {
        // "MESA's hardware configuration time is generally between 10^3 and
        // 10^4 cycles" (Table 2 discussion) for the 64-512 instruction
        // regions of the evaluation.
        let t = ImapTiming::default();
        let m = MapperConfig::default();
        for n in [64, 128, 256, 512] {
            let lat = config_latency(&t, &m, n, 1).total();
            assert!(
                (1_000..=10_000).contains(&lat),
                "{n} instrs → {lat} cycles outside Table 2 range"
            );
        }
    }

    #[test]
    fn tiling_multiplies_only_write_cycles() {
        let t = ImapTiming::default();
        let m = MapperConfig::default();
        let one = config_latency(&t, &m, 100, 1);
        let four = config_latency(&t, &m, 100, 4);
        assert_eq!(one.ldfg_cycles, four.ldfg_cycles);
        assert_eq!(one.map_cycles, four.map_cycles);
        assert_eq!(four.write_cycles, 4 * one.write_cycles);
    }

    #[test]
    fn trace_map_stages_tiles_the_map_window() {
        let t = ImapTiming::default();
        let m = MapperConfig::default();
        let mut tracer = mesa_trace::RingTracer::new(64);
        let end = trace_map_stages(&t, &m, 10, 100, &mut tracer);
        assert_eq!(end, 100 + 10 * t.per_instr_cycles(&m));
        assert!(tracer.open_spans().is_empty());
        // map + 6 stages, each begin+end.
        assert_eq!(tracer.len(), 2 * 7);
        let chrome = tracer.to_chrome_trace();
        let s = mesa_trace::validate_chrome_trace(&chrome).unwrap();
        assert!(s.span_names.iter().any(|n| n == "imap.reduce"));
    }

    #[test]
    fn reconfig_skips_ldfg_and_transfer() {
        let t = ImapTiming::default();
        let m = MapperConfig::default();
        let re = reconfig_latency(&t, &m, 100, 1);
        assert_eq!(re.ldfg_cycles, 0);
        assert_eq!(re.transfer_cycles, 0);
        assert!(re.total() < config_latency(&t, &m, 100, 1).total());
    }
}
