//! The Logical Dataflow Graph (LDFG) — MESA's program-order-indexed view of
//! the code region (paper §3.2).
//!
//! The LDFG is built by *renaming architectural registers to instruction
//! addresses*: a rename table maps each register to the last instruction
//! that wrote it, so a source register resolves to an edge from its
//! producer. Registers read before any in-region write resolve either to a
//! loop-carried edge (the region's *final* writer of that register, whose
//! previous-iteration output flows around the back edge) or to an
//! architectural register captured at offload (loop-invariant input).
//!
//! Nodes carry weights (operation latency) and edges carry weights (data
//! transfer latency), making the LDFG MESA's performance model: Eq. 1/2 of
//! the paper compute each instruction's completion cycle, and the heaviest
//! path is the critical path (the worked example of Fig. 2 is a test here).

use mesa_accel::Operand;
use mesa_isa::{Instruction, OpClass, Program, Reg};
use std::fmt;

/// One LDFG entry: an instruction plus its resolved dependencies and
/// measured weights.
#[derive(Debug, Clone, PartialEq)]
pub struct LdfgNode {
    /// Instruction address.
    pub pc: u64,
    /// The decoded instruction.
    pub instr: Instruction,
    /// Resolved sources `s1`, `s2` (paper §3.1: at most two predecessors).
    pub src: [Operand; 2],
    /// Previous writer of the destination register — the hidden dependency
    /// used when this node is disabled by predication (§5.2).
    pub hidden: Operand,
    /// Forward-branch nodes guarding this instruction.
    pub guards: Vec<u32>,
    /// Node weight: average operation latency in cycles (measured when
    /// counters are available, else the static estimate).
    pub op_weight: u64,
    /// Edge weights: average transfer latency into each source slot.
    pub edge_weight: [u64; 2],
}

impl LdfgNode {
    /// `true` when this node is the region's loop-closing backward branch.
    #[must_use]
    pub fn is_backward_branch(&self) -> bool {
        self.instr.op.is_branch() && self.instr.imm < 0
    }
}

/// Why a region could not be turned into an LDFG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// Region has no instructions.
    Empty,
    /// The last instruction is not a backward branch closing the loop.
    NoClosingBranch,
    /// A branch targets an address outside the region (early exit or inner
    /// loop), which predication cannot express.
    BranchLeavesRegion {
        /// PC of the offending branch.
        pc: u64,
    },
    /// A second backward branch (inner loop) was found.
    InnerLoop {
        /// PC of the inner backward branch.
        pc: u64,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Empty => write!(f, "empty region"),
            BuildError::NoClosingBranch => {
                write!(f, "region does not end with a loop-closing backward branch")
            }
            BuildError::BranchLeavesRegion { pc } => {
                write!(f, "branch at {pc:#x} targets outside the region")
            }
            BuildError::InnerLoop { pc } => write!(f, "inner loop at {pc:#x}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// The Logical DFG of one loop region.
#[derive(Debug, Clone, PartialEq)]
pub struct Ldfg {
    /// First PC of the region.
    pub start_pc: u64,
    /// One past the last PC.
    pub end_pc: u64,
    /// Nodes in program order.
    pub nodes: Vec<LdfgNode>,
    /// Index of the loop-closing branch (always the last node).
    pub loop_branch: u32,
    /// Registers written in the region and their final producers.
    pub live_out: Vec<(Reg, u32)>,
}

impl Ldfg {
    /// Builds the LDFG for a region program (all instructions between the
    /// loop's start PC and its closing branch, as captured by the trace
    /// cache).
    ///
    /// # Errors
    /// Returns [`BuildError`] for structurally unacceptable regions. Note
    /// that instruction-level *support* checks (C2) belong to the region
    /// detector; this builder only rejects what it cannot represent.
    pub fn build(region: &Program) -> Result<Self, BuildError> {
        let n = region.instrs.len();
        if n == 0 {
            return Err(BuildError::Empty);
        }

        // The closing branch must be the last instruction, jumping back to
        // the region start.
        let last = &region.instrs[n - 1];
        if !(last.op.is_branch() && last.imm < 0) {
            return Err(BuildError::NoClosingBranch);
        }
        let back_target =
            (region.base_pc + 4 * (n as u64 - 1)).wrapping_add(last.imm as u64);
        if back_target != region.base_pc {
            return Err(BuildError::BranchLeavesRegion { pc: region.base_pc + 4 * (n as u64 - 1) });
        }

        // Pass 1: final writer of every register (for loop-carried edges).
        let mut final_writer = [None::<u32>; Reg::COUNT];
        for (idx, instr) in region.instrs.iter().enumerate() {
            if let Some(rd) = instr.dest() {
                final_writer[rd.flat_index()] = Some(idx as u32);
            }
        }

        // Pass 2: rename and resolve.
        let mut rename = [None::<u32>; Reg::COUNT];
        let mut nodes = Vec::with_capacity(n);
        for (idx, instr) in region.instrs.iter().enumerate() {
            let pc = region.base_pc + 4 * idx as u64;

            // Branch structural checks (all but the closing one must be
            // forward and stay inside the region).
            if instr.op.is_branch() && idx != n - 1 {
                if instr.imm < 0 {
                    return Err(BuildError::InnerLoop { pc });
                }
                // A forward branch may skip at most up to the closing
                // branch; reaching or passing `end_pc` would skip the loop
                // branch itself (an early exit predication cannot express).
                let target = pc.wrapping_add(instr.imm as u64);
                if target >= region.end_pc() {
                    return Err(BuildError::BranchLeavesRegion { pc });
                }
            }

            #[allow(clippy::type_complexity)]
            let resolve = |reg: Option<Reg>, rename: &[Option<u32>; Reg::COUNT]| -> Operand {
                match reg {
                    None => Operand::None,
                    Some(r) if r.is_zero() => Operand::None,
                    Some(r) => {
                        if let Some(idx) = rename[r.flat_index()] {
                            Operand::Node { idx, carried: false, via: r }
                        } else if let Some(idx) = final_writer[r.flat_index()] {
                            Operand::Node { idx, carried: true, via: r }
                        } else {
                            Operand::InitReg(r)
                        }
                    }
                }
            };

            let [s1, s2] = instr.sources();
            let src = [resolve(s1, &rename), resolve(s2, &rename)];
            let hidden = resolve(instr.dest(), &rename);

            nodes.push(LdfgNode {
                pc,
                instr: *instr,
                src,
                hidden,
                guards: Vec::new(),
                op_weight: instr.op.base_latency(),
                edge_weight: [0, 0],
            });

            if let Some(rd) = instr.dest() {
                rename[rd.flat_index()] = Some(idx as u32);
            }
        }

        // Pass 3: predication guards from forward branches.
        for idx in 0..n - 1 {
            let instr = &region.instrs[idx];
            if instr.op.is_branch() && instr.imm > 0 {
                let skip_to = idx + (instr.imm / 4) as usize;
                for guarded in &mut nodes[idx + 1..skip_to.min(n)] {
                    guarded.guards.push(idx as u32);
                }
            }
        }

        let live_out = (0..Reg::COUNT)
            .filter_map(|i| rename[i].map(|w| (Reg::from_flat_index(i), w)))
            .collect();

        Ok(Ldfg {
            start_pc: region.base_pc,
            end_pc: region.end_pc(),
            nodes,
            loop_branch: (n - 1) as u32,
            live_out,
        })
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the graph has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Per-instruction completion latencies `L_i` under the current node
    /// and edge weights (Eq. 2 of the paper).
    ///
    /// Loop-carried and loop-invariant inputs are available at iteration
    /// start (cycle 0): the model computes the latency of *one* iteration.
    #[must_use]
    pub fn iteration_latencies(&self) -> Vec<u64> {
        let mut latency = vec![0u64; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            let mut arrival = 0u64;
            for (slot, src) in node.src.iter().enumerate() {
                if let Operand::Node { idx, carried: false, .. } = *src {
                    arrival =
                        arrival.max(latency[idx as usize] + node.edge_weight[slot]);
                }
            }
            latency[i] = node.op_weight + arrival;
        }
        latency
    }

    /// The latency of one loop iteration: `max { L_i }` (paper §3.1).
    #[must_use]
    pub fn iteration_latency(&self) -> u64 {
        self.iteration_latencies().into_iter().max().unwrap_or(0)
    }

    /// The critical path: the heaviest weighted path through the graph,
    /// returned as node indices from source to sink, plus its latency.
    ///
    /// MESA uses this to "rapidly identify the critical path and pinpoint
    /// nodes or edges that are sources of bottleneck" (§1).
    #[must_use]
    pub fn critical_path(&self) -> (Vec<u32>, u64) {
        let latencies = self.iteration_latencies();
        let Some((mut at, &total)) = latencies
            .iter()
            .enumerate()
            .max_by_key(|&(i, &l)| (l, std::cmp::Reverse(i)))
        else {
            return (Vec::new(), 0);
        };
        // Walk back through the argmax predecessor at each step.
        let mut path = vec![at as u32];
        loop {
            let node = &self.nodes[at];
            let mut best: Option<(usize, u64)> = None;
            for (slot, src) in node.src.iter().enumerate() {
                if let Operand::Node { idx, carried: false, .. } = *src {
                    let a = latencies[idx as usize] + node.edge_weight[slot];
                    if best.is_none_or(|(_, b)| a > b) {
                        best = Some((idx as usize, a));
                    }
                }
            }
            match best {
                Some((pred, arrival))
                    if latencies[at] == node.op_weight + arrival =>
                {
                    path.push(pred as u32);
                    at = pred;
                }
                _ => break,
            }
        }
        path.reverse();
        (path, total)
    }

    /// Counts of `(compute, memory, control)` nodes — the instruction-mix
    /// statistic of detection condition C3.
    #[must_use]
    pub fn instruction_mix(&self) -> (usize, usize, usize) {
        let mut compute = 0;
        let mut memory = 0;
        let mut control = 0;
        for node in &self.nodes {
            match node.instr.class() {
                OpClass::Load | OpClass::Store => memory += 1,
                OpClass::Branch | OpClass::Jump => control += 1,
                _ => compute += 1,
            }
        }
        (compute, memory, control)
    }

    /// Indices of induction nodes: `addi r, r, imm` self-updates, the
    /// pattern behind tiling stride scaling and prefetch eligibility
    /// (§4.2, §4.3).
    #[must_use]
    pub fn induction_nodes(&self) -> Vec<u32> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(i, n)| {
                n.instr.op == mesa_isa::Opcode::Addi
                    && n.instr.rd == n.instr.rs1
                    && n.instr.dest().is_some()
                    && matches!(
                        n.src[0],
                        Operand::Node { idx, carried: true, .. } if idx as usize == *i
                    )
            })
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// `true` when every loop-carried register is produced by an induction
    /// node — the condition under which iterations are independent enough
    /// to tile (given an `omp parallel`/`simd` annotation).
    ///
    /// Carried *hidden* dependencies (the predication pass-through of
    /// §5.2) are exempt when no node consumes the same register through a
    /// carried data edge: the forwarded stale value is then dead — it only
    /// circulates until the next enabled iteration overwrites it — so it
    /// cannot couple iterations. (A live-out of such a register may read
    /// tile-locally stale state; the engine documents this.)
    #[must_use]
    pub fn carried_regs_are_induction(&self) -> bool {
        let induction = self.induction_nodes();
        for node in &self.nodes {
            for src in &node.src {
                if let Operand::Node { idx, carried: true, .. } = *src {
                    if !induction.contains(&idx) {
                        return false;
                    }
                }
            }
        }
        true
    }
}

impl fmt::Display for Ldfg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "LDFG [{:#x}, {:#x}):", self.start_pc, self.end_pc)?;
        for (i, node) in self.nodes.iter().enumerate() {
            write!(f, "  i{i}: {} (w={}", node.instr, node.op_weight)?;
            for (slot, src) in node.src.iter().enumerate() {
                match src {
                    Operand::Node { idx, carried, via } => {
                        let mark = if *carried { "~" } else { "" };
                        write!(f, ", s{}={mark}i{idx} via {via}", slot + 1)?;
                    }
                    Operand::InitReg(r) => write!(f, ", s{}={r}", slot + 1)?,
                    Operand::None => {}
                }
            }
            writeln!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesa_isa::Asm;
    use mesa_isa::reg::abi::*;

    fn region(build: impl FnOnce(&mut Asm)) -> Program {
        let mut a = Asm::new(0x1000);
        build(&mut a);
        a.finish().unwrap()
    }

    fn simple_sum_region() -> Program {
        region(|a| {
            a.label("loop");
            a.lw(T0, A0, 0);
            a.add(T1, T1, T0);
            a.addi(A0, A0, 4);
            a.bne(A0, A1, "loop");
        })
    }

    #[test]
    fn rename_resolves_in_region_deps() {
        let ldfg = Ldfg::build(&simple_sum_region()).unwrap();
        assert_eq!(ldfg.len(), 4);
        // add consumes the load's output through t0.
        assert_eq!(
            ldfg.nodes[1].src[1],
            Operand::Node { idx: 0, carried: false, via: T0 }
        );
        // The closing branch consumes the fresh a0.
        assert_eq!(
            ldfg.nodes[3].src[0],
            Operand::Node { idx: 2, carried: false, via: A0 }
        );
        // The bound a1 is loop-invariant.
        assert_eq!(ldfg.nodes[3].src[1], Operand::InitReg(A1));
    }

    #[test]
    fn carried_deps_point_to_final_writer() {
        let ldfg = Ldfg::build(&simple_sum_region()).unwrap();
        // The load's base a0 is written later (node 2): loop-carried.
        assert_eq!(
            ldfg.nodes[0].src[0],
            Operand::Node { idx: 2, carried: true, via: A0 }
        );
        // t1 accumulates into itself: carried self-edge through node 1.
        assert_eq!(
            ldfg.nodes[1].src[0],
            Operand::Node { idx: 1, carried: true, via: T1 }
        );
    }

    #[test]
    fn live_out_lists_final_writers() {
        let ldfg = Ldfg::build(&simple_sum_region()).unwrap();
        let mut lo = ldfg.live_out.clone();
        lo.sort();
        assert_eq!(lo, vec![(T0, 0), (A0, 2), (T1, 1)].into_iter().collect::<std::collections::BTreeSet<_>>().into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn rejects_region_without_closing_branch() {
        let p = region(|a| {
            a.addi(T0, T0, 1);
            a.addi(T1, T1, 1);
        });
        assert_eq!(Ldfg::build(&p), Err(BuildError::NoClosingBranch));
    }

    #[test]
    fn rejects_inner_loop() {
        let p = region(|a| {
            a.label("outer");
            a.addi(T0, T0, 1);
            a.label("inner");
            a.addi(T1, T1, 1);
            a.bne(T1, A0, "inner");
            a.bne(T0, A1, "outer");
        });
        assert_eq!(Ldfg::build(&p), Err(BuildError::InnerLoop { pc: 0x1008 }));
    }

    #[test]
    fn guards_cover_skipped_range() {
        let p = region(|a| {
            a.label("loop");
            a.bge(T0, T1, "skip"); // node 0: forward branch
            a.addi(T2, T2, 5); // node 1: guarded
            a.addi(T3, T3, 1); // node 2: guarded
            a.label("skip");
            a.addi(T0, T0, 1); // node 3: not guarded
            a.bne(T0, A1, "loop");
        });
        let ldfg = Ldfg::build(&p).unwrap();
        assert_eq!(ldfg.nodes[1].guards, vec![0]);
        assert_eq!(ldfg.nodes[2].guards, vec![0]);
        assert!(ldfg.nodes[3].guards.is_empty());
        // Guarded node's hidden dep flows through its destination register.
        assert_eq!(
            ldfg.nodes[1].hidden,
            Operand::Node { idx: 1, carried: true, via: T2 }
        );
    }

    #[test]
    fn figure2_worked_example() {
        // The paper's Fig. 2: five instructions, add/sub = 3 cycles,
        // mul = 5 cycles, transfer = Manhattan distance of the placement.
        // i1=add (inputs ready), i2=mul(i1) 1 hop, i3=sub(i2) 1 hop,
        // i4=mul(i1) 2 hops, i5=add(i4 @2 hops, i2 @1 hop).
        // Expected: L = [3, 9, 13, 10, 15], critical path i1→i4→i5.
        let p = region(|a| {
            a.label("loop");
            a.fadd_s(FT0, FA0, FA1); // i1
            a.fmul_s(FT1, FT0, FA2); // i2 (dep i1)
            a.fsub_s(FT2, FT1, FA3); // i3 (dep i2)
            a.fmul_s(FT3, FT0, FA4); // i4 (dep i1)
            a.fadd_s(FT4, FT3, FT1); // i5 (dep i4, i2)
            a.addi(T0, T0, 1);
            a.bne(T0, A1, "loop");
        });
        let mut ldfg = Ldfg::build(&p).unwrap();
        // Make the integer tail free so the FP numbers match the figure.
        ldfg.nodes[5].op_weight = 0;
        ldfg.nodes[6].op_weight = 0;
        // Edge weights from the figure's placement.
        ldfg.nodes[1].edge_weight = [1, 0]; // i1→i2: neighbors
        ldfg.nodes[2].edge_weight = [1, 0]; // i2→i3: neighbors
        ldfg.nodes[3].edge_weight = [2, 0]; // i1→i4: diagonal
        ldfg.nodes[4].edge_weight = [2, 1]; // i4→i5 diagonal, i2→i5 neighbor

        let lat = ldfg.iteration_latencies();
        assert_eq!(&lat[..5], &[3, 9, 13, 10, 15]);
        assert_eq!(ldfg.iteration_latency(), 15);

        let (path, total) = ldfg.critical_path();
        assert_eq!(total, 15);
        assert_eq!(path, vec![0, 3, 4], "critical path is i1, i4, i5");
    }

    #[test]
    fn instruction_mix_counts() {
        let ldfg = Ldfg::build(&simple_sum_region()).unwrap();
        let (compute, memory, control) = ldfg.instruction_mix();
        assert_eq!((compute, memory, control), (2, 1, 1));
    }

    #[test]
    fn induction_detection() {
        let ldfg = Ldfg::build(&simple_sum_region()).unwrap();
        assert_eq!(ldfg.induction_nodes(), vec![2]); // addi a0, a0, 4
        // t1 accumulation is carried but NOT induction (add t1,t1,t0):
        assert!(!ldfg.carried_regs_are_induction());
    }

    #[test]
    fn pure_induction_loop_is_tileable() {
        let p = region(|a| {
            a.label("loop");
            a.lw(T0, A0, 0);
            a.sw(T0, A2, 0);
            a.addi(A0, A0, 4);
            a.addi(A2, A2, 4);
            a.bne(A0, A1, "loop");
        });
        let ldfg = Ldfg::build(&p).unwrap();
        assert_eq!(ldfg.induction_nodes(), vec![2, 3]);
        assert!(ldfg.carried_regs_are_induction());
    }

    #[test]
    fn display_is_readable() {
        let ldfg = Ldfg::build(&simple_sum_region()).unwrap();
        let s = ldfg.to_string();
        assert!(s.contains("i0: lw t0, 0(a0)"));
        assert!(s.contains("~i2 via a0"), "carried edge marked: {s}");
    }
}
