//! The MESA controller: end-to-end orchestration of monitoring,
//! translation, configuration, offloading, and iterative optimization
//! (paper Fig. 1 / Fig. 7).
//!
//! The controller drives the three functions of §1: **F1** monitor CPU
//! execution for acceleration opportunities (loop-stream detector +
//! AMAT counters on the retire stream), **F2** translate the binary to a
//! latency-weighted DFG and map it (LDFG → SDFG → configuration), and
//! **F3** iteratively optimize from runtime feedback, reconfiguring when
//! the model predicts a win.

use crate::{
    apply_counters, build_accel_program, check_region, config_latency, map_instructions,
    memopt, reconfig_latency, reoptimize, trace_map_stages, ConfigCache, ConfigLatency,
    DetectConfig, DetectedRegion, ImapTiming, MapperConfig, OptFlags, RejectReason, ReoptRound,
};
use mesa_accel::{
    AccelConfig, AccelProgram, ActivityStats, BitstreamError, Coord, FaultLog, FaultPlan,
    PerfCounters, ProgramError, Region, SessionError, SnapshotError, SpatialAccelerator,
};
use mesa_cpu::{
    CoreConfig, LoopStreamDetector, OoOCore, PipelineStats, RetireEvent, RetireMonitor,
    RunLimits, StopReason, TraceCache,
};
use mesa_isa::{ArchState, OpClass, ParallelKind, Program, Reg};
use mesa_mem::{AmatTable, MemConfig, MemTraffic, MemorySystem};
use mesa_trace::host;
use mesa_trace::{MetricsRegistry, NullTracer, Subsystem, Tracer};
use std::fmt;

/// Everything needed to instantiate a MESA-enabled system.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Host core parameters.
    pub core: CoreConfig,
    /// Memory hierarchy parameters.
    pub mem: MemConfig,
    /// Target accelerator.
    pub accel: AccelConfig,
    /// Detection thresholds (C1–C3).
    pub detect: DetectConfig,
    /// Mapping algorithm parameters.
    pub mapper: MapperConfig,
    /// Hardware pipeline timing (imap FSM etc.).
    pub imap: ImapTiming,
    /// Optimization switches.
    pub opts: OptFlags,
    /// Give up monitoring after this many retired instructions.
    pub max_warmup_instrs: u64,
    /// Safety cap on accelerator iterations.
    pub max_accel_iterations: u64,
}

impl SystemConfig {
    fn with_accel(accel: AccelConfig) -> Self {
        SystemConfig {
            core: CoreConfig::boom_baseline(),
            mem: MemConfig::default(),
            accel,
            detect: DetectConfig::default(),
            mapper: MapperConfig::default(),
            imap: ImapTiming::default(),
            opts: OptFlags::default(),
            max_warmup_instrs: 2_000_000,
            max_accel_iterations: 100_000_000,
        }
    }

    /// The M-64 system (Fig. 14's configuration).
    #[must_use]
    pub fn m64() -> Self {
        Self::with_accel(AccelConfig::m64())
    }

    /// The M-128 system (the paper's headline configuration).
    #[must_use]
    pub fn m128() -> Self {
        Self::with_accel(AccelConfig::m128())
    }

    /// The M-512 system.
    #[must_use]
    pub fn m512() -> Self {
        Self::with_accel(AccelConfig::m512())
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::m128()
    }
}

/// Failure modes of an offload attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum MesaError {
    /// Monitoring found no stable hot loop within the warmup budget.
    NoLoopDetected,
    /// The candidate loop failed C1–C3.
    Rejected(RejectReason),
    /// The loop finished on the CPU while MESA was still configuring; the
    /// configuration cost could not be amortized.
    LoopExitedDuringConfig,
    /// The generated configuration failed accelerator validation.
    Accel(ProgramError),
    /// The memory system must expose at least two requester ports (CPU and
    /// accelerator).
    NeedTwoRequesters,
    /// The configuration stream arrived truncated or corrupted at the
    /// accelerator; the region is blacklisted and finishes on the CPU.
    ConfigStream(BitstreamError),
    /// A placement snapshot failed to decode, or did not match the
    /// configuration it was restored against.
    Snapshot(SnapshotError),
    /// The multi-tenant fabric manager declined the request.
    Fabric(crate::fabric::FabricError),
}

impl fmt::Display for MesaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MesaError::NoLoopDetected => write!(f, "no hot loop detected"),
            MesaError::Rejected(r) => write!(f, "loop rejected: {r}"),
            MesaError::LoopExitedDuringConfig => {
                write!(f, "loop exited on the CPU before configuration completed")
            }
            MesaError::Accel(e) => write!(f, "configuration invalid: {e}"),
            MesaError::NeedTwoRequesters => {
                write!(f, "memory system needs requester ports for both CPU and accelerator")
            }
            MesaError::ConfigStream(e) => {
                write!(f, "configuration stream rejected by the accelerator: {e}")
            }
            MesaError::Snapshot(e) => write!(f, "placement snapshot rejected: {e}"),
            MesaError::Fabric(e) => write!(f, "fabric manager declined: {e}"),
        }
    }
}

impl std::error::Error for MesaError {}

impl From<ProgramError> for MesaError {
    fn from(e: ProgramError) -> Self {
        MesaError::Accel(e)
    }
}

impl From<SnapshotError> for MesaError {
    fn from(e: SnapshotError) -> Self {
        MesaError::Snapshot(e)
    }
}

impl From<SessionError> for MesaError {
    fn from(e: SessionError) -> Self {
        match e {
            SessionError::Program(p) => MesaError::Accel(p),
            SessionError::Snapshot(s) => MesaError::Snapshot(s),
        }
    }
}

impl From<crate::fabric::FabricError> for MesaError {
    fn from(e: crate::fabric::FabricError) -> Self {
        MesaError::Fabric(e)
    }
}

/// Complete account of one offload episode.
#[derive(Debug, Clone)]
pub struct OffloadReport {
    /// Region bounds.
    pub region: (u64, u64),
    /// CPU cycles spent before detection (monitoring warmup).
    pub warmup_cycles: u64,
    /// CPU instructions retired during warmup.
    pub warmup_instrs: u64,
    /// Initial configuration latency breakdown.
    pub config: ConfigLatency,
    /// CPU cycles that ran concurrently with configuration (iterations the
    /// CPU completed while MESA configured, §5.1).
    pub config_phase_cpu_cycles: u64,
    /// Iterations the CPU executed during the configuration phase.
    pub cpu_iterations_during_config: u64,
    /// Extra cycles spent on iterative reconfigurations.
    pub reconfig_cycles: u64,
    /// Number of reconfigurations performed.
    pub reconfigurations: u32,
    /// Cycles the accelerator ran.
    pub accel_cycles: u64,
    /// Iterations executed on the accelerator.
    pub accel_iterations: u64,
    /// Tiles used.
    pub tiles: usize,
    /// Whether pipelining was enabled.
    pub pipelined: bool,
    /// Nodes that fell back to the bus.
    pub unmapped_nodes: usize,
    /// Trip-count estimate at detection time.
    pub expected_iterations: u64,
    /// Model estimate of per-iteration latency at initial mapping.
    pub initial_estimate: u64,
    /// The configuration was served from the config cache.
    pub from_cache: bool,
    /// Memory-hierarchy traffic accumulated by the *CPU-side* phases of
    /// this episode (warmup monitoring + configuration overlap), i.e. the
    /// memory-system totals sampled just before the accelerator started.
    /// Harnesses diff the post-episode totals against this to attribute
    /// traffic to the accelerated phase without double-counting warmup.
    pub cpu_phase_traffic: MemTraffic,
    /// Pipeline counters accumulated over every CPU-side run of the
    /// episode (warmup monitoring, loop-entry alignment, configuration
    /// overlap). `cpu_pipeline.cycles` is the episode's total CPU-phase
    /// cycle count, which top-down accounting attributes into buckets.
    pub cpu_pipeline: PipelineStats,
    /// Final placement: the coordinate each region node ended on (`None` =
    /// fallback bus), indexed like `counters.nodes`. Spatial profilers
    /// fold the counters onto this grid.
    pub placement: Vec<Option<Coord>>,
    /// One record per F3 re-optimization round, in order.
    pub reopt_rounds: Vec<ReoptRound>,
    /// Accelerator activity (for the energy model).
    pub activity: ActivityStats,
    /// Final performance counters.
    pub counters: PerfCounters,
    /// Injected-fault events observed (and survived) during the episode.
    pub faults: FaultLog,
    /// Tenant that owned the episode on a shared fabric (`0` for solo
    /// offloads, which are the only tenant by definition).
    pub tenant: u32,
    /// Grid region the accelerated phase ran in — its final home if it
    /// migrated. `None` for solo offloads, which own the whole grid.
    pub fabric_region: Option<Region>,
    /// Times the placement was checkpointed and relocated mid-episode.
    pub migrations: u32,
    /// Fleet cycles the tenant waited in the admission queue before its
    /// first band placement (`0` for solo offloads, which never queue).
    pub queue_wait_cycles: u64,
    /// Wire cost of the episode's migrations: checkpoint + restore words
    /// shuttled (`0` for solo offloads and unmigrated tenants).
    pub checkpoint_cycles: u64,
}

impl OffloadReport {
    /// Wall-clock cycles of the whole episode: warmup, the configuration
    /// phase (CPU keeps running; the longer of the two governs), control
    /// transfer, accelerated execution, reconfiguration pauses, and the
    /// return transfer.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.warmup_cycles
            + self.config.total().max(self.config_phase_cpu_cycles)
            + self.reconfig_cycles
            + self.accel_cycles
            + self.config.transfer_cycles // return transfer
    }

    /// Average accelerator cycles per iteration.
    #[must_use]
    pub fn cycles_per_iteration(&self) -> f64 {
        if self.accel_iterations == 0 {
            0.0
        } else {
            self.accel_cycles as f64 / self.accel_iterations as f64
        }
    }

    /// Registers the episode's cycle breakdown, accelerator activity, and
    /// feedback counters into `reg` under the `offload.` prefix.
    pub fn record_metrics(&self, reg: &mut MetricsRegistry) {
        reg.add("offload.episodes", 1);
        reg.add("offload.warmup_cycles", self.warmup_cycles);
        reg.add("offload.warmup_instrs", self.warmup_instrs);
        reg.add("offload.config_cycles", self.config.total());
        reg.add("offload.config_phase_cpu_cycles", self.config_phase_cpu_cycles);
        reg.add("offload.cpu_iterations_during_config", self.cpu_iterations_during_config);
        reg.add("offload.reconfig_cycles", self.reconfig_cycles);
        reg.add("offload.reconfigurations", u64::from(self.reconfigurations));
        reg.add("offload.accel_cycles", self.accel_cycles);
        reg.add("offload.accel_iterations", self.accel_iterations);
        reg.add("offload.tiles", self.tiles as u64);
        reg.add("offload.unmapped_nodes", self.unmapped_nodes as u64);
        reg.add("offload.from_cache", u64::from(self.from_cache));
        reg.add("offload.reopt_rounds", self.reopt_rounds.len() as u64);
        reg.add("offload.migrations", u64::from(self.migrations));
        reg.add("offload.queue_wait_cycles", self.queue_wait_cycles);
        reg.add("offload.checkpoint_cycles", self.checkpoint_cycles);
        reg.gauge("offload.cycles_per_iteration", self.cycles_per_iteration());
        self.cpu_phase_traffic.record_metrics(reg, "offload.cpu_phase");
        self.cpu_pipeline.record_metrics(reg, "offload.cpu_pipeline");
        self.activity.record_metrics(reg, "offload.activity");
        self.counters.record_metrics(reg, "offload.feedback");
        reg.add("offload.fault.bus_tokens_dropped", self.faults.bus_tokens_dropped);
        reg.add("offload.fault.counter_bits_flipped", self.faults.counter_bits_flipped);
        reg.add("offload.fault.stuck_pes_scrubbed", self.faults.stuck_pes_scrubbed);
        reg.add("offload.fault.config_truncations", self.faults.config_truncations);
    }
}

impl fmt::Display for OffloadReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "offload of [{:#x}, {:#x}): {} total cycles",
            self.region.0,
            self.region.1,
            self.total_cycles()
        )?;
        writeln!(
            f,
            "  warmup: {} cycles / {} instrs; config: {} cycles{}",
            self.warmup_cycles,
            self.warmup_instrs,
            self.config.total(),
            if self.from_cache { " (from config cache)" } else { "" },
        )?;
        writeln!(
            f,
            "  CPU overlapped {} iterations during configuration",
            self.cpu_iterations_during_config
        )?;
        writeln!(
            f,
            "  accelerator: {} iterations in {} cycles ({:.2} cyc/iter), {} tile(s){}",
            self.accel_iterations,
            self.accel_cycles,
            self.cycles_per_iteration(),
            self.tiles,
            if self.pipelined { ", pipelined" } else { "" },
        )?;
        write!(
            f,
            "  reconfigurations: {} (+{} cycles); unmapped nodes: {}",
            self.reconfigurations, self.reconfig_cycles, self.unmapped_nodes
        )?;
        if self.queue_wait_cycles > 0 || self.checkpoint_cycles > 0 {
            write!(
                f,
                "\n  fabric: {} cycles queued, {} checkpoint/restore cycles over {} migration(s)",
                self.queue_wait_cycles, self.checkpoint_cycles, self.migrations
            )?;
        }
        Ok(())
    }
}

/// Machine words the monitor can hold for trace-cache filling.
const CAPTURE_WINDOW: usize = 1024;

/// Monitor used during warmup: loop-stream detection, AMAT capture, and
/// machine-word capture for the trace cache.
#[derive(Debug)]
struct WarmupMonitor {
    lsd: LoopStreamDetector,
    amat: AmatTable,
    /// Recently retired `(pc, machine word)` pairs — the fetch stream the
    /// trace cache snoops (paper §4.1). Bounded ring.
    captured: std::collections::VecDeque<(u64, u32)>,
}

impl RetireMonitor for WarmupMonitor {
    fn on_retire(&mut self, event: &RetireEvent) {
        self.lsd.on_retire(event);
        if let Some(lat) = event.mem_latency {
            if event.instr.class() == OpClass::Load {
                self.amat.record(event.pc, lat);
            }
        }
        if !self.captured.iter().any(|&(pc, _)| pc == event.pc) {
            if let Ok(word) = mesa_isa::codec::encode(&event.instr) {
                if self.captured.len() >= CAPTURE_WINDOW {
                    self.captured.pop_front();
                }
                self.captured.push_back((event.pc, word));
            }
        }
    }
}

/// Everything F1 + F2 produced for one episode, frozen at the instant
/// control would transfer to the accelerator: the mapped configuration,
/// the latency-weighted DFG it came from, the cycle clock, and the full
/// CPU-side accounting. [`MesaController::finish_episode`] consumes it to
/// run the solo F3 phase; the fabric manager instead admits it onto a
/// shared grid as one tenant among several.
#[derive(Debug)]
pub(crate) struct PreparedEpisode {
    pub(crate) start_pc: u64,
    pub(crate) end_pc: u64,
    pub(crate) warmup_cycles: u64,
    pub(crate) warmup_instrs: u64,
    pub(crate) cpu_pipeline: PipelineStats,
    pub(crate) config: ConfigLatency,
    pub(crate) config_phase_cpu_cycles: u64,
    pub(crate) cpu_iterations_during_config: u64,
    pub(crate) accel_prog: AccelProgram,
    pub(crate) ldfg: crate::Ldfg,
    pub(crate) expected_iterations: u64,
    pub(crate) initial_estimate: u64,
    pub(crate) from_cache: bool,
    pub(crate) unmapped_nodes: usize,
    pub(crate) annotation: Option<ParallelKind>,
    pub(crate) fault_plan: FaultPlan,
    pub(crate) fault_log: FaultLog,
    pub(crate) cpu_phase_traffic: MemTraffic,
    pub(crate) now: u64,
}

/// The MESA hardware controller.
#[derive(Debug)]
pub struct MesaController {
    system: SystemConfig,
    accel: SpatialAccelerator,
    cache: ConfigCache,
    /// Regions that failed C1–C3; the detector ignores them afterwards so
    /// monitoring can move past a hot-but-unaccelerable loop.
    blacklist: std::collections::HashSet<(u64, u64)>,
    /// Persistent trace cache: when the same hot loop is re-detected in a
    /// later episode and refills with identical words, its decoded
    /// [`Program`] is served from the cache instead of re-decoding.
    trace_cache: TraceCache,
    /// Armed fault-injection plan; applied to every subsequent episode.
    fault_plan: Option<FaultPlan>,
}

impl MesaController {
    /// Builds a controller for the given system.
    #[must_use]
    pub fn new(system: SystemConfig) -> Self {
        let accel = SpatialAccelerator::new(system.accel);
        let trace_cache = TraceCache::new(system.accel.max_instrs());
        MesaController {
            system,
            accel,
            cache: ConfigCache::new(),
            blacklist: std::collections::HashSet::new(),
            trace_cache,
            fault_plan: None,
        }
    }

    /// Arms (or disarms, with `None`) deterministic fault injection: every
    /// subsequent offload episode scrubs the plan's stuck PEs, verifies
    /// the configuration stream against truncation, drops bus tokens, and
    /// corrupts latency counters before each F3 round — all seeded, so a
    /// failing episode replays exactly from its plan.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault_plan = plan;
    }

    /// The armed fault-injection plan, if any.
    #[must_use]
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// The system configuration.
    #[must_use]
    pub fn system(&self) -> &SystemConfig {
        &self.system
    }

    /// The configuration cache (exposed for inspection/tests).
    #[must_use]
    pub fn config_cache(&self) -> &ConfigCache {
        &self.cache
    }

    /// Monitors `program` running on `cpu`, and on detecting a hot
    /// accelerable loop translates, configures, and offloads it.
    ///
    /// On success `state` is advanced past the loop with live-out registers
    /// applied, so the caller can resume CPU execution seamlessly.
    ///
    /// # Errors
    /// See [`MesaError`]. On `NoLoopDetected`/`Rejected` errors the CPU
    /// state reflects the warmup execution performed so far.
    pub fn offload(
        &mut self,
        program: &Program,
        state: &mut ArchState,
        mem: &mut MemorySystem,
        cpu: &mut OoOCore,
    ) -> Result<OffloadReport, MesaError> {
        self.offload_traced(program, state, mem, cpu, &mut NullTracer)
    }

    /// [`offload`](Self::offload) with tracing: every phase of the episode
    /// — detection, translation, per-`imap`-stage mapping, configuration
    /// write, CPU overlap, offloaded execution, and F3 reoptimization
    /// rounds — is emitted as spans on an episode-relative cycle clock
    /// (cycle 0 = monitoring start). See the `mesa-trace` crate docs for
    /// the span vocabulary.
    ///
    /// # Errors
    /// See [`MesaError`]. All spans opened before an error path are closed
    /// before returning, so traces of failed episodes stay balanced.
    pub fn offload_traced(
        &mut self,
        program: &Program,
        state: &mut ArchState,
        mem: &mut MemorySystem,
        cpu: &mut OoOCore,
        tracer: &mut dyn Tracer,
    ) -> Result<OffloadReport, MesaError> {
        let prepared = self.prepare_episode(program, state, mem, cpu, tracer)?;
        self.finish_episode(prepared, state, mem, tracer)
    }

    /// F1 + F2: monitor until a hot loop emerges, translate and map it,
    /// pay the configuration latency while the CPU keeps running, and
    /// freeze the episode at the instant control would transfer to the
    /// accelerator.
    pub(crate) fn prepare_episode(
        &mut self,
        program: &Program,
        state: &mut ArchState,
        mem: &mut MemorySystem,
        cpu: &mut OoOCore,
        tracer: &mut dyn Tracer,
    ) -> Result<PreparedEpisode, MesaError> {
        if mem.requesters() < 2 {
            return Err(MesaError::NeedTwoRequesters);
        }
        const CPU: usize = 0;

        // Host-side phase span: wall-clock cost of F1 monitoring (the
        // guard closes on every early return too).
        let host_detect = host::span("detect");
        tracer.span_begin(Subsystem::Controller, "detect", 0);
        tracer.span_begin(Subsystem::Cpu, "cpu.warmup", 0);

        // ---- F1: monitor until a hot loop emerges ----
        let mut monitor = WarmupMonitor {
            lsd: LoopStreamDetector::new(self.system.detect.lsd_threshold),
            amat: AmatTable::new(),
            captured: std::collections::VecDeque::with_capacity(CAPTURE_WINDOW),
        };
        let mut warmup_cycles = 0u64;
        let mut warmup_instrs = 0u64;
        let mut cpu_pipeline = PipelineStats::default();
        let hot = loop {
            if warmup_instrs >= self.system.max_warmup_instrs {
                break None;
            }
            let r = cpu.run(program, state, mem, CPU, RunLimits::instrs(32), &mut monitor);
            cpu_pipeline.absorb(&r);
            warmup_cycles += r.cycles;
            warmup_instrs += r.retired;
            if let Some(hot) = monitor.lsd.hot_loop() {
                if self.blacklist.contains(&(hot.start_pc, hot.end_pc)) {
                    // Already judged unaccelerable: keep executing on the
                    // CPU and keep watching for a different loop.
                    monitor.lsd.reset();
                } else if state.pc == hot.start_pc {
                    break Some(hot);
                } else {
                    // Align to the next loop-entry boundary for a clean
                    // state snapshot. One loop iteration retires at most
                    // `len` instructions, so a 2x budget either reaches the
                    // entry or proves the loop already exited (in which
                    // case monitoring simply continues).
                    let r = cpu.run(
                        program,
                        state,
                        mem,
                        CPU,
                        RunLimits {
                            max_instrs: 2 * hot.len() as u64,
                            stop_pc: Some(hot.start_pc),
                        },
                        &mut monitor,
                    );
                    cpu_pipeline.absorb(&r);
                    warmup_cycles += r.cycles;
                    warmup_instrs += r.retired;
                    match r.stop {
                        StopReason::StopPc => break Some(hot),
                        StopReason::InstrLimit => monitor.lsd.reset(),
                        _ => break None,
                    }
                }
            } else if !matches!(r.stop, StopReason::InstrLimit) {
                break None;
            }
        };
        tracer.span_end(Subsystem::Cpu, "cpu.warmup", warmup_cycles);
        host::sim_cycles(warmup_cycles);
        let Some(hot) = hot else {
            if tracer.enabled() {
                tracer.instant(
                    Subsystem::Controller,
                    "no_loop",
                    "monitoring ended without a stable hot loop",
                    warmup_cycles,
                );
            }
            tracer.span_end(Subsystem::Controller, "detect", warmup_cycles);
            return Err(MesaError::NoLoopDetected);
        };
        if tracer.enabled() {
            tracer.instant(
                Subsystem::Controller,
                "hot_loop",
                &format!(
                    "pc=[{:#x},{:#x}) len={} iterations_seen={}",
                    hot.start_pc,
                    hot.end_pc,
                    hot.len(),
                    hot.iterations_seen
                ),
                warmup_cycles,
            );
        }
        tracer.span_end(Subsystem::Controller, "detect", warmup_cycles);
        if tracer.enabled() {
            mem.traffic().trace_counters(tracer, warmup_cycles);
        }
        drop(host_detect);
        // Host translate phase: trace-cache capture, C1-C3 checks, and
        // the LDFG build inside check_region (T1).
        let host_translate = host::span("translate");

        // ---- capture the region through the trace cache (binary path) ----
        // Primary fill: the machine words snooped from the fetch/retire
        // stream during monitoring. Instructions never executed (paths
        // skipped by forward branches) use the "stall fetch and read the
        // I-cache directly" fallback of §4.1.
        let tc = &mut self.trace_cache;
        let region_from_tc = tc
            .open_region(hot.start_pc, hot.end_pc)
            .ok()
            .and_then(|()| {
                for &(pc, word) in &monitor.captured {
                    tc.fill(pc, word);
                }
                if !tc.is_complete() {
                    tc.fill_from_program(program);
                }
                tc.to_program()
            });
        let region_image = match region_from_tc {
            Some(mut p) => {
                p.annotations = program.annotations.clone();
                p
            }
            None => program.clone(),
        };

        // ---- C1-C3 ----
        let detected = match check_region(
            &region_image,
            hot.start_pc,
            hot.end_pc,
            state,
            hot.iterations_seen,
            &self.system.accel,
            &self.system.detect,
        ) {
            Ok(d) => d,
            Err(reason) => {
                // Remember the verdict so monitoring skips this region from
                // now on (it finishes on the CPU).
                self.blacklist.insert((hot.start_pc, hot.end_pc));
                if tracer.enabled() {
                    tracer.instant(
                        Subsystem::Controller,
                        "reject",
                        &format!(
                            "region [{:#x},{:#x}) rejected: {reason}",
                            hot.start_pc, hot.end_pc
                        ),
                        warmup_cycles,
                    );
                }
                return Err(MesaError::Rejected(reason));
            }
        };
        let DetectedRegion { region, mut ldfg, expected_iterations } = detected;

        // Seed memory node weights with monitored AMAT (§3.1).
        for node in &mut ldfg.nodes {
            if node.instr.class() == OpClass::Load {
                if let Some(amat) = monitor.amat.amat(node.pc) {
                    node.op_weight = amat.max(1);
                }
            }
        }

        let annotation = region.annotation_at(hot.start_pc).map(|a| a.kind);
        drop(host_translate);
        // Host map phase: Algorithm 1 placement + program build (T2),
        // skipped almost entirely on a config-cache hit.
        let host_map = host::span("map");

        // ---- F2: map and configure (or reuse a cached configuration) ----
        let cached = self.cache.get(hot.start_pc, hot.end_pc).cloned();
        let from_cache = cached.is_some();
        let (mut accel_prog, initial_estimate, config) = match cached {
            Some(prog) => {
                // Re-encountered loop: skip LDFG/map, pay only the write.
                let lat = ConfigLatency {
                    ldfg_cycles: 0,
                    map_cycles: 0,
                    write_cycles: self.system.imap.config_write_per_node
                        * ldfg.len() as u64
                        * prog.tiles as u64,
                    transfer_cycles: self.system.imap.control_transfer,
                };
                (prog, 0, lat)
            }
            None => {
                let accel_cfg = self.system.accel;
                let supports = |c: Coord, class: OpClass| accel_cfg.supports(c, class);
                let sdfg = map_instructions(
                    &ldfg,
                    accel_cfg.grid(),
                    &supports,
                    self.accel.latency_model(),
                    &self.system.mapper,
                );
                let plan = memopt::analyze(&ldfg);
                let prog = build_accel_program(
                    &ldfg,
                    &sdfg,
                    Some(&plan),
                    annotation,
                    &accel_cfg,
                    &self.system.opts,
                    expected_iterations,
                );
                prog.validate(accel_cfg.grid())?;
                let lat = config_latency(
                    &self.system.imap,
                    &self.system.mapper,
                    ldfg.len(),
                    prog.tiles,
                );
                let est = sdfg.expected_iteration_latency();
                self.cache.insert(prog.clone());
                (prog, est, lat)
            }
        };
        drop(host_map);
        // ---- injected configuration-time faults (if a plan is armed) ----
        let fault_plan = self.fault_plan.clone().unwrap_or_default();
        let mut fault_log = FaultLog::default();
        if !fault_plan.is_benign() {
            // Stuck PEs: nodes placed on a dead coordinate are scrubbed off
            // the grid and take the fallback bus — slower, never wrong.
            let scrubbed = fault_plan.scrub_stuck_pes(&mut accel_prog);
            if scrubbed > 0 {
                fault_log.stuck_pes_scrubbed += scrubbed;
                if tracer.enabled() {
                    tracer.instant(
                        Subsystem::Fault,
                        "stuck_pe_scrub",
                        &format!("{scrubbed} node(s) moved off stuck PEs to the fallback bus"),
                        warmup_cycles,
                    );
                }
            }
            // Truncated config stream: the accelerator rejects the write,
            // the region is blacklisted, and the loop finishes on the CPU.
            if let Err(e) = fault_plan.check_config_stream(&accel_prog) {
                self.blacklist.insert((hot.start_pc, hot.end_pc));
                if tracer.enabled() {
                    tracer.instant(
                        Subsystem::Fault,
                        "config_truncated",
                        &format!(
                            "region [{:#x},{:#x}) config stream rejected: {e}",
                            hot.start_pc, hot.end_pc
                        ),
                        warmup_cycles,
                    );
                }
                return Err(MesaError::ConfigStream(e));
            }
        }
        let unmapped_nodes = accel_prog.nodes.iter().filter(|n| n.coord.is_none()).count();

        // Configuration spans: the breakdown is known analytically, so the
        // whole window [warmup, warmup + config.total()) is laid out up
        // front; the CPU-overlap span below runs concurrently on the CPU
        // timeline (§5.1).
        if tracer.enabled() {
            tracer.span_begin(Subsystem::Controller, "configure", warmup_cycles);
            let mut t = warmup_cycles;
            if config.ldfg_cycles > 0 {
                tracer.span_begin(Subsystem::Controller, "translate", t);
                t += config.ldfg_cycles;
                tracer.span_end(Subsystem::Controller, "translate", t);
            }
            if config.map_cycles > 0 {
                t = trace_map_stages(
                    &self.system.imap,
                    &self.system.mapper,
                    ldfg.len() as u64,
                    t,
                    tracer,
                );
            }
            if config.write_cycles > 0 {
                tracer.span_begin(Subsystem::Controller, "config.write", t);
                t += config.write_cycles;
                tracer.span_end(Subsystem::Controller, "config.write", t);
            }
            tracer.span_begin(Subsystem::Controller, "config.transfer", t);
            tracer.span_end(Subsystem::Controller, "config.transfer", t + config.transfer_cycles);
            tracer.span_end(Subsystem::Controller, "configure", warmup_cycles + config.total());
        }

        // ---- CPU keeps running while MESA configures (§5.1) ----
        let host_configure = host::span("configure");
        tracer.span_begin(Subsystem::Cpu, "cpu.config_overlap", warmup_cycles);
        let mut config_phase_cpu_cycles = 0u64;
        let mut cpu_iterations_during_config = 0u64;
        while config_phase_cpu_cycles < config.total() {
            // One loop iteration: step off the entry, then run to the next
            // entry.
            let r1 = cpu.run(program, state, mem, CPU, RunLimits::instrs(1), &mut monitor);
            let r2 = cpu.run(
                program,
                state,
                mem,
                CPU,
                RunLimits { max_instrs: 0, stop_pc: Some(hot.start_pc) },
                &mut monitor,
            );
            cpu_pipeline.absorb(&r1);
            cpu_pipeline.absorb(&r2);
            config_phase_cpu_cycles += r1.cycles + r2.cycles;
            cpu_iterations_during_config += 1;
            if r2.stop != StopReason::StopPc {
                let t = warmup_cycles + config_phase_cpu_cycles;
                tracer.span_end(Subsystem::Cpu, "cpu.config_overlap", t);
                if tracer.enabled() {
                    tracer.instant(
                        Subsystem::Controller,
                        "loop_exited_during_config",
                        "loop finished on the CPU before configuration completed",
                        t,
                    );
                }
                return Err(MesaError::LoopExitedDuringConfig);
            }
        }
        tracer.span_end(
            Subsystem::Cpu,
            "cpu.config_overlap",
            warmup_cycles + config_phase_cpu_cycles,
        );

        // Episode clock at the start of accelerated execution: the longer
        // of the configuration pipeline and the overlapped CPU execution
        // governs (they run concurrently).
        let now = warmup_cycles + config.total().max(config_phase_cpu_cycles);
        host::sim_cycles(now - warmup_cycles);
        drop(host_configure);
        // Everything the memory system has seen so far is CPU-side work
        // (warmup + config overlap); sample it so harnesses can attribute
        // the rest of the episode's traffic to the accelerator.
        let cpu_phase_traffic = mem.traffic();

        Ok(PreparedEpisode {
            start_pc: hot.start_pc,
            end_pc: hot.end_pc,
            warmup_cycles,
            warmup_instrs,
            cpu_pipeline,
            config,
            config_phase_cpu_cycles,
            cpu_iterations_during_config,
            accel_prog,
            ldfg,
            expected_iterations,
            initial_estimate,
            from_cache,
            unmapped_nodes,
            annotation,
            fault_plan,
            fault_log,
            cpu_phase_traffic,
            now,
        })
    }

    /// F3: the solo accelerated phase of an episode produced by
    /// [`prepare_episode`](Self::prepare_episode) — the whole grid belongs
    /// to this loop, and the controller re-optimizes the placement from
    /// latency counters measured on the accelerator.
    pub(crate) fn finish_episode(
        &mut self,
        prepared: PreparedEpisode,
        state: &mut ArchState,
        mem: &mut MemorySystem,
        tracer: &mut dyn Tracer,
    ) -> Result<OffloadReport, MesaError> {
        const ACCEL: usize = 1;
        let PreparedEpisode {
            start_pc,
            end_pc,
            warmup_cycles,
            warmup_instrs,
            cpu_pipeline,
            config,
            config_phase_cpu_cycles,
            cpu_iterations_during_config,
            accel_prog,
            mut ldfg,
            expected_iterations,
            initial_estimate,
            from_cache,
            unmapped_nodes,
            annotation,
            fault_plan,
            mut fault_log,
            cpu_phase_traffic,
            mut now,
        } = prepared;

        // ---- offload: run on the accelerator, optionally re-optimizing ----
        let mut activity = ActivityStats::default();
        let mut counters = PerfCounters::new(ldfg.len());
        let mut accel_cycles = 0u64;
        let mut accel_iterations = 0u64;
        let mut reconfig_cycles = 0u64;
        let mut reconfigurations = 0u32;
        let mut reopt_rounds: Vec<ReoptRound> = Vec::new();
        let mut current = accel_prog;
        let induction = ldfg.induction_nodes();

        // Iterative optimization pauses the accelerator at iteration-round
        // boundaries, so a tiled region's resume state is fully described
        // by the architectural registers (induction live-outs are fixed up
        // analytically below).
        let iterative =
            self.system.opts.iterative && self.system.opts.max_reconfigs > 0;

        let mut keep_optimizing = iterative;
        let host_offload = host::span("offload");
        let offload_started_at = now;
        tracer.span_begin(Subsystem::Controller, "offload", now);
        loop {
            let budget = if keep_optimizing && reconfigurations < self.system.opts.max_reconfigs {
                self.system.opts.opt_interval
            } else {
                self.system.max_accel_iterations
            };
            let r = match self.accel.execute_faulted_traced(
                &current,
                state,
                mem,
                ACCEL,
                budget,
                &fault_plan,
                tracer,
                now,
            ) {
                Ok(r) => r,
                Err(e) => {
                    tracer.span_end(Subsystem::Controller, "offload", now);
                    return Err(MesaError::Accel(e));
                }
            };

            now += r.cycles;
            accel_cycles += r.cycles;
            accel_iterations += r.iterations;
            merge_activity(&mut activity, &r.activity);
            merge_counters(&mut counters, &r.counters);
            fault_log.merge(&r.faults);

            // Write live-outs back (induction registers analytically under
            // tiling, where per-tile interleaving makes the engine's last
            // value tile-local).
            apply_live_outs(state, &current, &r.final_regs, &induction, &ldfg, r.iterations);

            if r.completed {
                break;
            }
            if accel_iterations >= self.system.max_accel_iterations {
                break;
            }

            // ---- F3: iterative optimization ----
            let host_reoptimize = host::span("reoptimize");
            tracer.span_begin(Subsystem::Controller, "reoptimize", now);
            let critical_path_before = ldfg.critical_path().1;
            // Counter corruption: bit-flips land on the measured latencies
            // the optimizer consumes; `apply_counters` clamps them so one
            // corrupted sample cannot steer placement forever.
            let mut measured_counters = r.counters.clone();
            if fault_plan.counter_bit_flips > 0 {
                let flipped = fault_plan
                    .corrupt_counters(&mut measured_counters, reopt_rounds.len() as u64);
                fault_log.counter_bits_flipped += flipped;
                if tracer.enabled() {
                    tracer.instant(
                        Subsystem::Fault,
                        "counter_corruption",
                        &format!(
                            "{flipped} latency-counter bit(s) flipped before round {}",
                            reopt_rounds.len()
                        ),
                        now,
                    );
                }
            }
            apply_counters(&mut ldfg, &measured_counters);
            let critical_path_after = ldfg.critical_path().1;
            let measured = (r.cycles / r.iterations.max(1)).max(1);
            if tracer.enabled() {
                tracer.counter(
                    Subsystem::Controller,
                    "reopt.measured_cycles_per_iteration",
                    measured,
                    now,
                );
            }
            let out = reoptimize(
                &ldfg,
                &self.system.accel,
                self.accel.latency_model(),
                &self.system.mapper,
                measured,
            );
            let mut round = ReoptRound {
                round: reopt_rounds.len() as u32,
                iterations_before: accel_iterations,
                measured_cycles_per_iter: measured,
                new_estimate: out.new_estimate,
                critical_path_before,
                critical_path_after,
                placement_moves: 0,
                reconfigured: false,
                tiles_after: current.tiles,
                reconfig_cycles: 0,
            };
            if out.worthwhile {
                let plan = memopt::analyze(&ldfg);
                let next = build_accel_program(
                    &ldfg,
                    &out.sdfg,
                    Some(&plan),
                    annotation,
                    &self.system.accel,
                    &self.system.opts,
                    expected_iterations,
                );
                if next.validate(self.system.accel.grid()).is_ok() {
                    let extra = reconfig_latency(
                        &self.system.imap,
                        &self.system.mapper,
                        ldfg.len(),
                        next.tiles,
                    )
                    .total();
                    reconfig_cycles += extra;
                    now += extra;
                    if tracer.enabled() {
                        tracer.instant(
                            Subsystem::Controller,
                            "reconfigure",
                            &format!("remapped to {} tile(s), +{extra} cycles", next.tiles),
                            now,
                        );
                    }
                    round.placement_moves = current
                        .nodes
                        .iter()
                        .zip(&next.nodes)
                        .filter(|(a, b)| a.coord != b.coord)
                        .count();
                    round.reconfigured = true;
                    round.tiles_after = next.tiles;
                    round.reconfig_cycles = extra;
                    current = next;
                    self.cache.insert(current.clone());
                }
                reconfigurations += 1;
            } else {
                // The model sees no further win; stop paying profile
                // segments and run the remainder uninterrupted.
                keep_optimizing = false;
            }
            reopt_rounds.push(round);
            tracer.span_end(Subsystem::Controller, "reoptimize", now);
            drop(host_reoptimize);
        }
        host::sim_cycles(now - offload_started_at);
        drop(host_offload);
        tracer.span_end(Subsystem::Controller, "offload", now);
        if tracer.enabled() {
            mem.traffic().trace_counters(tracer, now);
        }

        // Control returns to the CPU just past the loop (§5.1).
        state.pc = end_pc;

        Ok(OffloadReport {
            region: (start_pc, end_pc),
            warmup_cycles,
            warmup_instrs,
            config,
            config_phase_cpu_cycles,
            cpu_iterations_during_config,
            reconfig_cycles,
            reconfigurations,
            accel_cycles,
            accel_iterations,
            tiles: current.tiles,
            pipelined: current.pipelined,
            unmapped_nodes,
            expected_iterations,
            initial_estimate,
            from_cache,
            cpu_phase_traffic,
            cpu_pipeline,
            placement: current.nodes.iter().map(|n| n.coord).collect(),
            reopt_rounds,
            activity,
            counters,
            faults: fault_log,
            tenant: 0,
            fabric_region: None,
            migrations: 0,
            queue_wait_cycles: 0,
            checkpoint_cycles: 0,
        })
    }

    /// Drives a whole program to completion: CPU execution interleaved
    /// with as many offload episodes as the program offers. Rejected
    /// regions are blacklisted and finish on the CPU; re-encountered
    /// accepted regions hit the configuration cache (paper §4.3).
    ///
    /// Returns the episode reports plus total cycle accounting. The
    /// program must terminate (via `ecall` exit / `ebreak`) or exhaust
    /// `max_cpu_instrs` of CPU execution.
    pub fn run_program(
        &mut self,
        program: &Program,
        state: &mut ArchState,
        mem: &mut MemorySystem,
        cpu: &mut OoOCore,
        max_cpu_instrs: u64,
    ) -> ProgramRunReport {
        self.run_program_traced(program, state, mem, cpu, max_cpu_instrs, &mut NullTracer)
    }

    /// [`run_program`](Self::run_program) with tracing: each offload
    /// episode's spans are emitted on its own episode-relative clock, and
    /// rejected regions surface as `reject` instant events.
    pub fn run_program_traced(
        &mut self,
        program: &Program,
        state: &mut ArchState,
        mem: &mut MemorySystem,
        cpu: &mut OoOCore,
        max_cpu_instrs: u64,
        tracer: &mut dyn Tracer,
    ) -> ProgramRunReport {
        let mut report = ProgramRunReport::default();
        loop {
            match self.offload_traced(program, state, mem, cpu, tracer) {
                Ok(ep) => {
                    report.total_cycles += ep.total_cycles();
                    report.cpu_instrs += ep.warmup_instrs;
                    report.offloads.push(ep);
                }
                Err(MesaError::Rejected(reason)) => {
                    // Blacklisted inside offload() on the *next* attempt;
                    // record it here so monitoring can move on.
                    report.rejections.push(reason);
                    // The warmup already advanced the CPU; keep going.
                }
                Err(MesaError::ConfigStream(_)) => {
                    // The region was blacklisted when the corrupted stream
                    // was rejected; the loop finishes on the CPU and
                    // monitoring moves on to other regions.
                    report.config_declines += 1;
                }
                Err(_) => break, // NoLoopDetected / halt / exhausted
            }
            if report.cpu_instrs >= max_cpu_instrs {
                break;
            }
            // If the program has halted, a final CPU probe ends quickly.
            if program.fetch(state.pc).is_none() {
                break;
            }
        }
        // Finish whatever straight-line code remains.
        let r = cpu.run(
            program,
            state,
            mem,
            0,
            RunLimits::instrs(max_cpu_instrs.saturating_sub(report.cpu_instrs).max(1)),
            &mut mesa_cpu::NullMonitor,
        );
        report.total_cycles += r.cycles;
        report.cpu_instrs += r.retired;
        report.halted = r.stop == StopReason::Halted;
        report
    }
}

/// Accounting for a whole-program run under MESA (multiple offload
/// episodes plus CPU execution in between).
#[derive(Debug, Clone, Default)]
pub struct ProgramRunReport {
    /// One report per successful offload episode, in program order.
    pub offloads: Vec<OffloadReport>,
    /// Reasons for regions that were detected but rejected.
    pub rejections: Vec<RejectReason>,
    /// Episodes declined because the configuration stream arrived
    /// truncated or corrupt (the region finished on the CPU).
    pub config_declines: u64,
    /// Total cycles across CPU and accelerator phases.
    pub total_cycles: u64,
    /// Instructions the CPU retired (monitoring, config overlap, glue).
    pub cpu_instrs: u64,
    /// Whether the program reached its exit.
    pub halted: bool,
}

impl ProgramRunReport {
    /// Iterations executed on the accelerator across all episodes.
    #[must_use]
    pub fn accel_iterations(&self) -> u64 {
        self.offloads.iter().map(|o| o.accel_iterations).sum()
    }

    /// Episodes served from the configuration cache.
    #[must_use]
    pub fn cache_hits(&self) -> usize {
        self.offloads.iter().filter(|o| o.from_cache).count()
    }
}

/// Applies accelerator live-outs to the architectural state.
pub(crate) fn apply_live_outs(
    state: &mut ArchState,
    prog: &AccelProgram,
    final_regs: &[(Reg, u64)],
    induction: &[u32],
    ldfg: &crate::Ldfg,
    iterations: u64,
) {
    for &(reg, value) in final_regs {
        let producer = prog
            .live_out
            .iter()
            .find(|&&(r, _)| r == reg)
            .map(|&(_, n)| n);
        if prog.tiles > 1 {
            if let Some(n) = producer {
                // The producer index comes from the (possibly corrupted)
                // configuration; a missing node falls through to the
                // engine-reported value instead of indexing out of range.
                if let Some(node) = ldfg.nodes.get(n as usize) {
                    if induction.contains(&n) {
                        let step = node.instr.imm;
                        let init = state.read(reg);
                        let delta = (i128::from(iterations) * i128::from(step)) as u64;
                        state.write(reg, init.wrapping_add(delta));
                        continue;
                    }
                }
            }
        }
        state.write(reg, value);
    }
}

fn merge_activity(into: &mut ActivityStats, from: &ActivityStats) {
    into.int_ops += from.int_ops;
    into.fp_ops += from.fp_ops;
    into.loads += from.loads;
    into.stores += from.stores;
    into.pe_busy_cycles += from.pe_busy_cycles;
    into.local_transfers += from.local_transfers;
    into.noc_transfers += from.noc_transfers;
    into.noc_hop_cycles += from.noc_hop_cycles;
    into.fallback_transfers += from.fallback_transfers;
    into.forwards += from.forwards;
    into.violations += from.violations;
    into.disabled_fires += from.disabled_fires;
    into.vector_piggybacks += from.vector_piggybacks;
    into.prefetch_hits += from.prefetch_hits;
}

fn merge_counters(into: &mut PerfCounters, from: &PerfCounters) {
    for (a, b) in into.nodes.iter_mut().zip(&from.nodes) {
        a.fires += b.fires;
        a.total_op_cycles += b.total_op_cycles;
        for s in 0..2 {
            a.total_in_cycles[s] += b.total_in_cycles[s];
            a.in_samples[s] += b.in_samples[s];
        }
    }
}

/// Convenience wrapper: build a fresh CPU, monitor + offload one region.
///
/// `mem` must have been created with at least two requesters (0 = CPU,
/// 1 = accelerator).
///
/// # Errors
/// Propagates [`MesaController::offload`] errors.
pub fn run_offload(
    program: &Program,
    state: &mut ArchState,
    mem: &mut MemorySystem,
    system: &SystemConfig,
) -> Result<OffloadReport, MesaError> {
    run_offload_traced(program, state, mem, system, &mut NullTracer)
}

/// [`run_offload`] with tracing (see
/// [`MesaController::offload_traced`]).
///
/// # Errors
/// Propagates [`MesaController::offload`] errors.
pub fn run_offload_traced(
    program: &Program,
    state: &mut ArchState,
    mem: &mut MemorySystem,
    system: &SystemConfig,
    tracer: &mut dyn Tracer,
) -> Result<OffloadReport, MesaError> {
    let mut controller = MesaController::new(system.clone());
    let mut cpu = OoOCore::new(system.core);
    controller.offload_traced(program, state, mem, &mut cpu, tracer)
}

/// [`run_offload`] under an armed fault-injection plan: the episode either
/// completes with correct architectural results (recovering from injected
/// faults) or declines with a typed [`MesaError`] — it never panics.
///
/// # Errors
/// Propagates [`MesaController::offload`] errors, including
/// [`MesaError::ConfigStream`] when the plan truncates the bitstream.
pub fn run_offload_faulted(
    program: &Program,
    state: &mut ArchState,
    mem: &mut MemorySystem,
    system: &SystemConfig,
    plan: &FaultPlan,
) -> Result<OffloadReport, MesaError> {
    run_offload_faulted_traced(program, state, mem, system, plan, &mut NullTracer)
}

/// [`run_offload_faulted`] with tracing: injected faults surface as
/// instants on the `fault` subsystem timeline.
///
/// # Errors
/// Propagates [`MesaController::offload`] errors.
pub fn run_offload_faulted_traced(
    program: &Program,
    state: &mut ArchState,
    mem: &mut MemorySystem,
    system: &SystemConfig,
    plan: &FaultPlan,
    tracer: &mut dyn Tracer,
) -> Result<OffloadReport, MesaError> {
    let mut controller = MesaController::new(system.clone());
    controller.set_fault_plan(Some(plan.clone()));
    let mut cpu = OoOCore::new(system.core);
    controller.offload_traced(program, state, mem, &mut cpu, tracer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesa_isa::{Asm, ParallelKind, Xlen};
    use mesa_isa::reg::abi::*;

    const BASE: u64 = 0x10_0000;
    const OUT: u64 = 0x20_0000;

    /// sum += a[i] over n elements, then exit.
    fn sum_kernel(n: u64) -> (Program, ArchState) {
        let mut a = Asm::new(0x1000);
        a.label("loop");
        a.lw(T0, A0, 0);
        a.add(T1, T1, T0);
        a.addi(A0, A0, 4);
        a.bne(A0, A1, "loop");
        a.sw(T1, A2, 0);
        a.li(A7, 93);
        a.ecall();
        let p = a.finish().unwrap();
        let mut st = ArchState::new(0x1000, Xlen::Rv32);
        st.write(A0, BASE);
        st.write(A1, BASE + 4 * n);
        st.write(A2, OUT);
        (p, st)
    }

    /// Annotated parallel scale kernel: b[i] = a[i] * 3.
    fn scale_kernel(n: u64) -> (Program, ArchState) {
        let mut a = Asm::new(0x1000);
        a.pragma(ParallelKind::Parallel);
        a.label("loop");
        a.lw(T0, A0, 0);
        a.slli(T1, T0, 1);
        a.add(T1, T1, T0);
        a.sw(T1, A2, 0);
        a.addi(A0, A0, 4);
        a.addi(A2, A2, 4);
        a.bne(A0, A1, "loop");
        a.end_pragma();
        a.li(A7, 93);
        a.ecall();
        let p = a.finish().unwrap();
        let mut st = ArchState::new(0x1000, Xlen::Rv32);
        st.write(A0, BASE);
        st.write(A1, BASE + 4 * n);
        st.write(A2, OUT);
        (p, st)
    }

    fn mem_with_data(n: u64) -> MemorySystem {
        let mut mem = MemorySystem::new(MemConfig::default(), 2);
        for i in 0..n {
            mem.data_mut().store_u32(BASE + 4 * i, (i % 100) as u32 + 1);
        }
        mem
    }

    #[test]
    fn offloads_sum_loop_end_to_end() {
        let n = 2000;
        let (p, mut st) = sum_kernel(n);
        let mut mem = mem_with_data(n);
        let report = run_offload(&p, &mut st, &mut mem, &SystemConfig::m128()).unwrap();

        // Iterations split between CPU (warmup + config) and accelerator.
        let cpu_iters = report.warmup_instrs / 4 + report.cpu_iterations_during_config;
        assert!(report.accel_iterations > 0);
        assert!(report.accel_iterations + cpu_iters >= n);
        assert_eq!(report.region, (0x1000, 0x1010));
        assert!(!report.from_cache);
        assert!(report.config.total() > 0);

        // The final register state matches a pure-CPU run.
        let expected_sum: u64 = (0..n).map(|i| u64::from((i % 100) as u32 + 1)).sum();
        assert_eq!(st.read(T1) as u32 as u64, expected_sum & 0xFFFF_FFFF);
        assert_eq!(st.read(A0), BASE + 4 * n);
        assert_eq!(st.pc, 0x1010, "control returned past the loop");
    }

    #[test]
    fn cpu_continues_after_offload() {
        let n = 1000;
        let (p, mut st) = sum_kernel(n);
        let mut mem = mem_with_data(n);
        run_offload(&p, &mut st, &mut mem, &SystemConfig::m128()).unwrap();

        // Resume the CPU after the loop: it stores the sum and exits.
        let mut cpu = OoOCore::new(CoreConfig::boom_baseline());
        let r = cpu.run(&p, &mut st, &mut mem, 0, RunLimits::none(), &mut mesa_cpu::NullMonitor);
        assert_eq!(r.stop, StopReason::Halted);
        let expected_sum: u32 = (0..n).map(|i| (i % 100) as u32 + 1).sum();
        assert_eq!(mem.data_mut().load_u32(OUT), expected_sum);
    }

    #[test]
    fn annotated_loop_gets_tiled() {
        let n = 4000;
        let (p, mut st) = scale_kernel(n);
        let mut mem = mem_with_data(n);
        let report = run_offload(&p, &mut st, &mut mem, &SystemConfig::m128()).unwrap();
        assert!(report.tiles > 1, "parallel pragma should tile, got {}", report.tiles);
        assert!(report.pipelined);

        // Every output slot the accelerator covered is correct.
        let cpu_iters = report.warmup_instrs / 7 + report.cpu_iterations_during_config;
        for i in cpu_iters..n {
            let a = (i % 100) as u32 + 1;
            assert_eq!(
                mem.data_mut().load_u32(OUT + 4 * i),
                a * 3,
                "b[{i}] wrong (cpu covered first {cpu_iters})"
            );
        }
    }

    #[test]
    fn short_loop_rejected_for_iterations() {
        let (p, mut st) = sum_kernel(20);
        let mut mem = mem_with_data(20);
        let err = run_offload(&p, &mut st, &mut mem, &SystemConfig::m128()).unwrap_err();
        assert!(matches!(err, MesaError::Rejected(RejectReason::TooFewIterations { .. })));
    }

    #[test]
    fn unsupported_loop_rejected() {
        let mut a = Asm::new(0x1000);
        a.label("loop");
        a.lw(T0, A0, 0);
        a.ecall(); // syscall in the body
        a.addi(A0, A0, 4);
        a.bne(A0, A1, "loop");
        let p = a.finish().unwrap();
        let mut st = ArchState::new(0x1000, Xlen::Rv32);
        st.write(A0, BASE);
        st.write(A1, BASE + 4 * 1000);
        st.write(A7, 1); // keep ecall from halting
        let mut mem = MemorySystem::new(MemConfig::default(), 2);
        let err = run_offload(&p, &mut st, &mut mem, &SystemConfig::m128()).unwrap_err();
        assert!(matches!(
            err,
            MesaError::Rejected(RejectReason::UnsupportedInstruction { .. })
        ));
    }

    #[test]
    fn straightline_program_detects_nothing() {
        let mut a = Asm::new(0x1000);
        for _ in 0..64 {
            a.addi(T0, T0, 1);
        }
        a.li(A7, 93);
        a.ecall();
        let p = a.finish().unwrap();
        let mut st = ArchState::new(0x1000, Xlen::Rv32);
        let mut mem = MemorySystem::new(MemConfig::default(), 2);
        let err = run_offload(&p, &mut st, &mut mem, &SystemConfig::m128()).unwrap_err();
        assert_eq!(err, MesaError::NoLoopDetected);
    }

    #[test]
    fn config_cache_hit_on_reencounter() {
        let n = 2000;
        let (p, st0) = sum_kernel(n);
        let system = SystemConfig::m128();
        let mut controller = MesaController::new(system.clone());
        let mut cpu = OoOCore::new(system.core);

        let mut st = st0.clone();
        let mut mem = mem_with_data(n);
        let first = controller.offload(&p, &mut st, &mut mem, &mut cpu).unwrap();
        assert!(!first.from_cache);

        // Encounter the same loop again (fresh data, same PCs).
        let mut st = st0.clone();
        let mut mem = mem_with_data(n);
        let second = controller.offload(&p, &mut st, &mut mem, &mut cpu).unwrap();
        assert!(second.from_cache);
        assert!(
            second.config.total() < first.config.total(),
            "cached config {} must be cheaper than first {}",
            second.config.total(),
            first.config.total()
        );
    }

    #[test]
    fn traced_offload_emits_balanced_phase_spans() {
        let n = 2000;
        let (p, mut st) = sum_kernel(n);
        let mut mem = mem_with_data(n);
        let mut tracer = mesa_trace::RingTracer::new(4096);
        let report =
            run_offload_traced(&p, &mut st, &mut mem, &SystemConfig::m128(), &mut tracer).unwrap();

        assert!(tracer.open_spans().is_empty(), "open: {:?}", tracer.open_spans());
        let chrome = tracer.to_chrome_trace();
        let s = mesa_trace::validate_chrome_trace(&chrome).expect("valid chrome trace");
        for required in ["detect", "cpu.warmup", "configure", "translate", "map",
            "config.write", "config.transfer", "cpu.config_overlap", "offload", "accel.execute"]
        {
            assert!(
                s.span_names.iter().any(|n| n == required),
                "missing span {required}; have {:?}",
                s.span_names
            );
        }
        // Timestamps must be episode-consistent: no event before 0, the
        // offload span must start at warmup + max(config, overlap).
        let start = report.warmup_cycles
            + report.config.total().max(report.config_phase_cpu_cycles);
        let offload_begin = tracer
            .events()
            .iter()
            .find(|e| matches!(&e.kind, mesa_trace::EventKind::Begin { name } if name == "offload"))
            .expect("offload span present");
        assert_eq!(offload_begin.cycle, start);
        // With iterative optimization on (default), at least one
        // reoptimize round is traced unless the loop finished in one
        // profile segment.
        if report.reconfigurations > 0 {
            assert!(s.span_names.iter().any(|n| n == "reoptimize"));
        }
        assert!(report.cpu_phase_traffic.l1_accesses > 0);
    }

    #[test]
    fn traced_rejection_emits_reject_event_and_stays_balanced() {
        let (p, mut st) = sum_kernel(20);
        let mut mem = mem_with_data(20);
        let mut tracer = mesa_trace::RingTracer::new(1024);
        let err =
            run_offload_traced(&p, &mut st, &mut mem, &SystemConfig::m128(), &mut tracer)
                .unwrap_err();
        assert!(matches!(err, MesaError::Rejected(_)));
        assert!(tracer.open_spans().is_empty());
        let has_reject = tracer.events().iter().any(|e| {
            matches!(&e.kind, mesa_trace::EventKind::Instant { name, detail }
                if name == "reject" && detail.contains("C3"))
        });
        assert!(has_reject, "reject instant with rendered reason expected");
    }

    #[test]
    fn untraced_and_traced_offloads_agree() {
        let n = 2000;
        let (p, st0) = sum_kernel(n);
        let mut st_a = st0.clone();
        let mut mem_a = mem_with_data(n);
        let a = run_offload(&p, &mut st_a, &mut mem_a, &SystemConfig::m128()).unwrap();
        let mut st_b = st0;
        let mut mem_b = mem_with_data(n);
        let mut tracer = mesa_trace::RingTracer::new(4096);
        let b =
            run_offload_traced(&p, &mut st_b, &mut mem_b, &SystemConfig::m128(), &mut tracer)
                .unwrap();
        assert_eq!(a.accel_iterations, b.accel_iterations);
        assert_eq!(a.total_cycles(), b.total_cycles());
        assert_eq!(st_a.read(T1), st_b.read(T1));
    }

    #[test]
    fn offload_report_registers_metrics() {
        let n = 2000;
        let (p, mut st) = sum_kernel(n);
        let mut mem = mem_with_data(n);
        let r = run_offload(&p, &mut st, &mut mem, &SystemConfig::m128()).unwrap();
        let mut reg = MetricsRegistry::new();
        r.record_metrics(&mut reg);
        assert_eq!(reg.counter("offload.episodes"), 1);
        assert_eq!(reg.counter("offload.accel_iterations"), r.accel_iterations);
        assert_eq!(reg.counter("offload.warmup_cycles"), r.warmup_cycles);
        assert!(reg.counter("offload.activity.loads") > 0);
        assert!(reg.gauge_value("offload.cycles_per_iteration").is_some());
    }

    /// Every coordinate a single tile can place onto (rows 0..4 after the
    /// FP-period rounding), so scrubbing them forces all nodes to the bus.
    fn all_tile_coords() -> Vec<mesa_accel::Coord> {
        (0..4).flat_map(|r| (0..8).map(move |c| mesa_accel::Coord::new(r, c))).collect()
    }

    fn expected_sum(n: u64) -> u64 {
        (0..n).map(|i| u64::from((i % 100) as u32 + 1)).sum::<u64>() & 0xFFFF_FFFF
    }

    #[test]
    fn stuck_pes_are_scrubbed_and_results_stay_correct() {
        let n = 2000;
        let (p, mut st) = sum_kernel(n);
        let mut mem = mem_with_data(n);
        let plan = FaultPlan { stuck_pes: all_tile_coords(), ..FaultPlan::none() };
        let r = run_offload_faulted(&p, &mut st, &mut mem, &SystemConfig::m128(), &plan)
            .expect("episode survives stuck PEs");
        assert!(r.faults.stuck_pes_scrubbed > 0, "every placed node was on a stuck PE");
        assert_eq!(r.unmapped_nodes, r.placement.len(), "all nodes fell back to the bus");
        assert_eq!(st.read(T1) as u32 as u64, expected_sum(n));
        assert_eq!(st.pc, 0x1010);
    }

    #[test]
    fn dropped_bus_tokens_slow_but_do_not_corrupt() {
        let n = 2000;
        let (p, st0) = sum_kernel(n);

        let mut st_clean = st0.clone();
        let mut mem_clean = mem_with_data(n);
        let clean =
            run_offload(&p, &mut st_clean, &mut mem_clean, &SystemConfig::m128()).unwrap();

        // Stuck PEs push traffic onto the bus, where every 2nd token drops.
        let plan = FaultPlan {
            stuck_pes: all_tile_coords(),
            bus_drop_period: 2,
            ..FaultPlan::none()
        };
        let mut st = st0;
        let mut mem = mem_with_data(n);
        let r = run_offload_faulted(&p, &mut st, &mut mem, &SystemConfig::m128(), &plan)
            .expect("episode survives dropped bus tokens");
        assert!(r.faults.bus_tokens_dropped > 0);
        assert!(
            r.cycles_per_iteration() >= clean.cycles_per_iteration(),
            "retried tokens cannot make iterations faster"
        );
        assert_eq!(st.read(T1) as u32 as u64, expected_sum(n));
    }

    #[test]
    fn corrupted_counters_converge_under_reoptimization() {
        let n = 4000;
        let (p, mut st) = sum_kernel(n);
        let mut mem = mem_with_data(n);
        let plan = FaultPlan { seed: 7, counter_bit_flips: 4, ..FaultPlan::none() };
        let r = run_offload_faulted(&p, &mut st, &mut mem, &SystemConfig::m128(), &plan)
            .expect("episode survives counter corruption");
        if !r.reopt_rounds.is_empty() {
            assert!(r.faults.counter_bits_flipped > 0);
        }
        assert_eq!(st.read(T1) as u32 as u64, expected_sum(n));
        assert_eq!(st.pc, 0x1010);
    }

    #[test]
    fn truncated_config_stream_declines_and_loop_finishes_on_cpu() {
        let n = 2000;
        let (p, mut st) = sum_kernel(n);
        let mut mem = mem_with_data(n);
        let mut system = SystemConfig::m128();
        system.max_warmup_instrs = 50_000;
        let mut controller = MesaController::new(system.clone());
        controller.set_fault_plan(Some(FaultPlan {
            truncate_config: Some(3),
            ..FaultPlan::none()
        }));
        let mut cpu = OoOCore::new(system.core);

        let err = controller.offload(&p, &mut st, &mut mem, &mut cpu).unwrap_err();
        assert!(matches!(err, MesaError::ConfigStream(_)), "got {err}");

        // The region is blacklisted; a re-attempt declines without a loop.
        let err = controller.offload(&p, &mut st, &mut mem, &mut cpu).unwrap_err();
        assert!(
            matches!(err, MesaError::NoLoopDetected | MesaError::LoopExitedDuringConfig),
            "got {err}"
        );

        // The loop still completes correctly on the CPU.
        let r = cpu.run(&p, &mut st, &mut mem, 0, RunLimits::none(), &mut mesa_cpu::NullMonitor);
        assert_eq!(r.stop, StopReason::Halted);
        assert_eq!(mem.data_mut().load_u32(OUT) as u64, expected_sum(n));
    }

    #[test]
    fn run_program_survives_config_truncation_end_to_end() {
        let n = 2000;
        let (p, mut st) = sum_kernel(n);
        let mut mem = mem_with_data(n);
        let mut system = SystemConfig::m128();
        system.max_warmup_instrs = 50_000;
        let mut controller = MesaController::new(system.clone());
        controller.set_fault_plan(Some(FaultPlan {
            truncate_config: Some(1),
            ..FaultPlan::none()
        }));
        let mut cpu = OoOCore::new(system.core);
        let report = controller.run_program(&p, &mut st, &mut mem, &mut cpu, 10_000_000);
        assert!(report.halted, "program must reach its exit on the CPU");
        assert_eq!(report.config_declines, 1);
        assert!(report.offloads.is_empty());
        assert_eq!(mem.data_mut().load_u32(OUT) as u64, expected_sum(n));
    }

    #[test]
    fn faulted_episode_reports_fault_metrics() {
        let n = 2000;
        let (p, mut st) = sum_kernel(n);
        let mut mem = mem_with_data(n);
        let plan = FaultPlan {
            stuck_pes: all_tile_coords(),
            bus_drop_period: 3,
            ..FaultPlan::none()
        };
        let r = run_offload_faulted(&p, &mut st, &mut mem, &SystemConfig::m128(), &plan).unwrap();
        let mut reg = MetricsRegistry::new();
        r.record_metrics(&mut reg);
        assert_eq!(reg.counter("offload.fault.stuck_pes_scrubbed"), r.faults.stuck_pes_scrubbed);
        assert_eq!(reg.counter("offload.fault.bus_tokens_dropped"), r.faults.bus_tokens_dropped);
    }

    #[test]
    fn report_accounting_is_consistent() {
        let n = 2000;
        let (p, mut st) = sum_kernel(n);
        let mut mem = mem_with_data(n);
        let r = run_offload(&p, &mut st, &mut mem, &SystemConfig::m128()).unwrap();
        assert!(r.total_cycles() >= r.warmup_cycles + r.accel_cycles);
        assert!(r.cycles_per_iteration() > 0.0);
        assert!(r.config_phase_cpu_cycles >= r.config.total());
    }
}
