//! The Spatial DFG (SDFG) and the data-driven instruction mapping
//! algorithm (paper §3.3, Algorithm 1).
//!
//! For each instruction in LDFG order, the mapper gathers a candidate
//! matrix `C_i` of nearby positions (a fixed 4×8 window positioned at the
//! higher-latency predecessor, as in the hardware implementation), filters
//! it with the occupancy matrix `F_free` and the per-operation support
//! matrix `F_op`, computes the expected completion latency of the
//! instruction at every remaining candidate (Eq. 1), and greedily commits
//! to the latency-minimizing position — single pass, no backtracking.
//! Instructions that fail to place fall back to the slower shared bus.

use crate::{Ldfg, LdfgNode};
use mesa_accel::{Coord, GridDim, LatencyModel, Operand};
use mesa_isa::OpClass;

/// How the candidate matrix is positioned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowMode {
    /// Fixed `rows × cols` window anchored at the higher-latency
    /// predecessor — what the paper's RTL implements ("due to constraints,
    /// C_i is a fixed 4×8 matrix positioned based on the predecessor with
    /// higher latency").
    FixedAtAnchor,
    /// The equidistant rectangle enclosed by the two predecessors (Eq. 3),
    /// falling back to the fixed window when fewer than two predecessors
    /// are placed. Used as an ablation.
    PredecessorRect,
}

/// Mapper parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MapperConfig {
    /// Candidate window rows.
    pub window_rows: usize,
    /// Candidate window columns.
    pub window_cols: usize,
    /// Window positioning policy.
    pub window_mode: WindowMode,
    /// Break latency ties by preferring positions with more free
    /// neighbors (the paper's tie-break); `false` takes the first minimum
    /// (ablation).
    pub tie_break_neighbors: bool,
    /// Expected extra latency for operands crossing the fallback bus
    /// (used in the model when a producer is unplaced).
    pub fallback_penalty: u64,
}

impl Default for MapperConfig {
    fn default() -> Self {
        MapperConfig {
            window_rows: 4,
            window_cols: 8,
            window_mode: WindowMode::FixedAtAnchor,
            tie_break_neighbors: true,
            fallback_penalty: 6,
        }
    }
}

/// The planar, position-indexed view of the mapped region (paper §3).
#[derive(Debug, Clone, PartialEq)]
pub struct Sdfg {
    /// Target grid dimensions.
    pub grid: GridDim,
    /// Placement per LDFG node (`None` = fallback bus).
    pub placement: Vec<Option<Coord>>,
    /// Expected completion latency per node at placement time (the model's
    /// `L_i`).
    pub est_latency: Vec<u64>,
    /// Nodes that could not be placed.
    pub failed: Vec<u32>,
}

impl Sdfg {
    /// Expected latency of one iteration under the placement model.
    #[must_use]
    pub fn expected_iteration_latency(&self) -> u64 {
        self.est_latency.iter().copied().max().unwrap_or(0)
    }

    /// Number of PEs used.
    #[must_use]
    pub fn pes_used(&self) -> usize {
        self.placement.iter().flatten().count()
    }

    /// The node placed at `c`, if any.
    #[must_use]
    pub fn node_at(&self, c: Coord) -> Option<u32> {
        self.placement
            .iter()
            .position(|&p| p == Some(c))
            .map(|i| i as u32)
    }
}

impl std::fmt::Display for Sdfg {
    /// Renders the placement as a grid: each cell shows the node index
    /// occupying that PE (`.` for free PEs). Rows beyond the last used one
    /// are elided.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let last_row = self
            .placement
            .iter()
            .flatten()
            .map(|c| c.row)
            .max()
            .unwrap_or(0);
        writeln!(
            f,
            "SDFG on {}x{} grid ({} placed, {} on fallback bus):",
            self.grid.rows,
            self.grid.cols,
            self.pes_used(),
            self.failed.len()
        )?;
        for row in 0..=last_row.min(self.grid.rows - 1) {
            for col in 0..self.grid.cols {
                match self.node_at(Coord::new(row, col)) {
                    Some(i) => write!(f, "{i:>4}")?,
                    None => write!(f, "{:>4}", ".")?,
                }
            }
            writeln!(f)?;
        }
        if !self.failed.is_empty() {
            writeln!(f, "fallback bus: {:?}", self.failed)?;
        }
        Ok(())
    }
}

/// Maps an LDFG onto a grid, producing the SDFG.
///
/// `supports(coord, class)` is the backend's `F_op` oracle (which PEs can
/// execute which operation classes); `model` supplies point-to-point
/// transfer latencies.
pub fn map_instructions<S, M>(
    ldfg: &Ldfg,
    grid: GridDim,
    supports: &S,
    model: &M,
    cfg: &MapperConfig,
) -> Sdfg
where
    S: Fn(Coord, OpClass) -> bool,
    M: LatencyModel + ?Sized,
{
    let n = ldfg.nodes.len();
    let mut free = vec![true; grid.len()];
    let mut placement: Vec<Option<Coord>> = vec![None; n];
    let mut est_latency = vec![0u64; n];
    let mut failed = Vec::new();
    let mut last_placed: Option<Coord> = None;
    // Reused across nodes: the filtered candidate window and the memoized
    // per-source (latency, producer placement) pairs.
    let mut candidates: Vec<Coord> = Vec::with_capacity(cfg.window_rows * cfg.window_cols);
    let mut src_arrivals: Vec<(u64, Option<Coord>)> = Vec::new();

    for (i, node) in ldfg.nodes.iter().enumerate() {
        // Arrival estimate per source and the anchoring predecessor.
        let (anchor, rect_corners) =
            anchor_for(node, &placement, &est_latency, last_placed);

        gather_candidates(
            grid,
            anchor,
            rect_corners,
            cfg,
            node.instr.class(),
            &free,
            supports,
            &mut candidates,
        );

        // Memoize the placed-source arrival inputs once per node instead of
        // re-resolving operands and placements for every candidate.
        src_arrivals.clear();
        for src in &node.src {
            if let Operand::Node { idx, carried: false, .. } = *src {
                src_arrivals.push((
                    est_latency[idx as usize],
                    placement.get(idx as usize).copied().flatten(),
                ));
            }
        }

        // Evaluate expected latency at each candidate (Alg. 1 lines 8-18).
        // `free_neighbors` is only consulted to break exact latency ties,
        // so it is evaluated lazily: for candidates that improve on the
        // best latency (to seed future tie-breaks) and for tie candidates.
        let mut best: Option<(Coord, u64, usize)> = None;
        for &c in &candidates {
            let mut arrival = 0u64;
            for &(l_s, p) in &src_arrivals {
                let transfer = match p {
                    Some(p) => model.transfer_latency(p, c),
                    None => cfg.fallback_penalty,
                };
                arrival = arrival.max(l_s + transfer);
            }
            let exp = node.op_weight + arrival;
            match best {
                Some((_, bl, _)) if exp > bl => {}
                Some((_, bl, bn)) if exp == bl => {
                    if cfg.tie_break_neighbors {
                        let neighbors = free_neighbors(grid, &free, c);
                        if neighbors > bn {
                            best = Some((c, exp, neighbors));
                        }
                    }
                }
                _ => {
                    best = Some((c, exp, free_neighbors(grid, &free, c)));
                    // Source-less nodes score identically everywhere; with
                    // the tie-break disabled the first candidate is final.
                    if src_arrivals.is_empty() && !cfg.tie_break_neighbors {
                        break;
                    }
                }
            }
        }

        match best {
            Some((c, exp, _)) => {
                placement[i] = Some(c);
                est_latency[i] = exp;
                free[grid.index(c)] = false;
                last_placed = Some(c);
            }
            None => {
                failed.push(i as u32);
                est_latency[i] = expected_latency_unplaced(node, &est_latency, cfg);
            }
        }
    }

    Sdfg { grid, placement, est_latency, failed }
}

/// Finds the window anchor: the placed predecessor whose data arrives
/// last (it "necessarily lies on the critical path", §3.3), plus both
/// predecessors' corners for the rectangle mode.
fn anchor_for(
    node: &LdfgNode,
    placement: &[Option<Coord>],
    est_latency: &[u64],
    last_placed: Option<Coord>,
) -> (Coord, Option<(Coord, Coord)>) {
    let mut anchor: Option<(Coord, u64)> = None;
    let mut corners: Vec<Coord> = Vec::new();
    for src in &node.src {
        if let Operand::Node { idx, carried, .. } = *src {
            if let Some(c) = placement.get(idx as usize).copied().flatten() {
                corners.push(c);
                // Carried inputs arrive at iteration start; they anchor
                // for locality but with zero arrival weight.
                let arrival = if carried { 0 } else { est_latency[idx as usize] };
                if anchor.is_none_or(|(_, a)| arrival >= a) {
                    anchor = Some((c, arrival));
                }
            }
        }
    }
    let anchor = anchor
        .map(|(c, _)| c)
        .or(last_placed)
        .unwrap_or(Coord::new(0, 0));
    let rect = if corners.len() == 2 {
        Some((corners[0], corners[1]))
    } else {
        None
    };
    (anchor, rect)
}

/// Builds the filtered candidate list `C_i ⊙ C_free ⊙ C_op` into `out`
/// (cleared first; the buffer is reused across nodes).
#[allow(clippy::too_many_arguments)]
fn gather_candidates<S>(
    grid: GridDim,
    anchor: Coord,
    rect: Option<(Coord, Coord)>,
    cfg: &MapperConfig,
    class: OpClass,
    free: &[bool],
    supports: &S,
    out: &mut Vec<Coord>,
) where
    S: Fn(Coord, OpClass) -> bool,
{
    let (row_range, col_range) = match (cfg.window_mode, rect) {
        (WindowMode::PredecessorRect, Some((a, b))) => {
            // The rectangle enclosed by the predecessors, padded by one so
            // that fully-occupied degenerate rectangles still offer room.
            let r0 = a.row.min(b.row).saturating_sub(1);
            let r1 = (a.row.max(b.row) + 2).min(grid.rows);
            let c0 = a.col.min(b.col).saturating_sub(1);
            let c1 = (a.col.max(b.col) + 2).min(grid.cols);
            (r0..r1, c0..c1)
        }
        _ => {
            // Fixed window anchored at the predecessor, clipped to the grid
            // while keeping its full size where possible.
            let r0 = anchor
                .row
                .saturating_sub(1)
                .min(grid.rows.saturating_sub(cfg.window_rows));
            let r1 = (r0 + cfg.window_rows).min(grid.rows);
            let c0 = anchor
                .col
                .saturating_sub(cfg.window_cols / 2)
                .min(grid.cols.saturating_sub(cfg.window_cols.min(grid.cols)));
            let c1 = (c0 + cfg.window_cols).min(grid.cols);
            (r0..r1, c0..c1)
        }
    };

    out.clear();
    for row in row_range {
        for col in col_range.clone() {
            let c = Coord::new(row, col);
            if free[grid.index(c)] && supports(c, class) {
                out.push(c);
            }
        }
    }
}

/// Model latency for a node left on the fallback bus.
fn expected_latency_unplaced(node: &LdfgNode, est_latency: &[u64], cfg: &MapperConfig) -> u64 {
    let mut arrival = 0u64;
    for src in &node.src {
        if let Operand::Node { idx, carried: false, .. } = *src {
            arrival = arrival.max(est_latency[idx as usize] + cfg.fallback_penalty);
        }
    }
    node.op_weight + arrival + cfg.fallback_penalty
}

/// Counts free 4-neighbors of `c` (the tie-break metric).
fn free_neighbors(grid: GridDim, free: &[bool], c: Coord) -> usize {
    let mut count = 0;
    let deltas: [(isize, isize); 4] = [(-1, 0), (1, 0), (0, -1), (0, 1)];
    for (dr, dc) in deltas {
        let row = c.row as isize + dr;
        let col = c.col as isize + dc;
        if row >= 0 && col >= 0 {
            let nc = Coord::new(row as usize, col as usize);
            if grid.contains(nc) && free[grid.index(nc)] {
                count += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesa_accel::{HierarchicalRowModel, MeshModel};
    use mesa_isa::{Asm};
    use mesa_isa::reg::abi::*;

    fn fp_chain_ldfg() -> Ldfg {
        // i1 = fadd (inputs ready), i2 = fmul(i1), i3 = fmul(i1) — the
        // shape of the paper's Fig. 3/4 snippet.
        let mut a = Asm::new(0x1000);
        a.label("loop");
        a.fadd_s(FT0, FA0, FA1); // i1
        a.fmul_s(FT1, FT0, FA2); // i2
        a.fmul_s(FT2, FT0, FA3); // i3
        a.addi(T0, T0, 1);
        a.bne(T0, A1, "loop");
        Ldfg::build(&a.finish().unwrap()).unwrap()
    }

    #[test]
    fn figure4_example2_mesh_picks_nearest_compatible() {
        // Mesh interconnect: latency = Manhattan distance. FP only on
        // columns 2 and 3 ("integer PEs filtered out by F_op").
        let ldfg = fp_chain_ldfg();
        let grid = GridDim::new(4, 4);
        let supports = |c: Coord, class: OpClass| -> bool {
            if class.needs_fp() {
                c.col >= 2
            } else {
                true
            }
        };
        let sdfg = map_instructions(&ldfg, grid, &supports, &MeshModel, &MapperConfig::default());
        assert!(sdfg.failed.is_empty());
        let p1 = sdfg.placement[0].unwrap(); // i1
        let p3 = sdfg.placement[2].unwrap(); // i3 (depends only on i1)
        // i3 must sit at an FP PE...
        assert!(p3.col >= 2);
        // ...and as close to i1 as any other free FP PE could be, given i2
        // took one neighbor.
        let dist = p1.manhattan(p3);
        assert!(dist <= 2, "i3 at {p3} is {dist} hops from i1 at {p1}");
    }

    #[test]
    fn figure4_example1_hierarchical_prefers_same_row() {
        // Row-slice interconnect: 1 cycle within a row, 3 across rows. The
        // mapper should keep the dependent multiply in i1's row when a
        // compatible PE is free there.
        let ldfg = fp_chain_ldfg();
        let grid = GridDim::new(4, 8);
        let supports = |_c: Coord, _class: OpClass| true;
        let model = HierarchicalRowModel::default();
        let sdfg = map_instructions(&ldfg, grid, &supports, &model, &MapperConfig::default());
        let p1 = sdfg.placement[0].unwrap();
        let p2 = sdfg.placement[1].unwrap();
        let p3 = sdfg.placement[2].unwrap();
        assert_eq!(p1.row, p2.row, "i2 stays in i1's row slice");
        assert_eq!(p1.row, p3.row, "i3 stays in i1's row slice");
    }

    #[test]
    fn occupied_positions_are_filtered() {
        let ldfg = fp_chain_ldfg();
        let grid = GridDim::new(4, 4);
        let supports = |_: Coord, _: OpClass| true;
        let sdfg = map_instructions(&ldfg, grid, &supports, &MeshModel, &MapperConfig::default());
        let placed: Vec<Coord> = sdfg.placement.iter().flatten().copied().collect();
        let mut dedup = placed.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(placed.len(), dedup.len(), "no two nodes share a PE");
    }

    #[test]
    fn unsupported_everywhere_falls_back_to_bus() {
        let ldfg = fp_chain_ldfg();
        let grid = GridDim::new(4, 4);
        // No FP anywhere: all three FP nodes must fail to place.
        let supports = |_c: Coord, class: OpClass| !class.needs_fp();
        let sdfg = map_instructions(&ldfg, grid, &supports, &MeshModel, &MapperConfig::default());
        assert_eq!(sdfg.failed, vec![0, 1, 2]);
        assert!(sdfg.placement[0].is_none());
        // The integer tail still places.
        assert!(sdfg.placement[3].is_some());
        assert!(sdfg.placement[4].is_some());
    }

    #[test]
    fn estimated_latency_reflects_placement_distance() {
        let ldfg = fp_chain_ldfg();
        let grid = GridDim::new(8, 8);
        let supports = |_: Coord, _: OpClass| true;
        let sdfg = map_instructions(&ldfg, grid, &supports, &MeshModel, &MapperConfig::default());
        // i1: 3 cycles (fadd, inputs ready). i2: 5 + (3 + dist).
        assert_eq!(sdfg.est_latency[0], 3);
        let p1 = sdfg.placement[0].unwrap();
        let p2 = sdfg.placement[1].unwrap();
        assert_eq!(sdfg.est_latency[1], 5 + 3 + p1.manhattan(p2));
        // The mapper found an adjacent slot for the first dependent.
        assert_eq!(p1.manhattan(p2), 1);
    }

    #[test]
    fn predecessor_rect_mode_places_between_parents() {
        // Node with two placed parents: the rectangle mode searches the
        // enclosed region.
        let mut a = Asm::new(0x1000);
        a.label("loop");
        a.fadd_s(FT0, FA0, FA1); // i0
        a.fadd_s(FT1, FA2, FA3); // i1
        a.fmul_s(FT2, FT0, FT1); // i2: two parents
        a.addi(T0, T0, 1);
        a.bne(T0, A1, "loop");
        let ldfg = Ldfg::build(&a.finish().unwrap()).unwrap();
        let grid = GridDim::new(8, 8);
        let supports = |_: Coord, _: OpClass| true;
        let cfg = MapperConfig { window_mode: WindowMode::PredecessorRect, ..Default::default() };
        let sdfg = map_instructions(&ldfg, grid, &supports, &MeshModel, &cfg);
        assert!(sdfg.failed.is_empty());
        let p0 = sdfg.placement[0].unwrap();
        let p1 = sdfg.placement[1].unwrap();
        let p2 = sdfg.placement[2].unwrap();
        // The child sits within one step of the parents' bounding box.
        assert!(p2.row + 1 >= p0.row.min(p1.row) && p2.row <= p0.row.max(p1.row) + 1);
        assert!(p2.col + 1 >= p0.col.min(p1.col) && p2.col <= p0.col.max(p1.col) + 1);
    }

    #[test]
    fn dense_region_saturates_small_grid() {
        // More FP instructions than a 2x2 grid can hold: the tail fails.
        let mut a = Asm::new(0x1000);
        a.label("loop");
        for _ in 0..6 {
            a.fadd_s(FT0, FT0, FA1);
        }
        a.addi(T0, T0, 1);
        a.bne(T0, A1, "loop");
        let ldfg = Ldfg::build(&a.finish().unwrap()).unwrap();
        let grid = GridDim::new(2, 2);
        let supports = |_: Coord, _: OpClass| true;
        let sdfg = map_instructions(&ldfg, grid, &supports, &MeshModel, &MapperConfig::default());
        assert_eq!(sdfg.pes_used(), 4);
        assert!(!sdfg.failed.is_empty());
    }

    #[test]
    fn expected_iteration_latency_is_max() {
        let ldfg = fp_chain_ldfg();
        let grid = GridDim::new(8, 8);
        let supports = |_: Coord, _: OpClass| true;
        let sdfg = map_instructions(&ldfg, grid, &supports, &MeshModel, &MapperConfig::default());
        assert_eq!(
            sdfg.expected_iteration_latency(),
            *sdfg.est_latency.iter().max().unwrap()
        );
    }

    #[test]
    fn node_at_inverts_placement() {
        let ldfg = fp_chain_ldfg();
        let grid = GridDim::new(8, 8);
        let supports = |_: Coord, _: OpClass| true;
        let sdfg = map_instructions(&ldfg, grid, &supports, &MeshModel, &MapperConfig::default());
        for (i, p) in sdfg.placement.iter().enumerate() {
            if let Some(c) = p {
                assert_eq!(sdfg.node_at(*c), Some(i as u32));
            }
        }
        assert_eq!(sdfg.node_at(Coord::new(7, 7)), None);
    }

    #[test]
    fn display_renders_the_grid() {
        let ldfg = fp_chain_ldfg();
        let grid = GridDim::new(8, 8);
        let supports = |_: Coord, _: OpClass| true;
        let sdfg = map_instructions(&ldfg, grid, &supports, &MeshModel, &MapperConfig::default());
        let s = sdfg.to_string();
        assert!(s.contains("SDFG on 8x8 grid"));
        assert!(s.contains('0'), "node indices shown: {s}");
        assert!(s.contains('.'), "free PEs shown: {s}");
    }
}
