//! Iterative runtime optimization (paper §1, F3): fold measured latencies
//! from the accelerator's performance counters back into the LDFG's
//! weights, re-run the mapping algorithm, and decide whether the improved
//! mapping justifies a reconfiguration.

use crate::{map_instructions, Ldfg, MapperConfig, Sdfg};
use mesa_accel::{AccelConfig, Coord, LatencyModel, PerfCounters};
use mesa_isa::OpClass;

/// Folds measured per-node latencies into the LDFG weights.
///
/// Node weights become the measured average operation latency (for memory
/// nodes this is their observed AMAT including port waits); edge weights
/// become the measured average transfer latency per operand slot.
pub fn apply_counters(ldfg: &mut Ldfg, counters: &PerfCounters) {
    for (node, ctr) in ldfg.nodes.iter_mut().zip(&counters.nodes) {
        if let Some(op) = ctr.avg_op() {
            node.op_weight = op.clamp(1, MAX_MEASURED_WEIGHT);
        }
        for slot in 0..2 {
            if let Some(t) = ctr.avg_in(slot) {
                node.edge_weight[slot] = t.min(MAX_MEASURED_WEIGHT);
            }
        }
    }
}

/// Ceiling on any single measured latency folded into the LDFG. No real
/// per-operation latency in these simulators approaches 2^20 cycles, but a
/// corrupted counter (a flipped high bit) can report one; unclamped it
/// would dominate every critical-path sum and steer placement forever.
pub const MAX_MEASURED_WEIGHT: u64 = 1 << 20;

/// Record of one F3 re-optimization round, kept by the controller so
/// profilers can reconstruct the convergence story (Fig. 13-style): what
/// the counters measured, what the remapped model predicted, how far the
/// measured critical path moved, and whether/how the placement changed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReoptRound {
    /// Round number, starting at 0.
    pub round: u32,
    /// Accelerator iterations completed before this round ran.
    pub iterations_before: u64,
    /// Measured cycles per iteration of the configuration being replaced.
    pub measured_cycles_per_iter: u64,
    /// Model estimate of the remapped configuration's iteration latency.
    pub new_estimate: u64,
    /// LDFG critical-path latency under the weights in force *before* this
    /// round folded the new counter readings in.
    pub critical_path_before: u64,
    /// Critical-path latency after folding the measured latencies.
    pub critical_path_after: u64,
    /// Nodes whose placement coordinate changed (0 when the round declined
    /// to reconfigure).
    pub placement_moves: usize,
    /// Whether the round actually paid for a reconfiguration.
    pub reconfigured: bool,
    /// Tiles in force after the round.
    pub tiles_after: usize,
    /// Reconfiguration cycles charged by this round.
    pub reconfig_cycles: u64,
}

impl ReoptRound {
    /// Signed critical-path movement of this round's counter fold:
    /// positive = the measured weights lengthened the modeled path.
    #[must_use]
    pub fn critical_path_delta(&self) -> i64 {
        self.critical_path_after as i64 - self.critical_path_before as i64
    }
}

/// Outcome of a re-optimization attempt.
#[derive(Debug, Clone)]
pub struct ReoptOutcome {
    /// The new mapping under measured weights.
    pub sdfg: Sdfg,
    /// Model-estimated iteration latency of the new mapping.
    pub new_estimate: u64,
    /// Measured iteration latency of the current configuration.
    pub measured: u64,
    /// Whether the new mapping is predicted to beat the measured one by
    /// the improvement margin.
    pub worthwhile: bool,
}

/// Margin a remap must beat the measured latency by before paying a
/// reconfiguration (5%).
const IMPROVEMENT_NUM: u64 = 95;
const IMPROVEMENT_DEN: u64 = 100;

/// Re-runs the mapper under measured weights and compares against the
/// observed per-iteration latency.
#[must_use]
pub fn reoptimize<M: LatencyModel + ?Sized>(
    ldfg: &Ldfg,
    accel: &AccelConfig,
    model: &M,
    mapper: &MapperConfig,
    measured_iteration_latency: u64,
) -> ReoptOutcome {
    let supports = |c: Coord, class: OpClass| accel.supports(c, class);
    let sdfg = map_instructions(ldfg, accel.grid(), &supports, model, mapper);
    let new_estimate = sdfg.expected_iteration_latency();
    let worthwhile =
        new_estimate * IMPROVEMENT_DEN < measured_iteration_latency * IMPROVEMENT_NUM;
    ReoptOutcome { sdfg, new_estimate, measured: measured_iteration_latency, worthwhile }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesa_accel::{HalfRingModel, NodeCounter};
    use mesa_isa::Asm;
    use mesa_isa::reg::abi::*;

    fn sum_ldfg() -> Ldfg {
        let mut a = Asm::new(0x1000);
        a.label("loop");
        a.lw(T0, A0, 0);
        a.add(T1, T1, T0);
        a.addi(A0, A0, 4);
        a.bne(A0, A1, "loop");
        Ldfg::build(&a.finish().unwrap()).unwrap()
    }

    #[test]
    fn counters_update_weights() {
        let mut ldfg = sum_ldfg();
        let mut counters = PerfCounters::new(ldfg.len());
        counters.nodes[0] = NodeCounter {
            fires: 10,
            total_op_cycles: 450, // the load averaged 45 cycles (missing)
            total_in_cycles: [20, 0],
            in_samples: [10, 0],
        };
        apply_counters(&mut ldfg, &counters);
        assert_eq!(ldfg.nodes[0].op_weight, 45);
        assert_eq!(ldfg.nodes[0].edge_weight[0], 2);
        // Unmeasured nodes keep their static estimates.
        assert_eq!(ldfg.nodes[1].op_weight, 1);
    }

    #[test]
    fn corrupted_counters_clamp_at_the_measured_ceiling() {
        let mut ldfg = sum_ldfg();
        let mut counters = PerfCounters::new(ldfg.len());
        // A flipped high bit reports an absurd latency; unclamped it would
        // dominate every critical-path sum and steer placement forever.
        counters.nodes[0] = NodeCounter {
            fires: 1,
            total_op_cycles: u64::MAX / 2,
            total_in_cycles: [u64::MAX / 2, 0],
            in_samples: [1, 0],
        };
        // A measured-zero average must still floor at weight 1.
        counters.nodes[1] =
            NodeCounter { fires: 10, total_op_cycles: 0, ..Default::default() };
        apply_counters(&mut ldfg, &counters);
        assert_eq!(ldfg.nodes[0].op_weight, MAX_MEASURED_WEIGHT);
        assert_eq!(ldfg.nodes[0].edge_weight[0], MAX_MEASURED_WEIGHT);
        assert_eq!(ldfg.nodes[1].op_weight, 1);

        // Boundary: a reading exactly at the ceiling passes unchanged.
        counters.nodes[0] = NodeCounter {
            fires: 1,
            total_op_cycles: MAX_MEASURED_WEIGHT,
            ..Default::default()
        };
        apply_counters(&mut ldfg, &counters);
        assert_eq!(ldfg.nodes[0].op_weight, MAX_MEASURED_WEIGHT);
    }

    #[test]
    fn measured_weights_change_the_model_latency() {
        let mut ldfg = sum_ldfg();
        let before = ldfg.iteration_latency();
        let mut counters = PerfCounters::new(ldfg.len());
        counters.nodes[0] =
            NodeCounter { fires: 1, total_op_cycles: 120, ..Default::default() };
        apply_counters(&mut ldfg, &counters);
        assert!(ldfg.iteration_latency() > before);
    }

    #[test]
    fn reoptimize_flags_worthwhile_when_measured_is_slow() {
        let ldfg = sum_ldfg();
        let accel = AccelConfig::m128();
        let model = HalfRingModel::default();
        let mapper = MapperConfig::default();
        // Measured latency hugely above the model → remap worthwhile.
        let out = reoptimize(&ldfg, &accel, &model, &mapper, 1000);
        assert!(out.worthwhile);
        // Measured latency already at the model's estimate → not worth it.
        let out2 = reoptimize(&ldfg, &accel, &model, &mapper, out.new_estimate);
        assert!(!out2.worthwhile);
    }
}
