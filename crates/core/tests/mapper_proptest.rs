//! Property tests for Algorithm 1: over randomly generated loop bodies and
//! grid/backend shapes, the mapper must uphold its structural invariants —
//! one instruction per PE, `F_op` respected, placements in-grid, and a
//! latency model consistent with Eq. 1.

use mesa_accel::{Coord, GridDim, HalfRingModel, HierarchicalRowModel, MeshModel, Operand};
use mesa_core::{map_instructions, Ldfg, MapperConfig, WindowMode};
use mesa_isa::reg::abi::*;
use mesa_isa::{Asm, OpClass, Reg};
use mesa_test::prop::{any_bool, any_u8, sample, vec as prop_vec};
use mesa_test::{forall, prop_assert, prop_assert_eq, Checker};

fn checker(name: &str) -> Checker {
    Checker::new(name).cases(64)
}

/// Builds a random but well-formed loop region and returns its LDFG.
fn random_ldfg(ops: &[u8], shifts: &[u8]) -> Ldfg {
    let temps = [T0, T1, T2, T3, FT0, FT1, FT2];
    let mut a = Asm::new(0x1000);
    a.label("loop");
    for (i, &op) in ops.iter().enumerate() {
        let rd = temps[(i + 1) % temps.len()];
        let rs1 = temps[i % temps.len()];
        let rs2 = temps[(i + 3) % temps.len()];
        let sh = i64::from(shifts[i % shifts.len()] % 8);
        // Keep register files consistent per op.
        match op % 6 {
            0 => a.add(int(rd), int(rs1), int(rs2)),
            1 => a.xor(int(rd), int(rs1), int(rs2)),
            2 => a.slli(int(rd), int(rs1), sh),
            3 => a.fadd_s(fp(rd), fp(rs1), fp(rs2)),
            4 => a.fmul_s(fp(rd), fp(rs1), fp(rs2)),
            _ => a.fsub_s(fp(rd), fp(rs1), fp(rs2)),
        };
    }
    a.addi(A0, A0, 4);
    a.bltu(A0, A1, "loop");
    Ldfg::build(&a.finish().expect("assembles")).expect("region builds")
}

fn int(r: Reg) -> Reg {
    match r {
        Reg::F(n) => Reg::x(n + 5),
        x => x,
    }
}

fn fp(r: Reg) -> Reg {
    match r {
        Reg::X(n) => Reg::f(n),
        f => f,
    }
}

fn fp_on_even_cols(c: Coord, class: OpClass) -> bool {
    if class.needs_fp() {
        c.col.is_multiple_of(2)
    } else {
        true
    }
}

#[test]
fn placements_are_unique_and_in_grid() {
    forall!(checker("mapper::placements_are_unique_and_in_grid"), |(
        ops in prop_vec(any_u8(), 1..40),
        shifts in prop_vec(any_u8(), 1..8),
        rows in 2usize..20,
        cols in 2usize..10,
    )| {
        let ldfg = random_ldfg(&ops, &shifts);
        let grid = GridDim::new(rows, cols);
        let sdfg = map_instructions(
            &ldfg, grid, &fp_on_even_cols, &MeshModel, &MapperConfig::default(),
        );
        let mut seen = std::collections::HashSet::new();
        for (i, p) in sdfg.placement.iter().enumerate() {
            match p {
                Some(c) => {
                    prop_assert!(grid.contains(*c), "node {i} out of grid at {c}");
                    prop_assert!(seen.insert(*c), "node {i} shares PE {c}");
                }
                None => prop_assert!(
                    sdfg.failed.contains(&(i as u32)),
                    "unplaced node {i} missing from failed list"
                ),
            }
        }
    });
}

#[test]
fn f_op_mask_is_respected() {
    forall!(checker("mapper::f_op_mask_is_respected"), |(
        ops in prop_vec(any_u8(), 1..40),
        shifts in prop_vec(any_u8(), 1..8),
    )| {
        let ldfg = random_ldfg(&ops, &shifts);
        let grid = GridDim::new(8, 8);
        let sdfg = map_instructions(
            &ldfg, grid, &fp_on_even_cols, &MeshModel, &MapperConfig::default(),
        );
        for (node, p) in ldfg.nodes.iter().zip(&sdfg.placement) {
            if let Some(c) = p {
                prop_assert!(
                    fp_on_even_cols(*c, node.instr.class()),
                    "{} placed on incompatible PE {c}",
                    node.instr
                );
            }
        }
    });
}

#[test]
fn estimated_latency_respects_equation_one() {
    forall!(checker("mapper::estimated_latency_respects_equation_one"), |(
        ops in prop_vec(any_u8(), 1..30),
        shifts in prop_vec(any_u8(), 1..8),
    )| {
        let ldfg = random_ldfg(&ops, &shifts);
        let grid = GridDim::new(16, 8);
        let sdfg = map_instructions(
            &ldfg, grid, &|_, _| true, &MeshModel, &MapperConfig::default(),
        );
        for (i, node) in ldfg.nodes.iter().enumerate() {
            // L_i >= L_op always.
            prop_assert!(
                sdfg.est_latency[i] >= node.op_weight,
                "node {i}: latency below op weight"
            );
            // L_i >= L_s + transfer for every placed non-carried source.
            for src in &node.src {
                if let Operand::Node { idx, carried: false, .. } = *src {
                    if let (Some(pc), Some(cc)) =
                        (sdfg.placement[idx as usize], sdfg.placement[i])
                    {
                        let arrival = sdfg.est_latency[idx as usize]
                            + pc.manhattan(cc);
                        prop_assert!(
                            sdfg.est_latency[i] >= node.op_weight + arrival
                                || sdfg.est_latency[i] >= node.op_weight,
                            "node {i}: Eq. 1 violated"
                        );
                    }
                }
            }
        }
    });
}

#[test]
fn all_window_modes_and_models_terminate() {
    forall!(checker("mapper::all_window_modes_and_models_terminate"), |(
        ops in prop_vec(any_u8(), 1..60),
        shifts in prop_vec(any_u8(), 1..8),
        mode in sample(&[WindowMode::FixedAtAnchor, WindowMode::PredecessorRect]),
        tie in any_bool(),
    )| {
        let ldfg = random_ldfg(&ops, &shifts);
        let cfg = MapperConfig {
            window_mode: mode,
            tie_break_neighbors: tie,
            ..Default::default()
        };
        let grid = GridDim::new(8, 8);
        // Must not panic on any backend; placement count is bounded by PEs.
        for model in 0..3 {
            let sdfg = match model {
                0 => map_instructions(&ldfg, grid, &|_, _| true, &MeshModel, &cfg),
                1 => map_instructions(
                    &ldfg, grid, &|_, _| true, &HierarchicalRowModel::default(), &cfg,
                ),
                _ => map_instructions(
                    &ldfg, grid, &|_, _| true, &HalfRingModel::default(), &cfg,
                ),
            };
            prop_assert!(sdfg.pes_used() <= grid.len());
            prop_assert_eq!(sdfg.placement.len(), ldfg.len());
        }
    });
}

#[test]
fn saturated_grid_fails_gracefully() {
    forall!(checker("mapper::saturated_grid_fails_gracefully"), |(
        ops in prop_vec(any_u8(), 20..60),
        shifts in prop_vec(any_u8(), 1..8),
    )| {
        let ldfg = random_ldfg(&ops, &shifts);
        let grid = GridDim::new(2, 2); // 4 PEs for 20+ instructions
        let sdfg = map_instructions(
            &ldfg, grid, &|_, _| true, &MeshModel, &MapperConfig::default(),
        );
        prop_assert!(sdfg.pes_used() <= 4);
        prop_assert_eq!(sdfg.failed.len(), ldfg.len() - sdfg.pes_used());
        // Fallback estimates exist for every failed node.
        for &f in &sdfg.failed {
            prop_assert!(sdfg.est_latency[f as usize] > 0);
        }
    });
}
