//! Deterministic, seed-replayable fault injection.
//!
//! MESA's feedback loop (paper §4.4) trusts hardware state that a real
//! fabric can corrupt: per-PE latency counters feeding re-optimization, bus
//! tokens carrying operand transfers, the PEs themselves, and the
//! configuration stream the controller ships over the config bus. A
//! [`FaultPlan`] describes one deterministic corruption scenario for those
//! four channels; every decision it makes derives from its `seed` via the
//! in-repo PRNG, so any failure a soak run finds replays exactly from the
//! printed seed.
//!
//! The taxonomy and its recovery contract:
//!
//! * **Dropped bus tokens** (`bus_drop_period`): every N-th fallback-bus
//!   transfer loses its token and pays [`BUS_DROP_PENALTY`] retransmit
//!   cycles. Timing-only — architectural results must not change, and the
//!   engine and reference interpreter must agree on the delayed schedule.
//! * **Stuck PEs** (`stuck_pes`): nodes configured on a dead coordinate are
//!   scrubbed to unplaced, so their transfers fall back to the bus —
//!   correct but slower, which the re-optimization rounds then observe.
//! * **Flipped counter bits** (`counter_bit_flips`): latency counters
//!   reported to F3 are corrupted before `apply_counters`; the optimizer
//!   clamps measured weights, so a wild counter can skew one round of
//!   placement but never panics the simulator or steers it forever.
//! * **Truncated config stream** (`truncate_config`): the encoded
//!   bitstream is cut short; the decoder detects it and the controller
//!   declines the offload with a typed error and falls back to the CPU.

use crate::bitstream::{self, BitstreamError};
use crate::{AccelProgram, Coord, PerfCounters};
use mesa_test::Rng;

/// Retransmit cost, in cycles, of a dropped fallback-bus token.
pub const BUS_DROP_PENALTY: u64 = 4;

/// One deterministic fault scenario. See the module docs for the taxonomy.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed all randomized corruption derives from (replay key).
    pub seed: u64,
    /// Dead PE coordinates; nodes configured on them are scrubbed to
    /// unplaced (tile-0 coordinates, applied before tiling replication).
    pub stuck_pes: Vec<Coord>,
    /// Latency-counter bits to flip per re-optimization round (0 = off).
    pub counter_bit_flips: u32,
    /// Every N-th fallback-bus transfer drops its token (0 = off).
    pub bus_drop_period: u64,
    /// Cut the encoded config stream to this many words (None = intact).
    pub truncate_config: Option<usize>,
}

impl FaultPlan {
    /// A plan that injects nothing (the default everywhere).
    #[must_use]
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// `true` when this plan injects no faults at all.
    #[must_use]
    pub fn is_benign(&self) -> bool {
        self.stuck_pes.is_empty()
            && self.counter_bit_flips == 0
            && self.bus_drop_period == 0
            && self.truncate_config.is_none()
    }

    /// Draws a random fault mix for a `rows` × `cols` grid. Each fault
    /// class is sampled independently, so plans range from benign to
    /// multi-fault; the same `(seed, rows, cols)` always yields the same
    /// plan.
    #[must_use]
    pub fn from_seed(seed: u64, rows: usize, cols: usize) -> Self {
        let mut rng = Rng::seed_from_u64(seed);
        let mut plan = FaultPlan { seed, ..FaultPlan::default() };
        if rng.gen_bool(0.35) {
            for _ in 0..rng.gen_range(1usize..=2) {
                plan.stuck_pes
                    .push(Coord::new(rng.gen_range(0..rows.max(1)), rng.gen_range(0..cols.max(1))));
            }
        }
        if rng.gen_bool(0.4) {
            plan.counter_bit_flips = rng.gen_range(1u32..=4);
        }
        if rng.gen_bool(0.4) {
            plan.bus_drop_period = rng.gen_range(2u64..=16);
        }
        if rng.gen_bool(0.15) {
            plan.truncate_config = Some(rng.gen_range(1usize..48));
        }
        plan
    }

    /// Unplaces every node configured on a stuck PE; returns how many were
    /// scrubbed. An unplaced node's transfers take the fallback bus, so
    /// the program stays architecturally correct, just slower.
    pub fn scrub_stuck_pes(&self, prog: &mut AccelProgram) -> u64 {
        if self.stuck_pes.is_empty() {
            return 0;
        }
        let mut scrubbed = 0;
        for node in &mut prog.nodes {
            if node.coord.is_some_and(|c| self.stuck_pes.contains(&c)) {
                node.coord = None;
                scrubbed += 1;
            }
        }
        scrubbed
    }

    /// Flips `counter_bit_flips` bits across the latency fields of a
    /// reported counter bank, deterministically per `(seed, round)`.
    /// Returns how many bits were flipped.
    pub fn corrupt_counters(&self, counters: &mut PerfCounters, round: u64) -> u64 {
        if self.counter_bit_flips == 0 || counters.nodes.is_empty() {
            return 0;
        }
        let mut rng =
            Rng::seed_from_u64(self.seed ^ round.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xF1A7);
        for _ in 0..self.counter_bit_flips {
            let node = rng.gen_range(0..counters.nodes.len());
            let bit = 1u64 << rng.gen_range(0u64..44);
            let ctr = &mut counters.nodes[node];
            match rng.gen_range(0u32..3) {
                0 => ctr.total_op_cycles ^= bit,
                1 => ctr.total_in_cycles[0] ^= bit,
                _ => ctr.total_in_cycles[1] ^= bit,
            }
        }
        u64::from(self.counter_bit_flips)
    }

    /// Simulates shipping the program over the config bus with this plan's
    /// truncation applied: encode, cut the word stream, re-decode.
    ///
    /// # Errors
    /// Returns the decoder's [`BitstreamError`] when the truncated stream
    /// no longer parses (the expected outcome); `Ok(())` when the plan
    /// does not truncate or the cut lands past the end of the stream.
    pub fn check_config_stream(&self, prog: &AccelProgram) -> Result<(), BitstreamError> {
        let Some(cut) = self.truncate_config else { return Ok(()) };
        let words = bitstream::encode(prog)?;
        if cut >= words.len() {
            return Ok(());
        }
        bitstream::decode(&words[..cut]).map(|_| ())
    }
}

/// What a fault plan actually did during a run — carried on
/// [`crate::AccelRunResult`] and accumulated per offload episode.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultLog {
    /// Fallback-bus transfers that lost their token and paid the
    /// retransmit penalty.
    pub bus_tokens_dropped: u64,
    /// Latency-counter bits flipped before re-optimization.
    pub counter_bits_flipped: u64,
    /// Nodes unplaced because their PE was stuck.
    pub stuck_pes_scrubbed: u64,
    /// Config streams that arrived truncated (and were declined).
    pub config_truncations: u64,
}

impl FaultLog {
    /// Accumulates another log into this one.
    pub fn merge(&mut self, other: &FaultLog) {
        self.bus_tokens_dropped += other.bus_tokens_dropped;
        self.counter_bits_flipped += other.counter_bits_flipped;
        self.stuck_pes_scrubbed += other.stuck_pes_scrubbed;
        self.config_truncations += other.config_truncations;
    }

    /// Total injected-fault events of any class.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.bus_tokens_dropped
            + self.counter_bits_flipped
            + self.stuck_pes_scrubbed
            + self.config_truncations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NodeConfig, Operand};
    use mesa_isa::reg::abi::*;
    use mesa_isa::{Instruction, Opcode};

    fn two_node_loop() -> AccelProgram {
        let add = NodeConfig::new(
            0x1000,
            Instruction::reg_imm(Opcode::Addi, T0, T0, 1),
            Some(Coord::new(0, 0)),
            [Operand::Node { idx: 0, carried: true, via: T0 }, Operand::None],
        );
        let bne = NodeConfig::new(
            0x1004,
            Instruction::branch(Opcode::Bne, T0, A1, -4),
            Some(Coord::new(0, 1)),
            [Operand::Node { idx: 0, carried: false, via: T0 }, Operand::InitReg(A1)],
        );
        AccelProgram {
            start_pc: 0x1000,
            end_pc: 0x1008,
            nodes: vec![add, bne],
            loop_branch: 1,
            live_out: vec![(T0, 0)],
            tiles: 1,
            pipelined: false,
        }
    }

    #[test]
    fn from_seed_is_deterministic() {
        let a = FaultPlan::from_seed(42, 16, 8);
        let b = FaultPlan::from_seed(42, 16, 8);
        assert_eq!(a, b);
        assert!(FaultPlan::none().is_benign());
    }

    #[test]
    fn some_seed_produces_each_fault_class() {
        let (mut stuck, mut flips, mut drops, mut cuts) = (false, false, false, false);
        for seed in 0..256 {
            let p = FaultPlan::from_seed(seed, 16, 8);
            stuck |= !p.stuck_pes.is_empty();
            flips |= p.counter_bit_flips > 0;
            drops |= p.bus_drop_period > 0;
            cuts |= p.truncate_config.is_some();
        }
        assert!(stuck && flips && drops && cuts, "coverage: {stuck} {flips} {drops} {cuts}");
    }

    #[test]
    fn scrub_unplaces_only_stuck_coords() {
        let mut prog = two_node_loop();
        let plan = FaultPlan { stuck_pes: vec![Coord::new(0, 0)], ..FaultPlan::default() };
        assert_eq!(plan.scrub_stuck_pes(&mut prog), 1);
        assert_eq!(prog.nodes[0].coord, None);
        assert_eq!(prog.nodes[1].coord, Some(Coord::new(0, 1)));
        // Scrubbed programs still validate: unplaced is a legal state.
        assert!(prog.validate(crate::GridDim::new(16, 8)).is_ok());
    }

    #[test]
    fn counter_corruption_is_replayable() {
        let plan = FaultPlan { seed: 7, counter_bit_flips: 3, ..FaultPlan::default() };
        let mut a = PerfCounters::new(4);
        let mut b = PerfCounters::new(4);
        assert_eq!(plan.corrupt_counters(&mut a, 1), 3);
        assert_eq!(plan.corrupt_counters(&mut b, 1), 3);
        assert_eq!(a, b);
        // A different round corrupts differently.
        let mut c = PerfCounters::new(4);
        plan.corrupt_counters(&mut c, 2);
        assert_ne!(a, c);
    }

    #[test]
    fn truncated_stream_is_detected_and_intact_stream_passes() {
        let prog = two_node_loop();
        let cut = FaultPlan { truncate_config: Some(3), ..FaultPlan::default() };
        assert_eq!(cut.check_config_stream(&prog), Err(BitstreamError::Truncated));
        let beyond = FaultPlan { truncate_config: Some(10_000), ..FaultPlan::default() };
        assert_eq!(beyond.check_config_stream(&prog), Ok(()));
        assert_eq!(FaultPlan::none().check_config_stream(&prog), Ok(()));
    }
}
