//! PE grid coordinates and interconnect latency models.
//!
//! MESA is "generally backend-agnostic ... as long as point-to-point latency
//! can be modeled" (paper §3.3). The [`LatencyModel`] trait is that
//! contract; the mapper consumes it when scoring candidate positions and
//! the accelerator consumes it when timing transfers. The two example
//! interconnects of the paper's Fig. 4 (Manhattan mesh and hierarchical row
//! slices) and the evaluation accelerator's neighbor-links-plus-half-ring
//! fabric (§5.2, Fig. 9) are all provided.

use std::fmt;

/// A PE position: `(row, col)` in the accelerator grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Coord {
    /// Row index (0-based).
    pub row: usize,
    /// Column index (0-based).
    pub col: usize,
}

impl Coord {
    /// Creates a coordinate.
    #[must_use]
    pub fn new(row: usize, col: usize) -> Self {
        Coord { row, col }
    }

    /// Manhattan distance (hop count on a mesh) to `other`.
    #[must_use]
    pub fn manhattan(self, other: Coord) -> u64 {
        (self.row.abs_diff(other.row) + self.col.abs_diff(other.col)) as u64
    }

    /// `true` when `other` is an immediate 4-neighbor.
    #[must_use]
    pub fn is_adjacent(self, other: Coord) -> bool {
        self.manhattan(other) == 1
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.row, self.col)
    }
}

/// Grid dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GridDim {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
}

impl GridDim {
    /// Creates a dimension descriptor.
    ///
    /// # Panics
    /// Panics on a zero-sized grid.
    #[must_use]
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "grid must be non-empty");
        GridDim { rows, cols }
    }

    /// Total PE count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// `true` for a zero-sized grid (never constructed via [`GridDim::new`]).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` when `c` lies inside the grid.
    #[must_use]
    pub fn contains(&self, c: Coord) -> bool {
        c.row < self.rows && c.col < self.cols
    }

    /// Row-major linear index of `c`.
    ///
    /// # Panics
    /// Panics when `c` is outside the grid.
    #[must_use]
    pub fn index(&self, c: Coord) -> usize {
        assert!(self.contains(c), "{c} outside {}x{} grid", self.rows, self.cols);
        c.row * self.cols + c.col
    }

    /// Inverse of [`GridDim::index`].
    #[must_use]
    pub fn coord(&self, index: usize) -> Coord {
        Coord::new(index / self.cols, index % self.cols)
    }

    /// Iterates all coordinates in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = Coord> + '_ {
        let cols = self.cols;
        (0..self.len()).map(move |i| Coord::new(i / cols, i % cols))
    }
}

/// Point-to-point transfer latency of a backend interconnect.
///
/// Implementations must be cheap: the mapper evaluates one latency per
/// candidate position per instruction, in hardware a combinational cost
/// function.
pub trait LatencyModel {
    /// Cycles for a value produced at `from` to arrive at `to`.
    ///
    /// `from == to` is free (a PE forwarding to itself).
    fn transfer_latency(&self, from: Coord, to: Coord) -> u64;

    /// `true` when the transfer uses a direct (local) link rather than the
    /// shared network — local transfers are contention-free.
    fn is_local(&self, from: Coord, to: Coord) -> bool {
        from == to || self.transfer_latency(from, to) <= 1
    }
}

/// Pure 2-D mesh: latency is the Manhattan distance (Fig. 4, Example 2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MeshModel;

impl LatencyModel for MeshModel {
    fn transfer_latency(&self, from: Coord, to: Coord) -> u64 {
        from.manhattan(to)
    }
}

/// Hierarchical row slices: single-cycle within a row, fixed cost across
/// rows (Fig. 4, Example 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchicalRowModel {
    /// Latency between any two PEs in the same row.
    pub within_row: u64,
    /// Latency between PEs in different rows.
    pub cross_row: u64,
}

impl Default for HierarchicalRowModel {
    fn default() -> Self {
        // The constants used in the paper's Fig. 4 example.
        HierarchicalRowModel { within_row: 1, cross_row: 3 }
    }
}

impl LatencyModel for HierarchicalRowModel {
    fn transfer_latency(&self, from: Coord, to: Coord) -> u64 {
        if from == to {
            0
        } else if from.row == to.row {
            self.within_row
        } else {
            self.cross_row
        }
    }

    fn is_local(&self, from: Coord, to: Coord) -> bool {
        from.row == to.row
    }
}

/// The evaluation accelerator's fabric (paper §5.2, Fig. 9): direct
/// single-cycle links to the 4 immediate neighbors, and a lightweight
/// half-ring NoC with routing logic at every 4 PEs ("slices") for distant
/// transfers.
///
/// NoC latency = injection + ejection (one cycle each) plus one cycle per
/// slice hop horizontally and one per row hop vertically. Because mapped
/// loop bodies are acyclic and data flows feedforward, each lane behaves
/// like a bus (no deadlock), so contention — modelled in the engine, not
/// here — is per-row-lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HalfRingModel {
    /// PEs per routing slice along a row.
    pub slice_width: usize,
}

impl Default for HalfRingModel {
    fn default() -> Self {
        HalfRingModel { slice_width: 4 }
    }
}

impl LatencyModel for HalfRingModel {
    fn transfer_latency(&self, from: Coord, to: Coord) -> u64 {
        if from == to {
            return 0;
        }
        if from.is_adjacent(to) {
            return 1; // direct PE-PE link
        }
        let slice_from = from.col / self.slice_width;
        let slice_to = to.col / self.slice_width;
        let horiz = slice_from.abs_diff(slice_to) as u64;
        let vert = from.row.abs_diff(to.row) as u64;
        // inject + eject + lane traversal
        2 + horiz + vert
    }

    fn is_local(&self, from: Coord, to: Coord) -> bool {
        from == to || from.is_adjacent(to)
    }
}

/// Rows that must stay together when a region moves: the FP checkerboard
/// (`AccelConfig::supports`) and the half-ring slices both repeat with this
/// period, and `AccelProgram::rows_per_tile` rounds to the same multiple,
/// so a region translated by a whole number of these bands lands on
/// identically-capable PEs.
pub const REGION_ROW_ALIGN: usize = 4;

/// A horizontal band of the PE grid leased to one tenant.
///
/// The fabric is carved along rows only: every region spans the full column
/// width (the half-ring lanes are per-row, so row bands never share a NoC
/// lane), and `first_row` is kept [`REGION_ROW_ALIGN`]-aligned so relocating
/// a region preserves both FP support and slice geometry. Because the
/// interconnect latency depends only on *relative* coordinates, a program
/// runs cycle-identically in any region of the same grid — the theorem the
/// migration property tests exercise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Region {
    /// First grid row owned by the region.
    pub first_row: usize,
    /// Number of rows owned (non-zero).
    pub rows: usize,
    /// Number of columns (the full grid width for row-band regions).
    pub cols: usize,
}

impl Region {
    /// Creates a region descriptor. Emptiness and grid fit are checked at
    /// use sites (session start), not here, so a region can be built from
    /// untrusted snapshot data without panicking.
    #[must_use]
    pub fn new(first_row: usize, rows: usize, cols: usize) -> Self {
        Region { first_row, rows, cols }
    }

    /// The region covering a whole grid (what solo offloads use).
    #[must_use]
    pub fn full(grid: GridDim) -> Self {
        Region { first_row: 0, rows: grid.rows, cols: grid.cols }
    }

    /// One-past-the-last row owned by the region.
    #[must_use]
    pub fn end_row(&self) -> usize {
        self.first_row + self.rows
    }

    /// The region's own dimensions (programs validate against these).
    ///
    /// # Panics
    /// Panics for an empty region, like [`GridDim::new`]; callers check
    /// emptiness first (see [`Region::new`]).
    #[must_use]
    pub fn dims(&self) -> GridDim {
        GridDim::new(self.rows, self.cols)
    }

    /// `true` when the two regions share any row (disjointness check for
    /// admission).
    #[must_use]
    pub fn overlaps(&self, other: &Region) -> bool {
        self.first_row < other.end_row() && other.first_row < self.end_row()
    }

    /// `true` when the region starts on a [`REGION_ROW_ALIGN`] boundary.
    #[must_use]
    pub fn is_aligned(&self) -> bool {
        self.first_row.is_multiple_of(REGION_ROW_ALIGN)
    }

    /// `true` when the region fits inside a `rows` × `cols` grid.
    #[must_use]
    pub fn fits(&self, rows: usize, cols: usize) -> bool {
        self.rows > 0 && self.cols > 0 && self.end_row() <= rows && self.cols <= cols
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rows {}..{} x {} cols", self.first_row, self.end_row(), self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_and_adjacency() {
        let a = Coord::new(1, 1);
        assert_eq!(a.manhattan(Coord::new(1, 1)), 0);
        assert_eq!(a.manhattan(Coord::new(3, 4)), 5);
        assert!(a.is_adjacent(Coord::new(1, 2)));
        assert!(a.is_adjacent(Coord::new(0, 1)));
        assert!(!a.is_adjacent(Coord::new(2, 2)), "diagonal is not adjacent");
    }

    #[test]
    fn grid_indexing_roundtrip() {
        let g = GridDim::new(16, 8);
        assert_eq!(g.len(), 128);
        for idx in [0, 7, 8, 127] {
            assert_eq!(g.index(g.coord(idx)), idx);
        }
        assert!(g.contains(Coord::new(15, 7)));
        assert!(!g.contains(Coord::new(16, 0)));
    }

    #[test]
    fn grid_iter_covers_all() {
        let g = GridDim::new(3, 4);
        let coords: Vec<_> = g.iter().collect();
        assert_eq!(coords.len(), 12);
        assert_eq!(coords[0], Coord::new(0, 0));
        assert_eq!(coords[11], Coord::new(2, 3));
    }

    #[test]
    fn mesh_latency_is_manhattan() {
        let m = MeshModel;
        assert_eq!(m.transfer_latency(Coord::new(0, 0), Coord::new(2, 3)), 5);
        assert!(m.is_local(Coord::new(0, 0), Coord::new(0, 1)));
        assert!(!m.is_local(Coord::new(0, 0), Coord::new(2, 3)));
    }

    #[test]
    fn hierarchical_matches_figure4_example1() {
        let h = HierarchicalRowModel::default();
        // Same row: 1 cycle; across rows: 3 cycles; self: 0.
        assert_eq!(h.transfer_latency(Coord::new(0, 0), Coord::new(0, 5)), 1);
        assert_eq!(h.transfer_latency(Coord::new(0, 0), Coord::new(2, 0)), 3);
        assert_eq!(h.transfer_latency(Coord::new(1, 1), Coord::new(1, 1)), 0);
    }

    #[test]
    fn half_ring_neighbor_is_one_cycle() {
        let r = HalfRingModel::default();
        assert_eq!(r.transfer_latency(Coord::new(3, 3), Coord::new(3, 4)), 1);
        assert_eq!(r.transfer_latency(Coord::new(3, 3), Coord::new(4, 3)), 1);
    }

    #[test]
    fn half_ring_distant_uses_noc() {
        let r = HalfRingModel::default();
        // Same slice, distance 2: inject(1)+eject(1)+0 hops = 2.
        assert_eq!(r.transfer_latency(Coord::new(0, 0), Coord::new(0, 2)), 2);
        // Two slices over (col 0 → col 9), same row: 2 + 2 = 4.
        assert_eq!(r.transfer_latency(Coord::new(0, 0), Coord::new(0, 9)), 4);
        // Cross-row long haul.
        assert_eq!(r.transfer_latency(Coord::new(0, 0), Coord::new(5, 9)), 9);
        assert!(!r.is_local(Coord::new(0, 0), Coord::new(0, 2)));
    }

    #[test]
    fn latency_models_are_symmetric() {
        let coords = [Coord::new(0, 0), Coord::new(3, 7), Coord::new(7, 1)];
        for &a in &coords {
            for &b in &coords {
                assert_eq!(MeshModel.transfer_latency(a, b), MeshModel.transfer_latency(b, a));
                let h = HierarchicalRowModel::default();
                assert_eq!(h.transfer_latency(a, b), h.transfer_latency(b, a));
                let r = HalfRingModel::default();
                assert_eq!(r.transfer_latency(a, b), r.transfer_latency(b, a));
            }
        }
    }

    #[test]
    fn regions_partition_rows() {
        let grid = GridDim::new(16, 8);
        let full = Region::full(grid);
        assert_eq!(full.dims(), grid);
        assert!(full.is_aligned() && full.fits(16, 8));

        let a = Region::new(0, 4, 8);
        let b = Region::new(4, 8, 8);
        let c = Region::new(12, 4, 8);
        assert!(!a.overlaps(&b) && !b.overlaps(&c) && !a.overlaps(&c));
        assert!(b.overlaps(&Region::new(8, 8, 8)));
        assert!(a.overlaps(&a));
        assert_eq!(b.end_row(), 12);
        assert!(Region::new(2, 4, 8).fits(16, 8));
        assert!(!Region::new(2, 4, 8).is_aligned());
        assert!(!Region::new(14, 4, 8).fits(16, 8), "hangs off the bottom");
        assert!(!Region::new(0, 4, 9).fits(16, 8), "too wide");
        assert!(!Region::new(0, 0, 8).fits(16, 8), "empty region never fits");
        assert_eq!(format!("{c}"), "rows 12..16 x 8 cols");
    }

    /// The migration-invisibility precondition: half-ring latency depends
    /// only on relative position, so translating both endpoints by an
    /// aligned row offset never changes the latency or locality class.
    #[test]
    fn half_ring_is_translation_invariant_across_aligned_bands() {
        let model = HalfRingModel::default();
        for (a, b) in [
            (Coord::new(0, 0), Coord::new(3, 7)),
            (Coord::new(1, 2), Coord::new(1, 3)),
            (Coord::new(2, 5), Coord::new(0, 0)),
        ] {
            for shift in [REGION_ROW_ALIGN, 2 * REGION_ROW_ALIGN, 3 * REGION_ROW_ALIGN] {
                let a2 = Coord::new(a.row + shift, a.col);
                let b2 = Coord::new(b.row + shift, b.col);
                assert_eq!(model.transfer_latency(a, b), model.transfer_latency(a2, b2));
                assert_eq!(model.is_local(a, b), model.is_local(a2, b2));
            }
        }
    }
}
