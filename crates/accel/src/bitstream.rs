//! Configuration bitstream serialization.
//!
//! The paper's configuration step has MESA's config block "iterate through
//! the SDFG and send operation and interconnect control bits (a
//! configuration bitstream) to the accelerator" (§4.3). This module
//! defines that wire format: a compact little-endian word stream carrying
//! the region header, one record per instruction slot (operation word,
//! placement, operand routing, predication, memory-optimization flags),
//! and the live-out map. Encoding and decoding round-trip exactly, so the
//! controller and accelerator can be developed and tested against the same
//! artifact a hardware implementation would ship over its config bus.

use crate::{AccelProgram, Coord, NodeConfig, Operand};
use mesa_isa::{codec, Reg};
use std::fmt;

/// Magic word opening every bitstream (`"MESACFG1"` as ASCII).
pub const MAGIC: u64 = u64::from_le_bytes(*b"MESACFG1");

/// Errors produced while decoding a bitstream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BitstreamError {
    /// Stream too short for the structure it claims to contain.
    Truncated,
    /// The magic word did not match.
    BadMagic(u64),
    /// An embedded machine word failed to decode.
    BadInstruction(u32),
    /// An operand tag byte was not recognized.
    BadOperandTag(u8),
    /// A register index exceeded the architectural range.
    BadRegister(u64),
    /// An instruction could not be re-encoded to machine form while
    /// building the stream (a malformed configuration).
    Unencodable(u64),
}

impl fmt::Display for BitstreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BitstreamError::Truncated => write!(f, "bitstream truncated"),
            BitstreamError::BadMagic(m) => write!(f, "bad magic {m:#018x}"),
            BitstreamError::BadInstruction(w) => {
                write!(f, "embedded instruction {w:#010x} failed to decode")
            }
            BitstreamError::BadOperandTag(t) => write!(f, "unknown operand tag {t}"),
            BitstreamError::BadRegister(r) => write!(f, "register index {r} out of range"),
            BitstreamError::Unencodable(pc) => {
                write!(f, "instruction at {pc:#x} cannot be re-encoded")
            }
        }
    }
}

impl std::error::Error for BitstreamError {}

/// Little-endian word writer.
#[derive(Debug, Default)]
struct Writer {
    words: Vec<u64>,
}

impl Writer {
    fn push(&mut self, w: u64) {
        self.words.push(w);
    }
}

/// Cursor over the word stream.
struct Reader<'a> {
    words: &'a [u64],
    at: usize,
}

impl Reader<'_> {
    fn next(&mut self) -> Result<u64, BitstreamError> {
        let w = self.words.get(self.at).copied().ok_or(BitstreamError::Truncated)?;
        self.at += 1;
        Ok(w)
    }
}

/// Packs an operand into one word:
/// `tag[0..8] | idx[8..40] | carried[40] | via[41..48]`.
fn pack_operand(op: &Operand) -> u64 {
    match *op {
        Operand::None => 0,
        Operand::InitReg(r) => 1 | (r.flat_index() as u64) << 41,
        Operand::Node { idx, carried, via } => {
            2 | u64::from(idx) << 8
                | u64::from(carried) << 40
                | (via.flat_index() as u64) << 41
        }
    }
}

fn unpack_operand(w: u64) -> Result<Operand, BitstreamError> {
    let tag = (w & 0xFF) as u8;
    let reg_of = |bits: u64| -> Result<Reg, BitstreamError> {
        let idx = (bits >> 41) & 0x7F;
        if idx as usize >= Reg::COUNT {
            return Err(BitstreamError::BadRegister(idx));
        }
        Ok(Reg::from_flat_index(idx as usize))
    };
    match tag {
        0 => Ok(Operand::None),
        1 => Ok(Operand::InitReg(reg_of(w)?)),
        2 => Ok(Operand::Node {
            idx: ((w >> 8) & 0xFFFF_FFFF) as u32,
            carried: (w >> 40) & 1 == 1,
            via: reg_of(w)?,
        }),
        t => Err(BitstreamError::BadOperandTag(t)),
    }
}

/// Packs a placement: bit 63 = placed; row/col in the low bits.
fn pack_coord(c: Option<Coord>) -> u64 {
    match c {
        None => 0,
        Some(c) => 1 << 63 | (c.row as u64) << 16 | c.col as u64,
    }
}

fn unpack_coord(w: u64) -> Option<Coord> {
    (w >> 63 == 1).then(|| Coord::new(((w >> 16) & 0xFFFF_FFFF) as usize, (w & 0xFFFF) as usize))
}

/// Per-node flag bits.
const FLAG_PREFETCHED: u64 = 1;
const FLAG_SCALE_IMM: u64 = 2;
const FLAG_HAS_FORWARD: u64 = 4;
const FLAG_HAS_VECTOR_HEAD: u64 = 8;

/// Encodes a configured region into its bitstream.
///
/// The instruction itself is carried as its *machine word* — the
/// accelerator re-decodes it, exactly as PEs latch "registers holding
/// instruction data" in the paper's §5.2.
///
/// # Errors
/// Returns [`BitstreamError::Unencodable`] when an instruction cannot be
/// re-encoded to machine form (impossible for programs built from decoded
/// regions, but reachable from hand-built or corrupted configurations).
pub fn encode(prog: &AccelProgram) -> Result<Vec<u64>, BitstreamError> {
    let mut w = Writer::default();
    w.push(MAGIC);
    w.push(prog.start_pc);
    w.push(prog.end_pc);
    w.push(prog.nodes.len() as u64);
    w.push(
        u64::from(prog.loop_branch)
            | (prog.tiles as u64) << 32
            | u64::from(prog.pipelined) << 48,
    );

    for node in &prog.nodes {
        w.push(node.pc);
        let instr_word =
            codec::encode(&node.instr).map_err(|_| BitstreamError::Unencodable(node.pc))?;
        let mut flags = 0u64;
        if node.prefetched {
            flags |= FLAG_PREFETCHED;
        }
        if node.scale_imm_by_tiles {
            flags |= FLAG_SCALE_IMM;
        }
        if node.forwarded_from.is_some() {
            flags |= FLAG_HAS_FORWARD;
        }
        if node.vector_head.is_some() {
            flags |= FLAG_HAS_VECTOR_HEAD;
        }
        w.push(u64::from(instr_word) | flags << 32);
        w.push(pack_coord(node.coord));
        w.push(pack_operand(&node.inputs[0]));
        w.push(pack_operand(&node.inputs[1]));
        w.push(pack_operand(&node.hidden));
        w.push(
            u64::from(node.forwarded_from.unwrap_or(0))
                | u64::from(node.vector_head.unwrap_or(0)) << 32,
        );
        w.push(node.guards.len() as u64);
        for &g in &node.guards {
            w.push(u64::from(g));
        }
    }

    w.push(prog.live_out.len() as u64);
    for &(reg, node) in &prog.live_out {
        w.push((reg.flat_index() as u64) << 32 | u64::from(node));
    }
    Ok(w.words)
}

/// Decodes a bitstream back into the configured region.
///
/// # Errors
/// Returns [`BitstreamError`] on malformed input. A successful decode
/// round-trips [`encode`] exactly.
pub fn decode(words: &[u64]) -> Result<AccelProgram, BitstreamError> {
    let mut r = Reader { words, at: 0 };
    let magic = r.next()?;
    if magic != MAGIC {
        return Err(BitstreamError::BadMagic(magic));
    }
    let start_pc = r.next()?;
    let end_pc = r.next()?;
    let n = r.next()? as usize;
    let meta = r.next()?;
    let loop_branch = (meta & 0xFFFF_FFFF) as u32;
    let tiles = ((meta >> 32) & 0xFFFF) as usize;
    let pipelined = (meta >> 48) & 1 == 1;

    let mut nodes = Vec::with_capacity(n);
    for _ in 0..n {
        let pc = r.next()?;
        let instr_flags = r.next()?;
        let instr_word = (instr_flags & 0xFFFF_FFFF) as u32;
        let flags = instr_flags >> 32;
        let instr = codec::decode(instr_word)
            .map_err(|_| BitstreamError::BadInstruction(instr_word))?;
        let coord = unpack_coord(r.next()?);
        let s1 = unpack_operand(r.next()?)?;
        let s2 = unpack_operand(r.next()?)?;
        let hidden = unpack_operand(r.next()?)?;
        let fw_vec = r.next()?;
        let guard_count = r.next()? as usize;
        let mut guards = Vec::with_capacity(guard_count);
        for _ in 0..guard_count {
            guards.push(r.next()? as u32);
        }
        let mut node = NodeConfig::new(pc, instr, coord, [s1, s2]);
        node.hidden = hidden;
        node.guards = guards;
        node.prefetched = flags & FLAG_PREFETCHED != 0;
        node.scale_imm_by_tiles = flags & FLAG_SCALE_IMM != 0;
        node.forwarded_from =
            (flags & FLAG_HAS_FORWARD != 0).then_some((fw_vec & 0xFFFF_FFFF) as u32);
        node.vector_head = (flags & FLAG_HAS_VECTOR_HEAD != 0).then_some((fw_vec >> 32) as u32);
        nodes.push(node);
    }

    let live_count = r.next()? as usize;
    let mut live_out = Vec::with_capacity(live_count);
    for _ in 0..live_count {
        let w = r.next()?;
        let reg_idx = (w >> 32) as usize;
        if reg_idx >= Reg::COUNT {
            return Err(BitstreamError::BadRegister(reg_idx as u64));
        }
        live_out.push((Reg::from_flat_index(reg_idx), (w & 0xFFFF_FFFF) as u32));
    }

    Ok(AccelProgram { start_pc, end_pc, nodes, loop_branch, live_out, tiles, pipelined })
}

/// Size of the encoded bitstream in bits — what the config bus actually
/// carries, used to sanity-check the cycle model's write cost. An
/// unencodable program reports zero bits (it can never be shipped).
#[must_use]
pub fn size_bits(prog: &AccelProgram) -> usize {
    encode(prog).map_or(0, |words| words.len() * 64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesa_isa::{Instruction, Opcode};
    use mesa_isa::reg::abi::*;

    fn sample_program() -> AccelProgram {
        let mut load = NodeConfig::new(
            0x1000,
            Instruction::load(Opcode::Lw, T0, A0, 0),
            Some(Coord::new(1, 2)),
            [Operand::Node { idx: 2, carried: true, via: A0 }, Operand::None],
        );
        load.prefetched = true;
        let mut guarded = NodeConfig::new(
            0x1004,
            Instruction::reg_imm(Opcode::Addi, T1, T1, 5),
            None, // fallback bus
            [Operand::Node { idx: 1, carried: true, via: T1 }, Operand::None],
        );
        guarded.guards = vec![0];
        guarded.hidden = Operand::Node { idx: 1, carried: true, via: T1 };
        let mut addi = NodeConfig::new(
            0x1008,
            Instruction::reg_imm(Opcode::Addi, A0, A0, 4),
            Some(Coord::new(0, 0)),
            [Operand::Node { idx: 2, carried: true, via: A0 }, Operand::None],
        );
        addi.scale_imm_by_tiles = true;
        let branch = NodeConfig::new(
            0x100C,
            Instruction::branch(Opcode::Bltu, A0, A1, -12),
            Some(Coord::new(0, 1)),
            [
                Operand::Node { idx: 2, carried: false, via: A0 },
                Operand::InitReg(A1),
            ],
        );
        AccelProgram {
            start_pc: 0x1000,
            end_pc: 0x1010,
            nodes: vec![load, guarded, addi, branch],
            loop_branch: 3,
            live_out: vec![(T0, 0), (A0, 2)],
            tiles: 4,
            pipelined: true,
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let prog = sample_program();
        let words = encode(&prog).unwrap();
        let back = decode(&words).expect("decodes");
        assert_eq!(back, prog);
    }

    #[test]
    fn magic_is_checked() {
        let mut words = encode(&sample_program()).unwrap();
        words[0] ^= 0xFF;
        assert!(matches!(decode(&words), Err(BitstreamError::BadMagic(_))));
    }

    #[test]
    fn truncation_is_detected() {
        let words = encode(&sample_program()).unwrap();
        for cut in [1, 4, 7, words.len() - 1] {
            assert_eq!(
                decode(&words[..cut]),
                Err(BitstreamError::Truncated),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn corrupt_instruction_is_detected() {
        let prog = sample_program();
        let mut words = encode(&prog).unwrap();
        // Node records start at word 5; word 6 holds instr|flags.
        words[6] = (words[6] & !0xFFFF_FFFF) | 0xFFFF_FFFF;
        assert!(matches!(decode(&words), Err(BitstreamError::BadInstruction(_))));
    }

    #[test]
    fn operand_packing_roundtrips() {
        let ops = [
            Operand::None,
            Operand::InitReg(A1),
            Operand::InitReg(FT0),
            Operand::Node { idx: 0, carried: false, via: T0 },
            Operand::Node { idx: 4_000_000, carried: true, via: FA5 },
        ];
        for op in ops {
            assert_eq!(unpack_operand(pack_operand(&op)).unwrap(), op, "{op:?}");
        }
    }

    #[test]
    fn coord_packing_roundtrips() {
        for c in [None, Some(Coord::new(0, 0)), Some(Coord::new(63, 7))] {
            assert_eq!(unpack_coord(pack_coord(c)), c);
        }
    }

    #[test]
    fn size_is_compact() {
        let prog = sample_program();
        // 5 header + 4 nodes * (8 fixed + guards) + 1 + 2 live-outs.
        let bits = size_bits(&prog);
        assert_eq!(bits, (5 + (8 * 4 + 1) + 1 + 2) * 64);
    }
}
