//! Serializable placement checkpoints.
//!
//! A [`PlacementSnapshot`] freezes a running spatial session at a round
//! boundary: per-tile architectural state (entry registers with induction
//! offsets, carried node outputs), the timing state the fabric needs to
//! continue bit-identically (completion times, the LSU's in-order store
//! cursor, per-lane/port/bus booking counters, in-flight bus-token drop
//! position), and the cumulative latency counters MESA's feedback channel
//! reports. Snapshots are *position-independent*: they record how many rows
//! the session's region had, not where it sat, so a checkpoint taken in one
//! region resumes in any other region of the same height — on the same grid
//! or a different one. That is the mechanism behind tenant migration, and
//! the differential property tests pin down that it is architecturally
//! invisible.
//!
//! The wire format mirrors the config bitstream (`bitstream.rs`): a
//! little-endian `u64` word stream with a magic word, a version, explicit
//! counts, and a trailing FNV checksum, so a truncated or corrupted
//! snapshot is rejected with a typed [`SnapshotError`] instead of
//! panicking.

use crate::counters::{ActivityStats, NodeCounter, PerfCounters};
use crate::faults::{FaultLog, FaultPlan};
use crate::{AccelProgram, AccelRunResult, Region};
use mesa_isa::{Reg, Xlen};
use std::fmt;

/// Magic word opening every snapshot stream (`"MESASNP1"` as ASCII).
pub const SNAPSHOT_MAGIC: u64 = u64::from_le_bytes(*b"MESASNP1");

/// Wire-format version emitted by [`PlacementSnapshot::to_words`].
const VERSION: u64 = 1;

/// Decode-time bounds: a corrupted count must not trigger an enormous
/// allocation before the checksum gets a chance to reject the stream.
const MAX_NODES: u64 = 1 << 20;
const MAX_TILES: u64 = 1 << 10;
const MAX_REGION_ROWS: u64 = 1 << 16;

/// Errors produced while decoding or resuming a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Stream too short for the structure it claims to contain.
    Truncated,
    /// The magic word did not match.
    BadMagic(u64),
    /// The version word is not one this decoder understands.
    BadVersion(u64),
    /// The trailing checksum did not match the stream contents.
    ChecksumMismatch {
        /// Checksum recomputed from the received words.
        expected: u64,
        /// Checksum word carried by the stream.
        found: u64,
    },
    /// A count or enum field held an impossible value.
    FieldOutOfRange(&'static str),
    /// The snapshot does not belong to the program/region/fault plan it is
    /// being resumed against.
    Mismatch {
        /// Which binding failed.
        field: &'static str,
        /// Value the resume context requires.
        expected: u64,
        /// Value the snapshot carries.
        found: u64,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadMagic(m) => write!(f, "bad snapshot magic {m:#018x}"),
            SnapshotError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::ChecksumMismatch { expected, found } => write!(
                f,
                "snapshot checksum mismatch: computed {expected:#018x}, stream carries {found:#018x}"
            ),
            SnapshotError::FieldOutOfRange(field) => {
                write!(f, "snapshot field {field} out of range")
            }
            SnapshotError::Mismatch { field, expected, found } => write!(
                f,
                "snapshot does not match resume context: {field} is {found:#x}, expected {expected:#x}"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// One tile's frozen execution state (mirrors the engine's internal
/// `TileState`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct TileSnap {
    /// Entry registers with per-tile induction offsets applied.
    pub(crate) entry_regs: Vec<u64>,
    /// Previous-iteration node outputs (the carried operand source).
    pub(crate) prev_value: Vec<u64>,
    /// Previous-iteration node completion times.
    pub(crate) prev_complete: Vec<u64>,
    /// Iterations this tile has executed.
    pub(crate) iters: u64,
    /// Completion time of the tile's last iteration.
    pub(crate) last_complete: u64,
    /// Whether the tile's loop is still running.
    pub(crate) running: bool,
    /// In-order store-commit cursor (the LSU queue's frozen head).
    pub(crate) last_store_start: u64,
}

/// A frozen spatial session: everything needed to resume mid-episode,
/// bit-identically, in any same-height region. See the module docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacementSnapshot {
    /// Digest of the program this snapshot belongs to.
    pub(crate) fingerprint: u64,
    /// Register width of the offloaded state.
    pub(crate) xlen: Xlen,
    /// Node count (redundant with the program, kept for validation).
    pub(crate) nodes: usize,
    /// Tile count the session ran with.
    pub(crate) tiles: usize,
    /// Height of the region the session ran in.
    pub(crate) region_rows: usize,
    /// Fault binding: the bus-token drop period the session ran under.
    pub(crate) bus_drop_period: u64,
    /// Total iterations executed so far (across tiles).
    pub(crate) total_iters: u64,
    /// Tile that ran the globally-last iteration (live-out source).
    pub(crate) last_iter_tile: usize,
    /// Memory-port booking counter.
    pub(crate) port_requests: u64,
    /// Fallback-bus booking counter (also the drop-schedule position).
    pub(crate) bus_requests: u64,
    /// Bus tokens dropped so far.
    pub(crate) bus_drops: u64,
    /// Per-row NoC lane booking counters, region-relative.
    pub(crate) lane_requests: Vec<u64>,
    /// Per-tile frozen state.
    pub(crate) tile_states: Vec<TileSnap>,
    /// Cumulative per-node latency counters.
    pub(crate) counters: PerfCounters,
    /// Cumulative activity statistics.
    pub(crate) activity: ActivityStats,
}

impl PlacementSnapshot {
    /// Digest of the program this snapshot was taken from.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Iterations executed before the freeze (across all tiles).
    #[must_use]
    pub fn iterations(&self) -> u64 {
        self.total_iters
    }

    /// Session clock at the freeze: the latest per-tile completion time.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.tile_states.iter().map(|t| t.last_complete).max().unwrap_or(0)
    }

    /// Tile count the frozen session ran with.
    #[must_use]
    pub fn tiles(&self) -> usize {
        self.tiles
    }

    /// Height (in rows) of the region the session ran in; a resume target
    /// region must match it.
    #[must_use]
    pub fn region_rows(&self) -> usize {
        self.region_rows
    }

    /// `true` while at least one tile's loop has not exited.
    #[must_use]
    pub fn is_running(&self) -> bool {
        self.tile_states.iter().any(|t| t.running)
    }

    /// Checks that this snapshot can resume against `prog` in `region`
    /// under `faults`.
    ///
    /// # Errors
    /// Returns [`SnapshotError::Mismatch`] naming the first binding that
    /// fails (program digest, node/tile counts, region height, or fault
    /// plan).
    pub fn check_compatible(
        &self,
        prog: &AccelProgram,
        region: Region,
        faults: &FaultPlan,
    ) -> Result<(), SnapshotError> {
        let checks = [
            ("program fingerprint", prog.fingerprint(), self.fingerprint),
            ("node count", prog.nodes.len() as u64, self.nodes as u64),
            ("tile count", prog.tiles.max(1) as u64, self.tiles as u64),
            ("region rows", region.rows as u64, self.region_rows as u64),
            ("bus drop period", faults.bus_drop_period, self.bus_drop_period),
        ];
        for (field, expected, found) in checks {
            if expected != found {
                return Err(SnapshotError::Mismatch { field, expected, found });
            }
        }
        Ok(())
    }

    /// Converts the frozen state into a partial [`AccelRunResult`]
    /// (`completed` reflects whether every tile's loop already exited).
    /// Live-out registers are read through the same last-iteration-tile
    /// rule the engine uses at completion.
    #[must_use]
    pub fn to_result(&self, prog: &AccelProgram) -> AccelRunResult {
        let final_regs = self
            .tile_states
            .get(self.last_iter_tile)
            .map(|last| {
                prog.live_out
                    .iter()
                    .map(|&(reg, node)| {
                        (reg, last.prev_value.get(node as usize).copied().unwrap_or(0))
                    })
                    .collect()
            })
            .unwrap_or_default();
        AccelRunResult {
            iterations: self.total_iters,
            cycles: self.cycles(),
            counters: self.counters.clone(),
            activity: self.activity,
            final_regs,
            completed: !self.is_running(),
            faults: FaultLog { bus_tokens_dropped: self.bus_drops, ..FaultLog::default() },
        }
    }

    /// Exact length in words of the stream [`PlacementSnapshot::to_words`]
    /// would produce, computed arithmetically — no allocation or
    /// serialization. The fabric's telemetry uses this to account
    /// checkpoint/restore cost in "wire words shuttled" without paying for
    /// a second serialization on the migration hot path.
    #[must_use]
    pub fn word_len(&self) -> usize {
        let tile_words = Reg::COUNT + 2 * self.nodes + 4;
        14 // header: magic..Reg::COUNT (see to_words)
            + self.region_rows
            + self.tiles * tile_words
            + self.nodes * NodeCounter::SNAPSHOT_WORDS
            + ActivityStats::SNAPSHOT_WORDS
            + 1 // trailing checksum
    }

    /// Serializes the snapshot to a little-endian word stream (magic,
    /// version, counts, payload, trailing FNV checksum).
    #[must_use]
    pub fn to_words(&self) -> Vec<u64> {
        let mut out = vec![
            SNAPSHOT_MAGIC,
            VERSION,
            self.fingerprint,
            match self.xlen {
                Xlen::Rv32 => 32,
                Xlen::Rv64 => 64,
            },
            self.nodes as u64,
            self.tiles as u64,
            self.region_rows as u64,
            self.bus_drop_period,
            self.total_iters,
            self.last_iter_tile as u64,
            self.port_requests,
            self.bus_requests,
            self.bus_drops,
            Reg::COUNT as u64,
        ];
        out.extend_from_slice(&self.lane_requests);
        for tile in &self.tile_states {
            out.extend_from_slice(&tile.entry_regs);
            out.extend_from_slice(&tile.prev_value);
            out.extend_from_slice(&tile.prev_complete);
            out.push(tile.iters);
            out.push(tile.last_complete);
            out.push(u64::from(tile.running));
            out.push(tile.last_store_start);
        }
        for ctr in &self.counters.nodes {
            ctr.write_words(&mut out);
        }
        self.activity.write_words(&mut out);
        out.push(fnv_words(&out));
        out
    }

    /// Decodes a word stream produced by [`PlacementSnapshot::to_words`].
    ///
    /// # Errors
    /// Returns a typed [`SnapshotError`] for any malformed input —
    /// truncation, bad magic/version, impossible counts, or a checksum
    /// mismatch — never panics.
    pub fn from_words(words: &[u64]) -> Result<Self, SnapshotError> {
        let mut r = WordReader { words, at: 0 };
        let magic = r.next()?;
        if magic != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic(magic));
        }
        let version = r.next()?;
        if version != VERSION {
            return Err(SnapshotError::BadVersion(version));
        }
        let fingerprint = r.next()?;
        let xlen = match r.next()? {
            32 => Xlen::Rv32,
            64 => Xlen::Rv64,
            _ => return Err(SnapshotError::FieldOutOfRange("xlen")),
        };
        let nodes = r.bounded("node count", MAX_NODES)? as usize;
        let tiles = r.bounded("tile count", MAX_TILES)? as usize;
        if tiles == 0 {
            return Err(SnapshotError::FieldOutOfRange("tile count"));
        }
        let region_rows = r.bounded("region rows", MAX_REGION_ROWS)? as usize;
        if region_rows == 0 {
            return Err(SnapshotError::FieldOutOfRange("region rows"));
        }
        let bus_drop_period = r.next()?;
        let total_iters = r.next()?;
        let last_iter_tile = r.next()? as usize;
        if last_iter_tile >= tiles {
            return Err(SnapshotError::FieldOutOfRange("last iteration tile"));
        }
        let port_requests = r.next()?;
        let bus_requests = r.next()?;
        let bus_drops = r.next()?;
        if r.next()? != Reg::COUNT as u64 {
            return Err(SnapshotError::FieldOutOfRange("register file size"));
        }

        // The payload size is now fully determined; verify the trailing
        // checksum before decoding the bulk arrays.
        let tile_words = Reg::COUNT + 2 * nodes + 4;
        let payload_end = r.at
            + region_rows
            + tiles * tile_words
            + nodes * NodeCounter::SNAPSHOT_WORDS
            + ActivityStats::SNAPSHOT_WORDS;
        let Some(&carried) = words.get(payload_end) else {
            return Err(SnapshotError::Truncated);
        };
        if words.len() != payload_end + 1 {
            return Err(SnapshotError::FieldOutOfRange("stream length"));
        }
        let expected = fnv_words(&words[..payload_end]);
        if expected != carried {
            return Err(SnapshotError::ChecksumMismatch { expected, found: carried });
        }

        let lane_requests = r.take(region_rows)?.to_vec();
        let mut tile_states = Vec::with_capacity(tiles);
        for _ in 0..tiles {
            let entry_regs = r.take(Reg::COUNT)?.to_vec();
            let prev_value = r.take(nodes)?.to_vec();
            let prev_complete = r.take(nodes)?.to_vec();
            let iters = r.next()?;
            let last_complete = r.next()?;
            let running = match r.next()? {
                0 => false,
                1 => true,
                _ => return Err(SnapshotError::FieldOutOfRange("running flag")),
            };
            let last_store_start = r.next()?;
            tile_states.push(TileSnap {
                entry_regs,
                prev_value,
                prev_complete,
                iters,
                last_complete,
                running,
                last_store_start,
            });
        }
        let mut counters = PerfCounters::new(nodes);
        for ctr in &mut counters.nodes {
            *ctr = NodeCounter::from_words(r.take(NodeCounter::SNAPSHOT_WORDS)?)
                .ok_or(SnapshotError::Truncated)?;
        }
        let activity = ActivityStats::from_words(r.take(ActivityStats::SNAPSHOT_WORDS)?)
            .ok_or(SnapshotError::Truncated)?;

        Ok(PlacementSnapshot {
            fingerprint,
            xlen,
            nodes,
            tiles,
            region_rows,
            bus_drop_period,
            total_iters,
            last_iter_tile,
            port_requests,
            bus_requests,
            bus_drops,
            lane_requests,
            tile_states,
            counters,
            activity,
        })
    }
}

/// Cursor over the word stream (the bitstream decoder's idiom).
struct WordReader<'a> {
    words: &'a [u64],
    at: usize,
}

impl<'a> WordReader<'a> {
    fn next(&mut self) -> Result<u64, SnapshotError> {
        let w = self.words.get(self.at).copied().ok_or(SnapshotError::Truncated)?;
        self.at += 1;
        Ok(w)
    }

    /// Reads a count field and rejects values above `max` before any
    /// allocation sized by it.
    fn bounded(&mut self, field: &'static str, max: u64) -> Result<u64, SnapshotError> {
        let v = self.next()?;
        if v > max {
            return Err(SnapshotError::FieldOutOfRange(field));
        }
        Ok(v)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u64], SnapshotError> {
        let end = self.at.checked_add(n).ok_or(SnapshotError::Truncated)?;
        let slice = self.words.get(self.at..end).ok_or(SnapshotError::Truncated)?;
        self.at = end;
        Ok(slice)
    }
}

/// FNV-1a over the little-endian bytes of a word stream (the checksum the
/// trailing word carries).
fn fnv_words(words: &[u64]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        for byte in w.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PlacementSnapshot {
        PlacementSnapshot {
            fingerprint: 0xDEAD_BEEF,
            xlen: Xlen::Rv32,
            nodes: 2,
            tiles: 1,
            region_rows: 4,
            bus_drop_period: 3,
            total_iters: 5,
            last_iter_tile: 0,
            port_requests: 7,
            bus_requests: 9,
            bus_drops: 3,
            lane_requests: vec![1, 0, 2, 0],
            tile_states: vec![TileSnap {
                entry_regs: vec![0; Reg::COUNT],
                prev_value: vec![11, 22],
                prev_complete: vec![4, 5],
                iters: 5,
                last_complete: 5,
                running: true,
                last_store_start: 3,
            }],
            counters: PerfCounters::new(2),
            activity: ActivityStats { int_ops: 10, ..ActivityStats::default() },
        }
    }

    #[test]
    fn words_roundtrip_exactly() {
        let snap = sample();
        let words = snap.to_words();
        let back = PlacementSnapshot::from_words(&words).expect("roundtrip");
        assert_eq!(snap, back);
        assert_eq!(back.cycles(), 5);
        assert_eq!(back.iterations(), 5);
        assert!(back.is_running());
    }

    #[test]
    fn word_len_matches_serialized_length() {
        let snap = sample();
        assert_eq!(snap.word_len(), snap.to_words().len());
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let words = sample().to_words();
        for cut in 0..words.len() {
            let err = PlacementSnapshot::from_words(&words[..cut])
                .expect_err("truncated stream must not decode");
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated
                        | SnapshotError::ChecksumMismatch { .. }
                        | SnapshotError::FieldOutOfRange(_)
                ),
                "cut at {cut}: unexpected error {err}"
            );
        }
    }

    #[test]
    fn every_single_word_corruption_is_detected() {
        let words = sample().to_words();
        for i in 0..words.len() {
            let mut bad = words.clone();
            bad[i] ^= 1 << 17;
            assert!(
                PlacementSnapshot::from_words(&bad).is_err(),
                "flip in word {i} went undetected"
            );
        }
    }

    #[test]
    fn bad_magic_and_version_are_reported() {
        let mut words = sample().to_words();
        words[0] = 42;
        assert_eq!(PlacementSnapshot::from_words(&words), Err(SnapshotError::BadMagic(42)));
        let mut words = sample().to_words();
        words[1] = 99;
        assert_eq!(PlacementSnapshot::from_words(&words), Err(SnapshotError::BadVersion(99)));
    }
}
