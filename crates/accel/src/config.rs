//! Accelerator configurations, including the paper's three evaluation
//! backends M-64, M-128, and M-512 (§5.2).

use crate::{Coord, GridDim};
use mesa_isa::OpClass;

/// Which PEs carry single-precision floating-point hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FpPattern {
    /// No FP anywhere (integer-only fabric).
    None,
    /// FP in 2×2 slices tiled over half the array (the paper's M-128:
    /// "half are equipped with single-precision floating-point logic",
    /// synthesized as 2×2 FP slices per Table 1).
    HalfSlices,
    /// Every PE has FP.
    All,
}

impl FpPattern {
    /// `true` when the PE at `c` has FP hardware.
    #[must_use]
    pub fn has_fp(self, c: Coord) -> bool {
        match self {
            FpPattern::None => false,
            FpPattern::All => true,
            // 2x2 slices in a checkerboard: half the array.
            FpPattern::HalfSlices => (c.row / 2 + c.col / 2).is_multiple_of(2),
        }
    }
}

/// Full accelerator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccelConfig {
    /// Grid rows.
    pub rows: usize,
    /// Grid columns.
    pub cols: usize,
    /// FP capability layout.
    pub fp: FpPattern,
    /// Concurrent ports from load/store entries into the cache.
    pub mem_ports: usize,
    /// Load/store entries available (structural bound on memory ops per
    /// mapped region).
    pub lsq_entries: usize,
    /// Extra latency per use of the fallback bus (for instructions the
    /// mapper failed to place; paper §3.3's "secondary bus ... slower but
    /// less restrictive data forwarding mechanism").
    pub fallback_bus_latency: u64,
    /// Human-readable name ("M-128" etc.).
    pub name: &'static str,
}

impl AccelConfig {
    /// M-64: 16×4 grid (the small configuration of Fig. 14).
    #[must_use]
    pub fn m64() -> Self {
        AccelConfig {
            rows: 16,
            cols: 4,
            fp: FpPattern::HalfSlices,
            mem_ports: 2,
            lsq_entries: 24,
            fallback_bus_latency: 6,
            name: "M-64",
        }
    }

    /// M-128: 16×8 grid, half FP (the paper's headline configuration).
    #[must_use]
    pub fn m128() -> Self {
        AccelConfig {
            rows: 16,
            cols: 8,
            fp: FpPattern::HalfSlices,
            mem_ports: 4,
            lsq_entries: 48,
            fallback_bus_latency: 6,
            name: "M-128",
        }
    }

    /// M-512: 64×8 grid (the large configuration).
    #[must_use]
    pub fn m512() -> Self {
        AccelConfig {
            rows: 64,
            cols: 8,
            fp: FpPattern::HalfSlices,
            mem_ports: 8,
            lsq_entries: 128,
            fallback_bus_latency: 6,
            name: "M-512",
        }
    }

    /// A custom square-ish configuration with `pes` processing elements in
    /// 8-wide rows (4-wide below 32 PEs), used by the PE-scaling study
    /// (Fig. 15).
    ///
    /// # Panics
    /// Panics if `pes` is not a multiple of the row width.
    #[must_use]
    pub fn with_pes(pes: usize) -> Self {
        let cols = if pes < 32 { 4 } else { 8 };
        assert!(pes.is_multiple_of(cols), "PE count {pes} not a multiple of {cols}");
        AccelConfig {
            rows: pes / cols,
            cols,
            fp: FpPattern::HalfSlices,
            // Ports grow with the array up to the cache's 8-port ceiling —
            // the structural limit behind Fig. 15's knee past 128 PEs.
            mem_ports: (pes / 16).clamp(1, 8),
            lsq_entries: (pes * 3 / 8).max(8),
            fallback_bus_latency: 6,
            name: "M-custom",
        }
    }

    /// The same configuration with unlimited memory ports — the "ideal
    /// memory" scenario of Fig. 15.
    #[must_use]
    pub fn with_ideal_memory(mut self) -> Self {
        self.mem_ports = usize::MAX;
        self.lsq_entries = usize::MAX / 2;
        self.name = "ideal-mem";
        self
    }

    /// Grid dimensions.
    #[must_use]
    pub fn grid(&self) -> GridDim {
        GridDim::new(self.rows, self.cols)
    }

    /// Total PE count.
    #[must_use]
    pub fn num_pes(&self) -> usize {
        self.rows * self.cols
    }

    /// Maximum instructions mappable (equals PE count; the trace-cache size
    /// and condition C1's structural bound).
    #[must_use]
    pub fn max_instrs(&self) -> usize {
        self.num_pes()
    }

    /// Whether the PE at `c` can execute operations of class `class` —
    /// this is the hardware truth behind MESA's per-operation masking
    /// matrices `F_op` (paper §3.3).
    ///
    /// Memory classes are *not* PE operations (they occupy load/store
    /// entries); branches are evaluated by comparator-equipped PEs, which
    /// every PE has (§5.2).
    #[must_use]
    pub fn supports(&self, c: Coord, class: OpClass) -> bool {
        if !self.grid().contains(c) {
            return false;
        }
        match class {
            OpClass::System => false,
            OpClass::FpAlu | OpClass::FpMul | OpClass::FpDiv => self.fp.has_fp(c),
            _ => true,
        }
    }
}

impl Default for AccelConfig {
    fn default() -> Self {
        Self::m128()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_dimensions_match_paper() {
        assert_eq!(AccelConfig::m64().num_pes(), 64);
        assert_eq!((AccelConfig::m64().rows, AccelConfig::m64().cols), (16, 4));
        assert_eq!(AccelConfig::m128().num_pes(), 128);
        assert_eq!((AccelConfig::m128().rows, AccelConfig::m128().cols), (16, 8));
        assert_eq!(AccelConfig::m512().num_pes(), 512);
        assert_eq!((AccelConfig::m512().rows, AccelConfig::m512().cols), (64, 8));
    }

    #[test]
    fn half_slices_is_half_the_array() {
        let cfg = AccelConfig::m128();
        let fp_count = cfg.grid().iter().filter(|&c| cfg.fp.has_fp(c)).count();
        assert_eq!(fp_count, 64, "half of 128 PEs carry FP");
    }

    #[test]
    fn fp_slices_are_2x2() {
        let p = FpPattern::HalfSlices;
        // The 2x2 block at (0,0)..(1,1) is uniform.
        let base = p.has_fp(Coord::new(0, 0));
        assert_eq!(p.has_fp(Coord::new(0, 1)), base);
        assert_eq!(p.has_fp(Coord::new(1, 0)), base);
        assert_eq!(p.has_fp(Coord::new(1, 1)), base);
        // The neighboring 2x2 block is the opposite.
        assert_ne!(p.has_fp(Coord::new(0, 2)), base);
    }

    #[test]
    fn supports_masks_fp_and_system() {
        let cfg = AccelConfig::m128();
        let fp_pe = cfg.grid().iter().find(|&c| cfg.fp.has_fp(c)).unwrap();
        let int_pe = cfg.grid().iter().find(|&c| !cfg.fp.has_fp(c)).unwrap();
        assert!(cfg.supports(fp_pe, OpClass::FpMul));
        assert!(!cfg.supports(int_pe, OpClass::FpMul));
        assert!(cfg.supports(int_pe, OpClass::IntAlu));
        assert!(!cfg.supports(fp_pe, OpClass::System));
        assert!(!cfg.supports(Coord::new(999, 0), OpClass::IntAlu));
    }

    #[test]
    fn ideal_memory_unbounds_ports() {
        let cfg = AccelConfig::m128().with_ideal_memory();
        assert_eq!(cfg.mem_ports, usize::MAX);
        assert_eq!(cfg.num_pes(), 128);
    }

    #[test]
    fn with_pes_scales() {
        for pes in [16, 32, 64, 128, 256, 512] {
            let cfg = AccelConfig::with_pes(pes);
            assert_eq!(cfg.num_pes(), pes);
        }
    }
}
