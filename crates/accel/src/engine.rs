//! Cycle-level dataflow execution engine for the spatial accelerator.
//!
//! Each configured node fires once per loop iteration when its inputs are
//! available (the dataflow model of paper §3.1). Values are computed with
//! the exact ISA semantics from `mesa-isa`; timing follows the fabric:
//! single-cycle neighbor links, a contended half-ring NoC, a shared
//! fallback bus for unplaced nodes, and load/store entries that keep
//! original program order for stores while loads may run ahead, with
//! store→load forwarding and invalidation on address conflicts (§4.2).
//!
//! Tiled regions (Fig. 6) run one SDFG instance per tile, striding over the
//! iteration space; all tiles share the memory ports, which is what bends
//! the PE-scaling curve of Fig. 15 once ports saturate.

use crate::faults::{FaultLog, FaultPlan, BUS_DROP_PENALTY};
use crate::snapshot::{PlacementSnapshot, SnapshotError, TileSnap};
use crate::{
    AccelConfig, AccelProgram, ActivityStats, Coord, HalfRingModel, LatencyModel, NodeConfig,
    Operand, PerfCounters, ProgramError, Region,
};
use mesa_isa::{step, ArchState, Instruction, MemoryIo, OpClass, Outcome, Reg, Xlen};
use mesa_mem::MemorySystem;
use mesa_trace::{NullTracer, Subsystem, Tracer};
use std::fmt;

/// Extra cycles to replay a load invalidated by a conflicting store.
pub(crate) const VIOLATION_REDO: u64 = 2;

/// Result of executing a configured region.
#[derive(Debug, Clone)]
pub struct AccelRunResult {
    /// Loop iterations executed (across all tiles).
    pub iterations: u64,
    /// Total cycles from start to last completion.
    pub cycles: u64,
    /// Per-node latency counters (MESA's feedback channel).
    pub counters: PerfCounters,
    /// Aggregate activity for the energy model.
    pub activity: ActivityStats,
    /// Live-out register values to write back to the CPU.
    pub final_regs: Vec<(Reg, u64)>,
    /// `true` when every tile's loop exited naturally (vs. hitting the
    /// iteration cap).
    pub completed: bool,
    /// Engine-level fault events injected during this run.
    pub faults: FaultLog,
}

impl AccelRunResult {
    /// Average cycles per iteration.
    #[must_use]
    pub fn cycles_per_iteration(&self) -> f64 {
        if self.iterations == 0 {
            0.0
        } else {
            self.cycles as f64 / self.iterations as f64
        }
    }
}

/// Parameters of one spatial session: who runs, where on the grid, for how
/// long, and whether the session should freeze itself.
///
/// The plain `execute*` entry points are the degenerate case — full-grid
/// region, never pause. The fabric manager uses explicit regions and
/// `pause_at_cycle` to time-slice tenants.
#[derive(Debug, Clone)]
pub struct SessionRequest<'a> {
    /// Memory-system requester id of the accelerator.
    pub requester: usize,
    /// Total iteration budget (cumulative across pauses/resumes).
    pub max_iterations: u64,
    /// Fault plan (only its timing faults act at the engine level).
    pub faults: &'a FaultPlan,
    /// Row band of the grid this session owns.
    pub region: Region,
    /// Freeze at the first round boundary whose session clock has reached
    /// this cycle (`None` = run to completion). Iterations stay contiguous
    /// because the check happens between rounds, like the budget check.
    pub pause_at_cycle: Option<u64>,
}

impl<'a> SessionRequest<'a> {
    /// A full-grid, never-pausing request — what the plain `execute*`
    /// entry points use.
    #[must_use]
    pub fn solo(requester: usize, max_iterations: u64, faults: &'a FaultPlan, grid: crate::GridDim) -> Self {
        SessionRequest {
            requester,
            max_iterations,
            faults,
            region: Region::full(grid),
            pause_at_cycle: None,
        }
    }
}

/// How a spatial session ended.
// The completed variant is the overwhelmingly common one; boxing it would
// tax every solo execute call to slim the rare paused arm.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum SessionStatus {
    /// Every tile's loop exited (or the iteration budget ran out); the
    /// result is exactly what an uninterrupted `execute*` call returns.
    Completed(AccelRunResult),
    /// The session froze at a round boundary per
    /// [`SessionRequest::pause_at_cycle`]; resume it by passing the
    /// snapshot back to [`SpatialAccelerator::run_session`].
    Paused(Box<PlacementSnapshot>),
}

/// Errors starting or resuming a spatial session.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionError {
    /// The program failed validation against the session's region.
    Program(ProgramError),
    /// The resume snapshot was rejected (wrong program, region height, or
    /// fault binding).
    Snapshot(SnapshotError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Program(e) => write!(f, "session program rejected: {e}"),
            SessionError::Snapshot(e) => write!(f, "session snapshot rejected: {e}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<ProgramError> for SessionError {
    fn from(e: ProgramError) -> Self {
        SessionError::Program(e)
    }
}

impl From<SnapshotError> for SessionError {
    fn from(e: SnapshotError) -> Self {
        SessionError::Snapshot(e)
    }
}

/// The spatial accelerator: a PE grid with the fabric of paper §5.2.
#[derive(Debug, Clone)]
pub struct SpatialAccelerator {
    cfg: AccelConfig,
    model: HalfRingModel,
}

#[derive(Debug, Clone)]
struct TileState {
    /// Architectural registers captured at offload (with per-tile induction
    /// offsets applied).
    entry_regs: Vec<u64>,
    /// Previous-iteration node outputs.
    prev_value: Vec<u64>,
    /// Previous-iteration node completion times.
    prev_complete: Vec<u64>,
    /// Iterations this tile has executed.
    iters: u64,
    /// Completion time of the tile's last iteration.
    last_complete: u64,
    /// Whether the tile's loop is still running.
    running: bool,
    /// Completion time of the last store (in-order store commit).
    last_store_start: u64,
}

/// Per-iteration working buffers, allocated once per [`SpatialAccelerator::execute_traced`]
/// call and reused across every `run_iteration` of every tile. The engine
/// previously allocated four fresh `Vec`s plus two `ArchState`s per node
/// fire per iteration; with hundreds of iterations per offload that
/// dominated the run time. Buffers are reset with `fill`/`clear` at each
/// iteration start, which preserves the exact semantics of fresh
/// zero-initialized allocations.
#[derive(Debug)]
struct IterScratch {
    cur_value: Vec<u64>,
    cur_complete: Vec<u64>,
    branch_taken: Vec<bool>,
    /// (node index, address, width, data_complete) per store seen so far.
    stores_seen: Vec<(usize, u64, u8, u64)>,
    /// Scratch architectural state for PE value evaluation.
    eval_state: ArchState,
}

impl IterScratch {
    fn new(n: usize, xlen: Xlen) -> Self {
        IterScratch {
            cur_value: vec![0; n],
            cur_complete: vec![0; n],
            branch_taken: vec![false; n],
            stores_seen: Vec::new(),
            eval_state: ArchState::new(0, xlen),
        }
    }

    /// Resets to the state a fresh iteration's buffers would have.
    fn reset(&mut self) {
        self.cur_value.fill(0);
        self.cur_complete.fill(0);
        self.branch_taken.fill(false);
        self.stores_seen.clear();
    }
}

/// Static route of one dataflow edge, resolved once per
/// [`SpatialAccelerator::execute_traced`] call. Placements never change
/// during a run, so which link a transfer uses — and its model latency —
/// is a constant; only the contention (fabric booking) is dynamic.
#[derive(Debug, Clone, Copy)]
enum Route {
    /// Producer and consumer share a PE: the value is already there.
    Same,
    /// Direct local link of the given latency (contention-free).
    Local(u64),
    /// Half-ring NoC: arbitrate the producer-row lane, then `lat` hops.
    Noc { row: usize, lat: u64 },
    /// Fallback bus (either endpoint unplaced) of the given latency.
    Bus(u64),
}

/// Pre-resolved operand: flat register indices and a static [`Route`]
/// instead of `Reg`/`Coord` lookups in the per-iteration loop.
#[derive(Debug, Clone, Copy)]
enum OpPlan {
    None,
    InitReg(usize),
    Node { idx: usize, carried: bool, via: usize, route: Route },
}

/// Per-node execution plan: everything about a node that is invariant
/// across iterations (tile-scaled instruction, opcode class, memory access
/// shape, operand routes), computed once per tile per run so the
/// per-iteration loop performs no coordinate math, latency-model dispatch,
/// or opcode-property lookups.
#[derive(Debug, Clone)]
struct NodePlan {
    effective: Instruction,
    class: OpClass,
    inputs: [OpPlan; 2],
    hidden: OpPlan,
    /// Load/store access width in bytes (0 for non-memory nodes).
    mem_width: u8,
    /// Whether a load sign-extends.
    sign_extend: bool,
    /// Compute latency of the operation.
    base_latency: u64,
}

/// Resolves one pre-planned operand to `(value, ready_time_at_consumer,
/// transfer_cycles)` — the last is what the per-edge latency counters
/// record (paper §5.2).
#[inline]
#[allow(clippy::too_many_arguments)]
fn resolve_operand(
    op: &OpPlan,
    tile: &TileState,
    cur_value: &[u64],
    cur_complete: &[u64],
    base: u64,
    first_iter: bool,
    fabric: &mut Fabric,
    activity: &mut ActivityStats,
) -> (u64, u64, u64) {
    match *op {
        OpPlan::None => (0, base, 0),
        OpPlan::InitReg(flat) => (tile.entry_regs[flat], base, 0),
        OpPlan::Node { idx, carried, via, route } => {
            if carried && first_iter {
                return (tile.entry_regs[via], base, 0);
            }
            let (value, produced) = if carried {
                (tile.prev_value[idx], tile.prev_complete[idx])
            } else {
                (cur_value[idx], cur_complete[idx])
            };
            let arrival = match route {
                Route::Same => produced,
                Route::Local(lat) => {
                    activity.local_transfers += 1;
                    produced + lat
                }
                Route::Noc { row, lat } => {
                    let start = fabric.book_lane(row, produced);
                    activity.noc_transfers += 1;
                    activity.noc_hop_cycles += lat;
                    start + lat
                }
                Route::Bus(lat) => {
                    let start = fabric.book_bus(produced);
                    activity.fallback_transfers += 1;
                    start + lat
                }
            };
            (value, arrival.max(base), arrival - produced)
        }
    }
}

/// Shared fabric bandwidth accounting (memory ports, NoC lanes, fallback
/// bus).
///
/// Each resource is a rate limiter with backfill: the `n`-th request to a
/// resource of capacity `c` per cycle can start no earlier than `n / c`,
/// and no earlier than its data is ready. Nodes are *booked* in program
/// order rather than time order, so a strict per-port FIFO schedule would
/// let one late-ready access (a store at the end of a long dataflow chain)
/// block earlier-ready accesses booked after it — a hardware port would
/// simply serve them in its idle slots. The token floor models exactly
/// that: under saturation it enforces the aggregate bandwidth; under light
/// load readiness dominates.
#[derive(Debug)]
struct Fabric {
    /// Memory requests issued so far.
    port_requests: u64,
    /// Memory ports (aggregate capacity per cycle).
    port_count: u64,
    /// NoC transfers issued per row lane.
    lane_requests: Vec<u64>,
    /// Fallback-bus transfers issued.
    bus_requests: u64,
    /// Fault injection: every N-th bus transfer drops its token (0 = off).
    bus_drop_period: u64,
    /// Bus tokens dropped so far.
    bus_drops: u64,
}

impl Fabric {
    /// Books one memory-port slot for a request ready at `ready`; returns
    /// its start time.
    fn book_port(&mut self, ready: u64) -> u64 {
        let floor = self.port_requests / self.port_count;
        self.port_requests += 1;
        ready.max(floor)
    }

    /// Books one cycle on `row`'s NoC lane for a value produced at
    /// `produced`; returns the transfer start time.
    fn book_lane(&mut self, row: usize, produced: u64) -> u64 {
        let floor = self.lane_requests[row];
        self.lane_requests[row] += 1;
        produced.max(floor)
    }

    /// Books one fallback-bus slot; returns the transfer start time. Under
    /// fault injection, every `bus_drop_period`-th transfer loses its
    /// token and pays the retransmit penalty.
    fn book_bus(&mut self, produced: u64) -> u64 {
        let floor = self.bus_requests;
        self.bus_requests += 1;
        let start = produced.max(floor);
        if self.bus_drop_period > 0 && self.bus_requests.is_multiple_of(self.bus_drop_period) {
            self.bus_drops += 1;
            start + BUS_DROP_PENALTY
        } else {
            start
        }
    }
}

impl SpatialAccelerator {
    /// Builds an accelerator with the default half-ring fabric.
    #[must_use]
    pub fn new(cfg: AccelConfig) -> Self {
        SpatialAccelerator { cfg, model: HalfRingModel::default() }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &AccelConfig {
        &self.cfg
    }

    /// The interconnect model (shared with the mapper).
    #[must_use]
    pub fn latency_model(&self) -> &HalfRingModel {
        &self.model
    }

    /// Executes a configured region until every tile's loop exits or
    /// `max_iterations` total iterations have run.
    ///
    /// Functional state (memory) is updated through `mem`; the returned
    /// [`AccelRunResult::final_regs`] carry the live-out architectural
    /// registers for non-tiled runs (tiled induction live-outs are fixed up
    /// by the controller, which knows the iteration count).
    ///
    /// # Errors
    /// Returns [`ProgramError`] if the program fails validation against
    /// this accelerator's grid.
    pub fn execute(
        &self,
        prog: &AccelProgram,
        entry: &ArchState,
        mem: &mut MemorySystem,
        requester: usize,
        max_iterations: u64,
    ) -> Result<AccelRunResult, ProgramError> {
        self.execute_traced(prog, entry, mem, requester, max_iterations, &mut NullTracer, 0)
    }

    /// [`execute`](Self::execute) with engine-level fault injection: the
    /// plan's dropped-bus-token schedule is applied to the fallback bus
    /// (timing-only; architectural results must not change) and the
    /// resulting [`AccelRunResult::faults`] records what was injected.
    ///
    /// # Errors
    /// Returns [`ProgramError`] if the program fails validation against
    /// this accelerator's grid.
    pub fn execute_faulted(
        &self,
        prog: &AccelProgram,
        entry: &ArchState,
        mem: &mut MemorySystem,
        requester: usize,
        max_iterations: u64,
        faults: &FaultPlan,
    ) -> Result<AccelRunResult, ProgramError> {
        self.execute_faulted_traced(
            prog,
            entry,
            mem,
            requester,
            max_iterations,
            faults,
            &mut NullTracer,
            0,
        )
    }

    /// [`execute`](Self::execute) with tracing: wraps the run in an
    /// `accel.execute` span on the accelerator timeline starting at
    /// `cycle_base` (the controller's episode clock, since the engine's own
    /// cycles are run-relative) and samples iteration/busy counters at its
    /// close.
    ///
    /// # Errors
    /// Returns [`ProgramError`] if the program fails validation against
    /// this accelerator's grid.
    #[allow(clippy::too_many_arguments)]
    pub fn execute_traced(
        &self,
        prog: &AccelProgram,
        entry: &ArchState,
        mem: &mut MemorySystem,
        requester: usize,
        max_iterations: u64,
        tracer: &mut dyn Tracer,
        cycle_base: u64,
    ) -> Result<AccelRunResult, ProgramError> {
        self.execute_faulted_traced(
            prog,
            entry,
            mem,
            requester,
            max_iterations,
            &FaultPlan::none(),
            tracer,
            cycle_base,
        )
    }

    /// [`execute_traced`](Self::execute_traced) with engine-level fault
    /// injection (see [`execute_faulted`](Self::execute_faulted)).
    ///
    /// # Errors
    /// Returns [`ProgramError`] if the program fails validation against
    /// this accelerator's grid.
    #[allow(clippy::too_many_arguments)]
    pub fn execute_faulted_traced(
        &self,
        prog: &AccelProgram,
        entry: &ArchState,
        mem: &mut MemorySystem,
        requester: usize,
        max_iterations: u64,
        faults: &FaultPlan,
        tracer: &mut dyn Tracer,
        cycle_base: u64,
    ) -> Result<AccelRunResult, ProgramError> {
        let req = SessionRequest::solo(requester, max_iterations, faults, self.cfg.grid());
        match self.session_inner(prog, entry, mem, &req, None, tracer, cycle_base)? {
            SessionStatus::Completed(r) => Ok(r),
            // A solo request never pauses; mapped totally for panic freedom.
            SessionStatus::Paused(s) => Ok(s.to_result(prog)),
        }
    }

    /// Runs one spatial session: like
    /// [`execute_faulted_traced`](Self::execute_faulted_traced) but
    /// confined to `req.region`'s row band, optionally freezing at a
    /// round boundary
    /// ([`SessionRequest::pause_at_cycle`]) and optionally continuing from
    /// an earlier freeze (`resume`).
    ///
    /// Because the fabric's latencies depend only on *relative*
    /// coordinates and its booking counters travel inside the snapshot, a
    /// session paused in one region and resumed in another same-height
    /// region of the same grid continues cycle-identically; across grids
    /// with different port counts the timing shifts but the architectural
    /// results are unchanged. A session that runs to completion returns
    /// exactly what an uninterrupted `execute*` call would.
    ///
    /// # Errors
    /// [`SessionError::Program`] when the program does not fit the region,
    /// or [`SessionError::Snapshot`] when `resume` does not belong to this
    /// program/region/fault binding.
    #[allow(clippy::too_many_arguments)]
    pub fn run_session(
        &self,
        prog: &AccelProgram,
        entry: &ArchState,
        mem: &mut MemorySystem,
        req: &SessionRequest<'_>,
        resume: Option<&PlacementSnapshot>,
        tracer: &mut dyn Tracer,
        cycle_base: u64,
    ) -> Result<SessionStatus, SessionError> {
        if let Some(snap) = resume {
            snap.check_compatible(prog, req.region, req.faults)?;
        }
        Ok(self.session_inner(prog, entry, mem, req, resume, tracer, cycle_base)?)
    }

    /// Shared session body. `resume` is trusted here (compatibility is the
    /// public entry points' concern): with `None` this is byte-for-byte
    /// the pre-fabric execute path over the full grid.
    #[allow(clippy::too_many_arguments)]
    fn session_inner(
        &self,
        prog: &AccelProgram,
        entry: &ArchState,
        mem: &mut MemorySystem,
        req: &SessionRequest<'_>,
        resume: Option<&PlacementSnapshot>,
        tracer: &mut dyn Tracer,
        cycle_base: u64,
    ) -> Result<SessionStatus, ProgramError> {
        let region = req.region;
        if !region.fits(self.cfg.rows, self.cfg.cols) {
            // The region itself does not sit on this grid; report the
            // corner that sticks out (or (0,0) for an empty region).
            return Err(ProgramError::OutOfGrid(Coord::new(
                region.end_row().saturating_sub(1),
                region.cols.saturating_sub(1),
            )));
        }
        prog.validate(region.dims())?;
        tracer.span_begin(Subsystem::Accelerator, "accel.execute", cycle_base);

        let n = prog.nodes.len();
        let tiles = prog.tiles.max(1);
        let rows_per_tile = prog.rows_per_tile();

        let mut counters;
        let mut activity;
        let mut fabric;
        let mut tile_states: Vec<TileState>;
        let mut total_iters;
        let mut last_iter_tile;
        let xlen;
        let start_cycles;

        if let Some(snap) = resume {
            // Continue exactly where the freeze left off: architectural
            // state, timing cursors, and booking counters all come from
            // the snapshot; only the region placement is fresh.
            counters = snap.counters.clone();
            activity = snap.activity;
            let mut lanes = vec![0u64; self.cfg.rows];
            for (i, &v) in snap.lane_requests.iter().enumerate() {
                if let Some(slot) = lanes.get_mut(region.first_row + i) {
                    *slot = v;
                }
            }
            fabric = Fabric {
                port_requests: snap.port_requests,
                port_count: self.cfg.mem_ports.clamp(1, 1 << 20) as u64,
                lane_requests: lanes,
                bus_requests: snap.bus_requests,
                bus_drop_period: req.faults.bus_drop_period,
                bus_drops: snap.bus_drops,
            };
            tile_states = snap
                .tile_states
                .iter()
                .map(|t| TileState {
                    entry_regs: t.entry_regs.clone(),
                    prev_value: t.prev_value.clone(),
                    prev_complete: t.prev_complete.clone(),
                    iters: t.iters,
                    last_complete: t.last_complete,
                    running: t.running,
                    last_store_start: t.last_store_start,
                })
                .collect();
            total_iters = snap.total_iters;
            last_iter_tile = snap.last_iter_tile;
            xlen = snap.xlen;
            start_cycles = snap.cycles();
        } else {
            counters = PerfCounters::new(n);
            activity = ActivityStats::default();
            fabric = Fabric {
                port_requests: 0,
                port_count: self.cfg.mem_ports.clamp(1, 1 << 20) as u64,
                lane_requests: vec![0; self.cfg.rows],
                bus_requests: 0,
                bus_drop_period: req.faults.bus_drop_period,
                bus_drops: 0,
            };
            // Per-tile state with induction offsets.
            tile_states = (0..tiles)
                .map(|t| {
                    let mut regs: Vec<u64> = (0..Reg::COUNT)
                        .map(|i| entry.read(Reg::from_flat_index(i)))
                        .collect();
                    if t > 0 {
                        for node in &prog.nodes {
                            if node.scale_imm_by_tiles {
                                if let Some(rd) = node.instr.dest() {
                                    let v = regs[rd.flat_index()];
                                    // i128 keeps tile-count × immediate exact
                                    // before the architectural wrap to u64.
                                    regs[rd.flat_index()] = v.wrapping_add(
                                        (t as i128 * i128::from(node.instr.imm)) as u64,
                                    );
                                }
                            }
                        }
                    }
                    TileState {
                        entry_regs: regs,
                        prev_value: vec![0; n],
                        prev_complete: vec![0; n],
                        iters: 0,
                        last_complete: 0,
                        running: true,
                        last_store_start: 0,
                    }
                })
                .collect();
            total_iters = 0u64;
            last_iter_tile = 0usize; // tile that ran the globally-last iteration
            xlen = entry.xlen;
            start_cycles = 0;
        }
        let unlimited_ports = self.cfg.mem_ports >= usize::MAX / 2;
        let mut scratch = IterScratch::new(n, xlen);

        // Static per-tile node plans (coords, routes, tile-scaled
        // instructions): resolved once here, reused every iteration. The
        // region offset shifts every placement into the owned row band.
        let plans: Vec<Vec<NodePlan>> = (0..tiles)
            .map(|t| {
                let row_offset = region.first_row + t * rows_per_tile;
                prog.nodes
                    .iter()
                    .map(|node| self.plan_node(prog, node, row_offset, tiles))
                    .collect()
            })
            .collect();

        let mut paused = false;
        loop {
            // The iteration budget is checked at *round* boundaries only:
            // within one round every running tile executes exactly one
            // iteration, so the set of executed global iterations stays
            // contiguous (0..N) and the controller can resume a paused
            // tiled region from architectural state alone.
            if total_iters >= req.max_iterations {
                break;
            }
            // The pause request shares the boundary: "freeze at cycle c"
            // means the first round boundary whose session clock reached c.
            if let Some(p) = req.pause_at_cycle {
                let clock = tile_states.iter().map(|t| t.last_complete).max().unwrap_or(0);
                if clock >= p && tile_states.iter().any(|t| t.running) {
                    paused = true;
                    break;
                }
            }
            let mut any = false;
            for (t, tile_state) in tile_states.iter_mut().enumerate().take(tiles) {
                if !tile_state.running {
                    continue;
                }
                any = true;
                self.run_iteration(
                    prog,
                    tile_state,
                    &plans[t],
                    &mut fabric,
                    mem,
                    req.requester,
                    unlimited_ports,
                    &mut counters,
                    &mut activity,
                    &mut scratch,
                );
                total_iters += 1;
                last_iter_tile = t;
            }
            if !any {
                break;
            }
        }

        let cycles = tile_states.iter().map(|t| t.last_complete).max().unwrap_or(0);
        if tracer.enabled() {
            // `cycles` is the session clock (cumulative across resumes);
            // the episode timeline advances only by this call's share.
            let end = cycle_base + (cycles - start_cycles);
            tracer.counter(Subsystem::Accelerator, "accel.iterations", total_iters, end);
            tracer.counter(
                Subsystem::Accelerator,
                "accel.pe_busy_cycles",
                activity.pe_busy_cycles,
                end,
            );
            tracer.span_end(Subsystem::Accelerator, "accel.execute", end);
        }

        if paused {
            let snap = PlacementSnapshot {
                fingerprint: prog.fingerprint(),
                xlen,
                nodes: n,
                tiles,
                region_rows: region.rows,
                bus_drop_period: req.faults.bus_drop_period,
                total_iters,
                last_iter_tile,
                port_requests: fabric.port_requests,
                bus_requests: fabric.bus_requests,
                bus_drops: fabric.bus_drops,
                lane_requests: fabric
                    .lane_requests
                    .get(region.first_row..region.end_row())
                    .map(<[u64]>::to_vec)
                    .unwrap_or_default(),
                tile_states: tile_states
                    .into_iter()
                    .map(|t| TileSnap {
                        entry_regs: t.entry_regs,
                        prev_value: t.prev_value,
                        prev_complete: t.prev_complete,
                        iters: t.iters,
                        last_complete: t.last_complete,
                        running: t.running,
                        last_store_start: t.last_store_start,
                    })
                    .collect(),
                counters,
                activity,
            };
            return Ok(SessionStatus::Paused(Box::new(snap)));
        }

        let completed = tile_states.iter().all(|t| !t.running);
        let last = &tile_states[last_iter_tile];
        let final_regs = prog
            .live_out
            .iter()
            .map(|&(reg, node)| (reg, last.prev_value[node as usize]))
            .collect();
        Ok(SessionStatus::Completed(AccelRunResult {
            iterations: total_iters,
            cycles,
            counters,
            activity,
            final_regs,
            completed,
            faults: FaultLog { bus_tokens_dropped: fabric.bus_drops, ..FaultLog::default() },
        }))
    }

    /// Builds one operand's static plan for a tile (flat register indices
    /// and the route the transfer will take).
    fn plan_operand(
        &self,
        prog: &AccelProgram,
        op: &Operand,
        consumer: Option<Coord>,
        row_offset: usize,
    ) -> OpPlan {
        match *op {
            Operand::None => OpPlan::None,
            Operand::InitReg(r) => OpPlan::InitReg(r.flat_index()),
            Operand::Node { idx, carried, via } => {
                let producer = prog.nodes[idx as usize]
                    .coord
                    .map(|c| Coord::new(c.row + row_offset, c.col));
                let route = match (producer, consumer) {
                    (Some(a), Some(b)) => {
                        if a == b {
                            Route::Same
                        } else if self.model.is_local(a, b) {
                            Route::Local(self.model.transfer_latency(a, b))
                        } else {
                            Route::Noc { row: a.row, lat: self.model.transfer_latency(a, b) }
                        }
                    }
                    _ => Route::Bus(self.cfg.fallback_bus_latency),
                };
                OpPlan::Node { idx: idx as usize, carried, via: via.flat_index(), route }
            }
        }
    }

    /// Builds one node's static plan for a tile.
    fn plan_node(
        &self,
        prog: &AccelProgram,
        node: &NodeConfig,
        row_offset: usize,
        tiles: usize,
    ) -> NodePlan {
        let consumer = node.coord.map(|c| Coord::new(c.row + row_offset, c.col));
        let mut effective = node.instr;
        if node.scale_imm_by_tiles && tiles > 1 {
            effective.imm = node.instr.imm.wrapping_mul(tiles as i64);
        }
        NodePlan {
            effective,
            class: node.instr.class(),
            inputs: [
                self.plan_operand(prog, &node.inputs[0], consumer, row_offset),
                self.plan_operand(prog, &node.inputs[1], consumer, row_offset),
            ],
            hidden: self.plan_operand(prog, &node.hidden, consumer, row_offset),
            mem_width: effective.op.mem_width().unwrap_or(0),
            sign_extend: effective.op.load_sign_extends(),
            base_latency: effective.op.base_latency(),
        }
    }

    /// Runs one iteration of one tile. See the module docs for the timing
    /// rules.
    #[allow(clippy::too_many_arguments)]
    fn run_iteration(
        &self,
        prog: &AccelProgram,
        tile: &mut TileState,
        plans: &[NodePlan],
        fabric: &mut Fabric,
        mem: &mut MemorySystem,
        requester: usize,
        unlimited_ports: bool,
        counters: &mut PerfCounters,
        activity: &mut ActivityStats,
        scratch: &mut IterScratch,
    ) {
        let first_iter = tile.iters == 0;
        // Barrier semantics: without pipelining, iteration k+1 begins after
        // iteration k fully completes.
        let base = if prog.pipelined { 0 } else { tile.last_complete };

        scratch.reset();
        let IterScratch { cur_value, cur_complete, branch_taken, stores_seen, eval_state } =
            scratch;
        let mut iteration_complete = 0u64;

        for (i, node) in prog.nodes.iter().enumerate() {
            let plan = &plans[i];

            // ---- predication ----
            let disabled = node.guards.iter().any(|&g| branch_taken[g as usize]);
            if disabled {
                let (hv, hready, _) = resolve_operand(
                    &plan.hidden, tile, cur_value, cur_complete, base, first_iter, fabric,
                    activity,
                );
                cur_value[i] = hv;
                cur_complete[i] = hready + 1; // mux pass-through
                activity.disabled_fires += 1;
                iteration_complete = iteration_complete.max(cur_complete[i]);
                continue;
            }

            // ---- operands ----
            let (v1, r1) = match plan.inputs[0] {
                OpPlan::None => (0, base),
                ref op => {
                    let (v, r, transfer) = resolve_operand(
                        op, tile, cur_value, cur_complete, base, first_iter, fabric, activity,
                    );
                    counters.nodes[i].total_in_cycles[0] += transfer;
                    counters.nodes[i].in_samples[0] += 1;
                    (v, r)
                }
            };
            let (v2, r2) = match plan.inputs[1] {
                OpPlan::None => (0, base),
                ref op => {
                    let (v, r, transfer) = resolve_operand(
                        op, tile, cur_value, cur_complete, base, first_iter, fabric, activity,
                    );
                    counters.nodes[i].total_in_cycles[1] += transfer;
                    counters.nodes[i].in_samples[1] += 1;
                    (v, r)
                }
            };
            let ready = r1.max(r2).max(base);

            // ---- execute ----
            let complete = match plan.class {
                OpClass::Load => self.do_load(
                    i, node, plan, v1, ready, tile, fabric, mem, requester, unlimited_ports,
                    first_iter, stores_seen, cur_complete, activity, cur_value,
                ),
                OpClass::Store => {
                    let addr = v1.wrapping_add(plan.effective.imm as u64);
                    let width = plan.mem_width;
                    // Program-order store commit (the LDFG keeps ordering).
                    let mut start = ready.max(tile.last_store_start + 1);
                    if !unlimited_ports {
                        start = fabric.book_port(start);
                    }
                    tile.last_store_start = start;
                    mem.data_mut().store(addr, width, v2);
                    mem.access(requester, addr, true, start);
                    activity.stores += 1;
                    stores_seen.push((i, addr, width, start + 1));
                    start + 1
                }
                OpClass::Branch => {
                    let taken = eval_branch(eval_state, &plan.effective, v1, v2);
                    branch_taken[i] = taken;
                    activity.int_ops += 1;
                    activity.pe_busy_cycles += 1;
                    ready + 1
                }
                _ => {
                    let value = eval_compute(eval_state, &plan.effective, v1, v2);
                    cur_value[i] = value;
                    let lat = plan.base_latency;
                    if plan.class.needs_fp() {
                        activity.fp_ops += 1;
                    } else {
                        activity.int_ops += 1;
                    }
                    activity.pe_busy_cycles += lat;
                    ready + lat
                }
            };

            cur_complete[i] = complete;
            counters.nodes[i].fires += 1;
            counters.nodes[i].total_op_cycles += complete - ready;
            iteration_complete = iteration_complete.max(complete);
        }

        // ---- loop decision ----
        let taken = branch_taken[prog.loop_branch as usize];
        tile.iters += 1;
        tile.last_complete = iteration_complete;
        // Hand the freshly computed buffers to the tile and take its old
        // ones as next iteration's scratch (reset before reuse).
        std::mem::swap(&mut tile.prev_value, cur_value);
        std::mem::swap(&mut tile.prev_complete, cur_complete);
        if !taken {
            tile.running = false;
        }
    }

    /// Executes a load node: forwarding, vector piggyback, prefetch, port
    /// arbitration, and conflict invalidation.
    #[allow(clippy::too_many_arguments)]
    fn do_load(
        &self,
        i: usize,
        node: &NodeConfig,
        plan: &NodePlan,
        base_value: u64,
        ready: u64,
        _tile: &mut TileState,
        fabric: &mut Fabric,
        mem: &mut MemorySystem,
        requester: usize,
        unlimited_ports: bool,
        first_iter: bool,
        stores_seen: &[(usize, u64, u8, u64)],
        cur_complete: &[u64],
        activity: &mut ActivityStats,
        cur_value: &mut [u64],
    ) -> u64 {
        let addr = base_value.wrapping_add(plan.effective.imm as u64);
        let width = plan.mem_width;

        // Functional value (stores earlier in program order already applied).
        let raw = mem.data_mut().load(addr, width);
        let value = if plan.sign_extend {
            let bits = u32::from(width) * 8;
            ((raw << (64 - bits)) as i64 >> (64 - bits)) as u64
        } else {
            raw
        };
        cur_value[i] = value;
        activity.loads += 1;

        // Static store→load forwarding edge (§4.2).
        if let Some(s) = node.forwarded_from {
            if let Some(&(_, saddr, _, scomplete)) =
                stores_seen.iter().find(|&&(si, ..)| si == s as usize)
            {
                if saddr == addr {
                    activity.forwards += 1;
                    return ready.max(scomplete) + 1;
                }
            }
        }

        // Vector piggyback: the head's wide access already brought the line.
        if let Some(h) = node.vector_head {
            if (h as usize) < i {
                activity.vector_piggybacks += 1;
                return ready.max(cur_complete[h as usize]) + 1;
            }
        }

        // Normal port access.
        let (start, latency) = if unlimited_ports {
            let acc = mem.access(requester, addr, false, ready);
            (ready, acc.total)
        } else {
            let start = fabric.book_port(ready);
            let acc = mem.access(requester, addr, false, start);
            (start, acc.total)
        };
        let latency = if node.prefetched && !first_iter {
            // The line was prefetched an iteration ahead: steady state is a
            // hit.
            activity.prefetch_hits += 1;
            latency.min(mem.config().l1.hit_latency)
        } else {
            latency
        };
        let mut complete = start + latency;

        // Dynamic conflict: an earlier (program-order) store to an
        // overlapping address whose data resolved after our start
        // invalidates this load (§4.2); redo after the store.
        for &(si, saddr, swidth, scomplete) in stores_seen {
            if node.forwarded_from == Some(si as u32) {
                continue; // already handled as a forward
            }
            // u128 range ends: an access near u64::MAX must not wrap (a
            // wild pointer is reachable from any malformed DFG).
            let overlap = u128::from(saddr) < u128::from(addr) + u128::from(width)
                && u128::from(addr) < u128::from(saddr) + u128::from(swidth);
            if overlap && scomplete > start {
                activity.violations += 1;
                complete = complete.max(scomplete + VIOLATION_REDO);
            }
        }
        complete
    }

}

/// Prepares the shared scratch [`ArchState`] so an evaluation on it is
/// indistinguishable from one on a fresh zeroed state: the PC is reset
/// (AUIPC/JAL read it, `step` advances it) and every register the
/// instruction can read is written. Compute nodes read only their encoded
/// sources (`rs1`/`rs2`/`rs3`), so stale values elsewhere are unobservable.
#[inline]
fn stage_eval_state(st: &mut ArchState, instr: &Instruction, v1: u64, v2: u64) {
    st.pc = 0;
    if let Some(r) = instr.rs3 {
        st.write(r, 0);
    }
    if let Some(r) = instr.rs1 {
        st.write(r, v1);
    }
    if let Some(r) = instr.rs2 {
        st.write(r, v2);
    }
}

/// Evaluates a conditional branch's direction with exact ISA semantics.
/// A non-branch outcome can only come from a malformed configuration; it
/// is treated as not-taken (fall through) rather than panicking mid-run.
fn eval_branch(st: &mut ArchState, instr: &Instruction, v1: u64, v2: u64) -> bool {
    stage_eval_state(st, instr, v1, v2);
    let mut nomem = NoMemory;
    match step(st, instr, &mut nomem).outcome {
        Outcome::Branch { taken, .. } => taken,
        _ => false,
    }
}

/// Evaluates a non-memory, non-branch node with exact ISA semantics.
fn eval_compute(st: &mut ArchState, instr: &Instruction, v1: u64, v2: u64) -> u64 {
    stage_eval_state(st, instr, v1, v2);
    let mut nomem = NoMemory;
    step(st, instr, &mut nomem);
    instr.rd.map_or(0, |rd| st.read(rd))
}

/// Memory stub for pure compute evaluation; PEs never touch memory. A
/// misclassified node (only reachable through a malformed configuration)
/// reads zeros and discards stores instead of panicking mid-run.
struct NoMemory;

impl MemoryIo for NoMemory {
    fn load(&mut self, _addr: u64, _width: u8) -> u64 {
        0
    }
    fn store(&mut self, _addr: u64, _width: u8, _value: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesa_isa::{Opcode};
    use mesa_isa::reg::abi::*;
    use mesa_mem::MemConfig;

    /// Fresh-state branch evaluation — the pre-optimization implementation,
    /// kept as the oracle for the scratch-reuse equivalence property.
    fn eval_branch_fresh(instr: &Instruction, v1: u64, v2: u64, xlen: Xlen) -> bool {
        let mut st = ArchState::new(0, xlen);
        let mut nomem = NoMemory;
        if let Some(r) = instr.rs1 {
            st.write(r, v1);
        }
        if let Some(r) = instr.rs2 {
            st.write(r, v2);
        }
        match step(&mut st, instr, &mut nomem).outcome {
            Outcome::Branch { taken, .. } => taken,
            other => unreachable!("branch evaluated to {other:?}"),
        }
    }

    /// Fresh-state compute evaluation — the pre-optimization implementation,
    /// kept as the oracle for the scratch-reuse equivalence property.
    fn eval_compute_fresh(instr: &Instruction, v1: u64, v2: u64, xlen: Xlen) -> u64 {
        let mut st = ArchState::new(0, xlen);
        let mut nomem = NoMemory;
        if let Some(r) = instr.rs1 {
            st.write(r, v1);
        }
        if let Some(r) = instr.rs2 {
            st.write(r, v2);
        }
        step(&mut st, instr, &mut nomem);
        instr.rd.map_or(0, |rd| st.read(rd))
    }

    fn node(pc: u64, instr: Instruction, coord: (usize, usize), inputs: [Operand; 2]) -> NodeConfig {
        NodeConfig::new(pc, instr, Some(Coord::new(coord.0, coord.1)), inputs)
    }

    /// t0 += 1; bne t0, a1, loop — counts from 0 to a1.
    fn counter_loop(bound: u64) -> (AccelProgram, ArchState) {
        let add = node(
            0x1000,
            Instruction::reg_imm(Opcode::Addi, T0, T0, 1),
            (0, 0),
            [Operand::Node { idx: 0, carried: true, via: T0 }, Operand::None],
        );
        let bne = node(
            0x1004,
            Instruction::branch(Opcode::Bne, T0, A1, -4),
            (0, 1),
            [
                Operand::Node { idx: 0, carried: false, via: T0 },
                Operand::InitReg(A1),
            ],
        );
        let prog = AccelProgram {
            start_pc: 0x1000,
            end_pc: 0x1008,
            nodes: vec![add, bne],
            loop_branch: 1,
            live_out: vec![(T0, 0)],
            tiles: 1,
            pipelined: false,
        };
        let mut st = ArchState::new(0x1000, Xlen::Rv32);
        st.write(A1, bound);
        (prog, st)
    }

    #[test]
    fn counter_loop_runs_exact_iterations() {
        let (prog, entry) = counter_loop(10);
        let accel = SpatialAccelerator::new(AccelConfig::m128());
        let mut mem = MemorySystem::new(MemConfig::default(), 1);
        let r = accel.execute(&prog, &entry, &mut mem, 0, 1_000).unwrap();
        assert!(r.completed);
        assert_eq!(r.iterations, 10);
        assert_eq!(r.final_regs, vec![(T0, 10)]);
        assert!(r.cycles > 0);
    }

    #[test]
    fn iteration_cap_stops_runaway() {
        let (prog, entry) = counter_loop(1_000_000);
        let accel = SpatialAccelerator::new(AccelConfig::m128());
        let mut mem = MemorySystem::new(MemConfig::default(), 1);
        let r = accel.execute(&prog, &entry, &mut mem, 0, 50).unwrap();
        assert!(!r.completed);
        assert_eq!(r.iterations, 50);
    }

    /// sum loop with memory: t1 += mem[a0]; a0 += 4; bne a0, a1.
    fn sum_loop() -> (AccelProgram, ArchState) {
        let lw = node(
            0x1000,
            Instruction::load(Opcode::Lw, T0, A0, 0),
            (0, 0),
            [Operand::Node { idx: 2, carried: true, via: A0 }, Operand::None],
        );
        let add = node(
            0x1004,
            Instruction::reg3(Opcode::Add, T1, T1, T0),
            (0, 1),
            [
                Operand::Node { idx: 1, carried: true, via: T1 },
                Operand::Node { idx: 0, carried: false, via: T0 },
            ],
        );
        let addi = node(
            0x1008,
            Instruction::reg_imm(Opcode::Addi, A0, A0, 4),
            (1, 0),
            [Operand::Node { idx: 2, carried: true, via: A0 }, Operand::None],
        );
        let bne = node(
            0x100C,
            Instruction::branch(Opcode::Bne, A0, A1, -12),
            (1, 1),
            [
                Operand::Node { idx: 2, carried: false, via: A0 },
                Operand::InitReg(A1),
            ],
        );
        let prog = AccelProgram {
            start_pc: 0x1000,
            end_pc: 0x1010,
            nodes: vec![lw, add, addi, bne],
            loop_branch: 3,
            live_out: vec![(T1, 1), (A0, 2)],
            tiles: 1,
            pipelined: false,
        };
        let mut st = ArchState::new(0x1000, Xlen::Rv32);
        st.write(A0, 0x10000);
        st.write(A1, 0x10000 + 4 * 16);
        (prog, st)
    }

    #[test]
    fn sum_loop_computes_correct_value() {
        let (prog, entry) = sum_loop();
        let accel = SpatialAccelerator::new(AccelConfig::m128());
        let mut mem = MemorySystem::new(MemConfig::default(), 1);
        for i in 0..16u64 {
            mem.data_mut().store_u32(0x10000 + 4 * i, (i + 1) as u32);
        }
        let r = accel.execute(&prog, &entry, &mut mem, 0, 1_000).unwrap();
        assert!(r.completed);
        assert_eq!(r.iterations, 16);
        let sum = r.final_regs.iter().find(|(r, _)| *r == T1).unwrap().1;
        assert_eq!(sum, 136); // 1+2+…+16
        let a0 = r.final_regs.iter().find(|(r, _)| *r == A0).unwrap().1;
        assert_eq!(a0, 0x10000 + 64);
        assert_eq!(r.activity.loads, 16);
    }

    #[test]
    fn pipelining_reduces_cycles() {
        let (mut prog, entry) = sum_loop();
        let accel = SpatialAccelerator::new(AccelConfig::m128());

        let mut mem = MemorySystem::new(MemConfig::default(), 1);
        let plain = accel.execute(&prog, &entry, &mut mem, 0, 10_000).unwrap();

        prog.pipelined = true;
        let mut mem = MemorySystem::new(MemConfig::default(), 1);
        let piped = accel.execute(&prog, &entry, &mut mem, 0, 10_000).unwrap();

        assert_eq!(plain.iterations, piped.iterations);
        assert!(
            piped.cycles < plain.cycles,
            "pipelined {} should beat barrier {}",
            piped.cycles,
            plain.cycles
        );
    }

    #[test]
    fn tiling_splits_iterations_and_speeds_up() {
        // Independent-iteration loop: mem[a0] = t0 (store-only), induction a0.
        let store = node(
            0x1000,
            Instruction::store(Opcode::Sw, T2, A0, 0),
            (0, 0),
            [
                Operand::Node { idx: 1, carried: true, via: A0 },
                Operand::InitReg(T2),
            ],
        );
        let mut addi = node(
            0x1004,
            Instruction::reg_imm(Opcode::Addi, A0, A0, 4),
            (0, 1),
            [Operand::Node { idx: 1, carried: true, via: A0 }, Operand::None],
        );
        addi.scale_imm_by_tiles = true;
        let bne = node(
            0x1008,
            Instruction::branch(Opcode::Bltu, A0, A1, -8),
            (1, 0),
            [
                Operand::Node { idx: 1, carried: false, via: A0 },
                Operand::InitReg(A1),
            ],
        );
        let mut prog = AccelProgram {
            start_pc: 0x1000,
            end_pc: 0x100C,
            nodes: vec![store, addi, bne],
            loop_branch: 2,
            live_out: vec![],
            tiles: 1,
            pipelined: false,
        };
        let mut entry = ArchState::new(0x1000, Xlen::Rv32);
        entry.write(A0, 0x20000);
        entry.write(A1, 0x20000 + 4 * 64);
        entry.write(T2, 7);

        let accel = SpatialAccelerator::new(AccelConfig::m128());
        let mut mem = MemorySystem::new(MemConfig::default(), 1);
        let serial = accel.execute(&prog, &entry, &mut mem, 0, 10_000).unwrap();
        assert_eq!(serial.iterations, 64);

        prog.tiles = 4;
        let mut mem = MemorySystem::new(MemConfig::default(), 1);
        let tiled = accel.execute(&prog, &entry, &mut mem, 0, 10_000).unwrap();
        assert_eq!(tiled.iterations, 64, "all iterations covered across tiles");
        assert!(
            tiled.cycles < serial.cycles,
            "tiled {} should beat serial {}",
            tiled.cycles,
            serial.cycles
        );
        // Every address was written.
        for i in 0..64u64 {
            assert_eq!(mem.data_mut().load_u32(0x20000 + 4 * i), 7, "slot {i}");
        }
    }

    #[test]
    fn forward_branch_predication_passes_old_value() {
        // if (t0 < t1) t2 = t2 + 5; t0 += 1; loop  — with t0 starting past
        // t1 the add is always skipped, so t2 keeps its initial value.
        let cmp = node(
            0x1000,
            Instruction::branch(Opcode::Bge, T0, T1, 8), // skip next when t0>=t1
            (0, 0),
            [
                Operand::Node { idx: 2, carried: true, via: T0 },
                Operand::InitReg(T1),
            ],
        );
        let mut add = node(
            0x1004,
            Instruction::reg_imm(Opcode::Addi, T2, T2, 5),
            (0, 1),
            [Operand::Node { idx: 1, carried: true, via: T2 }, Operand::None],
        );
        add.guards = vec![0];
        add.hidden = Operand::Node { idx: 1, carried: true, via: T2 };
        let addi = node(
            0x1008,
            Instruction::reg_imm(Opcode::Addi, T0, T0, 1),
            (1, 0),
            [Operand::Node { idx: 2, carried: true, via: T0 }, Operand::None],
        );
        let bne = node(
            0x100C,
            Instruction::branch(Opcode::Bne, T0, A1, -12),
            (1, 1),
            [
                Operand::Node { idx: 2, carried: false, via: T0 },
                Operand::InitReg(A1),
            ],
        );
        let prog = AccelProgram {
            start_pc: 0x1000,
            end_pc: 0x1010,
            nodes: vec![cmp, add, addi, bne],
            loop_branch: 3,
            live_out: vec![(T2, 1)],
            tiles: 1,
            pipelined: false,
        };
        let mut entry = ArchState::new(0x1000, Xlen::Rv32);
        entry.write(T0, 10);
        entry.write(T1, 10); // t0 >= t1 from the start: always skip
        entry.write(T2, 99);
        entry.write(A1, 14); // 4 iterations

        let accel = SpatialAccelerator::new(AccelConfig::m128());
        let mut mem = MemorySystem::new(MemConfig::default(), 1);
        let r = accel.execute(&prog, &entry, &mut mem, 0, 100).unwrap();
        assert_eq!(r.iterations, 4);
        assert_eq!(r.activity.disabled_fires, 4);
        let t2 = r.final_regs.iter().find(|(r, _)| *r == T2).unwrap().1;
        assert_eq!(t2, 99, "skipped add must forward the old value");
    }

    #[test]
    fn predication_enabled_path_computes() {
        // Same region but with t0 < t1 for the first 3 iterations.
        let cmp = node(
            0x1000,
            Instruction::branch(Opcode::Bge, T0, T1, 8),
            (0, 0),
            [
                Operand::Node { idx: 2, carried: true, via: T0 },
                Operand::InitReg(T1),
            ],
        );
        let mut add = node(
            0x1004,
            Instruction::reg_imm(Opcode::Addi, T2, T2, 5),
            (0, 1),
            [Operand::Node { idx: 1, carried: true, via: T2 }, Operand::None],
        );
        add.guards = vec![0];
        add.hidden = Operand::Node { idx: 1, carried: true, via: T2 };
        let addi = node(
            0x1008,
            Instruction::reg_imm(Opcode::Addi, T0, T0, 1),
            (1, 0),
            [Operand::Node { idx: 2, carried: true, via: T0 }, Operand::None],
        );
        let bne = node(
            0x100C,
            Instruction::branch(Opcode::Bne, T0, A1, -12),
            (1, 1),
            [
                Operand::Node { idx: 2, carried: false, via: T0 },
                Operand::InitReg(A1),
            ],
        );
        let prog = AccelProgram {
            start_pc: 0x1000,
            end_pc: 0x1010,
            nodes: vec![cmp, add, addi, bne],
            loop_branch: 3,
            live_out: vec![(T2, 1)],
            tiles: 1,
            pipelined: false,
        };
        let mut entry = ArchState::new(0x1000, Xlen::Rv32);
        entry.write(T0, 0);
        entry.write(T1, 3); // enabled for t0 = 0,1,2
        entry.write(T2, 0);
        entry.write(A1, 5); // 5 iterations

        let accel = SpatialAccelerator::new(AccelConfig::m128());
        let mut mem = MemorySystem::new(MemConfig::default(), 1);
        let r = accel.execute(&prog, &entry, &mut mem, 0, 100).unwrap();
        assert_eq!(r.iterations, 5);
        let t2 = r.final_regs.iter().find(|(r, _)| *r == T2).unwrap().1;
        assert_eq!(t2, 15, "three enabled adds of 5");
        assert_eq!(r.activity.disabled_fires, 2);
    }

    #[test]
    fn store_load_forwarding_skips_cache() {
        // store t2 -> [a0]; load t0 <- [a0] (forwarded); t0 into sum.
        let store = node(
            0x1000,
            Instruction::store(Opcode::Sw, T2, A0, 0),
            (0, 0),
            [Operand::InitReg(A0), Operand::InitReg(T2)],
        );
        let mut load = node(
            0x1004,
            Instruction::load(Opcode::Lw, T0, A0, 0),
            (0, 1),
            [Operand::InitReg(A0), Operand::None],
        );
        load.forwarded_from = Some(0);
        let addi = node(
            0x1008,
            Instruction::reg_imm(Opcode::Addi, T1, T1, 1),
            (1, 0),
            [Operand::Node { idx: 2, carried: true, via: T1 }, Operand::None],
        );
        let bne = node(
            0x100C,
            Instruction::branch(Opcode::Bne, T1, A1, -12),
            (1, 1),
            [
                Operand::Node { idx: 2, carried: false, via: T1 },
                Operand::InitReg(A1),
            ],
        );
        let prog = AccelProgram {
            start_pc: 0x1000,
            end_pc: 0x1010,
            nodes: vec![store, load, addi, bne],
            loop_branch: 3,
            live_out: vec![],
            tiles: 1,
            pipelined: false,
        };
        let mut entry = ArchState::new(0x1000, Xlen::Rv32);
        entry.write(A0, 0x30000);
        entry.write(T2, 42);
        entry.write(A1, 8);

        let accel = SpatialAccelerator::new(AccelConfig::m128());
        let mut mem = MemorySystem::new(MemConfig::default(), 1);
        let r = accel.execute(&prog, &entry, &mut mem, 0, 100).unwrap();
        assert_eq!(r.activity.forwards, 8, "every iteration forwards");
        assert_eq!(mem.data_mut().load_u32(0x30000), 42);
    }

    #[test]
    fn unplaced_node_uses_fallback_bus() {
        let (mut prog, entry) = counter_loop(4);
        prog.nodes[0].coord = None; // force the fallback path
        let accel = SpatialAccelerator::new(AccelConfig::m128());
        let mut mem = MemorySystem::new(MemConfig::default(), 1);
        let r = accel.execute(&prog, &entry, &mut mem, 0, 100).unwrap();
        assert!(r.activity.fallback_transfers > 0);
        assert_eq!(r.final_regs, vec![(T0, 4)]);

        // And it is slower than the fully-placed version.
        let (placed, entry2) = counter_loop(4);
        let mut mem2 = MemorySystem::new(MemConfig::default(), 1);
        let r2 = accel.execute(&placed, &entry2, &mut mem2, 0, 100).unwrap();
        assert!(r.cycles > r2.cycles);
    }

    #[test]
    fn prefetch_hides_latency_after_first_iteration() {
        let (mut prog, entry) = sum_loop();
        let accel = SpatialAccelerator::new(AccelConfig::m128());
        let mut mem = MemorySystem::new(MemConfig::default(), 1);
        let plain = accel.execute(&prog, &entry, &mut mem, 0, 10_000).unwrap();

        prog.nodes[0].prefetched = true;
        let mut mem = MemorySystem::new(MemConfig::default(), 1);
        let pf = accel.execute(&prog, &entry, &mut mem, 0, 10_000).unwrap();
        assert!(pf.activity.prefetch_hits > 0);
        assert!(pf.cycles <= plain.cycles);
    }

    /// The scratch-reuse evaluators must be indistinguishable from the
    /// fresh-state originals for any instruction, *including* after the
    /// scratch state has been polluted by a long random sequence of prior
    /// evaluations (stale registers, advanced PC).
    #[test]
    fn scratch_eval_matches_fresh_oracle_on_random_programs() {
        use mesa_test::{forall, prop_assert_eq, Checker};

        // Compute ops across every class the PE path can see: integer ALU,
        // mul/div, upper-immediate (reads PC via AUIPC), FP including the
        // three-source FMA family (exercises the rs3 staging).
        const COMPUTE: &[Opcode] = &[
            Opcode::Add, Opcode::Sub, Opcode::Sll, Opcode::Slt, Opcode::Sltu,
            Opcode::Xor, Opcode::Srl, Opcode::Sra, Opcode::Or, Opcode::And,
            Opcode::Addi, Opcode::Xori, Opcode::Andi, Opcode::Slli, Opcode::Srli,
            Opcode::Mul, Opcode::Mulh, Opcode::Div, Opcode::Rem,
            Opcode::Lui, Opcode::Auipc,
            Opcode::FaddS, Opcode::FsubS, Opcode::FmulS, Opcode::FdivS,
            Opcode::FminS, Opcode::FsgnjS, Opcode::FeqS, Opcode::FltS,
        ];
        const BRANCHES: &[Opcode] =
            &[Opcode::Beq, Opcode::Bne, Opcode::Blt, Opcode::Bge, Opcode::Bltu, Opcode::Bgeu];
        const FMA: &[Opcode] =
            &[Opcode::FmaddS, Opcode::FmsubS, Opcode::FnmaddS, Opcode::FnmsubS];

        fn instr_for(sel: u64, imm: i64) -> Instruction {
            let fp_reg = |n: u64| Reg::f((n % 8) as u8);
            let int_reg = |n: u64| Reg::x((1 + n % 7) as u8);
            let pick = (sel >> 8) as usize;
            match sel % 3 {
                0 => {
                    let op = COMPUTE[pick % COMPUTE.len()];
                    let reg = |n: u64| if op.class().needs_fp() { fp_reg(n) } else { int_reg(n) };
                    match op {
                        Opcode::Lui | Opcode::Auipc => {
                            Instruction::upper(op, int_reg(sel >> 20), imm << 12)
                        }
                        Opcode::Addi | Opcode::Xori | Opcode::Andi | Opcode::Slli
                        | Opcode::Srli => Instruction::reg_imm(
                            op,
                            int_reg(sel >> 20),
                            int_reg(sel >> 26),
                            if matches!(op, Opcode::Slli | Opcode::Srli) { imm & 31 } else { imm },
                        ),
                        Opcode::FeqS | Opcode::FltS => Instruction::reg3(
                            op,
                            int_reg(sel >> 20),
                            fp_reg(sel >> 26),
                            fp_reg(sel >> 32),
                        ),
                        _ => Instruction::reg3(op, reg(sel >> 20), reg(sel >> 26), reg(sel >> 32)),
                    }
                }
                1 => {
                    let op = FMA[pick % FMA.len()];
                    Instruction::reg4(
                        op,
                        fp_reg(sel >> 20),
                        fp_reg(sel >> 26),
                        fp_reg(sel >> 32),
                        fp_reg(sel >> 38),
                    )
                }
                _ => {
                    let op = BRANCHES[pick % BRANCHES.len()];
                    Instruction::branch(op, int_reg(sel >> 20), int_reg(sel >> 26), 8)
                }
            }
        }

        forall!(
            Checker::new("engine::scratch_eval_matches_fresh").cases(64),
            |(seed in 0u64..u64::MAX, len in 4usize..40)| {
                let mut shared = ArchState::new(0, Xlen::Rv32);
                let mut sel = seed;
                for k in 0..len {
                    // Cheap xorshift so each step sees a different instruction.
                    sel ^= sel << 13;
                    sel ^= sel >> 7;
                    sel ^= sel << 17;
                    let imm = ((sel >> 40) as i64 & 0x7FF) - 1024;
                    let instr = instr_for(sel, imm);
                    let v1 = sel.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    let v2 = sel.rotate_left(17) ^ 0xABCD_EF01;
                    if instr.op.is_branch() {
                        let got = eval_branch(&mut shared, &instr, v1, v2);
                        let want = eval_branch_fresh(&instr, v1, v2, Xlen::Rv32);
                        prop_assert_eq!(got, want, "step {} instr {}", k, instr);
                    } else {
                        let got = eval_compute(&mut shared, &instr, v1, v2);
                        let want = eval_compute_fresh(&instr, v1, v2, Xlen::Rv32);
                        prop_assert_eq!(got, want, "step {} instr {}", k, instr);
                    }
                }
            }
        );
    }

    #[test]
    fn perf_counters_report_latencies() {
        let (prog, entry) = sum_loop();
        let accel = SpatialAccelerator::new(AccelConfig::m128());
        let mut mem = MemorySystem::new(MemConfig::default(), 1);
        let r = accel.execute(&prog, &entry, &mut mem, 0, 10_000).unwrap();
        // Node 0 is the load: it fired 16 times and its op latency reflects
        // memory time (≥ L1 hit latency).
        let load_ctr = &r.counters.nodes[0];
        assert_eq!(load_ctr.fires, 16);
        assert!(load_ctr.avg_op().unwrap() >= 3);
        // The add saw a transfer on its second input.
        assert!(r.counters.nodes[1].in_samples[1] > 0);
    }

    /// Fills the sum-loop input array.
    fn sum_loop_mem() -> MemorySystem {
        let mut mem = MemorySystem::new(MemConfig::default(), 1);
        for i in 0..16u64 {
            mem.data_mut().store_u32(0x10000 + 4 * i, (7 * i + 3) as u32);
        }
        mem
    }

    fn session_req<'a>(faults: &'a FaultPlan, region: Region, pause: Option<u64>) -> SessionRequest<'a> {
        SessionRequest { requester: 0, max_iterations: 10_000, faults, region, pause_at_cycle: pause }
    }

    fn expect_full_equality(a: &AccelRunResult, b: &AccelRunResult) {
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.final_regs, b.final_regs);
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.activity, b.activity);
        assert_eq!(a.faults, b.faults);
    }

    #[test]
    fn pause_resume_in_place_is_bit_identical_to_uninterrupted() {
        let (prog, entry) = sum_loop();
        let accel = SpatialAccelerator::new(AccelConfig::m128());
        let none = FaultPlan::none();
        let mut mem = sum_loop_mem();
        let solo = accel.execute(&prog, &entry, &mut mem, 0, 10_000).unwrap();

        let region = Region::new(0, 4, 8);
        // A pause point the final round leaps over (the loop exits in the
        // same round) legitimately completes instead of pausing; early
        // points must genuinely freeze.
        for pause_at in [0, 1, solo.cycles / 2, solo.cycles - 1, solo.cycles + 10] {
            let mut mem = sum_loop_mem();
            let req = session_req(&none, region, Some(pause_at));
            let status = accel
                .run_session(&prog, &entry, &mut mem, &req, None, &mut NullTracer, 0)
                .unwrap();
            let resumed = match status {
                SessionStatus::Paused(snap) => {
                    let req = session_req(&none, region, None);
                    let status = accel
                        .run_session(&prog, &entry, &mut mem, &req, Some(&snap), &mut NullTracer, 0)
                        .unwrap();
                    let SessionStatus::Completed(r) = status else {
                        panic!("resume did not complete");
                    };
                    r
                }
                SessionStatus::Completed(r) => {
                    assert!(pause_at + 1 >= solo.cycles, "pause at {pause_at} did not pause");
                    r
                }
            };
            expect_full_equality(&solo, &resumed);
        }
    }

    #[test]
    fn migration_to_another_aligned_region_is_cycle_identical() {
        let (prog, entry) = sum_loop();
        let accel = SpatialAccelerator::new(AccelConfig::m128());
        let none = FaultPlan::none();
        let mut mem = sum_loop_mem();
        let solo = accel.execute(&prog, &entry, &mut mem, 0, 10_000).unwrap();

        // Freeze in the bottom band, thaw in every other aligned band: the
        // half-ring only sees relative coordinates, so even the cycle
        // totals and booking-counter-driven stats must match.
        for first_row in [4, 8, 12] {
            let mut mem = sum_loop_mem();
            let req = session_req(&none, Region::new(0, 4, 8), Some(solo.cycles / 2));
            let SessionStatus::Paused(snap) = accel
                .run_session(&prog, &entry, &mut mem, &req, None, &mut NullTracer, 0)
                .unwrap()
            else {
                panic!("did not pause");
            };
            let words = snap.to_words();
            let thawed = PlacementSnapshot::from_words(&words).unwrap();
            let req = session_req(&none, Region::new(first_row, 4, 8), None);
            let SessionStatus::Completed(migrated) = accel
                .run_session(&prog, &entry, &mut mem, &req, Some(&thawed), &mut NullTracer, 0)
                .unwrap()
            else {
                panic!("resume did not complete");
            };
            expect_full_equality(&solo, &migrated);
        }
    }

    #[test]
    fn session_rejects_region_outside_grid_and_foreign_snapshots() {
        let (prog, entry) = sum_loop();
        let accel = SpatialAccelerator::new(AccelConfig::m128());
        let none = FaultPlan::none();
        let mut mem = sum_loop_mem();

        // Region hangs off the 16-row grid.
        let req = session_req(&none, Region::new(16, 4, 8), None);
        let err = accel
            .run_session(&prog, &entry, &mut mem, &req, None, &mut NullTracer, 0)
            .unwrap_err();
        assert!(matches!(err, SessionError::Program(ProgramError::OutOfGrid(_))), "{err}");

        // A snapshot from a different program must be rejected up front.
        let req = session_req(&none, Region::new(0, 4, 8), Some(0));
        let SessionStatus::Paused(snap) = accel
            .run_session(&prog, &entry, &mut mem, &req, None, &mut NullTracer, 0)
            .unwrap()
        else {
            panic!("did not pause");
        };
        let (other, other_entry) = counter_loop(10);
        let req = session_req(&none, Region::new(0, 4, 8), None);
        let err = accel
            .run_session(&other, &other_entry, &mut mem, &req, Some(&snap), &mut NullTracer, 0)
            .unwrap_err();
        assert!(matches!(err, SessionError::Snapshot(SnapshotError::Mismatch { .. })), "{err}");
    }
}
