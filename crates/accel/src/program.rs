//! The accelerator-side configuration format — the decoded form of the
//! "configuration bitstream" MESA's config block writes (paper §4.3).
//!
//! A configured region is a list of [`NodeConfig`]s in original program
//! order (the order the LDFG maintains, which the load/store entries use
//! for memory ordering), each carrying its placement, operand routing,
//! predication guards, and the memory-optimization flags set by the
//! controller (store→load forwarding, vectorization, prefetching).

use crate::{Coord, GridDim};
use mesa_isa::{Instruction, Reg};
use std::fmt;

/// Where one operand of a node comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// No operand in this slot (immediate-only or unused).
    None,
    /// Output of another node in the region.
    Node {
        /// Producer node index (program order within the region).
        idx: u32,
        /// `true` when the value crosses iterations (loop-carried): the
        /// consumer reads the producer's *previous* iteration output. On
        /// iteration 0 the value comes from the architectural register
        /// `via` captured at offload.
        carried: bool,
        /// The architectural register this dependency flows through.
        via: Reg,
    },
    /// A loop-invariant architectural register captured at offload time.
    InitReg(Reg),
}

impl Operand {
    /// `true` when this operand names a producing node.
    #[must_use]
    pub fn is_node(&self) -> bool {
        matches!(self, Operand::Node { .. })
    }
}

/// One configured instruction slot.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeConfig {
    /// Original instruction address (matched against the dynamic PC for
    /// predication, §5.2).
    pub pc: u64,
    /// The operation this slot performs.
    pub instr: Instruction,
    /// Grid placement; `None` routes through the fallback bus.
    pub coord: Option<Coord>,
    /// Sources for `s1` and `s2`.
    pub inputs: [Operand; 2],
    /// The previous producer of this node's destination register. A node
    /// disabled by predication forwards this value instead of computing
    /// (the "hidden dependency" of §5.2).
    pub hidden: Operand,
    /// Indices of forward-branch nodes guarding this node; if any of them
    /// is taken this iteration, this node is disabled.
    pub guards: Vec<u32>,
    /// Store→load forwarding: this load's value arrives directly from the
    /// given store node (same base register + offset, §4.2), skipping the
    /// cache.
    pub forwarded_from: Option<u32>,
    /// Vectorization group head: this load piggybacks on the wide access
    /// issued by the given (earlier) load node (§4.2).
    pub vector_head: Option<u32>,
    /// This load's address depends only on induction registers, so it is
    /// prefetched an iteration ahead: steady-state latency is an L1 hit
    /// (§4.2).
    pub prefetched: bool,
    /// Induction update whose immediate is scaled by the tile count when
    /// the region is tiled (each tile strides over iterations).
    pub scale_imm_by_tiles: bool,
}

impl NodeConfig {
    /// A plain node: placed instruction with explicit inputs, no
    /// optimization flags.
    #[must_use]
    pub fn new(pc: u64, instr: Instruction, coord: Option<Coord>, inputs: [Operand; 2]) -> Self {
        NodeConfig {
            pc,
            instr,
            coord,
            inputs,
            hidden: Operand::None,
            guards: Vec::new(),
            forwarded_from: None,
            vector_head: None,
            prefetched: false,
            scale_imm_by_tiles: false,
        }
    }
}

/// A fully configured accelerator region.
#[derive(Debug, Clone, PartialEq)]
pub struct AccelProgram {
    /// First PC of the region.
    pub start_pc: u64,
    /// One past the last PC.
    pub end_pc: u64,
    /// Nodes in original program order.
    pub nodes: Vec<NodeConfig>,
    /// Index of the loop-closing backward branch.
    pub loop_branch: u32,
    /// Live-out registers: `(register, producing node)` — applied to the
    /// CPU's architectural state when control returns (§5.1).
    pub live_out: Vec<(Reg, u32)>,
    /// Number of duplicated SDFG instances (spatial tiling, Fig. 6).
    pub tiles: usize,
    /// `true` when iterations may overlap (loop pipelining).
    pub pipelined: bool,
}

/// Validation failure for an [`AccelProgram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// A node/operand index points past the node list.
    BadIndex(u32),
    /// An operand references a node at or after its consumer (violates
    /// feedforward order for non-carried edges).
    ForwardReference {
        /// The consuming node.
        consumer: u32,
        /// The out-of-order producer it referenced.
        producer: u32,
    },
    /// The loop branch index is not a backward conditional branch.
    BadLoopBranch,
    /// A coordinate lies outside the grid.
    OutOfGrid(Coord),
    /// The tiled region does not fit in the grid.
    TilesDontFit {
        /// Tiles requested.
        tiles: usize,
        /// Rows each tile occupies.
        rows_per_tile: usize,
        /// Rows available.
        rows: usize,
    },
    /// A guard index names a node that is not a forward branch.
    GuardNotBranch(u32),
    /// Region is empty.
    Empty,
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::BadIndex(i) => write!(f, "node index {i} out of range"),
            ProgramError::ForwardReference { consumer, producer } => write!(
                f,
                "node {consumer} consumes node {producer} which does not precede it"
            ),
            ProgramError::BadLoopBranch => write!(f, "loop branch is not a backward branch"),
            ProgramError::OutOfGrid(c) => write!(f, "coordinate {c} outside the grid"),
            ProgramError::TilesDontFit { tiles, rows_per_tile, rows } => write!(
                f,
                "{tiles} tiles x {rows_per_tile} rows do not fit in {rows} grid rows"
            ),
            ProgramError::GuardNotBranch(g) => {
                write!(f, "guard node {g} is not a forward branch")
            }
            ProgramError::Empty => write!(f, "empty region"),
        }
    }
}

impl std::error::Error for ProgramError {}

impl AccelProgram {
    /// Number of configured nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when no nodes are configured.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Rows used by one tile instance (highest placed row + 1), rounded up
    /// to the FP-pattern period so duplicated tiles see identical PE
    /// capabilities.
    #[must_use]
    pub fn rows_per_tile(&self) -> usize {
        let max_row = self
            .nodes
            .iter()
            .filter_map(|n| n.coord)
            .map(|c| c.row)
            .max()
            .unwrap_or(0);
        (max_row + 1).next_multiple_of(4)
    }

    /// A stable 64-bit digest of the whole configuration (FNV-1a over the
    /// `Debug` rendering, which covers every field). A `PlacementSnapshot`
    /// records it so a checkpoint can only be resumed against the exact
    /// program it was taken from.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in format!("{self:?}").bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        hash
    }

    /// Checks structural sanity against a target grid.
    ///
    /// # Errors
    /// Returns the first [`ProgramError`] found.
    pub fn validate(&self, grid: GridDim) -> Result<(), ProgramError> {
        if self.nodes.is_empty() {
            return Err(ProgramError::Empty);
        }
        let n = self.nodes.len() as u32;
        let check_idx = |i: u32| if i < n { Ok(()) } else { Err(ProgramError::BadIndex(i)) };

        for (ci, node) in self.nodes.iter().enumerate() {
            let ci = ci as u32;
            if let Some(c) = node.coord {
                if !grid.contains(c) {
                    return Err(ProgramError::OutOfGrid(c));
                }
            }
            for op in node.inputs.iter().chain(std::iter::once(&node.hidden)) {
                if let Operand::Node { idx, carried, .. } = *op {
                    check_idx(idx)?;
                    if !carried && idx >= ci {
                        return Err(ProgramError::ForwardReference { consumer: ci, producer: idx });
                    }
                }
            }
            for &g in &node.guards {
                check_idx(g)?;
                if g >= ci {
                    return Err(ProgramError::ForwardReference { consumer: ci, producer: g });
                }
                if !self.nodes[g as usize].instr.op.is_branch() {
                    return Err(ProgramError::GuardNotBranch(g));
                }
            }
            if let Some(s) = node.forwarded_from {
                check_idx(s)?;
                if s >= ci {
                    return Err(ProgramError::ForwardReference { consumer: ci, producer: s });
                }
            }
            if let Some(h) = node.vector_head {
                check_idx(h)?;
                if h > ci {
                    return Err(ProgramError::ForwardReference { consumer: ci, producer: h });
                }
            }
        }

        check_idx(self.loop_branch)?;
        let lb = &self.nodes[self.loop_branch as usize];
        if !lb.instr.op.is_branch() || lb.instr.imm >= 0 {
            return Err(ProgramError::BadLoopBranch);
        }
        for &(_, node) in &self.live_out {
            check_idx(node)?;
        }

        if self.tiles > 1 {
            let rpt = self.rows_per_tile();
            if self.tiles * rpt > grid.rows {
                return Err(ProgramError::TilesDontFit {
                    tiles: self.tiles,
                    rows_per_tile: rpt,
                    rows: grid.rows,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesa_isa::{Opcode, Reg};
    use mesa_isa::reg::abi::*;

    fn minimal_loop() -> AccelProgram {
        // addi t0, t0, 1 ; bne t0, a1, loop
        let add = NodeConfig {
            hidden: Operand::None,
            ..NodeConfig::new(
                0x1000,
                Instruction::reg_imm(Opcode::Addi, T0, T0, 1),
                Some(Coord::new(0, 0)),
                [Operand::Node { idx: 0, carried: true, via: T0 }, Operand::None],
            )
        };
        let bne = NodeConfig::new(
            0x1004,
            Instruction::branch(Opcode::Bne, T0, A1, -4),
            Some(Coord::new(0, 1)),
            [
                Operand::Node { idx: 0, carried: false, via: T0 },
                Operand::InitReg(A1),
            ],
        );
        AccelProgram {
            start_pc: 0x1000,
            end_pc: 0x1008,
            nodes: vec![add, bne],
            loop_branch: 1,
            live_out: vec![(T0, 0)],
            tiles: 1,
            pipelined: false,
        }
    }

    #[test]
    fn minimal_loop_validates() {
        let p = minimal_loop();
        assert!(p.validate(GridDim::new(16, 8)).is_ok());
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn forward_reference_rejected() {
        let mut p = minimal_loop();
        p.nodes[0].inputs[0] = Operand::Node { idx: 1, carried: false, via: T0 };
        assert_eq!(
            p.validate(GridDim::new(16, 8)),
            Err(ProgramError::ForwardReference { consumer: 0, producer: 1 })
        );
    }

    #[test]
    fn carried_self_reference_allowed() {
        // The induction `addi t0, t0, 1` consumes its own previous value.
        let p = minimal_loop();
        assert!(matches!(
            p.nodes[0].inputs[0],
            Operand::Node { idx: 0, carried: true, .. }
        ));
        assert!(p.validate(GridDim::new(16, 8)).is_ok());
    }

    #[test]
    fn out_of_grid_rejected() {
        let mut p = minimal_loop();
        p.nodes[1].coord = Some(Coord::new(20, 0));
        assert_eq!(
            p.validate(GridDim::new(16, 8)),
            Err(ProgramError::OutOfGrid(Coord::new(20, 0)))
        );
    }

    #[test]
    fn bad_loop_branch_rejected() {
        let mut p = minimal_loop();
        p.nodes[1].instr = Instruction::branch(Opcode::Bne, T0, A1, 8); // forward
        assert_eq!(p.validate(GridDim::new(16, 8)), Err(ProgramError::BadLoopBranch));
    }

    #[test]
    fn tiles_must_fit() {
        let mut p = minimal_loop();
        p.tiles = 5; // 5 tiles x 4 rows (rounded) = 20 > 16
        assert!(matches!(
            p.validate(GridDim::new(16, 8)),
            Err(ProgramError::TilesDontFit { .. })
        ));
        p.tiles = 4;
        assert!(p.validate(GridDim::new(16, 8)).is_ok());
    }

    #[test]
    fn rows_per_tile_rounds_to_fp_period() {
        let p = minimal_loop(); // max row 0 → 1 → rounds to 4
        assert_eq!(p.rows_per_tile(), 4);
    }

    #[test]
    fn non_branch_guard_rejected() {
        let mut p = minimal_loop();
        // Guard the loop branch with the addi node — not a branch.
        p.nodes[1].guards = vec![0];
        assert_eq!(
            p.validate(GridDim::new(16, 8)),
            Err(ProgramError::GuardNotBranch(0))
        );
    }

    #[test]
    fn bad_index_rejected() {
        let mut p = minimal_loop();
        p.live_out = vec![(Reg::x(5), 9)];
        assert_eq!(p.validate(GridDim::new(16, 8)), Err(ProgramError::BadIndex(9)));
    }
}
