//! Straight-line reference interpreter for mapped DFGs — the differential
//! oracle for the optimized engine in [`crate::engine`].
//!
//! The fast engine pre-resolves static per-tile `NodePlan`s, reuses dense
//! scratch buffers across iterations, and shares one evaluation
//! `ArchState`. Those are exactly the optimizations a silent bug could
//! hide in, so this module re-implements the execution semantics with
//! none of them: every iteration allocates fresh buffers, every operand
//! re-derives its coordinates, route, and latency from the [`NodeConfig`]
//! it came from, and every value evaluation runs on a fresh architectural
//! state. Timing rules (fabric booking order, store commit chain,
//! forwarding, violations, predication) follow the same definitions, so
//! the two implementations must agree bit-for-bit on architectural
//! results, iteration counts, cycle totals, latency counters, and
//! activity statistics. [`run_differential`] executes both over cloned
//! memory systems and reports the first mismatching field.

use crate::engine::VIOLATION_REDO;
use crate::faults::{FaultLog, FaultPlan, BUS_DROP_PENALTY};
use crate::{
    AccelProgram, AccelRunResult, ActivityStats, Coord, LatencyModel, NodeConfig, Operand,
    PerfCounters, ProgramError, SpatialAccelerator,
};
use mesa_isa::{step, ArchState, Instruction, MemoryIo, OpClass, Outcome, Reg, Xlen};
use mesa_mem::MemorySystem;
use std::fmt;

/// Per-tile interpreter state (the reference twin of the engine's
/// `TileState`).
struct RefTile {
    entry_regs: Vec<u64>,
    prev_value: Vec<u64>,
    prev_complete: Vec<u64>,
    iters: u64,
    last_complete: u64,
    running: bool,
    last_store_start: u64,
}

/// Shared-fabric accounting, re-stated from first principles: the n-th
/// request to a resource of capacity c can start no earlier than n / c
/// and no earlier than its data is ready.
struct RefFabric {
    port_requests: u64,
    port_count: u64,
    lane_requests: Vec<u64>,
    bus_requests: u64,
    bus_drop_period: u64,
    bus_drops: u64,
}

impl RefFabric {
    fn book_port(&mut self, ready: u64) -> u64 {
        let floor = self.port_requests / self.port_count;
        self.port_requests += 1;
        ready.max(floor)
    }

    fn book_lane(&mut self, row: usize, produced: u64) -> u64 {
        let floor = self.lane_requests[row];
        self.lane_requests[row] += 1;
        produced.max(floor)
    }

    fn book_bus(&mut self, produced: u64) -> u64 {
        let floor = self.bus_requests;
        self.bus_requests += 1;
        let start = produced.max(floor);
        if self.bus_drop_period > 0 && self.bus_requests.is_multiple_of(self.bus_drop_period) {
            self.bus_drops += 1;
            start + BUS_DROP_PENALTY
        } else {
            start
        }
    }
}

/// Memory stub for pure compute evaluation (reads zero, drops stores).
struct RefNoMemory;

impl MemoryIo for RefNoMemory {
    fn load(&mut self, _addr: u64, _width: u8) -> u64 {
        0
    }
    fn store(&mut self, _addr: u64, _width: u8, _value: u64) {}
}

/// Branch direction with exact ISA semantics on a fresh state; non-branch
/// outcomes (malformed configuration) fall through as not-taken.
fn ref_eval_branch(instr: &Instruction, v1: u64, v2: u64, xlen: Xlen) -> bool {
    let mut st = ArchState::new(0, xlen);
    if let Some(r) = instr.rs1 {
        st.write(r, v1);
    }
    if let Some(r) = instr.rs2 {
        st.write(r, v2);
    }
    match step(&mut st, instr, &mut RefNoMemory).outcome {
        Outcome::Branch { taken, .. } => taken,
        _ => false,
    }
}

/// Compute-node value with exact ISA semantics on a fresh state.
fn ref_eval_compute(instr: &Instruction, v1: u64, v2: u64, xlen: Xlen) -> u64 {
    let mut st = ArchState::new(0, xlen);
    if let Some(r) = instr.rs1 {
        st.write(r, v1);
    }
    if let Some(r) = instr.rs2 {
        st.write(r, v2);
    }
    step(&mut st, instr, &mut RefNoMemory);
    instr.rd.map_or(0, |rd| st.read(rd))
}

/// The tile-scaled instruction a node executes (induction immediates
/// stride by the tile count when the region is tiled).
fn effective_instr(node: &NodeConfig, tiles: usize) -> Instruction {
    let mut effective = node.instr;
    if node.scale_imm_by_tiles && tiles > 1 {
        effective.imm = node.instr.imm.wrapping_mul(tiles as i64);
    }
    effective
}

impl SpatialAccelerator {
    /// Executes a configured region on the reference interpreter (no
    /// NodePlans, no reused scratch, per-operand route re-derivation).
    /// Semantically interchangeable with [`execute`](Self::execute).
    ///
    /// # Errors
    /// Returns [`ProgramError`] if the program fails validation against
    /// this accelerator's grid.
    pub fn execute_reference(
        &self,
        prog: &AccelProgram,
        entry: &ArchState,
        mem: &mut MemorySystem,
        requester: usize,
        max_iterations: u64,
    ) -> Result<AccelRunResult, ProgramError> {
        self.execute_reference_faulted(
            prog,
            entry,
            mem,
            requester,
            max_iterations,
            &FaultPlan::none(),
        )
    }

    /// [`execute_reference`](Self::execute_reference) with the same
    /// engine-level fault injection as
    /// [`execute_faulted`](Self::execute_faulted).
    ///
    /// # Errors
    /// Returns [`ProgramError`] if the program fails validation against
    /// this accelerator's grid.
    pub fn execute_reference_faulted(
        &self,
        prog: &AccelProgram,
        entry: &ArchState,
        mem: &mut MemorySystem,
        requester: usize,
        max_iterations: u64,
        faults: &FaultPlan,
    ) -> Result<AccelRunResult, ProgramError> {
        prog.validate(self.config().grid())?;

        let n = prog.nodes.len();
        let tiles = prog.tiles.max(1);
        let rows_per_tile = prog.rows_per_tile();
        let cfg = self.config();

        let mut counters = PerfCounters::new(n);
        let mut activity = ActivityStats::default();
        let mut fabric = RefFabric {
            port_requests: 0,
            port_count: cfg.mem_ports.clamp(1, 1 << 20) as u64,
            lane_requests: vec![0; cfg.rows],
            bus_requests: 0,
            bus_drop_period: faults.bus_drop_period,
            bus_drops: 0,
        };
        let unlimited_ports = cfg.mem_ports >= usize::MAX / 2;

        let mut tile_states: Vec<RefTile> = (0..tiles)
            .map(|t| {
                let mut regs: Vec<u64> =
                    (0..Reg::COUNT).map(|i| entry.read(Reg::from_flat_index(i))).collect();
                if t > 0 {
                    for node in &prog.nodes {
                        if node.scale_imm_by_tiles {
                            if let Some(rd) = node.instr.dest() {
                                let v = regs[rd.flat_index()];
                                regs[rd.flat_index()] = v
                                    .wrapping_add((t as i128 * i128::from(node.instr.imm)) as u64);
                            }
                        }
                    }
                }
                RefTile {
                    entry_regs: regs,
                    prev_value: vec![0; n],
                    prev_complete: vec![0; n],
                    iters: 0,
                    last_complete: 0,
                    running: true,
                    last_store_start: 0,
                }
            })
            .collect();

        let mut total_iters = 0u64;
        let mut last_iter_tile = 0usize;

        loop {
            // Budget checked at round boundaries only, like the engine.
            if total_iters >= max_iterations {
                break;
            }
            let mut any = false;
            for (t, tile) in tile_states.iter_mut().enumerate() {
                if !tile.running {
                    continue;
                }
                any = true;
                self.reference_iteration(
                    prog,
                    tile,
                    t * rows_per_tile,
                    tiles,
                    &mut fabric,
                    mem,
                    requester,
                    unlimited_ports,
                    &mut counters,
                    &mut activity,
                    entry.xlen,
                );
                total_iters += 1;
                last_iter_tile = t;
            }
            if !any {
                break;
            }
        }

        let completed = tile_states.iter().all(|t| !t.running);
        let last = &tile_states[last_iter_tile];
        let final_regs = prog
            .live_out
            .iter()
            .map(|&(reg, node)| (reg, last.prev_value[node as usize]))
            .collect();
        let cycles = tile_states.iter().map(|t| t.last_complete).max().unwrap_or(0);

        Ok(AccelRunResult {
            iterations: total_iters,
            cycles,
            counters,
            activity,
            final_regs,
            completed,
            faults: FaultLog { bus_tokens_dropped: fabric.bus_drops, ..FaultLog::default() },
        })
    }

    /// Resolves one operand from its configuration: `(value,
    /// ready_at_consumer, transfer_cycles)`, re-deriving the producer's
    /// coordinates and route on every call.
    #[allow(clippy::too_many_arguments)]
    fn reference_operand(
        &self,
        prog: &AccelProgram,
        op: &Operand,
        consumer: Option<Coord>,
        row_offset: usize,
        tile: &RefTile,
        cur_value: &[u64],
        cur_complete: &[u64],
        base: u64,
        first_iter: bool,
        fabric: &mut RefFabric,
        activity: &mut ActivityStats,
    ) -> (u64, u64, u64) {
        match *op {
            Operand::None => (0, base, 0),
            Operand::InitReg(r) => (tile.entry_regs[r.flat_index()], base, 0),
            Operand::Node { idx, carried, via } => {
                if carried && first_iter {
                    return (tile.entry_regs[via.flat_index()], base, 0);
                }
                let i = idx as usize;
                let (value, produced) = if carried {
                    (tile.prev_value[i], tile.prev_complete[i])
                } else {
                    (cur_value[i], cur_complete[i])
                };
                let producer =
                    prog.nodes[i].coord.map(|c| Coord::new(c.row + row_offset, c.col));
                let arrival = match (producer, consumer) {
                    (Some(a), Some(b)) => {
                        if a == b {
                            produced
                        } else if self.latency_model().is_local(a, b) {
                            activity.local_transfers += 1;
                            produced + self.latency_model().transfer_latency(a, b)
                        } else {
                            let lat = self.latency_model().transfer_latency(a, b);
                            let start = fabric.book_lane(a.row, produced);
                            activity.noc_transfers += 1;
                            activity.noc_hop_cycles += lat;
                            start + lat
                        }
                    }
                    _ => {
                        let start = fabric.book_bus(produced);
                        activity.fallback_transfers += 1;
                        start + self.config().fallback_bus_latency
                    }
                };
                (value, arrival.max(base), arrival - produced)
            }
        }
    }

    /// Runs one iteration of one tile, straight from the node
    /// configurations.
    #[allow(clippy::too_many_arguments)]
    fn reference_iteration(
        &self,
        prog: &AccelProgram,
        tile: &mut RefTile,
        row_offset: usize,
        tiles: usize,
        fabric: &mut RefFabric,
        mem: &mut MemorySystem,
        requester: usize,
        unlimited_ports: bool,
        counters: &mut PerfCounters,
        activity: &mut ActivityStats,
        xlen: Xlen,
    ) {
        let n = prog.nodes.len();
        let first_iter = tile.iters == 0;
        let base = if prog.pipelined { 0 } else { tile.last_complete };

        // Straight-line semantics: fresh buffers every iteration.
        let mut cur_value = vec![0u64; n];
        let mut cur_complete = vec![0u64; n];
        let mut branch_taken = vec![false; n];
        let mut stores_seen: Vec<(usize, u64, u8, u64)> = Vec::new();
        let mut iteration_complete = 0u64;

        for (i, node) in prog.nodes.iter().enumerate() {
            let consumer = node.coord.map(|c| Coord::new(c.row + row_offset, c.col));
            let effective = effective_instr(node, tiles);

            // ---- predication ----
            let disabled = node.guards.iter().any(|&g| branch_taken[g as usize]);
            if disabled {
                let (hv, hready, _) = self.reference_operand(
                    prog,
                    &node.hidden,
                    consumer,
                    row_offset,
                    tile,
                    &cur_value,
                    &cur_complete,
                    base,
                    first_iter,
                    fabric,
                    activity,
                );
                cur_value[i] = hv;
                cur_complete[i] = hready + 1; // mux pass-through
                activity.disabled_fires += 1;
                iteration_complete = iteration_complete.max(cur_complete[i]);
                continue;
            }

            // ---- operands ----
            let operand = |slot: usize,
                               cur_value: &[u64],
                               cur_complete: &[u64],
                               fabric: &mut RefFabric,
                               activity: &mut ActivityStats,
                               counters: &mut PerfCounters| {
                match node.inputs[slot] {
                    Operand::None => (0, base),
                    ref op => {
                        let (v, r, transfer) = self.reference_operand(
                            prog,
                            op,
                            consumer,
                            row_offset,
                            tile,
                            cur_value,
                            cur_complete,
                            base,
                            first_iter,
                            fabric,
                            activity,
                        );
                        counters.nodes[i].total_in_cycles[slot] += transfer;
                        counters.nodes[i].in_samples[slot] += 1;
                        (v, r)
                    }
                }
            };
            let (v1, r1) = operand(0, &cur_value, &cur_complete, fabric, activity, counters);
            let (v2, r2) = operand(1, &cur_value, &cur_complete, fabric, activity, counters);
            let ready = r1.max(r2).max(base);

            // ---- execute ----
            let complete = match node.instr.class() {
                OpClass::Load => {
                    let addr = v1.wrapping_add(effective.imm as u64);
                    let width = effective.op.mem_width().unwrap_or(0);
                    let raw = mem.data_mut().load(addr, width);
                    let value = if effective.op.load_sign_extends() {
                        let bits = u32::from(width) * 8;
                        ((raw << (64 - bits)) as i64 >> (64 - bits)) as u64
                    } else {
                        raw
                    };
                    cur_value[i] = value;
                    activity.loads += 1;

                    let mut timed: Option<u64> = None;
                    if let Some(s) = node.forwarded_from {
                        if let Some(&(_, saddr, _, scomplete)) =
                            stores_seen.iter().find(|&&(si, ..)| si == s as usize)
                        {
                            if saddr == addr {
                                activity.forwards += 1;
                                timed = Some(ready.max(scomplete) + 1);
                            }
                        }
                    }
                    if timed.is_none() {
                        if let Some(h) = node.vector_head {
                            if (h as usize) < i {
                                activity.vector_piggybacks += 1;
                                timed = Some(ready.max(cur_complete[h as usize]) + 1);
                            }
                        }
                    }
                    match timed {
                        Some(t) => t,
                        None => {
                            let (start, latency) = if unlimited_ports {
                                let acc = mem.access(requester, addr, false, ready);
                                (ready, acc.total)
                            } else {
                                let start = fabric.book_port(ready);
                                let acc = mem.access(requester, addr, false, start);
                                (start, acc.total)
                            };
                            let latency = if node.prefetched && !first_iter {
                                activity.prefetch_hits += 1;
                                latency.min(mem.config().l1.hit_latency)
                            } else {
                                latency
                            };
                            let mut complete = start + latency;
                            for &(si, saddr, swidth, scomplete) in &stores_seen {
                                if node.forwarded_from == Some(si as u32) {
                                    continue;
                                }
                                let overlap = u128::from(saddr)
                                    < u128::from(addr) + u128::from(width)
                                    && u128::from(addr) < u128::from(saddr) + u128::from(swidth);
                                if overlap && scomplete > start {
                                    activity.violations += 1;
                                    complete = complete.max(scomplete + VIOLATION_REDO);
                                }
                            }
                            complete
                        }
                    }
                }
                OpClass::Store => {
                    let addr = v1.wrapping_add(effective.imm as u64);
                    let width = effective.op.mem_width().unwrap_or(0);
                    let mut start = ready.max(tile.last_store_start + 1);
                    if !unlimited_ports {
                        start = fabric.book_port(start);
                    }
                    tile.last_store_start = start;
                    mem.data_mut().store(addr, width, v2);
                    mem.access(requester, addr, true, start);
                    activity.stores += 1;
                    stores_seen.push((i, addr, width, start + 1));
                    start + 1
                }
                OpClass::Branch => {
                    let taken = ref_eval_branch(&effective, v1, v2, xlen);
                    branch_taken[i] = taken;
                    activity.int_ops += 1;
                    activity.pe_busy_cycles += 1;
                    ready + 1
                }
                _ => {
                    let value = ref_eval_compute(&effective, v1, v2, xlen);
                    cur_value[i] = value;
                    let lat = effective.op.base_latency();
                    if node.instr.class().needs_fp() {
                        activity.fp_ops += 1;
                    } else {
                        activity.int_ops += 1;
                    }
                    activity.pe_busy_cycles += lat;
                    ready + lat
                }
            };

            cur_complete[i] = complete;
            counters.nodes[i].fires += 1;
            counters.nodes[i].total_op_cycles += complete - ready;
            iteration_complete = iteration_complete.max(complete);
        }

        // ---- loop decision ----
        let taken = branch_taken[prog.loop_branch as usize];
        tile.iters += 1;
        tile.last_complete = iteration_complete;
        tile.prev_value = cur_value;
        tile.prev_complete = cur_complete;
        if !taken {
            tile.running = false;
        }
    }
}

/// First field on which a fast run and a reference run disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Name of the mismatching [`AccelRunResult`] field.
    pub field: String,
    /// The fast engine's value, `Debug`-rendered.
    pub fast: String,
    /// The reference interpreter's value, `Debug`-rendered.
    pub reference: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "divergence on {}: fast = {}, reference = {}",
            self.field, self.fast, self.reference
        )
    }
}

fn diff<T: PartialEq + fmt::Debug>(field: &str, fast: &T, reference: &T) -> Option<Divergence> {
    (fast != reference).then(|| Divergence {
        field: field.to_string(),
        fast: format!("{fast:?}"),
        reference: format!("{reference:?}"),
    })
}

/// Compares two run results field by field; `None` means they agree on
/// everything the oracle checks (architectural results, iteration counts,
/// cycles, counters, activity, fault log). Memory equality follows from
/// identical store sequences, which the counters/activity comparison
/// pins down together with the identical functional store values.
#[must_use]
pub fn compare_runs(fast: &AccelRunResult, reference: &AccelRunResult) -> Option<Divergence> {
    diff("iterations", &fast.iterations, &reference.iterations)
        .or_else(|| diff("completed", &fast.completed, &reference.completed))
        .or_else(|| diff("cycles", &fast.cycles, &reference.cycles))
        .or_else(|| diff("final_regs", &fast.final_regs, &reference.final_regs))
        .or_else(|| diff("activity", &fast.activity, &reference.activity))
        .or_else(|| {
            diff(
                "counters.len",
                &fast.counters.nodes.len(),
                &reference.counters.nodes.len(),
            )
        })
        .or_else(|| {
            fast.counters
                .nodes
                .iter()
                .zip(&reference.counters.nodes)
                .enumerate()
                .find_map(|(i, (a, b))| diff(&format!("counters[{i}]"), a, b))
        })
        .or_else(|| diff("faults", &fast.faults, &reference.faults))
}

/// Runs a program through the fast engine and the reference interpreter
/// over independent clones of `mem`, under the same fault plan, and
/// returns the first divergence (or `None` when they agree).
///
/// # Errors
/// Returns [`ProgramError`] if the program fails validation (both engines
/// validate identically, so one check reports for both).
#[allow(clippy::too_many_arguments)]
pub fn run_differential(
    accel: &SpatialAccelerator,
    prog: &AccelProgram,
    entry: &ArchState,
    mem: &MemorySystem,
    requester: usize,
    max_iterations: u64,
    faults: &FaultPlan,
) -> Result<Option<Divergence>, ProgramError> {
    let mut fast_mem = mem.clone();
    let mut ref_mem = mem.clone();
    let fast =
        accel.execute_faulted(prog, entry, &mut fast_mem, requester, max_iterations, faults)?;
    let reference = accel.execute_reference_faulted(
        prog,
        entry,
        &mut ref_mem,
        requester,
        max_iterations,
        faults,
    )?;
    Ok(compare_runs(&fast, &reference))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AccelConfig;
    use mesa_isa::reg::abi::*;
    use mesa_isa::{Instruction, Opcode};
    use mesa_mem::MemConfig;

    fn node(
        pc: u64,
        instr: Instruction,
        coord: (usize, usize),
        inputs: [Operand; 2],
    ) -> NodeConfig {
        NodeConfig::new(pc, instr, Some(Coord::new(coord.0, coord.1)), inputs)
    }

    /// sum loop with memory: t1 += mem[a0]; a0 += 4; bne a0, a1 — the same
    /// fixture the engine tests use, exercising loads, carried deps, and
    /// an InitReg bound.
    fn sum_loop() -> (AccelProgram, ArchState) {
        let lw = node(
            0x1000,
            Instruction::load(Opcode::Lw, T0, A0, 0),
            (0, 0),
            [Operand::Node { idx: 2, carried: true, via: A0 }, Operand::None],
        );
        let add = node(
            0x1004,
            Instruction::reg3(Opcode::Add, T1, T1, T0),
            (0, 1),
            [
                Operand::Node { idx: 1, carried: true, via: T1 },
                Operand::Node { idx: 0, carried: false, via: T0 },
            ],
        );
        let addi = node(
            0x1008,
            Instruction::reg_imm(Opcode::Addi, A0, A0, 4),
            (1, 0),
            [Operand::Node { idx: 2, carried: true, via: A0 }, Operand::None],
        );
        let bne = node(
            0x100C,
            Instruction::branch(Opcode::Bne, A0, A1, -12),
            (1, 1),
            [Operand::Node { idx: 2, carried: false, via: A0 }, Operand::InitReg(A1)],
        );
        let prog = AccelProgram {
            start_pc: 0x1000,
            end_pc: 0x1010,
            nodes: vec![lw, add, addi, bne],
            loop_branch: 3,
            live_out: vec![(T1, 1), (A0, 2)],
            tiles: 1,
            pipelined: false,
        };
        let mut st = ArchState::new(0x1000, Xlen::Rv32);
        st.write(A0, 0x10000);
        st.write(A1, 0x10000 + 4 * 16);
        (prog, st)
    }

    #[test]
    fn reference_computes_the_sum_loop() {
        let (prog, entry) = sum_loop();
        let accel = SpatialAccelerator::new(AccelConfig::m128());
        let mut mem = MemorySystem::new(MemConfig::default(), 1);
        for i in 0..16u64 {
            mem.data_mut().store_u32(0x10000 + 4 * i, (i + 1) as u32);
        }
        let r = accel.execute_reference(&prog, &entry, &mut mem, 0, 1_000).unwrap();
        assert!(r.completed);
        assert_eq!(r.iterations, 16);
        let sum = r.final_regs.iter().find(|(r, _)| *r == T1).unwrap().1;
        assert_eq!(sum, 136);
    }

    #[test]
    fn reference_matches_engine_on_sum_loop() {
        let (prog, entry) = sum_loop();
        let accel = SpatialAccelerator::new(AccelConfig::m128());
        let mut mem = MemorySystem::new(MemConfig::default(), 1);
        for i in 0..16u64 {
            mem.data_mut().store_u32(0x10000 + 4 * i, (i + 1) as u32);
        }
        let d = run_differential(&accel, &prog, &entry, &mem, 0, 1_000, &FaultPlan::none())
            .unwrap();
        assert!(d.is_none(), "{}", d.map(|d| d.to_string()).unwrap_or_default());
    }

    #[test]
    fn reference_matches_engine_under_bus_drops() {
        let (mut prog, entry) = sum_loop();
        prog.nodes[1].coord = None; // force fallback-bus traffic
        let accel = SpatialAccelerator::new(AccelConfig::m128());
        let mut mem = MemorySystem::new(MemConfig::default(), 1);
        for i in 0..16u64 {
            mem.data_mut().store_u32(0x10000 + 4 * i, (i + 1) as u32);
        }
        let faults = FaultPlan { bus_drop_period: 3, ..FaultPlan::default() };
        let mut fault_mem = mem.clone();
        let d = run_differential(&accel, &prog, &entry, &mem, 0, 1_000, &faults).unwrap();
        assert!(d.is_none(), "{}", d.map(|d| d.to_string()).unwrap_or_default());

        // Dropped tokens slow the run down but never change results.
        let clean = accel.execute(&prog, &entry, &mut mem, 0, 1_000).unwrap();
        let faulted = accel
            .execute_faulted(&prog, &entry, &mut fault_mem, 0, 1_000, &faults)
            .unwrap();
        assert!(faulted.faults.bus_tokens_dropped > 0);
        assert!(faulted.cycles >= clean.cycles);
        assert_eq!(faulted.final_regs, clean.final_regs);
        assert_eq!(faulted.iterations, clean.iterations);
    }

    #[test]
    fn divergence_reports_the_first_mismatching_field() {
        let (prog, entry) = sum_loop();
        let accel = SpatialAccelerator::new(AccelConfig::m128());
        let mem = MemorySystem::new(MemConfig::default(), 1);
        let a = accel.execute(&prog, &entry, &mut mem.clone(), 0, 1_000).unwrap();
        let mut b = a.clone();
        assert_eq!(compare_runs(&a, &b), None);
        b.cycles += 1;
        let d = compare_runs(&a, &b).expect("must diverge");
        assert_eq!(d.field, "cycles");
        assert!(d.to_string().contains("divergence on cycles"));
        let mut c = a.clone();
        c.counters.nodes[2].fires += 1;
        assert_eq!(compare_runs(&a, &c).expect("must diverge").field, "counters[2]");
    }
}
