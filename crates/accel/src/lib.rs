//! Cycle-level spatial accelerator simulator for the MESA reproduction.
//!
//! This crate models the paper's custom parameterizable spatial accelerator
//! (§5.2): a 2-D grid of PEs with direct single-cycle neighbor links and a
//! lightweight half-ring NoC (Fig. 9), load/store entries that preserve
//! original program ordering with store→load forwarding (Fig. 5),
//! predicated forward branches, per-PE latency counters, and the spatial
//! tiling / pipelining loop optimizations (Fig. 6).
//!
//! The [`AccelProgram`] type is the decoded configuration bitstream the
//! MESA controller writes; [`SpatialAccelerator::execute`] runs it with
//! exact functional semantics and dataflow timing.
//!
//! Three preset configurations mirror the paper's evaluation backends:
//! [`AccelConfig::m64`], [`AccelConfig::m128`], and [`AccelConfig::m512`].
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod bitstream;
pub mod counters;
pub mod engine;
pub mod faults;
pub mod grid;
pub mod program;
pub mod reference;
pub mod snapshot;

pub use bitstream::{decode as decode_bitstream, encode as encode_bitstream, BitstreamError};
pub use config::{AccelConfig, FpPattern};
pub use counters::{ActivityStats, NodeCounter, PerfCounters, HOT_NODE_EXPORTS};
pub use engine::{
    AccelRunResult, SessionError, SessionRequest, SessionStatus, SpatialAccelerator,
};
pub use faults::{FaultLog, FaultPlan, BUS_DROP_PENALTY};
pub use grid::{
    Coord, GridDim, HalfRingModel, HierarchicalRowModel, LatencyModel, MeshModel, Region,
    REGION_ROW_ALIGN,
};
pub use program::{AccelProgram, NodeConfig, Operand, ProgramError};
pub use reference::{compare_runs, run_differential, Divergence};
pub use snapshot::{PlacementSnapshot, SnapshotError, SNAPSHOT_MAGIC};
