//! Performance counters and activity statistics.
//!
//! The paper places "simple latency counters ... at PEs and load-store
//! entries" whose readings "are reported back to MESA's frontend where
//! latencies are tallied and used to refine MESA's DFG model" (§5.2). The
//! [`PerfCounters`] here are exactly that feedback channel; the
//! [`ActivityStats`] additionally drive the activity-based energy model
//! (§6.1).

/// Per-node latency counters (one bank per configured instruction slot).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeCounter {
    /// Times the node fired (enabled iterations).
    pub fires: u64,
    /// Sum of observed operation latencies (inputs-ready → output).
    pub total_op_cycles: u64,
    /// Sum of observed input transfer latencies, per operand slot.
    pub total_in_cycles: [u64; 2],
    /// Number of transfer samples per operand slot.
    pub in_samples: [u64; 2],
}

impl NodeCounter {
    /// Average operation latency, or `None` before the first firing.
    #[must_use]
    pub fn avg_op(&self) -> Option<u64> {
        (self.fires > 0).then(|| self.total_op_cycles / self.fires)
    }

    /// Average transfer latency into operand `slot`.
    #[must_use]
    pub fn avg_in(&self, slot: usize) -> Option<u64> {
        (self.in_samples[slot] > 0).then(|| self.total_in_cycles[slot] / self.in_samples[slot])
    }

    /// Total cycles this node kept its PE or input links busy: operation
    /// latency plus both operand transfer latencies. This is the ranking
    /// key the profiler uses to name hot nodes.
    #[must_use]
    pub fn stall_cycles(&self) -> u64 {
        self.total_op_cycles + self.total_in_cycles[0] + self.total_in_cycles[1]
    }

    /// Number of words [`NodeCounter::write_words`] emits per counter.
    pub const SNAPSHOT_WORDS: usize = 6;

    /// Appends this counter to a snapshot word stream (fixed field order;
    /// see `PlacementSnapshot`).
    pub fn write_words(&self, out: &mut Vec<u64>) {
        out.push(self.fires);
        out.push(self.total_op_cycles);
        out.push(self.total_in_cycles[0]);
        out.push(self.total_in_cycles[1]);
        out.push(self.in_samples[0]);
        out.push(self.in_samples[1]);
    }

    /// Inverse of [`NodeCounter::write_words`]; `None` when the slice is
    /// short.
    #[must_use]
    pub fn from_words(words: &[u64]) -> Option<Self> {
        let &[fires, op, in0, in1, s0, s1] = words.get(..Self::SNAPSHOT_WORDS)? else {
            return None;
        };
        Some(NodeCounter {
            fires,
            total_op_cycles: op,
            total_in_cycles: [in0, in1],
            in_samples: [s0, s1],
        })
    }
}

/// The full counter bank for one configured region.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PerfCounters {
    /// One counter per node, indexed like `AccelProgram::nodes`.
    pub nodes: Vec<NodeCounter>,
}

impl PerfCounters {
    /// Counter bank sized for `n` nodes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        PerfCounters { nodes: vec![NodeCounter::default(); n] }
    }

    /// Total fires across every node in the bank.
    #[must_use]
    pub fn total_fires(&self) -> u64 {
        self.nodes.iter().map(|n| n.fires).sum()
    }

    /// Total operation cycles across every node in the bank.
    #[must_use]
    pub fn total_op_cycles(&self) -> u64 {
        self.nodes.iter().map(|n| n.total_op_cycles).sum()
    }

    /// The `k` hottest nodes by [`NodeCounter::stall_cycles`], hottest
    /// first; nodes that never accumulated cycles are skipped. Ties break
    /// toward the lower node index so the ranking is deterministic.
    #[must_use]
    pub fn hottest_nodes(&self, k: usize) -> Vec<(usize, &NodeCounter)> {
        let mut ranked: Vec<(usize, &NodeCounter)> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.stall_cycles() > 0)
            .collect();
        ranked.sort_by(|a, b| b.1.stall_cycles().cmp(&a.1.stall_cycles()).then(a.0.cmp(&b.0)));
        ranked.truncate(k);
        ranked
    }

    /// Registers the aggregate feedback-channel totals — fires and summed
    /// op cycles across all nodes — as `<prefix>.fires` /
    /// `<prefix>.op_cycles`, plus the top-`k` nodes by stall cycles as
    /// `<prefix>.hot<rank>.{node,stall_cycles,fires}` so the registry can
    /// rank hot nodes without a full trace.
    pub fn record_metrics(&self, reg: &mut mesa_trace::MetricsRegistry, prefix: &str) {
        reg.add(&format!("{prefix}.fires"), self.total_fires());
        reg.add(&format!("{prefix}.op_cycles"), self.total_op_cycles());
        for (rank, (idx, ctr)) in self.hottest_nodes(HOT_NODE_EXPORTS).into_iter().enumerate() {
            reg.add(&format!("{prefix}.hot{rank}.node"), idx as u64);
            reg.add(&format!("{prefix}.hot{rank}.stall_cycles"), ctr.stall_cycles());
            reg.add(&format!("{prefix}.hot{rank}.fires"), ctr.fires);
        }
    }
}

/// How many hot nodes [`PerfCounters::record_metrics`] exports.
pub const HOT_NODE_EXPORTS: usize = 4;

/// Aggregate activity, consumed by the energy model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ActivityStats {
    /// Integer PE operations executed.
    pub int_ops: u64,
    /// FP PE operations executed.
    pub fp_ops: u64,
    /// Loads issued to the memory system.
    pub loads: u64,
    /// Stores issued to the memory system.
    pub stores: u64,
    /// Cycles PEs spent actively computing (for dynamic power).
    pub pe_busy_cycles: u64,
    /// Values moved over direct neighbor links.
    pub local_transfers: u64,
    /// Values moved over the NoC.
    pub noc_transfers: u64,
    /// Total NoC cycles consumed (distance-weighted).
    pub noc_hop_cycles: u64,
    /// Transfers that used the fallback bus (unplaced nodes).
    pub fallback_transfers: u64,
    /// Store→load pairs served by direct forwarding (no cache access).
    pub forwards: u64,
    /// Loads invalidated by a later-resolving same-address store.
    pub violations: u64,
    /// Node firings suppressed by predication (branch-skipped).
    pub disabled_fires: u64,
    /// Loads served from a vector group head's wide access.
    pub vector_piggybacks: u64,
    /// Loads whose latency was hidden by next-iteration prefetch.
    pub prefetch_hits: u64,
}

impl ActivityStats {
    /// Total memory operations issued.
    #[must_use]
    pub fn mem_ops(&self) -> u64 {
        self.loads + self.stores
    }

    /// Number of words [`ActivityStats::write_words`] emits.
    pub const SNAPSHOT_WORDS: usize = 14;

    /// Appends every field to a snapshot word stream, in declaration
    /// order (the order `record_metrics` uses).
    pub fn write_words(&self, out: &mut Vec<u64>) {
        out.extend_from_slice(&[
            self.int_ops,
            self.fp_ops,
            self.loads,
            self.stores,
            self.pe_busy_cycles,
            self.local_transfers,
            self.noc_transfers,
            self.noc_hop_cycles,
            self.fallback_transfers,
            self.forwards,
            self.violations,
            self.disabled_fires,
            self.vector_piggybacks,
            self.prefetch_hits,
        ]);
    }

    /// Inverse of [`ActivityStats::write_words`]; `None` when the slice is
    /// short.
    #[must_use]
    pub fn from_words(words: &[u64]) -> Option<Self> {
        let &[int_ops, fp_ops, loads, stores, pe_busy_cycles, local_transfers, noc_transfers, noc_hop_cycles, fallback_transfers, forwards, violations, disabled_fires, vector_piggybacks, prefetch_hits] =
            words.get(..Self::SNAPSHOT_WORDS)?
        else {
            return None;
        };
        Some(ActivityStats {
            int_ops,
            fp_ops,
            loads,
            stores,
            pe_busy_cycles,
            local_transfers,
            noc_transfers,
            noc_hop_cycles,
            fallback_transfers,
            forwards,
            violations,
            disabled_fires,
            vector_piggybacks,
            prefetch_hits,
        })
    }

    /// Registers every activity field as a counter named
    /// `<prefix>.<field>`.
    pub fn record_metrics(&self, reg: &mut mesa_trace::MetricsRegistry, prefix: &str) {
        for (name, value) in [
            ("int_ops", self.int_ops),
            ("fp_ops", self.fp_ops),
            ("loads", self.loads),
            ("stores", self.stores),
            ("pe_busy_cycles", self.pe_busy_cycles),
            ("local_transfers", self.local_transfers),
            ("noc_transfers", self.noc_transfers),
            ("noc_hop_cycles", self.noc_hop_cycles),
            ("fallback_transfers", self.fallback_transfers),
            ("forwards", self.forwards),
            ("violations", self.violations),
            ("disabled_fires", self.disabled_fires),
            ("vector_piggybacks", self.vector_piggybacks),
            ("prefetch_hits", self.prefetch_hits),
        ] {
            reg.add(&format!("{prefix}.{name}"), value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_counter_averages() {
        let mut c = NodeCounter::default();
        assert_eq!(c.avg_op(), None);
        c.fires = 4;
        c.total_op_cycles = 20;
        c.total_in_cycles = [8, 0];
        c.in_samples = [4, 0];
        assert_eq!(c.avg_op(), Some(5));
        assert_eq!(c.avg_in(0), Some(2));
        assert_eq!(c.avg_in(1), None);
    }

    #[test]
    fn perf_counters_sized() {
        let p = PerfCounters::new(7);
        assert_eq!(p.nodes.len(), 7);
    }

    #[test]
    fn mem_ops_sum() {
        let a = ActivityStats { loads: 3, stores: 2, ..Default::default() };
        assert_eq!(a.mem_ops(), 5);
    }

    #[test]
    fn hot_nodes_rank_by_stall_cycles_with_index_tiebreak() {
        let mut p = PerfCounters::new(4);
        p.nodes[0] = NodeCounter { fires: 2, total_op_cycles: 10, ..Default::default() };
        p.nodes[1] = NodeCounter {
            fires: 2,
            total_op_cycles: 5,
            total_in_cycles: [3, 2],
            in_samples: [2, 2],
        };
        // Node 2 ties node 1 on stall cycles: the lower index wins.
        p.nodes[2] = NodeCounter { fires: 1, total_op_cycles: 10, ..Default::default() };
        let hot = p.hottest_nodes(2);
        assert_eq!(hot.len(), 2);
        assert_eq!(hot[0].0, 0);
        assert_eq!(hot[1].0, 1);
        assert_eq!(hot[1].1.stall_cycles(), 10);

        let mut reg = mesa_trace::MetricsRegistry::new();
        p.record_metrics(&mut reg, "fb");
        assert_eq!(reg.counter("fb.fires"), 5);
        assert_eq!(reg.counter("fb.hot0.node"), 0);
        assert_eq!(reg.counter("fb.hot0.stall_cycles"), 10);
        assert_eq!(reg.counter("fb.hot1.node"), 1);
        // Idle node 3 never appears.
        assert_eq!(reg.counter("fb.hot3.node"), 0);
        assert!(reg.snapshot().counters.keys().all(|k| !k.starts_with("fb.hot3")));
    }
}
