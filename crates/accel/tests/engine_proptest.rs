//! Property tests for the execution engine: functional correctness of
//! arithmetic chains against host math, exact iteration counts, and timing
//! monotonicity across fabric configurations.

use mesa_accel::{
    AccelConfig, AccelProgram, Coord, NodeConfig, Operand, SpatialAccelerator,
};
use mesa_isa::reg::abi::*;
use mesa_isa::{ArchState, Instruction, Opcode, Xlen};
use mesa_mem::{MemConfig, MemorySystem};
use mesa_test::{forall, prop_assert, prop_assert_eq, Checker, Regressions};

/// Persisted counterexample seeds, replayed before novel cases.
const REGRESSIONS: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/engine_proptest.proptest-regressions");

fn checker(name: &str) -> Checker {
    Checker::new(name).cases(48).regressions_file(REGRESSIONS)
}

/// Builds a counter loop with a chain of `n_ops` dependent adds whose
/// final value feeds a store, iterating `bound` times.
fn chain_program(n_ops: usize, pipelined: bool) -> AccelProgram {
    let mut nodes = Vec::new();
    // node 0: t1 = t1 + 3 (carried accumulator seed of the chain)
    nodes.push(NodeConfig::new(
        0x1000,
        Instruction::reg_imm(Opcode::Addi, T1, T1, 3),
        Some(Coord::new(0, 0)),
        [Operand::Node { idx: 0, carried: true, via: T1 }, Operand::None],
    ));
    // chain: t1 = t1 + 1, n_ops deep
    for _ in 0..n_ops {
        let idx = nodes.len();
        nodes.push(NodeConfig::new(
            0x1000 + 4 * idx as u64,
            Instruction::reg_imm(Opcode::Addi, T1, T1, 1),
            Some(Coord::new((idx / 8).min(15), idx % 8)),
            [
                Operand::Node { idx: idx as u32 - 1, carried: false, via: T1 },
                Operand::None,
            ],
        ));
    }
    // store t1 -> [a4]; a4 += 4
    let chain_end = nodes.len() - 1;
    let store_idx = nodes.len();
    nodes.push(NodeConfig::new(
        0x1000 + 4 * store_idx as u64,
        Instruction::store(Opcode::Sw, T1, A4, 0),
        Some(Coord::new(15, 0)),
        [
            Operand::Node { idx: store_idx as u32 + 1, carried: true, via: A4 },
            Operand::Node { idx: chain_end as u32, carried: false, via: T1 },
        ],
    ));
    let a4_idx = nodes.len();
    nodes.push(NodeConfig::new(
        0x1000 + 4 * a4_idx as u64,
        Instruction::reg_imm(Opcode::Addi, A4, A4, 4),
        Some(Coord::new(15, 1)),
        [Operand::Node { idx: a4_idx as u32, carried: true, via: A4 }, Operand::None],
    ));
    // induction + close
    let a0_idx = nodes.len();
    nodes.push(NodeConfig::new(
        0x1000 + 4 * a0_idx as u64,
        Instruction::reg_imm(Opcode::Addi, A0, A0, 1),
        Some(Coord::new(15, 2)),
        [Operand::Node { idx: a0_idx as u32, carried: true, via: A0 }, Operand::None],
    ));
    let br_idx = nodes.len();
    nodes.push(NodeConfig::new(
        0x1000 + 4 * br_idx as u64,
        Instruction::branch(Opcode::Bltu, A0, A1, -(4 * br_idx as i64)),
        Some(Coord::new(15, 3)),
        [
            Operand::Node { idx: a0_idx as u32, carried: false, via: A0 },
            Operand::InitReg(A1),
        ],
    ));
    AccelProgram {
        start_pc: 0x1000,
        end_pc: 0x1000 + 4 * nodes.len() as u64,
        nodes,
        loop_branch: br_idx as u32,
        live_out: vec![(T1, chain_end as u32), (A0, a0_idx as u32)],
        tiles: 1,
        pipelined,
    }
}

fn run(prog: &AccelProgram, bound: u64, cfg: AccelConfig) -> mesa_accel::AccelRunResult {
    let accel = SpatialAccelerator::new(cfg);
    let mut mem = MemorySystem::new(MemConfig::default(), 1);
    let mut entry = ArchState::new(0x1000, Xlen::Rv32);
    entry.write(A1, bound);
    entry.write(A4, 0x40_0000);
    accel.execute(prog, &entry, &mut mem, 0, 1_000_000).expect("runs")
}

#[test]
fn iteration_count_is_exact() {
    forall!(checker("engine::iteration_count_is_exact"), |(bound in 1u64..200, chain in 1usize..12)| {
        let prog = chain_program(chain, false);
        let r = run(&prog, bound, AccelConfig::m128());
        prop_assert!(r.completed);
        prop_assert_eq!(r.iterations, bound);
    });
}

#[test]
fn accumulator_matches_host_math() {
    forall!(checker("engine::accumulator_matches_host_math"), |(bound in 1u64..100, chain in 1usize..10)| {
        let prog = chain_program(chain, false);
        let r = run(&prog, bound, AccelConfig::m128());
        // Node 0 accumulates +3 per iteration on its own carried output;
        // the chain extends the final iteration's value by +1 per link.
        let expect = bound * 3 + chain as u64;
        let (_, t1) = r.final_regs.iter().find(|(reg, _)| *reg == T1).copied().unwrap();
        prop_assert_eq!(t1, expect);
    });
}

#[test]
fn pipelining_never_slows_down() {
    forall!(checker("engine::pipelining_never_slows_down"), |(bound in 2u64..80, chain in 1usize..10)| {
        let plain = run(&chain_program(chain, false), bound, AccelConfig::m128());
        let piped = run(&chain_program(chain, true), bound, AccelConfig::m128());
        prop_assert_eq!(plain.iterations, piped.iterations);
        prop_assert!(
            piped.cycles <= plain.cycles,
            "pipelined {} > barrier {}", piped.cycles, plain.cycles
        );
    });
}

#[test]
fn more_iterations_cost_more_cycles() {
    forall!(checker("engine::more_iterations_cost_more_cycles"), |(bound in 2u64..80, chain in 1usize..8)| {
        let prog = chain_program(chain, false);
        let short = run(&prog, bound, AccelConfig::m128());
        let long = run(&prog, bound * 2, AccelConfig::m128());
        prop_assert!(long.cycles > short.cycles);
    });
}

#[test]
fn longer_chains_cost_more_per_iteration() {
    forall!(checker("engine::longer_chains_cost_more_per_iteration"), |(bound in 4u64..40)| {
        let shallow = run(&chain_program(2, false), bound, AccelConfig::m128());
        let deep = run(&chain_program(10, false), bound, AccelConfig::m128());
        prop_assert!(deep.cycles > shallow.cycles);
    });
}

#[test]
fn counters_fire_once_per_iteration() {
    forall!(checker("engine::counters_fire_once_per_iteration"), |(bound in 1u64..60, chain in 1usize..8)| {
        let prog = chain_program(chain, false);
        let r = run(&prog, bound, AccelConfig::m128());
        for (i, ctr) in r.counters.nodes.iter().enumerate() {
            prop_assert_eq!(ctr.fires, bound, "node {} fired {} times", i, ctr.fires);
        }
    });
}

/// Re-running a random program through the *same* accelerator instance
/// must reproduce the first run exactly: the engine's reused iteration
/// scratch (dense value/complete buffers, shared eval state) may not leak
/// anything between executions or between iterations.
#[test]
fn repeated_execution_is_bit_identical() {
    forall!(checker("engine::repeated_execution_is_bit_identical"), |(bound in 1u64..120, chain in 1usize..12, pipelined in 0u8..2)| {
        let prog = chain_program(chain, pipelined == 1);
        let accel = SpatialAccelerator::new(AccelConfig::m128());
        let run_once = || {
            let mut mem = MemorySystem::new(MemConfig::default(), 1);
            let mut entry = ArchState::new(0x1000, Xlen::Rv32);
            entry.write(A1, bound);
            entry.write(A4, 0x40_0000);
            accel.execute(&prog, &entry, &mut mem, 0, 1_000_000).expect("runs")
        };
        let a = run_once();
        let b = run_once();
        prop_assert_eq!(a.iterations, b.iterations);
        prop_assert_eq!(a.cycles, b.cycles);
        prop_assert_eq!(a.completed, b.completed);
        prop_assert_eq!(&a.final_regs, &b.final_regs);
        prop_assert_eq!(a.activity.pe_busy_cycles, b.activity.pe_busy_cycles);
        for (x, y) in a.counters.nodes.iter().zip(&b.counters.nodes) {
            prop_assert_eq!(x.fires, y.fires);
            prop_assert_eq!(x.total_op_cycles, y.total_op_cycles);
        }
    });
}

/// The persisted regression seeds must parse, load, and actually replay
/// on every run (they execute before any fresh random case).
#[test]
fn regression_seeds_load_and_replay() {
    let regs = Regressions::load(REGRESSIONS);
    assert_eq!(regs.len(), 3, "expected the three persisted seeds, got {regs:?}");

    let mut replayed = Vec::new();
    let report = forall!(
        Checker::new("engine::regression_replay").cases(0).regressions_file(REGRESSIONS),
        |(bound in 1u64..200, chain in 1usize..12)| {
            replayed.push((bound, chain));
            let r = run(&chain_program(chain, false), bound, AccelConfig::m128());
            prop_assert!(r.completed);
            prop_assert_eq!(r.iterations, bound);
        }
    );
    assert_eq!(report.regressions_replayed, 3, "all three seeds must replay");
    assert_eq!(report.cases_run, 0, "cases(0) runs regressions only");
    assert_eq!(replayed.len(), 3);
    // Replay is deterministic: the same seeds decode to the same cases.
    let again = {
        let mut v = Vec::new();
        forall!(
            Checker::new("engine::regression_replay").cases(0).regressions_file(REGRESSIONS),
            |(bound in 1u64..200, chain in 1usize..12)| {
                v.push((bound, chain));
            }
        );
        v
    };
    assert_eq!(replayed, again);
}
