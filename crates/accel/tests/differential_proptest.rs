//! Differential property tests: random hand-built kernels run through the
//! optimized engine and the straight-line reference interpreter must
//! produce identical architectural results, iteration counts, cycle
//! totals, activity statistics, and latency-counter readings — with and
//! without injected timing faults, across every grid preset.

use mesa_accel::{
    run_differential, AccelConfig, AccelProgram, AccelRunResult, Coord, FaultPlan, NodeConfig,
    Operand, PlacementSnapshot, Region, SessionRequest, SessionStatus, SpatialAccelerator,
};
use mesa_isa::reg::abi::*;
use mesa_isa::{ArchState, Instruction, Opcode, Xlen};
use mesa_mem::{MemConfig, MemorySystem};
use mesa_test::{forall, prop_assert, Checker, Rng};
use mesa_trace::NullTracer;

/// Persisted counterexample seeds, replayed before novel cases (the file
/// is created on the first failure).
const REGRESSIONS: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/differential_proptest.proptest-regressions");

fn checker(name: &str, cases: u32) -> Checker {
    Checker::new(name).cases(cases).regressions_file(REGRESSIONS)
}

const ARR_A: u64 = 0x10_0000;
const ARR_OUT: u64 = 0x20_0000;

/// Builds a random but valid kernel: an address induction, an optional
/// (sometimes prefetched) load, a random-depth dependence chain with a
/// carried accumulator, an optional forward-branch-guarded update, an
/// optional store, and the counter induction + closing branch. Placement
/// is randomized over the first four grid rows and nodes are sometimes
/// left unplaced (fallback bus).
fn random_program(seed: u64, grid_cols: usize) -> AccelProgram {
    let mut rng = Rng::seed_from_u64(seed);
    let mut nodes: Vec<NodeConfig> = Vec::new();
    let coord = |rng: &mut Rng| {
        rng.gen_bool(0.85)
            .then(|| Coord::new(rng.gen_range(0..4), rng.gen_range(0..grid_cols)))
    };
    let pc = |idx: usize| 0x1000 + 4 * idx as u64;

    // node 0: address induction a0 += 4 (carried self).
    let a0_idx = nodes.len() as u32;
    let c = coord(&mut rng);
    nodes.push(NodeConfig::new(
        pc(0),
        Instruction::reg_imm(Opcode::Addi, A0, A0, 4),
        c,
        [Operand::Node { idx: a0_idx, carried: true, via: A0 }, Operand::None],
    ));

    // Optional load from the previous iteration's address.
    let load_idx = if rng.gen_bool(0.7) {
        let idx = nodes.len();
        let mut n = NodeConfig::new(
            pc(idx),
            Instruction::load(Opcode::Lw, T3, A0, 0),
            coord(&mut rng),
            [Operand::Node { idx: a0_idx, carried: true, via: A0 }, Operand::None],
        );
        n.prefetched = rng.gen_bool(0.4);
        nodes.push(n);
        Some(idx as u32)
    } else {
        None
    };

    // Carried accumulator seed: t1 += 3.
    let acc_idx = nodes.len() as u32;
    let c = coord(&mut rng);
    nodes.push(NodeConfig::new(
        pc(acc_idx as usize),
        Instruction::reg_imm(Opcode::Addi, T1, T1, 3),
        c,
        [Operand::Node { idx: acc_idx, carried: true, via: T1 }, Operand::None],
    ));

    // Random-depth chain mixing immediates and two-operand ALU ops whose
    // sources are random earlier nodes.
    let mut chain_end = acc_idx;
    let mut producers = vec![acc_idx];
    if let Some(l) = load_idx {
        producers.push(l);
    }
    for _ in 0..rng.gen_range(1usize..=8) {
        let idx = nodes.len() as u32;
        let s1 = producers[rng.gen_range(0..producers.len())];
        let instr = match rng.gen_range(0..5) {
            0 => Instruction::reg_imm(Opcode::Addi, T1, T1, rng.gen_range(-64i64..64)),
            1 => Instruction::reg3(Opcode::Add, T1, T1, T2),
            2 => Instruction::reg3(Opcode::Xor, T1, T1, T2),
            3 => Instruction::reg3(Opcode::Sub, T1, T1, T2),
            _ => Instruction::reg_imm(Opcode::Slli, T1, T1, rng.gen_range(0i64..8)),
        };
        let s2 = if instr.rs2.is_some() {
            Operand::Node {
                idx: producers[rng.gen_range(0..producers.len())],
                carried: false,
                via: T2,
            }
        } else {
            Operand::None
        };
        nodes.push(NodeConfig::new(
            pc(idx as usize),
            instr,
            coord(&mut rng),
            [Operand::Node { idx: s1, carried: false, via: T1 }, s2],
        ));
        producers.push(idx);
        chain_end = idx;
    }

    // Optional predicated update guarded by a forward branch.
    if rng.gen_bool(0.5) {
        let br = nodes.len() as u32;
        nodes.push(NodeConfig::new(
            pc(br as usize),
            Instruction::branch(Opcode::Bge, T1, T2, 8),
            coord(&mut rng),
            [
                Operand::Node { idx: chain_end, carried: false, via: T1 },
                Operand::InitReg(T2),
            ],
        ));
        let g = nodes.len() as u32;
        let mut guarded = NodeConfig::new(
            pc(g as usize),
            Instruction::reg_imm(Opcode::Addi, T5, T5, 3),
            coord(&mut rng),
            [Operand::Node { idx: g, carried: true, via: T5 }, Operand::None],
        );
        guarded.hidden = Operand::Node { idx: g, carried: true, via: T5 };
        guarded.guards = vec![br];
        nodes.push(guarded);
    }

    // Optional store of the chain value.
    if rng.gen_bool(0.7) {
        let s = nodes.len() as u32;
        nodes.push(NodeConfig::new(
            pc(s as usize),
            Instruction::store(Opcode::Sw, T1, A4, 0),
            coord(&mut rng),
            [
                Operand::Node { idx: s + 1, carried: true, via: A4 },
                Operand::Node { idx: chain_end, carried: false, via: T1 },
            ],
        ));
        let a4 = nodes.len() as u32;
        nodes.push(NodeConfig::new(
            pc(a4 as usize),
            Instruction::reg_imm(Opcode::Addi, A4, A4, 4),
            coord(&mut rng),
            [Operand::Node { idx: a4, carried: true, via: A4 }, Operand::None],
        ));
    }

    // Counter induction + closing backward branch.
    let cnt = nodes.len() as u32;
    nodes.push(NodeConfig::new(
        pc(cnt as usize),
        Instruction::reg_imm(Opcode::Addi, A2, A2, 1),
        coord(&mut rng),
        [Operand::Node { idx: cnt, carried: true, via: A2 }, Operand::None],
    ));
    let br = nodes.len() as u32;
    nodes.push(NodeConfig::new(
        pc(br as usize),
        Instruction::branch(Opcode::Bltu, A2, A1, -(4 * i64::from(br))),
        coord(&mut rng),
        [Operand::Node { idx: cnt, carried: false, via: A2 }, Operand::InitReg(A1)],
    ));

    AccelProgram {
        start_pc: 0x1000,
        end_pc: 0x1000 + 4 * nodes.len() as u64,
        nodes,
        loop_branch: br,
        live_out: vec![(T1, chain_end), (A2, cnt)],
        tiles: 1,
        pipelined: rng.gen_bool(0.4),
    }
}

fn entry_and_mem(seed: u64, bound: u64) -> (ArchState, MemorySystem) {
    let mut rng = Rng::seed_from_u64(seed ^ 0xE17);
    let mut entry = ArchState::new(0x1000, Xlen::Rv32);
    for r in [T1, T2, T3, T5] {
        entry.write(r, u64::from(rng.gen::<u32>() % 1000));
    }
    entry.write(A0, ARR_A);
    entry.write(A1, bound);
    entry.write(A4, ARR_OUT);
    let mut mem = MemorySystem::new(MemConfig::default(), 1);
    for i in 0..=bound {
        mem.data_mut().store_u32(ARR_A + 4 * i, rng.gen::<u32>() % 10_000);
    }
    (entry, mem)
}

fn grid_for(pick: u64) -> AccelConfig {
    match pick % 3 {
        0 => AccelConfig::m64(),
        1 => AccelConfig::m128(),
        _ => AccelConfig::m512(),
    }
}

fn assert_agreement(seed: u64, bound: u64, cfg: AccelConfig, faults: &FaultPlan) -> Result<(), String> {
    let prog = random_program(seed, cfg.grid().cols);
    if prog.validate(cfg.grid()).is_err() {
        return Ok(()); // untranslatable draw; skip
    }
    let accel = SpatialAccelerator::new(cfg);
    let (entry, mem) = entry_and_mem(seed, bound);
    match run_differential(&accel, &prog, &entry, &mem, 0, 100_000, faults) {
        Err(e) => Err(format!("seed {seed}: rejected: {e}")),
        Ok(Some(d)) => Err(format!("seed {seed}: {d}")),
        Ok(None) => Ok(()),
    }
}

/// The headline differential property (≥100 random kernel/grid cases).
#[test]
fn engines_agree_on_random_kernels() {
    forall!(checker("differential::engines_agree_on_random_kernels", 120), |(seed in 0u64..1_000_000, bound in 1u64..120, grid in 0u64..3)| {
        let outcome = assert_agreement(seed, bound, grid_for(grid), &FaultPlan::none());
        prop_assert!(outcome.is_ok(), "{}", outcome.unwrap_err());
    });
}

#[test]
fn engines_agree_under_injected_timing_faults() {
    forall!(checker("differential::engines_agree_under_injected_timing_faults", 60), |(seed in 0u64..1_000_000, bound in 1u64..80, grid in 0u64..3, drop in 2u64..10)| {
        let faults = FaultPlan { bus_drop_period: drop, ..FaultPlan::none() };
        let outcome = assert_agreement(seed, bound, grid_for(grid), &faults);
        prop_assert!(outcome.is_ok(), "{}", outcome.unwrap_err());
    });
}

/// Field-by-field equality of two session results — not just the
/// architectural registers, but timing, counters, activity, and the fault
/// log. Migration between aligned bands of the same grid must be
/// *cycle*-invisible, so nothing is allowed to drift.
fn expect_identical(seed: u64, what: &str, a: &AccelRunResult, b: &AccelRunResult) -> Result<(), String> {
    if a.iterations != b.iterations
        || a.cycles != b.cycles
        || a.completed != b.completed
        || a.final_regs != b.final_regs
        || a.counters != b.counters
        || a.activity != b.activity
        || a.faults != b.faults
    {
        return Err(format!("seed {seed}: {what} diverged from the uninterrupted run"));
    }
    Ok(())
}

/// One migration-invisibility case: run a kernel uninterrupted in the top
/// band of the grid; run it again, freezing at a (randomly chosen) cycle,
/// serializing the snapshot to its word stream, decoding it back, and
/// resuming in a randomly chosen aligned band. Everything observable —
/// final registers, memory, iteration count, cycle count, per-node
/// counters — must be identical, with the reference interpreter
/// arbitrating the seed's ground truth first.
fn assert_migration_invisible(
    seed: u64,
    bound: u64,
    cfg: AccelConfig,
    cycle_pick: u64,
    row_pick: u64,
    faults: &FaultPlan,
) -> Result<(), String> {
    let cols = cfg.grid().cols;
    let prog = random_program(seed, cols);
    let band = Region::new(0, 4, cols);
    if prog.validate(band.dims()).is_err() {
        return Ok(()); // untranslatable draw; skip
    }
    let accel = SpatialAccelerator::new(cfg);
    let (entry, mem) = entry_and_mem(seed, bound);

    // The straight-line reference interpreter arbitrates this seed.
    match run_differential(&accel, &prog, &entry, &mem, 0, 100_000, faults) {
        Err(e) => return Err(format!("seed {seed}: rejected: {e}")),
        Ok(Some(d)) => return Err(format!("seed {seed}: reference diverges pre-migration: {d}")),
        Ok(None) => {}
    }

    let session = |pause: Option<u64>,
                   resume: Option<&PlacementSnapshot>,
                   region: Region,
                   mem: &mut MemorySystem| {
        let req = SessionRequest {
            requester: 0,
            max_iterations: 100_000,
            faults,
            region,
            pause_at_cycle: pause,
        };
        accel.run_session(&prog, &entry, mem, &req, resume, &mut NullTracer, 0)
    };

    let mut mem_solo = mem.clone();
    let solo = match session(None, None, band, &mut mem_solo) {
        Ok(SessionStatus::Completed(r)) => r,
        Ok(SessionStatus::Paused(_)) => {
            return Err(format!("seed {seed}: un-paused session froze"));
        }
        Err(e) => return Err(format!("seed {seed}: solo session rejected: {e}")),
    };

    let pause_at = cycle_pick % solo.cycles.max(1);
    let mut mem_mig = mem.clone();
    match session(Some(pause_at), None, band, &mut mem_mig) {
        Ok(SessionStatus::Completed(r)) => {
            // The final round legitimately leapt past the pause point;
            // there is nothing to migrate, but the run must still match.
            expect_identical(seed, "pause-skipping run", &solo, &r)?;
        }
        Ok(SessionStatus::Paused(snap)) => {
            let words = snap.to_words();
            let decoded = PlacementSnapshot::from_words(&words)
                .map_err(|e| format!("seed {seed}: snapshot roundtrip failed: {e}"))?;
            if *snap != decoded {
                return Err(format!("seed {seed}: snapshot words not lossless"));
            }
            let bands = (cfg.grid().rows / 4).max(1) as u64;
            let target = Region::new(4 * (row_pick % bands) as usize, 4, cols);
            let resumed = match session(None, Some(&decoded), target, &mut mem_mig) {
                Ok(SessionStatus::Completed(r)) => r,
                Ok(SessionStatus::Paused(_)) => {
                    return Err(format!("seed {seed}: resume froze again"));
                }
                Err(e) => return Err(format!("seed {seed}: resume rejected: {e}")),
            };
            expect_identical(
                seed,
                &format!("migration to {target} at cycle {pause_at}"),
                &solo,
                &resumed,
            )?;
        }
        Err(e) => return Err(format!("seed {seed}: pausing session rejected: {e}")),
    }

    // The migrated run's memory effects match word for word.
    for i in 0..=bound + 8 {
        let addr = ARR_OUT + 4 * i;
        let (a, b) = (mem_solo.data_mut().load_u32(addr), mem_mig.data_mut().load_u32(addr));
        if a != b {
            return Err(format!("seed {seed}: memory diverges at {addr:#x}: {a} vs {b}"));
        }
    }
    Ok(())
}

/// The tentpole property: checkpoint at a random cycle, serialize,
/// migrate to a random aligned band, resume — byte-identical to the run
/// that never moved (PR 6).
#[test]
fn migration_is_invisible_on_random_kernels() {
    forall!(checker("differential::migration_is_invisible", 110), |(seed in 0u64..1_000_000, bound in 1u64..100, grid in 0u64..3, cycle in 0u64..1_000_000, row in 0u64..8)| {
        let outcome =
            assert_migration_invisible(seed, bound, grid_for(grid), cycle, row, &FaultPlan::none());
        prop_assert!(outcome.is_ok(), "{}", outcome.unwrap_err());
    });
}

/// Migration invisibility must survive injected timing faults: the
/// snapshot carries the bus fault state, so dropped-token penalties land
/// on the same iterations whether or not the placement moved.
#[test]
fn migration_is_invisible_under_injected_timing_faults() {
    forall!(checker("differential::migration_is_invisible_under_faults", 60), |(seed in 0u64..1_000_000, bound in 1u64..80, grid in 0u64..3, cycle in 0u64..1_000_000, row in 0u64..8, drop in 2u64..10)| {
        let faults = FaultPlan { bus_drop_period: drop, ..FaultPlan::none() };
        let outcome = assert_migration_invisible(seed, bound, grid_for(grid), cycle, row, &faults);
        prop_assert!(outcome.is_ok(), "{}", outcome.unwrap_err());
    });
}

/// Same kernel, every grid preset: the reference must track the engine on
/// all of them (routing latencies differ per grid, results must not).
#[test]
fn engines_agree_across_all_grids_for_one_kernel() {
    forall!(checker("differential::engines_agree_across_all_grids", 24), |(seed in 0u64..1_000_000, bound in 1u64..60)| {
        for pick in 0..3u64 {
            let outcome = assert_agreement(seed, bound, grid_for(pick), &FaultPlan::none());
            prop_assert!(outcome.is_ok(), "grid {}: {}", pick, outcome.unwrap_err());
        }
    });
}
