//! Differential property tests: random hand-built kernels run through the
//! optimized engine and the straight-line reference interpreter must
//! produce identical architectural results, iteration counts, cycle
//! totals, activity statistics, and latency-counter readings — with and
//! without injected timing faults, across every grid preset.

use mesa_accel::{
    run_differential, AccelConfig, AccelProgram, Coord, FaultPlan, NodeConfig, Operand,
    SpatialAccelerator,
};
use mesa_isa::reg::abi::*;
use mesa_isa::{ArchState, Instruction, Opcode, Xlen};
use mesa_mem::{MemConfig, MemorySystem};
use mesa_test::{forall, prop_assert, Checker, Rng};

/// Persisted counterexample seeds, replayed before novel cases (the file
/// is created on the first failure).
const REGRESSIONS: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/differential_proptest.proptest-regressions");

fn checker(name: &str, cases: u32) -> Checker {
    Checker::new(name).cases(cases).regressions_file(REGRESSIONS)
}

const ARR_A: u64 = 0x10_0000;
const ARR_OUT: u64 = 0x20_0000;

/// Builds a random but valid kernel: an address induction, an optional
/// (sometimes prefetched) load, a random-depth dependence chain with a
/// carried accumulator, an optional forward-branch-guarded update, an
/// optional store, and the counter induction + closing branch. Placement
/// is randomized over the first four grid rows and nodes are sometimes
/// left unplaced (fallback bus).
fn random_program(seed: u64, grid_cols: usize) -> AccelProgram {
    let mut rng = Rng::seed_from_u64(seed);
    let mut nodes: Vec<NodeConfig> = Vec::new();
    let coord = |rng: &mut Rng| {
        rng.gen_bool(0.85)
            .then(|| Coord::new(rng.gen_range(0..4), rng.gen_range(0..grid_cols)))
    };
    let pc = |idx: usize| 0x1000 + 4 * idx as u64;

    // node 0: address induction a0 += 4 (carried self).
    let a0_idx = nodes.len() as u32;
    let c = coord(&mut rng);
    nodes.push(NodeConfig::new(
        pc(0),
        Instruction::reg_imm(Opcode::Addi, A0, A0, 4),
        c,
        [Operand::Node { idx: a0_idx, carried: true, via: A0 }, Operand::None],
    ));

    // Optional load from the previous iteration's address.
    let load_idx = if rng.gen_bool(0.7) {
        let idx = nodes.len();
        let mut n = NodeConfig::new(
            pc(idx),
            Instruction::load(Opcode::Lw, T3, A0, 0),
            coord(&mut rng),
            [Operand::Node { idx: a0_idx, carried: true, via: A0 }, Operand::None],
        );
        n.prefetched = rng.gen_bool(0.4);
        nodes.push(n);
        Some(idx as u32)
    } else {
        None
    };

    // Carried accumulator seed: t1 += 3.
    let acc_idx = nodes.len() as u32;
    let c = coord(&mut rng);
    nodes.push(NodeConfig::new(
        pc(acc_idx as usize),
        Instruction::reg_imm(Opcode::Addi, T1, T1, 3),
        c,
        [Operand::Node { idx: acc_idx, carried: true, via: T1 }, Operand::None],
    ));

    // Random-depth chain mixing immediates and two-operand ALU ops whose
    // sources are random earlier nodes.
    let mut chain_end = acc_idx;
    let mut producers = vec![acc_idx];
    if let Some(l) = load_idx {
        producers.push(l);
    }
    for _ in 0..rng.gen_range(1usize..=8) {
        let idx = nodes.len() as u32;
        let s1 = producers[rng.gen_range(0..producers.len())];
        let instr = match rng.gen_range(0..5) {
            0 => Instruction::reg_imm(Opcode::Addi, T1, T1, rng.gen_range(-64i64..64)),
            1 => Instruction::reg3(Opcode::Add, T1, T1, T2),
            2 => Instruction::reg3(Opcode::Xor, T1, T1, T2),
            3 => Instruction::reg3(Opcode::Sub, T1, T1, T2),
            _ => Instruction::reg_imm(Opcode::Slli, T1, T1, rng.gen_range(0i64..8)),
        };
        let s2 = if instr.rs2.is_some() {
            Operand::Node {
                idx: producers[rng.gen_range(0..producers.len())],
                carried: false,
                via: T2,
            }
        } else {
            Operand::None
        };
        nodes.push(NodeConfig::new(
            pc(idx as usize),
            instr,
            coord(&mut rng),
            [Operand::Node { idx: s1, carried: false, via: T1 }, s2],
        ));
        producers.push(idx);
        chain_end = idx;
    }

    // Optional predicated update guarded by a forward branch.
    if rng.gen_bool(0.5) {
        let br = nodes.len() as u32;
        nodes.push(NodeConfig::new(
            pc(br as usize),
            Instruction::branch(Opcode::Bge, T1, T2, 8),
            coord(&mut rng),
            [
                Operand::Node { idx: chain_end, carried: false, via: T1 },
                Operand::InitReg(T2),
            ],
        ));
        let g = nodes.len() as u32;
        let mut guarded = NodeConfig::new(
            pc(g as usize),
            Instruction::reg_imm(Opcode::Addi, T5, T5, 3),
            coord(&mut rng),
            [Operand::Node { idx: g, carried: true, via: T5 }, Operand::None],
        );
        guarded.hidden = Operand::Node { idx: g, carried: true, via: T5 };
        guarded.guards = vec![br];
        nodes.push(guarded);
    }

    // Optional store of the chain value.
    if rng.gen_bool(0.7) {
        let s = nodes.len() as u32;
        nodes.push(NodeConfig::new(
            pc(s as usize),
            Instruction::store(Opcode::Sw, T1, A4, 0),
            coord(&mut rng),
            [
                Operand::Node { idx: s + 1, carried: true, via: A4 },
                Operand::Node { idx: chain_end, carried: false, via: T1 },
            ],
        ));
        let a4 = nodes.len() as u32;
        nodes.push(NodeConfig::new(
            pc(a4 as usize),
            Instruction::reg_imm(Opcode::Addi, A4, A4, 4),
            coord(&mut rng),
            [Operand::Node { idx: a4, carried: true, via: A4 }, Operand::None],
        ));
    }

    // Counter induction + closing backward branch.
    let cnt = nodes.len() as u32;
    nodes.push(NodeConfig::new(
        pc(cnt as usize),
        Instruction::reg_imm(Opcode::Addi, A2, A2, 1),
        coord(&mut rng),
        [Operand::Node { idx: cnt, carried: true, via: A2 }, Operand::None],
    ));
    let br = nodes.len() as u32;
    nodes.push(NodeConfig::new(
        pc(br as usize),
        Instruction::branch(Opcode::Bltu, A2, A1, -(4 * i64::from(br))),
        coord(&mut rng),
        [Operand::Node { idx: cnt, carried: false, via: A2 }, Operand::InitReg(A1)],
    ));

    AccelProgram {
        start_pc: 0x1000,
        end_pc: 0x1000 + 4 * nodes.len() as u64,
        nodes,
        loop_branch: br,
        live_out: vec![(T1, chain_end), (A2, cnt)],
        tiles: 1,
        pipelined: rng.gen_bool(0.4),
    }
}

fn entry_and_mem(seed: u64, bound: u64) -> (ArchState, MemorySystem) {
    let mut rng = Rng::seed_from_u64(seed ^ 0xE17);
    let mut entry = ArchState::new(0x1000, Xlen::Rv32);
    for r in [T1, T2, T3, T5] {
        entry.write(r, u64::from(rng.gen::<u32>() % 1000));
    }
    entry.write(A0, ARR_A);
    entry.write(A1, bound);
    entry.write(A4, ARR_OUT);
    let mut mem = MemorySystem::new(MemConfig::default(), 1);
    for i in 0..=bound {
        mem.data_mut().store_u32(ARR_A + 4 * i, rng.gen::<u32>() % 10_000);
    }
    (entry, mem)
}

fn grid_for(pick: u64) -> AccelConfig {
    match pick % 3 {
        0 => AccelConfig::m64(),
        1 => AccelConfig::m128(),
        _ => AccelConfig::m512(),
    }
}

fn assert_agreement(seed: u64, bound: u64, cfg: AccelConfig, faults: &FaultPlan) -> Result<(), String> {
    let prog = random_program(seed, cfg.grid().cols);
    if prog.validate(cfg.grid()).is_err() {
        return Ok(()); // untranslatable draw; skip
    }
    let accel = SpatialAccelerator::new(cfg);
    let (entry, mem) = entry_and_mem(seed, bound);
    match run_differential(&accel, &prog, &entry, &mem, 0, 100_000, faults) {
        Err(e) => Err(format!("seed {seed}: rejected: {e}")),
        Ok(Some(d)) => Err(format!("seed {seed}: {d}")),
        Ok(None) => Ok(()),
    }
}

/// The headline differential property (≥100 random kernel/grid cases).
#[test]
fn engines_agree_on_random_kernels() {
    forall!(checker("differential::engines_agree_on_random_kernels", 120), |(seed in 0u64..1_000_000, bound in 1u64..120, grid in 0u64..3)| {
        let outcome = assert_agreement(seed, bound, grid_for(grid), &FaultPlan::none());
        prop_assert!(outcome.is_ok(), "{}", outcome.unwrap_err());
    });
}

#[test]
fn engines_agree_under_injected_timing_faults() {
    forall!(checker("differential::engines_agree_under_injected_timing_faults", 60), |(seed in 0u64..1_000_000, bound in 1u64..80, grid in 0u64..3, drop in 2u64..10)| {
        let faults = FaultPlan { bus_drop_period: drop, ..FaultPlan::none() };
        let outcome = assert_agreement(seed, bound, grid_for(grid), &faults);
        prop_assert!(outcome.is_ok(), "{}", outcome.unwrap_err());
    });
}

/// Same kernel, every grid preset: the reference must track the engine on
/// all of them (routing latencies differ per grid, results must not).
#[test]
fn engines_agree_across_all_grids_for_one_kernel() {
    forall!(checker("differential::engines_agree_across_all_grids", 24), |(seed in 0u64..1_000_000, bound in 1u64..60)| {
        for pick in 0..3u64 {
            let outcome = assert_agreement(seed, bound, grid_for(pick), &FaultPlan::none());
            prop_assert!(outcome.is_ok(), "grid {}: {}", pick, outcome.unwrap_err());
        }
    });
}
