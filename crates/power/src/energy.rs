//! Activity-based energy model (paper §6.1).
//!
//! The paper "track[s] the activity of PEs in the spatial backend at every
//! cycle", clock-gates disabled units, and accumulates energy "based on
//! the fraction of dynamically active components at every cycle". This
//! module does the same arithmetic from the aggregate activity statistics
//! the simulators collect, using per-event energies calibrated to the
//! published Table 1 power figures at 2 GHz / 15 nm.

use mesa_accel::ActivityStats;

/// Per-event and per-cycle energy constants, in picojoules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// Integer PE operation.
    pub int_op_pj: f64,
    /// FP PE operation.
    pub fp_op_pj: f64,
    /// Direct neighbor-link transfer.
    pub local_transfer_pj: f64,
    /// NoC transfer, per hop-cycle.
    pub noc_hop_pj: f64,
    /// Fallback-bus transfer.
    pub fallback_pj: f64,
    /// Load/store entry bookkeeping per memory op.
    pub lsu_entry_pj: f64,
    /// L1 access.
    pub l1_access_pj: f64,
    /// L2 access (on L1 miss).
    pub l2_access_pj: f64,
    /// DRAM line fill.
    pub dram_access_pj: f64,
    /// MESA controller, per active (configuring/optimizing) cycle — Table
    /// 1's 0.36 W at 2 GHz.
    pub mesa_active_pj_per_cycle: f64,
    /// Accelerator leakage + clock tree per running cycle: fixed floor
    /// (LSU, control, NoC spine) independent of array size.
    pub accel_static_base_pj: f64,
    /// Accelerator leakage + clock per running cycle *per PE* (idle PEs
    /// are clock-gated but still leak; Table 1's 11.65 W is the fully
    /// active 128-PE ceiling).
    pub accel_static_per_pe_pj: f64,
    /// CPU core: dynamic energy per retired instruction (McPAT-class
    /// number for a quad-issue OoO core; dominated by fetch/rename/issue
    /// control — the von Neumann overhead MESA elides).
    pub cpu_instr_pj: f64,
    /// Portion of `cpu_instr_pj` that is frontend/control overhead.
    pub cpu_control_fraction: f64,
    /// CPU core static power per cycle, per core.
    pub cpu_static_pj_per_cycle: f64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        EnergyParams {
            int_op_pj: 6.0,
            fp_op_pj: 26.0,
            local_transfer_pj: 0.8,
            noc_hop_pj: 4.0,
            fallback_pj: 9.0,
            lsu_entry_pj: 3.0,
            l1_access_pj: 22.0,
            l2_access_pj: 130.0,
            dram_access_pj: 2200.0,
            mesa_active_pj_per_cycle: 180.0, // 0.36 W @ 2 GHz
            accel_static_base_pj: 1300.0,    // ~2.6 W floor
            accel_static_per_pe_pj: 30.0,    // +7.7 W at 128 PEs fully active
            cpu_instr_pj: 130.0,
            cpu_control_fraction: 0.6,
            cpu_static_pj_per_cycle: 300.0, // ~0.6 W per active core
        }
    }
}

/// Memory-hierarchy activity deltas for one measured phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemActivity {
    /// Demand accesses reaching the L1.
    pub l1_accesses: u64,
    /// L1 misses (L2 lookups).
    pub l2_accesses: u64,
    /// L2 misses (DRAM line fills).
    pub dram_accesses: u64,
}

/// Energy grouped by the categories of the paper's Fig. 13 breakdown.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// PE / functional-unit computation.
    pub compute_pj: f64,
    /// Cache hierarchy, DRAM, and load/store entries.
    pub memory_pj: f64,
    /// NoC, neighbor links, and fallback bus.
    pub interconnect_pj: f64,
    /// Control: MESA controller activity, configuration, CPU frontend
    /// overheads, statics.
    pub control_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy in pJ.
    #[must_use]
    pub fn total_pj(&self) -> f64 {
        self.compute_pj + self.memory_pj + self.interconnect_pj + self.control_pj
    }

    /// Total energy in nanojoules.
    #[must_use]
    pub fn total_nj(&self) -> f64 {
        self.total_pj() / 1000.0
    }

    /// `(compute, memory, interconnect, control)` fractions of total.
    #[must_use]
    pub fn fractions(&self) -> [f64; 4] {
        let t = self.total_pj().max(f64::MIN_POSITIVE);
        [
            self.compute_pj / t,
            self.memory_pj / t,
            self.interconnect_pj / t,
            self.control_pj / t,
        ]
    }

    /// Component-wise sum.
    #[must_use]
    pub fn add(&self, other: &EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            compute_pj: self.compute_pj + other.compute_pj,
            memory_pj: self.memory_pj + other.memory_pj,
            interconnect_pj: self.interconnect_pj + other.interconnect_pj,
            control_pj: self.control_pj + other.control_pj,
        }
    }
}

/// Energy consumed by the accelerator while executing a region on a
/// fabric of `pes` processing elements.
///
/// Static (leakage + clock) energy is attributed to the components it
/// physically belongs to — mostly the PE array, then the memory entries
/// and NoC — so the Fig. 13 category fractions reflect the hardware
/// breakdown rather than lumping all static draw under "control".
#[must_use]
pub fn accel_energy(
    activity: &ActivityStats,
    mem: &MemActivity,
    accel_cycles: u64,
    pes: usize,
    p: &EnergyParams,
) -> EnergyBreakdown {
    let static_pj =
        accel_cycles as f64 * (p.accel_static_base_pj + p.accel_static_per_pe_pj * pes as f64);
    let compute = activity.int_ops as f64 * p.int_op_pj
        + activity.fp_ops as f64 * p.fp_op_pj
        + static_pj * 0.70;
    let memory = activity.mem_ops() as f64 * p.lsu_entry_pj
        + mem.l1_accesses as f64 * p.l1_access_pj
        + mem.l2_accesses as f64 * p.l2_access_pj
        + mem.dram_accesses as f64 * p.dram_access_pj
        + static_pj * 0.15;
    let interconnect = activity.local_transfers as f64 * p.local_transfer_pj
        + activity.noc_hop_cycles as f64 * p.noc_hop_pj
        + activity.fallback_transfers as f64 * p.fallback_pj
        + static_pj * 0.10;
    let control = static_pj * 0.05;
    EnergyBreakdown {
        compute_pj: compute,
        memory_pj: memory,
        interconnect_pj: interconnect,
        control_pj: control,
    }
}

/// Energy the MESA controller spends configuring (and reconfiguring).
#[must_use]
pub fn config_energy(config_cycles: u64, p: &EnergyParams) -> EnergyBreakdown {
    EnergyBreakdown {
        control_pj: config_cycles as f64 * p.mesa_active_pj_per_cycle,
        ..Default::default()
    }
}

/// Energy consumed by CPU cores executing instructions.
///
/// `core_cycles` is the sum of busy cycles across all active cores.
#[must_use]
pub fn cpu_energy(
    retired: u64,
    core_cycles: u64,
    mem: &MemActivity,
    p: &EnergyParams,
) -> EnergyBreakdown {
    let dynamic = retired as f64 * p.cpu_instr_pj;
    let control = dynamic * p.cpu_control_fraction
        + core_cycles as f64 * p.cpu_static_pj_per_cycle;
    let compute = dynamic * (1.0 - p.cpu_control_fraction);
    let memory = mem.l1_accesses as f64 * p.l1_access_pj
        + mem.l2_accesses as f64 * p.l2_access_pj
        + mem.dram_accesses as f64 * p.dram_access_pj;
    EnergyBreakdown {
        compute_pj: compute,
        memory_pj: memory,
        interconnect_pj: 0.0,
        control_pj: control,
    }
}

/// The Fig. 16 amortization series: average energy per iteration after `k`
/// iterations, for a one-time configuration cost and a steady per-iteration
/// energy.
#[must_use]
pub fn amortization_series(
    config_nj: f64,
    per_iteration_nj: f64,
    points: &[u64],
) -> Vec<(u64, f64)> {
    points
        .iter()
        .map(|&k| {
            let k1 = k.max(1) as f64;
            (k, per_iteration_nj + config_nj / k1)
        })
        .collect()
}

/// Iterations needed before the configuration overhead drops below
/// `threshold` (relative to the steady per-iteration energy) — the
/// break-even analysis behind Fig. 16's "amortizes over time to around 70
/// iterations".
#[must_use]
pub fn break_even_iterations(config_nj: f64, per_iteration_nj: f64, threshold: f64) -> u64 {
    if per_iteration_nj <= 0.0 {
        return u64::MAX;
    }
    (config_nj / (per_iteration_nj * threshold)).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn some_activity() -> ActivityStats {
        ActivityStats {
            int_ops: 1000,
            fp_ops: 500,
            loads: 300,
            stores: 100,
            pe_busy_cycles: 4000,
            local_transfers: 800,
            noc_transfers: 100,
            noc_hop_cycles: 400,
            fallback_transfers: 10,
            ..Default::default()
        }
    }

    #[test]
    fn accel_energy_sums_components() {
        let p = EnergyParams::default();
        let mem = MemActivity { l1_accesses: 400, l2_accesses: 30, dram_accesses: 5 };
        let e = accel_energy(&some_activity(), &mem, 10_000, 128, &p);
        assert!(e.compute_pj > 0.0 && e.memory_pj > 0.0);
        assert!(e.interconnect_pj > 0.0 && e.control_pj > 0.0);
        let static_pj = 10_000.0 * (1300.0 + 30.0 * 128.0);
        let total_by_hand = 1000.0 * 6.0 + 500.0 * 26.0 // compute
            + 400.0 * 3.0 + 400.0 * 22.0 + 30.0 * 130.0 + 5.0 * 2200.0 // memory
            + 800.0 * 0.8 + 400.0 * 4.0 + 10.0 * 9.0 // interconnect
            + static_pj;
        assert!((e.total_pj() - total_by_hand).abs() < 1e-6);
    }

    #[test]
    fn fractions_sum_to_one() {
        let p = EnergyParams::default();
        let mem = MemActivity { l1_accesses: 400, l2_accesses: 30, dram_accesses: 5 };
        let e = accel_energy(&some_activity(), &mem, 10_000, 128, &p);
        let sum: f64 = e.fractions().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cpu_control_dominates_cpu_energy() {
        // The motivation for MESA (§1): CPUs burn most energy on von
        // Neumann control overheads.
        let p = EnergyParams::default();
        let mem = MemActivity::default();
        let e = cpu_energy(100_000, 50_000, &mem, &p);
        assert!(e.control_pj > e.compute_pj);
    }

    #[test]
    fn amortization_decreases_monotonically() {
        let series = amortization_series(1000.0, 10.0, &[1, 2, 5, 10, 50, 100]);
        for w in series.windows(2) {
            assert!(w[1].1 < w[0].1, "{w:?}");
        }
        // At k → ∞, per-iteration energy approaches the steady value.
        let (_, last) = series.last().copied().unwrap();
        assert!(last < 25.0 && last > 10.0);
    }

    #[test]
    fn break_even_matches_closed_form() {
        // config=700nJ, per-iter=10nJ, threshold 100% → 70 iterations
        // (the Fig. 16 ballpark).
        assert_eq!(break_even_iterations(700.0, 10.0, 1.0), 70);
        assert_eq!(break_even_iterations(700.0, 0.0, 1.0), u64::MAX);
    }

    #[test]
    fn breakdown_addition() {
        let a = EnergyBreakdown { compute_pj: 1.0, memory_pj: 2.0, interconnect_pj: 3.0, control_pj: 4.0 };
        let b = a.add(&a);
        assert_eq!(b.total_pj(), 20.0);
    }
}
