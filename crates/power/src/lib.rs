//! Area, power, and energy model for the MESA reproduction.
//!
//! * [`area`] — Table 1 reproduction and area scaling relations, seeded
//!   with the paper's published Synopsys DC / CACTI results at 15 nm.
//! * [`energy`] — activity-based energy accumulation following §6.1's
//!   methodology (clock-gated idle units, per-cycle active fractions),
//!   grouped into the Fig. 13 component categories.
//!
//! Substitution note (see `DESIGN.md`): the paper synthesizes RTL for
//! absolute numbers; here the absolute anchors are the paper's own
//! published values, and the model supplies the activity scaling between
//! them.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod energy;

pub use area::{
    accel_area_mm2, core_additions_mm2, cpu_core_area_mm2, mesa_area_mm2, multicore_area_mm2,
    per_core_overhead_fraction, table1_rows, Table1Row,
};
pub use energy::{
    accel_energy, amortization_series, break_even_iterations, config_energy, cpu_energy,
    EnergyBreakdown, EnergyParams, MemActivity,
};
