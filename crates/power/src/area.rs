//! Area and static power model, seeded with the paper's published
//! synthesis results (Table 1, Synopsys DC + FreePDK 15 nm + CACTI).
//!
//! We have no synthesis toolchain here, so the absolute component values
//! are the paper's own numbers; the scaling relations (area vs. PE count,
//! multicore area) follow the figures quoted in §6 ("M-64 with a
//! synthesized area of 16.4 mm²", "projecting based on 6 mm² per core at
//! 28 nm to 15 nm ... at least >27.5 mm²").

/// One row of the Table 1 reproduction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1Row {
    /// Component name as printed in the paper.
    pub component: &'static str,
    /// Nesting depth for display.
    pub indent: usize,
    /// Area in µm².
    pub area_um2: f64,
    /// Power in mW.
    pub power_mw: f64,
}

const MM2: f64 = 1e6; // µm² per mm²

/// The paper's Table 1 (128-PE configuration), verbatim.
#[must_use]
pub fn table1_rows() -> Vec<Table1Row> {
    vec![
        Table1Row { component: "MESA Top", indent: 0, area_um2: 0.502 * MM2, power_mw: 360.0 },
        Table1Row { component: "MESA ArchModel", indent: 1, area_um2: 0.375 * MM2, power_mw: 270.0 },
        Table1Row { component: "Instr. RenameTable", indent: 2, area_um2: 11417.5, power_mw: 6.161 },
        Table1Row { component: "LDFG", indent: 2, area_um2: 148_483.6, power_mw: 90.0 },
        Table1Row { component: "Instr. Convert", indent: 2, area_um2: 601.4, power_mw: 0.465 },
        Table1Row { component: "Instr. Mapping", indent: 2, area_um2: 208_432.9, power_mw: 130.0 },
        Table1Row { component: "Latency Optimizer", indent: 3, area_um2: 4060.4, power_mw: 3.302 },
        Table1Row { component: "SDFG", indent: 3, area_um2: 201_171.0, power_mw: 120.0 },
        Table1Row { component: "MESA ConfigBlock", indent: 1, area_um2: 101_357.9, power_mw: 70.0 },
        Table1Row { component: "Trace Cache", indent: 0, area_um2: 27_124.5, power_mw: 15.455 },
        Table1Row { component: "Add'l Control / Interface", indent: 0, area_um2: 3590.1, power_mw: 3.219 },
        Table1Row { component: "Accelerator Top", indent: 0, area_um2: 26.56 * MM2, power_mw: 11_650.0 },
        Table1Row { component: "PE Array", indent: 1, area_um2: 14.95 * MM2, power_mw: 4080.0 },
        Table1Row { component: "FP Slice (2x2)", indent: 2, area_um2: 821_889.1, power_mw: 213.107 },
    ]
}

/// MESA controller area in mm² (Table 1: "MESA Top").
#[must_use]
pub fn mesa_area_mm2() -> f64 {
    0.502
}

/// Per-core CPU additions (trace cache + control) in mm².
#[must_use]
pub fn core_additions_mm2() -> f64 {
    (27_124.5 + 3590.1) / MM2
}

/// Spatial accelerator area in mm² as a function of PE count.
///
/// Anchored on the two synthesized points the paper reports: M-128 =
/// 26.56 mm² and M-64 = 16.4 mm², giving `area = 0.15875·PEs + 6.24`
/// (linear PE array + NoC over a fixed cache/control floor).
#[must_use]
pub fn accel_area_mm2(pes: usize) -> f64 {
    0.15875 * pes as f64 + 6.24
}

/// Baseline out-of-order core area at 15 nm, per core, in mm².
///
/// The paper projects "6 mm² per core at 28 nm" (BROOM) to 15 nm and
/// estimates the 16-core baseline at "at least >27.5 mm²" — i.e. ≥1.72
/// mm²/core.
#[must_use]
pub fn cpu_core_area_mm2() -> f64 {
    1.72
}

/// Multicore baseline area in mm².
#[must_use]
pub fn multicore_area_mm2(cores: usize) -> f64 {
    cpu_core_area_mm2() * cores as f64
}

/// Fraction of a single core's area that MESA's extensions add — the
/// "less than 10% of the area of a single core" claim of §1 refers to the
/// per-core additions (trace cache + control).
#[must_use]
pub fn per_core_overhead_fraction() -> f64 {
    core_additions_mm2() / cpu_core_area_mm2()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_totals_are_consistent() {
        let rows = table1_rows();
        let get = |name: &str| rows.iter().find(|r| r.component == name).unwrap();
        // ArchModel + ConfigBlock ≈ MESA Top.
        let top = get("MESA Top");
        let parts = get("MESA ArchModel").area_um2 + get("MESA ConfigBlock").area_um2;
        assert!((parts - top.area_um2).abs() / top.area_um2 < 0.06);
        // SDFG + LatencyOptimizer ≈ Instr. Mapping.
        let mapping = get("Instr. Mapping");
        let sub = get("SDFG").area_um2 + get("Latency Optimizer").area_um2;
        assert!((sub - mapping.area_um2).abs() / mapping.area_um2 < 0.02);
    }

    #[test]
    fn area_model_matches_published_points() {
        assert!((accel_area_mm2(128) - 26.56).abs() < 0.01);
        assert!((accel_area_mm2(64) - 16.4).abs() < 0.01);
    }

    #[test]
    fn multicore_area_exceeds_paper_floor() {
        // "we estimate at least >27.5 mm²" for 16 cores.
        assert!(multicore_area_mm2(16) > 27.5);
    }

    #[test]
    fn mesa_overhead_under_ten_percent_of_a_core() {
        // §1: "the MESA controller itself uses less than 10% of the area of
        // a single core" — per-core additions are far below that, and even
        // the full controller is well under half a core.
        assert!(per_core_overhead_fraction() < 0.10);
        assert!(mesa_area_mm2() / cpu_core_area_mm2() < 0.5);
    }

    #[test]
    fn m128_vs_multicore_area_comparison() {
        // §6: "The multicore CPU's area estimates exceed M-128 (26.5mm²)".
        assert!(multicore_area_mm2(16) > accel_area_mm2(128) * 0.95);
    }
}
