//! Property-style tests of the out-of-order timing model: the structural
//! resources (issue width, ROB, functional units) must bound throughput
//! the way real hardware does.

use mesa_cpu::{CoreConfig, NullMonitor, OoOCore, RunLimits};
use mesa_isa::{ArchState, Asm, Xlen};
use mesa_isa::reg::abi::*;
use mesa_mem::{MemConfig, MemorySystem};

fn run_with(cfg: CoreConfig, build: impl FnOnce(&mut Asm)) -> mesa_cpu::RunResult {
    let mut a = Asm::new(0x1000);
    build(&mut a);
    let p = a.finish().unwrap();
    let mut core = OoOCore::new(cfg);
    let mut st = ArchState::new(0x1000, Xlen::Rv32);
    let mut mem = MemorySystem::new(MemConfig::default(), 1);
    core.run(&p, &mut st, &mut mem, 0, RunLimits::none(), &mut NullMonitor)
}

/// Emits `n` fully independent single-cycle adds.
fn independent_adds(a: &mut Asm, n: usize) {
    let temps = [T0, T1, T2, T3, T4, T5, S2, S3];
    for i in 0..n {
        let t = temps[i % temps.len()];
        a.addi(t, ZERO, i as i64 % 100);
    }
}

#[test]
fn issue_width_bounds_throughput() {
    const N: usize = 4096;
    let narrow = CoreConfig { issue_width: 1, alu_units: 1, ..CoreConfig::default() };
    let wide = CoreConfig { issue_width: 4, alu_units: 4, ..CoreConfig::default() };

    let r1 = run_with(narrow, |a| independent_adds(a, N));
    let r4 = run_with(wide, |a| independent_adds(a, N));

    assert!(r1.ipc() <= 1.05, "1-wide IPC {:.2} cannot exceed 1", r1.ipc());
    assert!(r4.ipc() > 2.5, "4-wide IPC {:.2} should approach 4", r4.ipc());
    assert!(r4.cycles < r1.cycles / 2);
}

#[test]
fn fetch_width_bounds_even_infinite_backend() {
    const N: usize = 4096;
    let cfg = CoreConfig {
        fetch_width: 2,
        issue_width: 8,
        commit_width: 8,
        alu_units: 8,
        ..CoreConfig::default()
    };
    let r = run_with(cfg, |a| independent_adds(a, N));
    assert!(r.ipc() <= 2.05, "fetch=2 caps IPC at 2, got {:.2}", r.ipc());
}

#[test]
fn rob_occupancy_stalls_behind_long_latency_head() {
    // A dependent chain of divides (12 cycles, unpipelined) with a small
    // ROB: independent work behind it cannot proceed past the window.
    let small_rob = CoreConfig { rob_size: 8, ..CoreConfig::default() };
    let big_rob = CoreConfig { rob_size: 256, ..CoreConfig::default() };

    let build = |a: &mut Asm| {
        a.li(S0, 1_000_000);
        a.li(S1, 3);
        for _ in 0..16 {
            a.div(S0, S0, S1); // serial 12-cycle chain
            independent_adds(a, 32); // plenty of independent work
        }
    };
    let small = run_with(small_rob, build);
    let big = run_with(big_rob, build);
    // The serial divide chain floors both runs at ~192 cycles; the big
    // window hides the independent work entirely, the small one cannot.
    assert!(
        big.cycles * 6 < small.cycles * 5,
        "a 256-entry ROB ({}) should clearly beat 8 entries ({})",
        big.cycles,
        small.cycles
    );
}

#[test]
fn unpipelined_divider_serializes() {
    // 64 independent divides through one unpipelined divider: occupancy
    // (12 cycles each) dominates.
    let cfg = CoreConfig { muldiv_units: 1, ..CoreConfig::default() };
    let r = run_with(cfg, |a| {
        a.li(S0, 9999);
        a.li(S1, 7);
        let temps = [T0, T1, T2, T3];
        for i in 0..64 {
            a.div(temps[i % 4], S0, S1);
        }
    });
    assert!(
        r.cycles >= 64 * 12,
        "64 divides x 12-cycle occupancy = 768 minimum, got {}",
        r.cycles
    );

    let two = CoreConfig { muldiv_units: 2, ..CoreConfig::default() };
    let r2 = run_with(two, |a| {
        a.li(S0, 9999);
        a.li(S1, 7);
        let temps = [T0, T1, T2, T3];
        for i in 0..64 {
            a.div(temps[i % 4], S0, S1);
        }
    });
    assert!(r2.cycles < r.cycles, "a second divider must help");
}

#[test]
fn commit_width_bounds_retirement() {
    const N: usize = 4096;
    let cfg = CoreConfig {
        fetch_width: 8,
        issue_width: 8,
        commit_width: 2,
        alu_units: 8,
        ..CoreConfig::default()
    };
    let r = run_with(cfg, |a| independent_adds(a, N));
    assert!(r.ipc() <= 2.05, "commit=2 caps IPC at 2, got {:.2}", r.ipc());
}

#[test]
fn memory_ports_bound_load_throughput() {
    const N: i64 = 2048;
    let one_port = CoreConfig { mem_ports: 1, ..CoreConfig::default() };
    let two_ports = CoreConfig { mem_ports: 2, ..CoreConfig::default() };
    let build = |a: &mut Asm| {
        a.li(A0, 0x10_0000);
        for i in 0..N {
            a.lw(T0, A0, (i % 500) * 4);
        }
    };
    let r1 = run_with(one_port, build);
    let r2 = run_with(two_ports, build);
    assert!(r1.cycles >= N as u64, "1 port: at most one load per cycle");
    assert!(r2.cycles < r1.cycles, "a second port must help");
}
