//! CPU-side microarchitectural additions for MESA: the loop-stream
//! detector and the trace cache (paper §4.1).
//!
//! The loop-stream detector (LSD) watches the retire stream for backward
//! branches with stable targets — the loop-closing pattern — and reports
//! candidate regions once the same loop has repeated enough times. The
//! trace cache captures the region's machine words so MESA can build the
//! LDFG "without interfering with regular fetch on the CPU".

use crate::{RetireEvent, RetireMonitor};
use mesa_isa::{codec, Outcome, Program};

/// A loop region candidate emitted by the LSD.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopCandidate {
    /// First instruction of the loop body (the backward branch's target).
    pub start_pc: u64,
    /// One past the loop-closing branch (exclusive end).
    pub end_pc: u64,
    /// Iterations observed so far for this loop.
    pub iterations_seen: u64,
}

impl LoopCandidate {
    /// Number of static instructions in the loop body.
    #[must_use]
    pub fn len(&self) -> usize {
        ((self.end_pc - self.start_pc) / 4) as usize
    }

    /// `true` for an empty (degenerate) region.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.end_pc <= self.start_pc
    }
}

/// Loop-stream detector over the retire stream.
///
/// ```
/// use mesa_cpu::LoopStreamDetector;
/// let mut lsd = LoopStreamDetector::new(3);
/// // (driven by the core's retire events in practice)
/// assert!(lsd.hot_loop().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct LoopStreamDetector {
    threshold: u64,
    current: Option<LoopCandidate>,
    hot: Option<LoopCandidate>,
}

impl LoopStreamDetector {
    /// A detector that reports a loop after `threshold` consecutive
    /// iterations of the same backward branch.
    #[must_use]
    pub fn new(threshold: u64) -> Self {
        LoopStreamDetector { threshold, current: None, hot: None }
    }

    /// Feeds one retired control-flow event.
    pub fn observe(&mut self, pc: u64, outcome: Outcome) {
        if let Outcome::Branch { taken: true, target } = outcome {
            if target <= pc {
                let (start, end) = (target, pc + 4);
                match &mut self.current {
                    Some(c) if c.start_pc == start && c.end_pc == end => {
                        c.iterations_seen += 1;
                        if c.iterations_seen >= self.threshold {
                            self.hot = Some(*c);
                        }
                    }
                    _ => {
                        self.current = Some(LoopCandidate {
                            start_pc: start,
                            end_pc: end,
                            iterations_seen: 1,
                        });
                    }
                }
            }
        }
        // A not-taken loop branch or other control flow inside the stream
        // does not reset the candidate (loops contain forward branches);
        // only a *different* backward branch replaces it, handled above.
    }

    /// The hottest loop seen so far, once past the detection threshold.
    #[must_use]
    pub fn hot_loop(&self) -> Option<LoopCandidate> {
        self.hot
    }

    /// Clears all detection state (e.g. after an offload completes).
    pub fn reset(&mut self) {
        self.current = None;
        self.hot = None;
    }
}

impl RetireMonitor for LoopStreamDetector {
    fn on_retire(&mut self, event: &RetireEvent) {
        self.observe(event.pc, event.info.outcome);
    }
}

/// Trace cache holding the machine words of one candidate region.
///
/// Sized to the maximum number of instructions mappable on the accelerator
/// (64–512 in the paper's evaluations); a region longer than the capacity
/// fails condition C1 up front.
///
/// The cache is designed to be long-lived: re-opening the same region and
/// re-filling it with identical words (the common case when the same hot
/// loop is offloaded episode after episode) leaves the fill generation
/// unchanged, so [`TraceCache::to_program`] can serve the previously
/// decoded [`Program`] instead of re-decoding every word.
#[derive(Debug, Clone)]
pub struct TraceCache {
    capacity: usize,
    start_pc: u64,
    end_pc: u64,
    words: Vec<Option<u32>>,
    /// Per-slot "written since the last `open_region`" bits. A slot whose
    /// bit is clear behaves exactly like an empty slot — `is_complete`,
    /// `fill_ratio`, and the fallback fill all look at these bits — but its
    /// previous word is retained so an identical re-fill does not bump the
    /// generation.
    fresh: Vec<bool>,
    /// Bumped only when a slot's word *value* actually changes.
    generation: u64,
    /// Last decode, keyed by `(start_pc, end_pc, generation)`.
    decoded: Option<(u64, u64, u64, Option<Program>)>,
}

/// Error from [`TraceCache::open_region`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionTooLarge {
    /// Instructions the region needs.
    pub needed: usize,
    /// Instructions the trace cache can hold.
    pub capacity: usize,
}

impl std::fmt::Display for RegionTooLarge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "code region of {} instructions exceeds trace cache capacity {}",
            self.needed, self.capacity
        )
    }
}

impl std::error::Error for RegionTooLarge {}

impl TraceCache {
    /// An empty trace cache able to hold `capacity` instructions.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        TraceCache {
            capacity,
            start_pc: 0,
            end_pc: 0,
            words: Vec::new(),
            fresh: Vec::new(),
            generation: 0,
            decoded: None,
        }
    }

    /// Capacity in instructions.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Points the cache at a region, clearing previous contents.
    ///
    /// # Errors
    /// Fails (condition C1) when the region exceeds capacity.
    pub fn open_region(&mut self, start_pc: u64, end_pc: u64) -> Result<(), RegionTooLarge> {
        let needed = ((end_pc.saturating_sub(start_pc)) / 4) as usize;
        if needed > self.capacity {
            return Err(RegionTooLarge { needed, capacity: self.capacity });
        }
        if start_pc == self.start_pc && end_pc == self.end_pc && self.words.len() == needed {
            // Same region as last time: keep the stored words (so identical
            // re-fills preserve the generation) but mark every slot stale.
            self.fresh.fill(false);
        } else {
            self.start_pc = start_pc;
            self.end_pc = end_pc;
            self.words = vec![None; needed];
            self.fresh = vec![false; needed];
        }
        Ok(())
    }

    /// Captures one fetched word if it falls inside the open region.
    pub fn fill(&mut self, pc: u64, word: u32) {
        if (self.start_pc..self.end_pc).contains(&pc) && (pc - self.start_pc).is_multiple_of(4) {
            let idx = ((pc - self.start_pc) / 4) as usize;
            if self.words[idx] != Some(word) {
                self.words[idx] = Some(word);
                self.generation += 1;
            }
            self.fresh[idx] = true;
        }
    }

    /// Captures instructions by re-encoding them from the program image —
    /// the "stall fetch and read the I-cache directly" fallback the paper
    /// describes for instructions never observed dynamically.
    pub fn fill_from_program(&mut self, program: &Program) {
        for idx in 0..self.words.len() {
            if !self.fresh[idx] {
                let pc = self.start_pc + 4 * idx as u64;
                if let Some(i) = program.fetch(pc) {
                    if let Ok(w) = codec::encode(i) {
                        if self.words[idx] != Some(w) {
                            self.words[idx] = Some(w);
                            self.generation += 1;
                        }
                        self.fresh[idx] = true;
                    }
                }
            }
        }
    }

    /// `true` once every slot in the region has been captured.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        !self.fresh.is_empty() && self.fresh.iter().all(|&f| f)
    }

    /// Fraction of the region captured so far.
    #[must_use]
    pub fn fill_ratio(&self) -> f64 {
        if self.fresh.is_empty() {
            return 0.0;
        }
        self.fresh.iter().filter(|&&f| f).count() as f64 / self.fresh.len() as f64
    }

    /// Fill generation: bumps only when a captured word actually changes,
    /// never on identical re-fills of the same region.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Decodes the captured region into a [`Program`] based at the region
    /// start. Re-decoding the same `(region, generation)` is served from a
    /// one-entry decode cache.
    ///
    /// Returns `None` until [`TraceCache::is_complete`].
    #[must_use]
    pub fn to_program(&mut self) -> Option<Program> {
        if !self.is_complete() {
            return None;
        }
        let key = (self.start_pc, self.end_pc, self.generation);
        if let Some((s, e, g, prog)) = &self.decoded {
            if (*s, *e, *g) == key {
                return prog.clone();
            }
        }
        let words: Vec<u32> = self.words.iter().map(|w| w.expect("complete")).collect();
        let prog = Program::decode(self.start_pc, &words).ok();
        self.decoded = Some((key.0, key.1, key.2, prog.clone()));
        prog
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesa_isa::{Asm, Instruction, Opcode};
    use mesa_isa::reg::abi::*;

    #[test]
    fn lsd_detects_after_threshold() {
        let mut lsd = LoopStreamDetector::new(3);
        let branch_pc = 0x1010;
        let target = 0x1000;
        for n in 1..=2 {
            lsd.observe(branch_pc, Outcome::Branch { taken: true, target });
            assert!(lsd.hot_loop().is_none(), "not hot after {n}");
        }
        lsd.observe(branch_pc, Outcome::Branch { taken: true, target });
        let hot = lsd.hot_loop().expect("hot after 3");
        assert_eq!(hot.start_pc, 0x1000);
        assert_eq!(hot.end_pc, 0x1014);
        assert_eq!(hot.len(), 5);
    }

    #[test]
    fn lsd_ignores_forward_branches() {
        let mut lsd = LoopStreamDetector::new(1);
        lsd.observe(0x1000, Outcome::Branch { taken: true, target: 0x1040 });
        assert!(lsd.hot_loop().is_none());
    }

    #[test]
    fn lsd_not_taken_does_not_count() {
        let mut lsd = LoopStreamDetector::new(1);
        lsd.observe(0x1010, Outcome::Branch { taken: false, target: 0x1000 });
        assert!(lsd.hot_loop().is_none());
    }

    #[test]
    fn lsd_switches_to_new_loop() {
        let mut lsd = LoopStreamDetector::new(2);
        lsd.observe(0x1010, Outcome::Branch { taken: true, target: 0x1000 });
        // Different loop appears; candidate resets.
        lsd.observe(0x2020, Outcome::Branch { taken: true, target: 0x2000 });
        lsd.observe(0x2020, Outcome::Branch { taken: true, target: 0x2000 });
        let hot = lsd.hot_loop().unwrap();
        assert_eq!(hot.start_pc, 0x2000);
    }

    #[test]
    fn trace_cache_fills_and_decodes() {
        let mut a = Asm::new(0x1000);
        a.label("l");
        a.addi(T0, T0, 1);
        a.bne(T0, T1, "l");
        let p = a.finish().unwrap();
        let words = p.encode().unwrap();

        let mut tc = TraceCache::new(64);
        tc.open_region(0x1000, 0x1008).unwrap();
        assert!(!tc.is_complete());
        tc.fill(0x1000, words[0]);
        assert!((tc.fill_ratio() - 0.5).abs() < 1e-9);
        tc.fill(0x1004, words[1]);
        assert!(tc.is_complete());
        let back = tc.to_program().unwrap();
        assert_eq!(back.instrs, p.instrs);
    }

    #[test]
    fn trace_cache_rejects_oversized_region() {
        let mut tc = TraceCache::new(4);
        let err = tc.open_region(0x1000, 0x1000 + 4 * 5).unwrap_err();
        assert_eq!(err.needed, 5);
        assert_eq!(err.capacity, 4);
    }

    #[test]
    fn trace_cache_ignores_out_of_region_fills() {
        let mut tc = TraceCache::new(4);
        tc.open_region(0x1000, 0x1008).unwrap();
        tc.fill(0x0FFC, 0x13); // below
        tc.fill(0x1008, 0x13); // at end (exclusive)
        tc.fill(0x1002, 0x13); // misaligned
        assert_eq!(tc.fill_ratio(), 0.0);
    }

    #[test]
    fn reopening_same_region_requires_refill_but_keeps_generation() {
        let mut a = Asm::new(0x1000);
        a.label("l");
        a.addi(T0, T0, 1);
        a.bne(T0, T1, "l");
        let p = a.finish().unwrap();
        let words = p.encode().unwrap();

        let mut tc = TraceCache::new(64);
        tc.open_region(0x1000, 0x1008).unwrap();
        tc.fill(0x1000, words[0]);
        tc.fill(0x1004, words[1]);
        let first = tc.to_program().unwrap();
        let gen_after_first = tc.generation();

        // Re-opening the same region invalidates completeness...
        tc.open_region(0x1000, 0x1008).unwrap();
        assert!(!tc.is_complete());
        assert_eq!(tc.fill_ratio(), 0.0);
        assert_eq!(tc.to_program(), None);

        // ...but an identical re-fill does not advance the generation, and
        // decodes to the same program (now via the decode cache).
        tc.fill(0x1000, words[0]);
        tc.fill(0x1004, words[1]);
        assert_eq!(tc.generation(), gen_after_first);
        assert_eq!(tc.to_program().unwrap().instrs, first.instrs);
    }

    #[test]
    fn changed_word_bumps_generation_and_redecodes() {
        let mut a = Asm::new(0x1000);
        a.addi(T0, T0, 1);
        a.addi(T1, T1, 2);
        let p = a.finish().unwrap();
        let words = p.encode().unwrap();

        let mut tc = TraceCache::new(8);
        tc.open_region(0x1000, 0x1008).unwrap();
        tc.fill(0x1000, words[0]);
        tc.fill(0x1004, words[1]);
        let first = tc.to_program().unwrap();
        assert_eq!(first.instrs[1], Instruction::reg_imm(Opcode::Addi, T1, T1, 2));

        // Same region, one word replaced: the decode must reflect it.
        let mut b = Asm::new(0x1004);
        b.addi(T2, T2, 7);
        let replacement = b.finish().unwrap().encode().unwrap()[0];
        let gen_before = tc.generation();
        tc.open_region(0x1000, 0x1008).unwrap();
        tc.fill(0x1000, words[0]);
        tc.fill(0x1004, replacement);
        assert!(tc.generation() > gen_before);
        let second = tc.to_program().unwrap();
        assert_eq!(second.instrs[0], first.instrs[0]);
        assert_eq!(second.instrs[1], Instruction::reg_imm(Opcode::Addi, T2, T2, 7));
    }

    #[test]
    fn fallback_fill_from_program() {
        let mut a = Asm::new(0x1000);
        a.addi(T0, T0, 1);
        a.raw(Instruction::reg3(Opcode::Add, T1, T0, T0));
        let p = a.finish().unwrap();
        let mut tc = TraceCache::new(8);
        tc.open_region(0x1000, 0x1008).unwrap();
        tc.fill_from_program(&p);
        assert!(tc.is_complete());
        assert_eq!(tc.to_program().unwrap().instrs, p.instrs);
    }
}
