//! Out-of-order core parameters.

use mesa_isa::Xlen;

/// Microarchitectural parameters of one out-of-order core.
///
/// The default models the paper's baseline: a quad-issue out-of-order
/// RISC-V core in the BOOM class (§6: "16-core quad-issue out-of-order
/// RISC-V CPU ... based on BOOM as the baseline core").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// Instructions fetched per cycle.
    pub fetch_width: u32,
    /// Instructions issued to functional units per cycle.
    pub issue_width: u32,
    /// Instructions committed per cycle.
    pub commit_width: u32,
    /// Reorder-buffer entries.
    pub rob_size: usize,
    /// Front-end depth in cycles (fetch → dispatch).
    pub frontend_depth: u64,
    /// Branch misprediction redirect penalty in cycles.
    pub mispredict_penalty: u64,
    /// Integer ALUs.
    pub alu_units: usize,
    /// Integer multiply/divide units.
    pub muldiv_units: usize,
    /// FP units.
    pub fp_units: usize,
    /// Load/store ports to the L1.
    pub mem_ports: usize,
    /// Register width.
    pub xlen: Xlen,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            fetch_width: 4,
            issue_width: 4,
            commit_width: 4,
            rob_size: 192,
            frontend_depth: 5,
            mispredict_penalty: 12,
            alu_units: 4,
            muldiv_units: 2,
            fp_units: 2,
            mem_ports: 2,
            xlen: Xlen::Rv32,
        }
    }
}

impl CoreConfig {
    /// The quad-issue BOOM-class baseline core.
    #[must_use]
    pub fn boom_baseline() -> Self {
        Self::default()
    }

    /// A smaller dual-issue core, used for the DynaSpAM-parameterized
    /// single-core comparison (Fig. 14 uses "the gem5 parameters as listed
    /// in the DynaSpAM paper", a 4-wide OoO core with a smaller window).
    #[must_use]
    pub fn dynaspam_host() -> Self {
        CoreConfig {
            fetch_width: 4,
            issue_width: 4,
            commit_width: 4,
            rob_size: 168,
            frontend_depth: 5,
            mispredict_penalty: 12,
            alu_units: 3,
            muldiv_units: 1,
            fp_units: 2,
            mem_ports: 2,
            xlen: Xlen::Rv32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_quad_issue() {
        let c = CoreConfig::default();
        assert_eq!(c.issue_width, 4);
        assert_eq!(c.fetch_width, 4);
        assert!(c.rob_size >= 128);
    }
}
