//! One-pass out-of-order core timing model.
//!
//! Instructions are executed functionally in program order (so values,
//! branch outcomes, and effective addresses are exact) while timing is
//! computed with a dataflow scoreboard: each dynamic instruction's
//! completion is bounded by operand readiness, functional-unit and issue
//! bandwidth, ROB occupancy, fetch redirects on mispredicted branches, and
//! in-order commit. This is the standard trace-driven OoO approximation and
//! yields credible IPC without simulating wrong-path work.

use crate::{BranchPredictor, CoreConfig};
use mesa_isa::{step, ArchState, Instruction, OpClass, Outcome, Program, StepInfo};
use mesa_mem::MemorySystem;

/// Stop conditions for a run.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunLimits {
    /// Stop after this many retired instructions (0 = unlimited).
    pub max_instrs: u64,
    /// Stop when fetch reaches this PC (checked before executing it).
    pub stop_pc: Option<u64>,
}

impl RunLimits {
    /// Unlimited run until `Halt` or program exit.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Stop after `n` retired instructions.
    #[must_use]
    pub fn instrs(n: u64) -> Self {
        RunLimits { max_instrs: n, stop_pc: None }
    }
}

/// Why a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The program executed `ecall` exit or `ebreak`.
    Halted,
    /// The PC left the program's address range.
    OutOfProgram,
    /// `RunLimits::max_instrs` reached.
    InstrLimit,
    /// `RunLimits::stop_pc` reached.
    StopPc,
}

/// Timing and event counts from one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunResult {
    /// Total cycles from first fetch to last commit.
    pub cycles: u64,
    /// Instructions retired.
    pub retired: u64,
    /// Loads retired.
    pub loads: u64,
    /// Stores retired.
    pub stores: u64,
    /// Conditional branches retired.
    pub branches: u64,
    /// Mispredicted branches.
    pub mispredicts: u64,
    /// Cycles instructions spent waiting between operand readiness and
    /// issue (functional-unit and issue-bandwidth pressure), summed over
    /// all retired instructions.
    pub issue_wait_cycles: u64,
    /// Fetch redirects taken (branch mispredictions plus indirect jumps
    /// that moved the fetch point).
    pub fetch_redirects: u64,
    /// Why the run stopped.
    pub stop: StopReason,
}

impl RunResult {
    /// Retired instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycles as f64
        }
    }

    /// Registers the pipeline story — fetch, issue, retire, branch — as
    /// counters named `<prefix>.cycles`, `<prefix>.retired`, etc.
    pub fn record_metrics(&self, reg: &mut mesa_trace::MetricsRegistry, prefix: &str) {
        reg.add(&format!("{prefix}.cycles"), self.cycles);
        reg.add(&format!("{prefix}.retired"), self.retired);
        reg.add(&format!("{prefix}.loads"), self.loads);
        reg.add(&format!("{prefix}.stores"), self.stores);
        reg.add(&format!("{prefix}.branches"), self.branches);
        reg.add(&format!("{prefix}.mispredicts"), self.mispredicts);
        reg.add(&format!("{prefix}.issue_wait_cycles"), self.issue_wait_cycles);
        reg.add(&format!("{prefix}.fetch_redirects"), self.fetch_redirects);
    }
}

/// Accumulated pipeline counters across any number of [`RunResult`]s.
///
/// The controller chops CPU execution into many short [`OoOCore::run`]
/// calls (monitoring quanta, loop-entry alignment, configuration overlap);
/// this folds their per-chunk counters into one CPU-phase total that the
/// profiler's top-down cycle accounting can attribute.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Total cycles across all absorbed runs.
    pub cycles: u64,
    /// Instructions retired.
    pub retired: u64,
    /// Loads retired.
    pub loads: u64,
    /// Stores retired.
    pub stores: u64,
    /// Conditional branches retired.
    pub branches: u64,
    /// Mispredicted branches.
    pub mispredicts: u64,
    /// Cycles instructions spent waiting between operand readiness and
    /// issue, summed over all retired instructions.
    pub issue_wait_cycles: u64,
    /// Fetch redirects taken.
    pub fetch_redirects: u64,
}

impl PipelineStats {
    /// Folds one run's counters into the accumulated totals.
    pub fn absorb(&mut self, r: &RunResult) {
        self.cycles += r.cycles;
        self.retired += r.retired;
        self.loads += r.loads;
        self.stores += r.stores;
        self.branches += r.branches;
        self.mispredicts += r.mispredicts;
        self.issue_wait_cycles += r.issue_wait_cycles;
        self.fetch_redirects += r.fetch_redirects;
    }

    /// Retired instructions per cycle over the accumulated window.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycles as f64
        }
    }

    /// Registers the accumulated counters as `<prefix>.cycles`,
    /// `<prefix>.retired`, etc.
    pub fn record_metrics(&self, reg: &mut mesa_trace::MetricsRegistry, prefix: &str) {
        reg.add(&format!("{prefix}.cycles"), self.cycles);
        reg.add(&format!("{prefix}.retired"), self.retired);
        reg.add(&format!("{prefix}.loads"), self.loads);
        reg.add(&format!("{prefix}.stores"), self.stores);
        reg.add(&format!("{prefix}.branches"), self.branches);
        reg.add(&format!("{prefix}.mispredicts"), self.mispredicts);
        reg.add(&format!("{prefix}.issue_wait_cycles"), self.issue_wait_cycles);
        reg.add(&format!("{prefix}.fetch_redirects"), self.fetch_redirects);
    }
}

/// A committed-instruction event delivered to observers (MESA's monitor
/// hardware hangs off this, paper §4.1).
#[derive(Debug, Clone, Copy)]
pub struct RetireEvent {
    /// Instruction address.
    pub pc: u64,
    /// The instruction.
    pub instr: Instruction,
    /// Functional outcome (branch direction, halt, …).
    pub info: StepInfo,
    /// Observed memory latency for loads/stores, in cycles.
    pub mem_latency: Option<u64>,
    /// Cycle the result was produced.
    pub complete_cycle: u64,
    /// Cycle the instruction committed.
    pub commit_cycle: u64,
}

/// Observer of the retire stream.
pub trait RetireMonitor {
    /// Called once per retired instruction, in program order.
    fn on_retire(&mut self, event: &RetireEvent);
}

/// A monitor that ignores everything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullMonitor;

impl RetireMonitor for NullMonitor {
    fn on_retire(&mut self, _event: &RetireEvent) {}
}

const ISSUE_RING: usize = 1 << 16;

/// The out-of-order core.
#[derive(Debug, Clone)]
pub struct OoOCore {
    cfg: CoreConfig,
    predictor: BranchPredictor,
}

impl OoOCore {
    /// Creates a core with fresh predictor state.
    #[must_use]
    pub fn new(cfg: CoreConfig) -> Self {
        OoOCore { cfg, predictor: BranchPredictor::default() }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Runs `program` from `state.pc` until a stop condition, accounting
    /// memory timing against `mem` as requester `requester`.
    ///
    /// `state` and `mem` are updated functionally; the returned
    /// [`RunResult`] carries the timing.
    pub fn run(
        &mut self,
        program: &Program,
        state: &mut ArchState,
        mem: &mut MemorySystem,
        requester: usize,
        limits: RunLimits,
        monitor: &mut dyn RetireMonitor,
    ) -> RunResult {
        let cfg = self.cfg;
        let mut reg_ready = [0u64; 64];
        // ROB occupancy: commit time of the instruction `rob_size` back.
        let mut rob_commits = std::collections::VecDeque::with_capacity(cfg.rob_size);
        let mut issue_ring = vec![0u32; ISSUE_RING];
        let mut issue_ring_base = 0u64;

        // Functional-unit next-free times.
        let mut alu_free = vec![0u64; cfg.alu_units];
        let mut muldiv_free = vec![0u64; cfg.muldiv_units];
        let mut fp_free = vec![0u64; cfg.fp_units];
        let mut mem_free = vec![0u64; cfg.mem_ports];

        let mut fetch_cycle = 0u64;
        let mut fetched_this_cycle = 0u32;
        let mut last_commit = 0u64;
        let mut commit_times: Vec<u64> = Vec::new(); // sliding window of commit_width

        let mut result = RunResult {
            cycles: 0,
            retired: 0,
            loads: 0,
            stores: 0,
            branches: 0,
            mispredicts: 0,
            issue_wait_cycles: 0,
            fetch_redirects: 0,
            stop: StopReason::OutOfProgram,
        };

        loop {
            if let Some(stop) = limits.stop_pc {
                if state.pc == stop {
                    result.stop = StopReason::StopPc;
                    break;
                }
            }
            if limits.max_instrs > 0 && result.retired >= limits.max_instrs {
                result.stop = StopReason::InstrLimit;
                break;
            }
            let Some(&instr) = program.fetch(state.pc) else {
                result.stop = StopReason::OutOfProgram;
                break;
            };
            let pc = state.pc;

            // ---- fetch ----
            if fetched_this_cycle >= cfg.fetch_width {
                fetch_cycle += 1;
                fetched_this_cycle = 0;
            }
            let my_fetch = fetch_cycle;
            fetched_this_cycle += 1;

            // ---- dispatch: frontend depth + ROB space ----
            let mut dispatch = my_fetch + cfg.frontend_depth;
            if rob_commits.len() >= cfg.rob_size {
                let freed: u64 = rob_commits.pop_front().expect("rob nonempty");
                dispatch = dispatch.max(freed);
            }

            // ---- operand readiness ----
            let mut ready = dispatch;
            for src in instr.raw_sources() {
                if !src.is_zero() {
                    ready = ready.max(reg_ready[src.flat_index()]);
                }
            }

            // ---- functional execution (values, branch outcome, address) ----
            let info = step(state, &instr, mem.data_mut());

            // ---- issue: FU + issue bandwidth ----
            let class = instr.class();
            let pool: &mut Vec<u64> = match class {
                OpClass::IntMul | OpClass::IntDiv => &mut muldiv_free,
                OpClass::FpAlu | OpClass::FpMul | OpClass::FpDiv => &mut fp_free,
                OpClass::Load | OpClass::Store => &mut mem_free,
                _ => &mut alu_free,
            };
            let unit = pool
                .iter()
                .enumerate()
                .min_by_key(|(_, &t)| t)
                .map(|(i, _)| i)
                .expect("unit pool nonempty");
            let mut issue = ready.max(pool[unit]);

            // Issue-bandwidth ring: at most issue_width issues per cycle.
            loop {
                // Advance ring base if the window moved far ahead.
                if issue < issue_ring_base {
                    issue = issue_ring_base;
                }
                while issue >= issue_ring_base + ISSUE_RING as u64 {
                    let idx = (issue_ring_base % ISSUE_RING as u64) as usize;
                    issue_ring[idx] = 0;
                    issue_ring_base += 1;
                }
                let idx = (issue % ISSUE_RING as u64) as usize;
                if issue_ring[idx] < cfg.issue_width {
                    issue_ring[idx] += 1;
                    break;
                }
                issue += 1;
            }
            result.issue_wait_cycles += issue - ready;

            // ---- execute latency ----
            let (latency, mem_latency, occupancy) = match class {
                OpClass::Load => {
                    let acc = mem.access(
                        requester,
                        info.mem.expect("load has access").addr,
                        false,
                        issue,
                    );
                    (acc.total, Some(acc.total), 1)
                }
                OpClass::Store => {
                    // Stores drain from the store buffer after commit; the
                    // producing instruction's "result" (store complete) is
                    // cheap, but the cache access still occupies a port and
                    // updates timing state.
                    let acc = mem.access(
                        requester,
                        info.mem.expect("store has access").addr,
                        true,
                        issue,
                    );
                    (1, Some(acc.total), 1)
                }
                OpClass::IntDiv | OpClass::FpDiv => {
                    let l = instr.op.base_latency();
                    (l, None, l) // unpipelined
                }
                OpClass::System => {
                    // Serializing; syscalls cost a fixed pipeline drain.
                    let l = if matches!(info.outcome, Outcome::Syscall) { 200 } else { 1 };
                    (l, None, 1)
                }
                _ => (instr.op.base_latency(), None, 1),
            };
            pool[unit] = issue + occupancy;
            let complete = issue + latency;

            // ---- writeback ----
            if let Some(rd) = instr.dest() {
                reg_ready[rd.flat_index()] = complete;
            }

            // ---- branch resolution / fetch redirect ----
            match info.outcome {
                Outcome::Branch { taken, target } => {
                    result.branches += 1;
                    let correct = self.predictor.update(pc, taken, target);
                    if !correct {
                        result.mispredicts += 1;
                        let redirect = complete + cfg.mispredict_penalty;
                        if redirect > fetch_cycle {
                            result.fetch_redirects += 1;
                            fetch_cycle = redirect;
                            fetched_this_cycle = 0;
                        }
                    }
                }
                Outcome::Jump { .. }
                    // Direct jumps resolve in decode; JALR may redirect.
                    if instr.op == mesa_isa::Opcode::Jalr => {
                        let redirect = complete + 1;
                        if redirect > fetch_cycle {
                            result.fetch_redirects += 1;
                            fetch_cycle = redirect;
                            fetched_this_cycle = 0;
                        }
                    }
                _ => {}
            }

            // ---- in-order commit ----
            let mut commit = complete.max(last_commit);
            if commit_times.len() >= cfg.commit_width as usize {
                let w = commit_times[commit_times.len() - cfg.commit_width as usize];
                commit = commit.max(w + 1);
            }
            commit_times.push(commit);
            if commit_times.len() > 2 * cfg.commit_width as usize {
                commit_times.drain(..cfg.commit_width as usize);
            }
            last_commit = commit;
            rob_commits.push_back(commit);

            result.retired += 1;
            match class {
                OpClass::Load => result.loads += 1,
                OpClass::Store => result.stores += 1,
                _ => {}
            }

            monitor.on_retire(&RetireEvent {
                pc,
                instr,
                info,
                mem_latency,
                complete_cycle: complete,
                commit_cycle: commit,
            });

            if matches!(info.outcome, Outcome::Halt) {
                result.stop = StopReason::Halted;
                break;
            }
        }

        result.cycles = last_commit;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesa_isa::{Asm, Xlen};
    use mesa_isa::reg::abi::*;
    use mesa_mem::MemConfig;

    fn run_program(build: impl FnOnce(&mut Asm)) -> (RunResult, ArchState) {
        let mut a = Asm::new(0x1000);
        build(&mut a);
        let p = a.finish().unwrap();
        let mut core = OoOCore::new(CoreConfig::default());
        let mut st = ArchState::new(0x1000, Xlen::Rv32);
        let mut mem = MemorySystem::new(MemConfig::default(), 1);
        let r = core.run(&p, &mut st, &mut mem, 0, RunLimits::none(), &mut NullMonitor);
        (r, st)
    }

    #[test]
    fn straightline_ilp_exceeds_one_ipc() {
        let (r, st) = run_program(|a| {
            // 32 independent adds.
            for _ in 0..8 {
                a.addi(T0, ZERO, 1);
                a.addi(T1, ZERO, 2);
                a.addi(T2, ZERO, 3);
                a.addi(T3, ZERO, 4);
            }
        });
        assert_eq!(r.retired, 32);
        assert!(r.ipc() > 1.5, "ipc = {}", r.ipc());
        assert_eq!(st.read(T3), 4);
    }

    #[test]
    fn dependent_chain_is_serial() {
        let (r, st) = run_program(|a| {
            for _ in 0..32 {
                a.addi(T0, T0, 1);
            }
        });
        assert_eq!(st.read(T0), 32);
        // A 32-long dependence chain takes at least 32 cycles.
        assert!(r.cycles >= 32, "cycles = {}", r.cycles);
    }

    #[test]
    fn loop_executes_correct_iteration_count() {
        let (r, st) = run_program(|a| {
            a.li(T0, 0);
            a.li(T1, 100);
            a.label("loop");
            a.addi(T0, T0, 1);
            a.bne(T0, T1, "loop");
        });
        assert_eq!(st.read(T0), 100);
        assert_eq!(r.branches, 100);
        // Loop branch should predict well: few mispredicts.
        assert!(r.mispredicts <= 4, "mispredicts = {}", r.mispredicts);
    }

    #[test]
    fn loads_see_memory_latency() {
        // Pointer-chasing loads (dependent) are slow; independent loads
        // overlap. Compare the two.
        let chain = {
            let mut a = Asm::new(0x1000);
            a.li(A0, 0x10000);
            for _ in 0..16 {
                a.lw(A0, A0, 0); // A0 = mem[A0] = 0 → all same line after first
            }
            a.finish().unwrap()
        };
        let indep = {
            let mut a = Asm::new(0x1000);
            a.li(A0, 0x10000);
            for i in 0..16 {
                a.lw(T0, A0, i * 4);
            }
            a.finish().unwrap()
        };
        let mut core = OoOCore::new(CoreConfig::default());
        let mut mem = MemorySystem::new(MemConfig::default(), 1);
        let mut st = ArchState::new(0x1000, Xlen::Rv32);
        let r_chain = core.run(&chain, &mut st, &mut mem, 0, RunLimits::none(), &mut NullMonitor);
        let mut mem = MemorySystem::new(MemConfig::default(), 1);
        let mut st = ArchState::new(0x1000, Xlen::Rv32);
        let r_indep = core.run(&indep, &mut st, &mut mem, 0, RunLimits::none(), &mut NullMonitor);
        assert!(
            r_chain.cycles > r_indep.cycles,
            "chain {} should exceed independent {}",
            r_chain.cycles,
            r_indep.cycles
        );
    }

    #[test]
    fn halt_stops_run() {
        let (r, _) = run_program(|a| {
            a.li(A7, 93);
            a.ecall();
            a.addi(T0, T0, 1); // never reached
        });
        assert_eq!(r.stop, StopReason::Halted);
        assert_eq!(r.retired, 2); // li a7 (one addi) + ecall
    }

    #[test]
    fn stop_pc_halts_before_executing() {
        let mut a = Asm::new(0x1000);
        a.addi(T0, T0, 1);
        a.addi(T0, T0, 1);
        a.addi(T0, T0, 1);
        let p = a.finish().unwrap();
        let mut core = OoOCore::new(CoreConfig::default());
        let mut st = ArchState::new(0x1000, Xlen::Rv32);
        let mut mem = MemorySystem::new(MemConfig::default(), 1);
        let limits = RunLimits { max_instrs: 0, stop_pc: Some(0x1008) };
        let r = core.run(&p, &mut st, &mut mem, 0, limits, &mut NullMonitor);
        assert_eq!(r.stop, StopReason::StopPc);
        assert_eq!(r.retired, 2);
        assert_eq!(st.read(T0), 2);
    }

    #[test]
    fn instr_limit_respected() {
        let (r, _) = run_program_with_limit();
        assert_eq!(r.stop, StopReason::InstrLimit);
        assert_eq!(r.retired, 10);
    }

    fn run_program_with_limit() -> (RunResult, ArchState) {
        let mut a = Asm::new(0x1000);
        a.label("spin");
        a.addi(T0, T0, 1);
        a.jal(ZERO, "spin");
        let p = a.finish().unwrap();
        let mut core = OoOCore::new(CoreConfig::default());
        let mut st = ArchState::new(0x1000, Xlen::Rv32);
        let mut mem = MemorySystem::new(MemConfig::default(), 1);
        let r = core.run(&p, &mut st, &mut mem, 0, RunLimits::instrs(10), &mut NullMonitor);
        (r, st)
    }

    #[test]
    fn monitor_sees_every_retire_in_order() {
        struct Collect(Vec<u64>);
        impl RetireMonitor for Collect {
            fn on_retire(&mut self, e: &RetireEvent) {
                self.0.push(e.pc);
            }
        }
        let mut a = Asm::new(0x1000);
        a.addi(T0, T0, 1);
        a.addi(T0, T0, 1);
        let p = a.finish().unwrap();
        let mut core = OoOCore::new(CoreConfig::default());
        let mut st = ArchState::new(0x1000, Xlen::Rv32);
        let mut mem = MemorySystem::new(MemConfig::default(), 1);
        let mut mon = Collect(Vec::new());
        core.run(&p, &mut st, &mut mem, 0, RunLimits::none(), &mut mon);
        assert_eq!(mon.0, vec![0x1000, 0x1004]);
    }

    #[test]
    fn pipeline_counters_accumulate_and_register() {
        let (r, _) = run_program(|a| {
            a.li(A0, 0x10000);
            // 16 independent loads: 4 become ready per fetch cycle but
            // only mem_ports(=2) can issue, so some must wait.
            for i in 0..16 {
                a.lw(T0, A0, i * 4);
            }
        });
        assert!(r.issue_wait_cycles > 0, "issue_wait = {}", r.issue_wait_cycles);
        assert!(r.fetch_redirects <= r.mispredicts + r.branches);
        let mut reg = mesa_trace::MetricsRegistry::new();
        r.record_metrics(&mut reg, "cpu");
        assert_eq!(reg.counter("cpu.retired"), r.retired);
        assert_eq!(reg.counter("cpu.issue_wait_cycles"), r.issue_wait_cycles);
        assert_eq!(reg.counter("cpu.fetch_redirects"), r.fetch_redirects);
    }

    #[test]
    fn pipeline_stats_absorb_sums_chunked_runs() {
        let (r, _) = run_program(|a| {
            a.li(A0, 0x10000);
            for i in 0..8 {
                a.lw(T0, A0, i * 4);
            }
        });
        let mut acc = PipelineStats::default();
        acc.absorb(&r);
        acc.absorb(&r);
        assert_eq!(acc.cycles, 2 * r.cycles);
        assert_eq!(acc.retired, 2 * r.retired);
        assert_eq!(acc.loads, 2 * r.loads);
        assert_eq!(acc.issue_wait_cycles, 2 * r.issue_wait_cycles);
        assert!((acc.ipc() - r.ipc()).abs() < 1e-12);
        let mut reg = mesa_trace::MetricsRegistry::new();
        acc.record_metrics(&mut reg, "phase");
        assert_eq!(reg.counter("phase.cycles"), acc.cycles);
    }

    #[test]
    fn mispredict_penalty_slows_unpredictable_branches() {
        // Branch on the low bit of a xorshift-ish sequence: unpredictable.
        let build = |taken_pattern: bool| {
            let mut a = Asm::new(0x1000);
            a.li(S0, 0);
            a.li(S1, 64);
            a.li(S2, 0x5DEECE6);
            a.label("loop");
            if taken_pattern {
                // Data-dependent branch over a pseudo-random bit.
                a.srli(T1, S2, 1);
                a.xor(S2, S2, T1);
                a.andi(T2, S2, 1);
                a.beq(T2, ZERO, "skip");
            } else {
                // Always-taken comparison with the same instruction count.
                a.srli(T1, S2, 1);
                a.xor(S2, S2, T1);
                a.andi(T2, S2, 1);
                a.blt(T2, ZERO, "skip"); // never taken: perfectly predictable
            }
            a.addi(T3, T3, 1);
            a.label("skip");
            a.addi(S0, S0, 1);
            a.bne(S0, S1, "loop");
            a.finish().unwrap()
        };
        let run = |p: &mesa_isa::Program| {
            let mut core = OoOCore::new(CoreConfig::default());
            let mut st = ArchState::new(0x1000, Xlen::Rv32);
            let mut mem = MemorySystem::new(MemConfig::default(), 1);
            core.run(p, &mut st, &mut mem, 0, RunLimits::none(), &mut NullMonitor)
        };
        let random = run(&build(true));
        let steady = run(&build(false));
        assert!(random.mispredicts > steady.mispredicts);
    }
}
