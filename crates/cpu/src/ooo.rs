//! One-pass out-of-order core timing model.
//!
//! Instructions are executed functionally in program order (so values,
//! branch outcomes, and effective addresses are exact) while timing is
//! computed with a dataflow scoreboard: each dynamic instruction's
//! completion is bounded by operand readiness, functional-unit and issue
//! bandwidth, ROB occupancy, fetch redirects on mispredicted branches, and
//! in-order commit. This is the standard trace-driven OoO approximation and
//! yields credible IPC without simulating wrong-path work.

use crate::{BranchPredictor, CoreConfig};
use mesa_isa::{step, ArchState, Instruction, OpClass, Outcome, Program, StepInfo};
use mesa_mem::MemorySystem;

/// Stop conditions for a run.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunLimits {
    /// Stop after this many retired instructions (0 = unlimited).
    pub max_instrs: u64,
    /// Stop when fetch reaches this PC (checked before executing it).
    pub stop_pc: Option<u64>,
}

impl RunLimits {
    /// Unlimited run until `Halt` or program exit.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Stop after `n` retired instructions.
    #[must_use]
    pub fn instrs(n: u64) -> Self {
        RunLimits { max_instrs: n, stop_pc: None }
    }
}

/// Why a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The program executed `ecall` exit or `ebreak`.
    Halted,
    /// The PC left the program's address range.
    OutOfProgram,
    /// `RunLimits::max_instrs` reached.
    InstrLimit,
    /// `RunLimits::stop_pc` reached.
    StopPc,
}

/// Timing and event counts from one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunResult {
    /// Total cycles from first fetch to last commit.
    pub cycles: u64,
    /// Instructions retired.
    pub retired: u64,
    /// Loads retired.
    pub loads: u64,
    /// Stores retired.
    pub stores: u64,
    /// Conditional branches retired.
    pub branches: u64,
    /// Mispredicted branches.
    pub mispredicts: u64,
    /// Cycles instructions spent waiting between operand readiness and
    /// issue (functional-unit and issue-bandwidth pressure), summed over
    /// all retired instructions.
    pub issue_wait_cycles: u64,
    /// Fetch redirects taken (branch mispredictions plus indirect jumps
    /// that moved the fetch point).
    pub fetch_redirects: u64,
    /// Why the run stopped.
    pub stop: StopReason,
}

impl RunResult {
    /// Retired instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycles as f64
        }
    }

    /// Registers the pipeline story — fetch, issue, retire, branch — as
    /// counters named `<prefix>.cycles`, `<prefix>.retired`, etc.
    pub fn record_metrics(&self, reg: &mut mesa_trace::MetricsRegistry, prefix: &str) {
        reg.add(&format!("{prefix}.cycles"), self.cycles);
        reg.add(&format!("{prefix}.retired"), self.retired);
        reg.add(&format!("{prefix}.loads"), self.loads);
        reg.add(&format!("{prefix}.stores"), self.stores);
        reg.add(&format!("{prefix}.branches"), self.branches);
        reg.add(&format!("{prefix}.mispredicts"), self.mispredicts);
        reg.add(&format!("{prefix}.issue_wait_cycles"), self.issue_wait_cycles);
        reg.add(&format!("{prefix}.fetch_redirects"), self.fetch_redirects);
    }
}

/// Accumulated pipeline counters across any number of [`RunResult`]s.
///
/// The controller chops CPU execution into many short [`OoOCore::run`]
/// calls (monitoring quanta, loop-entry alignment, configuration overlap);
/// this folds their per-chunk counters into one CPU-phase total that the
/// profiler's top-down cycle accounting can attribute.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Total cycles across all absorbed runs.
    pub cycles: u64,
    /// Instructions retired.
    pub retired: u64,
    /// Loads retired.
    pub loads: u64,
    /// Stores retired.
    pub stores: u64,
    /// Conditional branches retired.
    pub branches: u64,
    /// Mispredicted branches.
    pub mispredicts: u64,
    /// Cycles instructions spent waiting between operand readiness and
    /// issue, summed over all retired instructions.
    pub issue_wait_cycles: u64,
    /// Fetch redirects taken.
    pub fetch_redirects: u64,
}

impl PipelineStats {
    /// Folds one run's counters into the accumulated totals.
    pub fn absorb(&mut self, r: &RunResult) {
        self.cycles += r.cycles;
        self.retired += r.retired;
        self.loads += r.loads;
        self.stores += r.stores;
        self.branches += r.branches;
        self.mispredicts += r.mispredicts;
        self.issue_wait_cycles += r.issue_wait_cycles;
        self.fetch_redirects += r.fetch_redirects;
    }

    /// Retired instructions per cycle over the accumulated window.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycles as f64
        }
    }

    /// Registers the accumulated counters as `<prefix>.cycles`,
    /// `<prefix>.retired`, etc.
    pub fn record_metrics(&self, reg: &mut mesa_trace::MetricsRegistry, prefix: &str) {
        reg.add(&format!("{prefix}.cycles"), self.cycles);
        reg.add(&format!("{prefix}.retired"), self.retired);
        reg.add(&format!("{prefix}.loads"), self.loads);
        reg.add(&format!("{prefix}.stores"), self.stores);
        reg.add(&format!("{prefix}.branches"), self.branches);
        reg.add(&format!("{prefix}.mispredicts"), self.mispredicts);
        reg.add(&format!("{prefix}.issue_wait_cycles"), self.issue_wait_cycles);
        reg.add(&format!("{prefix}.fetch_redirects"), self.fetch_redirects);
    }
}

/// A committed-instruction event delivered to observers (MESA's monitor
/// hardware hangs off this, paper §4.1).
#[derive(Debug, Clone, Copy)]
pub struct RetireEvent {
    /// Instruction address.
    pub pc: u64,
    /// The instruction.
    pub instr: Instruction,
    /// Functional outcome (branch direction, halt, …).
    pub info: StepInfo,
    /// Observed memory latency for loads/stores, in cycles.
    pub mem_latency: Option<u64>,
    /// Cycle the result was produced.
    pub complete_cycle: u64,
    /// Cycle the instruction committed.
    pub commit_cycle: u64,
}

/// Observer of the retire stream.
pub trait RetireMonitor {
    /// Called once per retired instruction, in program order.
    fn on_retire(&mut self, event: &RetireEvent);
}

/// A monitor that ignores everything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullMonitor;

impl RetireMonitor for NullMonitor {
    fn on_retire(&mut self, _event: &RetireEvent) {}
}

const ISSUE_RING: usize = 1 << 16;

/// Issue-ring slots pack the per-run generation in the high bits and the
/// per-cycle issue count in the low bits, so a new run invalidates the
/// whole 64 Ki-entry ring by bumping the generation instead of zeroing
/// 256 KiB of memory per [`OoOCore::run`] call (the controller makes many
/// short calls per episode).
const SLOT_COUNT_BITS: u32 = 24;
const SLOT_COUNT_MASK: u64 = (1 << SLOT_COUNT_BITS) - 1;

/// Flat register index meaning "no destination".
const NO_DEST: u8 = u8::MAX;

/// A predecoded micro-op: everything `run` needs per dynamic instruction
/// that does not depend on run-time state, extracted once per static
/// instruction instead of once per fetch.
#[derive(Debug, Clone, Copy)]
struct Uop {
    instr: Instruction,
    class: OpClass,
    /// Functional-unit pool: 0 = ALU, 1 = mul/div, 2 = FP, 3 = memory.
    pool: u8,
    /// Flat indices of non-zero source registers.
    srcs: [u8; 3],
    nsrcs: u8,
    /// Flat index of the destination register, or [`NO_DEST`].
    dest: u8,
    base_latency: u64,
    is_jalr: bool,
}

impl Uop {
    fn from_instr(instr: Instruction) -> Self {
        let mut srcs = [0u8; 3];
        let mut nsrcs = 0u8;
        for src in instr.raw_sources() {
            if !src.is_zero() {
                srcs[usize::from(nsrcs)] = src.flat_index() as u8;
                nsrcs += 1;
            }
        }
        let class = instr.class();
        let pool = match class {
            OpClass::IntMul | OpClass::IntDiv => 1,
            OpClass::FpAlu | OpClass::FpMul | OpClass::FpDiv => 2,
            OpClass::Load | OpClass::Store => 3,
            _ => 0,
        };
        Uop {
            instr,
            class,
            pool,
            srcs,
            nsrcs,
            dest: instr.dest().map_or(NO_DEST, |r| r.flat_index() as u8),
            base_latency: instr.op.base_latency(),
            is_jalr: instr.op == mesa_isa::Opcode::Jalr,
        }
    }
}

/// The micro-op cache: one predecoded program, revalidated by an O(n)
/// instruction compare at the start of each run (the controller re-runs
/// the same program many times per episode, so the compare amortizes the
/// per-fetch decode work away without any staleness risk).
#[derive(Debug, Clone)]
struct Predecoded {
    base_pc: u64,
    uops: Vec<Uop>,
}

impl Predecoded {
    fn matches(&self, program: &Program) -> bool {
        self.base_pc == program.base_pc
            && self.uops.len() == program.instrs.len()
            && self.uops.iter().zip(&program.instrs).all(|(u, i)| u.instr == *i)
    }
}

/// Per-run timing buffers, hoisted out of [`OoOCore::run`] so repeated
/// short runs (the controller's monitoring and overlap quanta) reuse one
/// allocation instead of reallocating per call.
#[derive(Debug, Clone)]
struct RunScratch {
    /// Lazily allocated on first run; invalidated by generation bump.
    issue_ring: Vec<u64>,
    issue_gen: u64,
    /// ROB occupancy ring (`cfg.rob_size` commit times). Slots are written
    /// before they can be read within a run, so no per-run reset needed.
    rob_ring: Vec<u64>,
    /// Commit-bandwidth window ring (`cfg.commit_width` commit times).
    commit_ring: Vec<u64>,
    alu_free: Vec<u64>,
    muldiv_free: Vec<u64>,
    fp_free: Vec<u64>,
    mem_free: Vec<u64>,
}

impl RunScratch {
    fn new(cfg: &CoreConfig) -> Self {
        RunScratch {
            issue_ring: Vec::new(),
            issue_gen: 0,
            rob_ring: vec![0; cfg.rob_size],
            commit_ring: vec![0; cfg.commit_width as usize],
            alu_free: vec![0; cfg.alu_units],
            muldiv_free: vec![0; cfg.muldiv_units],
            fp_free: vec![0; cfg.fp_units],
            mem_free: vec![0; cfg.mem_ports],
        }
    }
}

/// The out-of-order core.
#[derive(Debug, Clone)]
pub struct OoOCore {
    cfg: CoreConfig,
    predictor: BranchPredictor,
    predecoded: Option<Predecoded>,
    scratch: RunScratch,
}

impl OoOCore {
    /// Creates a core with fresh predictor state.
    #[must_use]
    pub fn new(cfg: CoreConfig) -> Self {
        let scratch = RunScratch::new(&cfg);
        OoOCore { cfg, predictor: BranchPredictor::default(), predecoded: None, scratch }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Runs `program` from `state.pc` until a stop condition, accounting
    /// memory timing against `mem` as requester `requester`.
    ///
    /// `state` and `mem` are updated functionally; the returned
    /// [`RunResult`] carries the timing.
    pub fn run(
        &mut self,
        program: &Program,
        state: &mut ArchState,
        mem: &mut MemorySystem,
        requester: usize,
        limits: RunLimits,
        monitor: &mut dyn RetireMonitor,
    ) -> RunResult {
        let cfg = self.cfg;
        let mut reg_ready = [0u64; 64];

        // Micro-op cache: revalidate (cheap compare) or rebuild.
        if !self.predecoded.as_ref().is_some_and(|p| p.matches(program)) {
            self.predecoded = Some(Predecoded {
                base_pc: program.base_pc,
                uops: program.instrs.iter().map(|&i| Uop::from_instr(i)).collect(),
            });
        }
        let pred = self.predecoded.as_ref().expect("predecode populated above");
        let base_pc = pred.base_pc;
        let uops: &[Uop] = &pred.uops;

        let predictor = &mut self.predictor;
        let scratch = &mut self.scratch;
        if scratch.issue_ring.is_empty() {
            scratch.issue_ring = vec![0u64; ISSUE_RING];
        }
        scratch.issue_gen += 1;
        let gen_tag = scratch.issue_gen << SLOT_COUNT_BITS;
        let issue_ring = &mut scratch.issue_ring[..];
        let mut issue_ring_base = 0u64;

        // Functional-unit next-free times.
        for pool in [
            &mut scratch.alu_free,
            &mut scratch.muldiv_free,
            &mut scratch.fp_free,
            &mut scratch.mem_free,
        ] {
            pool.fill(0);
        }

        let mut fetch_cycle = 0u64;
        let mut fetched_this_cycle = 0u32;
        let mut last_commit = 0u64;
        let rob_size = cfg.rob_size as u64;
        let commit_width = u64::from(cfg.commit_width);

        let mut result = RunResult {
            cycles: 0,
            retired: 0,
            loads: 0,
            stores: 0,
            branches: 0,
            mispredicts: 0,
            issue_wait_cycles: 0,
            fetch_redirects: 0,
            stop: StopReason::OutOfProgram,
        };

        loop {
            if let Some(stop) = limits.stop_pc {
                if state.pc == stop {
                    result.stop = StopReason::StopPc;
                    break;
                }
            }
            if limits.max_instrs > 0 && result.retired >= limits.max_instrs {
                result.stop = StopReason::InstrLimit;
                break;
            }
            let pc = state.pc;
            let uop_idx = if pc < base_pc || !(pc - base_pc).is_multiple_of(4) {
                usize::MAX
            } else {
                ((pc - base_pc) / 4) as usize
            };
            let Some(uop) = uops.get(uop_idx) else {
                result.stop = StopReason::OutOfProgram;
                break;
            };

            // ---- fetch ----
            if fetched_this_cycle >= cfg.fetch_width {
                fetch_cycle += 1;
                fetched_this_cycle = 0;
            }
            let my_fetch = fetch_cycle;
            fetched_this_cycle += 1;

            // ---- dispatch: frontend depth + ROB space ----
            // `result.retired` is this instruction's dynamic index: the ring
            // slot it reuses holds the commit time of the instruction
            // `rob_size` back (the entry an equally-sized FIFO would pop).
            let mut dispatch = my_fetch + cfg.frontend_depth;
            if result.retired >= rob_size {
                let freed = scratch.rob_ring[(result.retired % rob_size) as usize];
                dispatch = dispatch.max(freed);
            }

            // ---- operand readiness ----
            let mut ready = dispatch;
            for &src in &uop.srcs[..usize::from(uop.nsrcs)] {
                ready = ready.max(reg_ready[usize::from(src)]);
            }

            // ---- functional execution (values, branch outcome, address) ----
            let info = step(state, &uop.instr, mem.data_mut());

            // ---- issue: FU + issue bandwidth ----
            let class = uop.class;
            let pool: &mut Vec<u64> = match uop.pool {
                1 => &mut scratch.muldiv_free,
                2 => &mut scratch.fp_free,
                3 => &mut scratch.mem_free,
                _ => &mut scratch.alu_free,
            };
            let unit = pool
                .iter()
                .enumerate()
                .min_by_key(|(_, &t)| t)
                .map(|(i, _)| i)
                .expect("unit pool nonempty");
            let mut issue = ready.max(pool[unit]);

            // Issue-bandwidth ring: at most issue_width issues per cycle.
            // Slots from earlier runs carry a stale generation tag and read
            // as zero.
            loop {
                // Advance ring base if the window moved far ahead.
                if issue < issue_ring_base {
                    issue = issue_ring_base;
                }
                while issue >= issue_ring_base + ISSUE_RING as u64 {
                    let idx = (issue_ring_base % ISSUE_RING as u64) as usize;
                    issue_ring[idx] = gen_tag;
                    issue_ring_base += 1;
                }
                let idx = (issue % ISSUE_RING as u64) as usize;
                let slot = issue_ring[idx];
                let count = if slot & !SLOT_COUNT_MASK == gen_tag { slot & SLOT_COUNT_MASK } else { 0 };
                if count < u64::from(cfg.issue_width) {
                    issue_ring[idx] = gen_tag | (count + 1);
                    break;
                }
                issue += 1;
            }
            result.issue_wait_cycles += issue - ready;

            // ---- execute latency ----
            let (latency, mem_latency, occupancy) = match class {
                OpClass::Load => {
                    let acc = mem.access(
                        requester,
                        info.mem.expect("load has access").addr,
                        false,
                        issue,
                    );
                    (acc.total, Some(acc.total), 1)
                }
                OpClass::Store => {
                    // Stores drain from the store buffer after commit; the
                    // producing instruction's "result" (store complete) is
                    // cheap, but the cache access still occupies a port and
                    // updates timing state.
                    let acc = mem.access(
                        requester,
                        info.mem.expect("store has access").addr,
                        true,
                        issue,
                    );
                    (1, Some(acc.total), 1)
                }
                OpClass::IntDiv | OpClass::FpDiv => {
                    let l = uop.base_latency;
                    (l, None, l) // unpipelined
                }
                OpClass::System => {
                    // Serializing; syscalls cost a fixed pipeline drain.
                    let l = if matches!(info.outcome, Outcome::Syscall) { 200 } else { 1 };
                    (l, None, 1)
                }
                _ => (uop.base_latency, None, 1),
            };
            pool[unit] = issue + occupancy;
            let complete = issue + latency;

            // ---- writeback ----
            if uop.dest != NO_DEST {
                reg_ready[usize::from(uop.dest)] = complete;
            }

            // ---- branch resolution / fetch redirect ----
            match info.outcome {
                Outcome::Branch { taken, target } => {
                    result.branches += 1;
                    let correct = predictor.update(pc, taken, target);
                    if !correct {
                        result.mispredicts += 1;
                        let redirect = complete + cfg.mispredict_penalty;
                        if redirect > fetch_cycle {
                            result.fetch_redirects += 1;
                            fetch_cycle = redirect;
                            fetched_this_cycle = 0;
                        }
                    }
                }
                Outcome::Jump { .. }
                    // Direct jumps resolve in decode; JALR may redirect.
                    if uop.is_jalr => {
                        let redirect = complete + 1;
                        if redirect > fetch_cycle {
                            result.fetch_redirects += 1;
                            fetch_cycle = redirect;
                            fetched_this_cycle = 0;
                        }
                    }
                _ => {}
            }

            // ---- in-order commit ----
            // The commit ring reuses the slot of the instruction
            // `commit_width` back: at most commit_width commits per cycle.
            let mut commit = complete.max(last_commit);
            let commit_slot = (result.retired % commit_width) as usize;
            if result.retired >= commit_width {
                commit = commit.max(scratch.commit_ring[commit_slot] + 1);
            }
            scratch.commit_ring[commit_slot] = commit;
            last_commit = commit;
            scratch.rob_ring[(result.retired % rob_size) as usize] = commit;

            result.retired += 1;
            match class {
                OpClass::Load => result.loads += 1,
                OpClass::Store => result.stores += 1,
                _ => {}
            }

            monitor.on_retire(&RetireEvent {
                pc,
                instr: uop.instr,
                info,
                mem_latency,
                complete_cycle: complete,
                commit_cycle: commit,
            });

            if matches!(info.outcome, Outcome::Halt) {
                result.stop = StopReason::Halted;
                break;
            }
        }

        result.cycles = last_commit;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesa_isa::{Asm, Xlen};
    use mesa_isa::reg::abi::*;
    use mesa_mem::MemConfig;

    fn run_program(build: impl FnOnce(&mut Asm)) -> (RunResult, ArchState) {
        let mut a = Asm::new(0x1000);
        build(&mut a);
        let p = a.finish().unwrap();
        let mut core = OoOCore::new(CoreConfig::default());
        let mut st = ArchState::new(0x1000, Xlen::Rv32);
        let mut mem = MemorySystem::new(MemConfig::default(), 1);
        let r = core.run(&p, &mut st, &mut mem, 0, RunLimits::none(), &mut NullMonitor);
        (r, st)
    }

    #[test]
    fn straightline_ilp_exceeds_one_ipc() {
        let (r, st) = run_program(|a| {
            // 32 independent adds.
            for _ in 0..8 {
                a.addi(T0, ZERO, 1);
                a.addi(T1, ZERO, 2);
                a.addi(T2, ZERO, 3);
                a.addi(T3, ZERO, 4);
            }
        });
        assert_eq!(r.retired, 32);
        assert!(r.ipc() > 1.5, "ipc = {}", r.ipc());
        assert_eq!(st.read(T3), 4);
    }

    #[test]
    fn dependent_chain_is_serial() {
        let (r, st) = run_program(|a| {
            for _ in 0..32 {
                a.addi(T0, T0, 1);
            }
        });
        assert_eq!(st.read(T0), 32);
        // A 32-long dependence chain takes at least 32 cycles.
        assert!(r.cycles >= 32, "cycles = {}", r.cycles);
    }

    #[test]
    fn loop_executes_correct_iteration_count() {
        let (r, st) = run_program(|a| {
            a.li(T0, 0);
            a.li(T1, 100);
            a.label("loop");
            a.addi(T0, T0, 1);
            a.bne(T0, T1, "loop");
        });
        assert_eq!(st.read(T0), 100);
        assert_eq!(r.branches, 100);
        // Loop branch should predict well: few mispredicts.
        assert!(r.mispredicts <= 4, "mispredicts = {}", r.mispredicts);
    }

    #[test]
    fn loads_see_memory_latency() {
        // Pointer-chasing loads (dependent) are slow; independent loads
        // overlap. Compare the two.
        let chain = {
            let mut a = Asm::new(0x1000);
            a.li(A0, 0x10000);
            for _ in 0..16 {
                a.lw(A0, A0, 0); // A0 = mem[A0] = 0 → all same line after first
            }
            a.finish().unwrap()
        };
        let indep = {
            let mut a = Asm::new(0x1000);
            a.li(A0, 0x10000);
            for i in 0..16 {
                a.lw(T0, A0, i * 4);
            }
            a.finish().unwrap()
        };
        let mut core = OoOCore::new(CoreConfig::default());
        let mut mem = MemorySystem::new(MemConfig::default(), 1);
        let mut st = ArchState::new(0x1000, Xlen::Rv32);
        let r_chain = core.run(&chain, &mut st, &mut mem, 0, RunLimits::none(), &mut NullMonitor);
        let mut mem = MemorySystem::new(MemConfig::default(), 1);
        let mut st = ArchState::new(0x1000, Xlen::Rv32);
        let r_indep = core.run(&indep, &mut st, &mut mem, 0, RunLimits::none(), &mut NullMonitor);
        assert!(
            r_chain.cycles > r_indep.cycles,
            "chain {} should exceed independent {}",
            r_chain.cycles,
            r_indep.cycles
        );
    }

    #[test]
    fn halt_stops_run() {
        let (r, _) = run_program(|a| {
            a.li(A7, 93);
            a.ecall();
            a.addi(T0, T0, 1); // never reached
        });
        assert_eq!(r.stop, StopReason::Halted);
        assert_eq!(r.retired, 2); // li a7 (one addi) + ecall
    }

    #[test]
    fn stop_pc_halts_before_executing() {
        let mut a = Asm::new(0x1000);
        a.addi(T0, T0, 1);
        a.addi(T0, T0, 1);
        a.addi(T0, T0, 1);
        let p = a.finish().unwrap();
        let mut core = OoOCore::new(CoreConfig::default());
        let mut st = ArchState::new(0x1000, Xlen::Rv32);
        let mut mem = MemorySystem::new(MemConfig::default(), 1);
        let limits = RunLimits { max_instrs: 0, stop_pc: Some(0x1008) };
        let r = core.run(&p, &mut st, &mut mem, 0, limits, &mut NullMonitor);
        assert_eq!(r.stop, StopReason::StopPc);
        assert_eq!(r.retired, 2);
        assert_eq!(st.read(T0), 2);
    }

    #[test]
    fn instr_limit_respected() {
        let (r, _) = run_program_with_limit();
        assert_eq!(r.stop, StopReason::InstrLimit);
        assert_eq!(r.retired, 10);
    }

    fn run_program_with_limit() -> (RunResult, ArchState) {
        let mut a = Asm::new(0x1000);
        a.label("spin");
        a.addi(T0, T0, 1);
        a.jal(ZERO, "spin");
        let p = a.finish().unwrap();
        let mut core = OoOCore::new(CoreConfig::default());
        let mut st = ArchState::new(0x1000, Xlen::Rv32);
        let mut mem = MemorySystem::new(MemConfig::default(), 1);
        let r = core.run(&p, &mut st, &mut mem, 0, RunLimits::instrs(10), &mut NullMonitor);
        (r, st)
    }

    #[test]
    fn monitor_sees_every_retire_in_order() {
        struct Collect(Vec<u64>);
        impl RetireMonitor for Collect {
            fn on_retire(&mut self, e: &RetireEvent) {
                self.0.push(e.pc);
            }
        }
        let mut a = Asm::new(0x1000);
        a.addi(T0, T0, 1);
        a.addi(T0, T0, 1);
        let p = a.finish().unwrap();
        let mut core = OoOCore::new(CoreConfig::default());
        let mut st = ArchState::new(0x1000, Xlen::Rv32);
        let mut mem = MemorySystem::new(MemConfig::default(), 1);
        let mut mon = Collect(Vec::new());
        core.run(&p, &mut st, &mut mem, 0, RunLimits::none(), &mut mon);
        assert_eq!(mon.0, vec![0x1000, 0x1004]);
    }

    #[test]
    fn pipeline_counters_accumulate_and_register() {
        let (r, _) = run_program(|a| {
            a.li(A0, 0x10000);
            // 16 independent loads: 4 become ready per fetch cycle but
            // only mem_ports(=2) can issue, so some must wait.
            for i in 0..16 {
                a.lw(T0, A0, i * 4);
            }
        });
        assert!(r.issue_wait_cycles > 0, "issue_wait = {}", r.issue_wait_cycles);
        assert!(r.fetch_redirects <= r.mispredicts + r.branches);
        let mut reg = mesa_trace::MetricsRegistry::new();
        r.record_metrics(&mut reg, "cpu");
        assert_eq!(reg.counter("cpu.retired"), r.retired);
        assert_eq!(reg.counter("cpu.issue_wait_cycles"), r.issue_wait_cycles);
        assert_eq!(reg.counter("cpu.fetch_redirects"), r.fetch_redirects);
    }

    #[test]
    fn pipeline_stats_absorb_sums_chunked_runs() {
        let (r, _) = run_program(|a| {
            a.li(A0, 0x10000);
            for i in 0..8 {
                a.lw(T0, A0, i * 4);
            }
        });
        let mut acc = PipelineStats::default();
        acc.absorb(&r);
        acc.absorb(&r);
        assert_eq!(acc.cycles, 2 * r.cycles);
        assert_eq!(acc.retired, 2 * r.retired);
        assert_eq!(acc.loads, 2 * r.loads);
        assert_eq!(acc.issue_wait_cycles, 2 * r.issue_wait_cycles);
        assert!((acc.ipc() - r.ipc()).abs() < 1e-12);
        let mut reg = mesa_trace::MetricsRegistry::new();
        acc.record_metrics(&mut reg, "phase");
        assert_eq!(reg.counter("phase.cycles"), acc.cycles);
    }

    #[test]
    fn mispredict_penalty_slows_unpredictable_branches() {
        // Branch on the low bit of a xorshift-ish sequence: unpredictable.
        let build = |taken_pattern: bool| {
            let mut a = Asm::new(0x1000);
            a.li(S0, 0);
            a.li(S1, 64);
            a.li(S2, 0x5DEECE6);
            a.label("loop");
            if taken_pattern {
                // Data-dependent branch over a pseudo-random bit.
                a.srli(T1, S2, 1);
                a.xor(S2, S2, T1);
                a.andi(T2, S2, 1);
                a.beq(T2, ZERO, "skip");
            } else {
                // Always-taken comparison with the same instruction count.
                a.srli(T1, S2, 1);
                a.xor(S2, S2, T1);
                a.andi(T2, S2, 1);
                a.blt(T2, ZERO, "skip"); // never taken: perfectly predictable
            }
            a.addi(T3, T3, 1);
            a.label("skip");
            a.addi(S0, S0, 1);
            a.bne(S0, S1, "loop");
            a.finish().unwrap()
        };
        let run = |p: &mesa_isa::Program| {
            let mut core = OoOCore::new(CoreConfig::default());
            let mut st = ArchState::new(0x1000, Xlen::Rv32);
            let mut mem = MemorySystem::new(MemConfig::default(), 1);
            core.run(p, &mut st, &mut mem, 0, RunLimits::none(), &mut NullMonitor)
        };
        let random = run(&build(true));
        let steady = run(&build(false));
        assert!(random.mispredicts > steady.mispredicts);
    }
}
