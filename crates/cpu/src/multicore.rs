//! Multicore execution over a shared memory system.
//!
//! Models the paper's 16-core baseline: each core runs its slice of an
//! OpenMP-parallel region against private L1s and the shared banked L2.
//! Cores are simulated one after another (their timing interacts only
//! through shared cache state and bank schedules), which is the standard
//! approximation for throughput-oriented data-parallel loops.

use crate::{CoreConfig, NullMonitor, OoOCore, RunLimits, RunResult};
use mesa_isa::{ArchState, Program};
use mesa_mem::{MemConfig, MemorySystem};
use mesa_trace::{NullTracer, Subsystem, Tracer};

/// Result of a multicore run.
#[derive(Debug, Clone)]
pub struct MulticoreResult {
    /// Per-core results, indexed by core ID.
    pub per_core: Vec<RunResult>,
    /// Per-core final architectural state, indexed by core ID (the
    /// live-out registers differential tests compare against a
    /// single-core golden run).
    pub final_states: Vec<ArchState>,
    /// Wall-clock cycles: the slowest core.
    pub cycles: u64,
    /// Total instructions retired across all cores.
    pub retired: u64,
}

impl MulticoreResult {
    /// Aggregate throughput in instructions per cycle.
    #[must_use]
    pub fn aggregate_ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycles as f64
        }
    }
}

/// A pool of identical out-of-order cores over one shared [`MemorySystem`].
#[derive(Debug)]
pub struct Multicore {
    cores: Vec<OoOCore>,
    mem: MemorySystem,
}

impl Multicore {
    /// Builds `n` cores of configuration `core_cfg` sharing a memory
    /// system configured by `mem_cfg`.
    #[must_use]
    pub fn new(core_cfg: CoreConfig, mem_cfg: MemConfig, n: usize) -> Self {
        Multicore {
            cores: (0..n).map(|_| OoOCore::new(core_cfg)).collect(),
            mem: MemorySystem::new(mem_cfg, n),
        }
    }

    /// Number of cores.
    #[must_use]
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// The shared memory system (for workload data setup).
    pub fn mem_mut(&mut self) -> &mut MemorySystem {
        &mut self.mem
    }

    /// Runs `program` on every core, with per-core initial state produced
    /// by `make_state(core_id)` (the workload's static iteration split).
    ///
    /// Returns per-core timing; wall-clock time is the slowest core.
    pub fn run_parallel(
        &mut self,
        program: &Program,
        make_state: impl FnMut(usize) -> ArchState,
        limits: RunLimits,
    ) -> MulticoreResult {
        self.run_parallel_traced(program, make_state, limits, &mut NullTracer)
    }

    /// [`run_parallel`](Self::run_parallel) with tracing: emits one
    /// `multicore.run_parallel` span covering the wall-clock window plus
    /// per-core cycle/retire counter samples.
    ///
    /// Per-core *spans* would overlap on the single CPU timeline (cores
    /// share one trace thread and all start at cycle 0), which breaks
    /// Chrome-trace begin/end nesting — so per-core data is emitted as
    /// counters instead.
    pub fn run_parallel_traced(
        &mut self,
        program: &Program,
        mut make_state: impl FnMut(usize) -> ArchState,
        limits: RunLimits,
        tracer: &mut dyn Tracer,
    ) -> MulticoreResult {
        let l2_before = self.mem.l2_stats().accesses();
        let dram_before = self.mem.dram_accesses();
        let mut per_core = Vec::with_capacity(self.cores.len());
        let mut final_states = Vec::with_capacity(self.cores.len());
        for (id, core) in self.cores.iter_mut().enumerate() {
            // Bank schedules model self-contention within one timeline;
            // cross-core pressure is the bandwidth bound below.
            self.mem.reset_bank_schedule();
            let mut state = make_state(id);
            let r = core.run(program, &mut state, &mut self.mem, id, limits, &mut NullMonitor);
            per_core.push(r);
            final_states.push(state);
        }
        let slowest = per_core.iter().map(|r| r.cycles).max().unwrap_or(0);
        let l2_demand = self.mem.l2_stats().accesses() - l2_before;
        let dram_demand = self.mem.dram_accesses() - dram_before;
        let cycles = slowest.max(self.mem.bandwidth_bound_cycles(l2_demand, dram_demand));
        let retired = per_core.iter().map(|r| r.retired).sum();
        if tracer.enabled() {
            tracer.span_begin(Subsystem::Cpu, "multicore.run_parallel", 0);
            for (id, r) in per_core.iter().enumerate() {
                tracer.counter(Subsystem::Cpu, &format!("core.{id}.cycles"), r.cycles, cycles);
                tracer.counter(Subsystem::Cpu, &format!("core.{id}.retired"), r.retired, cycles);
            }
            tracer.span_end(Subsystem::Cpu, "multicore.run_parallel", cycles);
        }
        MulticoreResult { per_core, final_states, cycles, retired }
    }

    /// Runs `program` on core 0 only (serial region / non-parallel
    /// benchmark), leaving the other cores idle.
    pub fn run_serial(
        &mut self,
        program: &Program,
        state: &mut ArchState,
        limits: RunLimits,
    ) -> RunResult {
        self.cores[0].run(program, state, &mut self.mem, 0, limits, &mut NullMonitor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesa_isa::{Asm, Xlen};
    use mesa_isa::reg::abi::*;

    /// sum over a slice of a shared array; each core gets a contiguous chunk.
    fn chunk_kernel() -> Program {
        let mut a = Asm::new(0x1000);
        a.label("loop");
        a.lw(T0, A0, 0);
        a.add(T1, T1, T0);
        a.addi(A0, A0, 4);
        a.bne(A0, A1, "loop");
        a.li(A7, 93);
        a.ecall();
        a.finish().unwrap()
    }

    #[test]
    fn parallel_beats_serial_on_data_parallel_loop() {
        const N: u64 = 4096;
        const BASE: u64 = 0x10_0000;

        let program = chunk_kernel();
        let make_mc = || {
            let mut mc = Multicore::new(CoreConfig::default(), MemConfig::default(), 8);
            for i in 0..N {
                mc.mem_mut().data_mut().store_u32(BASE + 4 * i, 1);
            }
            mc
        };

        // 8 cores, each 1/8 of the array.
        let mut mc = make_mc();
        let chunk = N / 8;
        let par = mc.run_parallel(
            &program,
            |id| {
                let mut st = ArchState::new(0x1000, Xlen::Rv32);
                st.write(A0, BASE + 4 * chunk * id as u64);
                st.write(A1, BASE + 4 * chunk * (id as u64 + 1));
                st
            },
            RunLimits::none(),
        );

        // Single core over the whole array.
        let mut mc = make_mc();
        let mut st = ArchState::new(0x1000, Xlen::Rv32);
        st.write(A0, BASE);
        st.write(A1, BASE + 4 * N);
        let ser = mc.run_serial(&program, &mut st, RunLimits::none());

        assert!(
            par.cycles * 3 < ser.cycles,
            "8 cores ({} cyc) should be well over 3x faster than 1 ({} cyc)",
            par.cycles,
            ser.cycles
        );
        assert_eq!(par.retired, ser.retired + 7 * 2); // 8x li/ecall pairs vs 1
    }

    #[test]
    fn wallclock_is_max_over_cores() {
        let program = chunk_kernel();
        const BASE: u64 = 0x10_0000;
        let mut mc = Multicore::new(CoreConfig::default(), MemConfig::default(), 2);
        for i in 0..1024u64 {
            mc.mem_mut().data_mut().store_u32(BASE + 4 * i, 1);
        }
        // Deliberately unbalanced split: core 0 gets 75%.
        let bounds = [(0u64, 768u64), (768, 1024)];
        let r = mc.run_parallel(
            &program,
            |id| {
                let mut st = ArchState::new(0x1000, Xlen::Rv32);
                st.write(A0, BASE + 4 * bounds[id].0);
                st.write(A1, BASE + 4 * bounds[id].1);
                st
            },
            RunLimits::none(),
        );
        assert_eq!(r.cycles, r.per_core.iter().map(|c| c.cycles).max().unwrap());
        assert!(r.per_core[0].cycles > r.per_core[1].cycles);
    }

    #[test]
    fn traced_run_emits_balanced_span_and_per_core_counters() {
        let program = chunk_kernel();
        const BASE: u64 = 0x10_0000;
        let mut mc = Multicore::new(CoreConfig::default(), MemConfig::default(), 2);
        for i in 0..256u64 {
            mc.mem_mut().data_mut().store_u32(BASE + 4 * i, 1);
        }
        let mut tracer = mesa_trace::RingTracer::new(256);
        let r = mc.run_parallel_traced(
            &program,
            |id| {
                let mut st = ArchState::new(0x1000, Xlen::Rv32);
                st.write(A0, BASE + 4 * 128 * id as u64);
                st.write(A1, BASE + 4 * 128 * (id as u64 + 1));
                st
            },
            RunLimits::none(),
            &mut tracer,
        );
        assert!(tracer.open_spans().is_empty());
        // span begin/end + 2 counters per core
        assert_eq!(tracer.len(), 2 + 2 * 2);
        let chrome = tracer.to_chrome_trace();
        let summary = mesa_trace::validate_chrome_trace(&chrome).expect("valid chrome trace");
        assert!(summary.span_names.iter().any(|n| n == "multicore.run_parallel"));
        assert!(r.cycles > 0);
    }
}
