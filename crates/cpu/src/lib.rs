//! Out-of-order CPU timing model for the MESA reproduction.
//!
//! * [`OoOCore`] — a one-pass out-of-order timing model (scoreboarded
//!   dataflow over an exact functional execution) standing in for the
//!   paper's gem5/BOOM baseline core.
//! * [`Multicore`] — N cores over a shared banked L2, the 16-core baseline
//!   of Fig. 11.
//! * [`LoopStreamDetector`] / [`TraceCache`] — the CPU-side hardware
//!   additions MESA requires (paper §4.1): loop detection at decode and a
//!   region-scoped trace cache feeding the LDFG builder.
//! * [`RetireMonitor`] — the observation interface MESA's controller hangs
//!   off; every retired instruction is reported with its measured latency.
//!
//! # Example
//!
//! ```
//! use mesa_cpu::{CoreConfig, NullMonitor, OoOCore, RunLimits};
//! use mesa_isa::{ArchState, Asm, Xlen, reg::abi::*};
//! use mesa_mem::{MemConfig, MemorySystem};
//!
//! let mut a = Asm::new(0x1000);
//! a.li(T1, 64);
//! a.label("loop");
//! a.addi(T0, T0, 1);
//! a.bne(T0, T1, "loop");
//! let prog = a.finish()?;
//!
//! let mut core = OoOCore::new(CoreConfig::boom_baseline());
//! let mut state = ArchState::new(0x1000, Xlen::Rv32);
//! let mut mem = MemorySystem::new(MemConfig::default(), 1);
//! let r = core.run(&prog, &mut state, &mut mem, 0, RunLimits::none(), &mut NullMonitor);
//! assert_eq!(state.read(T0), 64);
//! assert!(r.ipc() > 0.5);
//! # Ok::<(), mesa_isa::AsmError>(())
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod frontend;
pub mod multicore;
pub mod ooo;
pub mod predictor;

pub use config::CoreConfig;
pub use frontend::{LoopCandidate, LoopStreamDetector, RegionTooLarge, TraceCache};
pub use multicore::{Multicore, MulticoreResult};
pub use ooo::{
    NullMonitor, OoOCore, PipelineStats, RetireEvent, RetireMonitor, RunLimits, RunResult,
    StopReason,
};
pub use predictor::BranchPredictor;
