//! Branch prediction: gshare direction predictor + direct-mapped BTB.
//!
//! Loop-closing backward branches — the pattern MESA accelerates — predict
//! nearly perfectly after warmup, so the baseline core is not handicapped
//! unfairly in the comparison figures.

/// A gshare direction predictor with a branch target buffer.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    history: u64,
    history_bits: u32,
    counters: Vec<u8>,
    btb: Vec<Option<(u64, u64)>>, // (tag pc, target)
    hits: u64,
    misses: u64,
}

impl Default for BranchPredictor {
    fn default() -> Self {
        Self::new(12, 512)
    }
}

impl BranchPredictor {
    /// Creates a predictor with `history_bits` of global history (table of
    /// `2^history_bits` two-bit counters) and `btb_entries` BTB slots.
    ///
    /// # Panics
    /// Panics if `btb_entries` is zero or `history_bits > 20`.
    #[must_use]
    pub fn new(history_bits: u32, btb_entries: usize) -> Self {
        assert!(btb_entries > 0, "BTB must have at least one entry");
        assert!(history_bits <= 20, "history too long");
        BranchPredictor {
            history: 0,
            history_bits,
            counters: vec![2; 1 << history_bits], // weakly taken
            btb: vec![None; btb_entries],
            hits: 0,
            misses: 0,
        }
    }

    fn index(&self, pc: u64) -> usize {
        let mask = (1u64 << self.history_bits) - 1;
        (((pc >> 2) ^ self.history) & mask) as usize
    }

    /// Predicts the direction of the branch at `pc`.
    #[must_use]
    pub fn predict_taken(&self, pc: u64) -> bool {
        self.counters[self.index(pc)] >= 2
    }

    /// Predicted target from the BTB, if one is cached for `pc`.
    #[must_use]
    pub fn predict_target(&self, pc: u64) -> Option<u64> {
        let slot = (pc >> 2) as usize % self.btb.len();
        self.btb[slot].and_then(|(tag, tgt)| (tag == pc).then_some(tgt))
    }

    /// Trains on the resolved branch and reports whether the prediction was
    /// correct (direction *and*, for taken branches, target).
    pub fn update(&mut self, pc: u64, taken: bool, target: u64) -> bool {
        let predicted_taken = self.predict_taken(pc);
        let predicted_target = self.predict_target(pc);
        let correct = predicted_taken == taken && (!taken || predicted_target == Some(target));

        let idx = self.index(pc);
        let c = &mut self.counters[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        let mask = (1u64 << self.history_bits) - 1;
        self.history = ((self.history << 1) | u64::from(taken)) & mask;

        if taken {
            let slot = (pc >> 2) as usize % self.btb.len();
            self.btb[slot] = Some((pc, target));
        }

        if correct {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        correct
    }

    /// `(correct, incorrect)` prediction counts.
    #[must_use]
    pub fn accuracy_counts(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_branch_saturates_to_taken() {
        let mut p = BranchPredictor::default();
        let pc = 0x1000;
        for _ in 0..8 {
            p.update(pc, true, 0xF00);
        }
        assert!(p.predict_taken(pc));
        assert_eq!(p.predict_target(pc), Some(0xF00));
    }

    #[test]
    fn alternating_pattern_learned_by_history() {
        let mut p = BranchPredictor::new(4, 16);
        // Warm up a strict alternation; gshare should eventually track it.
        let pc = 0x2000;
        let mut correct_late = 0;
        for i in 0..200u32 {
            let taken = i % 2 == 0;
            let c = p.update(pc, taken, 0x100);
            if i >= 100 && c {
                correct_late += 1;
            }
        }
        assert!(correct_late > 80, "learned {correct_late}/100");
    }

    #[test]
    fn mispredict_counted() {
        let mut p = BranchPredictor::default();
        // Fresh counters are weakly-taken; a not-taken branch mispredicts.
        let correct = p.update(0x3000, false, 0);
        assert!(!correct);
        let (_, wrong) = p.accuracy_counts();
        assert_eq!(wrong, 1);
    }

    #[test]
    fn btb_tag_mismatch_is_miss() {
        let mut p = BranchPredictor::new(12, 4);
        p.update(0x1000, true, 0xAA0);
        // 0x1010 aliases to the same slot (4-entry BTB) but has another tag.
        assert_eq!(p.predict_target(0x1010), None);
    }
}
