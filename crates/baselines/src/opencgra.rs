//! An OpenCGRA-style baseline: an ahead-of-time CGRA mapper using
//! iterative modulo scheduling with time-multiplexed PEs.
//!
//! The paper compares MESA's spatially-mapped SDFG against a configuration
//! "scheduled by OpenCGRA" (Fig. 12). OpenCGRA's scheduler time-shares
//! each PE across `II` cycles (software-pipelined by construction), so its
//! per-iteration cost in steady state is the initiation interval — usually
//! a bit better than MESA's unoptimized barrier execution, which is
//! exactly the relationship Fig. 12 shows. MESA's loop-level optimizations
//! then reverse the comparison.

use mesa_accel::Operand;
use mesa_core::Ldfg;


/// Target CGRA parameters for the baseline scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CgraConfig {
    /// Grid rows.
    pub rows: usize,
    /// Grid columns.
    pub cols: usize,
    /// Concurrent memory ports.
    pub mem_ports: usize,
    /// Assumed transfer latency between dependent operations (the
    /// neighbor-hop cost folded into dependence edges).
    pub transfer_latency: u64,
    /// Largest initiation interval to try before giving up.
    pub max_ii: u64,
}

impl CgraConfig {
    /// A CGRA "similarly configured" to an accelerator with `pes`
    /// processing elements and `mem_ports` ports.
    #[must_use]
    pub fn similar_to(pes: usize, mem_ports: usize) -> Self {
        let cols = 8.min(pes);
        CgraConfig {
            rows: (pes / cols).max(1),
            cols,
            mem_ports: mem_ports.max(1),
            transfer_latency: 1,
            max_ii: 512,
        }
    }

    /// PE count.
    #[must_use]
    pub fn num_pes(&self) -> usize {
        self.rows * self.cols
    }
}

/// A modulo schedule produced by the baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Initiation interval: steady-state cycles per iteration.
    pub ii: u64,
    /// Time slot assigned to each node (cycle within the first iteration).
    pub slots: Vec<u64>,
    /// Schedule length (last slot + its latency).
    pub length: u64,
}

impl Schedule {
    /// Total cycles for `iterations` loop iterations under software
    /// pipelining: fill + steady state.
    #[must_use]
    pub fn cycles_for(&self, iterations: u64) -> u64 {
        if iterations == 0 {
            return 0;
        }
        self.length + (iterations - 1) * self.ii
    }

    /// Steady-state cycles per iteration.
    #[must_use]
    pub fn cycles_per_iteration(&self) -> u64 {
        self.ii
    }
}

/// Dependence edge latency: producer op latency + transfer.
fn edge_latency(ldfg: &Ldfg, producer: usize, cfg: &CgraConfig) -> u64 {
    ldfg.nodes[producer].op_weight + cfg.transfer_latency
}

/// Resource-minimum II: PEs are time-shared one op per cycle; memory is
/// limited by ports.
fn res_mii(ldfg: &Ldfg, cfg: &CgraConfig) -> u64 {
    let n = ldfg.len() as u64;
    let mem = ldfg
        .nodes
        .iter()
        .filter(|n| n.instr.class().is_mem())
        .count() as u64;
    let pe_bound = n.div_ceil(cfg.num_pes() as u64);
    let mem_bound = mem.div_ceil(cfg.mem_ports as u64);
    pe_bound.max(mem_bound).max(1)
}

/// Recurrence-minimum II from loop-carried chains: for a carried edge
/// `p → c` (distance 1), the intra-iteration path from `c` back to `p`
/// plus the edge latency must fit within II.
fn rec_mii(ldfg: &Ldfg, cfg: &CgraConfig) -> u64 {
    // Longest intra-iteration path ending at each node.
    let mut height = vec![0u64; ldfg.len()];
    for (i, node) in ldfg.nodes.iter().enumerate() {
        let mut h = 0;
        for src in &node.src {
            if let Operand::Node { idx, carried: false, .. } = *src {
                h = h.max(height[idx as usize] + edge_latency(ldfg, idx as usize, cfg));
            }
        }
        height[i] = h;
    }
    let mut mii = 1;
    for node in &ldfg.nodes {
        for src in &node.src {
            if let Operand::Node { idx, carried: true, .. } = *src {
                // Path: start of consumer … producer completes, wraps once.
                let p = idx as usize;
                let cycle_latency = height[p] + ldfg.nodes[p].op_weight + cfg.transfer_latency;
                mii = mii.max(cycle_latency);
            }
        }
    }
    mii
}

/// Attempts a modulo schedule at the given II. Returns per-node time slots
/// on success.
fn try_schedule(ldfg: &Ldfg, cfg: &CgraConfig, ii: u64) -> Option<Vec<u64>> {
    let n = ldfg.len();
    // Resource table: ops per modulo slot (PE budget) and memory ports per
    // modulo slot.
    let mut pe_used = vec![0usize; ii as usize];
    let mut mem_used = vec![0usize; ii as usize];
    let mut slots = vec![0u64; n];

    for (i, node) in ldfg.nodes.iter().enumerate() {
        // Earliest slot from intra-iteration dependences.
        let mut earliest = 0u64;
        for src in &node.src {
            match *src {
                Operand::Node { idx, carried: false, .. } => {
                    earliest = earliest
                        .max(slots[idx as usize] + edge_latency(ldfg, idx as usize, cfg));
                }
                Operand::Node { idx, carried: true, .. } => {
                    // slot(c) >= slot(p) + lat(p) - II (distance 1).
                    let p = idx as usize;
                    let need = (slots.get(p).copied().unwrap_or(0)
                        + edge_latency(ldfg, p, cfg))
                    .saturating_sub(ii);
                    // Only meaningful when p was already scheduled (p < i);
                    // self/backward edges are checked after placement.
                    if p < i {
                        earliest = earliest.max(need);
                    }
                }
                _ => {}
            }
        }

        // Find a slot with free resources within one full wrap.
        let is_mem = node.instr.class().is_mem();
        let mut placed = false;
        for t in earliest..earliest + ii {
            let m = (t % ii) as usize;
            let pe_ok = pe_used[m] < cfg.num_pes();
            let mem_ok = !is_mem || mem_used[m] < cfg.mem_ports;
            if pe_ok && mem_ok {
                pe_used[m] += 1;
                if is_mem {
                    mem_used[m] += 1;
                }
                slots[i] = t;
                placed = true;
                break;
            }
        }
        if !placed {
            return None;
        }
    }

    // Verify carried edges against the final slots.
    for (i, node) in ldfg.nodes.iter().enumerate() {
        for src in &node.src {
            if let Operand::Node { idx, carried: true, .. } = *src {
                let p = idx as usize;
                // Consumer in iteration k+1 runs at slots[i] + II.
                if slots[i] + ii < slots[p] + edge_latency(ldfg, p, cfg) {
                    return None;
                }
            }
        }
        let _ = i;
    }
    Some(slots)
}

/// Runs iterative modulo scheduling: MII upward until a feasible schedule
/// is found.
#[must_use]
pub fn schedule(ldfg: &Ldfg, cfg: &CgraConfig) -> Option<Schedule> {
    let mii = res_mii(ldfg, cfg).max(rec_mii(ldfg, cfg));
    for ii in mii..=cfg.max_ii {
        if let Some(slots) = try_schedule(ldfg, cfg, ii) {
            let length = slots
                .iter()
                .zip(&ldfg.nodes)
                .map(|(&s, n)| s + n.op_weight)
                .max()
                .unwrap_or(0);
            return Some(Schedule { ii, slots, length });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesa_isa::Asm;
    use mesa_isa::reg::abi::*;

    fn ldfg(f: impl FnOnce(&mut Asm)) -> Ldfg {
        let mut a = Asm::new(0x1000);
        f(&mut a);
        Ldfg::build(&a.finish().unwrap()).unwrap()
    }

    fn sum_ldfg() -> Ldfg {
        ldfg(|a| {
            a.label("loop");
            a.lw(T0, A0, 0);
            a.add(T1, T1, T0);
            a.addi(A0, A0, 4);
            a.bne(A0, A1, "loop");
        })
    }

    #[test]
    fn schedules_simple_loop() {
        let l = sum_ldfg();
        let cfg = CgraConfig::similar_to(128, 4);
        let s = schedule(&l, &cfg).expect("schedulable");
        assert!(s.ii >= 1);
        // Recurrence-bound loops may legally have length < II.
        assert!(s.length >= 1);
        // Dependences respected: add after load.
        assert!(s.slots[1] >= s.slots[0] + l.nodes[0].op_weight);
    }

    #[test]
    fn ii_respects_memory_port_bound() {
        // 8 loads per iteration on a 2-port CGRA → II ≥ 4.
        let l = ldfg(|a| {
            a.label("loop");
            for i in 0..8 {
                a.lw(T0, A0, i * 4);
            }
            a.addi(A0, A0, 32);
            a.bne(A0, A1, "loop");
        });
        let cfg = CgraConfig { mem_ports: 2, ..CgraConfig::similar_to(64, 2) };
        let s = schedule(&l, &cfg).unwrap();
        assert!(s.ii >= 4, "ii = {}", s.ii);
    }

    #[test]
    fn ii_respects_recurrence() {
        // A carried multiply chain: acc = acc * x (mul latency 3) forces a
        // recurrence-bound II.
        let l = ldfg(|a| {
            a.label("loop");
            a.mul(T1, T1, T2);
            a.addi(T0, T0, 1);
            a.bne(T0, A1, "loop");
        });
        let cfg = CgraConfig::similar_to(128, 4);
        let s = schedule(&l, &cfg).unwrap();
        assert!(s.ii >= 3, "recurrence must bound ii, got {}", s.ii);
    }

    #[test]
    fn small_grid_forces_time_sharing() {
        // 12 independent adds on a 4-PE CGRA → II ≥ ceil(14/4) = 4.
        let l = ldfg(|a| {
            a.label("loop");
            for _ in 0..12 {
                a.addi(T1, T1, 1);
            }
            a.addi(T0, T0, 1);
            a.bne(T0, A1, "loop");
        });
        let cfg = CgraConfig { rows: 2, cols: 2, mem_ports: 2, transfer_latency: 1, max_ii: 512 };
        let s = schedule(&l, &cfg).unwrap();
        assert!(s.ii >= 4, "ii = {}", s.ii);
    }

    #[test]
    fn cycles_for_amortizes_fill() {
        let l = sum_ldfg();
        let cfg = CgraConfig::similar_to(128, 4);
        let s = schedule(&l, &cfg).unwrap();
        assert_eq!(s.cycles_for(0), 0);
        assert_eq!(s.cycles_for(1), s.length);
        assert_eq!(s.cycles_for(1000), s.length + 999 * s.ii);
    }
}
