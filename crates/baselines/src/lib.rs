//! Comparison baselines for the MESA reproduction.
//!
//! * [`opencgra`] — an ahead-of-time CGRA mapper in the OpenCGRA mold:
//!   iterative modulo scheduling over time-multiplexed PEs (the Fig. 12
//!   comparison).
//! * [`dynaspam`] — a DynaSpAM-style in-pipeline 1-D feedforward fabric
//!   with nanosecond-range JIT configuration (the Fig. 14 comparison).
//! * [`dora`] — a DORA-style software DBT with millisecond configuration
//!   and compiler-grade optimization (the Table 2 trade-off).
//!
//! Both consume the same [`mesa_core::Ldfg`] the MESA controller builds,
//! so comparisons see identical dependence structure.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dora;
pub mod dynaspam;
pub mod opencgra;

pub use dora::{DoraConfig, DoraMapping};
pub use dynaspam::{Disqualified, DynaspamConfig, DynaspamMapping};
pub use opencgra::{schedule as opencgra_schedule, CgraConfig, Schedule};
