//! A DORA-style baseline: software dynamic binary translation on a helper
//! core targeting a 2-D spatial fabric (Watkins et al., HPCA 2016).
//!
//! DORA is "more similar to a traditional compiler but executed alongside
//! the CPU" (paper §2): it spends *milliseconds* of configuration time and
//! in exchange applies compiler-grade optimizations — vectorization,
//! unrolling, and loop deepening (Table 2). This model gives it a
//! near-optimal software-pipelined schedule (better than MESA's greedy
//! one-pass mapping) behind a configuration cost six orders of magnitude
//! larger than MESA's, which is exactly the trade-off the paper's
//! "balanced middle ground" claim is about.

use mesa_accel::Operand;
use mesa_core::Ldfg;

/// DORA parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DoraConfig {
    /// Configuration cost in cycles. The paper quotes milliseconds; at
    /// 2 GHz that is 10⁶–10⁷ cycles.
    pub config_cycles: u64,
    /// Iterations fused per fabric pass by unrolling.
    pub unroll: u64,
    /// Contiguous loads coalesced per vector access.
    pub vector_width: u64,
    /// PEs on the target fabric.
    pub pes: usize,
    /// Memory ports on the target fabric.
    pub mem_ports: u64,
}

impl Default for DoraConfig {
    fn default() -> Self {
        DoraConfig {
            config_cycles: 4_000_000, // 2 ms at 2 GHz
            unroll: 8,
            vector_width: 4,
            pes: 128,
            mem_ports: 4,
        }
    }
}

/// The schedule DORA's software translator produces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DoraMapping {
    /// Steady-state cycles per original (pre-unroll) iteration.
    pub cycles_per_iteration: f64,
    /// One-time configuration cost.
    pub config_cycles: u64,
}

impl DoraMapping {
    /// Total cycles for `iterations` iterations, configuration included.
    #[must_use]
    pub fn cycles_for(&self, iterations: u64) -> u64 {
        self.config_cycles + (self.cycles_per_iteration * iterations as f64).ceil() as u64
    }
}

/// Maps a loop with DORA's compiler-grade pipeline.
///
/// The steady-state rate is the best of the three classic bounds —
/// recurrence, compute resources, memory bandwidth — with unrolling
/// amortizing per-iteration control and vectorization widening memory.
#[must_use]
pub fn map(ldfg: &Ldfg, cfg: &DoraConfig) -> DoraMapping {
    // Recurrence bound: longest carried chain per iteration (unrolling
    // cannot shrink a true recurrence).
    let mut height = vec![0u64; ldfg.len()];
    for (i, node) in ldfg.nodes.iter().enumerate() {
        let mut h = 0;
        for src in &node.src {
            if let Operand::Node { idx, carried: false, .. } = *src {
                h = h.max(height[idx as usize] + ldfg.nodes[idx as usize].op_weight);
            }
        }
        height[i] = h;
    }
    // True data recurrences bound the rate; induction recurrences are
    // strength-reduced across the unrolled copies (one `i += k*stride`
    // per fabric pass), so they amortize by the unroll factor.
    let induction = ldfg.induction_nodes();
    let mut rec_data = 0u64;
    let mut rec_induction = 0u64;
    for node in &ldfg.nodes {
        for src in &node.src {
            if let Operand::Node { idx, carried: true, .. } = *src {
                let p = idx as usize;
                let len = height[p] + ldfg.nodes[p].op_weight;
                if induction.contains(&idx) {
                    rec_induction = rec_induction.max(len);
                } else {
                    rec_data = rec_data.max(len);
                }
            }
        }
    }
    let rec = (rec_data as f64).max(rec_induction as f64 / cfg.unroll as f64);

    // Resource bound: ops per iteration over the PE budget (time-shared).
    let compute_bound = ldfg.len() as f64 / cfg.pes as f64;

    // Memory bound: vectorized accesses over the ports.
    let mem_ops = ldfg
        .nodes
        .iter()
        .filter(|n| n.instr.class().is_mem())
        .count() as f64;
    let mem_bound = (mem_ops / cfg.vector_width as f64) / cfg.mem_ports as f64;

    // Unrolling amortizes the induction/branch overhead (roughly the
    // non-recurrence serial slack) across fused iterations.
    let control_overhead = 2.0 / cfg.unroll as f64;

    let cycles_per_iteration =
        rec.max(compute_bound.max(mem_bound) + control_overhead).max(0.25);
    DoraMapping { cycles_per_iteration, config_cycles: cfg.config_cycles }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesa_isa::reg::abi::*;
    use mesa_isa::Asm;

    fn ldfg(f: impl FnOnce(&mut Asm)) -> Ldfg {
        let mut a = Asm::new(0x1000);
        f(&mut a);
        Ldfg::build(&a.finish().unwrap()).unwrap()
    }

    fn stream_loop() -> Ldfg {
        ldfg(|a| {
            a.label("loop");
            a.lw(T0, A0, 0);
            a.slli(T1, T0, 1);
            a.sw(T1, A4, 0);
            a.addi(A0, A0, 4);
            a.addi(A4, A4, 4);
            a.bltu(A0, A1, "loop");
        })
    }

    #[test]
    fn steady_state_is_fast_but_config_is_huge() {
        let m = map(&stream_loop(), &DoraConfig::default());
        assert!(m.cycles_per_iteration < 3.0, "{}", m.cycles_per_iteration);
        assert!(m.config_cycles >= 1_000_000, "ms-range configuration");
    }

    #[test]
    fn recurrence_bound_respected() {
        // acc = acc * x chains a 3-cycle multiply: no unrolling escapes it.
        let l = ldfg(|a| {
            a.label("loop");
            a.mul(T1, T1, T2);
            a.addi(T0, T0, 1);
            a.bne(T0, A1, "loop");
        });
        let m = map(&l, &DoraConfig::default());
        assert!(m.cycles_per_iteration >= 3.0, "{}", m.cycles_per_iteration);
    }

    #[test]
    fn config_dominates_short_runs() {
        let m = map(&stream_loop(), &DoraConfig::default());
        let short = m.cycles_for(1000);
        assert!(
            short as f64 > 0.99 * m.config_cycles as f64,
            "1000 iterations are noise next to the ms-range configuration"
        );
    }

    #[test]
    fn wider_vectors_help_memory_bound_loops() {
        let l = ldfg(|a| {
            a.label("loop");
            for i in 0..8 {
                a.lw(T0, A0, i * 4);
            }
            a.addi(A0, A0, 32);
            a.bltu(A0, A1, "loop");
        });
        let narrow = map(&l, &DoraConfig { vector_width: 1, ..Default::default() });
        let wide = map(&l, &DoraConfig { vector_width: 4, ..Default::default() });
        assert!(wide.cycles_per_iteration < narrow.cycles_per_iteration);
    }
}
