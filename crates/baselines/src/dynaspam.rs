//! A DynaSpAM-style baseline: dynamic mapping of instruction traces onto a
//! small 1-D feedforward fabric inside the CPU pipeline (Liu et al.,
//! ISCA 2015).
//!
//! DynaSpAM reuses the out-of-order scheduler to map traces onto a
//! feedforward CGRA embedded in the core, reconfiguring in nanoseconds but
//! limited to the core's memory ports, the fabric's slot count, and no
//! loop-level (tiling) optimizations — the qualitative profile Fig. 14
//! compares MESA against. With speculation enabled, iterations pipeline
//! subject to recurrences and port pressure.

use mesa_accel::Operand;
use mesa_core::Ldfg;


/// Fabric parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynaspamConfig {
    /// Instruction slots in the feedforward fabric.
    pub slots: usize,
    /// Memory ports shared with the core's LSU.
    pub mem_ports: usize,
    /// Configuration cost in cycles (JIT, nanosecond range).
    pub config_cycles: u64,
    /// Whether iteration speculation (pipelining) is enabled.
    pub speculation: bool,
}

impl Default for DynaspamConfig {
    fn default() -> Self {
        DynaspamConfig { slots: 64, mem_ports: 2, config_cycles: 64, speculation: true }
    }
}

/// Mapping outcome for one loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynaspamMapping {
    /// Dataflow critical path of one iteration on the fabric.
    pub iteration_latency: u64,
    /// Steady-state initiation interval with speculation.
    pub ii: u64,
    /// One-time configuration cost.
    pub config_cycles: u64,
}

impl DynaspamMapping {
    /// Total cycles for `iterations` iterations.
    #[must_use]
    pub fn cycles_for(&self, iterations: u64) -> u64 {
        if iterations == 0 {
            return self.config_cycles;
        }
        self.config_cycles + self.iteration_latency + (iterations - 1) * self.ii
    }
}

/// Reasons a loop does not qualify for the in-pipeline fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disqualified {
    /// More instructions than fabric slots.
    TooLarge {
        /// Loop size.
        len: usize,
        /// Fabric capacity.
        slots: usize,
    },
}

/// Maps a loop onto the feedforward fabric.
///
/// # Errors
/// Returns [`Disqualified`] when the loop cannot be mapped (the paper
/// notes kernels like SRAD and B+Tree qualify on DynaSpAM but not MESA
/// and vice versa; size is the first-order filter here).
pub fn map(ldfg: &Ldfg, cfg: &DynaspamConfig) -> Result<DynaspamMapping, Disqualified> {
    if ldfg.len() > cfg.slots {
        return Err(Disqualified::TooLarge { len: ldfg.len(), slots: cfg.slots });
    }

    // Feedforward fabric: adjacent forwarding is free; each op costs its
    // latency; memory ops contend for the core's ports.
    let mut complete = vec![0u64; ldfg.len()];
    let mut port_free = vec![0u64; cfg.mem_ports];
    for (i, node) in ldfg.nodes.iter().enumerate() {
        let mut ready = 0u64;
        for src in &node.src {
            if let Operand::Node { idx, carried: false, .. } = *src {
                ready = ready.max(complete[idx as usize]);
            }
        }
        let is_mem = node.instr.class().is_mem();
        let start = if is_mem {
            let p = (0..port_free.len()).min_by_key(|&p| port_free[p]).expect("ports");
            let s = ready.max(port_free[p]);
            port_free[p] = s + 1;
            s
        } else {
            ready
        };
        complete[i] = start + node.op_weight;
    }
    let iteration_latency = complete.iter().copied().max().unwrap_or(0);

    // Initiation interval under speculation: bounded by recurrences and
    // port throughput; without speculation iterations serialize.
    let ii = if cfg.speculation {
        let mem_ops = ldfg
            .nodes
            .iter()
            .filter(|n| n.instr.class().is_mem())
            .count() as u64;
        let port_ii = mem_ops.div_ceil(cfg.mem_ports as u64);
        let mut rec_ii = 1u64;
        for node in &ldfg.nodes {
            for src in &node.src {
                if let Operand::Node { idx, carried: true, .. } = *src {
                    rec_ii = rec_ii.max(complete[idx as usize]);
                }
            }
        }
        port_ii.max(rec_ii).max(1)
    } else {
        iteration_latency.max(1)
    };

    Ok(DynaspamMapping { iteration_latency, ii, config_cycles: cfg.config_cycles })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesa_isa::Asm;
    use mesa_isa::reg::abi::*;

    fn ldfg(f: impl FnOnce(&mut Asm)) -> Ldfg {
        let mut a = Asm::new(0x1000);
        f(&mut a);
        Ldfg::build(&a.finish().unwrap()).unwrap()
    }

    #[test]
    fn maps_small_loop() {
        let l = ldfg(|a| {
            a.label("loop");
            a.lw(T0, A0, 0);
            a.add(T1, T1, T0);
            a.addi(A0, A0, 4);
            a.bne(A0, A1, "loop");
        });
        let m = map(&l, &DynaspamConfig::default()).unwrap();
        assert!(m.iteration_latency > 0);
        assert!(m.ii <= m.iteration_latency);
    }

    #[test]
    fn oversized_loop_disqualified() {
        let l = ldfg(|a| {
            a.label("loop");
            for _ in 0..70 {
                a.addi(T1, T1, 1);
            }
            a.addi(T0, T0, 1);
            a.bne(T0, A1, "loop");
        });
        let err = map(&l, &DynaspamConfig::default()).unwrap_err();
        assert_eq!(err, Disqualified::TooLarge { len: 72, slots: 64 });
    }

    #[test]
    fn speculation_pipelines_iterations() {
        // A deep non-carried chain (load → mul → mul) with a shallow
        // recurrence (induction only) benefits from pipelining.
        let l = ldfg(|a| {
            a.label("loop");
            a.lw(T0, A0, 0);
            a.mul(T3, T0, T2);
            a.mul(T3, T3, T0);
            a.addi(A0, A0, 4);
            a.bne(A0, A1, "loop");
        });
        let spec = map(&l, &DynaspamConfig::default()).unwrap();
        let nospec = map(
            &l,
            &DynaspamConfig { speculation: false, ..Default::default() },
        )
        .unwrap();
        assert!(spec.cycles_for(1000) < nospec.cycles_for(1000));
        assert_eq!(nospec.ii, nospec.iteration_latency);
    }

    #[test]
    fn config_cost_is_nanosecond_scale() {
        // DynaSpAM's JIT reconfiguration is in the ns range — orders of
        // magnitude below MESA's 10^3–10^4 cycles (Table 2).
        let cfg = DynaspamConfig::default();
        assert!(cfg.config_cycles < 1000);
    }

    #[test]
    fn port_pressure_bounds_ii() {
        let l = ldfg(|a| {
            a.label("loop");
            for i in 0..6 {
                a.lw(T0, A0, i * 4);
            }
            a.addi(A0, A0, 24);
            a.bne(A0, A1, "loop");
        });
        let m = map(&l, &DynaspamConfig::default()).unwrap();
        assert!(m.ii >= 3, "6 loads / 2 ports → ii ≥ 3, got {}", m.ii);
    }
}
