//! Property tests for the cache model's two storage forms: the flat
//! set-major array (small caches, per-access hot path) and the sparse
//! touched-sets map (big caches, O(1) construction) must be
//! observationally identical — same hit/miss results, same evictions,
//! same statistics — under any interleaving of accesses, probes,
//! invalidations, and flushes.

use mesa_mem::{Cache, CacheConfig};
use mesa_test::{forall, prop_assert, prop_assert_eq, Checker, Rng};

/// Persisted counterexample seeds, replayed before novel cases.
const REGRESSIONS: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/cache_proptest.proptest-regressions");

fn checker(name: &str) -> Checker {
    Checker::new(name).cases(64).regressions_file(REGRESSIONS)
}

#[test]
fn flat_and_sparse_storage_agree() {
    forall!(
        checker("cache::flat_and_sparse_storage_agree"),
        |(seed in 0u64..1 << 48, sets_log in 1u32..6, ways in 1usize..9, ops in 32usize..256)| {
            let line = 64usize;
            let cfg = CacheConfig {
                size: (1 << sets_log) * ways * line,
                ways,
                line,
                hit_latency: 1,
            };
            let mut flat = Cache::with_forced_storage(cfg, false);
            let mut sparse = Cache::with_forced_storage(cfg, true);

            let mut rng = Rng::seed_from_u64(seed);
            for _ in 0..ops {
                // Address pool sized ~4x the cache so evictions happen often.
                let addr = u64::from(rng.next_u32()) % (4 * cfg.size as u64);
                match rng.next_u32() % 16 {
                    0 => {
                        prop_assert_eq!(flat.probe(addr), sparse.probe(addr));
                    }
                    1 => {
                        prop_assert_eq!(flat.invalidate(addr), sparse.invalidate(addr));
                    }
                    2 => {
                        flat.flush();
                        sparse.flush();
                    }
                    k => {
                        let is_write = k % 2 == 0;
                        prop_assert_eq!(flat.access(addr, is_write), sparse.access(addr, is_write));
                    }
                }
                prop_assert_eq!(flat.stats(), sparse.stats());
            }

            // Final state sweep: every line the flat cache holds, the sparse
            // one holds too (and vice versa).
            for probe_addr in (0..4 * cfg.size as u64).step_by(line) {
                prop_assert!(flat.probe(probe_addr) == sparse.probe(probe_addr));
            }
        }
    );
}
