//! Memory subsystem models for the MESA reproduction.
//!
//! * [`SparseMemory`] — page-granular functional backing store implementing
//!   [`mesa_isa::MemoryIo`].
//! * [`Cache`] / [`CacheConfig`] — set-associative timing model (LRU,
//!   write-back, write-allocate).
//! * [`MemorySystem`] — per-requester L1s over a banked shared L2 and flat
//!   DRAM; used by both the multicore CPU baseline and the accelerator.
//! * [`AmatTable`] — the per-instruction average-memory-access-time
//!   counters MESA's performance model consumes (paper §3.1).
//!
//! # Example
//!
//! ```
//! use mesa_mem::{MemConfig, MemorySystem, ServedBy};
//!
//! let mut sys = MemorySystem::new(MemConfig::default(), 1);
//! sys.data_mut().store_u32(0x1000, 42);
//! let cold = sys.access(0, 0x1000, false, 0);
//! let warm = sys.access(0, 0x1000, false, cold.total);
//! assert_eq!(cold.served_by, ServedBy::Dram);
//! assert_eq!(warm.served_by, ServedBy::L1);
//! assert!(warm.total < cold.total);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod amat;
pub mod cache;
pub mod sparse;
pub mod system;

pub use amat::{AmatEntry, AmatTable};
pub use cache::{AccessResult, Cache, CacheConfig, CacheStats};
pub use sparse::SparseMemory;
pub use system::{AccessLatency, MemConfig, MemTraffic, MemorySystem, ServedBy};
