//! Set-associative cache timing model (LRU, write-back, write-allocate).
//!
//! Only *timing* is modelled here — data always lives in the
//! [`crate::SparseMemory`] backing store. This matches the paper's
//! methodology (§6.1), where caches determine latency while functional
//! values come from the simulator state.

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes.
    pub line: usize,
    /// Hit latency in cycles.
    pub hit_latency: u64,
}

impl CacheConfig {
    /// 64 KiB, 8-way, 64 B lines, 3-cycle hit — the paper's per-core L1.
    #[must_use]
    pub fn l1_64k() -> Self {
        CacheConfig { size: 64 << 10, ways: 8, line: 64, hit_latency: 3 }
    }

    /// 8 MiB, 16-way, 64 B lines, 18-cycle hit — the paper's unified L2.
    #[must_use]
    pub fn l2_8m() -> Self {
        CacheConfig { size: 8 << 20, ways: 16, line: 64, hit_latency: 18 }
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    /// Panics if the geometry is degenerate (zero sets or non-power-of-two
    /// line size).
    #[must_use]
    pub fn num_sets(&self) -> usize {
        assert!(self.line.is_power_of_two(), "line size must be a power of two");
        let sets = self.size / (self.ways * self.line);
        assert!(sets > 0, "cache must have at least one set");
        sets
    }
}

/// Hit/miss statistics for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand accesses that hit.
    pub hits: u64,
    /// Demand accesses that missed.
    pub misses: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
}

impl CacheStats {
    /// Miss rate in `[0, 1]`; zero when no accesses occurred.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Total demand accesses.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }
}

/// What an access did, as seen by this level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// `true` when the line was present.
    pub hit: bool,
    /// `true` when a dirty victim was evicted (costs a writeback below).
    pub evicted_dirty: bool,
}

/// Per-line state. An all-default line (`valid == false`) is an empty way.
#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    last_used: u64,
}

/// Sets whose slot count is at or below this live in flat, set-major
/// arrays; above it, only touched sets are materialized. The boundary
/// (16 K slots ≈ a 1 MiB direct-mapped or 64 KiB 16-way geometry) keeps
/// every per-core L1 flat while the 8 MiB L2 goes sparse.
const SPARSE_SLOT_THRESHOLD: usize = 1 << 14;

/// Backing storage for the line state: flat for small caches (the L1s —
/// the per-access hot path), sparse for big ones (the L2). A fresh
/// `Cache::new(l2_8m())` used to clone-initialize megabytes of line
/// state, which dominated short simulation runs that build a
/// [`crate::MemorySystem`] per run; the sparse form makes construction
/// O(1) and `flush` O(touched sets) while making exactly the same
/// hit/miss/eviction decisions (an absent set *is* a set of invalid
/// lines).
#[derive(Debug, Clone)]
enum SetStore {
    /// `lines[set * ways + way]`, every set materialized.
    Flat { lines: Vec<Line> },
    /// Touched sets only, keyed by set index.
    Sparse { sets: std::collections::HashMap<u64, Box<[Line]>, crate::sparse::PageHasherBuild> },
}

/// One level of set-associative cache (timing only).
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    num_sets: usize,
    store: SetStore,
    /// Most-recently-hit way per set. Purely a lookup accelerator: the hint
    /// may go stale (invalidate/flush/eviction) so it is revalidated against
    /// the line's `valid` bit and tag before use; a wrong hint only costs
    /// the normal associative scan.
    mru_way: Vec<u32>,
    stats: CacheStats,
    tick: u64,
}

impl Cache {
    /// Builds an empty cache from its geometry.
    #[must_use]
    pub fn new(cfg: CacheConfig) -> Self {
        let num_sets = cfg.num_sets();
        let slots = num_sets * cfg.ways;
        let store = if slots <= SPARSE_SLOT_THRESHOLD {
            SetStore::Flat { lines: vec![Line::default(); slots] }
        } else {
            SetStore::Sparse { sets: std::collections::HashMap::default() }
        };
        Cache {
            cfg,
            num_sets,
            store,
            mru_way: vec![0; num_sets],
            stats: CacheStats::default(),
            tick: 0,
        }
    }

    /// Builds the cache with the given storage form regardless of geometry.
    ///
    /// Only for the flat-vs-sparse equivalence property tests — the two
    /// forms must be observationally identical, and this lets the test pit
    /// them against each other on the same geometry.
    #[doc(hidden)]
    #[must_use]
    pub fn with_forced_storage(cfg: CacheConfig, sparse: bool) -> Self {
        let num_sets = cfg.num_sets();
        let store = if sparse {
            SetStore::Sparse { sets: std::collections::HashMap::default() }
        } else {
            SetStore::Flat { lines: vec![Line::default(); num_sets * cfg.ways] }
        };
        Cache {
            cfg,
            num_sets,
            store,
            mru_way: vec![0; num_sets],
            stats: CacheStats::default(),
            tick: 0,
        }
    }

    /// The configured geometry.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets statistics (e.g. after warmup).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn index(&self, addr: u64) -> (usize, u64) {
        let line_addr = addr / self.cfg.line as u64;
        let set = (line_addr % self.num_sets as u64) as usize;
        let tag = line_addr / self.num_sets as u64;
        (set, tag)
    }

    /// Performs a demand access, filling on miss. Returns whether it hit and
    /// whether a dirty line was displaced.
    pub fn access(&mut self, addr: u64, is_write: bool) -> AccessResult {
        self.tick += 1;
        let tick = self.tick;
        let (set_idx, tag) = self.index(addr);
        let ways = self.cfg.ways;
        let set: &mut [Line] = match &mut self.store {
            SetStore::Flat { lines } => &mut lines[set_idx * ways..(set_idx + 1) * ways],
            SetStore::Sparse { sets } => sets
                .entry(set_idx as u64)
                .or_insert_with(|| vec![Line::default(); ways].into_boxed_slice()),
        };

        // Fast path: re-hit on the most recently used way of this set
        // (the common case for the simulators' streaming access patterns).
        // Tags are unique within a set, so hitting via the hint is
        // indistinguishable from hitting via the scan below.
        let hint = self.mru_way[set_idx] as usize;
        if let Some(line) = set.get_mut(hint) {
            if line.valid && line.tag == tag {
                line.last_used = tick;
                line.dirty |= is_write;
                self.stats.hits += 1;
                return AccessResult { hit: true, evicted_dirty: false };
            }
        }

        if let Some((way, line)) =
            set.iter_mut().enumerate().find(|(_, l)| l.valid && l.tag == tag)
        {
            line.last_used = tick;
            line.dirty |= is_write;
            self.stats.hits += 1;
            self.mru_way[set_idx] = way as u32;
            return AccessResult { hit: true, evicted_dirty: false };
        }

        self.stats.misses += 1;
        // Victim: invalid line first, else LRU.
        let (victim_way, victim) = set
            .iter_mut()
            .enumerate()
            .min_by_key(|(_, l)| if l.valid { l.last_used + 1 } else { 0 })
            .expect("cache set is never empty");
        let evicted_dirty = victim.valid && victim.dirty;
        if evicted_dirty {
            self.stats.writebacks += 1;
        }
        *victim = Line { tag, valid: true, dirty: is_write, last_used: tick };
        self.mru_way[set_idx] = victim_way as u32;
        AccessResult { hit: false, evicted_dirty }
    }

    /// The set's lines, if materialized (a missing sparse set holds only
    /// invalid lines, so "absent" and "all-invalid" are interchangeable).
    fn set_lines(&self, set_idx: usize) -> Option<&[Line]> {
        match &self.store {
            SetStore::Flat { lines } => {
                Some(&lines[set_idx * self.cfg.ways..(set_idx + 1) * self.cfg.ways])
            }
            SetStore::Sparse { sets } => sets.get(&(set_idx as u64)).map(|s| &s[..]),
        }
    }

    /// Probes without filling or updating stats (used for snooping /
    /// invalidation checks).
    #[must_use]
    pub fn probe(&self, addr: u64) -> bool {
        let (set_idx, tag) = self.index(addr);
        self.set_lines(set_idx)
            .is_some_and(|set| set.iter().any(|l| l.valid && l.tag == tag))
    }

    /// Invalidates the line containing `addr`, if present. Returns whether a
    /// line was dropped.
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let (set_idx, tag) = self.index(addr);
        let set: &mut [Line] = match &mut self.store {
            SetStore::Flat { lines } => {
                &mut lines[set_idx * self.cfg.ways..(set_idx + 1) * self.cfg.ways]
            }
            SetStore::Sparse { sets } => match sets.get_mut(&(set_idx as u64)) {
                Some(set) => set,
                None => return false,
            },
        };
        for line in set {
            if line.valid && line.tag == tag {
                line.valid = false;
                line.dirty = false;
                return true;
            }
        }
        false
    }

    /// Invalidates the whole cache (keeps statistics).
    pub fn flush(&mut self) {
        match &mut self.store {
            SetStore::Flat { lines } => {
                for line in lines {
                    line.valid = false;
                    line.dirty = false;
                }
            }
            SetStore::Sparse { sets } => sets.clear(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets, 2 ways, 16 B lines = 128 B.
        Cache::new(CacheConfig { size: 128, ways: 2, line: 16, hit_latency: 1 })
    }

    #[test]
    fn geometry() {
        assert_eq!(CacheConfig::l1_64k().num_sets(), 128);
        assert_eq!(CacheConfig::l2_8m().num_sets(), 8192);
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x100, false).hit);
        assert!(c.access(0x100, false).hit);
        assert!(c.access(0x108, false).hit, "same 16B line");
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_eviction() {
        let mut c = tiny();
        // Three distinct lines mapping to the same set (stride = sets*line = 64).
        c.access(0x000, false);
        c.access(0x040, false);
        c.access(0x000, false); // touch 0x000 so 0x040 is LRU
        c.access(0x080, false); // evicts 0x040
        assert!(c.probe(0x000));
        assert!(!c.probe(0x040));
        assert!(c.probe(0x080));
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let mut c = tiny();
        c.access(0x000, true);
        c.access(0x040, false);
        let r = c.access(0x080, false); // evicts dirty 0x000
        assert!(r.evicted_dirty);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn invalidate_and_flush() {
        let mut c = tiny();
        c.access(0x100, true);
        assert!(c.invalidate(0x100));
        assert!(!c.probe(0x100));
        c.access(0x100, false);
        c.access(0x200, false);
        c.flush();
        assert!(!c.probe(0x100));
        assert!(!c.probe(0x200));
    }

    #[test]
    fn write_marks_dirty_on_hit() {
        let mut c = tiny();
        c.access(0x000, false);
        c.access(0x000, true); // now dirty
        c.access(0x040, false);
        let r = c.access(0x080, false);
        assert!(r.evicted_dirty, "the written line must have become dirty");
    }

    #[test]
    fn miss_rate() {
        let mut c = tiny();
        assert_eq!(c.stats().miss_rate(), 0.0);
        c.access(0x0, false);
        c.access(0x0, false);
        c.access(0x0, false);
        c.access(0x0, false);
        assert!((c.stats().miss_rate() - 0.25).abs() < 1e-12);
    }
}
