//! The shared memory system: per-requester L1 caches over a banked, shared
//! L2 and a flat-latency DRAM.
//!
//! Both the multicore CPU baseline and the spatial accelerator issue their
//! accesses through a [`MemorySystem`]; the accelerator's limited
//! memory-port count (the knee in the paper's Fig. 15 PE-scaling study)
//! is modelled at the accelerator side, while bank contention on the shared
//! L2 is modelled here.

use crate::{Cache, CacheConfig, CacheStats, SparseMemory};
use mesa_trace::{MetricsRegistry, Subsystem, Tracer};

/// Parameters of the whole memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemConfig {
    /// Per-requester L1 geometry.
    pub l1: CacheConfig,
    /// Shared L2 geometry.
    pub l2: CacheConfig,
    /// DRAM access latency in cycles (beyond the L2 lookup).
    pub dram_latency: u64,
    /// Number of independently-busy L2 banks.
    pub l2_banks: usize,
    /// Cycles a bank stays busy per request (throughput limit).
    pub l2_bank_occupancy: u64,
    /// Cycles one DRAM channel is busy per line fill.
    pub dram_occupancy: u64,
    /// Independent DRAM channels.
    pub dram_channels: usize,
}

impl Default for MemConfig {
    fn default() -> Self {
        // 64 KB L1 + unified 8 MB L2, as configured in the paper (§6.1).
        MemConfig {
            l1: CacheConfig::l1_64k(),
            l2: CacheConfig::l2_8m(),
            dram_latency: 120,
            l2_banks: 8,
            l2_bank_occupancy: 4,
            dram_occupancy: 16,
            dram_channels: 2,
        }
    }
}

/// Latency breakdown of one access (for AMAT accounting and debugging).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessLatency {
    /// Total cycles from issue to data available.
    pub total: u64,
    /// Where the access was served from.
    pub served_by: ServedBy,
    /// Extra cycles spent waiting for a busy L2 bank.
    pub bank_wait: u64,
}

/// The level that supplied the data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedBy {
    /// L1 hit.
    L1,
    /// L1 miss, L2 hit.
    L2,
    /// Missed both levels; DRAM supplied the line.
    Dram,
}

/// Aggregate traffic totals across the whole hierarchy — monotonic
/// counters suitable for phase attribution by snapshot/diff.
///
/// Capture one [`MemorySystem::traffic`] at a phase boundary and subtract
/// with [`MemTraffic::since`] to get the traffic of just that phase; this
/// is how the harness keeps warmup traffic out of the accelerated-phase
/// energy numbers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemTraffic {
    /// Total L1 accesses, summed over requesters.
    pub l1_accesses: u64,
    /// Total L1 misses, summed over requesters.
    pub l1_misses: u64,
    /// Shared-L2 accesses.
    pub l2_accesses: u64,
    /// Shared-L2 misses.
    pub l2_misses: u64,
    /// DRAM line fills.
    pub dram_accesses: u64,
}

impl MemTraffic {
    /// The traffic accumulated since `earlier` (saturating, so a stats
    /// reset in between reads as zero rather than wrapping).
    #[must_use]
    pub fn since(&self, earlier: &MemTraffic) -> MemTraffic {
        MemTraffic {
            l1_accesses: self.l1_accesses.saturating_sub(earlier.l1_accesses),
            l1_misses: self.l1_misses.saturating_sub(earlier.l1_misses),
            l2_accesses: self.l2_accesses.saturating_sub(earlier.l2_accesses),
            l2_misses: self.l2_misses.saturating_sub(earlier.l2_misses),
            dram_accesses: self.dram_accesses.saturating_sub(earlier.dram_accesses),
        }
    }

    /// Registers the totals as counters named `<prefix>.l1_accesses` etc.
    pub fn record_metrics(&self, reg: &mut MetricsRegistry, prefix: &str) {
        reg.add(&format!("{prefix}.l1_accesses"), self.l1_accesses);
        reg.add(&format!("{prefix}.l1_misses"), self.l1_misses);
        reg.add(&format!("{prefix}.l2_accesses"), self.l2_accesses);
        reg.add(&format!("{prefix}.l2_misses"), self.l2_misses);
        reg.add(&format!("{prefix}.dram_accesses"), self.dram_accesses);
    }

    /// Emits the totals as counter events on the memory timeline at
    /// `cycle`.
    pub fn trace_counters(&self, tracer: &mut dyn Tracer, cycle: u64) {
        if !tracer.enabled() {
            return;
        }
        tracer.counter(Subsystem::Memory, "mem.l1_accesses", self.l1_accesses, cycle);
        tracer.counter(Subsystem::Memory, "mem.l1_misses", self.l1_misses, cycle);
        tracer.counter(Subsystem::Memory, "mem.l2_accesses", self.l2_accesses, cycle);
        tracer.counter(Subsystem::Memory, "mem.l2_misses", self.l2_misses, cycle);
        tracer.counter(Subsystem::Memory, "mem.dram_accesses", self.dram_accesses, cycle);
    }
}

/// A multi-requester two-level memory system over sparse backing storage.
///
/// Requester IDs index the private L1s: the multicore baseline uses one per
/// core; the accelerator uses one as its shared data port.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    cfg: MemConfig,
    data: SparseMemory,
    l1s: Vec<Cache>,
    l2: Cache,
    bank_free_at: Vec<u64>,
    dram_accesses: u64,
}

impl MemorySystem {
    /// Builds a system with `requesters` private L1 caches.
    #[must_use]
    pub fn new(cfg: MemConfig, requesters: usize) -> Self {
        MemorySystem {
            cfg,
            data: SparseMemory::new(),
            l1s: (0..requesters).map(|_| Cache::new(cfg.l1)).collect(),
            l2: Cache::new(cfg.l2),
            bank_free_at: vec![0; cfg.l2_banks.max(1)],
            dram_accesses: 0,
        }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Number of requesters (private L1s).
    #[must_use]
    pub fn requesters(&self) -> usize {
        self.l1s.len()
    }

    /// The functional backing store.
    pub fn data_mut(&mut self) -> &mut SparseMemory {
        &mut self.data
    }

    /// Immutable view of the backing store.
    #[must_use]
    pub fn data(&self) -> &SparseMemory {
        &self.data
    }

    /// Timing for an access by `requester` to `addr` at cycle `now`.
    ///
    /// # Panics
    /// Panics if `requester` is out of range.
    pub fn access(&mut self, requester: usize, addr: u64, is_write: bool, now: u64) -> AccessLatency {
        let l1 = &mut self.l1s[requester];
        let l1_result = l1.access(addr, is_write);
        if l1_result.hit {
            return AccessLatency {
                total: self.cfg.l1.hit_latency,
                served_by: ServedBy::L1,
                bank_wait: 0,
            };
        }

        // L1 miss → L2, with bank contention.
        let bank = (addr / self.cfg.l2.line as u64) as usize % self.bank_free_at.len();
        let ready = now + self.cfg.l1.hit_latency;
        let start = ready.max(self.bank_free_at[bank]);
        let bank_wait = start - ready;
        self.bank_free_at[bank] = start + self.cfg.l2_bank_occupancy;

        let l2_result = self.l2.access(addr, is_write);
        if l2_result.hit {
            AccessLatency {
                total: self.cfg.l1.hit_latency + bank_wait + self.cfg.l2.hit_latency,
                served_by: ServedBy::L2,
                bank_wait,
            }
        } else {
            self.dram_accesses += 1;
            AccessLatency {
                total: self.cfg.l1.hit_latency
                    + bank_wait
                    + self.cfg.l2.hit_latency
                    + self.cfg.dram_latency,
                served_by: ServedBy::Dram,
                bank_wait,
            }
        }
    }

    /// Statistics for requester `id`'s L1.
    #[must_use]
    pub fn l1_stats(&self, id: usize) -> CacheStats {
        self.l1s[id].stats()
    }

    /// Shared L2 statistics.
    #[must_use]
    pub fn l2_stats(&self) -> CacheStats {
        self.l2.stats()
    }

    /// Total DRAM line fills.
    #[must_use]
    pub fn dram_accesses(&self) -> u64 {
        self.dram_accesses
    }

    /// Current aggregate traffic totals across the whole hierarchy.
    #[must_use]
    pub fn traffic(&self) -> MemTraffic {
        let mut t = MemTraffic { dram_accesses: self.dram_accesses, ..MemTraffic::default() };
        for l1 in &self.l1s {
            let s = l1.stats();
            t.l1_accesses += s.accesses();
            t.l1_misses += s.misses;
        }
        let l2 = self.l2.stats();
        t.l2_accesses = l2.accesses();
        t.l2_misses = l2.misses;
        t
    }

    /// Registers per-level statistics into `reg` under `<prefix>.…`:
    /// aggregate traffic plus per-requester L1 hit/miss/writeback counts.
    pub fn record_metrics(&self, reg: &mut MetricsRegistry, prefix: &str) {
        self.traffic().record_metrics(reg, prefix);
        for (id, l1) in self.l1s.iter().enumerate() {
            let s = l1.stats();
            reg.add(&format!("{prefix}.l1.{id}.hits"), s.hits);
            reg.add(&format!("{prefix}.l1.{id}.misses"), s.misses);
            reg.add(&format!("{prefix}.l1.{id}.writebacks"), s.writebacks);
        }
        let l2 = self.l2.stats();
        reg.add(&format!("{prefix}.l2.hits"), l2.hits);
        reg.add(&format!("{prefix}.l2.misses"), l2.misses);
        reg.add(&format!("{prefix}.l2.writebacks"), l2.writebacks);
    }

    /// Clears the L2 bank busy schedule.
    ///
    /// Each requester's timeline starts at cycle 0 when cores are simulated
    /// one after another, so the bank schedule models *self*-contention only
    /// and must be reset between requester timelines. Cross-requester
    /// contention is applied as an aggregate bandwidth bound (see
    /// [`bandwidth_bound_cycles`](Self::bandwidth_bound_cycles)).
    pub fn reset_bank_schedule(&mut self) {
        self.bank_free_at.fill(0);
    }

    /// The minimum number of cycles the *shared* L2 and DRAM need to serve
    /// `l2_accesses` L1-miss requests and `dram_fills` line fills — the
    /// bandwidth roofline applied on top of per-core latencies for
    /// multicore runs.
    #[must_use]
    pub fn bandwidth_bound_cycles(&self, l2_accesses: u64, dram_fills: u64) -> u64 {
        let l2 = l2_accesses * self.cfg.l2_bank_occupancy / self.cfg.l2_banks.max(1) as u64;
        let dram = dram_fills * self.cfg.dram_occupancy / self.cfg.dram_channels.max(1) as u64;
        l2.max(dram)
    }

    /// Invalidates all cache state (e.g. between benchmark runs) while
    /// keeping the functional data.
    pub fn flush_caches(&mut self) {
        for l1 in &mut self.l1s {
            l1.flush();
        }
        self.l2.flush();
        self.bank_free_at.fill(0);
    }

    /// Resets all statistics.
    pub fn reset_stats(&mut self) {
        for l1 in &mut self.l1s {
            l1.reset_stats();
        }
        self.l2.reset_stats();
        self.dram_accesses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> MemorySystem {
        MemorySystem::new(MemConfig::default(), 2)
    }

    #[test]
    fn first_touch_goes_to_dram() {
        let mut m = sys();
        let lat = m.access(0, 0x1000, false, 0);
        assert_eq!(lat.served_by, ServedBy::Dram);
        assert_eq!(lat.total, 3 + 18 + 120);
    }

    #[test]
    fn second_touch_hits_l1() {
        let mut m = sys();
        m.access(0, 0x1000, false, 0);
        let lat = m.access(0, 0x1000, false, 10);
        assert_eq!(lat.served_by, ServedBy::L1);
        assert_eq!(lat.total, 3);
    }

    #[test]
    fn sharing_through_l2() {
        let mut m = sys();
        m.access(0, 0x1000, false, 0);
        // Other requester misses its L1 but hits the shared L2.
        let lat = m.access(1, 0x1000, false, 200);
        assert_eq!(lat.served_by, ServedBy::L2);
    }

    #[test]
    fn bank_contention_adds_wait() {
        let mut m = sys();
        // Two back-to-back misses to the same bank at the same cycle.
        let a = m.access(0, 0x0000, false, 0);
        let b = m.access(1, 0x0000, false, 0);
        assert_eq!(a.bank_wait, 0);
        assert_eq!(b.bank_wait, m.config().l2_bank_occupancy);
        assert!(b.total > a.total - 120, "second access delayed");
    }

    #[test]
    fn different_banks_no_contention() {
        let mut m = sys();
        let a = m.access(0, 0x0000, false, 0);
        let b = m.access(1, 0x0040, false, 0); // next line → next bank
        assert_eq!(a.bank_wait, 0);
        assert_eq!(b.bank_wait, 0);
    }

    #[test]
    fn traffic_snapshots_diff_cleanly() {
        let mut m = sys();
        m.access(0, 0x1000, false, 0); // L1 miss, L2 miss, DRAM
        let warmup = m.traffic();
        assert_eq!(warmup.l1_accesses, 1);
        assert_eq!(warmup.dram_accesses, 1);
        m.access(0, 0x1000, false, 10); // L1 hit
        m.access(1, 0x1000, false, 20); // L1 miss, L2 hit
        let phase = m.traffic().since(&warmup);
        assert_eq!(phase.l1_accesses, 2);
        assert_eq!(phase.l1_misses, 1);
        assert_eq!(phase.l2_accesses, 1);
        assert_eq!(phase.l2_misses, 0);
        assert_eq!(phase.dram_accesses, 0);
    }

    #[test]
    fn record_metrics_registers_all_levels() {
        let mut m = sys();
        m.access(0, 0x1000, false, 0);
        m.access(0, 0x1000, true, 10);
        let mut reg = mesa_trace::MetricsRegistry::new();
        m.record_metrics(&mut reg, "mem");
        assert_eq!(reg.counter("mem.l1_accesses"), 2);
        assert_eq!(reg.counter("mem.l1.0.hits"), 1);
        assert_eq!(reg.counter("mem.dram_accesses"), 1);
        assert_eq!(reg.counter("mem.l2.misses"), 1);
    }

    #[test]
    fn flush_retains_data_but_drops_lines() {
        let mut m = sys();
        m.data_mut().store_u32(0x1000, 7);
        m.access(0, 0x1000, false, 0);
        m.flush_caches();
        let lat = m.access(0, 0x1000, false, 0);
        assert_eq!(lat.served_by, ServedBy::Dram);
        assert_eq!(m.data_mut().load_u32(0x1000), 7);
    }
}
