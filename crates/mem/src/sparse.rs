//! Page-granular sparse backing store.
//!
//! Workload footprints are megabytes against a 64-bit address space, so the
//! functional state is held in 4 KiB pages allocated on first touch. Reads
//! of untouched memory return zero, matching a zero-initialized heap.

use mesa_isa::MemoryIo;
use std::collections::HashMap;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// Sparse byte-addressable memory with 4 KiB page granularity.
///
/// ```
/// use mesa_mem::SparseMemory;
/// use mesa_isa::MemoryIo;
/// let mut m = SparseMemory::new();
/// m.store(0x1000, 4, 0xDEAD_BEEF);
/// assert_eq!(m.load(0x1000, 4), 0xDEAD_BEEF);
/// assert_eq!(m.load(0x2000, 8), 0); // untouched reads as zero
/// ```
#[derive(Debug, Clone, Default)]
pub struct SparseMemory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl SparseMemory {
    /// Creates an empty memory.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pages touched so far (footprint / 4 KiB).
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    fn read_byte(&self, addr: u64) -> u8 {
        self.pages
            .get(&(addr >> PAGE_SHIFT))
            .map_or(0, |p| p[(addr as usize) & (PAGE_SIZE - 1)])
    }

    fn write_byte(&mut self, addr: u64, value: u8) {
        let page = self
            .pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0; PAGE_SIZE]));
        page[(addr as usize) & (PAGE_SIZE - 1)] = value;
    }

    /// Writes a `u32` little-endian (test/workload setup convenience).
    pub fn store_u32(&mut self, addr: u64, value: u32) {
        self.store(addr, 4, u64::from(value));
    }

    /// Reads a `u32` little-endian.
    pub fn load_u32(&mut self, addr: u64) -> u32 {
        self.load(addr, 4) as u32
    }

    /// Writes an `f32`'s bits little-endian.
    pub fn store_f32(&mut self, addr: u64, value: f32) {
        self.store_u32(addr, value.to_bits());
    }

    /// Reads an `f32` from its bits.
    pub fn load_f32(&mut self, addr: u64) -> f32 {
        f32::from_bits(self.load_u32(addr))
    }
}

impl MemoryIo for SparseMemory {
    fn load(&mut self, addr: u64, width: u8) -> u64 {
        let mut v = 0u64;
        for i in 0..width {
            v |= u64::from(self.read_byte(addr.wrapping_add(u64::from(i)))) << (8 * i);
        }
        v
    }

    fn store(&mut self, addr: u64, width: u8, value: u64) {
        for i in 0..width {
            self.write_byte(addr.wrapping_add(u64::from(i)), (value >> (8 * i)) as u8);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialized() {
        let mut m = SparseMemory::new();
        assert_eq!(m.load(0xDEAD_0000, 8), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn cross_page_access() {
        let mut m = SparseMemory::new();
        let addr = 0x1FFE; // straddles the 0x1000/0x2000 page boundary
        m.store(addr, 4, 0xAABB_CCDD);
        assert_eq!(m.load(addr, 4), 0xAABB_CCDD);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn partial_overwrite() {
        let mut m = SparseMemory::new();
        m.store(0x100, 8, 0x1122_3344_5566_7788);
        m.store(0x102, 2, 0xFFFF);
        assert_eq!(m.load(0x100, 8), 0x1122_3344_FFFF_7788);
    }

    #[test]
    fn f32_roundtrip() {
        let mut m = SparseMemory::new();
        m.store_f32(0x40, 3.25);
        assert_eq!(m.load_f32(0x40), 3.25);
    }
}
