//! Page-granular sparse backing store.
//!
//! Workload footprints are megabytes against a 64-bit address space, so the
//! functional state is held in 4 KiB pages allocated on first touch. Reads
//! of untouched memory return zero, matching a zero-initialized heap.

use mesa_isa::MemoryIo;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// Multiply–xorshift hasher for page numbers.
///
/// The default SipHash dominated the simulators' memory path (one keyed
/// hash per *byte* before the per-access fast path below). Page numbers
/// are small, dense integers under our control — not attacker input — so
/// a single odd-constant multiply plus an xorshift to spread entropy into
/// the low bits (the bucket index) is collision-free in practice and an
/// order of magnitude cheaper.
#[derive(Debug, Clone, Copy, Default)]
pub struct PageHasher(u64);

impl Hasher for PageHasher {
    #[inline]
    fn finish(&self) -> u64 {
        let h = self.0;
        h ^ (h >> 32)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

/// `BuildHasher` for [`PageHasher`] — shared with the sparse cache-set
/// store in [`crate::cache`], which has the same small-dense-integer key
/// profile.
pub type PageHasherBuild = BuildHasherDefault<PageHasher>;

type PageMap = HashMap<u64, Box<[u8; PAGE_SIZE]>, PageHasherBuild>;

/// Sparse byte-addressable memory with 4 KiB page granularity.
///
/// ```
/// use mesa_mem::SparseMemory;
/// use mesa_isa::MemoryIo;
/// let mut m = SparseMemory::new();
/// m.store(0x1000, 4, 0xDEAD_BEEF);
/// assert_eq!(m.load(0x1000, 4), 0xDEAD_BEEF);
/// assert_eq!(m.load(0x2000, 8), 0); // untouched reads as zero
/// ```
#[derive(Debug, Clone, Default)]
pub struct SparseMemory {
    pages: PageMap,
}

impl SparseMemory {
    /// Creates an empty memory.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pages touched so far (footprint / 4 KiB).
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    fn read_byte(&self, addr: u64) -> u8 {
        self.pages
            .get(&(addr >> PAGE_SHIFT))
            .map_or(0, |p| p[(addr as usize) & (PAGE_SIZE - 1)])
    }

    fn write_byte(&mut self, addr: u64, value: u8) {
        let page = self
            .pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0; PAGE_SIZE]));
        page[(addr as usize) & (PAGE_SIZE - 1)] = value;
    }

    /// Writes a `u32` little-endian (test/workload setup convenience).
    pub fn store_u32(&mut self, addr: u64, value: u32) {
        self.store(addr, 4, u64::from(value));
    }

    /// Reads a `u32` little-endian.
    pub fn load_u32(&mut self, addr: u64) -> u32 {
        self.load(addr, 4) as u32
    }

    /// Writes an `f32`'s bits little-endian.
    pub fn store_f32(&mut self, addr: u64, value: f32) {
        self.store_u32(addr, value.to_bits());
    }

    /// Reads an `f32` from its bits.
    pub fn load_f32(&mut self, addr: u64) -> f32 {
        f32::from_bits(self.load_u32(addr))
    }
}

impl MemoryIo for SparseMemory {
    fn load(&mut self, addr: u64, width: u8) -> u64 {
        let off = (addr as usize) & (PAGE_SIZE - 1);
        // Fast path: the access fits in one page, so resolve it once
        // instead of once per byte.
        if off + usize::from(width) <= PAGE_SIZE {
            return match self.pages.get(&(addr >> PAGE_SHIFT)) {
                Some(page) => {
                    let mut v = 0u64;
                    for i in 0..usize::from(width) {
                        v |= u64::from(page[off + i]) << (8 * i);
                    }
                    v
                }
                None => 0,
            };
        }
        let mut v = 0u64;
        for i in 0..width {
            v |= u64::from(self.read_byte(addr.wrapping_add(u64::from(i)))) << (8 * i);
        }
        v
    }

    fn store(&mut self, addr: u64, width: u8, value: u64) {
        let off = (addr as usize) & (PAGE_SIZE - 1);
        if off + usize::from(width) <= PAGE_SIZE {
            let page = self
                .pages
                .entry(addr >> PAGE_SHIFT)
                .or_insert_with(|| Box::new([0; PAGE_SIZE]));
            for i in 0..usize::from(width) {
                page[off + i] = (value >> (8 * i)) as u8;
            }
            return;
        }
        for i in 0..width {
            self.write_byte(addr.wrapping_add(u64::from(i)), (value >> (8 * i)) as u8);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialized() {
        let mut m = SparseMemory::new();
        assert_eq!(m.load(0xDEAD_0000, 8), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn cross_page_access() {
        let mut m = SparseMemory::new();
        let addr = 0x1FFE; // straddles the 0x1000/0x2000 page boundary
        m.store(addr, 4, 0xAABB_CCDD);
        assert_eq!(m.load(addr, 4), 0xAABB_CCDD);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn partial_overwrite() {
        let mut m = SparseMemory::new();
        m.store(0x100, 8, 0x1122_3344_5566_7788);
        m.store(0x102, 2, 0xFFFF);
        assert_eq!(m.load(0x100, 8), 0x1122_3344_FFFF_7788);
    }

    #[test]
    fn f32_roundtrip() {
        let mut m = SparseMemory::new();
        m.store_f32(0x40, 3.25);
        assert_eq!(m.load_f32(0x40), 3.25);
    }
}
