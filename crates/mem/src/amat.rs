//! Per-instruction average-memory-access-time (AMAT) counters.
//!
//! The paper models memory nodes in the DFG "by per-instruction average
//! memory access time (AMAT), using counters at load/store unit entries"
//! (§3.1). This table is that counter bank: keyed by instruction address,
//! it accumulates observed latencies and reports the running average that
//! MESA feeds into its performance model.

use std::collections::HashMap;

/// Running latency statistics for one instruction address.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AmatEntry {
    /// Number of accesses observed.
    pub count: u64,
    /// Sum of observed latencies.
    pub total_cycles: u64,
    /// Largest single observed latency.
    pub worst: u64,
}

impl AmatEntry {
    /// Average latency, or `None` before the first observation.
    #[must_use]
    pub fn average(&self) -> Option<u64> {
        (self.count > 0).then(|| self.total_cycles / self.count)
    }
}

/// A bank of per-instruction AMAT counters.
///
/// ```
/// use mesa_mem::AmatTable;
/// let mut t = AmatTable::new();
/// t.record(0x1000, 3);
/// t.record(0x1000, 121);
/// assert_eq!(t.amat(0x1000), Some(62));
/// assert_eq!(t.amat(0x2000), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct AmatTable {
    entries: HashMap<u64, AmatEntry>,
}

impl AmatTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observed access latency for the instruction at `pc`.
    pub fn record(&mut self, pc: u64, latency: u64) {
        let e = self.entries.entry(pc).or_default();
        e.count += 1;
        e.total_cycles += latency;
        e.worst = e.worst.max(latency);
    }

    /// The running average latency for `pc`.
    #[must_use]
    pub fn amat(&self, pc: u64) -> Option<u64> {
        self.entries.get(&pc).and_then(AmatEntry::average)
    }

    /// Full statistics for `pc`.
    #[must_use]
    pub fn entry(&self, pc: u64) -> Option<&AmatEntry> {
        self.entries.get(&pc)
    }

    /// Number of distinct instruction addresses tracked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Clears all counters (e.g. when a new code region is profiled).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Iterates over `(pc, entry)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &AmatEntry)> {
        self.entries.iter().map(|(&pc, e)| (pc, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_accumulate() {
        let mut t = AmatTable::new();
        for lat in [10, 20, 30] {
            t.record(0x40, lat);
        }
        assert_eq!(t.amat(0x40), Some(20));
        assert_eq!(t.entry(0x40).unwrap().worst, 30);
        assert_eq!(t.entry(0x40).unwrap().count, 3);
    }

    #[test]
    fn distinct_pcs_are_independent() {
        let mut t = AmatTable::new();
        t.record(0x40, 100);
        t.record(0x44, 2);
        assert_eq!(t.amat(0x40), Some(100));
        assert_eq!(t.amat(0x44), Some(2));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn clear_empties() {
        let mut t = AmatTable::new();
        t.record(0x40, 1);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.amat(0x40), None);
    }
}
