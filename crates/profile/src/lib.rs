//! # mesa-profile — bottleneck attribution for the MESA reproduction
//!
//! MESA's premise is that hardware latency counters "at PEs and
//! load-store entries" are reported back and "used to refine MESA's DFG
//! model" (§5.2). This crate is the analysis layer on top of that
//! feedback channel: it consumes the counters the simulator already
//! plumbs and answers *why is this kernel slow, and what did
//! re-optimization actually change?*
//!
//! Three attributions, one report:
//!
//! * [`TopDown`] — top-down cycle accounting for the OoO core: every
//!   CPU-phase cycle classified into retiring / frontend-bound /
//!   backend-core-bound / memory-bound, with an exact conservation
//!   invariant (buckets always sum to total cycles).
//! * [`SpatialProfile`] — per-PE spatial attribution: the feedback
//!   counter bank folded onto the accelerator grid as fires, operation
//!   cycles and routing occupancy, rendered as an ASCII heatmap and a
//!   JSON matrix. The fold is exact: grid + bus totals equal the counter
//!   bank's totals, and the fire total equals the engine's
//!   `ActivityStats` operation total.
//! * [`CriticalPathReport`] + [`mesa_core::ReoptRound`] — the
//!   latency-weighted critical path recomputed from measured
//!   `NodeCounter` averages, and the controller's per-round
//!   re-optimization deltas (placement moves, II before/after,
//!   critical-path shrinkage) as a Fig. 13-style convergence report.
//!
//! [`ProfileReport`] bundles all three plus per-phase cycle and traffic
//! snapshots into one deterministic JSON document and a human text
//! summary. The `profile` binary in `mesa-bench` (and `--profile <path>`
//! on `figures`/`inspect`) writes it to disk.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod critpath;
pub mod heatmap;
pub mod report;
pub mod topdown;

pub use critpath::{render_round, round_to_json, CriticalPathReport};
pub use heatmap::{PeCell, SpatialProfile};
pub use report::{PhaseCycles, ProfileReport};
pub use topdown::TopDown;
