//! Per-PE spatial attribution: fold the feedback-channel counter bank
//! onto the accelerator grid so mapper hot spots are visible at a glance.
//!
//! Each placed node's [`NodeCounter`] readings accumulate into the cell of
//! its configured coordinate (tiled replicas fold onto the base tile —
//! the counters themselves are per-node across all tiles); nodes on the
//! fallback bus accumulate into a separate `bus` cell. Totals are exact:
//! the grid plus the bus hold every fire and every counted cycle, and the
//! fire total equals the engine's [`ActivityStats`] operation total.

use mesa_accel::{ActivityStats, Coord, GridDim, NodeCounter, PerfCounters};

/// Accumulated counters of one grid cell (or the fallback bus).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeCell {
    /// Node firings attributed to this PE.
    pub fires: u64,
    /// Operation cycles (inputs-ready → output) attributed to this PE.
    pub op_cycles: u64,
    /// Input transfer cycles (routing occupancy) attributed to this PE.
    pub in_cycles: u64,
}

impl PeCell {
    fn absorb(&mut self, ctr: &NodeCounter) {
        self.fires += ctr.fires;
        self.op_cycles += ctr.total_op_cycles;
        self.in_cycles += ctr.total_in_cycles[0] + ctr.total_in_cycles[1];
    }

    /// Total busy cycles: operation plus routing.
    #[must_use]
    pub fn busy_cycles(&self) -> u64 {
        self.op_cycles + self.in_cycles
    }
}

/// A `Coord`-indexed grid of per-PE activity, plus the fallback bus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpatialProfile {
    rows: usize,
    cols: usize,
    cells: Vec<PeCell>,
    /// Activity of nodes that fell back to the shared bus (no coordinate).
    pub bus: PeCell,
}

impl SpatialProfile {
    /// Folds a counter bank onto the grid using the final placement
    /// (`placement[i]` is node `i`'s coordinate, `None` = bus), as the
    /// controller reports it in `OffloadReport::placement`.
    ///
    /// Coordinates outside `grid` (which a valid program never produces)
    /// fold onto the bus rather than being dropped, keeping totals exact.
    #[must_use]
    pub fn new(grid: GridDim, placement: &[Option<Coord>], counters: &PerfCounters) -> Self {
        let mut p = SpatialProfile {
            rows: grid.rows,
            cols: grid.cols,
            cells: vec![PeCell::default(); grid.rows * grid.cols],
            bus: PeCell::default(),
        };
        for (slot, ctr) in placement.iter().zip(&counters.nodes) {
            match slot {
                Some(c) if grid.contains(*c) => {
                    p.cells[c.row * grid.cols + c.col].absorb(ctr);
                }
                _ => p.bus.absorb(ctr),
            }
        }
        p
    }

    /// Grid rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Grid columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The cell at `(row, col)`.
    ///
    /// # Panics
    /// Panics if the coordinate is outside the grid.
    #[must_use]
    pub fn cell(&self, row: usize, col: usize) -> &PeCell {
        assert!(row < self.rows && col < self.cols, "({row},{col}) outside the grid");
        &self.cells[row * self.cols + col]
    }

    /// Total fires across the grid and the bus.
    #[must_use]
    pub fn total_fires(&self) -> u64 {
        self.cells.iter().map(|c| c.fires).sum::<u64>() + self.bus.fires
    }

    /// Total operation cycles across the grid and the bus.
    #[must_use]
    pub fn total_op_cycles(&self) -> u64 {
        self.cells.iter().map(|c| c.op_cycles).sum::<u64>() + self.bus.op_cycles
    }

    /// Total transfer (routing) cycles across the grid and the bus.
    #[must_use]
    pub fn total_in_cycles(&self) -> u64 {
        self.cells.iter().map(|c| c.in_cycles).sum::<u64>() + self.bus.in_cycles
    }

    /// PEs with at least one fire.
    #[must_use]
    pub fn occupied_pes(&self) -> usize {
        self.cells.iter().filter(|c| c.fires > 0).count()
    }

    /// The heatmap/activity consistency invariant: every enabled node
    /// firing executes exactly one operation, so the fold's fire total
    /// must equal the engine's op total (`int + fp + loads + stores`).
    #[must_use]
    pub fn matches_activity(&self, activity: &ActivityStats) -> bool {
        self.total_fires()
            == activity.int_ops + activity.fp_ops + activity.loads + activity.stores
    }

    /// The hottest `k` cells by busy cycles, hottest first, as
    /// `(coord, cell)`. Ties break row-major so the ranking is
    /// deterministic.
    #[must_use]
    pub fn hottest(&self, k: usize) -> Vec<(Coord, PeCell)> {
        let mut ranked: Vec<(Coord, PeCell)> = self
            .cells
            .iter()
            .enumerate()
            .filter(|(_, c)| c.busy_cycles() > 0)
            .map(|(i, c)| (Coord::new(i / self.cols, i % self.cols), *c))
            .collect();
        ranked.sort_by_key(|(_, c)| std::cmp::Reverse(c.busy_cycles()));
        ranked.truncate(k);
        ranked
    }

    /// ASCII heatmap: one glyph per PE scaled to the hottest cell's busy
    /// cycles (`.` = mapped but idle this fold, ` ` = never used). Rows
    /// past the last occupied one are elided.
    #[must_use]
    pub fn render(&self) -> String {
        const RAMP: [char; 9] = ['1', '2', '3', '4', '5', '6', '7', '8', '9'];
        let max = self.cells.iter().map(PeCell::busy_cycles).max().unwrap_or(0);
        let used_rows = (0..self.rows)
            .rev()
            .find(|&r| (0..self.cols).any(|c| self.cell(r, c).fires > 0))
            .map_or(0, |r| r + 1);
        let mut out = format!(
            "per-PE heatmap ({}x{} grid, {} PEs active, scale 1-9 = busy cycles / {}):\n",
            self.rows,
            self.cols,
            self.occupied_pes(),
            max.max(1)
        );
        for r in 0..used_rows {
            out.push_str(&format!("  row {r:>2} |"));
            for c in 0..self.cols {
                let cell = self.cell(r, c);
                let glyph = if cell.fires == 0 {
                    ' '
                } else if cell.busy_cycles() == 0 || max == 0 {
                    '.'
                } else {
                    // busy in [1, max] → index in [0, 8].
                    RAMP[((cell.busy_cycles() * 9 - 1) / max.max(1)).min(8) as usize]
                };
                out.push(glyph);
            }
            out.push_str("|\n");
        }
        if used_rows == 0 {
            out.push_str("  (no PE activity)\n");
        }
        if self.bus.fires > 0 {
            out.push_str(&format!(
                "  bus (unplaced): {} fires, {} busy cycles\n",
                self.bus.fires,
                self.bus.busy_cycles()
            ));
        }
        out
    }

    /// The machine-readable matrix:
    /// `{"rows":R,"cols":C,"fires":[[...]],"op_cycles":[[...]],"in_cycles":[[...]],"bus":{...}}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let matrix = |field: fn(&PeCell) -> u64| -> String {
            let rows: Vec<String> = (0..self.rows)
                .map(|r| {
                    let cols: Vec<String> =
                        (0..self.cols).map(|c| field(self.cell(r, c)).to_string()).collect();
                    format!("[{}]", cols.join(","))
                })
                .collect();
            format!("[{}]", rows.join(","))
        };
        format!(
            "{{\"rows\":{},\"cols\":{},\"fires\":{},\"op_cycles\":{},\"in_cycles\":{},\
             \"bus\":{{\"fires\":{},\"op_cycles\":{},\"in_cycles\":{}}},\"total_fires\":{}}}",
            self.rows,
            self.cols,
            matrix(|c| c.fires),
            matrix(|c| c.op_cycles),
            matrix(|c| c.in_cycles),
            self.bus.fires,
            self.bus.op_cycles,
            self.bus.in_cycles,
            self.total_fires()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank() -> (Vec<Option<Coord>>, PerfCounters) {
        let mut counters = PerfCounters::new(3);
        counters.nodes[0] = NodeCounter {
            fires: 10,
            total_op_cycles: 50,
            total_in_cycles: [5, 0],
            in_samples: [10, 0],
        };
        counters.nodes[1] = NodeCounter { fires: 10, total_op_cycles: 10, ..Default::default() };
        counters.nodes[2] = NodeCounter { fires: 10, total_op_cycles: 30, ..Default::default() };
        let placement =
            vec![Some(Coord::new(0, 0)), Some(Coord::new(1, 3)), None /* bus */];
        (placement, counters)
    }

    #[test]
    fn folds_counters_onto_grid_and_bus_exactly() {
        let (placement, counters) = bank();
        let p = SpatialProfile::new(GridDim::new(4, 4), &placement, &counters);
        assert_eq!(p.cell(0, 0).fires, 10);
        assert_eq!(p.cell(0, 0).busy_cycles(), 55);
        assert_eq!(p.cell(1, 3).op_cycles, 10);
        assert_eq!(p.bus.fires, 10);
        assert_eq!(p.total_fires(), counters.total_fires());
        assert_eq!(p.total_op_cycles(), counters.total_op_cycles());
        assert_eq!(p.occupied_pes(), 2);
    }

    #[test]
    fn activity_invariant_checks_op_total() {
        let (placement, counters) = bank();
        let p = SpatialProfile::new(GridDim::new(4, 4), &placement, &counters);
        let good = ActivityStats { int_ops: 20, loads: 10, ..Default::default() };
        assert!(p.matches_activity(&good));
        let bad = ActivityStats { int_ops: 20, ..Default::default() };
        assert!(!p.matches_activity(&bad));
    }

    #[test]
    fn out_of_grid_coordinate_folds_to_bus() {
        let (mut placement, counters) = bank();
        placement[1] = Some(Coord::new(9, 9));
        let p = SpatialProfile::new(GridDim::new(4, 4), &placement, &counters);
        assert_eq!(p.bus.fires, 20);
        assert_eq!(p.total_fires(), 30);
    }

    #[test]
    fn render_elides_empty_rows_and_marks_bus() {
        let (placement, counters) = bank();
        let p = SpatialProfile::new(GridDim::new(4, 4), &placement, &counters);
        let text = p.render();
        assert!(text.contains("row  0"));
        assert!(text.contains("row  1"));
        assert!(!text.contains("row  2"), "{text}");
        assert!(text.contains("bus (unplaced): 10 fires"));
        // The hottest cell renders as the top of the ramp.
        assert!(text.lines().nth(1).unwrap().contains('9'));
    }

    #[test]
    fn hottest_ranks_by_busy_cycles() {
        let (placement, counters) = bank();
        let p = SpatialProfile::new(GridDim::new(4, 4), &placement, &counters);
        let hot = p.hottest(8);
        assert_eq!(hot.len(), 2);
        assert_eq!(hot[0].0, Coord::new(0, 0));
        assert_eq!(hot[1].0, Coord::new(1, 3));
    }

    #[test]
    fn json_matrix_is_valid_and_exact() {
        let (placement, counters) = bank();
        let p = SpatialProfile::new(GridDim::new(2, 4), &placement, &counters);
        let json = p.to_json();
        mesa_trace::validate_json(&json).unwrap();
        assert!(json.contains("\"total_fires\":30"));
        assert!(json.contains("\"rows\":2"));
    }
}
