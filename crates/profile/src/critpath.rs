//! Measured critical-path recomputation and re-optimization round
//! rendering.
//!
//! MESA's feedback channel exists to "rapidly identify the critical path
//! and pinpoint nodes or edges that are sources of bottleneck" (§1). This
//! module replays that analysis offline: fold the measured [`NodeCounter`]
//! averages into a fresh copy of the region's LDFG, recompute the
//! latency-weighted critical path, and render the controller's
//! [`ReoptRound`] records into a Fig. 13-style convergence report.

use mesa_accel::PerfCounters;
use mesa_core::{apply_counters, Ldfg, ReoptRound};
use mesa_trace::json_string;

/// The critical path of a region under static vs measured weights.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalPathReport {
    /// Path latency under the LDFG's static (model) weights.
    pub static_latency: u64,
    /// Path latency after folding the measured counter averages in.
    pub measured_latency: u64,
    /// Node indices on the measured path, source → sink.
    pub path: Vec<u32>,
    /// Human-readable description of each path node (`idx: instr (op N)`).
    pub nodes: Vec<String>,
}

impl CriticalPathReport {
    /// Recomputes the critical path from measured counters without
    /// touching the caller's LDFG: `ldfg` keeps its static weights, the
    /// measured copy is internal.
    #[must_use]
    pub fn from_measurements(ldfg: &Ldfg, counters: &PerfCounters) -> CriticalPathReport {
        let static_latency = ldfg.critical_path().1;
        let mut measured = ldfg.clone();
        apply_counters(&mut measured, counters);
        let (mut path, measured_latency) = measured.critical_path();
        // `critical_path` walks sink → source; report source-first.
        path.reverse();
        let nodes = path
            .iter()
            .map(|&i| {
                let n = &measured.nodes[i as usize];
                format!("{}: {} (op {})", i, n.instr, n.op_weight)
            })
            .collect();
        CriticalPathReport { static_latency, measured_latency, path, nodes }
    }

    /// Signed movement of the path latency once measurements are folded
    /// in: positive = the measured machine is slower than the model.
    #[must_use]
    pub fn delta(&self) -> i64 {
        self.measured_latency as i64 - self.static_latency as i64
    }

    /// The machine-readable object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let path: Vec<String> = self.path.iter().map(u32::to_string).collect();
        let nodes: Vec<String> = self.nodes.iter().map(|s| json_string(s)).collect();
        format!(
            "{{\"static_latency\":{},\"measured_latency\":{},\"delta\":{},\"path\":[{}],\"nodes\":[{}]}}",
            self.static_latency,
            self.measured_latency,
            self.delta(),
            path.join(","),
            nodes.join(",")
        )
    }

    /// Text rendering: the headline latencies plus one line per path node.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!(
            "critical path (measured): {} cycles over {} node(s), static model said {} ({}{})\n",
            self.measured_latency,
            self.path.len(),
            self.static_latency,
            if self.delta() >= 0 { "+" } else { "" },
            self.delta()
        );
        for n in &self.nodes {
            out.push_str(&format!("  {n}\n"));
        }
        out
    }
}

/// Renders one controller [`ReoptRound`] as a single report line.
#[must_use]
pub fn render_round(r: &ReoptRound) -> String {
    let action = if r.reconfigured {
        format!(
            "reconfigured: {} node(s) moved, {} tile(s), +{} cycles",
            r.placement_moves, r.tiles_after, r.reconfig_cycles
        )
    } else {
        "kept the current mapping".to_string()
    };
    format!(
        "round {}: after {} iters measured {} cyc/iter, remap model {}; \
         critical path {} -> {} ({}{}); {}",
        r.round,
        r.iterations_before,
        r.measured_cycles_per_iter,
        r.new_estimate,
        r.critical_path_before,
        r.critical_path_after,
        if r.critical_path_delta() >= 0 { "+" } else { "" },
        r.critical_path_delta(),
        action
    )
}

/// The machine-readable object for one [`ReoptRound`].
#[must_use]
pub fn round_to_json(r: &ReoptRound) -> String {
    format!(
        "{{\"round\":{},\"iterations_before\":{},\"measured_cycles_per_iter\":{},\
         \"new_estimate\":{},\"critical_path_before\":{},\"critical_path_after\":{},\
         \"critical_path_delta\":{},\"placement_moves\":{},\"reconfigured\":{},\
         \"tiles_after\":{},\"reconfig_cycles\":{}}}",
        r.round,
        r.iterations_before,
        r.measured_cycles_per_iter,
        r.new_estimate,
        r.critical_path_before,
        r.critical_path_after,
        r.critical_path_delta(),
        r.placement_moves,
        r.reconfigured,
        r.tiles_after,
        r.reconfig_cycles
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesa_accel::NodeCounter;
    use mesa_isa::reg::abi::*;
    use mesa_isa::Asm;

    fn sum_ldfg() -> Ldfg {
        let mut a = Asm::new(0x1000);
        a.label("loop");
        a.lw(T0, A0, 0);
        a.add(T1, T1, T0);
        a.addi(A0, A0, 4);
        a.bne(A0, A1, "loop");
        Ldfg::build(&a.finish().unwrap()).unwrap()
    }

    #[test]
    fn measured_weights_lengthen_the_path() {
        let ldfg = sum_ldfg();
        let mut counters = PerfCounters::new(ldfg.len());
        counters.nodes[0] =
            NodeCounter { fires: 10, total_op_cycles: 450, ..Default::default() };
        let cp = CriticalPathReport::from_measurements(&ldfg, &counters);
        assert!(cp.measured_latency > cp.static_latency);
        assert!(cp.delta() > 0);
        // The 45-cycle load must sit on the measured path.
        assert!(cp.path.contains(&0));
        // The input LDFG was not mutated: recomputing gives the same answer.
        let again = CriticalPathReport::from_measurements(&ldfg, &counters);
        assert_eq!(cp, again);
        mesa_trace::validate_json(&cp.to_json()).unwrap();
        assert!(cp.render().contains("critical path (measured)"));
    }

    #[test]
    fn round_rendering_and_json() {
        let r = ReoptRound {
            round: 1,
            iterations_before: 512,
            measured_cycles_per_iter: 52,
            new_estimate: 31,
            critical_path_before: 12,
            critical_path_after: 45,
            placement_moves: 7,
            reconfigured: true,
            tiles_after: 2,
            reconfig_cycles: 1200,
        };
        assert_eq!(r.critical_path_delta(), 33);
        let line = render_round(&r);
        assert!(line.contains("12 -> 45 (+33)"));
        assert!(line.contains("7 node(s) moved"));
        mesa_trace::validate_json(&round_to_json(&r)).unwrap();
        assert!(round_to_json(&r).contains("\"critical_path_delta\":33"));
    }
}
