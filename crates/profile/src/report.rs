//! The unified profile report: one machine-readable JSON document plus a
//! human text summary covering the CPU phase, the configuration phase,
//! and the offloaded phase of an episode.

use crate::{render_round, round_to_json, CriticalPathReport, SpatialProfile, TopDown};
use mesa_core::{Ldfg, OffloadReport, ReoptRound, SystemConfig};
use mesa_mem::MemTraffic;
use mesa_trace::json_string;

/// Cycle totals of each episode phase. The phases are the interval
/// snapshots the controller already keeps; `total` is the episode
/// wall-clock (configuration and its CPU overlap run concurrently, so the
/// parts deliberately over-cover it).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseCycles {
    /// CPU cycles spent monitoring before detection.
    pub warmup: u64,
    /// Configuration pipeline cycles (translate + map + write + transfer).
    pub config: u64,
    /// CPU cycles overlapped with configuration (§5.1).
    pub config_overlap_cpu: u64,
    /// Reconfiguration pauses from F3 rounds.
    pub reconfig: u64,
    /// Accelerated execution cycles.
    pub accel: u64,
    /// Control-return transfer cycles.
    pub return_transfer: u64,
    /// Episode wall-clock cycles.
    pub total: u64,
}

impl PhaseCycles {
    fn to_json(self) -> String {
        format!(
            "{{\"warmup\":{},\"config\":{},\"config_overlap_cpu\":{},\"reconfig\":{},\
             \"accel\":{},\"return_transfer\":{},\"total\":{}}}",
            self.warmup,
            self.config,
            self.config_overlap_cpu,
            self.reconfig,
            self.accel,
            self.return_transfer,
            self.total
        )
    }
}

fn traffic_json(t: &MemTraffic) -> String {
    format!(
        "{{\"l1_accesses\":{},\"l1_misses\":{},\"l2_accesses\":{},\"l2_misses\":{},\
         \"dram_accesses\":{}}}",
        t.l1_accesses, t.l1_misses, t.l2_accesses, t.l2_misses, t.dram_accesses
    )
}

/// The complete bottleneck-attribution report for one kernel episode.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileReport {
    /// Kernel name.
    pub kernel: String,
    /// Accelerator grid rows.
    pub grid_rows: usize,
    /// Accelerator grid columns.
    pub grid_cols: usize,
    /// Why the offload was declined (`None` = it ran on the fabric).
    pub reject: Option<String>,
    /// Per-phase cycle totals.
    pub phases: PhaseCycles,
    /// Top-down cycle accounting of the CPU phase.
    pub topdown: TopDown,
    /// Memory traffic of the CPU phase (warmup + configuration overlap).
    pub cpu_phase_traffic: MemTraffic,
    /// Memory traffic of the accelerated phase, when the caller sampled
    /// the episode-end totals.
    pub accel_phase_traffic: Option<MemTraffic>,
    /// Per-PE spatial attribution (`None` when the offload was declined).
    pub spatial: Option<SpatialProfile>,
    /// Critical path under measured weights (`None` without an LDFG).
    pub critical_path: Option<CriticalPathReport>,
    /// F3 re-optimization rounds, in order.
    pub rounds: Vec<ReoptRound>,
    /// Iterations executed on the fabric.
    pub accel_iterations: u64,
    /// Tiles in the final configuration.
    pub tiles: usize,
    /// Whether the final configuration was pipelined.
    pub pipelined: bool,
    /// The engine's operation total (`int + fp + loads + stores`), kept
    /// alongside the heatmap so consumers can check the fold invariant.
    pub activity_ops_total: u64,
}

impl ProfileReport {
    /// Builds the report for a completed offload episode.
    ///
    /// `ldfg` (the region's dependence graph, e.g. from the harness's
    /// `region_ldfg`) enables the critical-path section; `end_traffic`
    /// (the memory-system totals after the episode) enables the
    /// accelerated-phase traffic section.
    #[must_use]
    pub fn from_offload(
        kernel: &str,
        report: &OffloadReport,
        system: &SystemConfig,
        ldfg: Option<&Ldfg>,
        end_traffic: Option<&MemTraffic>,
    ) -> ProfileReport {
        let grid = system.accel.grid();
        let activity = &report.activity;
        ProfileReport {
            kernel: kernel.to_string(),
            grid_rows: grid.rows,
            grid_cols: grid.cols,
            reject: None,
            phases: PhaseCycles {
                warmup: report.warmup_cycles,
                config: report.config.total(),
                config_overlap_cpu: report.config_phase_cpu_cycles,
                reconfig: report.reconfig_cycles,
                accel: report.accel_cycles,
                return_transfer: report.config.transfer_cycles,
                total: report.total_cycles(),
            },
            topdown: TopDown::attribute(
                &report.cpu_pipeline,
                &report.cpu_phase_traffic,
                &system.core,
                &system.mem,
            ),
            cpu_phase_traffic: report.cpu_phase_traffic,
            accel_phase_traffic: end_traffic.map(|t| t.since(&report.cpu_phase_traffic)),
            spatial: Some(SpatialProfile::new(grid, &report.placement, &report.counters)),
            critical_path: ldfg
                .map(|l| CriticalPathReport::from_measurements(l, &report.counters)),
            rounds: report.reopt_rounds.clone(),
            accel_iterations: report.accel_iterations,
            tiles: report.tiles,
            pipelined: report.pipelined,
            activity_ops_total: activity.int_ops
                + activity.fp_ops
                + activity.loads
                + activity.stores,
        }
    }

    /// Builds the report for a declined episode (rejected, no stable loop,
    /// or exited during configuration): only the reject reason and any
    /// CPU-phase story survive.
    #[must_use]
    pub fn declined(kernel: &str, system: &SystemConfig, reason: &str) -> ProfileReport {
        let grid = system.accel.grid();
        ProfileReport {
            kernel: kernel.to_string(),
            grid_rows: grid.rows,
            grid_cols: grid.cols,
            reject: Some(reason.to_string()),
            phases: PhaseCycles::default(),
            topdown: TopDown::default(),
            cpu_phase_traffic: MemTraffic::default(),
            accel_phase_traffic: None,
            spatial: None,
            critical_path: None,
            rounds: Vec::new(),
            accel_iterations: 0,
            tiles: 0,
            pipelined: false,
            activity_ops_total: 0,
        }
    }

    /// The heatmap invariant: the spatial fold's fire total equals the
    /// engine's operation total. Trivially true for declined episodes.
    #[must_use]
    pub fn spatial_matches_activity(&self) -> bool {
        self.spatial.as_ref().is_none_or(|s| s.total_fires() == self.activity_ops_total)
    }

    /// The unified machine-readable report. Deterministic: field order is
    /// fixed and every number derives from simulated cycles, so the same
    /// kernel at the same seed serializes byte-identically.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str(&format!("\"kernel\":{},\n", json_string(&self.kernel)));
        out.push_str(&format!(
            "\"grid\":{{\"rows\":{},\"cols\":{}}},\n",
            self.grid_rows, self.grid_cols
        ));
        out.push_str(&format!(
            "\"reject\":{},\n",
            self.reject.as_deref().map_or("null".to_string(), json_string)
        ));
        out.push_str(&format!("\"phases\":{},\n", self.phases.to_json()));
        out.push_str(&format!("\"topdown\":{},\n", self.topdown.to_json()));
        out.push_str(&format!(
            "\"cpu_phase_traffic\":{},\n",
            traffic_json(&self.cpu_phase_traffic)
        ));
        out.push_str(&format!(
            "\"accel_phase_traffic\":{},\n",
            self.accel_phase_traffic.as_ref().map_or("null".to_string(), traffic_json)
        ));
        out.push_str(&format!(
            "\"spatial\":{},\n",
            self.spatial.as_ref().map_or("null".to_string(), SpatialProfile::to_json)
        ));
        out.push_str(&format!(
            "\"critical_path\":{},\n",
            self.critical_path.as_ref().map_or("null".to_string(), CriticalPathReport::to_json)
        ));
        let rounds: Vec<String> = self.rounds.iter().map(round_to_json).collect();
        out.push_str(&format!("\"reopt_rounds\":[{}],\n", rounds.join(",")));
        out.push_str(&format!(
            "\"summary\":{{\"accel_iterations\":{},\"tiles\":{},\"pipelined\":{},\
             \"activity_ops_total\":{},\"fires_total\":{}}}\n",
            self.accel_iterations,
            self.tiles,
            self.pipelined,
            self.activity_ops_total,
            self.spatial.as_ref().map_or(0, SpatialProfile::total_fires)
        ));
        out.push('}');
        out
    }

    /// The human text summary: phases, top-down buckets, heatmap, hottest
    /// PEs, measured critical path, and the re-optimization rounds.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!(
            "== mesa-profile: {} on {}x{} fabric ==\n",
            self.kernel, self.grid_rows, self.grid_cols
        );
        if let Some(reason) = &self.reject {
            out.push_str(&format!("offload declined: {reason}\n"));
            out.push_str("(execution stayed on the host CPU; no fabric attribution)\n");
            return out;
        }
        out.push_str(&format!(
            "phases (cycles): warmup {} | config {} (cpu overlapped {}) | reconfig {} | \
             accel {} | return {} | total {}\n",
            self.phases.warmup,
            self.phases.config,
            self.phases.config_overlap_cpu,
            self.phases.reconfig,
            self.phases.accel,
            self.phases.return_transfer,
            self.phases.total
        ));
        out.push_str(&format!(
            "offload: {} iterations, {} tile(s){}\n\n",
            self.accel_iterations,
            self.tiles,
            if self.pipelined { ", pipelined" } else { "" }
        ));
        out.push_str(&self.topdown.render());
        out.push('\n');
        if let Some(spatial) = &self.spatial {
            out.push_str(&spatial.render());
            let hot = spatial.hottest(3);
            if !hot.is_empty() {
                let hot: Vec<String> = hot
                    .iter()
                    .map(|(c, cell)| format!("{c} {} cycles", cell.busy_cycles()))
                    .collect();
                out.push_str(&format!("hottest PEs: {}\n", hot.join(", ")));
            }
            out.push('\n');
        }
        if let Some(cp) = &self.critical_path {
            out.push_str(&cp.render());
            out.push('\n');
        }
        if self.rounds.is_empty() {
            out.push_str("re-optimization: no rounds ran (region completed within the first profile window)\n");
        } else {
            out.push_str("re-optimization rounds:\n");
            for r in &self.rounds {
                out.push_str(&format!("  {}\n", render_round(r)));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declined_report_is_valid_and_minimal() {
        let system = SystemConfig::m128();
        let p = ProfileReport::declined("btree", &system, "C2: jump inside loop body");
        assert!(p.spatial_matches_activity());
        assert!(p.topdown.sums_to_total());
        mesa_trace::validate_json(&p.to_json()).unwrap();
        assert!(p.to_json().contains("\"reject\":\"C2: jump inside loop body\""));
        assert!(p.render().contains("offload declined"));
    }
}
