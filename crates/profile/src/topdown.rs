//! Top-down cycle accounting for the out-of-order core.
//!
//! Classifies every CPU-phase cycle into one of four buckets — retiring,
//! frontend-bound, backend-core-bound, memory-bound — in the style of the
//! top-down microarchitectural analysis methodology, but driven entirely
//! by the counters the MESA hardware already exposes: retired-instruction
//! counts, `issue_wait_cycles`, `fetch_redirects`, and the memory system's
//! [`MemTraffic`] snapshot.
//!
//! The attribution is *exactly conservative*: the four buckets always sum
//! to the total cycle count. Retiring cycles are the ideal commit time at
//! the core's commit width; the remaining slack is apportioned across the
//! three stall buckets proportionally to their pressure signals with a
//! deterministic largest-remainder rounding, so no cycle is ever lost or
//! double-counted.

use mesa_cpu::{CoreConfig, PipelineStats};
use mesa_mem::{MemConfig, MemTraffic};

/// Top-down classification of one execution window's cycles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TopDown {
    /// Cycles in the window (the sum of the four buckets, exactly).
    pub total_cycles: u64,
    /// Cycles explained by useful commit at the core's commit width.
    pub retiring: u64,
    /// Cycles attributed to fetch redirects (mispredicted branches and
    /// indirect jumps restarting the front end).
    pub frontend_bound: u64,
    /// Cycles attributed to issue-bandwidth and functional-unit pressure.
    pub backend_core_bound: u64,
    /// Cycles attributed to cache misses and DRAM accesses.
    pub memory_bound: u64,
}

impl TopDown {
    /// Classifies a CPU-phase window from its accumulated pipeline
    /// counters and the memory traffic it generated.
    ///
    /// `pipe` is the window's pipeline story (the controller accumulates
    /// one per offload episode), `traffic` the memory-system counters the
    /// same window produced, and `core`/`mem` the machine parameters that
    /// weight the pressure signals.
    #[must_use]
    pub fn attribute(
        pipe: &PipelineStats,
        traffic: &MemTraffic,
        core: &CoreConfig,
        mem: &MemConfig,
    ) -> TopDown {
        let total = pipe.cycles;
        // Ideal commit time: how long the window would take if the only
        // limit were commit bandwidth.
        let retiring = total.min(pipe.retired.div_ceil(u64::from(core.commit_width.max(1))));
        let slack = total - retiring;

        // Pressure signals, in approximate cycles each source could have
        // cost. They overlap in a real pipeline, so they serve as
        // apportionment weights for the measured slack rather than as
        // absolute counts.
        let frontend_w = pipe
            .fetch_redirects
            .saturating_mul(core.mispredict_penalty.saturating_add(core.frontend_depth));
        let backend_w = pipe.issue_wait_cycles;
        let memory_w = traffic
            .l1_misses
            .saturating_mul(mem.l2.hit_latency)
            .saturating_add(traffic.l2_misses.saturating_mul(mem.dram_latency));

        let [frontend_bound, backend_core_bound, memory_bound] =
            apportion(slack, [frontend_w, backend_w, memory_w]);
        TopDown { total_cycles: total, retiring, frontend_bound, backend_core_bound, memory_bound }
    }

    /// The conservation invariant: buckets sum exactly to the total.
    #[must_use]
    pub fn sums_to_total(&self) -> bool {
        self.retiring + self.frontend_bound + self.backend_core_bound + self.memory_bound
            == self.total_cycles
    }

    /// `(label, cycles)` pairs in display order.
    #[must_use]
    pub fn buckets(&self) -> [(&'static str, u64); 4] {
        [
            ("retiring", self.retiring),
            ("frontend-bound", self.frontend_bound),
            ("backend-core-bound", self.backend_core_bound),
            ("memory-bound", self.memory_bound),
        ]
    }

    /// The machine-readable object, e.g.
    /// `{"total_cycles":10,"retiring":4,...}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"total_cycles\":{},\"retiring\":{},\"frontend_bound\":{},\
             \"backend_core_bound\":{},\"memory_bound\":{}}}",
            self.total_cycles,
            self.retiring,
            self.frontend_bound,
            self.backend_core_bound,
            self.memory_bound
        )
    }

    /// A small text bar chart of the four buckets.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!("top-down cycle accounting ({} cycles):\n", self.total_cycles);
        for (label, cycles) in self.buckets() {
            let pct = if self.total_cycles == 0 {
                0.0
            } else {
                cycles as f64 / self.total_cycles as f64 * 100.0
            };
            let bar = "#".repeat((pct / 5.0).round() as usize);
            out.push_str(&format!("  {label:<20} {cycles:>12}  {pct:>5.1}% |{bar}\n"));
        }
        out
    }
}

/// Splits `total` across three buckets proportionally to `weights`, with
/// deterministic largest-remainder rounding so the parts sum exactly to
/// `total`. All-zero weights put the whole total in the middle
/// (backend-core) bucket: with no pressure signal recorded, issue-side
/// serialization is the only remaining explanation the model has.
fn apportion(total: u64, weights: [u64; 3]) -> [u64; 3] {
    let denom: u128 = weights.iter().map(|&w| u128::from(w)).sum();
    if denom == 0 {
        return [0, total, 0];
    }
    let mut out = [0u64; 3];
    let mut rems = [(0u128, 0usize); 3];
    let mut assigned = 0u64;
    for (i, &w) in weights.iter().enumerate() {
        let num = u128::from(total) * u128::from(w);
        // num / denom <= total, so the cast back to u64 is lossless.
        out[i] = (num / denom) as u64;
        rems[i] = (num % denom, i);
        assigned += out[i];
    }
    let mut leftover = total - assigned;
    // Largest fractional remainder first; ties go to the lower index.
    rems.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    for (_, i) in rems {
        if leftover == 0 {
            break;
        }
        out[i] += 1;
        leftover -= 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pipe(cycles: u64, retired: u64) -> PipelineStats {
        PipelineStats { cycles, retired, ..Default::default() }
    }

    #[test]
    fn conserves_with_no_pressure_signals() {
        let td = TopDown::attribute(
            &pipe(100, 40),
            &MemTraffic::default(),
            &CoreConfig::default(),
            &MemConfig::default(),
        );
        assert!(td.sums_to_total());
        assert_eq!(td.retiring, 10); // ceil(40 / 4)
        assert_eq!(td.backend_core_bound, 90); // all slack, no other signal
        assert_eq!(td.frontend_bound + td.memory_bound, 0);
    }

    #[test]
    fn retiring_caps_at_total() {
        // More retired work than cycles can explain (impossible input, but
        // the attribution must stay conservative anyway).
        let td = TopDown::attribute(
            &pipe(3, 1000),
            &MemTraffic::default(),
            &CoreConfig::default(),
            &MemConfig::default(),
        );
        assert!(td.sums_to_total());
        assert_eq!(td.retiring, 3);
    }

    #[test]
    fn apportion_is_exact_and_deterministic() {
        assert_eq!(apportion(10, [1, 1, 1]).iter().sum::<u64>(), 10);
        assert_eq!(apportion(10, [0, 0, 0]), [0, 10, 0]);
        assert_eq!(apportion(7, [1, 0, 0]), [7, 0, 0]);
        // 7 * [2,3,2]/7 = [2,3,2]: exact split, no leftover.
        assert_eq!(apportion(7, [2, 3, 2]), [2, 3, 2]);
        // Ties in the fractional remainder resolve to the lower index.
        assert_eq!(apportion(1, [1, 1, 1])[0], 1);
    }

    #[test]
    fn memory_pressure_pulls_cycles_into_memory_bound() {
        let mut p = pipe(1000, 100);
        p.issue_wait_cycles = 10;
        let traffic = MemTraffic { l1_misses: 50, l2_misses: 20, ..Default::default() };
        let td =
            TopDown::attribute(&p, &traffic, &CoreConfig::default(), &MemConfig::default());
        assert!(td.sums_to_total());
        assert!(td.memory_bound > td.backend_core_bound);
        assert!(td.memory_bound > 0);
    }

    #[test]
    fn render_and_json_shapes() {
        let td = TopDown {
            total_cycles: 10,
            retiring: 4,
            frontend_bound: 1,
            backend_core_bound: 2,
            memory_bound: 3,
        };
        assert!(td.sums_to_total());
        assert!(td.render().contains("memory-bound"));
        mesa_trace::validate_json(&td.to_json()).unwrap();
        assert!(td.to_json().contains("\"retiring\":4"));
    }
}
