//! Property tests for the profiler's two conservation invariants:
//!
//! * Top-down buckets tile the measured cycles exactly, for arbitrary
//!   pipeline/traffic counter values — the apportionment never loses or
//!   invents a cycle.
//! * The spatial heatmap is an exact fold of the feedback counter bank:
//!   across randomized kernels and grid sizes, grid + bus totals equal
//!   the counter totals and the fire total equals the engine's
//!   `ActivityStats` operation total.

use mesa_accel::{AccelConfig, Coord, SpatialAccelerator};
use mesa_core::{
    analyze_memopts, build_accel_program, map_instructions, Ldfg, MapperConfig, OptFlags,
};
use mesa_cpu::{CoreConfig, PipelineStats};
use mesa_isa::OpClass;
use mesa_mem::{MemConfig, MemTraffic, MemorySystem};
use mesa_profile::{SpatialProfile, TopDown};
use mesa_test::{forall, prop_assert, prop_assert_eq, Checker, Rng};
use mesa_workloads::{all, Kernel, KernelSize};

/// Persisted counterexample seeds, replayed before novel cases.
const REGRESSIONS: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/profile_proptest.proptest-regressions");

fn checker(name: &str) -> Checker {
    Checker::new(name).cases(48).regressions_file(REGRESSIONS)
}

/// The hot-loop region of a kernel as an LDFG (mirrors the harness's
/// `region_ldfg`; duplicated here because depending on `mesa-bench` from
/// this crate's tests would be a dependency cycle).
fn region_ldfg(kernel: &Kernel) -> Option<Ldfg> {
    let (start, end) = kernel.loop_region();
    let base_idx = ((start - kernel.program.base_pc) / 4) as usize;
    let len = ((end - start) / 4) as usize;
    let region = mesa_isa::Program {
        base_pc: start,
        instrs: kernel.program.instrs[base_idx..base_idx + len].to_vec(),
        annotations: kernel.program.annotations.clone(),
    };
    Ldfg::build(&region).ok()
}

#[test]
fn topdown_buckets_always_sum_to_total() {
    forall!(checker("profile::topdown_conservation"), |(seed in 0u64..1_000_000)| {
        let mut rng = Rng::seed_from_u64(seed);
        let cycles: u64 = rng.gen_range(0u64..1 << 40);
        let pipe = PipelineStats {
            cycles,
            retired: rng.gen_range(0u64..1 << 42),
            loads: rng.gen_range(0u64..1 << 30),
            stores: rng.gen_range(0u64..1 << 30),
            branches: rng.gen_range(0u64..1 << 30),
            mispredicts: rng.gen_range(0u64..1 << 20),
            issue_wait_cycles: rng.gen_range(0u64..1 << 40),
            fetch_redirects: rng.gen_range(0u64..1 << 20),
        };
        let traffic = MemTraffic {
            l1_accesses: rng.gen_range(0u64..1 << 40),
            l1_misses: rng.gen_range(0u64..1 << 36),
            l2_accesses: rng.gen_range(0u64..1 << 36),
            l2_misses: rng.gen_range(0u64..1 << 32),
            dram_accesses: rng.gen_range(0u64..1 << 32),
        };
        let td = TopDown::attribute(&pipe, &traffic, &CoreConfig::default(), &MemConfig::default());
        prop_assert!(td.sums_to_total(), "buckets {:?} vs total {}", td.buckets(), td.total_cycles);
        prop_assert_eq!(td.total_cycles, cycles);
        for (name, v) in td.buckets() {
            prop_assert!(v <= cycles, "bucket {name} = {v} exceeds total {cycles}");
        }
    });
}

#[test]
fn heatmap_totals_match_engine_activity_across_kernels_and_grids() {
    let kernels: Vec<Kernel> = all(KernelSize::Tiny)
        .into_iter()
        .filter(|k| region_ldfg(k).is_some())
        .collect();
    assert!(kernels.len() >= 4, "suite shrank unexpectedly");
    const PES: [usize; 5] = [16, 32, 64, 128, 256];

    // Each case executes a full kernel on the cycle-level engine, so this
    // property runs fewer cases than the cheap arithmetic ones.
    let heavy = checker("profile::heatmap_exact_fold").cases(12);
    forall!(heavy, |(seed in 0u64..1_000_000)| {
        let mut rng = Rng::seed_from_u64(seed);
        let kernel = &kernels[rng.gen_range(0usize..kernels.len())];
        let accel_cfg = AccelConfig::with_pes(PES[rng.gen_range(0usize..PES.len())]);
        let ldfg = region_ldfg(kernel).expect("pre-filtered");

        let accel = SpatialAccelerator::new(accel_cfg);
        let supports = |c: Coord, class: OpClass| accel_cfg.supports(c, class);
        let sdfg = map_instructions(
            &ldfg,
            accel_cfg.grid(),
            &supports,
            accel.latency_model(),
            &MapperConfig::default(),
        );
        let plan = analyze_memopts(&ldfg);
        let prog = build_accel_program(
            &ldfg,
            &sdfg,
            Some(&plan),
            kernel.annotation,
            &accel_cfg,
            &OptFlags::default(),
            kernel.iterations,
        );

        let mut mem = MemorySystem::new(MemConfig::default(), 2);
        kernel.populate(mem.data_mut());
        let r = accel.execute(&prog, &kernel.entry, &mut mem, 1, 10_000_000).expect("runs");

        let placement: Vec<Option<Coord>> = prog.nodes.iter().map(|n| n.coord).collect();
        let heat = SpatialProfile::new(accel_cfg.grid(), &placement, &r.counters);

        // Exact fold of the counter bank (grid cells + bus, no loss).
        prop_assert_eq!(heat.total_fires(), r.counters.total_fires());
        prop_assert_eq!(heat.total_op_cycles(), r.counters.total_op_cycles());
        // Fires equal the engine's operation total.
        prop_assert!(
            heat.matches_activity(&r.activity),
            "{}: heatmap fires {} vs activity {:?}",
            kernel.name,
            heat.total_fires(),
            r.activity
        );
        prop_assert!(heat.total_fires() > 0, "{}: nothing fired", kernel.name);
    });
}
