//! Benchmark harness regenerating every table and figure of the MESA
//! paper's evaluation (§6).
//!
//! Each `figN`/`tableN` function returns structured rows; the `figures`
//! binary prints them, and the Criterion benches under `benches/` time the
//! underlying simulations. `EXPERIMENTS.md` records paper-reported vs
//! measured values.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod harness;
pub mod kernelgen;
pub mod pool;

pub use figures::{
    crossover, fig11, fig12, fig13, fig14, fig15, fig16, reject_tag, table1, table2,
    CrossoverRow, Fig11Row, Fig12Row, Fig13Report, Fig14Row, Fig15Row, Table2Row,
    BASELINE_CORES,
};
pub use harness::{
    cpu_multicore, cpu_single, geomean, mesa_offload, mesa_offload_faulted,
    mesa_offload_faulted_traced, mesa_offload_traced, mesa_profile, mesa_profile_traced,
    region_ldfg, BaselineRun, MesaRun,
};
pub use kernelgen::{
    controller_episode, differential_episode, tenant_jobs, tenants_episode,
    tenants_episode_fleet, EpisodeStats, TenantsStats,
};
pub use pool::{jobs, par_map, set_jobs};
